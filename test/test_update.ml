(* The live-update subsystem end to end: Graph.Overlay merged reads
   and compaction, batched incremental view maintenance vs full
   re-materialization (property-tested over three generators), the
   catalog freshness state machine, and the facade's guarantee that a
   query is never answered from a stale view. *)

open Kaskade_graph
open Kaskade_views
module K = Kaskade
module Executor = Kaskade_exec.Executor
module Row = Kaskade_exec.Row
module Overlay = Graph.Overlay
module Mutate = Kaskade_gen.Mutate

let qok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected facade error: %s" (K.Error.to_string e)

let krun ks q = qok (K.query ks q)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let prov_schema = Kaskade_gen.Provenance_gen.schema

(* j0 writes f0, f0 read by j1; j1 writes f1. *)
let tiny () =
  let b = Builder.create prov_schema in
  let j = Array.init 2 (fun i ->
      Builder.add_vertex b ~vtype:"Job"
        ~props:[ ("name", Value.Str (Printf.sprintf "j%d" i)); ("CPU", Value.Float 10.0) ] ())
  in
  let f = Array.init 2 (fun i ->
      Builder.add_vertex b ~vtype:"File" ~props:[ ("name", Value.Str (Printf.sprintf "f%d" i)) ] ())
  in
  ignore (Builder.add_edge b ~src:j.(0) ~dst:f.(0) ~etype:"WRITES_TO" ());
  ignore (Builder.add_edge b ~src:f.(0) ~dst:j.(1) ~etype:"IS_READ_BY" ());
  ignore (Builder.add_edge b ~src:j.(1) ~dst:f.(1) ~etype:"WRITES_TO" ());
  (Graph.freeze b, j, f)

(* ------------------------------------------------------------------ *)
(* Overlay: merged reads                                               *)

let test_overlay_insert_edge () =
  let g, j, f = tiny () in
  let o = Overlay.create g in
  check_int "clean version" 0 (Overlay.version o);
  check_int "clean edges" 3 (Overlay.n_edges o);
  check_bool "clean snapshot is base" true (Overlay.graph o == g);
  Overlay.insert_edge o ~src:f.(1) ~dst:j.(0) ~etype:"IS_READ_BY" ();
  check_int "version bumped" 1 (Overlay.version o);
  check_int "merged edges" 4 (Overlay.n_edges o);
  check_int "merged out degree" 1 (Overlay.out_degree o f.(1));
  check_int "merged in degree" 1 (Overlay.in_degree o j.(0));
  let ety = Schema.edge_type_id prov_schema "IS_READ_BY" in
  check_int "typed out degree" 1 (Overlay.typed_out_degree o f.(1) ~etype:ety);
  let seen = ref [] in
  Overlay.iter_out_etype o f.(1) ~etype:ety (fun ~dst ~eid:_ -> seen := dst :: !seen);
  Alcotest.(check (list int)) "pending edge visible" [ j.(0) ] !seen

let test_overlay_insert_vertex () =
  let g, _, _ = tiny () in
  let o = Overlay.create g in
  let v = Overlay.insert_vertex o ~vtype:"File" ~props:[ ("name", Value.Str "fresh") ] () in
  check_int "id is old n" (Graph.n_vertices g) v;
  check_int "merged count" (Graph.n_vertices g + 1) (Overlay.n_vertices o);
  check_string "type readable" "File" (Overlay.vertex_type_name o v);
  check_bool "props readable" true (Overlay.vprop_or_null o v "name" = Value.Str "fresh");
  let snap = Overlay.graph o in
  check_string "survives snapshot" "File" (Graph.vertex_type_name snap v)

let test_overlay_delete_multiset () =
  let g, j, f = tiny () in
  let b = Builder.create prov_schema in
  for v = 0 to Graph.n_vertices g - 1 do
    ignore (Builder.add_vertex b ~vtype:(Graph.vertex_type_name g v) ~props:(Graph.vertex_props g v) ())
  done;
  Graph.iter_edges g (fun ~eid:_ ~src ~dst ~etype ->
      ignore (Builder.add_edge b ~src ~dst ~etype:(Schema.edge_type_name prov_schema etype) ()));
  (* A parallel duplicate of j0 -> f0. *)
  ignore (Builder.add_edge b ~src:j.(0) ~dst:f.(0) ~etype:"WRITES_TO" ());
  let g = Graph.freeze b in
  let o = Overlay.create g in
  check_bool "first delete" true (Overlay.delete_edge o ~src:j.(0) ~dst:f.(0) ~etype:"WRITES_TO");
  check_int "one instance left" 3 (Overlay.n_edges o);
  check_bool "second delete" true (Overlay.delete_edge o ~src:j.(0) ~dst:f.(0) ~etype:"WRITES_TO");
  check_bool "third delete fails" false
    (Overlay.delete_edge o ~src:j.(0) ~dst:f.(0) ~etype:"WRITES_TO");
  check_int "failed delete does not bump version" 2 (Overlay.version o)

let test_overlay_delete_consumes_pending () =
  let g, j, f = tiny () in
  let o = Overlay.create g in
  Overlay.insert_edge o ~src:f.(1) ~dst:j.(0) ~etype:"IS_READ_BY" ();
  check_int "pending" 1 (Overlay.pending_edges o);
  check_bool "delete hits pending" true (Overlay.delete_edge o ~src:f.(1) ~dst:j.(0) ~etype:"IS_READ_BY");
  check_int "pending gone" 0 (Overlay.pending_edges o);
  check_int "no base tombstone" 0 (Overlay.deleted_edges o);
  check_int "back to base size" 3 (Overlay.n_edges o)

let test_overlay_apply_effective () =
  let g, j, f = tiny () in
  let o = Overlay.create g in
  let ops =
    [
      Overlay.Insert_edge { src = f.(1); dst = j.(0); etype = "IS_READ_BY"; props = [] };
      Overlay.Delete_edge { src = f.(1); dst = j.(1); etype = "IS_READ_BY" } (* no instance *);
      Overlay.Delete_edge { src = j.(1); dst = f.(1); etype = "WRITES_TO" };
    ]
  in
  let effective = Overlay.apply o ops in
  check_int "failed delete dropped" 2 (List.length effective);
  check_int "net edges" 3 (Overlay.n_edges o)

let test_overlay_schema_checks () =
  let g, j, f = tiny () in
  let o = Overlay.create g in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "unknown etype" true (raises (fun () ->
      Overlay.insert_edge o ~src:j.(0) ~dst:f.(0) ~etype:"NOPE" ()));
  check_bool "domain violation" true (raises (fun () ->
      Overlay.insert_edge o ~src:f.(0) ~dst:f.(1) ~etype:"WRITES_TO" ()));
  check_bool "out of range" true (raises (fun () ->
      Overlay.insert_edge o ~src:999 ~dst:f.(0) ~etype:"WRITES_TO" ()));
  check_bool "unknown vtype" true (raises (fun () ->
      ignore (Overlay.insert_vertex o ~vtype:"Ghost" ())));
  check_int "nothing applied" 0 (Overlay.version o)

(* Merged reads must agree with the frozen snapshot on every vertex. *)
let prop_overlay_merged_equals_snapshot =
  QCheck.Test.make ~name:"overlay merged reads = frozen snapshot" ~count:25
    QCheck.(pair (5 -- 30) (0 -- 1000))
    (fun (jobs, seed) ->
      let g =
        Kaskade_gen.Provenance_gen.(
          generate { default with jobs; files = 2 * jobs; seed = seed + 3 })
      in
      let o = Overlay.create g in
      ignore (Overlay.apply o (Mutate.random_ops ~inserts:12 ~deletes:12 ~seed:(seed + 5) g));
      ignore (Overlay.insert_vertex o ~vtype:"File" ~props:[ ("name", Value.Str "nv") ] ());
      let snap = Overlay.graph o in
      Overlay.n_vertices o = Graph.n_vertices snap
      && Overlay.n_edges o = Graph.n_edges snap
      && begin
        let ok = ref true in
        for v = 0 to Overlay.n_vertices o - 1 do
          let merged = ref [] and frozen = ref [] in
          Overlay.iter_out o v (fun ~dst ~etype ~eid:_ -> merged := (dst, etype) :: !merged);
          Graph.iter_out snap v (fun ~dst ~etype ~eid:_ -> frozen := (dst, etype) :: !frozen);
          if List.sort compare !merged <> List.sort compare !frozen then ok := false;
          let merged_in = ref [] and frozen_in = ref [] in
          Overlay.iter_in o v (fun ~src ~etype ~eid:_ -> merged_in := (src, etype) :: !merged_in);
          Graph.iter_in snap v (fun ~src ~etype ~eid:_ -> frozen_in := (src, etype) :: !frozen_in);
          if List.sort compare !merged_in <> List.sort compare !frozen_in then ok := false;
          if Overlay.out_degree o v <> Graph.out_degree snap v then ok := false;
          if Overlay.vertex_props o v <> Graph.vertex_props snap v then ok := false
        done;
        !ok
      end)

let test_overlay_compact () =
  let g, j, f = tiny () in
  let o = Overlay.create g in
  Overlay.insert_edge o ~src:f.(1) ~dst:j.(0) ~etype:"IS_READ_BY" ();
  let nv = Overlay.insert_vertex o ~vtype:"File" ~props:[ ("name", Value.Str "fc") ] () in
  ignore (Overlay.delete_edge o ~src:j.(0) ~dst:f.(0) ~etype:"WRITES_TO");
  let before = Gio.to_string (Overlay.graph o) in
  let version = Overlay.version o in
  check_bool "needs compact at tiny threshold" true (Overlay.needs_compact ~threshold:0.1 o);
  let new_base = Overlay.compact o in
  check_bool "base advanced" true (Overlay.base o == new_base);
  check_string "content preserved byte for byte" before (Gio.to_string new_base);
  check_int "version preserved" version (Overlay.version o);
  check_int "overlay drained" 0 (Overlay.pending_ops o);
  check_string "vertex ids stable" "fc" (match Graph.vprop new_base nv "name" with
    | Some (Value.Str s) -> s
    | _ -> "?");
  check_bool "second compact is a no-op" true (Overlay.compact o == new_base)

let test_overlay_maybe_compact () =
  let g, j, f = tiny () in
  let o = Overlay.create g in
  check_bool "clean: no" false (Overlay.maybe_compact o);
  Overlay.insert_edge o ~src:f.(1) ~dst:j.(0) ~etype:"IS_READ_BY" ();
  (* 1 pending op over 3 base edges = 0.33 > 0.25 default. *)
  check_bool "ratio over threshold" true (Overlay.overlay_ratio o > 0.25);
  check_bool "compacts" true (Overlay.maybe_compact o);
  check_int "drained" 0 (Overlay.pending_ops o)

(* Queries through a live executor context = queries on the frozen
   snapshot. *)
let prop_overlay_query_equivalence =
  QCheck.Test.make ~name:"live executor ctx = frozen snapshot ctx" ~count:15
    QCheck.(pair (8 -- 30) (0 -- 1000))
    (fun (jobs, seed) ->
      let g =
        Kaskade_gen.Provenance_gen.(
          generate { default with jobs; files = 2 * jobs; seed = seed + 23 })
      in
      let o = Overlay.create g in
      let live = Executor.create_live o in
      let q =
        Kaskade_query.Qparser.parse
          "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, f, b"
      in
      let run_both () =
        let frozen = Executor.create (Overlay.graph o) in
        match (Executor.run live q, Executor.run frozen q) with
        | Executor.Table a, Executor.Table b -> a = b
        | _ -> false
      in
      let ok_before = run_both () in
      ignore (Overlay.apply o (Mutate.random_ops ~inserts:10 ~deletes:10 ~seed:(seed + 29) g));
      ok_before && run_both ())

(* ------------------------------------------------------------------ *)
(* Batched maintenance = full re-materialization                       *)

(* Result identity for connectors: same kept base vertices, same pair
   multiset in base ids (view-internal ids may legitimately differ:
   the incremental path appends vertices born after materialization at
   the end). *)
let canonical (m : Materialize.materialized) =
  let vg = m.Materialize.graph in
  let o_of_n = Array.make (Graph.n_vertices vg) (-1) in
  Array.iteri (fun old_v nv -> if nv >= 0 then o_of_n.(nv) <- old_v) m.Materialize.new_of_old;
  let vertices = ref [] in
  Array.iteri
    (fun old_v nv -> if nv >= 0 then vertices := (old_v, Graph.vertex_type_name vg nv) :: !vertices)
    m.Materialize.new_of_old;
  let edges = ref [] in
  Graph.iter_edges vg (fun ~eid:_ ~src ~dst ~etype ->
      edges := (o_of_n.(src), o_of_n.(dst), etype) :: !edges);
  (List.sort compare !vertices, List.sort compare !edges)

(* Byte identity (graph serialization + vertex mapping) for the view
   kinds whose refresh pledges it. *)
let byte_identical (a : Materialize.materialized) (b : Materialize.materialized) =
  Gio.to_string a.Materialize.graph = Gio.to_string b.Materialize.graph
  && a.Materialize.new_of_old = b.Materialize.new_of_old

let refresh_vs_rebuild ~gen ~view ~inserts ~deletes ~compare_kind seed =
  let g = gen seed in
  let m = Materialize.materialize g view in
  let o = Overlay.create g in
  let ops = Overlay.apply o (Mutate.random_ops ~inserts ~deletes ~seed:(seed + 101) g) in
  let base_after = Overlay.graph o in
  let refreshed, strategy = Maintain.refresh base_after ~view:m ~ops in
  let rebuilt = Materialize.materialize base_after view in
  let same =
    match compare_kind with
    | `Canonical -> canonical refreshed = canonical rebuilt
    | `Bytes -> byte_identical refreshed rebuilt
  in
  if not same then
    QCheck.Test.fail_reportf "refresh (%s) diverged from rebuild on seed %d"
      (Maintain.describe_strategy strategy) seed;
  (* These view kinds must never fall back to a rebuild. *)
  Maintain.incremental strategy

let powerlaw seed =
  Kaskade_gen.Powerlaw_gen.(generate { vertices = 100; edges = 320; exponent = 2.2; seed })

let dblp seed =
  Kaskade_gen.Dblp_gen.(generate { default with authors = 50; pubs = 90; venues = 6; seed })

let provenance seed =
  Kaskade_gen.Provenance_gen.(generate { default with jobs = 25; files = 50; seed })

let khop src_type dst_type k = View.Connector (View.K_hop { src_type; dst_type; k })

let maintenance_props =
  let mk name ~gen ~view ~compare_kind =
    QCheck.Test.make ~name ~count:20
      QCheck.(0 -- 10_000)
      (fun seed ->
        refresh_vs_rebuild ~gen ~view ~inserts:10 ~deletes:10 ~compare_kind (seed + 1))
  in
  [
    mk "powerlaw k=2 connector refresh = rebuild" ~gen:powerlaw ~view:(khop "V" "V" 2)
      ~compare_kind:`Canonical;
    mk "powerlaw k=3 connector refresh = rebuild" ~gen:powerlaw ~view:(khop "V" "V" 3)
      ~compare_kind:`Canonical;
    mk "dblp k=2 connector refresh = rebuild" ~gen:dblp ~view:(khop "Author" "Author" 2)
      ~compare_kind:`Canonical;
    mk "dblp k=3 connector refresh = rebuild" ~gen:dblp ~view:(khop "Pub" "Author" 3)
      ~compare_kind:`Canonical;
    mk "provenance k=2 connector refresh = rebuild" ~gen:provenance ~view:(khop "Job" "Job" 2)
      ~compare_kind:`Canonical;
    mk "provenance k=3 connector refresh = rebuild" ~gen:provenance ~view:(khop "Job" "File" 3)
      ~compare_kind:`Canonical;
    mk "powerlaw ego refresh = rebuild (bytes)" ~gen:powerlaw
      ~view:(View.Summarizer (View.Ego_aggregator { k = 2; agg_prop = "name"; agg = View.Agg_count }))
      ~compare_kind:`Bytes;
    mk "provenance ego refresh = rebuild (bytes)" ~gen:provenance
      ~view:(View.Summarizer (View.Ego_aggregator { k = 2; agg_prop = "CPU"; agg = View.Agg_sum }))
      ~compare_kind:`Bytes;
    mk "provenance filter refresh = rebuild (bytes)" ~gen:provenance
      ~view:(View.Summarizer (View.Vertex_inclusion [ "Job"; "File" ]))
      ~compare_kind:`Bytes;
    mk "dblp filter refresh = rebuild (bytes)" ~gen:dblp
      ~view:(View.Summarizer (View.Vertex_inclusion [ "Author"; "Pub" ]))
      ~compare_kind:`Bytes;
  ]

(* ------------------------------------------------------------------ *)
(* Freshness state machine                                             *)

let test_freshness_transitions () =
  let g, j, f = tiny () in
  let cat = Catalog.create () in
  Catalog.add cat (Materialize.materialize g (khop "Job" "Job" 2));
  let entry = Option.get (Catalog.find_by_name cat "JOB_TO_JOB_2HOP") in
  check_string "starts fresh" "fresh" (Catalog.freshness_label entry.Catalog.freshness);
  let op1 = Overlay.Insert_edge { src = f.(1); dst = j.(0); etype = "IS_READ_BY"; props = [] } in
  let op2 = Overlay.Delete_edge { src = j.(0); dst = f.(0); etype = "WRITES_TO" } in
  Catalog.mark_stale cat [ op1 ];
  check_string "stale after mark" "stale(1 ops)" (Catalog.freshness_label entry.Catalog.freshness);
  Catalog.mark_stale cat [ op2 ];
  (match entry.Catalog.freshness with
  | Catalog.Stale [ o1; o2 ] -> check_bool "delta appends in order" true (o1 = op1 && o2 = op2)
  | _ -> Alcotest.fail "expected Stale with two ops");
  check_int "n_stale" 1 (Catalog.n_stale cat);
  let pending = Catalog.begin_refresh entry in
  check_int "pending handed over" 2 (List.length pending);
  check_string "rebuilding" "rebuilding" (Catalog.freshness_label entry.Catalog.freshness);
  check_bool "mark_stale refuses mid-refresh" true
    (try Catalog.mark_stale cat [ op1 ]; false with Invalid_argument _ -> true);
  check_bool "double begin refuses" true
    (try ignore (Catalog.begin_refresh entry); false with Invalid_argument _ -> true);
  Catalog.finish_refresh cat entry (Materialize.materialize g (khop "Job" "Job" 2));
  let entry' = Option.get (Catalog.find_by_name cat "JOB_TO_JOB_2HOP") in
  check_string "fresh again" "fresh" (Catalog.freshness_label entry'.Catalog.freshness);
  check_int "nothing stale" 0 (Catalog.n_stale cat);
  check_int "begin_refresh on fresh is empty" 0 (List.length (Catalog.begin_refresh entry'))

(* ------------------------------------------------------------------ *)
(* Facade: updates, staleness, never-stale answers                     *)

let coauthor_query = K.parse "MATCH (a:Author)-[r*2..2]->(b:Author) RETURN a, b"

let mid_dblp () = Kaskade_gen.Dblp_gen.(generate { default with authors = 40; pubs = 70; venues = 5; seed = 7 })

(* Vertex ids are view-internal; canonicalize rows through the graph
   the answer was computed on. *)
let canon_result ks (res, how) =
  let g =
    match how with
    | K.Raw -> K.graph ks
    | K.Via_view n ->
      (Option.get (Catalog.find_by_name (K.catalog ks) n)).Catalog.materialized.Materialize.graph
  in
  let rval = function
    | Row.V v -> Graph.vprop_or_null g v "name"
    | Row.E _ -> Value.Null
    | Row.Prim p -> p
  in
  match res with
  | Executor.Table t ->
    List.sort compare (List.map (fun r -> Array.to_list (Array.map rval r)) t.Row.rows)
  | Executor.Affected n -> [ [ Value.Int n ] ]

let test_facade_stale_views_refused () =
  let ks = K.make ~config:{ K.Config.default with auto_refresh = false } (mid_dblp ()) in
  ignore (K.materialize ks (khop "Author" "Author" 2));
  let _, how = krun ks coauthor_query in
  check_bool "fresh view answers" true (how = K.Via_view "AUTHOR_TO_AUTHOR_2HOP");
  let authors = Graph.vertices_of_type_name (K.graph ks) "Author" in
  let pubs = Graph.vertices_of_type_name (K.graph ks) "Pub" in
  K.Update.insert_edge ks ~src:authors.(0) ~dst:pubs.(0) ~etype:"AUTHORED" ();
  (match K.Update.freshness ks with
  | [ (name, Catalog.Stale [ _ ]) ] -> check_string "stale entry" "AUTHOR_TO_AUTHOR_2HOP" name
  | _ -> Alcotest.fail "expected one stale entry");
  (* Stale view must not answer; without auto-refresh the base graph does. *)
  let _, how = krun ks coauthor_query in
  check_bool "stale view passed over" true (how = K.Raw);
  check_bool "targeting the stale view is a typed planning error" true
    (match K.query ~target:(K.View "AUTHOR_TO_AUTHOR_2HOP") ks coauthor_query with
    | Error (K.Error.Plan _) -> true
    | _ -> false);
  (* EXPLAIN reports the freshness and the repair strategy, read-only. *)
  let r = K.explain ks coauthor_query in
  check_bool "explain targets base" true (r.K.target = K.Raw);
  (match r.K.candidates with
  | [ c ] ->
    check_bool "candidate not priced" true (c.K.cand_cost = None);
    check_string "candidate freshness" "stale(1 ops)" (Catalog.freshness_label c.K.cand_freshness);
    check_bool "refresh decision surfaced" true
      (match c.K.cand_refresh with Some s -> String.length s > 0 | None -> false)
  | _ -> Alcotest.fail "expected one candidate");
  check_bool "explain did not repair" true (Catalog.n_stale (K.catalog ks) = 1);
  (* Manual refresh repairs incrementally and the view answers again. *)
  (match K.Update.refresh_views ks with
  | [ o ] ->
    check_string "refreshed view" "AUTHOR_TO_AUTHOR_2HOP" o.K.refreshed_view;
    check_bool "incremental" true (Maintain.incremental o.K.refresh_strategy);
    check_int "ops absorbed" 1 o.K.refresh_ops
  | _ -> Alcotest.fail "expected one refresh outcome");
  let _, how = krun ks coauthor_query in
  check_bool "view answers again" true (how = K.Via_view "AUTHOR_TO_AUTHOR_2HOP")

let test_facade_auto_refresh () =
  let ks = K.make (mid_dblp ()) in
  ignore (K.materialize ks (khop "Author" "Author" 2));
  let authors = Graph.vertices_of_type_name (K.graph ks) "Author" in
  let pubs = Graph.vertices_of_type_name (K.graph ks) "Pub" in
  K.Update.batch
    [ K.Update.Insert_edge { src = authors.(1); dst = pubs.(1); etype = "AUTHORED"; props = [] };
      K.Update.Insert_edge { src = pubs.(1); dst = authors.(1); etype = "HAS_AUTHOR"; props = [] } ]
    ks;
  check_int "stale before run" 1 (Catalog.n_stale (K.catalog ks));
  let res, how = krun ks coauthor_query in
  check_bool "repaired then answered from view" true (how = K.Via_view "AUTHOR_TO_AUTHOR_2HOP");
  check_int "fresh after run" 0 (Catalog.n_stale (K.catalog ks));
  (* The repaired answer matches a facade built from scratch on the
     updated graph. *)
  let ks2 = K.make (K.graph ks) in
  ignore (K.materialize ks2 (khop "Author" "Author" 2));
  let res2 = krun ks2 coauthor_query in
  check_bool "same rows as scratch facade" true
    (canon_result ks (res, how) = canon_result ks2 res2);
  (* PROFILE surfaces repairs it performed. *)
  K.Update.delete_edge ks ~src:authors.(1) ~dst:pubs.(1) ~etype:"AUTHORED" |> ignore;
  let _, report = K.profile ks coauthor_query in
  check_int "profile reports its repair" 1 (List.length report.K.refreshes)

(* The acceptance-criteria scenario: a 1k mixed batch on a DBLP graph
   with a connector + ego catalog; every view byte/result-identical to
   full re-materialization and every query answer identical to a
   from-scratch facade. *)
let test_facade_1k_batch_identity () =
  let g = Kaskade_gen.Dblp_gen.(generate { default with authors = 150; pubs = 260; venues = 8; seed = 41 }) in
  let connector = khop "Author" "Author" 2 in
  let ego = View.Summarizer (View.Ego_aggregator { k = 2; agg_prop = "name"; agg = View.Agg_count }) in
  let ks = K.make g in
  ignore (K.materialize ks connector);
  ignore (K.materialize ks ego);
  let ops = Mutate.random_ops ~inserts:500 ~deletes:500 ~seed:97 g in
  check_int "1k batch" 1000 (List.length ops);
  K.Update.batch ops ks;
  let outcomes = K.Update.refresh_views ks in
  check_int "both views refreshed" 2 (List.length outcomes);
  let base_after = K.graph ks in
  let check_entry view ~bytes =
    let entry = Option.get (Catalog.find (K.catalog ks) view) in
    let rebuilt = Materialize.materialize base_after view in
    if bytes then
      check_bool (View.name view ^ " byte-identical") true
        (byte_identical entry.Catalog.materialized rebuilt)
    else
      check_bool (View.name view ^ " result-identical") true
        (canonical entry.Catalog.materialized = canonical rebuilt)
  in
  check_entry connector ~bytes:false;
  check_entry ego ~bytes:true;
  (* Query identity vs a facade built from scratch on the new graph. *)
  let ks2 = K.make base_after in
  ignore (K.materialize ks2 connector);
  ignore (K.materialize ks2 ego);
  let a = krun ks coauthor_query and b = krun ks2 coauthor_query in
  check_bool "query rows identical" true (canon_result ks a = canon_result ks2 b);
  check_bool "all fresh at the end" true
    (List.for_all (fun (_, f) -> f = Catalog.Fresh) (K.Update.freshness ks))

let () =
  let qsuite = List.map (QCheck_alcotest.to_alcotest ~verbose:false) in
  Alcotest.run "update"
    [
      ( "overlay",
        [
          Alcotest.test_case "insert edge merged reads" `Quick test_overlay_insert_edge;
          Alcotest.test_case "insert vertex" `Quick test_overlay_insert_vertex;
          Alcotest.test_case "delete multiset semantics" `Quick test_overlay_delete_multiset;
          Alcotest.test_case "delete consumes pending" `Quick test_overlay_delete_consumes_pending;
          Alcotest.test_case "apply returns effective ops" `Quick test_overlay_apply_effective;
          Alcotest.test_case "schema checks" `Quick test_overlay_schema_checks;
          Alcotest.test_case "compact" `Quick test_overlay_compact;
          Alcotest.test_case "maybe_compact" `Quick test_overlay_maybe_compact;
        ] );
      ( "overlay properties",
        qsuite [ prop_overlay_merged_equals_snapshot; prop_overlay_query_equivalence ] );
      ("maintenance properties", qsuite maintenance_props);
      ("freshness", [ Alcotest.test_case "state machine" `Quick test_freshness_transitions ]);
      ( "facade",
        [
          Alcotest.test_case "stale views refused" `Quick test_facade_stale_views_refused;
          Alcotest.test_case "auto refresh" `Quick test_facade_auto_refresh;
          Alcotest.test_case "1k batch identity" `Slow test_facade_1k_batch_identity;
        ] );
    ]
