(* Durability: WAL framing with torn-tail truncation and checksum
   validation, binary snapshots (single-CSR and per-shard) that
   round-trip the graph and the view catalog, crash-atomic text saves,
   typed I/O errors, and replay idempotency through the facade —
   including batches with duplicated delete keys, whose multiset
   semantics must replay exactly as they applied live. *)

open Kaskade_graph
module K = Kaskade
module Wal = Kaskade_store.Wal
module Snapshot = Kaskade_store.Snapshot
module Store = Kaskade_store.Store
module Codec = Kaskade_store.Codec
module Catalog = Kaskade_views.Catalog
module Materialize = Kaskade_views.Materialize
module Metrics = Kaskade_obs.Metrics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

(* A fresh scratch directory per test case (removed first in case a
   previous run died mid-test). *)
let tmp_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kaskade-test-store-%s-%d" name (Unix.getpid ()))
  in
  rm_rf d;
  d

let small_graph () =
  Kaskade_gen.Provenance_gen.(generate { default with jobs = 60; files = 120; seed = 5 })

let file_size path = (Unix.stat path).Unix.st_size

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd len;
  Unix.close fd

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let graph_eq what a b = check_string what (Gio.to_string a) (Gio.to_string b)

(* ------------------------------------------------------------------ *)
(* WAL: framing, torn tails, checksums                                 *)

let test_wal_roundtrip () =
  let dir = tmp_dir "wal-rt" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal.log" in
  let g = small_graph () in
  let b1 = Kaskade_gen.Mutate.random_ops ~seed:1 g in
  let b2 =
    [ Graph.Overlay.Insert_vertex { vtype = "File"; props = [ ("path", Value.Str "/a") ] } ]
  in
  let w = Wal.open_ ~fsync_policy:Wal.Never path in
  check_int "empty log starts at seq 0" 0 (Wal.last_seq w);
  check_int "first append is seq 1" 1 (Wal.append w b1);
  check_int "second append is seq 2" 2 (Wal.append w b2);
  Wal.close w;
  let records, truncated = Wal.read path in
  check_int "no torn records" 0 truncated;
  (match records with
  | [ (1, r1); (2, r2) ] ->
    check_bool "batch 1 round-trips" true (r1 = b1);
    check_bool "batch 2 round-trips" true (r2 = b2)
  | _ -> Alcotest.fail "expected exactly two records");
  rm_rf dir

let test_wal_torn_tail_truncated () =
  let dir = tmp_dir "wal-torn" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal.log" in
  let g = small_graph () in
  let batch seed = Kaskade_gen.Mutate.random_ops ~seed g in
  let w = Wal.open_ ~fsync_policy:Wal.Never path in
  ignore (Wal.append w (batch 1));
  ignore (Wal.append w (batch 2));
  ignore (Wal.append w (batch 3));
  Wal.close w;
  (* tear the final record: drop its last 5 bytes (mid-checksum) *)
  truncate_file path (file_size path - 5);
  let w2 = Wal.open_ ~fsync_policy:Wal.Never path in
  check_int "torn record dropped" 2 (Wal.last_seq w2);
  check_int "torn record counted" 1 (Wal.truncated_records w2);
  (* the log keeps accepting appends at the repaired sequence *)
  check_int "append resumes after repair" 3 (Wal.append w2 (batch 4));
  Wal.close w2;
  let records, truncated = Wal.read path in
  check_int "repaired log fully valid" 0 truncated;
  check_int "three records survive" 3 (List.length records);
  rm_rf dir

let test_wal_checksum_rejects_tail () =
  let dir = tmp_dir "wal-sum" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal.log" in
  let g = small_graph () in
  let w = Wal.open_ ~fsync_policy:Wal.Never path in
  ignore (Wal.append w (Kaskade_gen.Mutate.random_ops ~seed:1 g));
  ignore (Wal.append w (Kaskade_gen.Mutate.random_ops ~seed:2 g));
  Wal.close w;
  (* flip a payload byte inside the final record: the length prefix
     still reads, so only the checksum can catch it *)
  flip_byte path (file_size path - 9);
  let w2 = Wal.open_ ~fsync_policy:Wal.Never path in
  check_int "checksum failure drops the tail record" 1 (Wal.last_seq w2);
  check_int "counted as torn" 1 (Wal.truncated_records w2);
  Wal.close w2;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Snapshots: graph + view catalog round-trip, per-shard variant       *)

let test_snapshot_roundtrip () =
  let dir = tmp_dir "snap" in
  Unix.mkdir dir 0o755;
  let g = small_graph () in
  let m1 = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  let m2 = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"File" ~k:1 in
  let stale_ops = Kaskade_gen.Mutate.random_ops ~seed:9 g in
  let views = [ (m1, Catalog.Fresh); (m2, Catalog.Stale stale_ops) ] in
  let path = Filename.concat dir "s.ksnap" in
  Snapshot.write path ~seq:7 ~graph:g ~views;
  let c = Snapshot.read path in
  check_int "seq survives" 7 c.Snapshot.seq;
  graph_eq "base graph identical" g c.Snapshot.graph;
  check_int "both views restored" 2 (List.length c.Snapshot.views);
  List.iter2
    (fun (m, f) (m', f') ->
      check_bool "view descriptor equal" true (m.Materialize.view = m'.Materialize.view);
      graph_eq "view graph identical" m.Materialize.graph m'.Materialize.graph;
      check_bool "vertex mapping equal" true (m.Materialize.new_of_old = m'.Materialize.new_of_old);
      check_bool "build cost equal" true (m.Materialize.build_cost = m'.Materialize.build_cost);
      check_bool "freshness equal (incl. Stale delta)" true (f = f'))
    views c.Snapshot.views;
  (* damage anywhere in the one-record file must surface as Corrupt,
     never as silently different data *)
  flip_byte path (file_size path / 2);
  (match Snapshot.read path with
  | exception Codec.Corrupt _ -> ()
  | exception End_of_file -> ()
  | _ -> Alcotest.fail "damaged snapshot read back without error");
  rm_rf dir

let test_snapshot_shards_roundtrip () =
  let dir = tmp_dir "snap-shards" in
  Unix.mkdir dir 0o755;
  let g = small_graph () in
  let sh = Shard.of_graph ~shards:3 g in
  let path = Filename.concat dir "s.ksnap" in
  Snapshot.write_shards sh path ~seq:5;
  check_bool "per-shard files exist" true
    (Sys.file_exists (Snapshot.shard_path path ~shard:0 ~total:3));
  let seq, sh' = Snapshot.read_shards path ~shards:3 in
  check_int "seq agreed across shards" 5 seq;
  check_int "vertices survive" (Shard.n_vertices sh) (Shard.n_vertices sh');
  check_int "edges survive" (Shard.n_edges sh) (Shard.n_edges sh');
  let out s v =
    let acc = ref [] in
    Shard.iter_out s v (fun ~dst ~etype ~eid:_ -> acc := (dst, etype) :: !acc);
    List.sort compare !acc
  in
  for v = 0 to Shard.n_vertices sh - 1 do
    if Shard.vertex_type sh v <> Shard.vertex_type sh' v then
      Alcotest.failf "vertex %d changed type across the shard round-trip" v;
    if out sh v <> out sh' v then
      Alcotest.failf "vertex %d adjacency changed across the shard round-trip" v;
    if List.sort compare (Shard.vertex_props sh v) <> List.sort compare (Shard.vertex_props sh' v)
    then Alcotest.failf "vertex %d props changed across the shard round-trip" v
  done;
  rm_rf dir

let test_gio_save_atomic () =
  let dir = tmp_dir "gio" in
  Unix.mkdir dir 0o755;
  let g = small_graph () in
  let path = Filename.concat dir "g.kaskade" in
  Gio.save g path;
  check_bool "no .tmp residue" false (Sys.file_exists (path ^ ".tmp"));
  graph_eq "text save round-trips" g (Gio.load path);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Typed errors                                                        *)

let test_io_error_taxonomy () =
  (match K.Error.of_exn End_of_file with
  | Some (K.Error.Io _) -> ()
  | _ -> Alcotest.fail "End_of_file not classified as Io");
  match K.Error.of_exn (Codec.Corrupt { file = "wal.log"; reason = "bad checksum" }) with
  | Some (K.Error.Io msg) ->
    check_bool "message names the file" true
      (String.length msg >= 7 && String.sub msg 0 7 = "wal.log")
  | _ -> Alcotest.fail "Codec.Corrupt not classified as Io"

(* ------------------------------------------------------------------ *)
(* Facade recovery: replay idempotency                                 *)

(* Batches where every delete key appears twice: Overlay.apply's
   multiset semantics consume one instance per occurrence (the second
   may find nothing), and the WAL records the {e requested} ops, so
   replay re-runs exactly that decision procedure. Live and recovered
   graphs must agree byte for byte. *)
let dup_deletes ops =
  ops @ List.filter (function Graph.Overlay.Delete_edge _ -> true | _ -> false) ops

let test_recover_matches_live () =
  let dir = tmp_dir "replay" in
  let config =
    { K.Config.default with
      data_dir = Some dir; fsync_policy = Wal.Never; snapshot_every = 0;
      auto_refresh = false }
  in
  let ks = K.make ~config (small_graph ()) in
  K.Update.batch (dup_deletes (Kaskade_gen.Mutate.random_ops ~seed:11 (K.graph ks))) ks;
  K.Update.batch (dup_deletes (Kaskade_gen.Mutate.random_ops ~seed:12 (K.graph ks))) ks;
  let rks = K.recover ~config dir in
  graph_eq "recovered graph equals live" (K.graph ks) (K.graph rks);
  (* a snapshot covering the whole log makes the tail empty: nothing
     replays, and the graphs still agree *)
  ignore (K.snapshot ks);
  let m_replayed = Metrics.counter "kaskade.recovery_replayed_ops" in
  let before = Metrics.counter_value m_replayed in
  let rks2 = K.recover ~config dir in
  check_int "covering snapshot replays nothing" 0 (Metrics.counter_value m_replayed - before);
  graph_eq "snapshot-only recovery equals live" (K.graph ks) (K.graph rks2);
  rm_rf dir

let test_recover_is_idempotent () =
  let dir = tmp_dir "idem" in
  let config =
    { K.Config.default with
      data_dir = Some dir; fsync_policy = Wal.Never; snapshot_every = 0;
      auto_refresh = false }
  in
  let ks = K.make ~config (small_graph ()) in
  K.Update.batch (dup_deletes (Kaskade_gen.Mutate.random_ops ~seed:21 (K.graph ks))) ks;
  let r1 = K.recover ~config dir in
  let r2 = K.recover ~config dir in
  graph_eq "recovery is deterministic" (K.graph r1) (K.graph r2);
  (* and a recovered facade keeps the log growing correctly *)
  K.Update.batch (Kaskade_gen.Mutate.random_ops ~seed:22 (K.graph r1)) r1;
  let r3 = K.recover ~config dir in
  graph_eq "post-recovery appends recover too" (K.graph r1) (K.graph r3);
  rm_rf dir

let test_corrupt_snapshot_falls_back () =
  let dir = tmp_dir "fallback" in
  let config =
    { K.Config.default with
      data_dir = Some dir; fsync_policy = Wal.Never; snapshot_every = 0;
      auto_refresh = false }
  in
  let ks = K.make ~config (small_graph ()) in
  K.Update.batch (Kaskade_gen.Mutate.random_ops ~seed:31 (K.graph ks)) ks;
  (* newest snapshot (seq 1) gets damaged; recovery must fall back to
     the seq-0 snapshot written at open and replay the WAL instead *)
  ignore (K.snapshot ks);
  let newest = Store.snapshot_path dir 1 in
  check_bool "covering snapshot on disk" true (Sys.file_exists newest);
  flip_byte newest (file_size newest / 2);
  let rks = K.recover ~config dir in
  graph_eq "fallback snapshot + replay equals live" (K.graph ks) (K.graph rks);
  rm_rf dir

let () =
  Alcotest.run "kaskade-store"
    [
      ( "wal",
        [
          Alcotest.test_case "append/read round-trip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail truncated, not fatal" `Quick
            test_wal_torn_tail_truncated;
          Alcotest.test_case "checksum rejects damaged tail" `Quick
            test_wal_checksum_rejects_tail;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "graph + views round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "per-shard round-trip" `Quick test_snapshot_shards_roundtrip;
          Alcotest.test_case "text save is crash-atomic" `Quick test_gio_save_atomic;
        ] );
      ("errors", [ Alcotest.test_case "I/O failures are typed" `Quick test_io_error_taxonomy ]);
      ( "recovery",
        [
          Alcotest.test_case "replay matches live (dup delete keys)" `Quick
            test_recover_matches_live;
          Alcotest.test_case "recovery is idempotent" `Quick test_recover_is_idempotent;
          Alcotest.test_case "corrupt snapshot falls back" `Quick
            test_corrupt_snapshot_falls_back;
        ] );
    ]
