(* Sharded-CSR equivalence: a partitioned graph must be
   observationally identical to the single CSR it was built from —
   same query bytes, same statistics, same components, same adjacency
   — at every shard count, under both partition policies, across
   generators with very different shapes. The hash policy on
   generator graphs (vids assigned in type blocks) is deliberately
   cut-edge-heavy, so the exchange path gets real traffic. *)

open Kaskade_graph
module Exec = Kaskade_exec.Executor
module Row = Kaskade_exec.Row

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let shard_counts = [ 1; 2; 4 ]
let policies = [ Shard.Hash; Shard.Type_range ]

(* Three shapes: heterogeneous DAG-ish provenance, bipartite-flavored
   dblp, and a skewed homogeneous power-law graph. *)
let generators =
  [ ( "prov",
      lazy Kaskade_gen.Provenance_gen.(generate { default with jobs = 220; files = 400; seed = 9 })
    );
    ("dblp", lazy Kaskade_gen.Dblp_gen.(generate (scaled ~edges:2_500 ~seed:5)));
    ("soc", lazy Kaskade_gen.Powerlaw_gen.(generate (scaled ~edges:2_500 ~seed:5))) ]

let each_config f =
  List.iter
    (fun (gname, g) ->
      let g = Lazy.force g in
      List.iter
        (fun policy ->
          List.iter
            (fun s ->
              let label =
                Printf.sprintf "%s policy=%s shards=%d" gname (Shard.policy_name policy) s
              in
              f ~label g (Shard.of_graph ~policy ~shards:s g))
            shard_counts)
        policies)
    generators

(* Schema-generic workload: a typed one-hop over the first edge type
   plus typed/untyped variable-length expansions from the first vertex
   type — the executor shapes (scan, typed expand, BFS endpoints) that
   read adjacency hardest. *)
let workload_for g =
  let schema = Graph.schema g in
  let vt = Schema.vertex_type_name schema 0 in
  let et = Schema.edge_type_name schema 0 in
  [ Printf.sprintf "MATCH (a:%s)-[:%s]->(b) RETURN a, b" (Schema.vertex_type_name schema (Schema.edge_src schema 0)) et;
    Printf.sprintf "MATCH (a:%s)-[r*1..3]->(b) RETURN a, b" vt;
    Printf.sprintf "MATCH (a:%s)<-[r*1..2]-(b) RETURN a, b" vt ]

let result_bytes g = function
  | Exec.Affected n -> Printf.sprintf "affected %d" n
  | Exec.Table t ->
    let buf = Buffer.create 4096 in
    Array.iter (fun c -> Buffer.add_string buf c; Buffer.add_char buf '\t') t.Row.cols;
    List.iter
      (fun row ->
        Buffer.add_char buf '\n';
        Array.iter
          (fun v ->
            Buffer.add_string buf (Row.rval_to_string g v);
            Buffer.add_char buf '\t')
          row)
      t.Row.rows;
    Buffer.contents buf

let test_query_identity () =
  List.iter
    (fun (gname, g) ->
      let g = Lazy.force g in
      let queries = workload_for g in
      let baseline =
        let ctx = Exec.create g in
        List.map (fun q -> result_bytes g (Exec.run_string ctx q)) queries
      in
      List.iter
        (fun policy ->
          List.iter
            (fun s ->
              let ctx = Exec.create ~shard_policy:policy ~shards:s g in
              List.iter2
                (fun q expected ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s policy=%s shards=%d: %s" gname
                       (Shard.policy_name policy) s q)
                    expected
                    (result_bytes g (Exec.run_string ctx q)))
                queries baseline)
            shard_counts)
        policies)
    generators

let test_adjacency_equivalence () =
  each_config (fun ~label g sh ->
      let n = Graph.n_vertices g in
      check_int (label ^ ": n_vertices") n (Shard.n_vertices sh);
      check_int (label ^ ": n_edges") (Graph.n_edges g) (Shard.n_edges sh);
      let collect_g v =
        let acc = ref [] in
        Graph.iter_out g v (fun ~dst ~etype ~eid -> acc := (dst, etype, eid) :: !acc);
        Graph.iter_in g v (fun ~src ~etype ~eid -> acc := (src, -etype - 1, eid) :: !acc);
        List.rev !acc
      in
      let collect_s v =
        let acc = ref [] in
        Shard.iter_out sh v (fun ~dst ~etype ~eid -> acc := (dst, etype, eid) :: !acc);
        Shard.iter_in sh v (fun ~src ~etype ~eid -> acc := (src, -etype - 1, eid) :: !acc);
        List.rev !acc
      in
      for v = 0 to n - 1 do
        if collect_g v <> collect_s v then
          Alcotest.failf "%s: adjacency of vertex %d differs" label v
      done;
      (* Typed runs too, on a sample of vertices x every edge type. *)
      let nets = Schema.n_edge_types (Graph.schema g) in
      let step = Stdlib.max 1 (n / 64) in
      let v = ref 0 in
      while !v < n do
        for ety = 0 to nets - 1 do
          let tg = ref [] and ts = ref [] in
          Graph.iter_out_etype g !v ~etype:ety (fun ~dst ~eid -> tg := (dst, eid) :: !tg);
          Shard.iter_out_etype sh !v ~etype:ety (fun ~dst ~eid -> ts := (dst, eid) :: !ts);
          Graph.iter_in_etype g !v ~etype:ety (fun ~src ~eid -> tg := (src, eid) :: !tg);
          Shard.iter_in_etype sh !v ~etype:ety (fun ~src ~eid -> ts := (src, eid) :: !ts);
          if !tg <> !ts then Alcotest.failf "%s: typed adjacency of vertex %d differs" label !v
        done;
        v := !v + step
      done;
      (* Scan candidates must be the same physical order (global vids
         ascending) — what keeps executor result bytes shard-blind. *)
      for ty = 0 to Schema.n_vertex_types (Graph.schema g) - 1 do
        if Graph.vertices_of_type g ty <> Shard.vertices_of_type sh ty then
          Alcotest.failf "%s: scan candidates differ for vertex type %d" label ty
      done)

let test_gstats_equal () =
  each_config (fun ~label g sh ->
      let reference = Gstats.compute g in
      let sharded = Gstats.of_shard sh in
      check_bool (label ^ ": Gstats.of_shard = compute") true (reference = sharded);
      (* Per-shard stats must cover the graph exactly once. *)
      let per = Gstats.per_shard sh in
      check_int (label ^ ": per-shard count") (Shard.n_shards sh) (Array.length per);
      check_int
        (label ^ ": per-shard vertices sum")
        (Graph.n_vertices g)
        (Array.fold_left (fun acc st -> acc + Gstats.total_vertices st) 0 per);
      check_int
        (label ^ ": per-shard edges sum")
        (Graph.n_edges g)
        (Array.fold_left (fun acc st -> acc + Gstats.total_edges st) 0 per))

(* Union-find roots are representation; the partition is the
   contract. Compare first-occurrence-normalized component labels. *)
let canonical_labels uf n =
  let seen = Hashtbl.create 16 in
  Array.init n (fun v ->
      let r = Kaskade_util.Union_find.find uf v in
      match Hashtbl.find_opt seen r with
      | Some c -> c
      | None ->
        let c = Hashtbl.length seen in
        Hashtbl.add seen r c;
        c)

let test_connectivity_equal () =
  each_config (fun ~label g sh ->
      let n = Graph.n_vertices g in
      let a = canonical_labels (Kaskade_algo.Connectivity.components g) n in
      let b = canonical_labels (Kaskade_algo.Connectivity.components_sharded sh) n in
      check_bool (label ^ ": components equal") true (a = b);
      check_int
        (label ^ ": n_components")
        (Kaskade_algo.Connectivity.n_components g)
        (Kaskade_algo.Connectivity.n_components_sharded sh))

let test_traverse_equal () =
  each_config (fun ~label g sh ->
      let n = Graph.n_vertices g in
      let sources = List.init 8 (fun i -> i * Stdlib.max 1 (n / 8)) in
      List.iter
        (fun src ->
          List.iter
            (fun dir ->
              let a = Kaskade_algo.Traverse.reachable_within g ~src ~max_hops:3 ~dir () in
              let b =
                Kaskade_algo.Traverse.reachable_within_sharded sh ~src ~max_hops:3 ~dir ()
              in
              if a <> b then
                Alcotest.failf "%s: reachable_within differs from src %d" label src)
            [ Kaskade_algo.Traverse.Out; Kaskade_algo.Traverse.In ])
        sources)

let test_typed_scan_invariant () =
  each_config (fun ~label g sh ->
      let schema = Graph.schema g in
      for ety = 0 to Schema.n_edge_types schema - 1 do
        let rows = ref 0 and sum = ref 0 in
        Array.iter
          (fun v ->
            Graph.iter_out_etype g v ~etype:ety (fun ~dst ~eid:_ ->
                Stdlib.incr rows;
                sum := (!sum + dst) land max_int))
          (Graph.vertices_of_type g (Schema.edge_src schema ety));
        let srows, ssum = Shard.typed_scan sh ~etype:ety in
        check_int (Printf.sprintf "%s: typed_scan rows etype=%d" label ety) !rows srows;
        check_int (Printf.sprintf "%s: typed_scan checksum etype=%d" label ety) !sum ssum
      done)

let test_gio_round_trip () =
  let tmp = Filename.temp_file "kaskade_shard" ".kg" in
  List.iter
    (fun policy ->
      List.iter
        (fun s ->
          let g = Lazy.force (List.assoc "prov" generators) in
          let sh = Shard.of_graph ~policy ~shards:s g in
          Gio.save_shards sh tmp;
          let back = Gio.load_shards tmp ~shards:s in
          let label = Printf.sprintf "round-trip policy=%s shards=%d" (Shard.policy_name policy) s in
          check_int (label ^ ": shards") (Shard.n_shards sh) (Shard.n_shards back);
          check_bool (label ^ ": policy") true (Shard.policy back = policy);
          check_int (label ^ ": vertices") (Shard.n_vertices sh) (Shard.n_vertices back);
          check_int (label ^ ": edges") (Shard.n_edges sh) (Shard.n_edges back);
          check_int (label ^ ": cut edges") (Shard.cut_edges sh) (Shard.cut_edges back);
          (* Eids can be renumbered by per-shard file order, but the
             adjacency relation (dst, etype) per vertex and all props
             must survive. Compare against the source graph. *)
          for v = 0 to Shard.n_vertices back - 1 do
            check_int (label ^ ": vertex type") (Graph.vertex_type g v) (Shard.vertex_type back v);
            let a = ref [] and b = ref [] in
            Graph.iter_out g v (fun ~dst ~etype ~eid:_ -> a := (dst, etype) :: !a);
            Shard.iter_out back v (fun ~dst ~etype ~eid:_ -> b := (dst, etype) :: !b);
            if List.sort compare !a <> List.sort compare !b then
              Alcotest.failf "%s: out-adjacency of vertex %d differs after round-trip" label v;
            if Graph.vertex_props g v <> Shard.vertex_props back v then
              Alcotest.failf "%s: vertex %d props differ after round-trip" label v
          done;
          for i = 0 to s - 1 do
            Sys.remove (Gio.shard_path tmp ~shard:i ~total:s)
          done)
        shard_counts)
    policies;
  Sys.remove tmp

let test_facade_sharded_run () =
  (* The facade path: views selected, materialized and queried through
     sharded contexts must answer exactly like the unsharded facade. *)
  let g = Lazy.force (List.assoc "prov" generators) in
  let q = Kaskade.parse "MATCH (s:Job)-[r*1..4]->(d:Job) RETURN s, d" in
  let run ks =
    let sel = Kaskade.select_views ks ~queries:[ q ] ~budget_edges:(4 * Graph.n_edges g) in
    ignore (Kaskade.materialize_selected ks sel);
    let r, how =
      match Kaskade.query ks q with
      | Ok v -> v
      | Error e -> Alcotest.failf "unexpected facade error: %s" (Kaskade.Error.to_string e)
    in
    (result_bytes g r, how)
  in
  let bytes0, how0 = run (Kaskade.make g) in
  List.iter
    (fun s ->
      let bytes, how = run (Kaskade.make ~config:{ Kaskade.Config.default with shards = s } g) in
      check_bool (Printf.sprintf "routing equal at shards=%d" s) true (how = how0);
      Alcotest.(check string) (Printf.sprintf "rows equal at shards=%d" s) bytes0 bytes)
    [ 2; 4 ]

let () =
  Alcotest.run "kaskade_shard"
    [
      ( "identity",
        [
          Alcotest.test_case "query results byte-identical" `Quick test_query_identity;
          Alcotest.test_case "adjacency equivalence" `Quick test_adjacency_equivalence;
          Alcotest.test_case "gstats equal" `Quick test_gstats_equal;
          Alcotest.test_case "connectivity equal" `Quick test_connectivity_equal;
          Alcotest.test_case "traverse equal" `Quick test_traverse_equal;
          Alcotest.test_case "typed_scan invariant" `Quick test_typed_scan_invariant;
          Alcotest.test_case "facade sharded run" `Quick test_facade_sharded_run;
        ] );
      ( "persistence",
        [ Alcotest.test_case "save/load round-trip" `Quick test_gio_round_trip ] );
    ]
