(* The serving layer end to end: overlay snapshot pinning, the
   session/MVCC property (concurrent pinned readers are byte-identical
   to a serial run at their pinned version while a writer streams
   batches), admission control sheds as typed [Overloaded], the wire
   protocol round-trips, and the deprecated facade wrappers still
   work for out-of-tree callers. *)

open Kaskade_graph
module K = Kaskade
module Serve = Kaskade_serve
module Session = Serve.Session
module Wire = Serve.Wire
module Executor = Kaskade_exec.Executor
module Overlay = Graph.Overlay
module Mutate = Kaskade_gen.Mutate
module Budget = Kaskade_util.Budget

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let qok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected facade error: %s" (K.Error.to_string e)

let prov () =
  Kaskade_gen.Provenance_gen.(generate { default with jobs = 60; files = 120; seed = 11 })

(* Serial reference: the same executor configuration a session uses. *)
let serial_render g q =
  let ctx = Executor.create ~mode:Executor.Distinct_endpoints ~planner:true g in
  Wire.render_result g (Executor.run ctx q)

(* ------------------------------------------------------------------ *)
(* Overlay pinning                                                     *)

let test_overlay_pin_unpin () =
  let g = prov () in
  let o = Overlay.create g in
  check_int "nothing pinned" 0 (Overlay.pin_count o);
  let v0, g0 = Overlay.pin o in
  check_int "pins version 0" 0 v0;
  check_bool "pin of a clean overlay is the base" true (g0 == g);
  let v0', _ = Overlay.pin o in
  check_int "same version" v0 v0';
  Alcotest.(check (list (pair int int))) "two readers on v0" [ (0, 2) ]
    (Overlay.pinned_versions o);
  Overlay.insert_vertex o ~vtype:"File" () |> ignore;
  let v1, g1 = Overlay.pin o in
  check_int "new pin sees the new version" 1 v1;
  check_bool "snapshots differ" true (Graph.n_vertices g1 = Graph.n_vertices g0 + 1);
  Alcotest.(check (list (pair int int))) "both versions pinned" [ (0, 2); (1, 1) ]
    (Overlay.pinned_versions o);
  check_int "three pins total" 3 (Overlay.pin_count o);
  Overlay.unpin o v0;
  Overlay.unpin o v0;
  Overlay.unpin o v1;
  check_int "all released" 0 (Overlay.pin_count o);
  check_bool "unpinning an unpinned version raises" true
    (try Overlay.unpin o v0; false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Error taxonomy                                                      *)

let test_error_of_exn () =
  (match K.Error.of_exn (Unix.Unix_error (Unix.EPIPE, "write", "")) with
  | Some (K.Error.Io msg) -> check_bool "message names the syscall" true
      (String.length msg > 0 && String.sub msg 0 5 = "write")
  | other ->
    Alcotest.failf "Unix_error not mapped to Io: %s"
      (match other with Some e -> K.Error.to_string e | None -> "None"));
  match K.Error.of_exn (K.Error.Overload { resource = "queue"; capacity = 4; in_use = 4 }) with
  | Some (K.Error.Overloaded { resource = "queue"; capacity = 4; in_use = 4 } as e) ->
    check_string "label" "overloaded" (K.Error.label e)
  | _ -> Alcotest.fail "Overload exception not mapped to Overloaded"

(* ------------------------------------------------------------------ *)
(* Sessions: MVCC reads against a concurrent writer                    *)

let mvcc_queries =
  [ "MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a, f";
    "MATCH (u:User)-[:SUBMITTED]->(j:Job) RETURN u, j";
    "SELECT COUNT(*) FROM (MATCH (a:Job)-[r*1..2]->(b:Job) RETURN a, b)" ]

let test_mvcc_pinned_readers () =
  let g = prov () in
  let ks = K.make g in
  let mgr = Session.create_manager ks in
  let queries = List.map K.parse mvcc_queries in
  (* Reference rendering at the version the readers will pin. *)
  let reference = List.map (serial_render g) queries in
  let readers = 3 and replays = 8 and batches = 30 in
  let sessions = List.init readers (fun _ -> qok (Session.open_ mgr)) in
  List.iter (fun s -> check_int "pinned at v0" 0 (Session.pinned_version s)) sessions;
  let mismatches = Atomic.make 0 in
  let reader s () =
    for _ = 1 to replays do
      List.iter2
        (fun q expect ->
          let rendered =
            Wire.render_result (Session.pinned_graph s) (qok (Session.run s q))
          in
          if rendered <> expect then Atomic.incr mismatches)
        queries reference
    done
  in
  let domains = List.map (fun s -> Domain.spawn (reader s)) sessions in
  (* Single writer: seeded random batches through the facade, each
     atomic under the manager lock. Version must advance by exactly
     the effective-op count every time — a torn batch would break the
     arithmetic. *)
  let version = ref 0 in
  for i = 1 to batches do
    let ops = Mutate.random_ops ~inserts:3 ~deletes:2 ~seed:(1000 + i) (K.graph ks) in
    let effective, v = qok (Session.submit mgr ops) in
    check_bool "batch had effect" true (effective > 0);
    check_int "version advanced batch-atomically" (!version + effective) v;
    version := v
  done;
  List.iter Domain.join domains;
  check_int "pinned reads byte-identical to the serial run" 0 (Atomic.get mismatches);
  (* Readers were invisible to the writer and vice versa: still pinned
     at v0, while the overlay moved on. *)
  Alcotest.(check (list (pair int int))) "all readers still on v0" [ (0, readers) ]
    (Session.pinned_versions mgr);
  check_bool "writer moved the overlay" true (K.version ks > 0);
  (* Repin = read-your-writes: the session now sees the writer's graph. *)
  let s0 = List.hd sessions in
  check_int "repin lands on the current version" (K.version ks) (Session.repin s0);
  let rendered_now = Wire.render_result (Session.pinned_graph s0) (qok (Session.run s0 (List.hd queries))) in
  check_string "repinned read equals serial run on the current graph"
    (serial_render (K.graph ks) (List.hd queries)) rendered_now;
  List.iter Session.close sessions;
  List.iter Session.close sessions;  (* close is idempotent *)
  check_int "no sessions left" 0 (Session.sessions_active mgr);
  Alcotest.(check (list (pair int int))) "no pins left" [] (Session.pinned_versions mgr)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

let test_session_cap_sheds () =
  let ks = K.make (prov ()) in
  let mgr = Session.create_manager ~max_sessions:2 ks in
  let s1 = qok (Session.open_ mgr) and s2 = qok (Session.open_ mgr) in
  let shed0 = Session.shed_total mgr in
  (match Session.open_ mgr with
  | Error (K.Error.Overloaded { resource = "sessions"; capacity = 2; in_use = 2 }) -> ()
  | Error e -> Alcotest.failf "wrong shed error: %s" (K.Error.to_string e)
  | Ok _ -> Alcotest.fail "third session admitted above the cap");
  check_int "shed counted" (shed0 + 1) (Session.shed_total mgr);
  Session.close s1;
  (* Capacity freed: admission recovers. *)
  let s3 = qok (Session.open_ mgr) in
  Session.close s2;
  Session.close s3

let test_queue_sheds_under_load () =
  let ks = K.make (prov ()) in
  (* One execution slot, no queue: any request arriving while another
     executes must shed. A background session hammers a slow query;
     the foreground one retries a cheap query until it gets shed. *)
  let mgr = Session.create_manager ~max_inflight:1 ~max_queue:0 ks in
  let slow_s = qok (Session.open_ mgr) and fast_s = qok (Session.open_ mgr) in
  let slow_q = K.parse "MATCH (a:Job)-[r*1..4]->(b:Job) RETURN a, b" in
  let fast_q = K.parse "MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a, f" in
  let stop = Atomic.make false in
  let hammer =
    Thread.create
      (fun () -> while not (Atomic.get stop) do ignore (Session.run slow_s slow_q) done)
      ()
  in
  let shed = ref None in
  let attempts = ref 0 in
  while !shed = None && !attempts < 2_000 do
    incr attempts;
    match Session.run fast_s fast_q with
    | Error (K.Error.Overloaded _ as e) -> shed := Some e
    | _ -> Thread.yield ()
  done;
  Atomic.set stop true;
  Thread.join hammer;
  (match !shed with
  | Some (K.Error.Overloaded { resource; _ }) -> check_string "queue shed" "queue" resource
  | _ -> Alcotest.fail "no request shed while the only slot was busy");
  (* Load gone: the same request is admitted again. *)
  ignore (qok (Session.run fast_s fast_q));
  Session.close slow_s;
  Session.close fast_s

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)

let test_wire_parse_request () =
  let ok = function Ok r -> r | Error e -> Alcotest.failf "parse failed: %s" e in
  check_bool "ping" true (ok (Wire.parse_request "PING") = Wire.Ping);
  check_bool "open" true (ok (Wire.parse_request "OPEN") = Wire.Open);
  check_bool "query keeps spaces" true
    (ok (Wire.parse_request "Q MATCH (a:Job) RETURN a")
    = Wire.Query { q = "MATCH (a:Job) RETURN a"; trace = None });
  check_bool "rows variant" true
    (ok (Wire.parse_request "ROWS MATCH (a:Job) RETURN a")
    = Wire.Query_rows { q = "MATCH (a:Job) RETURN a"; trace = None });
  check_bool "query with trace id" true
    (ok (Wire.parse_request "Q trace=00deadbeef123abc MATCH (a:Job) RETURN a")
    = Wire.Query { q = "MATCH (a:Job) RETURN a"; trace = Some "00deadbeef123abc" });
  check_bool "bad trace id rejected" true
    (Result.is_error (Wire.parse_request "Q trace=xyz MATCH (a:Job) RETURN a"));
  check_bool "trace without query rejected" true
    (Result.is_error (Wire.parse_request "Q trace=00deadbeef123abc"));
  check_bool "health verb" true (ok (Wire.parse_request "HEALTH") = Wire.Health);
  check_bool "metrics verb" true (ok (Wire.parse_request "METRICS") = Wire.Metrics);
  (match ok (Wire.parse_request "UPDATE insert-vertex:File;insert-edge:3:4:WRITES_TO;delete-edge:1:2:IS_READ_BY") with
  | Wire.Update
      [ K.Update.Insert_vertex { vtype = "File"; props = [] };
        K.Update.Insert_edge { src = 3; dst = 4; etype = "WRITES_TO"; props = [] };
        K.Update.Delete_edge { src = 1; dst = 2; etype = "IS_READ_BY" } ] -> ()
  | _ -> Alcotest.fail "update ops misparsed");
  check_bool "empty query rejected" true (Result.is_error (Wire.parse_request "Q"));
  check_bool "unknown verb rejected" true (Result.is_error (Wire.parse_request "FROB x"));
  check_bool "bad op rejected" true (Result.is_error (Wire.parse_request "UPDATE drop-table:x"))

let test_wire_fields_roundtrip () =
  let line = Wire.ok [ ("rows", "12"); ("checksum", "ab12"); ("version", "3") ] in
  (match Wire.fields line with
  | Some [ ("_status", "ok"); ("rows", "12"); ("checksum", "ab12"); ("version", "3") ] -> ()
  | _ -> Alcotest.failf "ok fields misparsed: %s" line);
  let e = K.Error.Overloaded { resource = "queue"; capacity = 4; in_use = 4 } in
  (match Wire.fields (Wire.err e) with
  | Some (("_status", "err") :: ("label", "overloaded") :: ("msg", msg) :: _) ->
    check_string "message round-trips (with spaces)" (K.Error.to_string e) msg
  | _ -> Alcotest.failf "err fields misparsed: %s" (Wire.err e));
  check_bool "row lines are not fields" true (Wire.fields "| a -> b" = None)

(* ------------------------------------------------------------------ *)
(* Server over a real socket                                           *)

let test_server_socket_roundtrip () =
  let ks = K.make (prov ()) in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kaskade-test-%d.sock" (Unix.getpid ()))
  in
  let server = Serve.Server.create ~max_sessions:4 ~socket ks in
  let th = Thread.create (fun () -> Serve.Server.run server) () in
  let c = Serve.Client.connect socket in
  let req line = Serve.Client.status (Serve.Client.request c line) in
  check_string "ping" "1" (List.assoc "pong" (req "PING"));
  check_string "open pins v0" "0" (List.assoc "version" (req "OPEN"));
  let q = List.hd mvcc_queries in
  let kvs = req ("Q " ^ q) in
  check_string "query ok" "ok" (List.assoc "_status" kvs);
  check_string "checksum matches the serial run" (Wire.checksum (serial_render (K.graph ks) (K.parse q)))
    (List.assoc "checksum" kvs);
  (* ROWS streams the rendered table (prefixed lines), then the same
     terminal line Q produces. *)
  let lines = Serve.Client.request c ("ROWS " ^ q) in
  let rows = List.filter (fun l -> String.length l >= 2 && String.sub l 0 2 = "| ") lines in
  check_bool "row lines streamed" true (rows <> []);
  check_string "ROWS checksum agrees with Q" (List.assoc "checksum" kvs)
    (List.assoc "checksum" (Serve.Client.status lines));
  let kvs = req "UPDATE insert-vertex:File" in
  check_string "update applied" "1" (List.assoc "applied" kvs);
  check_string "still reading the pinned snapshot" (List.assoc "checksum" (req ("Q " ^ q)))
    (Wire.checksum (serial_render (K.graph ks) (K.parse q)));
  check_string "bad query is a typed ERR" "err" (List.assoc "_status" (req "Q MATCH ("));
  check_string "protocol violation labelled" "proto"
    (List.assoc "label" (Serve.Client.status (Serve.Client.request c "FROB")));
  check_string "stats sees the session" "1" (List.assoc "sessions" (req "STATS"));
  check_string "close" "ok" (List.assoc "_status" (req "CLOSE"));
  check_string "shutdown" "1" (List.assoc "bye" (req "SHUTDOWN"));
  Serve.Client.close c;
  Thread.join th;
  check_bool "socket file removed" false (Sys.file_exists socket)

(* One socket query = one trace id, observable end to end: echoed in
   the wire response, stamped into the qlog record next to the session
   id, and counted by the METRICS / HEALTH / STATS surfaces. Durable
   config, so STATS carries the store gauges too. *)
let test_server_trace_health_metrics () =
  let rec rm_rf path =
    match Unix.lstat path with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kaskade-test-serve-obs-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  let ks = K.make ~config:{ K.Config.default with K.Config.data_dir = Some dir } (prov ()) in
  let socket = Filename.concat dir "kaskade.sock" in
  let server = Serve.Server.create ~max_sessions:4 ~sample_every_s:0.05 ~socket ks in
  let th = Thread.create (fun () -> Serve.Server.run server) () in
  let c = Serve.Client.connect socket in
  let req line = Serve.Client.status (Serve.Client.request c line) in
  ignore (req "OPEN");
  Kaskade_obs.Qlog.clear ();
  let q = List.hd mvcc_queries in
  let id = Kaskade_obs.Tracectx.mint () in
  let kvs = req (Printf.sprintf "Q trace=%s %s" id q) in
  check_string "query ok" "ok" (List.assoc "_status" kvs);
  check_string "client trace id echoed" id (List.assoc "trace" kvs);
  (match List.rev (Kaskade_obs.Qlog.records ()) with
  | last :: _ ->
    check_bool "qlog record carries the trace id" true
      (last.Kaskade_obs.Qlog.trace = Some id);
    check_bool "qlog record names the session" true (last.Kaskade_obs.Qlog.session <> None)
  | [] -> Alcotest.fail "no qlog record for the served query");
  let minted = List.assoc "trace" (req ("Q " ^ q)) in
  check_bool "server mints a valid trace id" true (Kaskade_obs.Tracectx.is_valid minted);
  check_bool "minted id is fresh" true (minted <> id);
  (* HEALTH: a quiet durable server is ok, and the response carries
     the judged admission signals. *)
  let h = req "HEALTH" in
  check_string "health responds ok" "ok" (List.assoc "_status" h);
  check_string "quiet server is healthy" "ok" (List.assoc "status" h);
  check_bool "health reports queue depth" true (List.mem_assoc "queue_depth" h);
  check_bool "health reports shed rate" true (List.mem_assoc "shed_rate" h);
  (* STATS: store gauges ride along under a durable config. *)
  let s = req "STATS" in
  List.iter
    (fun k -> check_bool ("stats has " ^ k) true (List.mem_assoc k s))
    [ "wal_appends"; "wal_bytes"; "wal_seq"; "snapshot_seq" ];
  (* METRICS: the Prometheus page streams as prefixed lines, and the
     serve-request counter has counted this connection's requests. *)
  let lines = Serve.Client.request c "METRICS" in
  let body =
    List.filter_map
      (fun l ->
        if String.length l >= 2 && String.sub l 0 2 = "| " then
          Some (String.sub l 2 (String.length l - 2))
        else None)
      lines
  in
  check_bool "metrics lines streamed" true (body <> []);
  let starts_with p l = String.length l >= String.length p && String.sub l 0 (String.length p) = p in
  check_bool "serve request counter exposed" true
    (List.exists (starts_with "kaskade_serve_requests_total") body);
  check_bool "slow-query counter exposed" true
    (List.exists (starts_with "kaskade_slow_queries_total") body);
  check_string "metrics terminal ok" "ok" (List.assoc "_status" (Serve.Client.status lines));
  ignore (req "CLOSE");
  ignore (req "SHUTDOWN");
  Serve.Client.close c;
  Thread.join th;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Deprecated wrappers (out-of-tree compatibility)                     *)

(* In-tree, deprecated-API use is a build error ([-alert @deprecated]
   in every dune stanza); this module is the one sanctioned exception,
   proving the wrappers still behave for external callers. *)
module Compat = struct
  [@@@alert "-deprecated"]

  let test_deprecated_create_run () =
    let g = prov () in
    let old_ks = K.create ~alpha:95.0 ~auto_refresh:false g in
    let new_ks = K.make ~config:{ K.Config.default with auto_refresh = false } g in
    let q = K.parse (List.hd mvcc_queries) in
    let old_r, old_how = K.run old_ks q in
    let new_r, new_how = qok (K.query new_ks q) in
    check_bool "same routing" true (old_how = new_how);
    check_string "same bytes" (Wire.render_result g new_r) (Wire.render_result g old_r);
    check_string "run_raw = query ~target:Base" (Wire.render_result g (K.run_raw old_ks q))
      (Wire.render_result g (fst (qok (K.query ~target:K.Base new_ks q))));
    match K.run_result new_ks q with
    | Ok (r, _) -> check_string "run_result still typed" (Wire.render_result g new_r) (Wire.render_result g r)
    | Error e -> Alcotest.failf "run_result failed: %s" (K.Error.to_string e)
end

let () =
  Alcotest.run "serve"
    [
      ( "overlay-pin",
        [ Alcotest.test_case "pin/unpin/pinned_versions" `Quick test_overlay_pin_unpin ] );
      ("errors", [ Alcotest.test_case "of_exn Unix_error/Overload" `Quick test_error_of_exn ]);
      ( "mvcc",
        [ Alcotest.test_case "pinned readers vs writer" `Slow test_mvcc_pinned_readers ] );
      ( "admission",
        [
          Alcotest.test_case "session cap sheds typed" `Quick test_session_cap_sheds;
          Alcotest.test_case "queue sheds under load" `Slow test_queue_sheds_under_load;
        ] );
      ( "wire",
        [
          Alcotest.test_case "parse_request" `Quick test_wire_parse_request;
          Alcotest.test_case "fields round-trip" `Quick test_wire_fields_roundtrip;
        ] );
      ( "server",
        [ Alcotest.test_case "socket round-trip" `Slow test_server_socket_roundtrip;
          Alcotest.test_case "trace + health + metrics end to end" `Slow
            test_server_trace_health_metrics ] );
      ( "compat",
        [ Alcotest.test_case "deprecated wrappers" `Quick Compat.test_deprecated_create_run ] );
    ]
