open Kaskade_graph
open Kaskade_views
module K = Kaskade

let qok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected facade error: %s" (K.Error.to_string e)

let krun ks q = qok (K.query ks q)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Substring containment without the Str dependency. *)
let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let prov_schema = Kaskade_gen.Provenance_gen.schema

let lineage_schema =
  Schema.define ~vertices:[ "Job"; "File" ]
    ~edges:[ ("Job", "WRITES_TO", "File"); ("File", "IS_READ_BY", "Job") ]

(* Paper Listing 1. *)
let q1_text =
  "SELECT A.pipelineName, AVG(T_CPU) FROM (SELECT A, SUM(B.CPU) AS T_CPU FROM (MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File) (q_f1:File)-[r*0..8]->(q_f2:File) (q_f2:File)-[:IS_READ_BY]->(q_j2:Job) RETURN q_j1 as A, q_j2 as B) GROUP BY A, B) GROUP BY A.pipelineName"

let q2_text = "MATCH (j:Job)<-[r*1..4]-(anc:Job) RETURN j, anc"
let _q3_text = "MATCH (j:Job)-[r*1..4]->(desc:Job) RETURN j, desc"

let q1 = K.parse q1_text
let q2 = K.parse q2_text

let view_names (e : K.Enumerate.enumeration) =
  List.map (fun (c : K.Enumerate.candidate) -> View.name c.K.Enumerate.view) e.K.Enumerate.candidates

(* ------------------------------------------------------------------ *)
(* Facts (paper §IV-A1)                                                *)

let test_query_facts_listing1 () =
  let facts = K.Facts.query_facts lineage_schema q1 in
  let s = K.Facts.facts_to_string facts in
  let contains needle = string_contains s needle in
  (* The exact facts of §IV-A1. *)
  List.iter
    (fun f -> check_bool f true (contains f))
    [ "queryVertex(q_f1)."; "queryVertex(q_f2)."; "queryVertex(q_j1)."; "queryVertex(q_j2).";
      "queryVertexType(q_f1, 'File')."; "queryVertexType(q_j1, 'Job').";
      "queryEdge(q_j1, q_f1)."; "queryEdge(q_f2, q_j2).";
      "queryEdgeType(q_j1, q_f1, 'WRITES_TO')."; "queryEdgeType(q_f2, q_j2, 'IS_READ_BY').";
      "queryVariableLengthPath(q_f1, q_f2, 0, 8)." ]

let test_query_facts_returned () =
  let facts = K.Facts.query_facts lineage_schema q1 in
  let s = K.Facts.facts_to_string facts in
  check_bool "q_j1 projected" true (string_contains s "queryReturned(q_j1).")

let test_schema_facts () =
  let s = K.Facts.facts_to_string (K.Facts.schema_facts lineage_schema) in
  List.iter
    (fun f ->
      check_bool f true (string_contains s f))
    [ "schemaVertex('Job')."; "schemaVertex('File').";
      "schemaEdge('Job', 'File', 'WRITES_TO')."; "schemaEdge('File', 'Job', 'IS_READ_BY')." ]

let test_homogeneous_untyped_vars_typed () =
  let homo = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "LINK", "V") ] in
  let q = K.parse "MATCH (a)-[r*1..4]->(b) RETURN a, b" in
  let s = K.Facts.facts_to_string (K.Facts.query_facts homo q) in
  check_bool "a typed V" true (string_contains s "queryVertexType(a, 'V')")

(* ------------------------------------------------------------------ *)
(* Enumeration (paper §IV-B)                                           *)

let test_enumeration_matches_paper_example () =
  (* §IV-B: for Listing 1, the kHopConnector instantiations for
     (q_j1, q_j2) are exactly K in {2, 4, 6, 8, 10}. *)
  let e = K.Enumerate.enumerate lineage_schema q1 in
  let khops =
    List.filter_map
      (fun (c : K.Enumerate.candidate) ->
        match c.K.Enumerate.view with
        | View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k }) -> Some k
        | _ -> None)
      e.K.Enumerate.candidates
  in
  Alcotest.(check (list int)) "paper's K values" [ 2; 4; 6; 8; 10 ] (List.sort compare khops)

let test_enumeration_bridges () =
  let e = K.Enumerate.enumerate lineage_schema q1 in
  let bridge =
    List.find_map
      (fun (c : K.Enumerate.candidate) ->
        match c.K.Enumerate.view with
        | View.Connector (View.K_hop { k = 2; _ }) -> c.K.Enumerate.bridges
        | _ -> None)
      e.K.Enumerate.candidates
  in
  check_bool "bridges q_j1 -> q_j2" true (bridge = Some ("q_j1", "q_j2"))

let test_enumeration_summarizer () =
  let e = K.Enumerate.enumerate prov_schema q1 in
  check_bool "keep Job+File summarizer" true
    (List.mem "KEEP_V_FILE_JOB" (view_names e))

let test_enumeration_no_summarizer_when_all_types_used () =
  (* Over the two-type schema, Q1 touches both types: no inclusion
     summarizer is proposed. *)
  let e = K.Enumerate.enumerate lineage_schema q1 in
  check_bool "no KEEP view" true
    (not (List.exists (fun n -> String.length n > 5 && String.sub n 0 5 = "KEEP_") (view_names e)))

let test_enumeration_q2_even_hops_only () =
  let e = K.Enumerate.enumerate lineage_schema q2 in
  let khops =
    List.filter_map
      (fun (c : K.Enumerate.candidate) ->
        match c.K.Enumerate.view with
        | View.Connector (View.K_hop { k; _ }) -> Some k
        | _ -> None)
      e.K.Enumerate.candidates
  in
  Alcotest.(check (list int)) "schema rules out odd K" [ 2; 4 ] (List.sort compare khops)

let test_enumeration_constraint_pruning () =
  (* The §IV claim: injected constraints shrink the search. On the
     full 5-type provenance schema the schema-only space grows with
     the number of k-length type paths (the paper's M^k argument). *)
  let constrained = K.Enumerate.enumerate prov_schema q1 in
  let unconstrained = K.Enumerate.enumerate_unconstrained prov_schema ~max_k:10 in
  check_bool "fewer candidates" true
    (List.length constrained.K.Enumerate.candidates
     < List.length unconstrained.K.Enumerate.candidates);
  check_bool "fewer inference steps" true
    (constrained.K.Enumerate.inference_steps < unconstrained.K.Enumerate.inference_steps)

let test_enumeration_unconstrained_space () =
  (* Schema 2-cycle: Job->File->Job. k-hop type paths up to 10 exist
     for every k (Job start for even k to Job, odd to File, plus File
     starts): 2 paths per k and 2 same-type closures. *)
  let e = K.Enumerate.enumerate_unconstrained lineage_schema ~max_k:10 in
  check_int "schema-only candidates" 22 (List.length e.K.Enumerate.candidates)

let test_enumeration_deterministic () =
  let a = view_names (K.Enumerate.enumerate lineage_schema q1) in
  let b = view_names (K.Enumerate.enumerate lineage_schema q1) in
  Alcotest.(check (list string)) "stable" a b

let test_enumeration_homogeneous () =
  let homo = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "LINK", "V") ] in
  let q = K.parse "MATCH (a)-[r*1..4]->(b) RETURN a, b" in
  let e = K.Enumerate.enumerate homo q in
  let khops =
    List.filter_map
      (fun (c : K.Enumerate.candidate) ->
        match c.K.Enumerate.view with
        | View.Connector (View.K_hop { k; _ }) -> Some k
        | _ -> None)
      e.K.Enumerate.candidates
  in
  Alcotest.(check (list int)) "every k feasible" [ 1; 2; 3; 4 ] (List.sort compare khops)


(* ------------------------------------------------------------------ *)
(* Rule library semantics (paper Listings 2 and 6)                     *)

let engine_for schema query =
  let facts = K.Facts.query_facts schema query @ K.Facts.schema_facts schema in
  let db = Kaskade_prolog.Prelude.db_with_prelude () in
  Kaskade_prolog.Db.load db K.Rules.all;
  K.Facts.assert_all db facts;
  Kaskade_prolog.Engine.create db

let test_rules_schema_khop () =
  let e = engine_for lineage_schema q1 in
  let holds = Kaskade_prolog.Engine.holds e in
  check_bool "2-hop job-job feasible" true (holds "schemaKHopPath('Job', 'Job', 2)");
  check_bool "4-hop job-job feasible" true (holds "schemaKHopPath('Job', 'Job', 4)");
  check_bool "3-hop job-job infeasible" false (holds "schemaKHopPath('Job', 'Job', 3)");
  check_bool "1-hop job-file feasible" true (holds "schemaKHopPath('Job', 'File', 1)")

let test_rules_acyclic_variant_matches_paper () =
  (* The paper's Listing 2 as written: the type trail blocks K = 4
     job-to-job paths on the two-type schema — the divergence from its
     own §IV-B example that DESIGN.md documents. *)
  let e = engine_for lineage_schema q1 in
  let holds = Kaskade_prolog.Engine.holds e in
  check_bool "acyclic 2-hop ok" true (holds "schemaKHopPathAcyclic('Job', 'Job', 2)");
  check_bool "acyclic rejects 4-hop" false (holds "schemaKHopPathAcyclic('Job', 'Job', 4)")

let test_rules_query_khop () =
  let e = engine_for lineage_schema q1 in
  let ks =
    List.filter_map
      (fun b ->
        match List.assoc "K" b with Kaskade_prolog.Term.Int k -> Some k | _ -> None)
      (Kaskade_prolog.Engine.all_solutions e "queryKHopPath(q_j1, q_j2, K)")
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "K = 2..10 realizable" [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ] ks

let test_rules_sources_sinks () =
  let e = engine_for lineage_schema q1 in
  let holds = Kaskade_prolog.Engine.holds e in
  (* In Listing 1's pattern, q_j1 has no incoming pattern edge and
     q_j2 no outgoing one. *)
  check_bool "q_j1 source" true (holds "queryVertexSource(q_j1)");
  check_bool "q_j2 sink" true (holds "queryVertexSink(q_j2)");
  check_bool "q_f1 not source" false (holds "queryVertexSource(q_f1)")

let test_rules_khop_nbors () =
  let e = engine_for lineage_schema q1 in
  match Kaskade_prolog.Engine.first_solution e "queryVertexKHopNbors(1, q_f1, L)" with
  | Some b -> begin
    match Kaskade_prolog.Term.to_list (List.assoc "L" b) with
    | Some items ->
      (* 1-hop pattern neighbours of q_f1: q_j1 (incoming edge), q_f2
         (the variable-length edge admits K = 1), and q_j2 (the
         variable-length edge also admits K = 0, collapsing q_f1 and
         q_f2, whose read edge then puts q_j2 one hop away). *)
      Alcotest.(check (list string)) "ego neighbourhood" [ "q_f2"; "q_j1"; "q_j2" ]
        (List.sort compare (List.map Kaskade_prolog.Term.to_string items))
    | None -> Alcotest.fail "not a list"
  end
  | None -> Alcotest.fail "no solution"

(* ------------------------------------------------------------------ *)
(* Estimator (paper §V-A, Eq. 1-3)                                     *)

let test_erdos_renyi_formula () =
  (* n=4, m=3, k=2: C(4,3) * (3 / C(4,2))^2 = 4 * 0.25 = 1. *)
  Alcotest.(check (float 1e-9)) "eq 1" 1.0 (K.Estimator.erdos_renyi ~n:4 ~m:3 ~k:2);
  Alcotest.(check (float 1e-9)) "degenerate" 0.0 (K.Estimator.erdos_renyi ~n:2 ~m:1 ~k:2);
  Alcotest.(check (float 1e-9)) "no edges" 0.0 (K.Estimator.erdos_renyi ~n:10 ~m:0 ~k:2)

let uniform_graph () =
  (* 4 vertices in a directed cycle: every out-degree exactly 1. *)
  let schema = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "E", "V") ] in
  let b = Builder.create schema in
  let ids = Array.init 4 (fun _ -> Builder.add_vertex b ~vtype:"V" ()) in
  Array.iteri (fun i v -> ignore (Builder.add_edge b ~src:v ~dst:ids.((i + 1) mod 4) ~etype:"E" ())) ids;
  Graph.freeze b

let test_homogeneous_estimator () =
  let stats = Gstats.compute (uniform_graph ()) in
  (* n * deg^k = 4 * 1^3. *)
  Alcotest.(check (float 1e-9)) "eq 2" 4.0 (K.Estimator.homogeneous stats ~k:3 ~alpha:95.0)

let test_heterogeneous_estimator () =
  let b = Builder.create lineage_schema in
  let j = Array.init 2 (fun _ -> Builder.add_vertex b ~vtype:"Job" ()) in
  let f = Array.init 2 (fun _ -> Builder.add_vertex b ~vtype:"File" ()) in
  ignore (Builder.add_edge b ~src:j.(0) ~dst:f.(0) ~etype:"WRITES_TO" ());
  ignore (Builder.add_edge b ~src:j.(1) ~dst:f.(1) ~etype:"WRITES_TO" ());
  ignore (Builder.add_edge b ~src:f.(0) ~dst:j.(1) ~etype:"IS_READ_BY" ());
  let g = Graph.freeze b in
  let stats = Gstats.compute g in
  (* deg95(Job)=1, deg95(File)=1: 2*1 + 2*1 = 4. *)
  Alcotest.(check (float 1e-9)) "eq 3" 4.0 (K.Estimator.heterogeneous stats ~k:2 ~alpha:95.0)

let test_typed_chain () =
  let g = Kaskade_gen.Provenance_gen.(generate { default with jobs = 100; files = 200; seed = 4 }) in
  let stats = Gstats.compute g in
  let est =
    K.Estimator.typed_chain stats (Graph.schema g) ~src_type:"Job" ~dst_type:"Job" ~k:2 ~alpha:100.0
  in
  (* alpha=100 is an upper bound on the number of 2-walks. *)
  let actual =
    Kaskade_algo.Paths.count_k_walks_between g ~k:2
      ~src_type:(Schema.vertex_type_id (Graph.schema g) "Job")
      ~dst_type:(Schema.vertex_type_id (Graph.schema g) "Job")
  in
  check_bool "alpha=100 upper-bounds walks" true (est >= actual);
  Alcotest.(check (float 1e-9)) "no odd-hop job-job paths" 0.0
    (K.Estimator.typed_chain stats (Graph.schema g) ~src_type:"Job" ~dst_type:"Job" ~k:3 ~alpha:95.0)

let test_er_underestimates_powerlaw () =
  (* The paper's observation: the ER estimator underestimates path
     counts on skewed real graphs by orders of magnitude. *)
  let g =
    Kaskade_gen.Powerlaw_gen.(generate { default with vertices = 2_000; edges = 10_000; seed = 7 })
  in
  let actual = Kaskade_algo.Paths.count_k_walks g ~k:2 in
  let er = K.Estimator.erdos_renyi ~n:(Graph.n_vertices g) ~m:(Graph.n_edges g) ~k:2 in
  check_bool "ER well below actual" true (er < actual /. 2.0)

let test_view_size_summarizer () =
  let g = Kaskade_gen.Provenance_gen.(generate { default with jobs = 100; files = 200; seed = 4 }) in
  let stats = Gstats.compute g in
  let est =
    K.Estimator.view_size stats (Graph.schema g) ~alpha:95.0
      (View.Summarizer (View.Vertex_inclusion [ "Job"; "File" ]))
  in
  check_bool "smaller than raw graph" true (est < float_of_int (Graph.n_edges g));
  check_bool "positive" true (est > 0.0)

(* ------------------------------------------------------------------ *)
(* Rewrite (paper §V-C)                                                *)

let conn2 = View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 })

let test_rewrite_listing1_to_listing4_shape () =
  match K.Rewrite.rewrite lineage_schema q1 conn2 with
  | Some rw -> begin
    match Kaskade_query.Ast.patterns_of rw.K.Rewrite.rewritten with
    | [ { Kaskade_query.Ast.p_start; p_steps = [ (e, p_end) ] } ] ->
      check_bool "start is Job" true (p_start.Kaskade_query.Ast.n_label = Some "Job");
      check_bool "end is Job" true (p_end.Kaskade_query.Ast.n_label = Some "Job");
      check_bool "connector edge" true (e.Kaskade_query.Ast.e_label = Some "JOB_TO_JOB_2HOP");
      check_bool "halved hops" true (e.Kaskade_query.Ast.e_len = Kaskade_query.Ast.Var_length (1, 5))
    | _ -> Alcotest.fail "expected a single contracted pattern"
  end
  | None -> Alcotest.fail "rewrite refused"

let test_rewrite_refuses_uncovering_k () =
  (* A 4-hop connector covers only multiples of 4 and must be refused
     for the 2..10-hop segment. *)
  let conn4 = View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 4 }) in
  check_bool "refused" true (K.Rewrite.rewrite lineage_schema q1 conn4 = None)

let test_rewrite_backward_segment () =
  match K.Rewrite.rewrite lineage_schema q2 conn2 with
  | Some rw -> begin
    match Kaskade_query.Ast.patterns_of rw.K.Rewrite.rewritten with
    | [ { Kaskade_query.Ast.p_steps = [ (e, _) ]; _ } ] ->
      check_bool "stays backward" true (e.Kaskade_query.Ast.e_dir = Kaskade_query.Ast.Bwd);
      check_bool "hops 1..2" true (e.Kaskade_query.Ast.e_len = Kaskade_query.Ast.Var_length (1, 2))
    | _ -> Alcotest.fail "single pattern expected"
  end
  | None -> Alcotest.fail "rewrite refused"

let test_rewrite_preserves_interior_reference () =
  (* If a middle vertex is projected, contraction across it must not
     happen. *)
  let q = K.parse "MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(b:Job) RETURN a, f, b" in
  check_bool "refused when interior used" true (K.Rewrite.rewrite lineage_schema q conn2 = None)

let test_rewrite_homogeneous_odd_hops_refused () =
  let homo = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "LINK", "V") ] in
  let q = K.parse "MATCH (a:V)-[r*1..4]->(b:V) RETURN a, b" in
  let conn = View.Connector (View.K_hop { src_type = "V"; dst_type = "V"; k = 2 }) in
  (* Odd hop counts are feasible on a homogeneous schema; a 2-hop
     connector cannot cover them. *)
  check_bool "refused" true (K.Rewrite.rewrite homo q conn = None)

let test_rewrite_homogeneous_even_range () =
  let homo = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "LINK", "V") ] in
  let q = K.parse "MATCH (a:V)-[r*2..2]->(b:V) RETURN a, b" in
  let conn = View.Connector (View.K_hop { src_type = "V"; dst_type = "V"; k = 2 }) in
  match K.Rewrite.rewrite homo q conn with
  | Some rw -> begin
    match Kaskade_query.Ast.patterns_of rw.K.Rewrite.rewritten with
    | [ { Kaskade_query.Ast.p_steps = [ (e, _) ]; _ } ] ->
      check_bool "single connector hop" true (e.Kaskade_query.Ast.e_len = Kaskade_query.Ast.Single)
    | _ -> Alcotest.fail "pattern shape"
  end
  | None -> Alcotest.fail "refused"

let test_rewrite_summarizer_applicability () =
  let keep = View.Summarizer (View.Vertex_inclusion [ "Job"; "File" ]) in
  (* Q1 only touches Job/File: applicable (query unchanged). *)
  (match K.Rewrite.rewrite prov_schema q1 keep with
  | Some rw ->
    check_string "identity rewrite" (Kaskade_query.Pretty.to_string q1)
      (Kaskade_query.Pretty.to_string rw.K.Rewrite.rewritten)
  | None -> Alcotest.fail "should apply");
  (* A query touching Users is not answerable from the view. *)
  let qu = K.parse "MATCH (u:User)-[:SUBMITTED]->(j:Job) RETURN u, j" in
  check_bool "user query refused" true (K.Rewrite.rewrite prov_schema qu keep = None)

let test_rewrite_edge_removal_applicability () =
  let drop = View.Summarizer (View.Edge_removal [ "SUBMITTED" ]) in
  let q_ok = K.parse "MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a, f" in
  check_bool "applies" true (K.Rewrite.rewrite prov_schema q_ok drop <> None);
  let q_bad = K.parse "MATCH (u:User)-[:SUBMITTED]->(j:Job) RETURN u, j" in
  check_bool "refused" true (K.Rewrite.rewrite prov_schema q_bad drop = None)

let test_merge_chains () =
  let q = K.parse "MATCH (a:Job)-[:WRITES_TO]->(f:File), (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b" in
  let merged = K.Rewrite.merge_chains (Kaskade_query.Ast.patterns_of q) in
  check_int "one chain" 1 (List.length merged);
  match merged with
  | [ { Kaskade_query.Ast.p_steps; _ } ] -> check_int "two steps" 2 (List.length p_steps)
  | _ -> Alcotest.fail "merge shape"

let test_rewrite_same_vertex_type_not_mechanized () =
  let v = View.Connector (View.Same_vertex_type { vtype = "Job" }) in
  check_bool "not mechanized" true (K.Rewrite.rewrite lineage_schema q1 v = None)

(* ------------------------------------------------------------------ *)
(* Selection (paper §V-B)                                              *)

let prov_graph () = Kaskade_gen.Provenance_gen.(generate { default with jobs = 300; files = 600; seed = 42 })

let test_selection_picks_2hop () =
  let g = prov_graph () in
  let stats = Gstats.compute g in
  let sel =
    K.Selection.select stats (Graph.schema g) ~queries:[ q1; q2 ] ~budget_edges:1_000_000
  in
  let chosen = List.map View.name sel.K.Selection.chosen in
  check_bool "2-hop connector chosen" true (List.mem "JOB_TO_JOB_2HOP" chosen)

let test_selection_budget_zero () =
  let g = prov_graph () in
  let stats = Gstats.compute g in
  let sel = K.Selection.select stats (Graph.schema g) ~queries:[ q1 ] ~budget_edges:0 in
  check_int "nothing chosen" 0 (List.length sel.K.Selection.chosen)

let test_selection_respects_budget () =
  let g = prov_graph () in
  let stats = Gstats.compute g in
  let sel = K.Selection.select stats (Graph.schema g) ~queries:[ q1; q2 ] ~budget_edges:5_000 in
  check_bool "weight under budget" true (sel.K.Selection.total_weight <= 5_000)

let test_selection_infeasible_k_zero_value () =
  let g = prov_graph () in
  let stats = Gstats.compute g in
  let sel = K.Selection.select stats (Graph.schema g) ~queries:[ q1 ] ~budget_edges:1_000_000 in
  List.iter
    (fun (r : K.Selection.candidate_report) ->
      match r.K.Selection.view with
      | View.Connector (View.K_hop { k; _ }) when k > 2 ->
        Alcotest.(check (float 1e-9)) "k>2 connectors worthless for Q1" 0.0 r.K.Selection.improvement
      | _ -> ())
    sel.K.Selection.reports

let test_selection_solvers_agree () =
  let g = prov_graph () in
  let stats = Gstats.compute g in
  let bnb =
    K.Selection.select ~solver:K.Selection.Branch_and_bound stats (Graph.schema g)
      ~queries:[ q1 ] ~budget_edges:100_000
  in
  let dp =
    K.Selection.select ~solver:K.Selection.Dp stats (Graph.schema g) ~queries:[ q1 ]
      ~budget_edges:100_000
  in
  Alcotest.(check (float 1e-9)) "same optimum" bnb.K.Selection.total_value dp.K.Selection.total_value

let test_selection_query_weights () =
  let g = prov_graph () in
  let stats = Gstats.compute g in
  let sel =
    K.Selection.select ~query_weights:[ 10.0 ] stats (Graph.schema g) ~queries:[ q1 ]
      ~budget_edges:1_000_000
  in
  let base = K.Selection.select stats (Graph.schema g) ~queries:[ q1 ] ~budget_edges:1_000_000 in
  let imp sel' =
    List.fold_left (fun acc (r : K.Selection.candidate_report) -> acc +. r.K.Selection.improvement)
      0.0 sel'.K.Selection.reports
  in
  check_bool "weights scale improvement" true (imp sel > (5.0 *. imp base))

(* ------------------------------------------------------------------ *)
(* Facade end-to-end                                                   *)

let test_facade_end_to_end_equivalence () =
  let g = prov_graph () in
  let ks = K.make g in
  let sel = K.select_views ks ~queries:[ q1 ] ~budget_edges:2_000_000 in
  ignore (K.materialize_selected ks sel);
  (* Distinct (A, B) job-pair equivalence raw vs view-based. *)
  let pairs_query =
    K.parse
      "MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File) (q_f1:File)-[r*0..8]->(q_f2:File) (q_f2:File)-[:IS_READ_BY]->(q_j2:Job) RETURN q_j1 as A, q_j2 as B"
  in
  let to_set (t : Kaskade_exec.Row.table) =
    List.sort_uniq compare
      (List.map
         (fun row ->
           match row with
           | [| Kaskade_exec.Row.V a; Kaskade_exec.Row.V b |] ->
             let name g' v = match Graph.vprop g' v "name" with Some (Value.Str s) -> s | _ -> "?" in
             ignore name;
             (a, b)
           | _ -> (-1, -1))
         t.Kaskade_exec.Row.rows)
  in
  let raw = Kaskade_exec.Executor.table_exn (fst (qok (K.query ~target:K.Base ks pairs_query))) in
  let via, how = krun ks pairs_query in
  let via = Kaskade_exec.Executor.table_exn via in
  (match how with
  | K.Via_view _ -> ()
  | K.Raw -> Alcotest.fail "expected a view-based answer");
  (* Vertex ids differ between graphs; compare by name. *)
  let names_of g' t =
    List.sort_uniq compare
      (List.filter_map
         (fun row ->
           match row with
           | [| Kaskade_exec.Row.V a; Kaskade_exec.Row.V b |] -> begin
             match (Graph.vprop g' a "name", Graph.vprop g' b "name") with
             | Some (Value.Str x), Some (Value.Str y) -> Some (x, y)
             | _ -> None
           end
           | _ -> None)
         t.Kaskade_exec.Row.rows)
  in
  ignore to_set;
  let view_graph =
    match how with
    | K.Via_view name -> begin
      match Catalog.find_by_name (K.catalog ks) name with
      | Some e -> e.Catalog.materialized.Materialize.graph
      | None -> Alcotest.fail "view missing"
    end
    | K.Raw -> g
  in
  Alcotest.(check (list (pair string string)))
    "distinct pairs identical" (names_of g raw) (names_of view_graph via)

let test_facade_run_raw_when_no_views () =
  let g = prov_graph () in
  let ks = K.make g in
  let _, how = krun ks q1 in
  check_bool "raw" true (how = K.Raw)

let test_facade_materialize_idempotent () =
  let g = prov_graph () in
  let ks = K.make g in
  let a = K.materialize ks conn2 in
  let b = K.materialize ks conn2 in
  check_int "same entry" a.Catalog.size_edges b.Catalog.size_edges;
  check_int "one catalog entry" 1 (List.length (Catalog.entries (K.catalog ks)))

let test_facade_q7_q8_pipeline_on_view () =
  let g = prov_graph () in
  let ks = K.make g in
  ignore (K.materialize ks conn2);
  let ctx = K.view_ctx ks "JOB_TO_JOB_2HOP" in
  (match Kaskade_exec.Executor.run_string ctx "CALL algo.labelPropagation(5)" with
  | Kaskade_exec.Executor.Affected _ -> ()
  | _ -> Alcotest.fail "LP failed");
  let t =
    Kaskade_exec.Executor.table_exn
      (Kaskade_exec.Executor.run_string ctx "CALL algo.largestCommunity('Job')")
  in
  check_bool "community found on view" true (Kaskade_exec.Row.n_rows t > 0)

let test_facade_enumerate_via_facade () =
  let g = prov_graph () in
  let ks = K.make g in
  let e = K.enumerate_views ks q1 in
  check_bool "candidates found" true (List.length e.K.Enumerate.candidates >= 5)

let test_facade_run_on_view_unknown () =
  let g = prov_graph () in
  let ks = K.make g in
  check_bool "not found is a typed planning error" true
    (match K.query ~target:(K.View "NOPE") ks q1 with
    | Error (K.Error.Plan _) -> true
    | _ -> false)


(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)

let pc_state ks q =
  match (K.explain ks q).K.plan_cache with Some s -> s | None -> "disabled"

let pc_counter name = Kaskade_obs.Metrics.(counter_value (counter name))

let test_plan_cache_warms_and_serves_identical_results () =
  let g = prov_graph () in
  let ks = K.make g in
  ignore (K.materialize ks conn2);
  check_bool "cold before any run" true (string_contains (pc_state ks q1) "cold");
  let hits0 = pc_counter "kaskade.plan_cache_hits" in
  let r1, how1 = krun ks q1 in
  check_bool "warm after one run" true (string_contains (pc_state ks q1) "warm");
  let r2, how2 = krun ks q1 in
  check_bool "hit counted" true (pc_counter "kaskade.plan_cache_hits" > hits0);
  check_bool "same routing warm as cold" true (how1 = how2);
  let rows r = (Kaskade_exec.Executor.table_exn r).Kaskade_exec.Row.rows in
  check_bool "identical rows warm as cold" true (rows r1 = rows r2)

let test_plan_cache_invalidated_by_catalog_change () =
  let g = prov_graph () in
  let ks = K.make g in
  ignore (krun ks q2);
  check_bool "warm" true (string_contains (pc_state ks q2) "warm");
  let inv0 = pc_counter "kaskade.plan_cache_invalidations" in
  ignore (K.materialize ks conn2);
  check_bool "cold again after materialize" true (string_contains (pc_state ks q2) "cold");
  check_bool "invalidation counted" true
    (pc_counter "kaskade.plan_cache_invalidations" > inv0);
  (* The replanned run must see the new view, not the cached Raw route. *)
  let _, how = krun ks q1 in
  check_bool "replanned run routes via the new view" true
    (match how with K.Via_view _ -> true | K.Raw -> false)

let test_plan_cache_invalidated_by_update_batch () =
  let g = prov_graph () in
  let ks = K.make g in
  ignore (krun ks q2);
  check_bool "warm" true (string_contains (pc_state ks q2) "warm");
  K.Update.batch
    [ K.Update.Insert_vertex { vtype = "Job"; props = [ ("name", Value.Str "late-job") ] } ]
    ks;
  check_bool "cold after an update batch" true (string_contains (pc_state ks q2) "cold");
  (* A no-op batch (failed delete) leaves the cache warm. *)
  ignore (krun ks q2);
  K.Update.batch [ K.Update.Delete_edge { src = 0; dst = 0; etype = "WRITES_TO" } ] ks;
  check_bool "no-op batch keeps the cache warm" true
    (string_contains (pc_state ks q2) "warm")

let test_plan_cache_entries_gauge () =
  (* The entries gauge tracks the population, not just traffic: after a
     warm run it must report the cached plans. It regressed to a
     constant 0 once — a sibling facade's (empty) invalidation zeroed
     the process-global gauge on every miss — so pin the behavior with
     two instances live at once. *)
  let gauge_v name = Kaskade_obs.Metrics.(gauge_value (gauge name)) in
  let g = prov_graph () in
  let ks = K.make g in
  let other = K.make g in
  ignore (krun ks q1);
  check_bool "entries gauge > 0 after a warm run" true
    (gauge_v "kaskade.plan_cache_entries" > 0.0);
  (* A run on the sibling (its own cache cold, nothing to invalidate)
     must not clobber the gauge back to zero. *)
  ignore (krun other q2);
  check_bool "sibling's cold run keeps the gauge positive" true
    (gauge_v "kaskade.plan_cache_entries" > 0.0)

let test_plan_cache_disabled () =
  let g = prov_graph () in
  let ks = K.make ~config:{ K.Config.default with plan_cache = false } g in
  check_string "explain reports no cache" "disabled" (pc_state ks q2);
  let hits0 = pc_counter "kaskade.plan_cache_hits" in
  ignore (krun ks q2);
  ignore (krun ks q2);
  check_bool "no hits when disabled" true (pc_counter "kaskade.plan_cache_hits" = hits0);
  check_string "still no cache after runs" "disabled" (pc_state ks q2)

(* ------------------------------------------------------------------ *)
(* Property: rewrite equivalence on random graphs                      *)

let summarize_to_lineage g =
  (Materialize.materialize g (View.Summarizer (View.Vertex_inclusion [ "Job"; "File" ])))
    .Materialize.graph

let distinct_name_pairs g (t : Kaskade_exec.Row.table) =
  List.sort_uniq compare
    (List.filter_map
       (fun row ->
         match row with
         | [| Kaskade_exec.Row.V a; Kaskade_exec.Row.V b |] -> begin
           match (Graph.vprop g a "name", Graph.vprop g b "name") with
           | Some (Value.Str x), Some (Value.Str y) -> Some (x, y)
           | _ -> None
         end
         | _ -> None)
       t.Kaskade_exec.Row.rows)

let pairs_of ctx g src =
  distinct_name_pairs g (Kaskade_exec.Executor.table_exn (Kaskade_exec.Executor.run_string ctx src))

(* For random lineage graphs and several query shapes, the distinct
   endpoint pairs of the raw query equal those of its rewriting over a
   freshly materialized 2-hop connector. *)
let prop_rewrite_equivalent =
  let shapes =
    [ "MATCH (a:Job)-[:WRITES_TO]->(f1:File) (f1:File)-[r*0..6]->(f2:File) (f2:File)-[:IS_READ_BY]->(b:Job) RETURN a, b";
      "MATCH (a:Job)<-[r*1..4]-(b:Job) RETURN a, b";
      "MATCH (a:Job)-[r*2..6]->(b:Job) RETURN a, b" ]
  in
  QCheck.Test.make ~name:"connector rewrite preserves distinct pairs" ~count:25
    QCheck.(triple (8 -- 40) (0 -- 500) (0 -- 2))
    (fun (jobs, seed, shape_idx) ->
      let g =
        summarize_to_lineage
          Kaskade_gen.Provenance_gen.(
            generate { default with jobs; files = 2 * jobs; seed = seed + 3 })
      in
      let schema = Graph.schema g in
      let q = K.parse (List.nth shapes shape_idx) in
      match K.Rewrite.rewrite schema q conn2 with
      | None -> QCheck.Test.fail_report "rewrite refused"
      | Some rw ->
        let view = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
        let raw_ctx = Kaskade_exec.Executor.create g in
        let conn_ctx = Kaskade_exec.Executor.create view.Materialize.graph in
        let raw_pairs = pairs_of raw_ctx g (Kaskade_query.Pretty.to_string q) in
        let conn_pairs =
          pairs_of conn_ctx view.Materialize.graph
            (Kaskade_query.Pretty.to_string rw.K.Rewrite.rewritten)
        in
        raw_pairs = conn_pairs)

(* The all-trails executor agrees with distinct-endpoints on pair
   *sets* for the workload's lo<=1 ranges (tiny graphs only). *)
let prop_modes_agree =
  QCheck.Test.make ~name:"trail and distinct modes agree on endpoint sets" ~count:15
    QCheck.(pair (4 -- 10) (0 -- 200))
    (fun (jobs, seed) ->
      let g =
        summarize_to_lineage
          Kaskade_gen.Provenance_gen.(
            generate { default with jobs; files = jobs; writes_per_job = 2; reads_per_job = 2; seed })
      in
      let src = "MATCH (a:Job)-[r*1..4]->(b:Job) RETURN a, b" in
      let d = Kaskade_exec.Executor.create g in
      let t = Kaskade_exec.Executor.create ~mode:Kaskade_exec.Executor.All_trails g in
      pairs_of d g src = pairs_of t g src)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_rewrite_equivalent; prop_modes_agree ]

let () =
  Alcotest.run "kaskade_core"
    [
      ( "facts",
        [
          Alcotest.test_case "listing 1 facts" `Quick test_query_facts_listing1;
          Alcotest.test_case "returned vars" `Quick test_query_facts_returned;
          Alcotest.test_case "schema facts" `Quick test_schema_facts;
          Alcotest.test_case "homogeneous typing" `Quick test_homogeneous_untyped_vars_typed;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "paper §IV-B example" `Quick test_enumeration_matches_paper_example;
          Alcotest.test_case "bridge variables" `Quick test_enumeration_bridges;
          Alcotest.test_case "summarizer candidate" `Quick test_enumeration_summarizer;
          Alcotest.test_case "no trivial summarizer" `Quick test_enumeration_no_summarizer_when_all_types_used;
          Alcotest.test_case "Q2 even hops" `Quick test_enumeration_q2_even_hops_only;
          Alcotest.test_case "constraint pruning" `Quick test_enumeration_constraint_pruning;
          Alcotest.test_case "unconstrained space" `Quick test_enumeration_unconstrained_space;
          Alcotest.test_case "deterministic" `Quick test_enumeration_deterministic;
          Alcotest.test_case "homogeneous" `Quick test_enumeration_homogeneous;
        ] );
      ( "rules",
        [
          Alcotest.test_case "schemaKHopPath parity" `Quick test_rules_schema_khop;
          Alcotest.test_case "acyclic variant (paper Listing 2)" `Quick test_rules_acyclic_variant_matches_paper;
          Alcotest.test_case "queryKHopPath range" `Quick test_rules_query_khop;
          Alcotest.test_case "query sources/sinks" `Quick test_rules_sources_sinks;
          Alcotest.test_case "ego neighbourhood rule" `Quick test_rules_khop_nbors;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "Erdos-Renyi (Eq. 1)" `Quick test_erdos_renyi_formula;
          Alcotest.test_case "homogeneous (Eq. 2)" `Quick test_homogeneous_estimator;
          Alcotest.test_case "heterogeneous (Eq. 3)" `Quick test_heterogeneous_estimator;
          Alcotest.test_case "typed chain bound" `Quick test_typed_chain;
          Alcotest.test_case "ER underestimates power law" `Quick test_er_underestimates_powerlaw;
          Alcotest.test_case "summarizer size" `Quick test_view_size_summarizer;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "Listing 1 -> Listing 4" `Quick test_rewrite_listing1_to_listing4_shape;
          Alcotest.test_case "uncovering k refused" `Quick test_rewrite_refuses_uncovering_k;
          Alcotest.test_case "backward segment" `Quick test_rewrite_backward_segment;
          Alcotest.test_case "interior reference blocks" `Quick test_rewrite_preserves_interior_reference;
          Alcotest.test_case "homogeneous odd hops refused" `Quick test_rewrite_homogeneous_odd_hops_refused;
          Alcotest.test_case "homogeneous even range" `Quick test_rewrite_homogeneous_even_range;
          Alcotest.test_case "summarizer applicability" `Quick test_rewrite_summarizer_applicability;
          Alcotest.test_case "edge removal applicability" `Quick test_rewrite_edge_removal_applicability;
          Alcotest.test_case "merge chains" `Quick test_merge_chains;
          Alcotest.test_case "same-vertex-type not mechanized" `Quick test_rewrite_same_vertex_type_not_mechanized;
        ] );
      ( "selection",
        [
          Alcotest.test_case "picks 2-hop" `Quick test_selection_picks_2hop;
          Alcotest.test_case "budget zero" `Quick test_selection_budget_zero;
          Alcotest.test_case "respects budget" `Quick test_selection_respects_budget;
          Alcotest.test_case "infeasible k worthless" `Quick test_selection_infeasible_k_zero_value;
          Alcotest.test_case "solvers agree" `Quick test_selection_solvers_agree;
          Alcotest.test_case "query weights" `Quick test_selection_query_weights;
        ] );
      ("properties", qcheck_cases);
      ( "facade",
        [
          Alcotest.test_case "end-to-end equivalence" `Quick test_facade_end_to_end_equivalence;
          Alcotest.test_case "raw without views" `Quick test_facade_run_raw_when_no_views;
          Alcotest.test_case "materialize idempotent" `Quick test_facade_materialize_idempotent;
          Alcotest.test_case "Q7/Q8 pipeline on view" `Quick test_facade_q7_q8_pipeline_on_view;
          Alcotest.test_case "enumerate via facade" `Quick test_facade_enumerate_via_facade;
          Alcotest.test_case "run_on_view unknown" `Quick test_facade_run_on_view_unknown;
        ] );
      ( "plan_cache",
        [
          Alcotest.test_case "warms and serves identical results" `Quick
            test_plan_cache_warms_and_serves_identical_results;
          Alcotest.test_case "invalidated by catalog change" `Quick
            test_plan_cache_invalidated_by_catalog_change;
          Alcotest.test_case "invalidated by update batch" `Quick
            test_plan_cache_invalidated_by_update_batch;
          Alcotest.test_case "entries gauge tracks population" `Quick
            test_plan_cache_entries_gauge;
          Alcotest.test_case "disabled" `Quick test_plan_cache_disabled;
        ] );
    ]
