(* Metrics-name lint: every `kaskade.*` instrument registered in code
   must be documented in docs/OBSERVABILITY.md, and every `kaskade.*`
   name the doc mentions must exist in the registry — drift in either
   direction fails. The doc path is a dune dep of this test, so
   editing it re-runs the lint. *)

module Metrics = Kaskade_obs.Metrics

(* Registration happens at module-init time, so every library that
   registers an instrument must actually be linked into this binary.
   Referencing one value per registering module guarantees that. *)
let _force_linkage : unit list =
  [
    ignore Kaskade.version (* lib/core: view/query/plan-cache metrics *);
    ignore Kaskade_graph.Shard.policy_name (* lib/graph: kaskade.shard.* *);
    ignore Kaskade_serve.Session.id (* lib/serve: session/queue/shed *);
    ignore Kaskade_serve.Server.shutdown (* lib/serve: serve_requests *);
    ignore Kaskade_store.Wal.last_seq (* lib/store: wal_* *);
    ignore Kaskade_store.Store.last_seq (* lib/store: recovery_* *);
    ignore Kaskade_obs.Qlog.capacity (* lib/obs: slow_queries *);
  ]

(* Under `dune runtest` the cwd is the test's build directory (the dep
   is staged at ../docs/...); a direct `dune exec` from the repo root
   sees the source tree instead. *)
let doc_path =
  let candidates =
    [ Filename.concat (Filename.concat ".." "docs") "OBSERVABILITY.md";
      Filename.concat "docs" "OBSERVABILITY.md" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let prefix = "kaskade."

let starts_with p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Every maximal [a-z0-9_.] token starting with "kaskade." and not
   preceded by a name character, with trailing dots trimmed (sentence
   punctuation). The doc must therefore always spell metric names in
   full — abbreviated "`.view_misses`" forms are invisible here and
   show up as undocumented names. *)
let extract_documented text =
  let is_name_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' || c = '.' in
  let n = String.length text in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n do
    if
      !i + String.length prefix <= n
      && String.sub text !i (String.length prefix) = prefix
      && (!i = 0 || not (is_name_char text.[!i - 1]))
    then begin
      let j = ref (!i + String.length prefix) in
      while !j < n && is_name_char text.[!j] do
        incr j
      done;
      let k = ref !j in
      while !k > !i && text.[!k - 1] = '.' do
        decr k
      done;
      let tok = String.sub text !i (!k - !i) in
      if String.length tok > String.length prefix then acc := tok :: !acc;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq compare !acc

let test_names_in_sync () =
  let registered = List.filter (starts_with prefix) (Metrics.names ()) in
  Alcotest.(check bool) "engine metrics registered" true (registered <> []);
  let documented = extract_documented (read_file doc_path) in
  let missing_docs = List.filter (fun n -> not (List.mem n documented)) registered in
  let stale_docs = List.filter (fun n -> not (List.mem n registered)) documented in
  if missing_docs <> [] || stale_docs <> [] then
    Alcotest.failf
      "metric names out of sync with docs/OBSERVABILITY.md\n\
      \  registered but undocumented: %s\n\
      \  documented but unregistered: %s"
      (if missing_docs = [] then "(none)" else String.concat ", " missing_docs)
      (if stale_docs = [] then "(none)" else String.concat ", " stale_docs)

let () =
  Alcotest.run "metrics-lint"
    [ ("docs", [ Alcotest.test_case "kaskade.* names in sync" `Quick test_names_in_sync ]) ]
