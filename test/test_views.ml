open Kaskade_graph
open Kaskade_views

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let lineage_schema = Kaskade_gen.Provenance_gen.schema

let small_lineage () =
  let b = Builder.create lineage_schema in
  let j =
    Array.init 3 (fun i ->
        Builder.add_vertex b ~vtype:"Job"
          ~props:
            [ ("name", Value.Str (Printf.sprintf "j%d" i));
              ("CPU", Value.Float (float_of_int (10 * (i + 1))));
              ("pipelineName", Value.Str (if i < 2 then "alpha" else "beta")) ]
          ())
  in
  let f =
    Array.init 3 (fun i ->
        Builder.add_vertex b ~vtype:"File" ~props:[ ("name", Value.Str (Printf.sprintf "f%d" i)) ] ())
  in
  let t0 = Builder.add_vertex b ~vtype:"Task" ~props:[ ("name", Value.Str "t0") ] () in
  let m0 = Builder.add_vertex b ~vtype:"Machine" ~props:[ ("name", Value.Str "m0") ] () in
  let u0 = Builder.add_vertex b ~vtype:"User" ~props:[ ("name", Value.Str "u0") ] () in
  let edge s d t = ignore (Builder.add_edge b ~src:s ~dst:d ~etype:t ()) in
  edge j.(0) f.(0) "WRITES_TO";
  edge j.(0) f.(1) "WRITES_TO";
  edge f.(0) j.(1) "IS_READ_BY";
  edge f.(1) j.(1) "IS_READ_BY";
  edge f.(1) j.(2) "IS_READ_BY";
  edge j.(2) f.(2) "WRITES_TO";
  edge j.(0) t0 "HAS_TASK";
  edge t0 m0 "RUNS_ON";
  edge u0 j.(0) "SUBMITTED";
  (Graph.freeze b, j, f)

let edge_name_pairs g =
  let out = ref [] in
  Graph.iter_edges g (fun ~eid:_ ~src ~dst ~etype:_ ->
      let n v = match Graph.vprop g v "name" with Some (Value.Str s) -> s | _ -> "?" in
      out := (n src, n dst) :: !out);
  List.sort compare !out

(* ------------------------------------------------------------------ *)
(* View descriptors                                                    *)

let test_view_names () =
  check_string "k-hop name" "JOB_TO_JOB_2HOP"
    (View.name (View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 })));
  check_string "summarizer name" "KEEP_V_FILE_JOB"
    (View.name (View.Summarizer (View.Vertex_inclusion [ "File"; "Job" ])));
  check_string "source-sink" "SOURCE_TO_SINK" (View.name (View.Connector View.Source_to_sink))

let test_view_equality () =
  let a = View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 }) in
  let b = View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 }) in
  let c = View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 4 }) in
  check_bool "equal" true (View.equal a b);
  check_bool "distinct" false (View.equal a c)

let test_view_describe () =
  check_bool "describe mentions hops" true
    (String.length (View.describe (View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 }))) > 0)

(* ------------------------------------------------------------------ *)
(* k-hop connectors                                                    *)

let test_khop_connector_edges () =
  let g, _, _ = small_lineage () in
  let m = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  (* Distinct job pairs via job-file-job: (j0,j1), (j0,j2). *)
  Alcotest.(check (list (pair string string)))
    "connector edges"
    [ ("j0", "j1"); ("j0", "j2") ]
    (edge_name_pairs m.Materialize.graph);
  check_int "only jobs" 3 (Graph.n_vertices m.Materialize.graph)

let test_khop_connector_matches_paths_count () =
  let g = Kaskade_gen.Provenance_gen.(generate { default with jobs = 150; files = 300; seed = 9 }) in
  let m = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  let expected =
    Kaskade_algo.Paths.count_2hop_pairs g
      ~src_type:(Schema.vertex_type_id (Graph.schema g) "Job")
      ~dst_type:(Schema.vertex_type_id (Graph.schema g) "Job")
  in
  check_int "edge count = distinct 2-hop pairs" expected (Graph.n_edges m.Materialize.graph)

let test_khop_path_counts () =
  let g, _, _ = small_lineage () in
  let m =
    Materialize.k_hop_connector ~with_path_counts:true g ~src_type:"Job" ~dst_type:"Job" ~k:2
  in
  let vg = m.Materialize.graph in
  (* (j0,j1) has two contracted paths (via f0 and f1). *)
  let found = ref 0 in
  Graph.iter_edges vg (fun ~eid ~src ~dst ~etype:_ ->
      let n v = match Graph.vprop vg v "name" with Some (Value.Str s) -> s | _ -> "?" in
      if n src = "j0" && n dst = "j1" then begin
        match Graph.eprop vg eid "paths" with
        | Some (Value.Int c) -> found := c
        | _ -> ()
      end);
  check_int "path multiplicity" 2 !found

let test_khop_no_dedupe () =
  let g, _, _ = small_lineage () in
  let m = Materialize.k_hop_connector ~dedupe:false g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  (* One edge per 2-hop path: 3 paths. *)
  check_int "parallel edges" 3 (Graph.n_edges m.Materialize.graph)

let test_khop_props_copied () =
  let g, j, _ = small_lineage () in
  let m = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  let new_j1 = m.Materialize.new_of_old.(j.(1)) in
  check_bool "CPU copied" true (Graph.vprop m.Materialize.graph new_j1 "CPU" = Some (Value.Float 20.0))

let test_khop_file_to_file () =
  let g, _, _ = small_lineage () in
  let m = Materialize.k_hop_connector g ~src_type:"File" ~dst_type:"File" ~k:2 in
  (* f0->j1->(writes nothing): none; f1->j2->f2. *)
  Alcotest.(check (list (pair string string))) "file connector" [ ("f1", "f2") ]
    (edge_name_pairs m.Materialize.graph)

let test_khop_build_cost_positive () =
  let g, _, _ = small_lineage () in
  let m = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  check_bool "cost counted" true (m.Materialize.build_cost > 0.0)

(* ------------------------------------------------------------------ *)
(* Other connectors                                                    *)

let test_same_vertex_type_connector () =
  let g, _, _ = small_lineage () in
  let m = Materialize.materialize g (View.Connector (View.Same_vertex_type { vtype = "Job" })) in
  (* Transitive job-to-job reachability: j0 reaches j1, j2. *)
  Alcotest.(check (list (pair string string)))
    "closure edges"
    [ ("j0", "j1"); ("j0", "j2") ]
    (edge_name_pairs m.Materialize.graph)

let test_same_edge_type_connector () =
  let g, _, _ = small_lineage () in
  let m = Materialize.materialize g (View.Connector (View.Same_edge_type { etype = "WRITES_TO" })) in
  (* WRITES_TO is Job->File; single-hop closure = the write edges. *)
  check_int "three write paths" 3 (Graph.n_edges m.Materialize.graph)

let test_source_to_sink_connector () =
  let g, _, _ = small_lineage () in
  let m = Materialize.materialize g (View.Connector View.Source_to_sink) in
  let vg = m.Materialize.graph in
  check_bool "has edges" true (Graph.n_edges vg > 0);
  (* u0 is the only source with out-edges reaching m0 / f2 / j1 sinks. *)
  let sources_in_view =
    List.filter (fun (s, _) -> s = "u0") (edge_name_pairs vg)
  in
  check_bool "u0 reaches sinks" true (List.length sources_in_view >= 2);
  (* Original types preserved as a property. *)
  let ok = ref true in
  for v = 0 to Graph.n_vertices vg - 1 do
    match Graph.vprop vg v "orig_type" with Some (Value.Str _) -> () | _ -> ok := false
  done;
  check_bool "orig_type recorded" true !ok

(* ------------------------------------------------------------------ *)
(* Summarizers                                                         *)

let test_vertex_inclusion () =
  let g, _, _ = small_lineage () in
  let m = Materialize.materialize g (View.Summarizer (View.Vertex_inclusion [ "Job"; "File" ])) in
  let vg = m.Materialize.graph in
  check_int "jobs+files" 6 (Graph.n_vertices vg);
  check_int "lineage edges only" 6 (Graph.n_edges vg);
  check_bool "no Task type" false (Schema.has_vertex_type (Graph.schema vg) "Task")

let test_vertex_removal () =
  let g, _, _ = small_lineage () in
  let m =
    Materialize.materialize g
      (View.Summarizer (View.Vertex_removal [ "Task"; "Machine"; "User" ]))
  in
  check_int "same as inclusion" 6 (Graph.n_vertices m.Materialize.graph)

let test_edge_inclusion () =
  let g, _, _ = small_lineage () in
  let m = Materialize.materialize g (View.Summarizer (View.Edge_inclusion [ "WRITES_TO" ])) in
  let vg = m.Materialize.graph in
  check_int "writes only" 3 (Graph.n_edges vg);
  check_int "all vertices kept" 9 (Graph.n_vertices vg)

let test_edge_removal () =
  let g, _, _ = small_lineage () in
  let m = Materialize.materialize g (View.Summarizer (View.Edge_removal [ "SUBMITTED" ])) in
  check_int "one edge dropped" 8 (Graph.n_edges m.Materialize.graph)

let test_vertex_aggregator () =
  let g, _, _ = small_lineage () in
  let m =
    Materialize.materialize g
      (View.Summarizer
         (View.Vertex_aggregator
            { vtype = "Job"; group_prop = "pipelineName"; agg_prop = "CPU"; agg = View.Agg_sum }))
  in
  let vg = m.Materialize.graph in
  (* 3 jobs collapse into 2 pipeline supervertices; other 6 vertices
     pass through. *)
  check_int "supervertices" 8 (Graph.n_vertices vg);
  let alpha_cpu = ref Value.Null in
  Array.iter
    (fun v ->
      if Graph.vprop vg v "pipelineName" = Some (Value.Str "alpha") then
        alpha_cpu := Graph.vprop_or_null vg v "CPU")
    (Graph.vertices_of_type_name vg "Job");
  check_bool "alpha CPU summed" true (Value.equal !alpha_cpu (Value.Float 30.0))

let test_vertex_aggregator_reroutes_edges () =
  let g, _, _ = small_lineage () in
  let m =
    Materialize.materialize g
      (View.Summarizer
         (View.Vertex_aggregator
            { vtype = "Job"; group_prop = "pipelineName"; agg_prop = "CPU"; agg = View.Agg_count }))
  in
  let vg = m.Materialize.graph in
  (* All 9 original edges survive (job endpoints re-routed, no
     self-loops arise because jobs never connect to jobs). *)
  check_int "edges rerouted" 9 (Graph.n_edges vg)

let test_subgraph_aggregator () =
  let g, _, _ = small_lineage () in
  let m =
    Materialize.materialize g
      (View.Summarizer (View.Subgraph_aggregator { agg_prop = "CPU"; agg = View.Agg_sum }))
  in
  let vg = m.Materialize.graph in
  (* The small lineage is one weakly-connected component. *)
  check_int "one group" 1 (Graph.n_vertices vg);
  check_int "no edges" 0 (Graph.n_edges vg);
  check_bool "CPU aggregated" true
    (Value.equal (Graph.vprop_or_null vg 0 "CPU") (Value.Float 60.0));
  check_bool "members counted" true (Graph.vprop vg 0 "members" = Some (Value.Int 9))

let test_aggregate_functions () =
  let g, _, _ = small_lineage () in
  let count_m =
    Materialize.materialize g
      (View.Summarizer (View.Subgraph_aggregator { agg_prop = "CPU"; agg = View.Agg_count }))
  in
  check_bool "count" true
    (Value.equal (Graph.vprop_or_null count_m.Materialize.graph 0 "CPU") (Value.Int 9));
  let min_m =
    Materialize.materialize g
      (View.Summarizer (View.Subgraph_aggregator { agg_prop = "CPU"; agg = View.Agg_min }))
  in
  (* Min over all vertices: files lack CPU -> Null is smallest. *)
  check_bool "min is null (missing props)" true
    (Value.equal (Graph.vprop_or_null min_m.Materialize.graph 0 "CPU") Value.Null)



let test_ego_aggregator () =
  let g, _, _ = small_lineage () in
  let m =
    Materialize.materialize g
      (View.Summarizer (View.Ego_aggregator { k = 1; agg_prop = "CPU"; agg = View.Agg_sum }))
  in
  let vg = m.Materialize.graph in
  (* Topology unchanged. *)
  check_int "same vertices" (Graph.n_vertices g) (Graph.n_vertices vg);
  check_int "same edges" (Graph.n_edges g) (Graph.n_edges vg);
  (* f1's 1-hop (undirected) neighbourhood = {j0, j1, j2}: CPU sum 60. *)
  let f1 = m.Materialize.new_of_old.(4) in
  check_bool "f1 ego sum" true
    (Value.equal (Graph.vprop_or_null vg f1 "ego_sum_CPU") (Value.Float 60.0))

let test_ego_aggregator_k2 () =
  let g, j, _ = small_lineage () in
  let m =
    Materialize.materialize g
      (View.Summarizer (View.Ego_aggregator { k = 2; agg_prop = "CPU"; agg = View.Agg_count }))
  in
  let vg = m.Materialize.graph in
  (* j0's undirected 2-hop neighbourhood: f0, f1, t0, u0 at one hop,
     then j1, j2 (via files) and m0 (via t0) at two: 7 neighbours.
     Agg_count counts neighbours regardless of property presence. *)
  let j0 = m.Materialize.new_of_old.(j.(0)) in
  check_bool "j0 ego count" true
    (Value.equal (Graph.vprop_or_null vg j0 "ego_count_CPU") (Value.Int 7))

(* ------------------------------------------------------------------ *)
(* Defining queries (paper §III-C: a view IS a query)                  *)

(* Executing a connector's defining query must return exactly the
   materialized edge set. *)
let pairs_from_query g src =
  let ctx = Kaskade_exec.Executor.create g in
  let t = Kaskade_exec.Executor.table_exn (Kaskade_exec.Executor.run_string ctx src) in
  List.sort_uniq compare
    (List.filter_map
       (fun row ->
         match row with
         | [| Kaskade_exec.Row.V a; Kaskade_exec.Row.V b |] -> begin
           match (Graph.vprop g a "name", Graph.vprop g b "name") with
           | Some (Value.Str x), Some (Value.Str y) -> Some (x, y)
           | _ -> None
         end
         | _ -> None)
       t.Kaskade_exec.Row.rows)

let test_definition_khop_consistent () =
  let g = Kaskade_gen.Provenance_gen.(generate { default with jobs = 150; files = 300; seed = 21 }) in
  let view = View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 }) in
  let query = Option.get (Definition.defining_query (Graph.schema g) view) in
  let from_query = pairs_from_query g query in
  let m = Materialize.materialize g view in
  Alcotest.(check (list (pair string string)))
    "defining query = materialized edges" from_query
    (List.sort_uniq compare (edge_name_pairs m.Materialize.graph))

let test_definition_same_vertex_type_consistent () =
  let g, _, _ = small_lineage () in
  let view = View.Connector (View.Same_vertex_type { vtype = "Job" }) in
  let query = Option.get (Definition.defining_query (Graph.schema g) view) in
  let from_query =
    (* The closure view excludes trivial self pairs unless a cycle
       exists; the query may report (v, v) via cycles only, same as
       the materializer. *)
    pairs_from_query g query
  in
  let m = Materialize.materialize g view in
  Alcotest.(check (list (pair string string)))
    "closure consistent" from_query
    (List.sort_uniq compare (edge_name_pairs m.Materialize.graph))

let test_definition_unsupported () =
  let g, _, _ = small_lineage () in
  check_bool "source-to-sink has no query" true
    (Definition.defining_query (Graph.schema g) (View.Connector View.Source_to_sink) = None);
  check_bool "aggregator has no query" true
    (Definition.defining_query (Graph.schema g)
       (View.Summarizer (View.Subgraph_aggregator { agg_prop = "CPU"; agg = View.Agg_sum }))
     = None)

let test_definition_summarizer_scans () =
  let g, _, _ = small_lineage () in
  match Definition.defining_query (Graph.schema g) (View.Summarizer (View.Vertex_inclusion [ "Job"; "File" ])) with
  | Some q -> check_bool "two scans" true (List.length (String.split_on_char ';' q) = 2)
  | None -> Alcotest.fail "expected a defining query"

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)

let test_catalog_roundtrip () =
  let g, _, _ = small_lineage () in
  let cat = Catalog.create () in
  let view = View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 }) in
  check_bool "empty" false (Catalog.mem cat view);
  Catalog.add cat (Materialize.materialize g view);
  check_bool "added" true (Catalog.mem cat view);
  (match Catalog.find cat view with
  | Some e -> check_int "size recorded" 2 e.Catalog.size_edges
  | None -> Alcotest.fail "lookup");
  check_int "total size" 2 (Catalog.total_size_edges cat);
  Catalog.remove cat view;
  check_bool "removed" false (Catalog.mem cat view)

let test_catalog_replace () =
  let g, _, _ = small_lineage () in
  let cat = Catalog.create () in
  let view = View.Summarizer (View.Vertex_inclusion [ "Job"; "File" ]) in
  Catalog.add cat (Materialize.materialize g view);
  Catalog.add cat (Materialize.materialize g view);
  check_int "no duplicates" 1 (List.length (Catalog.entries cat))


(* ------------------------------------------------------------------ *)
(* Incremental maintenance                                             *)

(* Apply [ops] through an overlay and return the post-batch graph plus
   the ops that took effect — the inputs [Maintain] expects. *)
let after_batch g ops =
  let o = Graph.Overlay.create g in
  let effective = Graph.Overlay.apply o ops in
  (Graph.Overlay.graph o, effective)

let ins src dst etype = Graph.Overlay.Insert_edge { src; dst; etype; props = [] }
let del src dst etype = Graph.Overlay.Delete_edge { src; dst; etype }

let connector_pairs_by_name vg =
  List.sort_uniq compare (edge_name_pairs vg)

let test_maintain_delta_read_edge () =
  let g, j, f = small_lineage () in
  let view = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  (* New edge: f2 (written by j2) is read by j1 -> new pair (j2, j1). *)
  let base_after, ops = after_batch g [ ins f.(2) j.(1) "IS_READ_BY" ] in
  let d = Maintain.connector_delta base_after ~view ~ops in
  Alcotest.(check (list (pair int int))) "added" [ (j.(2), j.(1)) ] d.Maintain.added;
  Alcotest.(check (list (pair int int))) "removed" [] d.Maintain.removed

let test_maintain_delta_write_edge () =
  let g, j, _f = small_lineage () in
  (* New file written by j1, then nothing reads it yet: the batch
     creates no 2-hop pair. *)
  let view = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  let o = Graph.Overlay.create g in
  let f_new = Graph.Overlay.insert_vertex o ~vtype:"File" ~props:[ ("name", Value.Str "f_new") ] () in
  let ops =
    Graph.Overlay.Insert_vertex { vtype = "File"; props = [ ("name", Value.Str "f_new") ] }
    :: Graph.Overlay.apply o [ ins j.(1) f_new "WRITES_TO" ]
  in
  let d = Maintain.connector_delta (Graph.Overlay.graph o) ~view ~ops in
  Alcotest.(check (list (pair int int))) "no new pairs" [] d.Maintain.added

let test_maintain_apply_matches_rebuild () =
  let g, _j, f = small_lineage () in
  let view = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  let base_after, ops = after_batch g [ ins f.(2) 0 (* j0 reads f2 *) "IS_READ_BY" ] in
  let incremental, strategy = Maintain.refresh base_after ~view ~ops in
  check_bool "incremental strategy" true (Maintain.incremental strategy);
  let rebuilt = Materialize.k_hop_connector base_after ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  Alcotest.(check (list (pair string string)))
    "incremental = rebuild"
    (connector_pairs_by_name rebuilt.Materialize.graph)
    (connector_pairs_by_name incremental.Materialize.graph)

let test_maintain_rejects_other_views () =
  let g, _, _ = small_lineage () in
  let view = Materialize.materialize g (View.Summarizer (View.Vertex_inclusion [ "Job" ])) in
  check_bool "raises" true
    (try
       ignore (Maintain.connector_delta g ~view ~ops:[]);
       false
     with Invalid_argument _ -> true)

let test_maintain_aggregator_rebuilds () =
  let g, j, _ = small_lineage () in
  let view =
    Materialize.materialize g
      (View.Summarizer
         (View.Vertex_aggregator
            { vtype = "Job"; group_prop = "pipelineName"; agg_prop = "CPU"; agg = View.Agg_sum }))
  in
  let base_after, ops = after_batch g [ del j.(0) j.(1) "WRITES_TO" ] in
  ignore base_after;
  match Maintain.plan g ~view ~ops with
  | Maintain.Full_rebuild _ -> ()
  | s -> Alcotest.failf "expected Full_rebuild, got %s" (Maintain.describe_strategy s)

(* Deletion maintenance. *)

let test_maintain_delete_unsupported_pair () =
  let g, j, f = small_lineage () in
  let view = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  (* Deleting f1 -> j2 (the only read of f1 by j2) kills (j0, j2);
     (j0, j1) survives via f0. *)
  let base_after, ops = after_batch g [ del f.(1) j.(2) "IS_READ_BY" ] in
  let d = Maintain.connector_delta base_after ~view ~ops in
  Alcotest.(check (list (pair int int))) "pair dies" [ (j.(0), j.(2)) ] d.Maintain.removed;
  Alcotest.(check (list (pair int int))) "nothing added" [] d.Maintain.added

let test_maintain_delete_supported_pair () =
  let g, j, f = small_lineage () in
  let view = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  (* Deleting f0 -> j1 leaves (j0, j1) supported via f1. *)
  let base_after, ops = after_batch g [ del f.(0) j.(1) "IS_READ_BY" ] in
  ignore j;
  let d = Maintain.connector_delta base_after ~view ~ops in
  Alcotest.(check (list (pair int int))) "no removals" [] d.Maintain.removed

let test_maintain_apply_delete_matches_rebuild () =
  let g, _, f = small_lineage () in
  let view = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  (* Victim edge: f1 -> j2 (j2 is vertex 2 in builder order). *)
  let base_after, ops = after_batch g [ del f.(1) 2 "IS_READ_BY" ] in
  check_int "delete took effect" 1 (List.length ops);
  let incremental, _ = Maintain.refresh base_after ~view ~ops in
  let rebuilt = Materialize.k_hop_connector base_after ~src_type:"Job" ~dst_type:"Job" ~k:2 in
  Alcotest.(check (list (pair string string)))
    "delete incremental = rebuild"
    (connector_pairs_by_name rebuilt.Materialize.graph)
    (connector_pairs_by_name incremental.Materialize.graph)

let prop_maintain_delete_matches_rebuild =
  QCheck.Test.make ~name:"incremental delete = full rebuild" ~count:30
    QCheck.(pair (5 -- 40) (0 -- 1000))
    (fun (jobs, seed) ->
      let g0 =
        Kaskade_gen.Provenance_gen.(
          generate { default with jobs; files = 2 * jobs; seed = seed + 11 })
      in
      let keep =
        (Materialize.materialize g0 (View.Summarizer (View.Vertex_inclusion [ "Job"; "File" ])))
          .Materialize.graph
      in
      let m = Graph.n_edges keep in
      if m = 0 then true
      else begin
        let rng = Kaskade_util.Prng.create (seed + 17) in
        let victim = Kaskade_util.Prng.int rng m in
        let s, d = Graph.edge_endpoints keep victim in
        let ename = Schema.edge_type_name (Graph.schema keep) (Graph.edge_type keep victim) in
        let view = Materialize.k_hop_connector keep ~src_type:"Job" ~dst_type:"Job" ~k:2 in
        let base_after, ops = after_batch keep [ del s d ename ] in
        let incremental, _ = Maintain.refresh base_after ~view ~ops in
        let rebuilt =
          Materialize.k_hop_connector base_after ~src_type:"Job" ~dst_type:"Job" ~k:2
        in
        connector_pairs_by_name rebuilt.Materialize.graph
        = connector_pairs_by_name incremental.Materialize.graph
      end)

(* Property: for random lineage graphs and a random new read edge,
   incremental apply equals full rebuild. *)
let prop_maintain_matches_rebuild =
  QCheck.Test.make ~name:"incremental maintenance = full rebuild" ~count:30
    QCheck.(pair (5 -- 40) (0 -- 1000))
    (fun (jobs, seed) ->
      let g =
        Kaskade_gen.Provenance_gen.(
          generate { default with jobs; files = 2 * jobs; seed = seed + 7 })
      in
      let keep =
        (Materialize.materialize g (View.Summarizer (View.Vertex_inclusion [ "Job"; "File" ])))
          .Materialize.graph
      in
      let rng = Kaskade_util.Prng.create (seed + 13) in
      let files = Graph.vertices_of_type_name keep "File" in
      let jobs_arr = Graph.vertices_of_type_name keep "Job" in
      let src = Kaskade_util.Prng.choose rng files in
      let dst = Kaskade_util.Prng.choose rng jobs_arr in
      let view = Materialize.k_hop_connector keep ~src_type:"Job" ~dst_type:"Job" ~k:2 in
      let base_after, ops = after_batch keep [ ins src dst "IS_READ_BY" ] in
      let incremental, _ = Maintain.refresh base_after ~view ~ops in
      let rebuilt = Materialize.k_hop_connector base_after ~src_type:"Job" ~dst_type:"Job" ~k:2 in
      connector_pairs_by_name rebuilt.Materialize.graph
      = connector_pairs_by_name incremental.Materialize.graph)

(* Property: on random lineage graphs, the 2-hop connector edge count
   equals the brute-force distinct-pair count. *)
let prop_khop_matches_bruteforce =
  QCheck.Test.make ~name:"2-hop connector = brute-force pairs" ~count:25
    QCheck.(pair (10 -- 60) (0 -- 300))
    (fun (jobs, seed) ->
      let g =
        Kaskade_gen.Provenance_gen.(
          generate { default with jobs; files = 2 * jobs; seed = seed + 1 })
      in
      let m = Materialize.k_hop_connector g ~src_type:"Job" ~dst_type:"Job" ~k:2 in
      let brute = ref 0 in
      let job_ty = Schema.vertex_type_id (Graph.schema g) "Job" in
      Array.iter
        (fun u ->
          let seen = Hashtbl.create 8 in
          Graph.iter_out g u (fun ~dst:mid ~etype:_ ~eid:_ ->
              Graph.iter_out g mid (fun ~dst:w ~etype:_ ~eid:_ ->
                  if Graph.vertex_type g w = job_ty then Hashtbl.replace seen w ()));
          brute := !brute + Hashtbl.length seen)
        (Graph.vertices_of_type g job_ty);
      Graph.n_edges m.Materialize.graph = !brute)

(* ------------------------------------------------------------------ *)
(* Deterministic parallel materialization                              *)

(* Every connector (and the ego summarizer) must serialize
   byte-identically whether materialized on 1, 2 or 4 domains — the
   contract that makes the Pool fan-out transparent to catalogs,
   maintenance and tests. Exercised on all three generator families. *)
let parallel_test_graphs () =
  [ ( "prov",
      Kaskade_gen.Provenance_gen.(generate { default with jobs = 120; files = 240; seed = 5 }),
      View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 }) );
    ( "dblp",
      Kaskade_gen.Dblp_gen.(generate { default with authors = 150; pubs = 250; venues = 12; seed = 6 }),
      View.Connector (View.K_hop { src_type = "Author"; dst_type = "Author"; k = 2 }) );
    ( "powerlaw",
      Kaskade_gen.Powerlaw_gen.(generate { vertices = 200; edges = 800; exponent = 2.2; seed = 8 }),
      View.Connector (View.K_hop { src_type = "V"; dst_type = "V"; k = 2 }) ) ]

let materialize_bytes g view ~domains =
  let pool = Kaskade_util.Pool.create ~domains () in
  Gio.to_string (Materialize.materialize ~pool g view).Materialize.graph

let test_parallel_khop_byte_identical () =
  List.iter
    (fun (name, g, view) ->
      let seq = materialize_bytes g view ~domains:1 in
      List.iter
        (fun d ->
          check_string (Printf.sprintf "%s @%dd" name d) seq (materialize_bytes g view ~domains:d))
        [ 2; 4 ])
    (parallel_test_graphs ())

let test_parallel_other_connectors_byte_identical () =
  let g = Kaskade_gen.Provenance_gen.(generate { default with jobs = 80; files = 160; seed = 9 }) in
  List.iter
    (fun view ->
      let seq = materialize_bytes g view ~domains:1 in
      check_string (View.name view ^ " @4d") seq (materialize_bytes g view ~domains:4))
    [ View.Connector (View.Same_vertex_type { vtype = "Job" });
      View.Connector (View.Same_edge_type { etype = "WRITES_TO" });
      View.Connector View.Source_to_sink;
      View.Summarizer (View.Ego_aggregator { k = 2; agg_prop = "CPU"; agg = View.Agg_sum }) ]

let test_parallel_gstats_identical () =
  let g = Kaskade_gen.Provenance_gen.(generate { default with jobs = 100; files = 200; seed = 4 }) in
  let at d =
    let s = Gstats.compute ~pool:(Kaskade_util.Pool.create ~domains:d ()) g in
    ( List.map
        (fun (su : Gstats.type_summary) -> (su.Gstats.type_name, su.Gstats.count, su.Gstats.deg95))
        (Gstats.summaries s),
      List.init (Schema.n_edge_types (Graph.schema g)) (fun t -> Gstats.edge_type_count s ~etype:t) )
  in
  check_bool "gstats identical at any width" true (at 1 = at 4)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_khop_matches_bruteforce; prop_maintain_matches_rebuild; prop_maintain_delete_matches_rebuild ]

let () =
  Alcotest.run "kaskade_views"
    [
      ( "descriptors",
        [
          Alcotest.test_case "names" `Quick test_view_names;
          Alcotest.test_case "equality" `Quick test_view_equality;
          Alcotest.test_case "describe" `Quick test_view_describe;
        ] );
      ( "khop",
        [
          Alcotest.test_case "edges" `Quick test_khop_connector_edges;
          Alcotest.test_case "matches Paths count" `Quick test_khop_connector_matches_paths_count;
          Alcotest.test_case "path counts" `Quick test_khop_path_counts;
          Alcotest.test_case "no dedupe" `Quick test_khop_no_dedupe;
          Alcotest.test_case "props copied" `Quick test_khop_props_copied;
          Alcotest.test_case "file-to-file" `Quick test_khop_file_to_file;
          Alcotest.test_case "build cost" `Quick test_khop_build_cost_positive;
        ] );
      ( "connectors",
        [
          Alcotest.test_case "same-vertex-type" `Quick test_same_vertex_type_connector;
          Alcotest.test_case "same-edge-type" `Quick test_same_edge_type_connector;
          Alcotest.test_case "source-to-sink" `Quick test_source_to_sink_connector;
        ] );
      ( "summarizers",
        [
          Alcotest.test_case "vertex inclusion" `Quick test_vertex_inclusion;
          Alcotest.test_case "vertex removal" `Quick test_vertex_removal;
          Alcotest.test_case "edge inclusion" `Quick test_edge_inclusion;
          Alcotest.test_case "edge removal" `Quick test_edge_removal;
          Alcotest.test_case "vertex aggregator" `Quick test_vertex_aggregator;
          Alcotest.test_case "aggregator reroutes edges" `Quick test_vertex_aggregator_reroutes_edges;
          Alcotest.test_case "subgraph aggregator" `Quick test_subgraph_aggregator;
          Alcotest.test_case "ego aggregator (Listing 5)" `Quick test_ego_aggregator;
          Alcotest.test_case "ego aggregator k=2" `Quick test_ego_aggregator_k2;
          Alcotest.test_case "aggregate functions" `Quick test_aggregate_functions;
        ] );
      ( "maintain",
        [
          Alcotest.test_case "delta on read edge" `Quick test_maintain_delta_read_edge;
          Alcotest.test_case "delta on write edge" `Quick test_maintain_delta_write_edge;
          Alcotest.test_case "apply matches rebuild" `Quick test_maintain_apply_matches_rebuild;
          Alcotest.test_case "rejects other views" `Quick test_maintain_rejects_other_views;
          Alcotest.test_case "aggregator plans a rebuild" `Quick test_maintain_aggregator_rebuilds;
          Alcotest.test_case "delete kills unsupported pair" `Quick test_maintain_delete_unsupported_pair;
          Alcotest.test_case "delete keeps supported pair" `Quick test_maintain_delete_supported_pair;
          Alcotest.test_case "delete matches rebuild" `Quick test_maintain_apply_delete_matches_rebuild;
        ] );
      ( "definition",
        [
          Alcotest.test_case "k-hop defining query" `Quick test_definition_khop_consistent;
          Alcotest.test_case "closure defining query" `Quick test_definition_same_vertex_type_consistent;
          Alcotest.test_case "unsupported views" `Quick test_definition_unsupported;
          Alcotest.test_case "summarizer scans" `Quick test_definition_summarizer_scans;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "roundtrip" `Quick test_catalog_roundtrip;
          Alcotest.test_case "replace" `Quick test_catalog_replace;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "k-hop byte-identical across widths" `Quick
            test_parallel_khop_byte_identical;
          Alcotest.test_case "other connectors byte-identical" `Quick
            test_parallel_other_connectors_byte_identical;
          Alcotest.test_case "gstats identical" `Quick test_parallel_gstats_identical;
        ] );
      ("properties", qcheck_cases);
    ]
