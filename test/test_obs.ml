(* Observability layer: spans, metrics, EXPLAIN/PROFILE. *)

open Kaskade_graph
open Kaskade_query
module Obs = Kaskade_obs
module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Explain = Obs.Explain
module Executor = Kaskade_exec.Executor
module Planner = Kaskade_exec.Planner
module Row = Kaskade_exec.Row

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let prov = lazy Kaskade_gen.Provenance_gen.(generate { default with jobs = 60; files = 120; seed = 7 })

(* ------------------------------------------------------------------ *)
(* Trace spans                                                         *)

let test_span_nesting () =
  let v, spans =
    Trace.collect (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner1" (fun () ->
                ignore (Sys.opaque_identity (List.init 1000 (fun i -> i * i))));
            Trace.with_span "inner2" ~attrs:[ ("k", "v") ] (fun () -> ());
            7))
  in
  check_int "thunk result" 7 v;
  check_int "one root span" 1 (List.length spans);
  let outer = List.hd spans in
  check_string "root name" "outer" outer.Trace.name;
  check_int "two children" 2 (List.length outer.Trace.children);
  let inner1 = List.nth outer.Trace.children 0 in
  let inner2 = List.nth outer.Trace.children 1 in
  check_string "children in start order" "inner1" inner1.Trace.name;
  check_string "second child" "inner2" inner2.Trace.name;
  check_bool "attr recorded" true (List.mem_assoc "k" inner2.Trace.attrs)

let test_span_timing_monotone () =
  let (), spans =
    Trace.collect (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner1" (fun () ->
                ignore (Sys.opaque_identity (List.init 5000 (fun i -> i * i))));
            Trace.with_span "inner2" (fun () -> ())))
  in
  let outer = List.hd spans in
  let inner1 = List.nth outer.Trace.children 0 in
  let inner2 = List.nth outer.Trace.children 1 in
  let eps = 1e-9 in
  check_bool "outer duration non-negative" true (outer.Trace.duration_s >= 0.0);
  check_bool "children start inside parent" true
    (inner1.Trace.start_s >= outer.Trace.start_s -. eps);
  check_bool "second child starts after first ends" true
    (inner2.Trace.start_s >= inner1.Trace.start_s +. inner1.Trace.duration_s -. eps);
  check_bool "children fit inside parent" true
    (inner2.Trace.start_s +. inner2.Trace.duration_s
    <= outer.Trace.start_s +. outer.Trace.duration_s +. eps);
  check_bool "parent covers child sum" true
    (outer.Trace.duration_s +. eps >= inner1.Trace.duration_s +. inner2.Trace.duration_s)

let test_span_disabled_and_exceptions () =
  (* Off by default: with_span is a passthrough. *)
  check_bool "disabled outside collect" false (Trace.enabled ());
  check_int "passthrough result" 3 (Trace.with_span "ignored" (fun () -> 3));
  (* A raising thunk still switches collection off. *)
  let raised =
    try
      ignore (Trace.collect (fun () -> Trace.with_span "boom" (fun () -> failwith "x")));
      false
    with Failure _ -> true
  in
  check_bool "exception propagates" true raised;
  check_bool "collection off after raise" false (Trace.enabled ())

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_counter_accounting () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  check_int "incr accumulates" 42 (Metrics.counter_value c);
  (* Same name -> same instrument. *)
  Metrics.incr (Metrics.counter "test.counter");
  check_int "register-or-fetch shares state" 43 (Metrics.counter_value c);
  Metrics.reset ();
  check_int "reset zeroes" 0 (Metrics.counter_value c)

let test_histogram_accounting () =
  Metrics.reset ();
  let h = Metrics.histogram "test.hist" in
  let obs = [ 0.001; 0.5; 3.0; 1024.0 ] in
  List.iter (Metrics.observe h) obs;
  check_int "count" (List.length obs) (Metrics.histogram_count h);
  Alcotest.(check (float 1e-6)) "sum" (List.fold_left ( +. ) 0.0 obs) (Metrics.histogram_sum h);
  let dump = Obs.Report.to_string (Metrics.to_json ()) in
  check_bool "dump names the histogram" true (string_contains dump "test.hist");
  check_bool "dump has buckets" true (string_contains dump "buckets")

let test_engine_counters_move () =
  Metrics.reset ();
  let g = Lazy.force prov in
  let ctx = Executor.create g in
  ignore (Executor.run_string ctx "MATCH (a:Job)-[r*1..3]->(b:Job) RETURN a, b");
  let v name = Metrics.counter_value (Metrics.counter name) in
  check_bool "queries_run counted" true (v "executor.queries_run" >= 1);
  check_bool "rows_produced counted" true (v "executor.rows_produced" > 0);
  check_bool "expand_steps counted" true (v "executor.expand_steps" > 0)

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)

let scan_ops = [ "NodeByLabelScan"; "AllNodesScan"; "NodeIndexSeek"; "Argument" ]

let test_explain_matches_planner_anchor () =
  let g = Lazy.force prov in
  let stats = Gstats.compute g in
  let schema = Graph.schema g in
  (* Written head-first at the unselective side: Files outnumber Jobs,
     so the planner should anchor at (j:Job). *)
  let q = Qparser.parse "MATCH (f:File)-[:IS_READ_BY]->(j:Job) RETURN f, j" in
  let pattern =
    match q with Ast.Match_only mb -> List.hd mb.Ast.patterns | _ -> assert false
  in
  let anchor = Planner.anchor_position stats schema ~bound:(fun _ -> false) pattern in
  let nodes = pattern.Ast.p_start :: List.map snd pattern.Ast.p_steps in
  let anchor_var = Option.get (List.nth nodes anchor).Ast.n_var in
  let ctx = Executor.create ~planner:true g in
  let plan = Executor.explain ctx q in
  let scan = Explain.find (fun n -> List.mem n.Explain.op scan_ops) plan in
  match scan with
  | None -> Alcotest.fail "no scan operator in EXPLAIN output"
  | Some scan ->
    check_bool
      (Printf.sprintf "first scan (%s) starts at planner anchor %s" scan.Explain.detail anchor_var)
      true
      (string_contains scan.Explain.detail ("(" ^ anchor_var))

let test_explain_has_estimates_no_actuals () =
  let g = Lazy.force prov in
  let ctx = Executor.create ~planner:true g in
  let q = Qparser.parse "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f" in
  let plan = Executor.explain ctx q in
  check_bool "not profiled" false (Explain.profiled plan);
  check_bool "root has estimate" true (plan.Explain.est_rows <> None);
  let rendered = Explain.render plan in
  check_bool "renders est.rows column" true (string_contains rendered "est.rows");
  check_bool "no actuals column on EXPLAIN" false (string_contains rendered "time")

(* ------------------------------------------------------------------ *)
(* PROFILE                                                             *)

let table_equal (a : Row.table) (b : Row.table) =
  a.Row.cols = b.Row.cols
  && List.length a.Row.rows = List.length b.Row.rows
  && List.for_all2
       (fun ra rb -> Array.length ra = Array.length rb && Array.for_all2 Row.rval_equal ra rb)
       a.Row.rows b.Row.rows

let profile_queries =
  [ "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f";
    "MATCH (a:Job)-[r*1..3]->(b:Job) RETURN a, b";
    "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.CPU > 10 RETURN j, f";
    "SELECT j.pipelineName, COUNT(*) FROM (MATCH (j:Job) RETURN j) GROUP BY j.pipelineName";
    "SELECT DISTINCT j.pipelineName FROM (MATCH (j:Job) RETURN j) ORDER BY j.pipelineName LIMIT 3"
  ]

let test_profile_identical_results () =
  let g = Lazy.force prov in
  let ctx = Executor.create ~planner:true g in
  List.iter
    (fun src ->
      let q = Qparser.parse src in
      let plain = Executor.table_exn (Executor.run ctx q) in
      let profiled_result, plan = Executor.run_explained ~profile:true ctx q in
      let profiled = Executor.table_exn profiled_result in
      check_bool ("identical result: " ^ src) true (table_equal plain profiled);
      check_bool ("plan carries actuals: " ^ src) true (Explain.profiled plan);
      check_int ("root actual = result rows: " ^ src)
        (Row.n_rows plain)
        (Option.value plan.Explain.actual_rows ~default:(-1));
      check_bool ("root has wall time: " ^ src) true (plan.Explain.time_s <> None))
    profile_queries

let test_kaskade_profile_identity () =
  let g = Lazy.force prov in
  let ks = Kaskade.create g in
  let q = Kaskade.parse "MATCH (a:Job)-[r*1..4]->(b:Job) RETURN a, b" in
  let sel = Kaskade.select_views ks ~queries:[ q ] ~budget_edges:(10 * Graph.n_edges g) in
  ignore (Kaskade.materialize_selected ks sel);
  let r1, how1 = Kaskade.run ks q in
  let r2, report = Kaskade.profile ks q in
  check_bool "same rewrite decision" true (how1 = report.Kaskade.target);
  check_bool "profile result identical to run" true
    (table_equal (Executor.table_exn r1) (Executor.table_exn r2));
  check_bool "plan profiled" true (Explain.profiled report.Kaskade.plan);
  check_bool "candidate views listed" true (report.Kaskade.candidates <> []);
  check_bool "selection trace attached" true (report.Kaskade.selection <> None);
  (* EXPLAIN of the same query agrees with PROFILE on plan shape. *)
  let e = Kaskade.explain ks q in
  let shape n = Explain.fold (fun acc m -> (m.Explain.op ^ "/" ^ m.Explain.detail) :: acc) [] n in
  check_bool "EXPLAIN and PROFILE agree on shape" true
    (shape e.Kaskade.plan = shape report.Kaskade.plan)

let () =
  Alcotest.run "obs"
    [ ( "trace",
        [ Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span timing monotone" `Quick test_span_timing_monotone;
          Alcotest.test_case "disabled + exceptions" `Quick test_span_disabled_and_exceptions ] );
      ( "metrics",
        [ Alcotest.test_case "counter accounting" `Quick test_counter_accounting;
          Alcotest.test_case "histogram accounting" `Quick test_histogram_accounting;
          Alcotest.test_case "engine counters move" `Quick test_engine_counters_move ] );
      ( "explain",
        [ Alcotest.test_case "matches planner anchor" `Quick test_explain_matches_planner_anchor;
          Alcotest.test_case "estimates without actuals" `Quick
            test_explain_has_estimates_no_actuals ] );
      ( "profile",
        [ Alcotest.test_case "identical results" `Quick test_profile_identical_results;
          Alcotest.test_case "kaskade profile identity" `Quick test_kaskade_profile_identity ] )
    ]
