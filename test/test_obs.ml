(* Observability layer: spans, metrics, EXPLAIN/PROFILE, query log,
   trace export, advisor. *)

open Kaskade_graph
open Kaskade_query
module Obs = Kaskade_obs
module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Explain = Obs.Explain
module Qlog = Obs.Qlog
module Report = Obs.Report
module Executor = Kaskade_exec.Executor
module Planner = Kaskade_exec.Planner
module Row = Kaskade_exec.Row
module Pool = Kaskade_util.Pool


(* All tests drive the post-redesign facade API: [Kaskade.make] +
   [Kaskade.query] (the deprecated wrappers are compile errors in-tree;
   test_serve.ml keeps one compat case for them). *)
let qok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected facade error: %s" (Kaskade.Error.to_string e)

let krun ks q = qok (Kaskade.query ks q)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let prov = lazy Kaskade_gen.Provenance_gen.(generate { default with jobs = 60; files = 120; seed = 7 })

(* ------------------------------------------------------------------ *)
(* Trace spans                                                         *)

let test_span_nesting () =
  let v, spans =
    Trace.collect (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner1" (fun () ->
                ignore (Sys.opaque_identity (List.init 1000 (fun i -> i * i))));
            Trace.with_span "inner2" ~attrs:[ ("k", "v") ] (fun () -> ());
            7))
  in
  check_int "thunk result" 7 v;
  check_int "one root span" 1 (List.length spans);
  let outer = List.hd spans in
  check_string "root name" "outer" outer.Trace.name;
  check_int "two children" 2 (List.length outer.Trace.children);
  let inner1 = List.nth outer.Trace.children 0 in
  let inner2 = List.nth outer.Trace.children 1 in
  check_string "children in start order" "inner1" inner1.Trace.name;
  check_string "second child" "inner2" inner2.Trace.name;
  check_bool "attr recorded" true (List.mem_assoc "k" inner2.Trace.attrs)

let test_span_timing_monotone () =
  let (), spans =
    Trace.collect (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner1" (fun () ->
                ignore (Sys.opaque_identity (List.init 5000 (fun i -> i * i))));
            Trace.with_span "inner2" (fun () -> ())))
  in
  let outer = List.hd spans in
  let inner1 = List.nth outer.Trace.children 0 in
  let inner2 = List.nth outer.Trace.children 1 in
  let eps = 1e-9 in
  check_bool "outer duration non-negative" true (outer.Trace.duration_s >= 0.0);
  check_bool "children start inside parent" true
    (inner1.Trace.start_s >= outer.Trace.start_s -. eps);
  check_bool "second child starts after first ends" true
    (inner2.Trace.start_s >= inner1.Trace.start_s +. inner1.Trace.duration_s -. eps);
  check_bool "children fit inside parent" true
    (inner2.Trace.start_s +. inner2.Trace.duration_s
    <= outer.Trace.start_s +. outer.Trace.duration_s +. eps);
  check_bool "parent covers child sum" true
    (outer.Trace.duration_s +. eps >= inner1.Trace.duration_s +. inner2.Trace.duration_s)

let test_span_disabled_and_exceptions () =
  (* Off by default: with_span is a passthrough. *)
  check_bool "disabled outside collect" false (Trace.enabled ());
  check_int "passthrough result" 3 (Trace.with_span "ignored" (fun () -> 3));
  (* A raising thunk still switches collection off. *)
  let raised =
    try
      ignore (Trace.collect (fun () -> Trace.with_span "boom" (fun () -> failwith "x")));
      false
    with Failure _ -> true
  in
  check_bool "exception propagates" true raised;
  check_bool "collection off after raise" false (Trace.enabled ())

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_counter_accounting () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  check_int "incr accumulates" 42 (Metrics.counter_value c);
  (* Same name -> same instrument. *)
  Metrics.incr (Metrics.counter "test.counter");
  check_int "register-or-fetch shares state" 43 (Metrics.counter_value c);
  Metrics.reset ();
  check_int "reset zeroes" 0 (Metrics.counter_value c)

let test_histogram_accounting () =
  Metrics.reset ();
  let h = Metrics.histogram "test.hist" in
  let obs = [ 0.001; 0.5; 3.0; 1024.0 ] in
  List.iter (Metrics.observe h) obs;
  check_int "count" (List.length obs) (Metrics.histogram_count h);
  Alcotest.(check (float 1e-6)) "sum" (List.fold_left ( +. ) 0.0 obs) (Metrics.histogram_sum h);
  let dump = Obs.Report.to_string (Metrics.to_json ()) in
  check_bool "dump names the histogram" true (string_contains dump "test.hist");
  check_bool "dump has buckets" true (string_contains dump "buckets")

let test_engine_counters_move () =
  Metrics.reset ();
  let g = Lazy.force prov in
  let ctx = Executor.create g in
  ignore (Executor.run_string ctx "MATCH (a:Job)-[r*1..3]->(b:Job) RETURN a, b");
  let v name = Metrics.counter_value (Metrics.counter name) in
  check_bool "queries_run counted" true (v "executor.queries_run" >= 1);
  check_bool "rows_produced counted" true (v "executor.rows_produced" > 0);
  check_bool "expand_steps counted" true (v "executor.expand_steps" > 0)

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)

let scan_ops = [ "NodeByLabelScan"; "AllNodesScan"; "NodeIndexSeek"; "Argument" ]

let test_explain_matches_planner_anchor () =
  let g = Lazy.force prov in
  let stats = Gstats.compute g in
  let schema = Graph.schema g in
  (* Written head-first at the unselective side: Files outnumber Jobs,
     so the planner should anchor at (j:Job). *)
  let q = Qparser.parse "MATCH (f:File)-[:IS_READ_BY]->(j:Job) RETURN f, j" in
  let pattern =
    match q with Ast.Match_only mb -> List.hd mb.Ast.patterns | _ -> assert false
  in
  let anchor = Planner.anchor_position stats schema ~bound:(fun _ -> false) pattern in
  let nodes = pattern.Ast.p_start :: List.map snd pattern.Ast.p_steps in
  let anchor_var = Option.get (List.nth nodes anchor).Ast.n_var in
  let ctx = Executor.create ~planner:true g in
  let plan = Executor.explain ctx q in
  let scan = Explain.find (fun n -> List.mem n.Explain.op scan_ops) plan in
  match scan with
  | None -> Alcotest.fail "no scan operator in EXPLAIN output"
  | Some scan ->
    check_bool
      (Printf.sprintf "first scan (%s) starts at planner anchor %s" scan.Explain.detail anchor_var)
      true
      (string_contains scan.Explain.detail ("(" ^ anchor_var))

let test_explain_has_estimates_no_actuals () =
  let g = Lazy.force prov in
  let ctx = Executor.create ~planner:true g in
  let q = Qparser.parse "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f" in
  let plan = Executor.explain ctx q in
  check_bool "not profiled" false (Explain.profiled plan);
  check_bool "root has estimate" true (plan.Explain.est_rows <> None);
  let rendered = Explain.render plan in
  check_bool "renders est.rows column" true (string_contains rendered "est.rows");
  check_bool "no actuals column on EXPLAIN" false (string_contains rendered "time")

(* ------------------------------------------------------------------ *)
(* PROFILE                                                             *)

let table_equal (a : Row.table) (b : Row.table) =
  a.Row.cols = b.Row.cols
  && List.length a.Row.rows = List.length b.Row.rows
  && List.for_all2
       (fun ra rb -> Array.length ra = Array.length rb && Array.for_all2 Row.rval_equal ra rb)
       a.Row.rows b.Row.rows

let profile_queries =
  [ "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f";
    "MATCH (a:Job)-[r*1..3]->(b:Job) RETURN a, b";
    "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.CPU > 10 RETURN j, f";
    "SELECT j.pipelineName, COUNT(*) FROM (MATCH (j:Job) RETURN j) GROUP BY j.pipelineName";
    "SELECT DISTINCT j.pipelineName FROM (MATCH (j:Job) RETURN j) ORDER BY j.pipelineName LIMIT 3"
  ]

let test_profile_identical_results () =
  let g = Lazy.force prov in
  let ctx = Executor.create ~planner:true g in
  List.iter
    (fun src ->
      let q = Qparser.parse src in
      let plain = Executor.table_exn (Executor.run ctx q) in
      let profiled_result, plan = Executor.run_explained ~profile:true ctx q in
      let profiled = Executor.table_exn profiled_result in
      check_bool ("identical result: " ^ src) true (table_equal plain profiled);
      check_bool ("plan carries actuals: " ^ src) true (Explain.profiled plan);
      check_int ("root actual = result rows: " ^ src)
        (Row.n_rows plain)
        (Option.value plan.Explain.actual_rows ~default:(-1));
      check_bool ("root has wall time: " ^ src) true (plan.Explain.time_s <> None))
    profile_queries

let test_kaskade_profile_identity () =
  let g = Lazy.force prov in
  let ks = Kaskade.make g in
  let q = Kaskade.parse "MATCH (a:Job)-[r*1..4]->(b:Job) RETURN a, b" in
  let sel = Kaskade.select_views ks ~queries:[ q ] ~budget_edges:(10 * Graph.n_edges g) in
  ignore (Kaskade.materialize_selected ks sel);
  let r1, how1 = krun ks q in
  let r2, report = Kaskade.profile ks q in
  check_bool "same rewrite decision" true (how1 = report.Kaskade.target);
  check_bool "profile result identical to run" true
    (table_equal (Executor.table_exn r1) (Executor.table_exn r2));
  check_bool "plan profiled" true (Explain.profiled report.Kaskade.plan);
  check_bool "candidate views listed" true (report.Kaskade.candidates <> []);
  check_bool "selection trace attached" true (report.Kaskade.selection <> None);
  (* EXPLAIN of the same query agrees with PROFILE on plan shape. *)
  let e = Kaskade.explain ks q in
  let shape n = Explain.fold (fun acc m -> (m.Explain.op ^ "/" ^ m.Explain.detail) :: acc) [] n in
  check_bool "EXPLAIN and PROFILE agree on shape" true
    (shape e.Kaskade.plan = shape report.Kaskade.plan)

(* ------------------------------------------------------------------ *)
(* Query log                                                           *)

let test_qlog_ring_wraparound () =
  Qlog.clear ();
  Qlog.set_capacity 4;
  let total0 = Qlog.total () in
  for i = 1 to 10 do
    ignore
      (Qlog.add
         ~query:(Printf.sprintf "MATCH (q%d:Job) RETURN q%d" i i)
         ~outcome:Qlog.Fallback ~rows:i ~seconds:(float_of_int i *. 0.001) ())
  done;
  check_int "length capped at capacity" 4 (Qlog.length ());
  check_int "total survives eviction" (total0 + 10) (Qlog.total ());
  let rs = Qlog.records () in
  Alcotest.(check (list int)) "window keeps the newest, oldest first"
    [ 7; 8; 9; 10 ]
    (List.map (fun r -> r.Qlog.rows) rs);
  let seqs = List.map (fun r -> r.Qlog.seq) rs in
  check_bool "seqs strictly increasing" true
    (List.for_all2 ( < ) seqs (List.tl seqs @ [ max_int ]));
  (* Growing the ring keeps the held window. *)
  Qlog.set_capacity 8;
  check_int "grow keeps records" 4 (Qlog.length ());
  ignore (Qlog.add ~query:"MATCH (x) RETURN x" ~outcome:Qlog.Fallback ~rows:11 ~seconds:0.0 ());
  check_int "appends continue after resize" 5 (Qlog.length ());
  (* Shrinking keeps only the most recent. *)
  Qlog.set_capacity 2;
  Alcotest.(check (list int)) "shrink keeps newest" [ 10; 11 ]
    (List.map (fun r -> r.Qlog.rows) (Qlog.records ()));
  Qlog.set_capacity 512;
  Qlog.clear ()

let test_qlog_jsonl_roundtrip () =
  let g = Lazy.force prov in
  let ctx = Executor.create ~planner:true g in
  let q = Qparser.parse "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f" in
  let _, plan = Executor.run_explained ~profile:true ctx q in
  Qlog.clear ();
  Qlog.set_capacity 512;
  let r1 =
    Qlog.add ~budget:"steps 10/1000" ~plan
      ~query:"MATCH (j:Job) WHERE j.name = \"quo\\\"ted\n\ttab\" RETURN j"
      ~outcome:(Qlog.View_hit "KEEP_V_FILE_JOB") ~rows:7 ~seconds:0.0042 ()
  in
  let r2 =
    Qlog.add ~query:"MATCH (x) RETURN x" ~outcome:(Qlog.Failed "budget_exhausted") ~rows:0
      ~seconds:0.1 ()
  in
  let path = Filename.temp_file "kaskade_qlog" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Qlog.save path;
      match Qlog.load path with
      | Error e -> Alcotest.fail ("load failed: " ^ e)
      | Ok rs ->
        check_int "two records round-trip" 2 (List.length rs);
        let l1 = List.nth rs 0 and l2 = List.nth rs 1 in
        check_string "query text survives escaping" r1.Qlog.query l1.Qlog.query;
        check_string "hash stable across round-trip" r1.Qlog.query_hash l1.Qlog.query_hash;
        check_string "fingerprint survives" r1.Qlog.plan_fingerprint l1.Qlog.plan_fingerprint;
        check_bool "fingerprint non-empty" true (r1.Qlog.plan_fingerprint <> "");
        check_bool "view-hit outcome" true (l1.Qlog.outcome = Qlog.View_hit "KEEP_V_FILE_JOB");
        check_int "rows" 7 l1.Qlog.rows;
        check_bool "budget survives" true (l1.Qlog.budget = Some "steps 10/1000");
        check_int "operator rows flattened" (List.length r1.Qlog.operators)
          (List.length l1.Qlog.operators);
        check_bool "operators non-empty (plan given)" true (r1.Qlog.operators <> []);
        check_bool "operator ops/actuals survive" true
          (List.for_all2
             (fun (a : Qlog.op_row) (b : Qlog.op_row) ->
               a.Qlog.op = b.Qlog.op && a.Qlog.detail = b.Qlog.detail
               && a.Qlog.actual_rows = b.Qlog.actual_rows)
             r1.Qlog.operators l1.Qlog.operators);
        check_bool "failure outcome survives" true
          (l2.Qlog.outcome = Qlog.Failed "budget_exhausted");
        (* hash_query really is content-addressed. *)
        check_string "hash_query deterministic" (Qlog.hash_query r1.Qlog.query) r1.Qlog.query_hash;
        check_bool "distinct queries hash differently" true
          (r1.Qlog.query_hash <> r2.Qlog.query_hash));
  Qlog.clear ()

let test_qlog_facade_appends () =
  let g = Lazy.force prov in
  let ks = Kaskade.make g in
  Qlog.clear ();
  let q = Kaskade.parse "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f" in
  let r, how = krun ks q in
  check_bool "no views yet -> raw" true (how = Kaskade.Raw);
  (match Qlog.records () with
  | [ rec1 ] ->
    check_bool "fallback logged" true (rec1.Qlog.outcome = Qlog.Fallback);
    check_int "rows logged" (Row.n_rows (Executor.table_exn r)) rec1.Qlog.rows;
    check_bool "fingerprint captured" true (rec1.Qlog.plan_fingerprint <> "");
    check_bool "canonical text re-parses" true
      (match Kaskade.parse_result rec1.Qlog.query with Ok _ -> true | Error _ -> false)
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 logged record, got %d" (List.length rs)));
  (* Failures land in the log too (typed, via [query]). *)
  let before = Qlog.length () in
  (match
     Kaskade.query ~budget:(Kaskade_util.Budget.create ~max_steps:1 ()) ks
       (Kaskade.parse "MATCH (a:Job)-[r*1..4]->(b:Job) RETURN a, b")
   with
  | Ok _ -> Alcotest.fail "expected budget exhaustion"
  | Error e -> check_string "typed failure" "budget_exhausted" (Kaskade.Error.label e));
  check_int "failure appended" (before + 1) (Qlog.length ());
  let last = List.nth (Qlog.records ()) (Qlog.length () - 1) in
  check_bool "failure outcome recorded" true
    (last.Qlog.outcome = Qlog.Failed "budget_exhausted");
  Qlog.clear ()

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)

let test_chrome_trace_valid_json () =
  (* Oversubscription forces a real worker domain even on a one-core
     box; the morsel holding [0, grain) spins until that worker has
     claimed a morsel of its own, so worker spans are guaranteed to
     land in the trace (stealing otherwise lets a fast caller drain
     every morsel before the spawned domain gets started). *)
  let pool = Pool.create ~domains:2 ~oversubscribe:true () in
  let domains_seen = Atomic.make [] in
  let note_domain () =
    let me = Domain.self () in
    let rec go () =
      let l = Atomic.get domains_seen in
      if (not (List.mem me l)) && not (Atomic.compare_and_set domains_seen l (me :: l)) then
        go ()
    in
    go ()
  in
  let (), spans =
    Trace.collect (fun () ->
        Trace.with_span "fanout" (fun () ->
            ignore
              (Pool.map_morsels pool ~grain:256 ~n:4096 (fun ~lo ~hi ->
                   note_domain ();
                   if lo = 0 then
                     while List.length (Atomic.get domains_seen) < 2 do
                       Domain.cpu_relax ()
                     done;
                   let acc = ref 0 in
                   for i = lo to hi - 1 do
                     acc := !acc + i
                   done;
                   !acc))))
  in
  check_bool "captured a root span" true (spans <> []);
  let s = Obs.Trace_export.to_chrome_string spans in
  match Report.parse s with
  | Error e -> Alcotest.fail ("chrome trace is not valid JSON: " ^ e)
  | Ok j ->
    let events =
      match Report.member "traceEvents" j with
      | Some (Report.List l) -> l
      | _ -> Alcotest.fail "no traceEvents array"
    in
    let xs = List.filter (fun e -> Report.member "ph" e = Some (Report.Str "X")) events in
    check_bool "has complete (X) events" true (List.length xs >= 2);
    List.iter
      (fun e ->
        List.iter
          (fun field ->
            check_bool ("X event carries " ^ field) true (Report.member field e <> None))
          [ "name"; "ts"; "dur"; "pid"; "tid" ];
        match Report.member "dur" e with
        | Some (Report.Int d) -> check_bool "dur non-negative" true (d >= 0)
        | Some (Report.Float d) -> check_bool "dur non-negative" true (d >= 0.0)
        | _ -> Alcotest.fail "dur is not a number")
      xs;
    let tids =
      List.filter_map
        (fun e -> match Report.member "tid" e with Some (Report.Int t) -> Some t | _ -> None)
        xs
    in
    check_bool "main thread events present" true (List.mem 1 tids);
    check_bool "pool morsels land on worker tids" true (List.exists (fun t -> t > 1) tids);
    (* Every tid in use gets a thread_name metadata event. *)
    let named_tids =
      List.filter_map
        (fun e ->
          if Report.member "name" e = Some (Report.Str "thread_name") then
            match Report.member "tid" e with Some (Report.Int t) -> Some t | _ -> None
          else None)
        events
    in
    List.iter
      (fun t -> check_bool (Printf.sprintf "tid %d is named" t) true (List.mem t named_tids))
      (List.sort_uniq compare tids)

let rec flatten_spans (s : Trace.span) = s :: List.concat_map flatten_spans s.Trace.children

let test_chrome_trace_morsel_spans () =
  (* Morsel fan-outs label each span with the morsel's index and half-
     open range — not a chunk index. Oversubscription forces real
     worker domains (the observer only reports parallel runs), and the
     exporter keys worker tids off the same "domain" attr as chunks. *)
  let pool = Pool.create ~domains:2 ~oversubscribe:true () in
  let (), spans =
    Trace.collect (fun () ->
        Trace.with_span "fanout" (fun () ->
            ignore
              (Pool.map_morsels pool ~grain:1024 ~n:4096 (fun ~lo ~hi ->
                   let acc = ref 0 in
                   for i = lo to hi - 1 do
                     acc := !acc + i
                   done;
                   !acc))))
  in
  let morsels =
    List.filter (fun s -> s.Trace.name = "pool.morsel") (List.concat_map flatten_spans spans)
  in
  check_int "one span per morsel" 4 (List.length morsels);
  let ranges =
    List.sort compare (List.filter_map (fun s -> List.assoc_opt "range" s.Trace.attrs) morsels)
  in
  Alcotest.(check (list string))
    "spans carry morsel ranges"
    [ "[0,1024)"; "[1024,2048)"; "[2048,3072)"; "[3072,4096)" ]
    ranges;
  List.iter
    (fun s ->
      check_bool "morsel i/m attr" true
        (match List.assoc_opt "morsel" s.Trace.attrs with
        | Some v -> String.contains v '/'
        | None -> false);
      check_bool "domain attr" true (List.assoc_opt "domain" s.Trace.attrs <> None))
    morsels;
  match Report.parse (Obs.Trace_export.to_chrome_string spans) with
  | Error e -> Alcotest.fail ("chrome trace is not valid JSON: " ^ e)
  | Ok j -> begin
    match Report.member "traceEvents" j with
    | Some (Report.List events) ->
      check_int "morsel events exported" 4
        (List.length
           (List.filter
              (fun e -> Report.member "name" e = Some (Report.Str "pool.morsel"))
              events))
    | _ -> Alcotest.fail "no traceEvents array"
  end

(* ------------------------------------------------------------------ *)
(* Quantiles + multicore histogram path                                *)

let test_quantiles_vs_reference () =
  Metrics.reset ();
  let h = Metrics.histogram "test.quantiles" in
  (* Deterministic LCG over a wide, skewed range. *)
  let state = ref 123456789 in
  let next () =
    state := (1103515245 * !state + 12345) land 0x3FFFFFFF;
    (float_of_int (!state mod 100_000) /. 97.0) +. 0.001
  in
  let n = 500 in
  let values = Array.init n (fun _ -> next ()) in
  Array.iter (Metrics.observe h) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let exact q =
    (* Nearest-rank on the sorted copy. *)
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  in
  List.iter
    (fun q ->
      let est = Metrics.quantile h q in
      let ex = exact q in
      check_bool
        (Printf.sprintf "q=%.2f within a bucket of exact (est %.3f, exact %.3f)" q est ex)
        true
        (est >= ex /. 2.001 && est <= ex *. 2.001))
    [ 0.5; 0.9; 0.95; 0.99 ];
  let p50 = Metrics.quantile h 0.5
  and p95 = Metrics.quantile h 0.95
  and p99 = Metrics.quantile h 0.99 in
  check_bool "quantiles monotone" true (p50 <= p95 && p95 <= p99);
  check_bool "clamped to observed range" true
    (p50 >= Metrics.histogram_min h && p99 <= Metrics.histogram_max h);
  Alcotest.(check (float 1e-9)) "min exact" sorted.(0) (Metrics.histogram_min h);
  Alcotest.(check (float 1e-9)) "max exact" sorted.(n - 1) (Metrics.histogram_max h);
  check_bool "empty histogram -> nan" true
    (Float.is_nan (Metrics.quantile (Metrics.histogram "test.quantiles.empty") 0.5));
  Metrics.reset ()

let test_histogram_worker_observations () =
  Metrics.reset ();
  let h = Metrics.histogram "test.hist.workers" in
  let pool = Pool.create ~domains:4 ~oversubscribe:true () in
  let n = 1000 in
  ignore
    (Pool.map_morsels pool ~grain:250 ~n (fun ~lo ~hi ->
         for i = lo to hi - 1 do
           Metrics.observe h (float_of_int (i + 1))
         done));
  (* Some morsels run on the caller (plain path), the stolen ones on
     workers (atomic side cells) — the merged view must be exact. *)
  check_int "merged count exact" n (Metrics.histogram_count h);
  Alcotest.(check (float 1e-6)) "merged sum exact"
    (float_of_int (n * (n + 1) / 2))
    (Metrics.histogram_sum h);
  Alcotest.(check (float 1e-9)) "merged min" 1.0 (Metrics.histogram_min h);
  Alcotest.(check (float 1e-9)) "merged max" (float_of_int n) (Metrics.histogram_max h);
  check_bool "quantile readable after merge" true (not (Float.is_nan (Metrics.quantile h 0.5)));
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Advisor                                                             *)

(* Acceptance criterion: advising over a captured fig7-style workload
   must recommend the same view set as static enumeration + selection
   over the same queries and frequencies. *)
let advisor_workload =
  [ ("MATCH (s:Job)-[r*1..4]->(desc:Job) RETURN s, desc", 3);
    ("MATCH (s:Job)<-[r*1..4]-(anc:Job) RETURN s, anc", 2);
    ("SELECT s, n, MAX(r) FROM (MATCH (s:Job)-[r*1..4]->(n) RETURN s, n, r) GROUP BY s, n", 1)
  ]

let chosen_names (sel : Kaskade.Selection.t) =
  List.sort compare (List.map Kaskade_views.View.name sel.Kaskade.Selection.chosen)

let test_advisor_matches_static_selection () =
  let g = Lazy.force prov in
  let ks = Kaskade.make g in
  let budget = 10 * Graph.n_edges g in
  Qlog.clear ();
  List.iter
    (fun (src, freq) ->
      let q = Kaskade.parse src in
      for _ = 1 to freq do
        ignore (krun ks q)
      done)
    advisor_workload;
  check_int "every run logged" 6 (Qlog.length ());
  let advice = Kaskade.Advisor.advise ~budget_edges:budget ks in
  check_int "all records replayed" 6 advice.Kaskade.Advisor.replayed;
  check_int "nothing skipped" 0 advice.Kaskade.Advisor.skipped;
  (* The advisor's workload grouping recovers the true frequencies. *)
  Alcotest.(check (list int)) "frequencies recovered, most frequent first" [ 3; 2; 1 ]
    (List.map snd advice.Kaskade.Advisor.workload);
  (* Static path: same queries, same frequencies as weights. *)
  let static =
    Kaskade.Selection.select (Kaskade.stats ks) (Kaskade.schema ks)
      ~query_weights:(List.map (fun (_, f) -> float_of_int f) advisor_workload)
      ~queries:(List.map (fun (src, _) -> Kaskade.parse src) advisor_workload)
      ~budget_edges:budget
  in
  check_bool "static selection chooses something" true (static.Kaskade.Selection.chosen <> []);
  Alcotest.(check (list string)) "advisor selection == static selection" (chosen_names static)
    (chosen_names advice.Kaskade.Advisor.selection);
  (* Empty catalog: every chosen view is an Add, and none has log hits. *)
  List.iter
    (fun (r : Kaskade.Advisor.recommendation) ->
      check_bool ("verdict is Add: " ^ r.Kaskade.Advisor.rec_view) true
        (r.Kaskade.Advisor.rec_verdict = Kaskade.Advisor.Add))
    advice.Kaskade.Advisor.recommendations;
  check_int "recommendation per chosen view"
    (List.length static.Kaskade.Selection.chosen)
    (List.length advice.Kaskade.Advisor.recommendations);
  Qlog.clear ()

let test_advisor_keep_after_materialization () =
  let g = Lazy.force prov in
  let ks = Kaskade.make g in
  let budget = 10 * Graph.n_edges g in
  let queries = List.map (fun (src, _) -> Kaskade.parse src) advisor_workload in
  let sel = Kaskade.select_views ks ~queries ~budget_edges:budget in
  ignore (Kaskade.materialize_selected ks sel);
  Qlog.clear ();
  List.iter (fun q -> ignore (krun ks q)) queries;
  (* At least one query must now route through a view and be logged so. *)
  let hits =
    List.filter (fun r -> match r.Qlog.outcome with Qlog.View_hit _ -> true | _ -> false)
      (Qlog.records ())
  in
  check_bool "view hits logged" true (hits <> []);
  let advice = Kaskade.Advisor.advise ~budget_edges:budget ks in
  (* The same workload still selects the same views, so the verdicts
     flip from Add to Keep — and the hit counts are observed. *)
  List.iter
    (fun (r : Kaskade.Advisor.recommendation) ->
      if List.mem r.Kaskade.Advisor.rec_view (chosen_names sel) then begin
        check_bool ("materialized view kept: " ^ r.Kaskade.Advisor.rec_view) true
          (r.Kaskade.Advisor.rec_verdict = Kaskade.Advisor.Keep);
        check_bool ("observed hits counted: " ^ r.Kaskade.Advisor.rec_view) true
          (r.Kaskade.Advisor.rec_hits > 0
          || not
               (List.exists
                  (fun h ->
                    h.Qlog.outcome = Qlog.View_hit r.Kaskade.Advisor.rec_view)
                  hits))
      end)
    advice.Kaskade.Advisor.recommendations;
  (* Calibration rows exist for the replayed targets and carry sane ratios. *)
  List.iter
    (fun (c : Kaskade.Advisor.calibration) ->
      check_bool "calibration over logged runs" true (c.Kaskade.Advisor.cal_queries > 0);
      check_bool "ratio finite and positive" true
        (Float.is_finite c.Kaskade.Advisor.cal_ratio && c.Kaskade.Advisor.cal_ratio > 0.0))
    advice.Kaskade.Advisor.calibration;
  Qlog.clear ()

(* ------------------------------------------------------------------ *)
(* Trace contexts: minting, scoping, span + qlog stamping              *)

module Tracectx = Obs.Tracectx
module Health = Obs.Health
module Timeseries = Obs.Timeseries

let test_tracectx_mint () =
  let a = Tracectx.mint () and b = Tracectx.mint () in
  check_bool "minted id is valid" true (Tracectx.is_valid a);
  check_bool "second minted id is valid" true (Tracectx.is_valid b);
  check_bool "consecutive mints differ" true (a <> b);
  check_bool "session-salted mint is valid" true (Tracectx.is_valid (Tracectx.mint ~session:"s7" ()));
  List.iter
    (fun bad -> check_bool (Printf.sprintf "rejects %S" bad) false (Tracectx.is_valid bad))
    [ ""; "xyz"; "00deadbeef123ab"; "00deadbeef123abcd"; "00DEADBEEF123ABC"; "00deadbeef123ab-" ]

let test_tracectx_scoping () =
  let a = String.make 16 'a' and b = String.make 16 'b' in
  check_bool "no ambient ctx at rest" true (Tracectx.current () = None);
  Tracectx.with_ctx a (fun () ->
      check_bool "ctx visible inside" true (Tracectx.current () = Some a);
      Tracectx.with_ctx b (fun () ->
          check_bool "inner ctx shadows" true (Tracectx.current () = Some b));
      check_bool "outer ctx restored" true (Tracectx.current () = Some a));
  check_bool "ctx cleared after scope" true (Tracectx.current () = None);
  (try Tracectx.with_ctx a (fun () -> raise Exit) with Exit -> ());
  check_bool "ctx restored after raise" true (Tracectx.current () = None);
  Tracectx.with_ctx a (fun () ->
      Tracectx.with_minted (fun id -> check_string "with_minted inherits" a id));
  Tracectx.with_minted (fun id ->
      check_bool "with_minted mints when absent" true (Tracectx.is_valid id);
      check_bool "minted id is the ambient ctx" true (Tracectx.current () = Some id));
  check_bool "minted ctx cleared" true (Tracectx.current () = None)

let test_span_trace_stamping () =
  let id = Tracectx.mint () in
  let (), spans =
    Trace.collect (fun () ->
        Tracectx.with_ctx id (fun () ->
            Trace.with_span "stamped" (fun () ->
                let t = Trace.now_s () in
                Trace.record_span ~name:"leaf" ~start_s:t ~stop_s:t ());
            Trace.with_span "explicit"
              ~attrs:[ ("trace", String.make 16 'f') ]
              (fun () -> ()));
        Trace.with_span "bare" (fun () -> ()))
  in
  let all = List.concat_map flatten_spans spans in
  let find n = List.find (fun s -> s.Trace.name = n) all in
  check_bool "with_span stamps ambient trace" true
    (List.assoc_opt "trace" (find "stamped").Trace.attrs = Some id);
  check_bool "record_span stamps ambient trace" true
    (List.assoc_opt "trace" (find "leaf").Trace.attrs = Some id);
  check_bool "explicit trace attr wins" true
    (List.assoc_opt "trace" (find "explicit").Trace.attrs = Some (String.make 16 'f'));
  check_bool "no ctx, no stamp" true (List.assoc_opt "trace" (find "bare").Trace.attrs = None)

let test_qlog_trace_stamping () =
  Qlog.clear ();
  let id = Tracectx.mint () in
  let r1 = Qlog.add ~trace:id ~query:"Q1" ~outcome:Qlog.Fallback ~rows:1 ~seconds:0.001 () in
  check_bool "explicit trace stored" true (r1.Qlog.trace = Some id);
  let r2 =
    Tracectx.with_ctx id (fun () ->
        Qlog.add ~query:"Q2" ~outcome:Qlog.Fallback ~rows:0 ~seconds:0.0 ())
  in
  check_bool "ambient trace is the default" true (r2.Qlog.trace = Some id);
  let r3 = Qlog.add ~query:"Q3" ~outcome:Qlog.Fallback ~rows:0 ~seconds:0.0 () in
  check_bool "no ctx, no trace" true (r3.Qlog.trace = None);
  (* The JSON shape keeps the field through a round-trip. *)
  (match Qlog.record_of_json (Qlog.record_to_json r1) with
  | Ok back -> check_bool "trace survives JSON round-trip" true (back.Qlog.trace = Some id)
  | Error e -> Alcotest.fail ("record round-trip failed: " ^ e));
  Qlog.clear ()

let test_qlog_slow_counter () =
  let counter_value name =
    match List.assoc_opt name (Metrics.counters_list ()) with Some v -> v | None -> 0
  in
  let before = counter_value "kaskade.slow_queries" in
  let old = Qlog.slow_threshold_s () in
  Fun.protect
    ~finally:(fun () -> Qlog.set_slow_threshold old)
    (fun () ->
      Qlog.set_slow_threshold 0.005;
      check_bool "threshold readable" true (Qlog.slow_threshold_s () = 0.005);
      ignore (Qlog.add ~query:"fast" ~outcome:Qlog.Fallback ~rows:0 ~seconds:0.004 ());
      check_int "below threshold does not count" before (counter_value "kaskade.slow_queries");
      ignore (Qlog.add ~query:"slow" ~outcome:Qlog.Fallback ~rows:0 ~seconds:0.005 ());
      check_int "at threshold counts" (before + 1) (counter_value "kaskade.slow_queries"));
  Qlog.clear ()

(* Satellite: Chrome trace export under sharded scans — shard.scan
   spans and their pool.morsel children all carry the originating
   trace id, at shard counts 1 and 4, and the export stays valid JSON
   with integer tids throughout. The graph is sized so every shard's
   candidate array spans several morsels (default grain is >= 256). *)
let test_shard_scan_trace_spans () =
  let g = Kaskade_gen.Powerlaw_gen.(generate (scaled ~edges:30_000 ~seed:3)) in
  let pool = Pool.create ~domains:2 ~oversubscribe:true () in
  List.iter
    (fun s ->
      let sh = Shard.of_graph ~shards:s g in
      let id = Tracectx.mint () in
      let (rows, _), spans =
        Trace.collect (fun () ->
            Tracectx.with_ctx id (fun () -> Shard.typed_scan ~pool sh ~etype:0))
      in
      check_bool (Printf.sprintf "S=%d: scan produced rows" s) true (rows > 0);
      let all = List.concat_map flatten_spans spans in
      let scans = List.filter (fun sp -> sp.Trace.name = "shard.scan") all in
      let morsels = List.filter (fun sp -> sp.Trace.name = "pool.morsel") all in
      check_int (Printf.sprintf "S=%d: one shard.scan span per shard" s) s (List.length scans);
      check_bool (Printf.sprintf "S=%d: morsel spans present" s) true (morsels <> []);
      List.iter
        (fun sp ->
          check_bool
            (Printf.sprintf "S=%d: %s span carries originating trace id" s sp.Trace.name)
            true
            (List.assoc_opt "trace" sp.Trace.attrs = Some id))
        (scans @ morsels);
      let chrome = Obs.Trace_export.to_chrome_string spans in
      check_bool (Printf.sprintf "S=%d: trace id survives into export" s) true
        (string_contains chrome id);
      match Report.parse chrome with
      | Error e -> Alcotest.fail ("chrome trace is not valid JSON: " ^ e)
      | Ok j -> begin
        match Report.member "traceEvents" j with
        | Some (Report.List events) ->
          check_bool (Printf.sprintf "S=%d: events exported" s) true (events <> []);
          List.iter
            (fun e ->
              match Report.member "tid" e with
              | Some (Report.Int t) ->
                check_bool (Printf.sprintf "S=%d: tid non-negative" s) true (t >= 0)
              | Some (Report.Float f) ->
                check_bool (Printf.sprintf "S=%d: tid integral" s) true
                  (Float.is_integer f && f >= 0.0)
              | _ -> Alcotest.fail "trace event without an integer tid")
            events
        | _ -> Alcotest.fail "no traceEvents array"
      end)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Prometheus exposition, health model, time series                    *)

let test_prometheus_exposition () =
  let c = Metrics.counter ~help:"test counter" "test.prom.counter" in
  Metrics.incr ~by:3 c;
  let g = Metrics.gauge "test.prom.gauge" in
  Metrics.set_gauge g 2.5;
  let h = Metrics.histogram "test.prom.hist" in
  Metrics.observe h 0.004;
  Metrics.observe h 0.2;
  let text = Metrics.to_prometheus () in
  check_bool "dots sanitized + _total suffix" true
    (string_contains text "test_prom_counter_total 3");
  check_bool "counter HELP line" true
    (string_contains text "# HELP test_prom_counter_total test counter");
  check_bool "counter TYPE line" true
    (string_contains text "# TYPE test_prom_counter_total counter");
  check_bool "gauge level" true (string_contains text "test_prom_gauge 2.5");
  check_bool "gauge TYPE line" true (string_contains text "# TYPE test_prom_gauge gauge");
  check_bool "histogram TYPE line" true
    (string_contains text "# TYPE test_prom_hist histogram");
  check_bool "histogram buckets" true (string_contains text "test_prom_hist_bucket{le=");
  check_bool "+Inf bucket holds total count" true
    (string_contains text "test_prom_hist_bucket{le=\"+Inf\"} 2");
  check_bool "histogram _sum" true (string_contains text "test_prom_hist_sum");
  check_bool "histogram _count" true (string_contains text "test_prom_hist_count 2");
  (* Engine metrics registered at module init are in the same page. *)
  check_bool "engine counters exposed" true (string_contains text "kaskade_view_hits_total")

let test_health_evaluate () =
  let t = Health.default_thresholds in
  check_bool "empty sample is ok" true (Health.evaluate Health.empty_sample = Health.Ok);
  check_string "ok label" "ok" (Health.label Health.Ok);
  let degraded_on s key =
    match Health.evaluate s with
    | Health.Degraded rs ->
      check_bool (key ^ " reason present") true (List.exists (fun r -> string_contains r key) rs);
      check_bool "reasons are space-free tokens" true
        (List.for_all (fun r -> not (String.contains r ' ')) rs)
    | st -> Alcotest.failf "expected degraded on %s, got %s" key (Health.label st)
  in
  degraded_on
    { Health.empty_sample with Health.queue_depth = t.Health.max_queue_depth + 1 }
    "queue_depth";
  degraded_on { Health.empty_sample with Health.wal_lag = t.Health.max_wal_lag + 1 } "wal_lag";
  degraded_on { Health.empty_sample with Health.shed_rate = 0.2 } "shed_rate";
  (* 4x a threshold escalates to unhealthy. *)
  (match
     Health.evaluate
       { Health.empty_sample with Health.queue_depth = (t.Health.max_queue_depth * 4) + 1 }
   with
  | Health.Unhealthy rs -> check_bool "unhealthy carries reasons" true (rs <> [])
  | st -> Alcotest.failf "expected unhealthy, got %s" (Health.label st));
  (match Health.evaluate { Health.empty_sample with Health.shed_rate = 0.5 } with
  | Health.Unhealthy _ -> ()
  | st -> Alcotest.failf "expected unhealthy shed storm, got %s" (Health.label st));
  (* Stale views and plan-cache hit rate are transients: degraded at
     worst, no matter how extreme. *)
  (match Health.evaluate { Health.empty_sample with Health.stale_views = 1_000_000 } with
  | Health.Degraded _ -> ()
  | st -> Alcotest.failf "stale views must cap at degraded, got %s" (Health.label st));
  (match
     Health.evaluate
       { Health.empty_sample with Health.plan_cache_hits = 1; plan_cache_misses = 999 }
   with
  | Health.Degraded rs ->
    check_bool "plan-cache reason" true (List.exists (fun r -> string_contains r "plan_cache") rs)
  | st -> Alcotest.failf "plan-cache miss storm must degrade, got %s" (Health.label st));
  (* A cold cache (under min lookups) is not judged. *)
  check_bool "cold plan cache is ok" true
    (Health.evaluate { Health.empty_sample with Health.plan_cache_misses = 10 } = Health.Ok);
  (* Multiple hard failures: all reasons surface. *)
  (match
     Health.evaluate
       { Health.empty_sample with
         Health.queue_depth = (t.Health.max_queue_depth * 4) + 1;
         shed_rate = 0.5;
         stale_views = t.Health.max_stale_views + 1
       }
   with
  | Health.Unhealthy rs -> check_bool "all reasons listed" true (List.length rs >= 3)
  | st -> Alcotest.failf "expected unhealthy, got %s" (Health.label st));
  (* to_json renders without raising and carries the status label. *)
  let s = { Health.empty_sample with Health.queue_depth = t.Health.max_queue_depth + 1 } in
  let j = Health.to_json s (Health.evaluate s) in
  check_bool "json status" true (Report.member "status" j = Some (Report.Str "degraded"))

let test_timeseries_sampler () =
  let c = Metrics.counter ~help:"ts test" "test.ts.counter" in
  let g = Metrics.gauge "test.ts.gauge" in
  let h = Metrics.histogram "test.ts.hist" in
  let ts = Timeseries.create ~capacity:3 () in
  check_int "capacity" 3 (Timeseries.capacity ts);
  let p0 = Timeseries.sample ts in
  check_bool "baseline interval is zero" true (p0.Timeseries.interval_s = 0.0);
  Metrics.incr ~by:5 c;
  Metrics.set_gauge g 7.0;
  Metrics.observe h 1.0;
  Unix.sleepf 0.002;
  let p1 = Timeseries.sample ts in
  check_int "counter delta over the window" 5 (Timeseries.counter_delta p1 "test.ts.counter");
  check_int "absent counter delta is zero" 0 (Timeseries.counter_delta p1 "test.ts.nosuch");
  check_bool "gauge level" true (Timeseries.gauge_level p1 "test.ts.gauge" = Some 7.0);
  (match Timeseries.histogram_point p1 "test.ts.hist" with
  | Some (n, _, _, _) -> check_int "histogram count delta" 1 n
  | None -> Alcotest.fail "histogram point missing");
  check_bool "windowed rate is positive" true (Timeseries.rate p1 "test.ts.counter" > 0.0);
  (* Deltas, not cumulative levels: an idle window reads zero. *)
  let p2 = Timeseries.sample ts in
  check_int "idle window delta" 0 (Timeseries.counter_delta p2 "test.ts.counter");
  (* The ring is bounded and ordered oldest-first. *)
  ignore (Timeseries.sample ts);
  ignore (Timeseries.sample ts);
  check_int "ring bounded at capacity" 3 (Timeseries.length ts);
  let pts = Timeseries.points ts in
  check_int "points match length" 3 (List.length pts);
  check_bool "oldest first" true
    (match pts with
    | x :: y :: _ -> x.Timeseries.at_s <= y.Timeseries.at_s
    | _ -> false);
  check_bool "latest is last point" true
    (match (Timeseries.latest ts, List.rev pts) with
    | Some l, last :: _ -> l.Timeseries.at_s = last.Timeseries.at_s
    | _ -> false);
  (* Every JSONL line parses back. *)
  List.iter
    (fun line ->
      match Report.parse line with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("timeseries JSONL line invalid: " ^ e))
    (String.split_on_char '\n' (String.trim (Timeseries.to_jsonl ts)))

let () =
  Alcotest.run "obs"
    [ ( "trace",
        [ Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span timing monotone" `Quick test_span_timing_monotone;
          Alcotest.test_case "disabled + exceptions" `Quick test_span_disabled_and_exceptions ] );
      ( "metrics",
        [ Alcotest.test_case "counter accounting" `Quick test_counter_accounting;
          Alcotest.test_case "histogram accounting" `Quick test_histogram_accounting;
          Alcotest.test_case "engine counters move" `Quick test_engine_counters_move ] );
      ( "explain",
        [ Alcotest.test_case "matches planner anchor" `Quick test_explain_matches_planner_anchor;
          Alcotest.test_case "estimates without actuals" `Quick
            test_explain_has_estimates_no_actuals ] );
      ( "profile",
        [ Alcotest.test_case "identical results" `Quick test_profile_identical_results;
          Alcotest.test_case "kaskade profile identity" `Quick test_kaskade_profile_identity ] );
      ( "qlog",
        [ Alcotest.test_case "ring wraparound" `Quick test_qlog_ring_wraparound;
          Alcotest.test_case "jsonl round-trip" `Quick test_qlog_jsonl_roundtrip;
          Alcotest.test_case "facade appends" `Quick test_qlog_facade_appends ] );
      ( "trace-export",
        [ Alcotest.test_case "chrome trace valid json" `Quick test_chrome_trace_valid_json;
          Alcotest.test_case "morsel spans labelled with ranges" `Quick
            test_chrome_trace_morsel_spans ] );
      ( "quantiles",
        [ Alcotest.test_case "vs sorted-array reference" `Quick test_quantiles_vs_reference;
          Alcotest.test_case "worker-domain observations" `Quick
            test_histogram_worker_observations ] );
      ( "advisor",
        [ Alcotest.test_case "matches static selection" `Quick
            test_advisor_matches_static_selection;
          Alcotest.test_case "keep after materialization" `Quick
            test_advisor_keep_after_materialization ] );
      ( "tracectx",
        [ Alcotest.test_case "mint + validity" `Quick test_tracectx_mint;
          Alcotest.test_case "scoping + restore" `Quick test_tracectx_scoping;
          Alcotest.test_case "span stamping" `Quick test_span_trace_stamping;
          Alcotest.test_case "qlog stamping + round-trip" `Quick test_qlog_trace_stamping;
          Alcotest.test_case "slow-query counter" `Quick test_qlog_slow_counter;
          Alcotest.test_case "sharded scan spans carry trace id" `Quick
            test_shard_scan_trace_spans ] );
      ( "telemetry",
        [ Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
          Alcotest.test_case "health evaluation" `Quick test_health_evaluate;
          Alcotest.test_case "timeseries sampler" `Quick test_timeseries_sampler ] )
    ]
