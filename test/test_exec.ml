open Kaskade_graph
open Kaskade_exec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lineage_schema = Kaskade_gen.Provenance_gen.schema

(* j0 writes f0, f1; f0 read by j1; f1 read by j1 and j2; j2 writes f2;
   user u0 submitted j0, j1; u1 submitted j2. *)
let small_lineage () =
  let b = Builder.create lineage_schema in
  let j =
    Array.init 3 (fun i ->
        Builder.add_vertex b ~vtype:"Job"
          ~props:
            [ ("name", Value.Str (Printf.sprintf "j%d" i));
              ("CPU", Value.Float (float_of_int (10 * (i + 1))));
              ("pipelineName", Value.Str (if i < 2 then "alpha" else "beta")) ]
          ())
  in
  let f =
    Array.init 3 (fun i ->
        Builder.add_vertex b ~vtype:"File"
          ~props:[ ("name", Value.Str (Printf.sprintf "f%d" i)) ] ())
  in
  let u = Array.init 2 (fun i ->
      Builder.add_vertex b ~vtype:"User" ~props:[ ("name", Value.Str (Printf.sprintf "u%d" i)) ] ())
  in
  let ts = ref 0 in
  let edge s d t =
    incr ts;
    ignore (Builder.add_edge b ~src:s ~dst:d ~etype:t ~props:[ ("timestamp", Value.Int !ts) ] ())
  in
  edge j.(0) f.(0) "WRITES_TO";
  edge j.(0) f.(1) "WRITES_TO";
  edge f.(0) j.(1) "IS_READ_BY";
  edge f.(1) j.(1) "IS_READ_BY";
  edge f.(1) j.(2) "IS_READ_BY";
  edge j.(2) f.(2) "WRITES_TO";
  edge u.(0) j.(0) "SUBMITTED";
  edge u.(0) j.(1) "SUBMITTED";
  edge u.(1) j.(2) "SUBMITTED";
  (Graph.freeze b, j, f, u)


(* First MATCH pattern of a query (planner tests). *)
module Ast_patterns = struct
  let first q = match Kaskade_query.Ast.patterns_of q with p :: _ -> Some p | [] -> None
end

let table ctx src = Executor.table_exn (Executor.run_string ctx src)

let names g t col =
  List.map
    (fun row ->
      match row.(Row.col_index t col) with
      | Row.V v -> begin
        match Graph.vprop g v "name" with Some (Value.Str s) -> s | _ -> "?"
      end
      | other -> Row.rval_to_string g other)
    t.Row.rows
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* MATCH basics                                                        *)

let test_scan_by_label () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (j:Job) RETURN j" in
  Alcotest.(check (list string)) "all jobs" [ "j0"; "j1"; "j2" ] (names g t "j")

let test_scan_all () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  check_int "all vertices" (Graph.n_vertices g) (Row.n_rows (table ctx "MATCH (n) RETURN n"))

let test_single_edge_expand () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f" in
  check_int "three writes" 3 (Row.n_rows t)

let test_backward_edge () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (f:File)<-[:WRITES_TO]-(j:Job) RETURN f, j" in
  check_int "same three writes" 3 (Row.n_rows t)

let test_two_hop_chain () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b" in
  (* j0-f0-j1, j0-f1-j1, j0-f1-j2 *)
  check_int "three 2-hop paths" 3 (Row.n_rows t)

let test_shared_var_join () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t =
    table ctx
      "MATCH (a:Job)-[:WRITES_TO]->(f:File), (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, f, b"
  in
  check_int "join on f" 3 (Row.n_rows t)

let test_unknown_label_rejected () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  check_bool "semantic error" true
    (try
       ignore (table ctx "MATCH (x:Ghost) RETURN x");
       false
     with Kaskade_query.Analyze.Semantic_error _ -> true)

let test_edge_var_binding () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (j:Job)-[e:WRITES_TO]->(f:File) WHERE e.timestamp > 1 RETURN j, f" in
  check_int "filter on edge prop" 2 (Row.n_rows t)

(* ------------------------------------------------------------------ *)
(* Variable-length paths                                               *)

let test_var_length_distinct () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (f:File)-[r*1..4]->(n:Job) RETURN f, n" in
  (* Distinct (file, job) pairs within 4 hops: f0->{j1,j2(f0-j1? no...)}:
     f0->j1 (1 hop), then j1 has no out-edges beyond... j1 writes
     nothing, so from f0: {j1}. f1->{j1, j2}, plus f1->j2->... j2
     writes f2, f2 read by nobody; f2->{} ; also f0->j1 only.
     Pairs: (f0,j1), (f1,j1), (f1,j2). Wait f0: 1-hop j1; j1 no
     out-edges. And (f1,j2)->f2: f2 is File not Job. Total 3. *)
  check_int "distinct pairs" 3 (Row.n_rows t)

let test_var_length_zero_lo () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (f:File)-[r*0..2]->(x:File) RETURN f, x" in
  (* lo=0 pairs every file with itself (3) plus 2-hop file-file pairs:
     f0->j1->(nothing), f1->j1/j2->...: f1-j2-f2. So 3 + 1 = 4. *)
  check_int "self plus 2-hop" 4 (Row.n_rows t)

let test_var_length_trails_multiplicity () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create ~mode:Executor.All_trails g in
  let t = table ctx "MATCH (a:Job)-[r*2..2]->(b:Job) RETURN a, b" in
  (* Trails of length exactly 2 between jobs: j0-f0-j1, j0-f1-j1,
     j0-f1-j2 — multiplicity preserved. *)
  check_int "three trails" 3 (Row.n_rows t)

let test_var_length_modes_agree_on_sets () =
  let g, _, _, _ = small_lineage () in
  let distinct = Executor.create g in
  let trails = Executor.create ~mode:Executor.All_trails g in
  let set_of ctx =
    let t = table ctx "MATCH (a:Job)-[r*1..3]->(x) RETURN a, x" in
    List.sort_uniq compare
      (List.map (fun row -> (row.(0), row.(1))) t.Row.rows)
  in
  check_bool "same endpoint sets" true (set_of distinct = set_of trails)

let test_var_length_cycle_self_pair () =
  (* a -> b -> a cycle: distinct-endpoint expansion must report the
     source as reachable at hop 2 (connector-rewrite soundness). *)
  let schema = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "E", "V") ] in
  let b = Builder.create schema in
  let v0 = Builder.add_vertex b ~vtype:"V" ~props:[ ("name", Value.Str "v0") ] () in
  let v1 = Builder.add_vertex b ~vtype:"V" ~props:[ ("name", Value.Str "v1") ] () in
  ignore (Builder.add_edge b ~src:v0 ~dst:v1 ~etype:"E" ());
  ignore (Builder.add_edge b ~src:v1 ~dst:v0 ~etype:"E" ());
  let g = Graph.freeze b in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (a)-[r*1..2]->(b) RETURN a, b" in
  check_int "both self-pairs found" 4 (Row.n_rows t)

let test_var_length_lo2_walk_semantics () =
  (* Line 0->1->2: with *2..2 only vertex 2 qualifies; vertex 1 is at
     distance 1 and has no length-2 walk. *)
  let schema = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "E", "V") ] in
  let b = Builder.create schema in
  let ids = Array.init 3 (fun i -> Builder.add_vertex b ~vtype:"V" ~props:[ ("name", Value.Str (Printf.sprintf "v%d" i)) ] ()) in
  ignore (Builder.add_edge b ~src:ids.(0) ~dst:ids.(1) ~etype:"E" ());
  ignore (Builder.add_edge b ~src:ids.(1) ~dst:ids.(2) ~etype:"E" ());
  let g = Graph.freeze b in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (a)-[r*2..2]->(b) RETURN a, b" in
  check_int "exactly one length-2 pair" 1 (Row.n_rows t)

let test_var_length_etype_filter () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (j:Job)-[r:WRITES_TO*1..4]->(x) RETURN j, x" in
  (* WRITES_TO-only paths have length exactly 1 (File has no
     WRITES_TO out-edges). *)
  check_int "typed var-length" 3 (Row.n_rows t)

(* Random cyclic single-type graph shared by the reference properties. *)
let random_graph n m seed =
  let schema = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "E", "V") ] in
  let b = Builder.create schema in
  let rng = Kaskade_util.Prng.create seed in
  let ids = Array.init n (fun _ -> Builder.add_vertex b ~vtype:"V" ()) in
  for _ = 1 to m do
    let s = Kaskade_util.Prng.choose rng ids and d = Kaskade_util.Prng.choose rng ids in
    ignore (Builder.add_edge b ~src:s ~dst:d ~etype:"E" ())
  done;
  Graph.freeze b

let pairs_of_table t =
  List.sort compare
    (List.filter_map
       (fun row ->
         match (row.(0), row.(1)) with Row.V a, Row.V b -> Some (a, b) | _ -> None)
       t.Row.rows)

(* The scratch-buffer var-length rewrite vs a naive Hashtbl reference:
   the qualifying endpoint set is the union, over walk lengths l in
   [max(1,lo) .. hi], of the exact-l level sets (which also covers the
   lo<=1 reachability branch and cyclic self-pairs), plus (src, src)
   when lo = 0. *)
let prop_var_length_matches_reference =
  QCheck.Test.make ~name:"var-length endpoints = naive reference" ~count:40
    QCheck.(quad (2 -- 18) (0 -- 60) (0 -- 2) (0 -- 3))
    (fun (n, m, lo, extra) ->
      let hi = Stdlib.max 1 (lo + extra) in
      let g = random_graph n m (n + (m * 131) + (lo * 7) + extra) in
      let ctx = Executor.create g in
      let t = table ctx (Printf.sprintf "MATCH (a)-[r*%d..%d]->(b) RETURN a, b" lo hi) in
      let expected = ref [] in
      for src = 0 to n - 1 do
        let qualifies = Hashtbl.create 16 in
        if lo = 0 then Hashtbl.replace qualifies src ();
        let cur = ref (Hashtbl.create 16) in
        Hashtbl.replace !cur src ();
        for l = 1 to hi do
          let next = Hashtbl.create 16 in
          Hashtbl.iter
            (fun v () ->
              Graph.iter_out g v (fun ~dst ~etype:_ ~eid:_ -> Hashtbl.replace next dst ()))
            !cur;
          if l >= Stdlib.max 1 lo then
            Hashtbl.iter (fun v () -> Hashtbl.replace qualifies v ()) next;
          cur := next
        done;
        Hashtbl.iter (fun v () -> expected := (src, v) :: !expected) qualifies
      done;
      pairs_of_table t = List.sort compare !expected)

(* All-trails mode vs a naive edge-distinct DFS, multiplicity
   included. Kept tiny: trail counts grow combinatorially. *)
let prop_var_length_trails_matches_reference =
  QCheck.Test.make ~name:"var-length trails = naive DFS reference" ~count:40
    QCheck.(triple (2 -- 8) (0 -- 14) (1 -- 3))
    (fun (n, m, hi) ->
      let lo = 1 in
      let g = random_graph n m (n + (m * 257) + hi) in
      let ctx = Executor.create ~mode:Executor.All_trails g in
      let t = table ctx (Printf.sprintf "MATCH (a)-[r*%d..%d]->(b) RETURN a, b" lo hi) in
      let expected = ref [] in
      for src = 0 to n - 1 do
        let used = Hashtbl.create 16 in
        let rec dfs v len =
          if len >= lo then expected := (src, v) :: !expected;
          if len < hi then
            Graph.iter_out g v (fun ~dst ~etype:_ ~eid ->
                if not (Hashtbl.mem used eid) then begin
                  Hashtbl.replace used eid ();
                  dfs dst (len + 1);
                  Hashtbl.remove used eid
                end)
        in
        Graph.iter_out g src (fun ~dst ~etype:_ ~eid ->
            Hashtbl.replace used eid ();
            dfs dst 1;
            Hashtbl.remove used eid)
      done;
      pairs_of_table t = List.sort compare !expected)

(* ------------------------------------------------------------------ *)
(* WHERE / projections / aggregation                                   *)

let test_where_on_vertex_prop () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (j:Job) WHERE j.CPU > 15 RETURN j" in
  Alcotest.(check (list string)) "filtered" [ "j1"; "j2" ] (names g t "j")

let test_projection_props () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (j:Job) RETURN j.name AS n, j.CPU AS c" in
  check_int "rows" 3 (Row.n_rows t);
  Alcotest.(check (array string)) "cols" [| "n"; "c" |] t.Row.cols

let test_count_star () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "SELECT COUNT(*) FROM (MATCH (a)-[r]->(b) RETURN a)" in
  match t.Row.rows with
  | [ [| Row.Prim (Value.Int n) |] ] -> check_int "edge count" (Graph.n_edges g) n
  | _ -> Alcotest.fail "bad count"

let test_group_by_aggregates () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t =
    table ctx
      "SELECT j.pipelineName, SUM(j.CPU), COUNT(*), MIN(j.CPU), MAX(j.CPU) FROM (MATCH (j:Job) RETURN j) GROUP BY j.pipelineName"
  in
  check_int "two pipelines" 2 (Row.n_rows t);
  let by_name =
    List.map
      (fun row ->
        match (row.(0), row.(1), row.(2), row.(3), row.(4)) with
        | Row.Prim (Value.Str p), Row.Prim s, Row.Prim (Value.Int c), Row.Prim mn, Row.Prim mx ->
          (p, (s, c, mn, mx))
        | _ -> Alcotest.fail "row shape")
      t.Row.rows
  in
  let s, c, mn, mx = List.assoc "alpha" by_name in
  check_bool "sum alpha" true (Value.equal s (Value.Float 30.0));
  check_int "count alpha" 2 c;
  check_bool "min alpha" true (Value.equal mn (Value.Float 10.0));
  check_bool "max alpha" true (Value.equal mx (Value.Float 20.0))

let test_avg () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "SELECT AVG(j.CPU) FROM (MATCH (j:Job) RETURN j)" in
  match t.Row.rows with
  | [ [| Row.Prim (Value.Float a) |] ] -> Alcotest.(check (float 1e-9)) "avg" 20.0 a
  | _ -> Alcotest.fail "bad avg"

let test_nested_select () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t =
    table ctx
      "SELECT AVG(total) FROM (SELECT u, COUNT(*) AS total FROM (MATCH (u:User)-[:SUBMITTED]->(j:Job) RETURN u, j) GROUP BY u)"
  in
  match t.Row.rows with
  | [ [| Row.Prim (Value.Float a) |] ] -> Alcotest.(check (float 1e-9)) "avg submissions" 1.5 a
  | _ -> Alcotest.fail "bad nested"

let test_select_where () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t =
    table ctx
      "SELECT j FROM (MATCH (j:Job) RETURN j) WHERE j.CPU >= 20"
  in
  check_int "filtered outer" 2 (Row.n_rows t)

let test_group_by_vertex () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t =
    table ctx
      "SELECT a, COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a, f) GROUP BY a"
  in
  check_int "two writers" 2 (Row.n_rows t)

let test_listing1_full () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t =
    table ctx
      "SELECT A.pipelineName, AVG(T_CPU) FROM (SELECT A, SUM(B.CPU) AS T_CPU FROM (MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File) (q_f1:File)-[r*0..8]->(q_f2:File) (q_f2:File)-[:IS_READ_BY]->(q_j2:Job) RETURN q_j1 as A, q_j2 as B) GROUP BY A, B) GROUP BY A.pipelineName"
  in
  (* Only j0 and j2 write; j2's file is read by nobody, so only j0
     (pipeline alpha) produces rows. *)
  check_int "one pipeline row" 1 (Row.n_rows t)


let test_order_by_limit () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "SELECT j.name AS n, j.CPU AS c FROM (MATCH (j:Job) RETURN j) ORDER BY c DESC LIMIT 2" in
  check_int "limited" 2 (Row.n_rows t);
  (match t.Row.rows with
  | [ first; second ] ->
    check_bool "descending" true
      (Row.rval_compare first.(1) second.(1) > 0)
  | _ -> Alcotest.fail "rows");
  let asc = table ctx "SELECT j.name AS n FROM (MATCH (j:Job) RETURN j) ORDER BY j.name" in
  (match asc.Row.rows with
  | [ a; _; c ] ->
    check_bool "ascending names" true (Row.rval_compare a.(0) c.(0) < 0)
  | _ -> Alcotest.fail "rows")

let test_order_by_aggregate_alias () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t =
    table ctx
      "SELECT j.pipelineName AS p, SUM(j.CPU) AS total FROM (MATCH (j:Job) RETURN j) GROUP BY j.pipelineName ORDER BY total DESC LIMIT 1"
  in
  match t.Row.rows with
  | [ [| Row.Prim (Value.Str p); _ |] ] -> Alcotest.(check string) "top pipeline" "alpha" p
  | _ -> Alcotest.fail "shape"


let test_index_probe_scan () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  (* Equality on the start variable: the executor probes the on-demand
     index instead of scanning; results identical to the scan path. *)
  let t = table ctx "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.name = 'j0' RETURN j, f" in
  check_int "j0 writes two files" 2 (Row.n_rows t);
  let t2 = table ctx "MATCH (j:Job) WHERE j.name = 'nope' RETURN j" in
  check_int "no match" 0 (Row.n_rows t2)

let prop_index_probe_equivalent =
  QCheck.Test.make ~name:"index probe = scan results" ~count:20
    QCheck.(pair (10 -- 60) (0 -- 300))
    (fun (jobs, seed) ->
      let g = Kaskade_gen.Provenance_gen.(generate { default with jobs; files = jobs; seed }) in
      let ctx = Executor.create g in
      let rng = Kaskade_util.Prng.create (seed + 1) in
      let target = Printf.sprintf "job_%d" (Kaskade_util.Prng.int rng jobs) in
      let probed =
        table ctx
          (Printf.sprintf "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.name = '%s' RETURN j, f" target)
      in
      (* Force the scan path by filtering on a non-start variable. *)
      let scanned =
        table ctx
          (Printf.sprintf
             "MATCH (f:File)<-[:WRITES_TO]-(j:Job) WHERE j.name = '%s' RETURN j, f" target)
      in
      (* Both queries RETURN j, f — same column order. *)
      List.sort_uniq compare probed.Row.rows = List.sort_uniq compare scanned.Row.rows)


let test_select_distinct () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let dup = table ctx "SELECT j.pipelineName AS p FROM (MATCH (j:Job) RETURN j)" in
  check_int "with duplicates" 3 (Row.n_rows dup);
  let t = table ctx "SELECT DISTINCT j.pipelineName AS p FROM (MATCH (j:Job) RETURN j)" in
  check_int "distinct pipelines" 2 (Row.n_rows t);
  (* DISTINCT composes with ORDER BY / LIMIT. *)
  let t2 =
    table ctx
      "SELECT DISTINCT j.pipelineName AS p FROM (MATCH (j:Job) RETURN j) ORDER BY p DESC LIMIT 1"
  in
  match t2.Row.rows with
  | [ [| Row.Prim (Value.Str p) |] ] -> Alcotest.(check string) "beta first desc" "beta" p
  | _ -> Alcotest.fail "shape"

(* ------------------------------------------------------------------ *)
(* CALL procedures                                                     *)

let test_call_label_propagation () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  (match Executor.run_string ctx "CALL algo.labelPropagation(5)" with
  | Executor.Affected n -> check_int "touches all vertices" (Graph.n_vertices g) n
  | _ -> Alcotest.fail "expected Affected");
  check_bool "labels stored" true (Executor.communities ctx <> None)

let test_call_largest_community () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  ignore (Executor.run_string ctx "CALL algo.labelPropagation(5)");
  let t = table ctx "CALL algo.largestCommunity('Job')" in
  check_bool "nonempty" true (Row.n_rows t > 0)

let test_call_largest_requires_lp () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  check_bool "raises without LP" true
    (try
       ignore (table ctx "CALL algo.largestCommunity('Job')");
       false
     with Invalid_argument _ -> true)

let test_call_unknown_proc () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  check_bool "unknown proc" true
    (try
       ignore (Executor.run_string ctx "CALL algo.bogus(1)");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)

let test_cost_monotone_in_path_length () =
  (* A denser graph, where each expansion has branching factor > 1. *)
  let g = Kaskade_gen.Provenance_gen.(generate { default with jobs = 100; files = 150; seed = 2 }) in
  let stats = Gstats.compute g in
  let schema = Graph.schema g in
  let cost src = Cost.eval_cost stats schema (Kaskade_query.Qparser.parse src) in
  let c1 = cost "MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a" in
  let c2 = cost "MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(b:Job) RETURN a" in
  check_bool "longer pattern costs more" true (c2 > c1)

let test_cost_var_length_grows () =
  let g, _, _, _ = small_lineage () in
  let stats = Gstats.compute g in
  let schema = Graph.schema g in
  let cost src = Cost.eval_cost stats schema (Kaskade_query.Qparser.parse src) in
  let short = cost "MATCH (f:File)-[r*1..2]->(x) RETURN f" in
  let long = cost "MATCH (f:File)-[r*1..8]->(x) RETURN f" in
  check_bool "wider range costs more" true (long >= short)

let test_cost_deg_override () =
  let g, _, _, _ = small_lineage () in
  let stats = Gstats.compute g in
  let schema = Graph.schema g in
  let q = Kaskade_query.Qparser.parse "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j" in
  let base = Cost.eval_cost stats schema q in
  let boosted =
    Cost.eval_cost ~deg_override:(fun l -> if l = "Job" then Some 50.0 else None) stats schema q
  in
  check_bool "override raises cost" true (boosted > base)

let test_cost_scan_label_cheaper () =
  let g, _, _, _ = small_lineage () in
  let stats = Gstats.compute g in
  let schema = Graph.schema g in
  let cost src = Cost.eval_cost stats schema (Kaskade_query.Qparser.parse src) in
  check_bool "typed scan cheaper than full scan" true
    (cost "MATCH (j:Job) RETURN j" < cost "MATCH (n) RETURN n")



(* ------------------------------------------------------------------ *)
(* Planner                                                             *)

let row_set (t : Row.table) = List.sort_uniq compare t.Row.rows

let test_planner_anchor_choice () =
  let g, _, _, _ = small_lineage () in
  let stats = Gstats.compute g in
  let schema = Graph.schema g in
  (* Users (2) are rarer than Jobs (3): anchor at the User end. *)
  let q = Kaskade_query.Qparser.parse "MATCH (j:Job)<-[:SUBMITTED]-(u:User) RETURN j, u" in
  (match Ast_patterns.first q with
  | Some p ->
    check_int "anchor at user" 1 (Planner.anchor_position stats schema ~bound:(fun _ -> false) p)
  | None -> Alcotest.fail "no pattern");
  (* An unlabelled head loses to any labelled node. *)
  let q2 = Kaskade_query.Qparser.parse "MATCH (x)-[:WRITES_TO]->(f:File) RETURN x, f" in
  match Ast_patterns.first q2 with
  | Some p ->
    check_int "anchor at file" 1 (Planner.anchor_position stats schema ~bound:(fun _ -> false) p)
  | None -> Alcotest.fail "no pattern"

let test_planner_bound_var_wins () =
  let g, _, _, _ = small_lineage () in
  let stats = Gstats.compute g in
  let schema = Graph.schema g in
  let q = Kaskade_query.Qparser.parse "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f" in
  match Ast_patterns.first q with
  | Some p ->
    check_int "bound j beats File scan" 0
      (Planner.anchor_position stats schema ~bound:(fun v -> v = "j") p)
  | None -> Alcotest.fail "no pattern"

let test_planner_preserves_results () =
  let g, _, _, _ = small_lineage () in
  let plain = Executor.create g in
  let planned = Executor.create ~planner:true g in
  List.iter
    (fun src ->
      let a = row_set (table plain src) and b = row_set (table planned src) in
      if a <> b then Alcotest.failf "planner changed results of %s" src)
    [ "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f";
      "MATCH (x)-[:WRITES_TO]->(f:File) RETURN x, f";
      "MATCH (u:User)-[:SUBMITTED]->(j:Job)-[:WRITES_TO]->(f:File) RETURN u, f";
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[r*0..4]->(g2:File) RETURN a, g2";
      "MATCH (f:File)<-[:WRITES_TO]-(j:Job)<-[:SUBMITTED]-(u:User) RETURN f, u";
      "SELECT COUNT(*) FROM (MATCH (a)-[r]->(b) RETURN a)" ]

let prop_planner_equivalent =
  QCheck.Test.make ~name:"planner preserves result sets" ~count:20
    QCheck.(pair (10 -- 50) (0 -- 300))
    (fun (jobs, seed) ->
      let g = Kaskade_gen.Provenance_gen.(generate { default with jobs; files = 2 * jobs; seed }) in
      let plain = Executor.create g in
      let planned = Executor.create ~planner:true g in
      List.for_all
        (fun src -> row_set (table plain src) = row_set (table planned src))
        [ "MATCH (x)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(b:Job) RETURN x, b";
          "MATCH (t:Task)<-[:HAS_TASK]-(j:Job)-[:WRITES_TO]->(f:File) RETURN t, f";
          "MATCH (j:Job)-[r*1..3]->(x) RETURN j, x" ])

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)

let test_null_propagation () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  (* Files have no CPU: comparisons with Null are falsy, so the filter
     keeps nothing. *)
  let t = table ctx "MATCH (f:File) WHERE f.CPU > 0 RETURN f" in
  check_int "null comparisons fail" 0 (Row.n_rows t)

let test_missing_prop_projects_null () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (f:File) RETURN f.CPU" in
  check_int "rows" 3 (Row.n_rows t);
  List.iter
    (fun row -> check_bool "null" true (Row.rval_equal row.(0) (Row.Prim Value.Null)))
    t.Row.rows

let test_avg_of_empty_group () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  (* WHERE keeps nothing; SQL still yields a single aggregate row,
     with a NULL average. *)
  let t = table ctx "SELECT AVG(j.CPU) FROM (MATCH (j:Job) RETURN j) WHERE j.CPU > 1000" in
  match t.Row.rows with
  | [ [| v |] ] -> check_bool "null avg" true (Row.rval_equal v (Row.Prim Value.Null))
  | _ -> Alcotest.fail "expected exactly one aggregate row"

let test_sum_skips_nulls () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  (* Mixed vertex set: only jobs carry CPU; SUM ignores nulls. *)
  let t = table ctx "SELECT SUM(n.CPU) FROM (MATCH (n) RETURN n)" in
  match t.Row.rows with
  | [ [| Row.Prim v |] ] -> check_bool "sum over jobs only" true (Value.equal v (Value.Float 60.0))
  | _ -> Alcotest.fail "bad shape"

let test_count_vs_count_star () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t =
    table ctx "SELECT COUNT(*), COUNT(n.CPU) FROM (MATCH (n) RETURN n)"
  in
  match t.Row.rows with
  | [ [| Row.Prim (Value.Int all); Row.Prim (Value.Int non_null) |] ] ->
    check_int "count star counts rows" (Graph.n_vertices g) all;
    check_int "count expr skips nulls" 3 non_null
  | _ -> Alcotest.fail "bad shape"

let test_string_predicates () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (j:Job) WHERE j.pipelineName = 'alpha' RETURN j" in
  check_int "string equality" 2 (Row.n_rows t);
  let t2 = table ctx "MATCH (j:Job) WHERE j.pipelineName <> 'alpha' RETURN j" in
  check_int "string inequality" 1 (Row.n_rows t2)

let test_arithmetic_in_projection () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t = table ctx "MATCH (j:Job) WHERE j.CPU * 2 >= 40 RETURN j.CPU + 1 AS c" in
  check_int "two jobs qualify" 2 (Row.n_rows t);
  List.iter
    (fun row ->
      match row.(0) with
      | Row.Prim (Value.Float c) -> check_bool "bumped" true (c = 21.0 || c = 31.0)
      | _ -> Alcotest.fail "expected float")
    t.Row.rows

let test_triple_nested_select () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  let t =
    table ctx
      "SELECT MAX(avg_cpu) FROM (SELECT p, AVG(c) AS avg_cpu FROM (SELECT j.pipelineName AS p, j.CPU AS c FROM (MATCH (j:Job) RETURN j)) GROUP BY p)"
  in
  match t.Row.rows with
  | [ [| Row.Prim (Value.Float m) |] ] -> Alcotest.(check (float 1e-9)) "max of avgs" 30.0 m
  | _ -> Alcotest.fail "bad shape"

let test_self_join_same_var () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  (* (a)-->(a) requires a self loop; none exist. *)
  let t = table ctx "MATCH (a:Job)-[:WRITES_TO]->(f:File)<-[:WRITES_TO]-(a:Job) RETURN a, f" in
  (* Both endpoints are the same var: only genuine (a writes f) rows
     where the same a matches twice. *)
  check_int "self-join consistency" 3 (Row.n_rows t)

let test_empty_graph () =
  let schema = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "E", "V") ] in
  let g = Graph.freeze (Builder.create schema) in
  let ctx = Executor.create g in
  check_int "scan empty" 0 (Row.n_rows (table ctx "MATCH (n:V) RETURN n"));
  let t = table ctx "SELECT COUNT(*) FROM (MATCH (n:V) RETURN n)" in
  match t.Row.rows with
  | [ [| Row.Prim (Value.Int 0) |] ] -> ()
  | _ -> Alcotest.fail "count on empty graph"

let test_var_length_unbounded () =
  let g, _, _, _ = small_lineage () in
  let ctx = Executor.create g in
  (* `*` = 1..infinity terminates because BFS exhausts the frontier. *)
  let t = table ctx "MATCH (f:File)-[r*]->(x) RETURN f, x" in
  check_bool "terminates with results" true (Row.n_rows t > 0)

(* ------------------------------------------------------------------ *)
(* Parallel start scans                                                *)

let test_parallel_scan_matches_sequential () =
  (* Past the candidate threshold the executor fans the start scan out
     over work-stealing morsels. Rows — and their order — must be
     byte-identical to the sequential context; oversubscription forces
     real worker domains even on a single-core host. *)
  let g =
    Kaskade_gen.Provenance_gen.(generate { default with jobs = 2_500; files = 5_000; seed = 7 })
  in
  let seq_ctx = Executor.create g in
  let par_ctx =
    Executor.create ~pool:(Kaskade_util.Pool.create ~domains:4 ~oversubscribe:true ()) g
  in
  List.iter
    (fun src ->
      let a = table seq_ctx src in
      let b = table par_ctx src in
      check_bool (src ^ ": identical rows in identical order") true
        (a.Row.rows = b.Row.rows && a.Row.cols = b.Row.cols))
    [ "MATCH (j:Job) RETURN j";
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f";
      "MATCH (n) RETURN n";
      "SELECT COUNT(*) FROM (MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f)" ]

let test_parallel_scan_budget_exhaustion () =
  (* A mid-scan budget trip inside a morsel must surface as the usual
     typed [Budget.Exhausted] and leave the context reusable. *)
  let g =
    Kaskade_gen.Provenance_gen.(generate { default with jobs = 2_500; files = 5_000; seed = 7 })
  in
  let pool = Kaskade_util.Pool.create ~domains:4 ~oversubscribe:true () in
  let ctx = Executor.create ~pool g in
  let b = Kaskade_util.Budget.create ~max_steps:100 () in
  (try
     ignore (Executor.run ~budget:b ctx (Kaskade_query.Qparser.parse "MATCH (j:Job) RETURN j"));
     Alcotest.fail "expected budget exhaustion"
   with Kaskade_util.Budget.Exhausted e ->
     check_bool "execute stage" true (e.stage = Kaskade_util.Budget.Execute));
  check_int "context still runs after exhaustion" 2_500
    (Row.n_rows (table ctx "MATCH (j:Job) RETURN j"))

let () =
  Alcotest.run "kaskade_exec"
    [
      ( "match",
        [
          Alcotest.test_case "scan by label" `Quick test_scan_by_label;
          Alcotest.test_case "scan all" `Quick test_scan_all;
          Alcotest.test_case "single expand" `Quick test_single_edge_expand;
          Alcotest.test_case "backward edge" `Quick test_backward_edge;
          Alcotest.test_case "two-hop chain" `Quick test_two_hop_chain;
          Alcotest.test_case "shared-var join" `Quick test_shared_var_join;
          Alcotest.test_case "unknown label rejected" `Quick test_unknown_label_rejected;
          Alcotest.test_case "edge var binding" `Quick test_edge_var_binding;
        ] );
      ( "var_length",
        [
          Alcotest.test_case "distinct endpoints" `Quick test_var_length_distinct;
          Alcotest.test_case "zero lower bound" `Quick test_var_length_zero_lo;
          Alcotest.test_case "trail multiplicity" `Quick test_var_length_trails_multiplicity;
          Alcotest.test_case "modes agree on sets" `Quick test_var_length_modes_agree_on_sets;
          Alcotest.test_case "cycle self-pair" `Quick test_var_length_cycle_self_pair;
          Alcotest.test_case "lo=2 walk semantics" `Quick test_var_length_lo2_walk_semantics;
          Alcotest.test_case "edge-type filter" `Quick test_var_length_etype_filter;
          QCheck_alcotest.to_alcotest prop_var_length_matches_reference;
          QCheck_alcotest.to_alcotest prop_var_length_trails_matches_reference;
        ] );
      ( "relational",
        [
          Alcotest.test_case "where on vertex prop" `Quick test_where_on_vertex_prop;
          Alcotest.test_case "projection" `Quick test_projection_props;
          Alcotest.test_case "count(*)" `Quick test_count_star;
          Alcotest.test_case "group by + aggregates" `Quick test_group_by_aggregates;
          Alcotest.test_case "avg" `Quick test_avg;
          Alcotest.test_case "nested select" `Quick test_nested_select;
          Alcotest.test_case "outer where" `Quick test_select_where;
          Alcotest.test_case "group by vertex" `Quick test_group_by_vertex;
          Alcotest.test_case "listing 1 end-to-end" `Quick test_listing1_full;
          Alcotest.test_case "order by / limit" `Quick test_order_by_limit;
          Alcotest.test_case "order by aggregate alias" `Quick test_order_by_aggregate_alias;
          Alcotest.test_case "index probe" `Quick test_index_probe_scan;
          Alcotest.test_case "select distinct" `Quick test_select_distinct;
          QCheck_alcotest.to_alcotest prop_index_probe_equivalent;
        ] );
      ( "call",
        [
          Alcotest.test_case "label propagation" `Quick test_call_label_propagation;
          Alcotest.test_case "largest community" `Quick test_call_largest_community;
          Alcotest.test_case "largest requires LP" `Quick test_call_largest_requires_lp;
          Alcotest.test_case "unknown procedure" `Quick test_call_unknown_proc;
        ] );
      ( "planner",
        [
          Alcotest.test_case "anchor choice" `Quick test_planner_anchor_choice;
          Alcotest.test_case "bound variable wins" `Quick test_planner_bound_var_wins;
          Alcotest.test_case "results preserved" `Quick test_planner_preserves_results;
          QCheck_alcotest.to_alcotest prop_planner_equivalent;
        ] );
      ( "edge_cases",
        [
          Alcotest.test_case "null comparisons" `Quick test_null_propagation;
          Alcotest.test_case "missing prop is null" `Quick test_missing_prop_projects_null;
          Alcotest.test_case "empty aggregate group" `Quick test_avg_of_empty_group;
          Alcotest.test_case "sum skips nulls" `Quick test_sum_skips_nulls;
          Alcotest.test_case "count vs count(*)" `Quick test_count_vs_count_star;
          Alcotest.test_case "string predicates" `Quick test_string_predicates;
          Alcotest.test_case "arithmetic projection" `Quick test_arithmetic_in_projection;
          Alcotest.test_case "triple nesting" `Quick test_triple_nested_select;
          Alcotest.test_case "repeated variable" `Quick test_self_join_same_var;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "unbounded var-length" `Quick test_var_length_unbounded;
        ] );
      ( "parallel_scan",
        [
          Alcotest.test_case "matches sequential rows and order" `Quick
            test_parallel_scan_matches_sequential;
          Alcotest.test_case "budget exhaustion mid-morsel" `Quick
            test_parallel_scan_budget_exhaustion;
        ] );
      ( "cost",
        [
          Alcotest.test_case "monotone in path length" `Quick test_cost_monotone_in_path_length;
          Alcotest.test_case "var-length growth" `Quick test_cost_var_length_grows;
          Alcotest.test_case "deg override" `Quick test_cost_deg_override;
          Alcotest.test_case "typed scan cheaper" `Quick test_cost_scan_label_cheaper;
        ] );
    ]
