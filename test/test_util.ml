open Kaskade_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Prng.next_int64 a = Prng.next_int64 b)
  done

let test_prng_distinct_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  check_bool "streams differ" true (!same < 5)

let test_prng_int_range () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 17 in
    check_bool "in range" true (x >= 0 && x < 17)
  done

let test_prng_int_in () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int_in rng (-3) 4 in
    check_bool "in range" true (x >= -3 && x <= 4)
  done

let test_prng_int_invalid () =
  let rng = Prng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_prng_float_range () =
  let rng = Prng.create 9 in
  for _ = 1 to 1000 do
    let x = Prng.float rng 2.5 in
    check_bool "in range" true (x >= 0.0 && x < 2.5)
  done

let test_prng_zipf_bounds () =
  let rng = Prng.create 11 in
  for _ = 1 to 2000 do
    let x = Prng.zipf rng ~n:50 ~s:1.5 in
    check_bool "rank in bounds" true (x >= 1 && x <= 50)
  done

let test_prng_zipf_skew () =
  (* Rank 1 must dominate: with s = 1.5 over 100 ranks, rank 1 should
     hold well over a tenth of the mass. *)
  let rng = Prng.create 13 in
  let ones = ref 0 in
  let total = 10_000 in
  for _ = 1 to total do
    if Prng.zipf rng ~n:100 ~s:1.5 = 1 then incr ones
  done;
  check_bool "rank-1 frequency is dominant" true (!ones > total / 10)

let test_prng_zipf_n1 () =
  let rng = Prng.create 17 in
  check_int "n=1 is constant" 1 (Prng.zipf rng ~n:1 ~s:2.0)

let test_prng_geometric () =
  let rng = Prng.create 19 in
  for _ = 1 to 1000 do
    check_bool "non-negative" true (Prng.geometric rng ~p:0.3 >= 0)
  done;
  check_int "p=1 is zero" 0 (Prng.geometric rng ~p:1.0)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 21 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_split_independent () =
  let rng = Prng.create 23 in
  let child = Prng.split rng in
  check_bool "split stream differs" true (Prng.next_int64 rng <> Prng.next_int64 child)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_percentile_nearest_rank () =
  let xs = [| 15; 20; 35; 40; 50 |] in
  check_int "p30" 20 (Stats.percentile xs 30.0);
  check_int "p40" 20 (Stats.percentile xs 40.0);
  check_int "p50" 35 (Stats.percentile xs 50.0);
  check_int "p100" 50 (Stats.percentile xs 100.0)

let test_percentile_single () =
  check_int "singleton" 7 (Stats.percentile [| 7 |] 50.0)

let test_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 50.0));
  Alcotest.check_raises "p out of range" (Invalid_argument "Stats.percentile: p out of (0, 100]")
    (fun () -> ignore (Stats.percentile [| 1 |] 0.0))

let test_percentiles_batch () =
  let xs = [| 5; 1; 3; 2; 4 |] in
  let rows = Stats.percentiles xs [ 20.0; 60.0; 100.0 ] in
  Alcotest.(check (list (pair (float 0.0) int)))
    "batch matches singles"
    [ (20.0, 1); (60.0, 3); (100.0, 5) ]
    rows

let test_mean_stddev () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "mean empty" 0.0 (Stats.mean [||]);
  let sd = Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "stddev" 2.0 sd

let test_ccdf () =
  let rows = Stats.ccdf [| 1; 1; 2; 3 |] in
  Alcotest.(check (list (pair int int))) "ccdf" [ (1, 2); (2, 1); (3, 0) ] rows

let test_ccdf_monotone_qcheck =
  QCheck.Test.make ~name:"ccdf counts are non-increasing" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (0 -- 20))
    (fun xs ->
      let rows = Stats.ccdf (Array.of_list xs) in
      let counts = List.map snd rows in
      List.for_all2 (fun a b -> a >= b)
        (List.filteri (fun i _ -> i < List.length counts - 1) counts)
        (List.tl counts))

let test_linear_fit_exact () =
  let slope, intercept, r2 = Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept;
  check_float "r2" 1.0 r2

let test_power_law_fit () =
  (* Degrees drawn so freq(deg > x) ~ x^-1; the fit should find a
     negative slope with a strong r^2. *)
  let degrees = Array.init 1000 (fun i -> 1 + (1000 / (i + 1))) in
  let alpha, r2 = Stats.power_law_fit degrees in
  check_bool "negative slope" true (alpha < -0.5);
  check_bool "good fit" true (r2 > 0.9)

let test_histogram () =
  let h = Stats.histogram [| 1; 2; 2; 3; 3; 3 |] in
  check_int "count 3" 3 (Hashtbl.find h 3);
  check_int "count 1" 1 (Hashtbl.find h 1)

(* ------------------------------------------------------------------ *)
(* Int_vec                                                             *)

let test_int_vec_push_get () =
  let v = Int_vec.create () in
  for i = 0 to 99 do
    Int_vec.push v (i * i)
  done;
  check_int "length" 100 (Int_vec.length v);
  check_int "get 7" 49 (Int_vec.get v 7);
  Int_vec.set v 7 0;
  check_int "set" 0 (Int_vec.get v 7)

let test_int_vec_bounds () =
  let v = Int_vec.of_array [| 1; 2; 3 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Int_vec.get: index out of bounds") (fun () ->
      ignore (Int_vec.get v 3))

let test_int_vec_truncate () =
  let v = Int_vec.of_array [| 1; 2; 3; 4 |] in
  Int_vec.truncate v 2;
  check_int "len" 2 (Int_vec.length v);
  Int_vec.push v 9;
  Alcotest.(check (array int)) "contents" [| 1; 2; 9 |] (Int_vec.to_array v)

let test_int_vec_sort () =
  let v = Int_vec.of_array [| 3; 1; 2 |] in
  Int_vec.sort_in_place v;
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3 |] (Int_vec.to_array v)

(* ------------------------------------------------------------------ *)
(* Scratch                                                             *)

let test_scratch_set_basic () =
  Scratch.with_set ~n:100 @@ fun s ->
  check_bool "initially absent" false (Scratch.mem s 5);
  Scratch.add s 5;
  check_bool "mem after add" true (Scratch.mem s 5);
  check_int "cardinal" 1 (Scratch.cardinal s);
  Scratch.add s 5;
  check_int "add is idempotent" 1 (Scratch.cardinal s);
  Scratch.remove s 5;
  check_bool "removed" false (Scratch.mem s 5);
  check_int "cardinal after remove" 0 (Scratch.cardinal s);
  Scratch.set_value s 7 42;
  check_int "payload" 42 (Scratch.value s 7);
  check_int "value_or default" ~-1 (Scratch.value_or s 8 ~default:~-1);
  Scratch.clear s;
  check_bool "cleared" false (Scratch.mem s 7);
  check_int "cardinal after clear" 0 (Scratch.cardinal s)

let test_scratch_borrow_fresh () =
  (* Populate a borrowed set, return it; the next borrow (which reuses
     the same underlying buffer) must start empty. *)
  Scratch.with_set ~n:50 (fun s -> Scratch.add s 3);
  Scratch.with_set ~n:50 (fun s -> check_bool "fresh borrow is empty" false (Scratch.mem s 3));
  Scratch.with_vec (fun v -> Int_vec.push v 9);
  Scratch.with_vec (fun v -> check_int "fresh vec is empty" 0 (Int_vec.length v))

let test_scratch_nested_distinct () =
  Scratch.with_set ~n:10 @@ fun a ->
  Scratch.add a 1;
  Scratch.with_set ~n:10 (fun b ->
      check_bool "nested borrow is a distinct buffer" false (Scratch.mem b 1);
      Scratch.add b 2;
      check_bool "inner add invisible outside" true (Scratch.mem b 2));
  check_bool "outer set unaffected" false (Scratch.mem a 2);
  check_bool "outer member survives" true (Scratch.mem a 1)

let test_scratch_grows () =
  Scratch.with_set ~n:4 (fun s -> Scratch.add s 3);
  Scratch.with_set ~n:10_000 (fun s ->
      Scratch.add s 9_999;
      check_bool "grown capacity" true (Scratch.mem s 9_999))

let test_scratch_value_not_member () =
  Scratch.with_set ~n:10 @@ fun s ->
  Alcotest.check_raises "value of non-member" (Invalid_argument "Scratch.value: not a member")
    (fun () -> ignore (Scratch.value s 3))

let test_scratch_vs_hashtbl_qcheck =
  QCheck.Test.make ~name:"scratch set tracks a reference Hashtbl" ~count:200
    QCheck.(list (pair (0 -- 63) bool))
    (fun ops ->
      Scratch.with_set ~n:64 @@ fun s ->
      let ht = Hashtbl.create 16 in
      List.iter
        (fun (k, add) ->
          if add then begin
            Scratch.add s k;
            Hashtbl.replace ht k ()
          end
          else begin
            Scratch.remove s k;
            Hashtbl.remove ht k
          end)
        ops;
      Scratch.cardinal s = Hashtbl.length ht
      && List.for_all (fun k -> Scratch.mem s k = Hashtbl.mem ht k) (List.init 64 Fun.id))

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

(* [map_chunks] is deprecated in favor of [map_morsels]; this single
   compatibility test pins down the legacy contract — fixed balanced
   partition, chunk-order merge, identical concatenated output — until
   the function is removed. Everything else in this section runs on
   the morsel path. *)
module Chunks_compat = struct
  [@@@alert "-deprecated"]

  let test_pool_chunks_compat () =
    let p = Pool.create ~domains:4 () in
    let chunks = Pool.map_chunks p ~n:10 (fun ~lo ~hi -> (lo, hi)) in
    check_int "chunk count" 4 (Array.length chunks);
    let _ =
      Array.fold_left
        (fun expected (lo, hi) ->
          check_int "contiguous" expected lo;
          check_bool "non-empty" true (hi > lo);
          hi)
        0 chunks
    in
    check_int "covers n" 10 (snd chunks.(Array.length chunks - 1));
    check_int "k capped at n" 3 (Array.length (Pool.map_chunks p ~n:3 (fun ~lo ~hi -> (lo, hi))));
    check_int "n=0 is empty" 0 (Array.length (Pool.map_chunks p ~n:0 (fun ~lo:_ ~hi:_ -> ())));
    (* The legacy path must keep honoring the same merge contract as
       the morsel path: concatenated output identical at any width. *)
    let work ~lo ~hi = Array.init (hi - lo) (fun j -> (lo + j) * (lo + j)) in
    let expected =
      Array.concat (Array.to_list (Pool.map_morsels (Pool.create ~domains:1 ()) ~n:37 work))
    in
    List.iter
      (fun w ->
        let flat =
          Array.concat (Array.to_list (Pool.map_chunks (Pool.create ~domains:w ()) ~n:37 work))
        in
        Alcotest.(check (array int)) "chunks merge like morsels at any width" expected flat)
      [ 1; 2; 3; 4; 7 ]
end

let test_pool_clamps () =
  check_int "width >= 1" 1 (Pool.domains (Pool.create ~domains:0 ()));
  check_int "width <= 64" 64 (Pool.domains (Pool.create ~domains:1000 ()))

exception Boom of int

let test_pool_exception_propagates () =
  let p = Pool.create ~domains:4 ~oversubscribe:true () in
  Alcotest.check_raises "earliest morsel's exception" (Boom 1) (fun () ->
      ignore
        (Pool.map_morsels p ~grain:2 ~n:8 (fun ~lo ~hi:_ ->
             if lo > 0 then raise (Boom (lo / 2)) else ())))

let test_pool_raise_leaves_pool_usable () =
  (* A raising morsel must neither deadlock the fan-out nor orphan
     worker domains: every worker is joined before the exception
     propagates, so the same pool immediately serves further calls. *)
  let p = Pool.create ~domains:4 ~oversubscribe:true () in
  for round = 1 to 20 do
    (try
       ignore
         (Pool.map_morsels p ~grain:2 ~n:8 (fun ~lo ~hi:_ ->
              if lo >= 4 then raise (Boom round)))
     with Boom r -> check_int "round's own exception" round r);
    let ok = Pool.map_morsels p ~grain:2 ~n:8 (fun ~lo ~hi -> hi - lo) in
    check_int "pool still fans out after a failure" 8 (Array.fold_left ( + ) 0 ok)
  done

let test_pool_budget_cancelled_fanout () =
  (* Workers sharing an already-expired budget must all trip their
     first checkpoint, so the fan-out returns promptly instead of
     grinding through the (effectively unbounded) morsel loops. *)
  let b = Budget.create ~deadline_s:0.0 () in
  let t0 = Mclock.now_s () in
  let raised =
    try
      ignore
        (Pool.map_morsels
           (Pool.create ~domains:4 ~oversubscribe:true ())
           ~grain:1 ~n:4
           (fun ~lo:_ ~hi:_ ->
             for _ = 1 to max_int do
               Budget.step (Some b) Budget.Execute
             done));
      false
    with Budget.Exhausted _ -> true
  in
  check_bool "fan-out cancelled by budget" true raised;
  check_bool "returned promptly" true (Mclock.now_s () -. t0 < 10.0)

let test_pool_workers_use_scratch () =
  (* Scratch pools are domain-local: concurrent borrows on worker
     domains must not interfere. *)
  let p = Pool.create ~domains:4 ~oversubscribe:true () in
  let sums =
    Pool.map_morsels p ~grain:1 ~n:4 (fun ~lo ~hi:_ ->
        Scratch.with_set ~n:100 @@ fun s ->
        for i = 0 to 99 do
          if i mod (lo + 2) = 0 then Scratch.add s i
        done;
        Scratch.cardinal s)
  in
  Alcotest.(check (array int)) "per-domain scratch results" [| 50; 34; 25; 20 |] sums

(* ------------------------------------------------------------------ *)
(* Morsels                                                             *)

(* Oversubscription forces real multi-domain execution even when the
   host has fewer cores than the requested width — which is exactly
   what these tests need: without it a single-core CI box caps every
   pool to one worker and every width takes the same sequential path. *)
let morsel_pool w = Pool.create ~domains:w ~oversubscribe:true ()

let test_morsel_ranges_partition () =
  let p = morsel_pool 4 in
  List.iter
    (fun grain ->
      let morsels = Pool.map_morsels p ~grain ~n:10 (fun ~lo ~hi -> (lo, hi)) in
      let _ =
        Array.fold_left
          (fun expected (lo, hi) ->
            check_int "contiguous" expected lo;
            check_bool "non-empty" true (hi > lo);
            check_bool "grain respected" true (hi - lo <= grain);
            hi)
          0 morsels
      in
      check_int "covers n" 10 (snd morsels.(Array.length morsels - 1)))
    [ 1; 3; 4; 10; 99 ];
  check_int "n=0 is empty" 0 (Array.length (Pool.map_morsels p ~n:0 (fun ~lo:_ ~hi:_ -> ())))

let test_morsel_effective_workers () =
  check_bool "default pool caps at hardware parallelism" true
    (Pool.effective_workers (Pool.create ~domains:64 ()) <= 64);
  check_int "oversubscribed pool keeps its width" 7 (Pool.effective_workers (morsel_pool 7));
  check_int "width 1 is sequential either way" 1 (Pool.effective_workers (morsel_pool 1))

let test_morsel_deterministic_widths_and_grains () =
  (* The determinism contract: concatenated output is identical at
     every width AND every grain — work stealing only changes which
     domain computes a morsel, never which range a morsel covers. *)
  let work ~lo ~hi = Array.init (hi - lo) (fun j -> (lo + j) * (lo + j)) in
  let flat w grain =
    Array.concat (Array.to_list (Pool.map_morsels (morsel_pool w) ?grain ~n:37 work))
  in
  let expected = flat 1 None in
  List.iter
    (fun w ->
      List.iter
        (fun g ->
          Alcotest.(check (array int))
            (Printf.sprintf "width %d grain %s" w
               (match g with None -> "auto" | Some g -> string_of_int g))
            expected (flat w g))
        [ None; Some 1; Some 3; Some 8; Some 64 ])
    [ 1; 2; 4; 7 ]

let test_morsel_earliest_exception_deterministic () =
  (* Every morsel raises; grain 1 maximizes contention on the shared
     cursor, yet the lowest-indexed morsel's exception — the one a
     sequential run would hit first — is always the one reported. *)
  List.iter
    (fun w ->
      Alcotest.check_raises
        (Printf.sprintf "earliest morsel wins at width %d" w)
        (Boom 0)
        (fun () ->
          ignore
            (Pool.map_morsels (morsel_pool w) ~grain:1 ~n:8 (fun ~lo ~hi:_ -> raise (Boom lo)))))
    [ 1; 2; 4 ]

let test_morsel_budget_exhausted_leaves_pool_usable () =
  (* Budget exhaustion mid-morsel: the shared expired budget trips
     every worker's first checkpoint, the fan-out joins all domains,
     rethrows the lowest morsel's typed [Budget.Exhausted], and the
     same pool immediately serves further calls — no leaked workers,
     no stuck cursor. *)
  let p = morsel_pool 4 in
  for _round = 1 to 10 do
    let b = Budget.create ~deadline_s:0.0 () in
    let stage =
      try
        ignore
          (Pool.map_morsels p ~grain:1 ~n:8 (fun ~lo:_ ~hi:_ ->
               Budget.step (Some b) Budget.Execute));
        None
      with Budget.Exhausted e -> Some e.stage
    in
    check_bool "typed Budget.Exhausted at Execute surfaced" true (stage = Some Budget.Execute);
    let ok = Pool.map_morsels p ~grain:1 ~n:8 (fun ~lo ~hi -> hi - lo) in
    check_int "pool still fans out after exhaustion" 8 (Array.fold_left ( + ) 0 ok)
  done

(* ------------------------------------------------------------------ *)
(* Observability truncation under live worker domains                  *)

module Metrics = Kaskade_obs.Metrics
module Qlog = Kaskade_obs.Qlog

let test_metrics_reset_during_fanout () =
  (* Metrics.reset from one morsel while the other morsels observe:
     no crash, no torn values, and the instruments keep working. *)
  let c = Metrics.counter "test.race.counter" in
  let h = Metrics.histogram "test.race.hist" in
  Metrics.reset ();
  let p = Pool.create ~domains:4 ~oversubscribe:true () in
  let per_chunk = 2_000 in
  ignore
    (Pool.map_morsels p ~grain:1 ~n:4 (fun ~lo ~hi:_ ->
         if lo = 0 then
           for _ = 1 to 50 do
             Metrics.reset ();
             ignore (Metrics.counter_value c);
             ignore (Metrics.histogram_sum h);
             ignore (Metrics.quantile h 0.5)
           done
         else
           for i = 1 to per_chunk do
             Metrics.incr c;
             Metrics.observe h (float_of_int i)
           done));
  (* Three observing morsels; resets only ever discard, never duplicate. *)
  let v = Metrics.counter_value c in
  check_bool "counter value in range" true (v >= 0 && v <= 3 * per_chunk);
  let n = Metrics.histogram_count h in
  check_bool "histogram count in range" true (n >= 0 && n <= 3 * per_chunk);
  check_bool "histogram sum consistent with count" true
    (n > 0 || Metrics.histogram_sum h = 0.0);
  Metrics.reset ();
  check_int "reset lands after the race" 0 (Metrics.counter_value c);
  Metrics.incr c;
  check_int "instrument survives the race" 1 (Metrics.counter_value c);
  Metrics.reset ()

let rec strictly_increasing = function
  | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
  | _ -> true

let test_qlog_truncation_race_qcheck =
  QCheck.Test.make ~name:"qlog truncation is safe under worker appends" ~count:20
    QCheck.(pair (2 -- 16) (10 -- 80))
    (fun (cap, per_worker) ->
      Qlog.clear ();
      Qlog.set_capacity cap;
      let total0 = Qlog.total () in
      let p = Pool.create ~domains:4 ~oversubscribe:true () in
      ignore
        (Pool.map_morsels p ~grain:1 ~n:4 (fun ~lo ~hi:_ ->
             if lo = 0 then
               (* One morsel truncates and resizes while the others append. *)
               for i = 1 to 30 do
                 if i mod 2 = 0 then Qlog.clear () else Qlog.set_capacity (1 + (i mod cap));
                 ignore (Qlog.length ());
                 ignore (Qlog.summary ())
               done
             else
               for i = 1 to per_worker do
                 ignore
                   (Qlog.add ~query:"MATCH (x) RETURN x" ~outcome:Qlog.Fallback ~rows:i
                      ~seconds:0.001 ())
               done));
      let held = Qlog.records () in
      let ok =
        (* Window bounded by the (final) capacity, records untorn and in
           append order, and every append counted exactly once. *)
        List.length held = Qlog.length ()
        && Qlog.length () <= Qlog.capacity ()
        && strictly_increasing (List.map (fun r -> r.Qlog.seq) held)
        && List.for_all
             (fun r -> r.Qlog.query = "MATCH (x) RETURN x" && r.Qlog.outcome = Qlog.Fallback)
             held
        && Qlog.total () - total0 = 3 * per_worker
      in
      Qlog.set_capacity 512;
      Qlog.clear ();
      ok)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  Alcotest.(check (option (pair (float 0.0) string))) "peek" (Some (1.0, "a")) (Heap.peek h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop1" (Some (1.0, "a")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop2" (Some (2.0, "b")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop3" (Some (3.0, "c")) (Heap.pop h);
  check_bool "empty" true (Heap.pop h = None)

let test_heap_sorted_qcheck =
  QCheck.Test.make ~name:"heap pops in priority order" ~count:200
    QCheck.(list_of_size Gen.(0 -- 100) (float_range (-100.0) 100.0))
    (fun prios ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p ()) prios;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some (p, ()) -> drain (p :: acc) in
      let popped = drain [] in
      popped = List.sort compare prios)

(* ------------------------------------------------------------------ *)
(* Union_find                                                          *)

let test_union_find_basic () =
  let uf = Union_find.create 6 in
  check_int "initial sets" 6 (Union_find.count uf);
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  Union_find.union uf 1 2;
  check_int "after unions" 3 (Union_find.count uf);
  check_bool "same" true (Union_find.same uf 0 3);
  check_bool "not same" false (Union_find.same uf 0 4)

let test_union_find_sizes () =
  let uf = Union_find.create 5 in
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  let sizes = Union_find.component_sizes uf in
  let root = Union_find.find uf 0 in
  check_int "big component" 3 (Hashtbl.find sizes root)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_fmt_int () =
  Alcotest.(check string) "thousands" "1,234,567" (Table.fmt_int 1234567);
  Alcotest.(check string) "negative" "-1,000" (Table.fmt_int (-1000));
  Alcotest.(check string) "small" "42" (Table.fmt_int 42)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "30"; "40" ] ] in
  check_bool "has header" true (String.length s > 0);
  check_bool "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun line -> String.length line > 0))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ test_ccdf_monotone_qcheck;
      test_heap_sorted_qcheck;
      test_scratch_vs_hashtbl_qcheck;
      test_qlog_truncation_race_qcheck
    ]

let () =
  Alcotest.run "kaskade_util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "distinct seeds" `Quick test_prng_distinct_seeds;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int_in range" `Quick test_prng_int_in;
          Alcotest.test_case "invalid bound" `Quick test_prng_int_invalid;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "zipf bounds" `Quick test_prng_zipf_bounds;
          Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
          Alcotest.test_case "zipf n=1" `Quick test_prng_zipf_n1;
          Alcotest.test_case "geometric" `Quick test_prng_geometric;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentile nearest rank" `Quick test_percentile_nearest_rank;
          Alcotest.test_case "percentile singleton" `Quick test_percentile_single;
          Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
          Alcotest.test_case "percentiles batch" `Quick test_percentiles_batch;
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "ccdf" `Quick test_ccdf;
          Alcotest.test_case "linear fit" `Quick test_linear_fit_exact;
          Alcotest.test_case "power-law fit" `Quick test_power_law_fit;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "int_vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_int_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_int_vec_bounds;
          Alcotest.test_case "truncate" `Quick test_int_vec_truncate;
          Alcotest.test_case "sort" `Quick test_int_vec_sort;
        ] );
      ( "scratch",
        [
          Alcotest.test_case "set basics" `Quick test_scratch_set_basic;
          Alcotest.test_case "borrow starts fresh" `Quick test_scratch_borrow_fresh;
          Alcotest.test_case "nested borrows distinct" `Quick test_scratch_nested_distinct;
          Alcotest.test_case "capacity grows" `Quick test_scratch_grows;
          Alcotest.test_case "value of non-member" `Quick test_scratch_value_not_member;
        ] );
      ( "pool",
        [
          Alcotest.test_case "deprecated map_chunks compatibility" `Quick
            Chunks_compat.test_pool_chunks_compat;
          Alcotest.test_case "clamps" `Quick test_pool_clamps;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "raising morsel leaves pool usable" `Quick
            test_pool_raise_leaves_pool_usable;
          Alcotest.test_case "budget-cancelled fan-out returns" `Quick test_pool_budget_cancelled_fanout;
          Alcotest.test_case "workers use scratch" `Quick test_pool_workers_use_scratch;
          Alcotest.test_case "metrics reset during fan-out" `Quick
            test_metrics_reset_during_fanout;
        ] );
      ( "morsels",
        [
          Alcotest.test_case "ranges partition [0,n)" `Quick test_morsel_ranges_partition;
          Alcotest.test_case "effective workers" `Quick test_morsel_effective_workers;
          Alcotest.test_case "deterministic across widths and grains" `Quick
            test_morsel_deterministic_widths_and_grains;
          Alcotest.test_case "earliest exception wins at widths 1/2/4" `Quick
            test_morsel_earliest_exception_deterministic;
          Alcotest.test_case "budget exhaustion leaves pool usable" `Quick
            test_morsel_budget_exhausted_leaves_pool_usable;
        ] );
      ( "heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_union_find_basic;
          Alcotest.test_case "component sizes" `Quick test_union_find_sizes;
        ] );
      ( "table",
        [
          Alcotest.test_case "fmt_int" `Quick test_fmt_int;
          Alcotest.test_case "render" `Quick test_table_render;
        ] );
      ("properties", qcheck_cases);
    ]
