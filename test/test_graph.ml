open Kaskade_graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* The paper's provenance schema (Fig. 1 / §III-A). *)
let lineage_schema =
  Schema.define ~vertices:[ "Job"; "File" ]
    ~edges:[ ("Job", "WRITES_TO", "File"); ("File", "IS_READ_BY", "Job") ]

(* Small lineage instance used across cases: j0 writes f0, f1; f0 read
   by j1; f1 read by j1 and j2; j2 writes f2. *)
let small_lineage () =
  let b = Builder.create lineage_schema in
  let j = Array.init 3 (fun i -> Builder.add_vertex b ~vtype:"Job" ~props:[ ("name", Value.Str (Printf.sprintf "j%d" i)); ("CPU", Value.Float (float_of_int (10 * (i + 1)))) ] ()) in
  let f = Array.init 3 (fun i -> Builder.add_vertex b ~vtype:"File" ~props:[ ("name", Value.Str (Printf.sprintf "f%d" i)) ] ()) in
  ignore (Builder.add_edge b ~src:j.(0) ~dst:f.(0) ~etype:"WRITES_TO" ~props:[ ("timestamp", Value.Int 1) ] ());
  ignore (Builder.add_edge b ~src:j.(0) ~dst:f.(1) ~etype:"WRITES_TO" ~props:[ ("timestamp", Value.Int 2) ] ());
  ignore (Builder.add_edge b ~src:f.(0) ~dst:j.(1) ~etype:"IS_READ_BY" ~props:[ ("timestamp", Value.Int 3) ] ());
  ignore (Builder.add_edge b ~src:f.(1) ~dst:j.(1) ~etype:"IS_READ_BY" ~props:[ ("timestamp", Value.Int 4) ] ());
  ignore (Builder.add_edge b ~src:f.(1) ~dst:j.(2) ~etype:"IS_READ_BY" ~props:[ ("timestamp", Value.Int 5) ] ());
  ignore (Builder.add_edge b ~src:j.(2) ~dst:f.(2) ~etype:"WRITES_TO" ~props:[ ("timestamp", Value.Int 6) ] ());
  (Graph.freeze b, j, f)

(* ------------------------------------------------------------------ *)
(* Value                                                               *)

let test_value_arith () =
  check_bool "int add" true (Value.equal (Value.add (Value.Int 2) (Value.Int 3)) (Value.Int 5));
  check_bool "mixed add" true (Value.equal (Value.add (Value.Int 2) (Value.Float 0.5)) (Value.Float 2.5));
  check_bool "str concat" true (Value.equal (Value.add (Value.Str "a") (Value.Str "b")) (Value.Str "ab"));
  check_bool "null propagates" true (Value.equal (Value.add Value.Null (Value.Int 1)) Value.Null);
  check_bool "sub" true (Value.equal (Value.sub (Value.Int 5) (Value.Int 3)) (Value.Int 2));
  check_bool "mul" true (Value.equal (Value.mul (Value.Float 2.0) (Value.Int 3)) (Value.Float 6.0))

let test_value_compare () =
  check_bool "int/float numeric" true (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  check_bool "equal across kinds" true (Value.equal (Value.Int 2) (Value.Float 2.0));
  check_bool "null smallest" true (Value.compare Value.Null (Value.Bool false) < 0);
  check_bool "strings" true (Value.compare (Value.Str "a") (Value.Str "b") < 0)

let test_value_truthiness () =
  check_bool "null falsy" false (Value.is_truthy Value.Null);
  check_bool "false falsy" false (Value.is_truthy (Value.Bool false));
  check_bool "zero truthy (cypherish)" true (Value.is_truthy (Value.Int 0))

let test_value_div_by_zero () =
  Alcotest.check_raises "div0" (Invalid_argument "Value.div: division by zero") (fun () ->
      ignore (Value.div (Value.Int 1) (Value.Int 0)))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

let test_schema_lookup () =
  check_int "vertex id" 0 (Schema.vertex_type_id lineage_schema "Job");
  check_string "vertex name" "File" (Schema.vertex_type_name lineage_schema 1);
  check_int "edge id" 0 (Schema.edge_type_id lineage_schema "WRITES_TO");
  check_int "edge src" 0 (Schema.edge_src lineage_schema 0);
  check_int "edge dst" 1 (Schema.edge_dst lineage_schema 0)

let test_schema_duplicate () =
  Alcotest.check_raises "dup vertex" (Invalid_argument "Schema: duplicate vertex type A") (fun () ->
      ignore (Schema.define ~vertices:[ "A"; "A" ] ~edges:[]))

let test_schema_unknown_endpoint () =
  Alcotest.check_raises "unknown type" (Invalid_argument "Schema: unknown vertex type B") (fun () ->
      ignore (Schema.define ~vertices:[ "A" ] ~edges:[ ("A", "e", "B") ]))

let test_schema_edges_from () =
  Alcotest.(check (list int)) "from Job" [ 0 ] (Schema.edge_types_from lineage_schema 0);
  Alcotest.(check (list int)) "between" [ 1 ] (Schema.edge_types_between lineage_schema 1 0)

let test_schema_homogeneous () =
  check_bool "lineage is hetero" false (Schema.is_homogeneous lineage_schema);
  let homo = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "LINK", "V") ] in
  check_bool "single type is homo" true (Schema.is_homogeneous homo)

let test_schema_restrict () =
  let s =
    Schema.define ~vertices:[ "A"; "B"; "C" ]
      ~edges:[ ("A", "ab", "B"); ("B", "bc", "C"); ("A", "ac", "C") ]
  in
  let r = Schema.restrict s ~keep_vertices:[ "A"; "B" ] in
  Alcotest.(check (list string)) "vertices" [ "A"; "B" ] (Schema.vertex_types r);
  check_int "edges" 1 (Schema.n_edge_types r)

let test_schema_add_edge_type () =
  let s = Schema.add_edge_type lineage_schema ~src:"Job" ~name:"JOB_TO_JOB_2HOP" ~dst:"Job" in
  check_bool "new edge" true (Schema.has_edge_type s "JOB_TO_JOB_2HOP");
  check_int "old edges kept" 3 (Schema.n_edge_types s)

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)

let test_builder_domain_range () =
  let b = Builder.create lineage_schema in
  let j = Builder.add_vertex b ~vtype:"Job" () in
  let f = Builder.add_vertex b ~vtype:"File" () in
  ignore (Builder.add_edge b ~src:j ~dst:f ~etype:"WRITES_TO" ());
  (* The paper's core structural constraint: a File cannot write. *)
  check_bool "file-file edge rejected" true
    (try
       ignore (Builder.add_edge b ~src:f ~dst:f ~etype:"WRITES_TO" ());
       false
     with Invalid_argument _ -> true);
  check_bool "job-job edge rejected" true
    (try
       ignore (Builder.add_edge b ~src:j ~dst:j ~etype:"IS_READ_BY" ());
       false
     with Invalid_argument _ -> true)

let test_builder_unknown_types () =
  let b = Builder.create lineage_schema in
  check_bool "unknown vertex type" true
    (try
       ignore (Builder.add_vertex b ~vtype:"Ghost" ());
       false
     with Invalid_argument _ -> true);
  let j = Builder.add_vertex b ~vtype:"Job" () in
  check_bool "unknown edge type" true
    (try
       ignore (Builder.add_edge b ~src:j ~dst:j ~etype:"GHOST" ());
       false
     with Invalid_argument _ -> true)

let test_builder_out_of_range () =
  let b = Builder.create lineage_schema in
  ignore (Builder.add_vertex b ~vtype:"Job" ());
  check_bool "bad endpoint" true
    (try
       ignore (Builder.add_edge b ~src:0 ~dst:99 ~etype:"WRITES_TO" ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Graph (CSR invariants)                                              *)

let test_graph_counts () =
  let g, _, _ = small_lineage () in
  check_int "vertices" 6 (Graph.n_vertices g);
  check_int "edges" 6 (Graph.n_edges g);
  check_int "jobs" 3 (Graph.count_of_type g 0);
  check_int "files" 3 (Graph.count_of_type g 1)

let test_graph_adjacency () =
  let g, j, f = small_lineage () in
  check_int "j0 out-degree" 2 (Graph.out_degree g j.(0));
  check_int "f1 out-degree" 2 (Graph.out_degree g f.(1));
  check_int "j1 in-degree" 2 (Graph.in_degree g j.(1));
  let neighbors = Array.to_list (Graph.out_neighbors g j.(0)) |> List.sort compare in
  Alcotest.(check (list int)) "j0 writes f0 f1" [ f.(0); f.(1) ] neighbors

let test_graph_degree_sum () =
  let g, _, _ = small_lineage () in
  let out_sum = ref 0 and in_sum = ref 0 in
  for v = 0 to Graph.n_vertices g - 1 do
    out_sum := !out_sum + Graph.out_degree g v;
    in_sum := !in_sum + Graph.in_degree g v
  done;
  check_int "sum out = m" (Graph.n_edges g) !out_sum;
  check_int "sum in = m" (Graph.n_edges g) !in_sum

let test_graph_edge_endpoints () =
  let g, j, f = small_lineage () in
  let s, d = Graph.edge_endpoints g 0 in
  check_int "edge 0 src" j.(0) s;
  check_int "edge 0 dst" f.(0) d;
  check_string "edge 0 type" "WRITES_TO" (Schema.edge_type_name (Graph.schema g) (Graph.edge_type g 0))

let test_graph_iter_etype () =
  let g, _, f = small_lineage () in
  let count = ref 0 in
  let etype = Schema.edge_type_id (Graph.schema g) "IS_READ_BY" in
  Graph.iter_out_etype g f.(1) ~etype (fun ~dst:_ ~eid:_ -> incr count);
  check_int "f1 read edges" 2 !count

let test_graph_props () =
  let g, j, _ = small_lineage () in
  check_bool "CPU" true (Graph.vprop g j.(1) "CPU" = Some (Value.Float 20.0));
  check_bool "missing is None" true (Graph.vprop g j.(1) "nope" = None);
  check_bool "missing or_null" true (Value.equal (Graph.vprop_or_null g j.(1) "nope") Value.Null);
  check_bool "edge ts" true (Graph.eprop g 0 "timestamp" = Some (Value.Int 1));
  check_int "props listed" 2 (List.length (Graph.vertex_props g j.(0)))

(* Property: freezing a random schema-valid graph preserves exactly
   the edge multiset, via both out- and in-CSR. *)
let prop_csr_roundtrip =
  QCheck.Test.make ~name:"CSR adjacency = inserted edge multiset" ~count:50
    QCheck.(pair (2 -- 30) (0 -- 120))
    (fun (n, m) ->
      let schema = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "E", "V") ] in
      let b = Builder.create schema in
      let rng = Kaskade_util.Prng.create (n + (m * 1000)) in
      let ids = Array.init n (fun _ -> Builder.add_vertex b ~vtype:"V" ()) in
      let inserted = ref [] in
      for _ = 1 to m do
        let s = Kaskade_util.Prng.choose rng ids and d = Kaskade_util.Prng.choose rng ids in
        ignore (Builder.add_edge b ~src:s ~dst:d ~etype:"E" ());
        inserted := (s, d) :: !inserted
      done;
      let g = Graph.freeze b in
      let from_out = ref [] in
      for v = 0 to n - 1 do
        Graph.iter_out g v (fun ~dst ~etype:_ ~eid:_ -> from_out := (v, dst) :: !from_out)
      done;
      let from_in = ref [] in
      for v = 0 to n - 1 do
        Graph.iter_in g v (fun ~src ~etype:_ ~eid:_ -> from_in := (src, v) :: !from_in)
      done;
      let norm l = List.sort compare l in
      norm !inserted = norm !from_out && norm !inserted = norm !from_in)

(* Property: on random multi-edge-type graphs, the segmented typed
   iterators return exactly the multiset the seed's filter-scan
   (iterate everything, test the type) returns — in both directions —
   and the typed slices partition each vertex's adjacency. *)
let prop_typed_iteration_matches_filter_scan =
  QCheck.Test.make ~name:"typed iteration = filter-scan multiset" ~count:50
    QCheck.(pair (2 -- 25) (0 -- 150))
    (fun (n, m) ->
      let etypes = [ "E0"; "E1"; "E2" ] in
      let schema =
        Schema.define ~vertices:[ "V" ] ~edges:(List.map (fun e -> ("V", e, "V")) etypes)
      in
      let b = Builder.create schema in
      let rng = Kaskade_util.Prng.create (n + (m * 7919)) in
      let ids = Array.init n (fun _ -> Builder.add_vertex b ~vtype:"V" ()) in
      for _ = 1 to m do
        let s = Kaskade_util.Prng.choose rng ids and d = Kaskade_util.Prng.choose rng ids in
        let e = List.nth etypes (Kaskade_util.Prng.int rng 3) in
        ignore (Builder.add_edge b ~src:s ~dst:d ~etype:e ())
      done;
      let g = Graph.freeze b in
      let norm l = List.sort compare l in
      let ok = ref true in
      for t = 0 to 2 do
        for v = 0 to n - 1 do
          (* Out-direction: typed walk vs filter over the full list. *)
          let typed = ref [] and scanned = ref [] in
          Graph.iter_out_etype g v ~etype:t (fun ~dst ~eid -> typed := (dst, eid) :: !typed);
          Graph.iter_out g v (fun ~dst ~etype ~eid ->
              if etype = t then scanned := (dst, eid) :: !scanned);
          if norm !typed <> norm !scanned then ok := false;
          if List.length !typed <> Graph.typed_out_degree g v ~etype:t then ok := false;
          (* In-direction. *)
          let typed_in = ref [] and scanned_in = ref [] in
          Graph.iter_in_etype g v ~etype:t (fun ~src ~eid -> typed_in := (src, eid) :: !typed_in);
          Graph.iter_in g v (fun ~src ~etype ~eid ->
              if etype = t then scanned_in := (src, eid) :: !scanned_in);
          if norm !typed_in <> norm !scanned_in then ok := false;
          if List.length !typed_in <> Graph.typed_in_degree g v ~etype:t then ok := false
        done
      done;
      (* Typed slices partition each vertex's CSR segment. *)
      for v = 0 to n - 1 do
        let sum = ref 0 in
        for t = 0 to 2 do
          let lo, hi = Graph.typed_out_slice g v ~etype:t in
          if hi < lo then ok := false;
          sum := !sum + (hi - lo)
        done;
        if !sum <> Graph.out_degree g v then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Subgraph                                                            *)

let test_subgraph_restrict_vertices () =
  let g, _, _ = small_lineage () in
  let keep_jobs v = Graph.vertex_type_name g v = "Job" in
  let sub, mapping =
    Subgraph.restrict ~vertex_pred:keep_jobs
      ~schema:(Schema.restrict (Graph.schema g) ~keep_vertices:[ "Job" ])
      g
  in
  check_int "only jobs" 3 (Graph.n_vertices sub);
  check_int "no edges survive" 0 (Graph.n_edges sub);
  check_int "mapping round trip" 3
    (Array.fold_left (fun acc x -> if x >= 0 then acc + 1 else acc) 0 mapping.Subgraph.new_of_old_vertex)

let test_subgraph_restrict_props_copied () =
  let g, j, _ = small_lineage () in
  let sub, mapping = Subgraph.restrict ~vertex_pred:(fun v -> v = j.(1)) ~schema:(Schema.restrict (Graph.schema g) ~keep_vertices:[ "Job" ]) g in
  let new_id = mapping.Subgraph.new_of_old_vertex.(j.(1)) in
  check_bool "prop copied" true (Graph.vprop sub new_id "CPU" = Some (Value.Float 20.0))

let test_subgraph_edge_prefix () =
  let g, _, _ = small_lineage () in
  let sub, _ = Subgraph.edge_prefix g 3 in
  check_int "3 edges" 3 (Graph.n_edges sub);
  check_bool "touched vertices only" true (Graph.n_vertices sub <= 6);
  let sub_all, _ = Subgraph.edge_prefix g 100 in
  check_int "prefix beyond m keeps all" 6 (Graph.n_edges sub_all)

let test_subgraph_edge_filter () =
  let g, _, _ = small_lineage () in
  let writes = Schema.edge_type_id (Graph.schema g) "WRITES_TO" in
  let sub, _ = Subgraph.restrict ~edge_pred:(fun ~eid:_ ~src:_ ~dst:_ ~etype -> etype = writes) g in
  check_int "writes only" 3 (Graph.n_edges sub);
  check_int "all vertices kept" 6 (Graph.n_vertices sub)

(* ------------------------------------------------------------------ *)
(* Gstats                                                              *)

let test_gstats_summary () =
  let g, _, _ = small_lineage () in
  let stats = Gstats.compute g in
  check_int "total vertices" 6 (Gstats.total_vertices stats);
  check_int "total edges" 6 (Gstats.total_edges stats);
  let job = Gstats.summary_of_type stats 0 in
  check_int "jobs" 3 job.Gstats.count;
  check_int "job max out-deg" 2 job.Gstats.deg100;
  check_bool "job is source" true job.Gstats.is_source

let test_gstats_percentiles_match_stats () =
  let g, _, _ = small_lineage () in
  let stats = Gstats.compute g in
  let degrees = Graph.out_degrees_of_type g 0 in
  check_int "p50 agrees"
    (Kaskade_util.Stats.percentile degrees 50.0)
    (Gstats.out_degree_percentile stats ~vtype:0 ~alpha:50.0)

let test_gstats_means () =
  let g, _, _ = small_lineage () in
  let stats = Gstats.compute g in
  Alcotest.(check (float 1e-9)) "job mean out-deg" 1.0 (Gstats.out_degree_mean stats ~vtype:0);
  Alcotest.(check (float 1e-9)) "global mean" 1.0 (Gstats.global_out_degree_mean stats)

let test_gstats_etype_counts () =
  let g, _, _ = small_lineage () in
  let stats = Gstats.compute g in
  check_int "writes" 3 (Gstats.edge_type_count stats ~etype:0);
  check_int "reads" 3 (Gstats.edge_type_count stats ~etype:1);
  Alcotest.(check (float 1e-9)) "job writes-only mean" 1.0
    (Gstats.out_degree_mean_for_etypes stats ~vtype:0 ~etypes:[ 0 ])

let test_gstats_sources () =
  let g, _, _ = small_lineage () in
  let stats = Gstats.compute g in
  Alcotest.(check (list int)) "both types are sources" [ 0; 1 ] (Gstats.source_types stats)


(* ------------------------------------------------------------------ *)
(* Gio (serialization)                                                 *)

let graphs_equal a b =
  Graph.n_vertices a = Graph.n_vertices b
  && Graph.n_edges a = Graph.n_edges b
  && begin
       let ok = ref true in
       for v = 0 to Graph.n_vertices a - 1 do
         if Graph.vertex_type_name a v <> Graph.vertex_type_name b v then ok := false;
         if Graph.vertex_props a v <> Graph.vertex_props b v then ok := false
       done;
       Graph.iter_edges a (fun ~eid ~src ~dst ~etype ->
           let s, d = Graph.edge_endpoints b eid in
           if s <> src || d <> dst || Graph.edge_type b eid <> etype then ok := false;
           if Graph.edge_props a eid <> Graph.edge_props b eid then ok := false);
       !ok
     end

let test_gio_roundtrip () =
  let g, _, _ = small_lineage () in
  let back = Gio.of_string (Gio.to_string g) in
  check_bool "roundtrip" true (graphs_equal g back)

let test_gio_special_chars () =
  let schema = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "E", "V") ] in
  let b = Builder.create schema in
  let v0 = Builder.add_vertex b ~vtype:"V"
      ~props:[ ("weird key", Value.Str "has = and %\nnewline"); ("f", Value.Float 1.5);
               ("neg", Value.Int (-3)); ("t", Value.Bool true); ("nothing", Value.Null) ] () in
  ignore (Builder.add_edge b ~src:v0 ~dst:v0 ~etype:"E" ());
  let g = Graph.freeze b in
  let back = Gio.of_string (Gio.to_string g) in
  check_bool "special chars survive" true (graphs_equal g back)

let test_gio_file_roundtrip () =
  let g, _, _ = small_lineage () in
  let path = Filename.temp_file "kaskade" ".graph" in
  Gio.save g path;
  let back = Gio.load path in
  Sys.remove path;
  check_bool "file roundtrip" true (graphs_equal g back)

let test_gio_bad_magic () =
  check_bool "raises" true
    (try ignore (Gio.of_string "nonsense\n"); false with Gio.Format_error _ -> true)

let test_gio_schema_enforced () =
  (* A file-file edge violates the schema and must be rejected. *)
  let text = "kaskade-graph 1\nvtype Job\nvtype File\netype Job WRITES_TO File\nv 0 File\nv 1 File\ne 0 1 WRITES_TO\n" in
  check_bool "raises" true
    (try ignore (Gio.of_string text); false with Gio.Format_error _ -> true)

let test_gio_load_error_closes_fd () =
  (* A malformed file must not leak its descriptor: [Gio.load] closes
     the channel on the error path, so repeated failing loads leave
     the process fd table unchanged. *)
  let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
  if Sys.file_exists "/proc/self/fd" then begin
    let path = Filename.temp_file "kaskade" ".graph" in
    let oc = open_out path in
    output_string oc "nonsense\n";
    close_out oc;
    let before = count_fds () in
    for _ = 1 to 16 do
      try ignore (Gio.load path) with Gio.Format_error _ -> ()
    done;
    let after = count_fds () in
    Sys.remove path;
    check_int "fd count unchanged after failing loads" before after
  end

let prop_gio_roundtrip_random =
  QCheck.Test.make ~name:"Gio roundtrip on random provenance graphs" ~count:20
    QCheck.(pair (5 -- 30) (0 -- 500))
    (fun (jobs, seed) ->
      let g = Kaskade_gen.Provenance_gen.(generate { default with jobs; files = 2 * jobs; seed }) in
      graphs_equal g (Gio.of_string (Gio.to_string g)))


(* ------------------------------------------------------------------ *)
(* Vindex                                                              *)

let test_vindex_lookup () =
  let g, j, _ = small_lineage () in
  let idx = Vindex.create g in
  Alcotest.(check (list int)) "by name" [ j.(1) ] (Vindex.lookup idx ~prop:"name" (Value.Str "j1"));
  Alcotest.(check (list int)) "missing value" [] (Vindex.lookup idx ~prop:"name" (Value.Str "nope"));
  Alcotest.(check (list int)) "missing prop" [] (Vindex.lookup idx ~prop:"ghost" (Value.Str "x"))

let test_vindex_lazy_build () =
  let g, _, _ = small_lineage () in
  let idx = Vindex.create g in
  check_int "no builds yet" 0 (Vindex.build_count idx);
  ignore (Vindex.lookup idx ~prop:"name" (Value.Str "j0"));
  ignore (Vindex.lookup idx ~prop:"name" (Value.Str "j1"));
  check_int "one build for repeated probes" 1 (Vindex.build_count idx);
  Alcotest.(check (list string)) "indexed" [ "name" ] (Vindex.indexed_props idx)

let test_vindex_multi_match () =
  let g, j, _ = small_lineage () in
  let idx = Vindex.create g in
  (* CPU 20.0 belongs only to j1; CPU values are per-vertex here, but
     shared values must return every holder. *)
  Alcotest.(check (list int)) "float key" [ j.(1) ]
    (Vindex.lookup idx ~prop:"CPU" (Value.Float 20.0))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_csr_roundtrip; prop_typed_iteration_matches_filter_scan; prop_gio_roundtrip_random ]

let () =
  Alcotest.run "kaskade_graph"
    [
      ( "value",
        [
          Alcotest.test_case "arithmetic" `Quick test_value_arith;
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "truthiness" `Quick test_value_truthiness;
          Alcotest.test_case "division by zero" `Quick test_value_div_by_zero;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "duplicate rejected" `Quick test_schema_duplicate;
          Alcotest.test_case "unknown endpoint rejected" `Quick test_schema_unknown_endpoint;
          Alcotest.test_case "edges_from / between" `Quick test_schema_edges_from;
          Alcotest.test_case "homogeneity" `Quick test_schema_homogeneous;
          Alcotest.test_case "restrict" `Quick test_schema_restrict;
          Alcotest.test_case "add_edge_type" `Quick test_schema_add_edge_type;
        ] );
      ( "builder",
        [
          Alcotest.test_case "domain/range enforced" `Quick test_builder_domain_range;
          Alcotest.test_case "unknown types rejected" `Quick test_builder_unknown_types;
          Alcotest.test_case "endpoint range" `Quick test_builder_out_of_range;
        ] );
      ( "graph",
        [
          Alcotest.test_case "counts" `Quick test_graph_counts;
          Alcotest.test_case "adjacency" `Quick test_graph_adjacency;
          Alcotest.test_case "degree sums" `Quick test_graph_degree_sum;
          Alcotest.test_case "edge endpoints" `Quick test_graph_edge_endpoints;
          Alcotest.test_case "typed iteration" `Quick test_graph_iter_etype;
          Alcotest.test_case "properties" `Quick test_graph_props;
        ] );
      ( "subgraph",
        [
          Alcotest.test_case "restrict vertices" `Quick test_subgraph_restrict_vertices;
          Alcotest.test_case "props copied" `Quick test_subgraph_restrict_props_copied;
          Alcotest.test_case "edge prefix" `Quick test_subgraph_edge_prefix;
          Alcotest.test_case "edge filter" `Quick test_subgraph_edge_filter;
        ] );
      ( "gstats",
        [
          Alcotest.test_case "summary" `Quick test_gstats_summary;
          Alcotest.test_case "percentiles agree with Stats" `Quick test_gstats_percentiles_match_stats;
          Alcotest.test_case "means" `Quick test_gstats_means;
          Alcotest.test_case "edge type counts" `Quick test_gstats_etype_counts;
          Alcotest.test_case "source types" `Quick test_gstats_sources;
        ] );
      ( "vindex",
        [
          Alcotest.test_case "lookup" `Quick test_vindex_lookup;
          Alcotest.test_case "lazy build" `Quick test_vindex_lazy_build;
          Alcotest.test_case "typed keys" `Quick test_vindex_multi_match;
        ] );
      ( "gio",
        [
          Alcotest.test_case "roundtrip" `Quick test_gio_roundtrip;
          Alcotest.test_case "special characters" `Quick test_gio_special_chars;
          Alcotest.test_case "file roundtrip" `Quick test_gio_file_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_gio_bad_magic;
          Alcotest.test_case "schema enforced" `Quick test_gio_schema_enforced;
          Alcotest.test_case "failed load leaks no fd" `Quick test_gio_load_error_closes_fd;
        ] );
      ("properties", qcheck_cases);
    ]
