(* End-to-end resource governance and graceful degradation: typed
   errors from [query] under deadlines/step/row caps and injected
   faults, the refresh circuit breaker opening after N consecutive
   failures, quarantined views transparently bypassed in favour of the
   base graph (verified against view-free execution), and recovery
   through the half-open probe. *)

open Kaskade_graph
module K = Kaskade
module Error = Kaskade.Error
module Budget = Kaskade_util.Budget
module Breaker = Kaskade_util.Breaker
module Catalog = Kaskade_views.Catalog
module View = Kaskade_views.View
module Executor = Kaskade_exec.Executor
module Row = Kaskade_exec.Row
module Metrics = Kaskade_obs.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let coauthor_query = K.parse "MATCH (a:Author)-[r*2..2]->(b:Author) RETURN a, b"
let view_name = "AUTHOR_TO_AUTHOR_2HOP"
let khop = View.Connector (View.K_hop { src_type = "Author"; dst_type = "Author"; k = 2 })

let mid_dblp () =
  Kaskade_gen.Dblp_gen.(generate { default with authors = 40; pubs = 70; venues = 5; seed = 7 })

let make_stale ks =
  let g = K.graph ks in
  let authors = Graph.vertices_of_type_name g "Author" in
  let pubs = Graph.vertices_of_type_name g "Pub" in
  K.Update.insert_edge ks ~src:authors.(0) ~dst:pubs.(0) ~etype:"AUTHORED" ()

(* Every comparison below pits two base-graph executions of the same
   snapshot against each other, so raw row values — vertex ids
   included — are directly comparable. *)
let rows_of = function
  | Executor.Table t -> List.sort compare (List.map Array.to_list t.Row.rows)
  | Executor.Affected n -> [ [ Row.Prim (Value.Int n) ] ]

let qok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected facade error: %s" (Error.to_string e)

let krun ks q = qok (K.query ks q)

(* ------------------------------------------------------------------ *)
(* Budgets: every cap surfaces as a typed value, never an exception    *)

let test_budget_caps_typed () =
  let ks = K.make (mid_dblp ()) in
  let m_timeouts = Metrics.counter "kaskade.query_timeouts" in
  let timeouts0 = Metrics.counter_value m_timeouts in
  let expect_exhausted what budget =
    match K.query ~budget ks coauthor_query with
    | Error (Error.Budget_exhausted _) -> ()
    | Ok _ -> Alcotest.failf "%s: expected exhaustion, query succeeded" what
    | Error e -> Alcotest.failf "%s: wrong error class: %s" what (Error.to_string e)
  in
  expect_exhausted "0s deadline" (Budget.create ~deadline_s:0.0 ());
  expect_exhausted "5-step cap" (Budget.create ~max_steps:5 ());
  expect_exhausted "1-row cap" (Budget.create ~max_rows:1 ());
  check_int "timeouts metered" (timeouts0 + 3) (Metrics.counter_value m_timeouts);
  (* a roomy budget changes nothing about the answer *)
  match K.query ~budget:(Budget.create ~deadline_s:60.0 ~max_steps:50_000_000 ()) ks coauthor_query with
  | Ok (_, K.Raw) -> ()
  | Ok (_, K.Via_view v) -> Alcotest.failf "no views materialized, yet answered via %s" v
  | Error e -> Alcotest.failf "roomy budget exhausted: %s" (Error.to_string e)

let test_injected_timeout_typed () =
  let ks = K.make (mid_dblp ()) in
  Budget.Faults.with_spec "executor.run=timeout" (fun () ->
      match K.query ks coauthor_query with
      | Error (Error.Budget_exhausted { stage = Budget.Execute; _ }) -> ()
      | Ok _ -> Alcotest.fail "injected timeout ignored"
      | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e));
  (* the fault is scoped: disarmed on exit *)
  match K.query ks coauthor_query with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fault leaked out of with_spec: %s" (Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Refresh failure on the explicit (raising) path                      *)

let test_refresh_fault_explicit_path () =
  let ks = K.make ~config:{ K.Config.default with auto_refresh = false } (mid_dblp ()) in
  ignore (K.materialize ks khop);
  make_stale ks;
  Budget.Faults.with_spec "maintain.refresh=fail:n1" (fun () ->
      (* as a typed value through the guard... *)
      match Error.guard (fun () -> K.Update.refresh_views ks) with
      | Error (Error.Refresh_failed { view; _ }) -> check_string "failing view" view_name view
      | Ok _ -> Alcotest.fail "expected the injected refresh failure"
      | Error e -> Alcotest.failf "wrong error class: %s" (Error.to_string e));
  (* ...and the catalog is not wedged: the entry is back to Stale with
     its delta intact, the breaker holds one failure *)
  (match K.Update.freshness ks with
  | [ (n, Catalog.Stale [ _ ]) ] -> check_string "stale entry" view_name n
  | _ -> Alcotest.fail "expected one stale entry with its delta");
  (match K.breaker_states ks with
  | [ (n, br) ] ->
    check_string "breaker view" view_name n;
    check_int "one failure" 1 (Breaker.failures br);
    check_bool "still closed" true (Breaker.state br = Breaker.Closed)
  | _ -> Alcotest.fail "expected one breaker with history");
  (* the fault was single-shot (n1): the retry repairs the view *)
  (match K.Update.refresh_views ks with
  | [ o ] -> check_string "refreshed" view_name o.K.refreshed_view
  | _ -> Alcotest.fail "expected one refresh outcome");
  let _, how = krun ks coauthor_query in
  check_bool "view answers after repair" true (how = K.Via_view view_name);
  match K.breaker_states ks with
  | [] -> ()
  | _ -> Alcotest.fail "breaker history not cleared by the successful refresh"

(* ------------------------------------------------------------------ *)
(* Breaker: open after N failures, quarantine, fallback, recovery      *)

let test_breaker_quarantine_fallback_recovery () =
  let ks = K.make
      ~config:{ K.Config.default with breaker_threshold = 2; breaker_cooldown_s = 0.5 }
      (mid_dblp ()) in
  ignore (K.materialize ks khop);
  let _, how0 = krun ks coauthor_query in
  check_bool "fresh view answers" true (how0 = K.Via_view view_name);
  make_stale ks;
  (* a view-free twin over the identical post-update snapshot is the
     ground truth the degraded facade must agree with *)
  let twin = K.make (K.graph ks) in
  let expected = rows_of (fst (krun twin coauthor_query)) in
  let m_failures = Metrics.counter "kaskade.refresh_failures" in
  let m_open = Metrics.counter "kaskade.breaker_open" in
  let m_fallback = Metrics.counter "kaskade.fallback_runs" in
  let failures0 = Metrics.counter_value m_failures in
  let open0 = Metrics.counter_value m_open in
  let fallback0 = Metrics.counter_value m_fallback in
  Budget.Faults.(with_faults [ fault "maintain.refresh" Fail ]) (fun () ->
      (* failure 1: the auto-repair fails, the failure is swallowed,
         and the query degrades to a correct base-graph answer *)
      let r1, how1 = krun ks coauthor_query in
      check_bool "degraded to base" true (how1 = K.Raw);
      check_bool "degraded rows correct" true (rows_of r1 = expected);
      (match K.breaker_states ks with
      | [ (_, br) ] -> check_int "one failure recorded" 1 (Breaker.failures br)
      | _ -> Alcotest.fail "expected breaker history");
      (* failure 2 = threshold: the breaker opens *)
      let _, how2 = krun ks coauthor_query in
      check_bool "still degraded" true (how2 = K.Raw);
      (match K.breaker_states ks with
      | [ (n, br) ] ->
        check_string "quarantined view" view_name n;
        check_bool "breaker open" true (Breaker.state br = Breaker.Open)
      | _ -> Alcotest.fail "expected an open breaker");
      check_int "failures metered" (failures0 + 2) (Metrics.counter_value m_failures);
      check_int "one distinct opening" (open0 + 1) (Metrics.counter_value m_open);
      (* quarantined: the refresh is not even attempted (the fault is
         still armed and would have fired), the planner routes around
         the view, and the answer is still correct *)
      let r3, how3 = krun ks coauthor_query in
      check_bool "fallback while quarantined" true (how3 = K.Raw);
      check_bool "fallback rows correct" true (rows_of r3 = expected);
      (match K.breaker_states ks with
      | [ (_, br) ] -> check_int "no new failure while open" 2 (Breaker.failures br)
      | _ -> Alcotest.fail "breaker disappeared");
      (* two fallback runs: the one that opened the breaker (it was
         quarantined by planning time) and the fully quarantined one *)
      check_int "fallback runs counted" (fallback0 + 2) (Metrics.counter_value m_fallback);
      (* EXPLAIN surfaces the quarantine without touching it *)
      let rep = K.explain ks coauthor_query in
      check_bool "explain targets base" true (rep.K.target = K.Raw);
      match rep.K.candidates with
      | [ c ] ->
        check_bool "quarantine reported" true
          (c.K.cand_refresh = Some "quarantined (breaker open)");
        check_bool "breaker described" true (c.K.cand_breaker <> None)
      | _ -> Alcotest.fail "expected one candidate");
  (* cooldown elapses -> half-open probe; with the fault disarmed the
     probe refresh succeeds, the breaker closes, the view answers *)
  Unix.sleepf 0.55;
  let _, how4 = krun ks coauthor_query in
  check_bool "view answers after recovery" true (how4 = K.Via_view view_name);
  match K.breaker_states ks with
  | [] -> ()
  | _ -> Alcotest.fail "breaker not pristine after the half-open probe succeeded"

(* ------------------------------------------------------------------ *)
(* Error taxonomy                                                      *)

let test_parse_result_position () =
  match K.parse_result "MATCH (a:Author\nRETURN a" with
  | Error (Error.Parse { line; col; message }) ->
    check_int "error on second line" 2 line;
    check_bool "column is 1-based" true (col >= 1);
    check_bool "message nonempty" true (String.length message > 0)
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> Alcotest.failf "wrong class: %s" (Error.to_string e)

let test_error_taxonomy () =
  check_string "label" "budget_exhausted"
    (Error.label (Error.Budget_exhausted { stage = Budget.Execute; detail = "d" }));
  (match Error.of_exn Not_found with
  | Some (Error.Plan _) -> ()
  | _ -> Alcotest.fail "Not_found classifies as Plan");
  (match Error.of_exn (Budget.Fault_injected { site = "x" }) with
  | Some (Error.Io _) -> ()
  | _ -> Alcotest.fail "escaped injected fault classifies as Io");
  (match Error.of_exn Out_of_memory with
  | None -> ()
  | Some _ -> Alcotest.fail "truly unexpected exceptions stay unclassified");
  check_bool "guard reraises the unclassified" true
    (try ignore (Error.guard (fun () -> raise Exit)); false with Exit -> true);
  check_bool "malformed fault spec rejected" true
    (try Budget.Faults.with_spec "nonsense" (fun () -> false)
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "kaskade_robustness"
    [
      ( "budget",
        [
          Alcotest.test_case "caps surface as typed errors" `Quick test_budget_caps_typed;
          Alcotest.test_case "injected timeout is typed and scoped" `Quick
            test_injected_timeout_typed;
        ] );
      ( "refresh",
        [
          Alcotest.test_case "explicit path raises typed, catalog survives" `Quick
            test_refresh_fault_explicit_path;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens, quarantines, falls back, recovers" `Quick
            test_breaker_quarantine_fallback_recovery;
        ] );
      ( "errors",
        [
          Alcotest.test_case "parse errors carry positions" `Quick test_parse_result_position;
          Alcotest.test_case "taxonomy classification" `Quick test_error_taxonomy;
        ] );
    ]
