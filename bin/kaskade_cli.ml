(* Command-line front end:

     kaskade_cli generate --dataset prov --edges 50000
     kaskade_cli enumerate --dataset prov --query "MATCH ... RETURN ..."
     kaskade_cli select --dataset prov --budget 100000 --query "..."
     kaskade_cli run --dataset prov --query "..." [--no-views] [--profile]
     kaskade_cli explain --dataset prov --query "..." [--json]
     kaskade_cli update --dataset prov --query "..." --random 32 [-o out.kg]
     kaskade_cli refresh --dataset prov --query "..." --random 32
     kaskade_cli snapshot --data-dir DIR --query "..."
     kaskade_cli recover --data-dir DIR [--query "..."]
     kaskade_cli stats --dataset dblp

   Datasets are generated on the fly (deterministic seeds); see
   lib/gen for the generators' shapes. *)

open Cmdliner
open Kaskade_graph

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log view selection and rewriting decisions.")

let build_dataset name edges seed =
  match name with
  | "prov" ->
    Kaskade_gen.Provenance_gen.(generate (scaled ~edges ~seed))
  | "prov-summarized" ->
    let raw = Kaskade_gen.Provenance_gen.(generate (scaled ~edges ~seed)) in
    (Kaskade_views.Materialize.materialize raw
       (Kaskade_views.View.Summarizer
          (Kaskade_views.View.Vertex_inclusion Kaskade_gen.Provenance_gen.summarized_types)))
      .Kaskade_views.Materialize.graph
  | "dblp" -> Kaskade_gen.Dblp_gen.(generate (scaled ~edges ~seed))
  | "soc" -> Kaskade_gen.Powerlaw_gen.(generate (scaled ~edges ~seed))
  | "road" -> Kaskade_gen.Road_gen.(generate (scaled ~edges ~seed))
  | other -> failwith ("unknown dataset " ^ other ^ " (try: prov prov-summarized dblp soc road)")

let dataset_arg =
  Arg.(value & opt string "prov" & info [ "d"; "dataset" ] ~docv:"NAME"
         ~doc:"Dataset: prov, prov-summarized, dblp, soc or road.")

let graph_file_arg =
  Arg.(value & opt (some string) None & info [ "g"; "graph" ] ~docv:"FILE"
         ~doc:"Load the graph from a kaskade-graph file instead of generating a dataset.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
         ~doc:"Also save the graph to FILE (kaskade-graph format).")

let load_or_generate graph_file name edges seed =
  match graph_file with
  | Some path -> Kaskade_graph.Gio.load path
  | None -> build_dataset name edges seed

let edges_arg =
  Arg.(value & opt int 50_000 & info [ "edges" ] ~docv:"N" ~doc:"Approximate edge count.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.")

let query_arg =
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY"
         ~doc:"Query in the hybrid MATCH/SELECT language.")

let budget_arg =
  Arg.(value & opt int 1_000_000 & info [ "budget" ] ~docv:"EDGES"
         ~doc:"View materialization budget in edges (knapsack capacity).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Dump the process-wide metrics registry as JSON to FILE on exit (- for stdout).")

let shards_arg =
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
         ~doc:"Partition the graph into N shards (per-shard type-segmented CSRs with \
               cut-edge stitching) and route execution through them. 1 (the default) \
               keeps the single-CSR path; results are byte-identical at any shard count.")

let shard_policy_conv =
  let parse s =
    let canonical = String.map (function '-' -> '_' | c -> c) s in
    match Kaskade_graph.Shard.policy_of_name canonical with
    | p -> Ok p
    | exception Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Kaskade_graph.Shard.policy_name p))

let shard_policy_arg =
  Arg.(value & opt shard_policy_conv Kaskade_graph.Shard.Hash
       & info [ "shard-policy" ] ~docv:"POLICY"
           ~doc:"Vertex partition policy for $(b,--shards): $(b,hash) (uniform, \
                 cut-edge heavy) or $(b,type-range) (contiguous type slices, \
                 locality-friendly).")

(* Durability knobs (update / refresh / serve / snapshot / recover). *)
let fsync_conv =
  let parse s =
    match Kaskade_store.Wal.fsync_policy_of_string s with
    | p -> Ok p
    | exception Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv
    ( parse,
      fun ppf p -> Format.pp_print_string ppf (Kaskade_store.Wal.fsync_policy_to_string p) )

let data_dir_arg =
  Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR"
         ~doc:"Durable data directory: every update batch is write-ahead logged (and \
               fsynced per $(b,--fsync)) there before it applies, and binary snapshots \
               accumulate for crash recovery ($(b,kaskade_cli recover)).")

let data_dir_req_arg =
  Arg.(required & opt (some string) None & info [ "data-dir" ] ~docv:"DIR"
         ~doc:"Durable data directory (WAL + snapshots).")

let fsync_arg =
  Arg.(value & opt fsync_conv Kaskade_store.Wal.Always & info [ "fsync" ] ~docv:"POLICY"
         ~doc:"WAL fsync policy: $(b,always) (no acknowledged batch is ever lost), \
               $(b,never) (OS page cache only), or $(b,every:N) (amortized).")

let snapshot_every_arg =
  Arg.(value & opt int 512 & info [ "snapshot-every" ] ~docv:"N"
         ~doc:"Update batches between automatic snapshots; 0 disables the cadence \
               (snapshots then only happen via $(b,kaskade_cli snapshot)).")

let dump_metrics = function
  | None -> ()
  | Some "-" -> print_endline (Kaskade_obs.Report.to_string ~pretty:true (Kaskade_obs.Metrics.to_json ()))
  | Some path ->
    let oc = open_out path in
    output_string oc (Kaskade_obs.Report.to_string ~pretty:true (Kaskade_obs.Metrics.to_json ()));
    output_char oc '\n';
    close_out oc

(* Compiler-style rendering: "query:LINE:COL: parse error: ...". *)
let render_parse_error msg line col =
  Printf.sprintf "query:%d:%d: parse error: %s" line col msg

let parse_or_die src =
  match Kaskade.parse src with
  | q -> q
  | exception Kaskade_query.Qparser.Parse_error { message; line; col } ->
    Printf.eprintf "%s\n" (render_parse_error message line col);
    exit 1

(* One-query subcommands surface governed failures exactly like the
   top-level handler: a one-line typed message and exit 1. *)
let query_or_die ?target ?budget ks q =
  match Kaskade.query ?target ?budget ks q with
  | Ok v -> v
  | Error e ->
    Printf.eprintf "kaskade_cli: %s\n" (Kaskade.Error.to_string e);
    exit 1

(* Opportunistic workload analysis for a single ad-hoc query: select
   under the budget, then materialize whatever the knapsack chose. *)
let select_and_materialize ks q budget =
  let sel = Kaskade.select_views ks ~queries:[ q ] ~budget_edges:budget in
  Kaskade.materialize_selected ks sel

let generate_cmd =
  let run name edges seed out =
    let g = build_dataset name edges seed in
    Format.printf "%a@." Graph.pp_summary g;
    Format.printf "%a@." Gstats.pp (Gstats.compute g);
    match out with
    | Some path ->
      Kaskade_graph.Gio.save g path;
      Printf.printf "saved to %s\n" path
    | None -> ()
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a dataset, print statistics, optionally save it.")
    Term.(const run $ dataset_arg $ edges_arg $ seed_arg $ out_arg)

let stats_cmd =
  let run name edges seed graph_file =
    let g = load_or_generate graph_file name edges seed in
    Format.printf "%a@." Gstats.pp (Gstats.compute g);
    let r = Kaskade_algo.Degree_dist.of_graph g in
    Format.printf "degree distribution: %a@." Kaskade_algo.Degree_dist.pp r
  in
  Cmd.v (Cmd.info "stats" ~doc:"Degree statistics and power-law fit of a dataset.")
    Term.(const run $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg)

let enumerate_cmd =
  let run name edges seed graph_file query =
    let g = load_or_generate graph_file name edges seed in
    let ks = Kaskade.make g in
    let q = parse_or_die query in
    let e = Kaskade.enumerate_views ks q in
    Printf.printf "%d candidates (%d inference steps):\n"
      (List.length e.Kaskade.Enumerate.candidates) e.Kaskade.Enumerate.inference_steps;
    List.iter
      (fun (c : Kaskade.Enumerate.candidate) ->
        Printf.printf "  %-26s %s\n"
          (Kaskade_views.View.name c.Kaskade.Enumerate.view)
          (Kaskade_views.View.describe c.Kaskade.Enumerate.view))
      e.Kaskade.Enumerate.candidates
  in
  Cmd.v (Cmd.info "enumerate" ~doc:"Constraint-based view enumeration for a query.")
    Term.(const run $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg $ query_arg)

let select_cmd =
  let run name edges seed graph_file query budget =
    let g = load_or_generate graph_file name edges seed in
    let ks = Kaskade.make g in
    let q = parse_or_die query in
    let sel = Kaskade.select_views ks ~queries:[ q ] ~budget_edges:budget in
    List.iter
      (fun (r : Kaskade.Selection.candidate_report) ->
        Printf.printf "%-26s size=%12.0f cost=%12.0f improvement=%8.2f value=%.6f%s\n"
          (Kaskade_views.View.name r.Kaskade.Selection.view)
          r.Kaskade.Selection.est_size r.Kaskade.Selection.creation_cost
          r.Kaskade.Selection.improvement r.Kaskade.Selection.value
          (if r.Kaskade.Selection.chosen then "  <- chosen" else ""))
      sel.Kaskade.Selection.reports
  in
  Cmd.v (Cmd.info "select" ~doc:"Knapsack view selection for a workload under a budget.")
    Term.(const run $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg $ query_arg $ budget_arg)

let run_cmd =
  let no_views =
    Arg.(value & flag & info [ "no-views" ] ~doc:"Evaluate on the raw graph only.")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Also print the operator tree with actual rows and per-operator wall time.")
  in
  let run verbose name edges seed graph_file query budget shards shard_policy no_views profile
      metrics =
    setup_logs verbose;
    let g = load_or_generate graph_file name edges seed in
    let ks = Kaskade.make ~config:{ Kaskade.Config.default with shards; shard_policy } g in
    let q = parse_or_die query in
    if not no_views then begin
      let entries = select_and_materialize ks q budget in
      List.iter
        (fun (e : Kaskade_views.Catalog.entry) ->
          Printf.printf "materialized %s (%d edges)\n"
            (Kaskade_views.View.name
               e.Kaskade_views.Catalog.materialized.Kaskade_views.Materialize.view)
            e.Kaskade_views.Catalog.size_edges)
        entries
    end;
    let t0 = Kaskade_util.Mclock.now_s () in
    let result, how, report =
      if no_views then
        if profile then begin
          let result, plan =
            Kaskade_exec.Executor.run_explained ~profile:true (Kaskade.base_ctx ks) q
          in
          (result, Kaskade.Raw, Some (`Plan plan))
        end
        else begin
          let result, _ = query_or_die ~target:Kaskade.Base ks q in
          (result, Kaskade.Raw, None)
        end
      else if profile then begin
        let result, report = Kaskade.profile ks q in
        (result, report.Kaskade.target, Some (`Report report))
      end
      else begin
        let result, how = query_or_die ks q in
        (result, how, None)
      end
    in
    let dt = Kaskade_util.Mclock.now_s () -. t0 in
    let target, target_graph =
      match how with
      | Kaskade.Raw -> ("raw graph", g)
      | Kaskade.Via_view v ->
        ( "view " ^ v,
          (Option.get (Kaskade_views.Catalog.find_by_name (Kaskade.catalog ks) v))
            .Kaskade_views.Catalog.materialized.Kaskade_views.Materialize.graph )
    in
    (match result with
    | Kaskade_exec.Executor.Table t ->
      Format.printf "%a@." (Kaskade_exec.Row.pp target_graph) t;
      Printf.printf "%d rows" (Kaskade_exec.Row.n_rows t)
    | Kaskade_exec.Executor.Affected n -> Printf.printf "updated %d entities" n);
    Printf.printf " via %s in %.3fs\n" target dt;
    (match report with
    | Some (`Report r) -> print_string (Kaskade.report_to_string r)
    | Some (`Plan p) -> Printf.printf "plan:\n%s" (Kaskade_obs.Explain.render p)
    | None -> ());
    dump_metrics metrics
  in
  Cmd.v (Cmd.info "run" ~doc:"Answer a query, transparently using materialized views.")
    Term.(const run $ verbose_arg $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg
          $ query_arg $ budget_arg $ shards_arg $ shard_policy_arg $ no_views $ profile
          $ metrics_arg)

let explain_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON instead of text.")
  in
  let no_views =
    Arg.(value & flag & info [ "no-views" ]
           ~doc:"Skip view selection/materialization; explain against the raw graph only.")
  in
  let run verbose name edges seed graph_file query budget shards shard_policy no_views json
      metrics =
    setup_logs verbose;
    let g = load_or_generate graph_file name edges seed in
    let ks = Kaskade.make ~config:{ Kaskade.Config.default with shards; shard_policy } g in
    let q = parse_or_die query in
    if not no_views then ignore (select_and_materialize ks q budget);
    let report = Kaskade.explain ks q in
    if json then
      print_endline (Kaskade_obs.Report.to_string ~pretty:true (Kaskade.report_json report))
    else print_string (Kaskade.report_to_string report);
    dump_metrics metrics
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the rewrite decision (raw graph vs materialized view) and the operator tree \
          with estimated cardinalities, without executing the query.")
    Term.(const run $ verbose_arg $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg
          $ query_arg $ budget_arg $ shards_arg $ shard_policy_arg $ no_views $ json
          $ metrics_arg)

(* --op specs: "insert-vertex:TYPE", "insert-edge:SRC:DST:ETYPE",
   "delete-edge:SRC:DST:ETYPE" (vertex ids as printed by query
   results; props not settable from the command line). *)
let op_conv =
  let parse s =
    let int_of field v =
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (`Msg (Printf.sprintf "op %S: %s must be a vertex id, got %S" s field v))
    in
    match String.split_on_char ':' s with
    | [ "insert-vertex"; vtype ] -> Ok (Kaskade.Update.Insert_vertex { vtype; props = [] })
    | [ "insert-edge"; src; dst; etype ] ->
      Result.bind (int_of "src" src) (fun src ->
          Result.bind (int_of "dst" dst) (fun dst ->
              Ok (Kaskade.Update.Insert_edge { src; dst; etype; props = [] })))
    | [ "delete-edge"; src; dst; etype ] ->
      Result.bind (int_of "src" src) (fun src ->
          Result.bind (int_of "dst" dst) (fun dst ->
              Ok (Kaskade.Update.Delete_edge { src; dst; etype })))
    | _ ->
      Error
        (`Msg
          (Printf.sprintf
             "op %S: expected insert-vertex:TYPE, insert-edge:SRC:DST:ETYPE or \
              delete-edge:SRC:DST:ETYPE"
             s))
  in
  Arg.conv (parse, Kaskade.Update.pp_op)

let ops_arg =
  Arg.(value & opt_all op_conv [] & info [ "op" ] ~docv:"OP"
         ~doc:"Apply this update (repeatable): $(b,insert-vertex:TYPE), \
               $(b,insert-edge:SRC:DST:ETYPE) or $(b,delete-edge:SRC:DST:ETYPE).")

let random_ops_arg =
  Arg.(value & opt int 0 & info [ "random" ] ~docv:"N"
         ~doc:"Also apply N random schema-valid ops (half inserts, half deletes).")

let update_seed_arg =
  Arg.(value & opt int 7 & info [ "update-seed" ] ~docv:"S" ~doc:"Seed for --random ops.")

let query_opt_arg =
  Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY"
         ~doc:"Materialize views for this query first (knapsack under --budget), so the \
               update has a catalog to invalidate.")

let collect_ops ks specs random useed =
  let rand =
    if random <= 0 then []
    else
      Kaskade_gen.Mutate.random_ops ~inserts:((random + 1) / 2) ~deletes:(random / 2) ~seed:useed
        (Kaskade.graph ks)
  in
  specs @ rand

let print_freshness ks =
  match Kaskade.Update.freshness ks with
  | [] -> print_endline "catalog: empty"
  | entries ->
    List.iter
      (fun (n, f) -> Printf.printf "  %-26s %s\n" n (Kaskade_views.Catalog.freshness_label f))
      entries

let print_outcomes = function
  | [] -> print_endline "nothing to refresh: every view is fresh"
  | outcomes ->
    List.iter
      (fun (o : Kaskade.refresh_outcome) ->
        Printf.printf "refreshed %-26s %s (%d ops, %.4fs)\n" o.Kaskade.refreshed_view
          (Kaskade_views.Maintain.describe_strategy o.Kaskade.refresh_strategy)
          o.Kaskade.refresh_ops o.Kaskade.refresh_seconds)
      outcomes

let setup_live verbose name edges seed graph_file query budget data_dir fsync snapshot_every =
  setup_logs verbose;
  let g = load_or_generate graph_file name edges seed in
  (* Refreshes are driven explicitly from these subcommands. *)
  let ks =
    Kaskade.make
      ~config:
        {
          Kaskade.Config.default with
          auto_refresh = false;
          data_dir;
          fsync_policy = fsync;
          snapshot_every;
        }
      g
  in
  (match query with
  | Some qs -> ignore (select_and_materialize ks (parse_or_die qs) budget)
  | None -> ());
  ks

let update_cmd =
  let run verbose name edges seed graph_file query budget data_dir fsync snapshot_every specs
      random useed out metrics =
    let ks =
      setup_live verbose name edges seed graph_file query budget data_dir fsync snapshot_every
    in
    let ops = collect_ops ks specs random useed in
    if ops = [] then begin
      Printf.eprintf "nothing to apply: pass --op and/or --random N\n";
      exit 1
    end;
    (try Kaskade.Update.batch ops ks
     with Invalid_argument msg ->
       Printf.eprintf "update rejected: %s\n" msg;
       exit 1);
    let g' = Kaskade.graph ks in
    Printf.printf "applied %d ops: %d vertices, %d edges\n" (List.length ops)
      (Graph.n_vertices g') (Graph.n_edges g');
    print_freshness ks;
    (match out with
    | Some path ->
      Kaskade_graph.Gio.save g' path;
      Printf.printf "saved updated graph to %s\n" path
    | None -> ());
    dump_metrics metrics
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Apply an update batch through the live overlay, report which materialized views \
          went stale, and optionally save the updated graph. With --data-dir the batch is \
          write-ahead logged before it applies.")
    Term.(const run $ verbose_arg $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg
          $ query_opt_arg $ budget_arg $ data_dir_arg $ fsync_arg $ snapshot_every_arg
          $ ops_arg $ random_ops_arg $ update_seed_arg $ out_arg $ metrics_arg)

let refresh_cmd =
  let run verbose name edges seed graph_file query budget data_dir fsync snapshot_every specs
      random useed metrics =
    let ks =
      setup_live verbose name edges seed graph_file query budget data_dir fsync snapshot_every
    in
    let ops = collect_ops ks specs random useed in
    if ops <> [] then begin
      Kaskade.Update.batch ops ks;
      Printf.printf "applied %d ops\n" (List.length ops)
    end;
    print_freshness ks;
    print_outcomes (Kaskade.Update.refresh_views ks);
    dump_metrics metrics
  in
  Cmd.v
    (Cmd.info "refresh"
       ~doc:
         "Repair stale materialized views (incrementally where the delta allows, flagged \
          full rebuild otherwise) and report the strategy, ops absorbed and wall time per \
          view. Combine with --op/--random to stale the catalog first.")
    Term.(const run $ verbose_arg $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg
          $ query_opt_arg $ budget_arg $ data_dir_arg $ fsync_arg $ snapshot_every_arg
          $ ops_arg $ random_ops_arg $ update_seed_arg $ metrics_arg)

(* Durability subcommands -------------------------------------------- *)

let snapshot_cmd =
  let run verbose name edges seed graph_file query budget data_dir fsync snapshot_every specs
      random useed metrics =
    let ks =
      setup_live verbose name edges seed graph_file query budget (Some data_dir) fsync
        snapshot_every
    in
    let ops = collect_ops ks specs random useed in
    if ops <> [] then begin
      Kaskade.Update.batch ops ks;
      Printf.printf "applied %d ops (write-ahead logged)\n" (List.length ops)
    end;
    let path = Kaskade.snapshot ks in
    (match Kaskade.store ks with
    | Some s ->
      Printf.printf "snapshot written to %s (covers WAL seq %d)\n" path
        (Kaskade_store.Store.last_seq s)
    | None -> ());
    print_freshness ks;
    dump_metrics metrics
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Open (or create) a durable data directory, optionally materialize views for a \
          query and apply updates, then write a crash-atomic binary snapshot of the frozen \
          graph plus the whole view catalog — the anchor $(b,kaskade_cli recover) replays \
          the WAL tail onto.")
    Term.(const run $ verbose_arg $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg
          $ query_opt_arg $ budget_arg $ data_dir_req_arg $ fsync_arg $ snapshot_every_arg
          $ ops_arg $ random_ops_arg $ update_seed_arg $ metrics_arg)

let recover_cmd =
  let query_run_arg =
    Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY"
           ~doc:"Run this query on the recovered store (stale views are repaired first).")
  in
  let run verbose data_dir fsync snapshot_every query metrics =
    setup_logs verbose;
    let config =
      { Kaskade.Config.default with Kaskade.Config.fsync_policy = fsync; snapshot_every }
    in
    let ks = Kaskade.recover ~config data_dir in
    let g = Kaskade.graph ks in
    Format.printf "recovered from %s: %a@." data_dir Graph.pp_summary g;
    (match Kaskade.store ks with
    | Some s ->
      Printf.printf "snapshot seq %d, WAL seq %d\n" (Kaskade_store.Store.snapshot_seq s)
        (Kaskade_store.Store.last_seq s)
    | None -> ());
    let counter name = Kaskade_obs.Metrics.counter_value (Kaskade_obs.Metrics.counter name) in
    Printf.printf "replayed %d ops from the WAL tail, %d torn tail record(s) truncated\n"
      (counter "kaskade.recovery_replayed_ops")
      (counter "kaskade.recovery_truncated_records");
    print_freshness ks;
    (match query with
    | Some qs ->
      let q = parse_or_die qs in
      let result, how = query_or_die ks q in
      let rows =
        match result with
        | Kaskade_exec.Executor.Table t -> Kaskade_exec.Row.n_rows t
        | Kaskade_exec.Executor.Affected n -> n
      in
      Printf.printf "query: %d rows via %s\n" rows
        (match how with Kaskade.Raw -> "base graph" | Kaskade.Via_view v -> "view " ^ v)
    | None -> ());
    dump_metrics metrics
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild a Kaskade instance from a durable data directory: load the newest valid \
          snapshot (graph + view catalog with per-view freshness), replay the WAL tail \
          past its sequence number — truncating a torn final record from a crash \
          mid-append — and report what was recovered.")
    Term.(const run $ verbose_arg $ data_dir_req_arg $ fsync_arg $ snapshot_every_arg
          $ query_run_arg $ metrics_arg)

(* Workload telemetry subcommands ------------------------------------ *)

let queries_arg =
  Arg.(value & opt_all string [] & info [ "q"; "query" ] ~docv:"QUERY"
         ~doc:"Workload query (repeatable).")

let repeat_arg =
  Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
         ~doc:"Run each workload query N times.")

let require_queries cmd = function
  | [] ->
    Printf.eprintf "kaskade_cli %s: pass at least one -q QUERY\n" cmd;
    exit 1
  | queries -> List.map parse_or_die queries

(* Drive the workload through the facade's governed entry point: every
   run lands in the query log, including budget/semantic failures. *)
let run_workload ks qs repeat =
  List.iter (fun q -> for _ = 1 to repeat do ignore (Kaskade.query ks q) done) qs

let outcome_label (r : Kaskade_obs.Qlog.record) =
  match r.Kaskade_obs.Qlog.outcome with
  | Kaskade_obs.Qlog.View_hit v -> "via " ^ v
  | Kaskade_obs.Qlog.Fallback -> "fallback"
  | Kaskade_obs.Qlog.Failed l -> "FAILED " ^ l

let log_cmd =
  let no_views =
    Arg.(value & flag & info [ "no-views" ]
           ~doc:"Skip view selection/materialization; every query falls back to the base graph.")
  in
  let capacity =
    Arg.(value & opt (some int) None & info [ "capacity" ] ~docv:"N"
           ~doc:"Query-log ring capacity (default 512); older records fall off.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the captured log as JSONL to FILE ($(b,-) for stdout) — the format \
                 $(b,kaskade_cli advise --log) replays.")
  in
  let slow =
    Arg.(value & opt (some float) None & info [ "slow" ] ~docv:"MS"
           ~doc:"Slow-query view: only show/save records that took at least MS milliseconds. \
                 Also sets the threshold the $(b,kaskade.slow_queries) counter applies while \
                 the workload runs.")
  in
  let run verbose name edges seed graph_file queries repeat budget shards shard_policy no_views
      capacity out slow metrics =
    setup_logs verbose;
    let qs = require_queries "log" queries in
    (match capacity with Some c -> Kaskade_obs.Qlog.set_capacity c | None -> ());
    (match slow with
    | Some ms -> Kaskade_obs.Qlog.set_slow_threshold (ms /. 1000.0)
    | None -> ());
    let g = load_or_generate graph_file name edges seed in
    let ks = Kaskade.make ~config:{ Kaskade.Config.default with shards; shard_policy } g in
    if not no_views then begin
      let sel = Kaskade.select_views ks ~queries:qs ~budget_edges:budget in
      ignore (Kaskade.materialize_selected ks sel)
    end;
    run_workload ks qs repeat;
    let all = Kaskade_obs.Qlog.records () in
    let selected =
      match slow with
      | None -> all
      | Some ms ->
        List.filter (fun (r : Kaskade_obs.Qlog.record) -> r.seconds *. 1000.0 >= ms) all
    in
    let jsonl rs =
      String.concat ""
        (List.map
           (fun r ->
             Kaskade_obs.Report.to_string ~pretty:false (Kaskade_obs.Qlog.record_to_json r)
             ^ "\n")
           rs)
    in
    (match out with
    | Some "-" -> print_string (jsonl selected)
    | Some path ->
      let oc = open_out path in
      output_string oc (jsonl selected);
      close_out oc;
      Printf.printf "wrote %d records to %s\n" (List.length selected) path
    | None ->
      List.iter
        (fun (r : Kaskade_obs.Qlog.record) ->
          Printf.printf "%4d  %-36s %8d rows  %9.3fms  %s\n" r.Kaskade_obs.Qlog.seq
            (outcome_label r) r.Kaskade_obs.Qlog.rows
            (r.Kaskade_obs.Qlog.seconds *. 1000.0)
            r.Kaskade_obs.Qlog.query)
        selected);
    (match slow with
    | Some ms ->
      Printf.printf "slow filter: %d of %d records >= %.1fms\n" (List.length selected)
        (List.length all) ms
    | None -> ());
    (if out = Some "-" then prerr_endline else print_endline) (Kaskade_obs.Qlog.summary ());
    dump_metrics metrics
  in
  Cmd.v
    (Cmd.info "log"
       ~doc:
         "Run a workload through the view-based engine and show (or save as JSONL) the \
          structured query log: per query the routing outcome, rows, wall time and plan \
          fingerprint.")
    Term.(const run $ verbose_arg $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg
          $ queries_arg $ repeat_arg $ budget_arg $ shards_arg $ shard_policy_arg $ no_views
          $ capacity $ out $ slow $ metrics_arg)

let trace_cmd =
  let chrome =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Write the capture as Chrome trace-event JSON to FILE ($(b,-) for stdout); \
                 open in chrome://tracing or Perfetto. Without it the span tree prints as \
                 text.")
  in
  let run verbose name edges seed graph_file queries repeat budget shards shard_policy chrome =
    setup_logs verbose;
    let qs = require_queries "trace" queries in
    let g = load_or_generate graph_file name edges seed in
    let ks = Kaskade.make ~config:{ Kaskade.Config.default with shards; shard_policy } g in
    let (), spans =
      Kaskade_obs.Trace.collect (fun () ->
          let sel = Kaskade.select_views ks ~queries:qs ~budget_edges:budget in
          ignore (Kaskade.materialize_selected ks sel);
          run_workload ks qs repeat)
    in
    match chrome with
    | Some "-" -> print_endline (Kaskade_obs.Trace_export.to_chrome_string spans)
    | Some path ->
      let oc = open_out path in
      output_string oc (Kaskade_obs.Trace_export.to_chrome_string spans);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %d top-level spans to %s\n" (List.length spans) path
    | None ->
      List.iter (fun s -> Format.printf "%a" Kaskade_obs.Trace.pp s) spans
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Capture a span trace of selection, materialization and query execution — \
          including per-domain pool chunks — and export it for timeline viewers.")
    Term.(const run $ verbose_arg $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg
          $ queries_arg $ repeat_arg $ budget_arg $ shards_arg $ shard_policy_arg $ chrome)

let advise_cmd =
  let log_file =
    Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE"
           ~doc:"Replay a JSONL query log (from $(b,kaskade_cli log --out)) instead of \
                 running -q queries in-process.")
  in
  let advise_budget =
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"EDGES"
           ~doc:"View budget for the replayed selection (default: the graph's edge count).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the advice as JSON instead of text.")
  in
  let run verbose name edges seed graph_file queries repeat log_file advise_budget json =
    setup_logs verbose;
    let g = load_or_generate graph_file name edges seed in
    let ks = Kaskade.make g in
    let records =
      match log_file with
      | Some path -> begin
        match Kaskade_obs.Qlog.load path with
        | Ok rs -> Some rs
        | Error e ->
          Printf.eprintf "kaskade_cli advise: %s\n" e;
          exit 1
      end
      | None ->
        (* Synthesize the log by running the workload cold (no views
           materialized) — the advisor then reports what to add. *)
        let qs = require_queries "advise" queries in
        Kaskade_obs.Qlog.clear ();
        run_workload ks qs repeat;
        None
    in
    let a = Kaskade.Advisor.advise ?budget_edges:advise_budget ?records ks in
    if json then
      print_endline (Kaskade_obs.Report.to_string ~pretty:true (Kaskade.Advisor.to_json a))
    else Format.printf "@[<v>%a@]@." Kaskade.Advisor.pp a
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Replay an observed workload (the in-process query log or a saved JSONL capture) \
          through view enumeration + knapsack selection and recommend which materialized \
          views to add, keep or drop, with a cost-model calibration table.")
    Term.(const run $ verbose_arg $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg
          $ queries_arg $ repeat_arg $ log_file $ advise_budget $ json)

let serve_cmd =
  let socket =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix domain socket to listen on (an existing file is replaced).")
  in
  let max_sessions =
    Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"N"
           ~doc:"Live session cap; OPEN beyond it is shed with a typed overloaded error.")
  in
  let max_inflight =
    Arg.(value & opt int 4 & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Queries executing concurrently; excess requests wait in the admission queue.")
  in
  let max_queue =
    Arg.(value & opt int 16 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Admission queue depth; requests beyond it are shed with a typed \
                 overloaded error (counted by the kaskade.shed_requests metric).")
  in
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline-s" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline budget, covering queue wait plus execution.")
  in
  let sample_every =
    Arg.(value & opt float 1.0 & info [ "sample-every-s" ] ~docv:"SECONDS"
           ~doc:"Time-series sampler interval (counter deltas, gauge levels, histogram \
                 quantiles into a bounded ring the HEALTH verb reads).")
  in
  let timeseries_out =
    Arg.(value & opt (some string) None & info [ "timeseries" ] ~docv:"FILE"
           ~doc:"After shutdown, dump the sampler ring as JSONL to FILE.")
  in
  let run verbose name edges seed graph_file query budget data_dir fsync snapshot_every
      max_sessions max_inflight max_queue deadline sample_every timeseries_out socket metrics =
    setup_logs verbose;
    let g = load_or_generate graph_file name edges seed in
    let ks =
      Kaskade.make
        ~config:
          { Kaskade.Config.default with data_dir; fsync_policy = fsync; snapshot_every }
        g
    in
    (match query with
    | Some qs -> ignore (select_and_materialize ks (parse_or_die qs) budget)
    | None -> ());
    Printf.printf "serving %d vertices / %d edges on %s (max-sessions %d, max-inflight %d, \
                   max-queue %d)\n%!"
      (Graph.n_vertices g) (Graph.n_edges g) socket max_sessions max_inflight max_queue;
    let srv =
      Kaskade_serve.Server.create ~max_sessions ~max_inflight ~max_queue
        ?deadline_s:deadline ~sample_every_s:sample_every ~socket ks
    in
    Kaskade_serve.Server.run srv;
    (match timeseries_out with
    | Some path ->
      Kaskade_obs.Timeseries.save (Kaskade_serve.Server.timeseries srv) path;
      Printf.printf "wrote %d time-series points to %s\n"
        (Kaskade_obs.Timeseries.length (Kaskade_serve.Server.timeseries srv))
        path
    | None -> ());
    dump_metrics metrics
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve queries over a Unix socket: newline-delimited protocol (OPEN / Q / ROWS / \
          REPIN / UPDATE / STATS / HEALTH / METRICS / CLOSE / SHUTDOWN), one MVCC-pinned \
          session per connection, single-writer update serialization, and admission \
          control with typed shed responses. With --data-dir every UPDATE batch is \
          write-ahead logged before it applies.")
    Term.(const run $ verbose_arg $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg
          $ query_opt_arg $ budget_arg $ data_dir_arg $ fsync_arg $ snapshot_every_arg
          $ max_sessions $ max_inflight $ max_queue $ deadline $ sample_every
          $ timeseries_out $ socket $ metrics_arg)

(* Live-server inspection: both commands speak the wire protocol as an
   ordinary client, so they work against any running [serve]. *)

let client_socket_arg =
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix socket of a running $(b,kaskade_cli serve).")

let field kvs k = Option.value ~default:"-" (List.assoc_opt k kvs)

let health_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the raw response fields as JSON.")
  in
  let run verbose socket json =
    setup_logs verbose;
    let c = Kaskade_serve.Client.connect socket in
    let health = Kaskade_serve.Client.status (Kaskade_serve.Client.request c "HEALTH") in
    let stats = Kaskade_serve.Client.status (Kaskade_serve.Client.request c "STATS") in
    Kaskade_serve.Client.close c;
    if json then
      print_endline
        (Kaskade_obs.Report.to_string ~pretty:true
           (Kaskade_obs.Report.Obj
              (List.map
                 (fun (k, v) -> (k, Kaskade_obs.Report.Str v))
                 (List.filter (fun (k, _) -> k <> "_status") (health @ stats)))))
    else begin
      let reasons = field health "reasons" in
      Printf.printf "status: %s%s\n" (field health "status")
        (if reasons = "" || reasons = "-" then "" else "  (" ^ reasons ^ ")");
      Printf.printf "sessions %s  queue_depth %s  shed %s  shed_rate %s\n"
        (field health "sessions") (field health "queue_depth") (field stats "shed")
        (field health "shed_rate");
      Printf.printf "views: stale %s  breakers_open %s\n" (field health "stale_views")
        (field health "breakers_open");
      if List.mem_assoc "wal_seq" stats then
        Printf.printf "store: wal_seq %s  snapshot_seq %s  lag %s  wal_bytes %s\n"
          (field stats "wal_seq") (field stats "snapshot_seq") (field health "wal_lag")
          (field stats "wal_bytes");
      if List.mem_assoc "qps" health then
        Printf.printf "window: qps %s  queue_wait_p95 %ss\n" (field health "qps")
          (field health "queue_wait_p95")
    end;
    (* Scriptable verdict: ok 0, degraded 1, unhealthy 2. *)
    match field health "status" with
    | "ok" -> ()
    | "degraded" -> exit 1
    | _ -> exit 2
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "One-shot health probe of a running server (HEALTH + STATS over the socket): \
          typed status with reasons, admission/store/view gauges. Exits 0 when ok, 1 \
          when degraded, 2 when unhealthy.")
    Term.(const run $ verbose_arg $ client_socket_arg $ json)

let top_cmd =
  let interval =
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Refresh period.")
  in
  let count =
    Arg.(value & opt int 0 & info [ "count" ] ~docv:"N"
           ~doc:"Stop after N refreshes (0: run until interrupted or the server goes away).")
  in
  let run verbose socket interval count =
    setup_logs verbose;
    let c = Kaskade_serve.Client.connect socket in
    let interval = Stdlib.max 0.05 interval in
    let clear = Unix.isatty Unix.stdout in
    let tick i =
      let health = Kaskade_serve.Client.status (Kaskade_serve.Client.request c "HEALTH") in
      let stats = Kaskade_serve.Client.status (Kaskade_serve.Client.request c "STATS") in
      if clear then print_string "\027[2J\027[H";
      let now = Unix.localtime (Unix.gettimeofday ()) in
      Printf.printf "kaskade top — %s  refresh %.1fs  #%d  %02d:%02d:%02d\n" socket interval
        i now.Unix.tm_hour now.Unix.tm_min now.Unix.tm_sec;
      let reasons = field health "reasons" in
      Printf.printf "health   %s%s\n" (field health "status")
        (if reasons = "" || reasons = "-" then "" else "  (" ^ reasons ^ ")");
      Printf.printf "serve    sessions %s  queue_depth %s  shed %s  version %s\n"
        (field stats "sessions") (field stats "queue_depth") (field stats "shed")
        (field stats "version");
      if List.mem_assoc "qps" health then
        Printf.printf "window   qps %s  queue_wait_p95 %ss  shed_rate %s\n"
          (field health "qps") (field health "queue_wait_p95") (field health "shed_rate");
      Printf.printf "views    stale %s  breakers_open %s\n" (field health "stale_views")
        (field health "breakers_open");
      if List.mem_assoc "wal_seq" stats then
        Printf.printf "store    wal_seq %s  snapshot_seq %s  lag %s  wal_bytes %s\n"
          (field stats "wal_seq") (field stats "snapshot_seq") (field health "wal_lag")
          (field stats "wal_bytes");
      flush stdout
    in
    let rec loop i =
      tick i;
      if count = 0 || i < count then begin
        Unix.sleepf interval;
        loop (i + 1)
      end
    in
    (try loop 1 with End_of_file | Unix.Unix_error _ -> prerr_endline "server went away");
    Kaskade_serve.Client.close c
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running server: periodic HEALTH + STATS refresh showing \
          sessions, QPS, queue-wait p95, shed rate, view freshness and WAL growth.")
    Term.(const run $ verbose_arg $ client_socket_arg $ interval $ count)

let repl_cmd =
  let run verbose name edges seed graph_file budget =
    setup_logs verbose;
    let g = load_or_generate graph_file name edges seed in
    let ks = Kaskade.make g in
    Format.printf "%a@." Graph.pp_summary g;
    print_endline "kaskade repl — enter a query per line; :views to list, :quit to exit";
    let rec loop () =
      print_string "kaskade> ";
      match read_line () with
      | exception End_of_file -> ()
      | ":quit" | ":q" -> ()
      | ":views" ->
        List.iter
          (fun (e : Kaskade_views.Catalog.entry) ->
            Printf.printf "  %s (%d edges)\n"
              (Kaskade_views.View.name
                 e.Kaskade_views.Catalog.materialized.Kaskade_views.Materialize.view)
              e.Kaskade_views.Catalog.size_edges)
          (Kaskade_views.Catalog.entries (Kaskade.catalog ks));
        loop ()
      | "" -> loop ()
      | line -> begin
        (try
           let q = Kaskade.parse line in
           (* Opportunistically select + materialize for each new query. *)
           let sel = Kaskade.select_views ks ~queries:[ q ] ~budget_edges:budget in
           ignore (Kaskade.materialize_selected ks sel);
           let t0 = Kaskade_util.Mclock.now_s () in
           match Kaskade.query ks q with
           (* Governed failures (budget exhaustion, refresh crashes,
              injected faults) end the query, not the session. *)
           | Error e -> Printf.printf "%s\n" (Kaskade.Error.to_string e)
           | Ok (result, how) ->
             let dt = Kaskade_util.Mclock.now_s () -. t0 in
             let target_graph =
               match how with
               | Kaskade.Raw -> g
               | Kaskade.Via_view v ->
                 (Option.get (Kaskade_views.Catalog.find_by_name (Kaskade.catalog ks) v))
                   .Kaskade_views.Catalog.materialized.Kaskade_views.Materialize.graph
             in
             (match result with
             | Kaskade_exec.Executor.Table t ->
               Format.printf "%a@." (Kaskade_exec.Row.pp target_graph) t;
               Printf.printf "%d rows" (Kaskade_exec.Row.n_rows t)
             | Kaskade_exec.Executor.Affected n -> Printf.printf "updated %d entities" n);
             Printf.printf " (%.3fs, %s)\n"
               dt
               (match how with Kaskade.Raw -> "raw" | Kaskade.Via_view v -> "via " ^ v)
         with
        | Kaskade_query.Qparser.Parse_error { message; line; col } ->
          Printf.printf "%s\n" (render_parse_error message line col)
        | Kaskade_query.Analyze.Semantic_error msg -> Printf.printf "semantic error: %s\n" msg
        | Invalid_argument msg -> Printf.printf "error: %s\n" msg);
        loop ()
      end
    in
    loop ()
  in
  Cmd.v (Cmd.info "repl" ~doc:"Interactive query loop with transparent view selection.")
    Term.(const run $ verbose_arg $ dataset_arg $ edges_arg $ seed_arg $ graph_file_arg $ budget_arg)

let () =
  let doc = "Kaskade: graph views for efficient graph analytics (ICDE 2020 reproduction)." in
  let info = Cmd.info "kaskade_cli" ~doc in
  let group =
    Cmd.group info
      [
        generate_cmd;
        stats_cmd;
        enumerate_cmd;
        select_cmd;
        run_cmd;
        explain_cmd;
        update_cmd;
        refresh_cmd;
        snapshot_cmd;
        recover_cmd;
        log_cmd;
        trace_cmd;
        advise_cmd;
        serve_cmd;
        health_cmd;
        top_cmd;
        repl_cmd;
      ]
  in
  (* Governed failures (budget exhaustion, refresh crashes, I/O and
     injected faults) exit 1 with a one-line typed message instead of
     cmdliner's internal-error backtrace; truly unexpected exceptions
     still crash loudly. *)
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception e -> begin
    match Kaskade.Error.of_exn e with
    | Some err ->
      Printf.eprintf "kaskade_cli: %s\n" (Kaskade.Error.to_string err);
      exit 1
    | None -> raise e
  end
