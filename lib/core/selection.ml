open Kaskade_graph
open Kaskade_views
open Kaskade_exec
module Metrics = Kaskade_obs.Metrics
module Trace = Kaskade_obs.Trace

let m_runs = Metrics.counter ~help:"View selections performed" "selection.runs"

let m_candidates =
  Metrics.counter ~help:"Candidate views priced by the selector" "selection.candidates"

let m_chosen = Metrics.counter ~help:"Views chosen by the knapsack" "selection.chosen"

type solver = Branch_and_bound | Dp | Greedy

type candidate_report = {
  view : View.t;
  est_size : float;
  creation_cost : float;
  improvement : float;
  value : float;
  applicable_queries : int list;
  chosen : bool;
}

type t = {
  reports : candidate_report list;
  chosen : View.t list;
  budget_edges : int;
  total_weight : int;
  total_value : float;
}

(* Branching-factor override pricing a query over a not-yet-
   materialized view (see Cost.estimate). *)
let override_for stats schema ~alpha (view : View.t) =
  match view with
  | View.Connector (View.K_hop { src_type; dst_type; k }) ->
    let est = Estimator.typed_chain stats schema ~src_type ~dst_type ~k ~alpha:50.0 in
    let n_src =
      match Schema.vertex_type_id schema src_type with
      | ty -> float_of_int (Gstats.summary_of_type stats ty).count
      | exception Not_found -> 1.0
    in
    let conn_deg = if n_src > 0.0 then est /. n_src else est in
    fun label -> if String.equal label src_type then Some (Stdlib.max conn_deg 0.01) else None
  | View.Summarizer (View.Vertex_inclusion keep) ->
    let restricted = Schema.restrict schema ~keep_vertices:keep in
    let kept_edges =
      List.filter_map
        (fun (d : Schema.edge_def) ->
          match Schema.edge_type_id schema d.name with
          | et -> Some (d.src, et)
          | exception Not_found -> None)
        (Schema.edge_defs restricted)
    in
    fun label -> begin
      match Schema.vertex_type_id schema label with
      | ty ->
        let etypes = List.filter_map (fun (src, et) -> if src = label then Some et else None) kept_edges in
        Some (Stdlib.max (Gstats.out_degree_mean_for_etypes stats ~vtype:ty ~etypes) 0.01)
      | exception Not_found -> None
    end
  | _ ->
    let _ = alpha in
    fun _ -> None

let select ?(alpha = 95.0) ?(solver = Branch_and_bound) ?query_weights ?shard_stats stats
    schema ~queries ~budget_edges =
  Trace.with_span "selection"
    ~attrs:
      [ ("queries", string_of_int (List.length queries));
        ("budget_edges", string_of_int budget_edges) ]
  @@ fun () ->
  let weights =
    match query_weights with
    | Some ws when List.length ws = List.length queries -> ws
    | Some _ -> invalid_arg "Selection.select: query_weights length mismatch"
    | None -> List.map (fun _ -> 1.0) queries
  in
  let raw_costs = List.map (fun q -> Cost.eval_cost stats schema q) queries in
  (* Candidate views across the workload, deduplicated. *)
  let seen = Hashtbl.create 16 in
  let candidates = ref [] in
  List.iter
    (fun q ->
      List.iter
        (fun (c : Enumerate.candidate) ->
          let key = View.name c.view in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            candidates := c.view :: !candidates
          end)
        (Enumerate.enumerate schema q).Enumerate.candidates)
    queries;
  let candidates = List.rev !candidates in
  (* Per-candidate improvement over the workload. *)
  (* On a sharded store, a view's footprint is priced shard by shard —
     each shard's local statistics feed the same estimator and the
     knapsack weighs the sum. Percentile-based estimates are not
     additive across partitions, so this sizes skew (a shard holding
     the hub vertices prices higher than the global distribution
     suggests) at the cost of an upward bias on balanced partitions. *)
  let view_size =
    match shard_stats with
    | Some per_shard when Array.length per_shard > 1 ->
      fun view ->
        Array.fold_left
          (fun acc s -> acc +. Estimator.view_size s schema ~alpha view)
          0.0 per_shard
    | _ -> fun view -> Estimator.view_size stats schema ~alpha view
  in
  let reports =
    List.map
      (fun view ->
        let est_size = view_size view in
        let creation_cost = Stdlib.max (Estimator.creation_cost stats schema ~alpha view) 1.0 in
        let deg_override = override_for stats schema ~alpha view in
        let improvement = ref 0.0 in
        let applicable = ref [] in
        List.iteri
          (fun i q ->
            match Rewrite.rewrite schema q view with
            | Some rw ->
              let raw = List.nth raw_costs i in
              let rewritten_cost =
                Stdlib.max (Cost.eval_cost ~deg_override stats schema rw.Rewrite.rewritten) 1.0
              in
              let w = List.nth weights i in
              if raw > rewritten_cost then begin
                improvement := !improvement +. (w *. (raw /. rewritten_cost));
                applicable := i :: !applicable
              end
            | None -> ())
          queries;
        let value = !improvement /. creation_cost in
        {
          view;
          est_size;
          creation_cost;
          improvement = !improvement;
          value;
          applicable_queries = List.rev !applicable;
          chosen = false;
        })
      candidates
  in
  (* Knapsack over candidates with positive value. *)
  let items =
    List.mapi
      (fun id r ->
        { Kaskade_knapsack.Knapsack.id; weight = int_of_float (Stdlib.min r.est_size 1e15); value = r.value })
      reports
  in
  let solution =
    Trace.with_span "knapsack" ~attrs:[ ("items", string_of_int (List.length items)) ]
    @@ fun () ->
    match solver with
    | Branch_and_bound -> Kaskade_knapsack.Knapsack.solve_branch_and_bound ~capacity:budget_edges items
    | Dp -> Kaskade_knapsack.Knapsack.solve_dp ~capacity:budget_edges items
    | Greedy -> Kaskade_knapsack.Knapsack.solve_greedy ~capacity:budget_edges items
  in
  let chosen_ids = solution.Kaskade_knapsack.Knapsack.chosen in
  let reports =
    List.mapi (fun id (r : candidate_report) -> { r with chosen = List.mem id chosen_ids }) reports
    |> List.sort (fun a b -> compare b.value a.value)
  in
  let result =
    {
      reports;
      chosen =
        List.filter_map
          (fun (r : candidate_report) -> if r.chosen then Some r.view else None)
        reports;
      budget_edges;
      total_weight = solution.Kaskade_knapsack.Knapsack.total_weight;
      total_value = solution.Kaskade_knapsack.Knapsack.total_value;
    }
  in
  Metrics.incr m_runs;
  Metrics.incr ~by:(List.length result.reports) m_candidates;
  Metrics.incr ~by:(List.length result.chosen) m_chosen;
  Trace.add_attr "chosen" (String.concat " " (List.map View.name result.chosen));
  Trace.add_attr "total_weight" (string_of_int result.total_weight);
  result
