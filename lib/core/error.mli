(** Typed error taxonomy for the facade's [_result] entry points: the
    closed set of ways a Kaskade operation can fail that callers are
    expected to handle, with every internal exception class mapped
    onto it ({!of_exn}) so resource-governance failures surface as
    values, not escaped exceptions. *)

type t =
  | Parse of { message : string; line : int; col : int }
      (** The query text is not well-formed (from
          [Qparser.Parse_error], lexical errors included); positions
          are 1-based. *)
  | Plan of string
      (** The query is well-formed but cannot be planned or evaluated:
          semantic errors, unknown views/procedures, inference
          failures. *)
  | Budget_exhausted of { stage : Kaskade_util.Budget.stage; detail : string }
      (** A resource budget (deadline, step or row cap) fired; [stage]
          is the pipeline stage whose checkpoint noticed. The
          operation had no effect beyond wasted work. *)
  | Refresh_failed of { view : string; reason : string }
      (** A view refresh crashed. The catalog entry is back in
          [Stale] (with its delta intact) — never half-built — and the
          view's circuit breaker has recorded the failure. *)
  | Overloaded of { resource : string; capacity : int; in_use : int }
      (** Admission control shed the request: [resource] (e.g.
          ["sessions"], ["queue"]) was at [capacity] with [in_use]
          holders. The request had no effect; retry after backoff. *)
  | Io of string
      (** File loading/saving problems ([Gio.Format_error],
          [Kaskade_store.Codec.Corrupt], [End_of_file] from a
          truncated read, [Sys_error], [Unix.Unix_error]) and injected
          internal faults. *)

exception Refresh_error of { view : string; reason : string }
(** Raised by the facade's {e raising} refresh paths (e.g.
    [Kaskade.Update.refresh_views]) when a refresh crashes;
    {!of_exn} maps it to {!Refresh_failed}. *)

exception Overload of { resource : string; capacity : int; in_use : int }
(** Raised by admission control ({!Kaskade_serve.Session}) when a
    bounded resource is exhausted; {!of_exn} maps it to
    {!Overloaded}. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val label : t -> string
(** Constructor name in snake case — stable key for logs/metrics. *)

val of_exn : exn -> t option
(** Classify an exception; [None] for genuinely unexpected ones
    (assertion failures, [Out_of_memory], ...) which callers should
    let crash. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching exactly the exceptions {!of_exn} classifies
    — anything else propagates. The building block of
    [Kaskade.run_result]. *)
