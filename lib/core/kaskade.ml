module Facts = Facts
module Rules = Rules
module Enumerate = Enumerate
module Estimator = Estimator
module Selection = Selection
module Rewrite = Rewrite
module Error = Error

open Kaskade_graph
open Kaskade_views
open Kaskade_exec
module Breaker = Kaskade_util.Breaker
module Budget = Kaskade_util.Budget
module Pool = Kaskade_util.Pool
module Store = Kaskade_store.Store
module Wal = Kaskade_store.Wal

let log_src = Logs.Src.create "kaskade" ~doc:"Kaskade view selection and rewriting"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Explain = Kaskade_obs.Explain
module Metrics = Kaskade_obs.Metrics
module Report = Kaskade_obs.Report
module Trace = Kaskade_obs.Trace
module Tracectx = Kaskade_obs.Tracectx
module Qlog = Kaskade_obs.Qlog
module Trace_export = Kaskade_obs.Trace_export

let m_view_hits =
  Metrics.counter ~help:"Queries answered via a materialized view" "kaskade.view_hits"

let m_view_misses =
  Metrics.counter ~help:"Queries answered on the base graph" "kaskade.view_misses"

let h_query_seconds =
  Metrics.histogram ~help:"End-to-end Kaskade.run wall time (seconds)" "kaskade.query_seconds"

(* The same latency, split by how the query was answered — a view-hit
   p95 buried in an aggregate histogram is invisible next to base-graph
   fallbacks that run orders of magnitude longer. *)
let h_query_hit_seconds =
  Metrics.histogram ~help:"Kaskade.run wall time, queries answered via a view (seconds)"
    "kaskade.query_seconds.view_hit"

let h_query_fallback_seconds =
  Metrics.histogram ~help:"Kaskade.run wall time, queries answered on the base graph (seconds)"
    "kaskade.query_seconds.fallback"

let h_query_timeout_seconds =
  Metrics.histogram ~help:"Wall time spent by queries aborted on budget exhaustion (seconds)"
    "kaskade.query_seconds.timeout"

let m_view_refreshes =
  Metrics.counter ~help:"Materialized view refreshes (incremental or rebuild)"
    "kaskade.view_refreshes"

let g_stale_views =
  Metrics.gauge ~help:"Catalog entries currently not Fresh" "kaskade.stale_views"

let h_refresh_seconds =
  Metrics.histogram ~help:"Per-view refresh wall time (seconds)" "kaskade.refresh_seconds"

let m_query_timeouts =
  Metrics.counter ~help:"Queries aborted by budget exhaustion (deadline/step/row cap)"
    "kaskade.query_timeouts"

let m_refresh_failures =
  Metrics.counter ~help:"View refresh attempts that failed (view returned to Stale)"
    "kaskade.refresh_failures"

let m_breaker_open =
  Metrics.counter ~help:"Per-view circuit breaker open transitions" "kaskade.breaker_open"

let m_fallback_runs =
  Metrics.counter
    ~help:"Queries a quarantined (breaker-open) view could have served, answered on the base graph"
    "kaskade.fallback_runs"

let m_plan_cache_hits =
  Metrics.counter ~help:"Queries routed from the plan cache (planning skipped)"
    "kaskade.plan_cache_hits"

let m_plan_cache_misses =
  Metrics.counter ~help:"Queries planned from scratch (plan cache cold, stale, or unusable)"
    "kaskade.plan_cache_misses"

let m_plan_cache_invalidations =
  Metrics.counter ~help:"Plan-cache flushes caused by graph or catalog changes"
    "kaskade.plan_cache_invalidations"

let g_plan_cache_entries =
  Metrics.gauge ~help:"Live plan-cache entries" "kaskade.plan_cache_entries"

type run_target = Raw | Via_view of string

module Config = struct
  type t = {
    alpha : float;
    mode : Executor.mode;
    pool : Pool.t option;
    shards : int;
    shard_policy : Shard.policy;
    auto_refresh : bool;
    compact_threshold : float;
    breaker_threshold : int;
    breaker_cooldown_s : float;
    plan_cache : bool;
    data_dir : string option;
    fsync_policy : Wal.fsync_policy;
    snapshot_every : int;
  }

  let default =
    {
      alpha = 95.0;
      mode = Executor.Distinct_endpoints;
      pool = None;
      shards = 1;
      shard_policy = Shard.Hash;
      auto_refresh = true;
      compact_threshold = 0.25;
      breaker_threshold = 3;
      breaker_cooldown_s = 30.0;
      plan_cache = true;
      data_dir = None;
      fsync_policy = Wal.Always;
      snapshot_every = 512;
    }
end

(* One cached routing decision: everything [run]'s planning phase
   (repair scan, per-view rewrite + costing, pick) would recompute for
   a repeat of the same canonical query text, so a hit goes straight
   to the executor. [cp_epoch] ties the entry to the catalog/graph
   state it was planned under. *)
type cached_plan = {
  cp_target : run_target;
  cp_executed : Kaskade_query.Ast.t;  (* the rewriting for Via_view, the original for Raw *)
  cp_fingerprint : string;  (* plan-shape fingerprint of the planned run *)
  cp_epoch : int;
  mutable cp_hits : int;
}

and t = {
  overlay : Graph.Overlay.t;
  schema : Schema.t;
  catalog : Catalog.t;
  alpha : float;
  mode : Executor.mode;
  pool : Pool.t option;
  shards : int;  (* <= 1 = single-CSR storage, the default *)
  shard_policy : Shard.policy;
  auto_refresh : bool;
  compact_threshold : float;
  ctxs : (string, Executor.ctx) Hashtbl.t;  (* "" = base graph *)
  view_stats : (string, Gstats.t) Hashtbl.t;
  mutable base_stats : (int * Gstats.t) option;  (* keyed by overlay version *)
  mutable shard_stats : (int * Gstats.t array) option;  (* keyed by overlay version *)
  mutable last_selection : Selection.t option;
  breakers : (string, Breaker.t) Hashtbl.t;  (* per-view, keyed by view name *)
  breaker_threshold : int;
  breaker_cooldown_s : float;
  plan_cache : (string, cached_plan) Hashtbl.t;  (* keyed by Qlog.hash_query *)
  plan_cache_enabled : bool;
  mutable plan_epoch : int;  (* bumped on every graph/catalog change *)
  mutable store : Store.t option;  (* durability layer, when data_dir is set *)
}

let make ?(config = Config.default) graph =
  let t =
  {
    overlay = Graph.Overlay.create graph;
    schema = Graph.schema graph;
    catalog = Catalog.create ();
    alpha = config.Config.alpha;
    mode = config.Config.mode;
    pool = config.Config.pool;
    shards = Stdlib.max 1 config.Config.shards;
    shard_policy = config.Config.shard_policy;
    auto_refresh = config.Config.auto_refresh;
    compact_threshold = config.Config.compact_threshold;
    ctxs = Hashtbl.create 8;
    view_stats = Hashtbl.create 8;
    base_stats = None;
    shard_stats = None;
    last_selection = None;
    breakers = Hashtbl.create 8;
    breaker_threshold = config.Config.breaker_threshold;
    breaker_cooldown_s = config.Config.breaker_cooldown_s;
    plan_cache = Hashtbl.create 16;
    plan_cache_enabled = config.Config.plan_cache;
    plan_epoch = 0;
    store = None;
  }
  in
  (match config.Config.data_dir with
  | None -> ()
  | Some dir ->
    let store =
      Store.open_ ~fsync_policy:config.Config.fsync_policy
        ~snapshot_every:config.Config.snapshot_every dir
    in
    (* A data dir without a snapshot gets a seq-0 snapshot of the
       seed graph right away: the WAL records only deltas, so without
       this anchor {!recover} could never rebuild the base. *)
    if Store.snapshot_seq store < 0 then
      ignore (Store.write_snapshot store ~graph ~views:[]);
    t.store <- Some store);
  t

let create ?(alpha = 95.0) ?(mode = Executor.Distinct_endpoints) ?pool ?(shards = 1)
    ?(shard_policy = Shard.Hash) ?(auto_refresh = true) ?(compact_threshold = 0.25)
    ?(breaker_threshold = 3) ?(breaker_cooldown_s = 30.0) ?(plan_cache = true) graph =
  make
    ~config:
      {
        Config.alpha;
        mode;
        pool;
        shards;
        shard_policy;
        auto_refresh;
        compact_threshold;
        breaker_threshold;
        breaker_cooldown_s;
        plan_cache;
        data_dir = None;
        fsync_policy = Wal.Always;
        snapshot_every = 512;
      }
    graph

(* Any graph or catalog change makes every cached routing decision
   suspect — a view may newly apply, stop applying, or have different
   statistics — so the whole cache is dropped and the epoch moves on
   (belt and braces: a resurrected key can never revive a stale
   entry). *)
let invalidate_plans t =
  t.plan_epoch <- t.plan_epoch + 1;
  (* Gauges are process-global, so only zero the entry gauge when this
     facade actually dropped entries: an instance that never cached
     (plan cache disabled, or nothing stored yet) must not erase the
     count published by a sibling instance in the same process. *)
  if Hashtbl.length t.plan_cache > 0 then begin
    Metrics.incr m_plan_cache_invalidations;
    Hashtbl.reset t.plan_cache;
    Metrics.set_gauge g_plan_cache_entries 0.0
  end

(* The cache only serves (and only fills) when the catalog is settled:
   with stale views under [auto_refresh] every run must reach [repair]
   — retrying failed refreshes and half-open breaker probes — so
   caching around it would freeze degradation. *)
let plan_cache_usable t =
  t.plan_cache_enabled && not (t.auto_refresh && Catalog.n_stale t.catalog > 0)

let plan_cache_lookup t key =
  if not (plan_cache_usable t) then None
  else
    match Hashtbl.find_opt t.plan_cache key with
    | Some cp when cp.cp_epoch = t.plan_epoch -> Some cp
    | _ -> None

let plan_cache_store t key ~target ~executed ~fingerprint =
  if plan_cache_usable t then begin
    Hashtbl.replace t.plan_cache key
      {
        cp_target = target;
        cp_executed = executed;
        cp_fingerprint = fingerprint;
        cp_epoch = t.plan_epoch;
        cp_hits = 0;
      };
    Metrics.set_gauge g_plan_cache_entries (float_of_int (Hashtbl.length t.plan_cache))
  end

let graph t = Graph.Overlay.graph t.overlay
let overlay t = t.overlay
let version t = Graph.Overlay.version t.overlay
let schema t = t.schema

let stats t =
  let v = Graph.Overlay.version t.overlay in
  match t.base_stats with
  | Some (v', s) when v' = v -> s
  | _ ->
    let s = Gstats.compute ?pool:t.pool (graph t) in
    t.base_stats <- Some (v, s);
    s

let catalog t = t.catalog
let store t = t.store

(* Durability -------------------------------------------------------- *)

let catalog_views t =
  List.map
    (fun (e : Catalog.entry) -> (e.Catalog.materialized, e.Catalog.freshness))
    (Catalog.entries t.catalog)

let snapshot t =
  match t.store with
  | None -> invalid_arg "Kaskade.snapshot: no data_dir configured"
  | Some s -> Store.write_snapshot s ~graph:(graph t) ~views:(catalog_views t)

let maybe_snapshot t =
  match t.store with
  | Some s when Store.should_snapshot s ->
    let path = Store.write_snapshot s ~graph:(graph t) ~views:(catalog_views t) in
    Log.info (fun k -> k "snapshot cadence reached: wrote %s" path)
  | _ -> ()

let parse = Kaskade_query.Qparser.parse

let base_ctx t =
  match Hashtbl.find_opt t.ctxs "" with
  | Some ctx -> ctx
  | None ->
    let ctx =
      Executor.create_live ~mode:t.mode ~planner:true ?pool:t.pool
        ~shard_policy:t.shard_policy ~shards:t.shards t.overlay
    in
    Hashtbl.add t.ctxs "" ctx;
    ctx

let ctx_for t name g =
  match Hashtbl.find_opt t.ctxs name with
  | Some ctx -> ctx
  | None ->
    let ctx =
      Executor.create ~mode:t.mode ~planner:true ?pool:t.pool ~shard_policy:t.shard_policy
        ~shards:t.shards g
    in
    Hashtbl.add t.ctxs name ctx;
    ctx

(* The base graph's sharded layer, when this facade was created with
   [shards > 1]: owned by the base executor context, so materialize,
   refresh and selection all read the same partitioning (re-derived by
   the context after every overlay version change). *)
let base_shards t = if t.shards <= 1 then None else Executor.shards (base_ctx t)

let shard_stats t =
  match base_shards t with
  | None -> None
  | Some sh ->
    let v = Graph.Overlay.version t.overlay in
    (match t.shard_stats with
    | Some (v', ss) when v' = v -> Some ss
    | _ ->
      let ss = Gstats.per_shard ?pool:t.pool sh in
      t.shard_stats <- Some (v, ss);
      Some ss)

let view_ctx t name =
  match Catalog.find_by_name t.catalog name with
  | Some entry -> ctx_for t name entry.Catalog.materialized.Materialize.graph
  | None -> raise Not_found

let stats_for_view t name g =
  match Hashtbl.find_opt t.view_stats name with
  | Some s -> s
  | None ->
    let s = Gstats.compute ?pool:t.pool g in
    Hashtbl.add t.view_stats name s;
    s

(* Refreshing (or re-materializing) view [name] invalidates its
   executor context and statistics. *)
let drop_view_caches t name =
  Hashtbl.remove t.ctxs name;
  Hashtbl.remove t.view_stats name

let update_stale_gauge t =
  Metrics.set_gauge g_stale_views (float_of_int (Catalog.n_stale t.catalog))

(* Per-view circuit breaker, created lazily (Closed) on first use. *)
let breaker_for t name =
  match Hashtbl.find_opt t.breakers name with
  | Some b -> b
  | None ->
    let b = Breaker.create ~threshold:t.breaker_threshold ~cooldown_s:t.breaker_cooldown_s () in
    Hashtbl.add t.breakers name b;
    b

(* A quarantined view is one whose breaker refuses refresh attempts:
   it stays Stale, so the planner (which refuses non-Fresh views)
   transparently routes its queries to the base graph. *)
let quarantined t name = not (Breaker.allow (breaker_for t name))

let breaker_states t =
  List.filter_map
    (fun (e : Catalog.entry) ->
      let name = View.name e.Catalog.materialized.Materialize.view in
      match Hashtbl.find_opt t.breakers name with
      | Some b when Breaker.state b <> Breaker.Closed || Breaker.failures b > 0 ->
        Some (name, b)
      | _ -> None)
    (Catalog.entries t.catalog)

let enumerate_views ?budget t q = Enumerate.enumerate ?budget t.schema q

let select_views ?solver ?query_weights t ~queries ~budget_edges =
  let sel =
    Selection.select ~alpha:t.alpha ?solver ?query_weights ?shard_stats:(shard_stats t)
      (stats t) t.schema ~queries ~budget_edges
  in
  Log.info (fun k ->
      k "selection over %d queries (budget %d edges): chose [%s], weight %d"
        (List.length queries) budget_edges
        (String.concat "; " (List.map View.name sel.Selection.chosen))
        sel.Selection.total_weight);
  t.last_selection <- Some sel;
  sel

let materialize t view =
  match Catalog.find t.catalog view with
  | Some entry when entry.Catalog.freshness = Catalog.Fresh -> entry
  | _ ->
    let m = Materialize.materialize ?pool:t.pool ?shards:(base_shards t) (graph t) view in
    Log.info (fun k ->
        k "materialized %s: %d vertices, %d edges (cost %.0f)" (View.name view)
          (Graph.n_vertices m.Materialize.graph)
          (Graph.n_edges m.Materialize.graph)
          m.Materialize.build_cost);
    Catalog.add t.catalog m;
    drop_view_caches t (View.name view);
    invalidate_plans t;
    update_stale_gauge t;
    Option.get (Catalog.find t.catalog view)

let materialize_selected t (sel : Selection.t) = List.map (materialize t) sel.Selection.chosen

(* Updates & refresh ------------------------------------------------- *)

type refresh_outcome = {
  refreshed_view : string;
  refresh_strategy : Maintain.strategy;
  refresh_ops : int;
  refresh_seconds : float;
}

(* One refresh attempt on one entry, with the full failure protocol:

   - a breaker-open (quarantined) view is skipped outright — it stays
     Stale and the planner routes around it until the cooldown admits
     a half-open probe;
   - on success the breaker resets;
   - on failure the entry transitions [Rebuilding -> Stale ops]
     ([Catalog.abort_refresh]) so the pending delta survives and the
     catalog never wedges, the failure is metered and charged to the
     breaker, and the exception is swallowed ([swallow], the
     degradation path of [run]) or rethrown as [Error.Refresh_error]
     (the explicit [Update.refresh_views] path);
   - budget exhaustion is the {e query's} deadline, not the view's
     fault: the entry is restored but the breaker is not charged, and
     the exception always propagates. *)
let refresh_entry ?budget ~swallow t (entry : Catalog.entry) =
  let name = View.name entry.Catalog.materialized.Materialize.view in
  if quarantined t name then begin
    Log.debug (fun k -> k "skipping refresh of %s: circuit breaker open" name);
    None
  end
  else begin
    let ops = Catalog.begin_refresh entry in
    if ops = [] then None
    else begin
      let t0 = Trace.now_s () in
      let base_after = graph t in
      match
        Maintain.refresh ?pool:t.pool ?budget ?shards:(base_shards t) base_after
          ~view:entry.Catalog.materialized ~ops
      with
      | m, strategy ->
        Catalog.finish_refresh t.catalog entry m;
        Breaker.record_success (breaker_for t name);
        drop_view_caches t name;
        invalidate_plans t;
        let dt = Trace.now_s () -. t0 in
        Metrics.incr m_view_refreshes;
        Metrics.observe h_refresh_seconds dt;
        update_stale_gauge t;
        Log.info (fun k ->
            k "refreshed %s in %.3fs via %s (%d ops)" name dt
              (Maintain.describe_strategy strategy)
              (List.length ops));
        Some
          {
            refreshed_view = name;
            refresh_strategy = strategy;
            refresh_ops = List.length ops;
            refresh_seconds = dt;
          }
      | exception e ->
        Catalog.abort_refresh entry ops;
        drop_view_caches t name;
        invalidate_plans t;
        (match e with
        | Budget.Exhausted _ -> raise e
        | _ ->
          Metrics.incr m_refresh_failures;
          if Breaker.record_failure (breaker_for t name) then begin
            Metrics.incr m_breaker_open;
            Log.warn (fun k ->
                k "circuit breaker opened for %s after %d consecutive failures (cooldown %.0fs)"
                  name t.breaker_threshold t.breaker_cooldown_s)
          end;
          let reason = Printexc.to_string e in
          Log.warn (fun k -> k "refresh of %s failed: %s" name reason);
          if swallow then None
          else raise (Error.Refresh_error { view = name; reason }))
    end
  end

let refresh_views ?budget ?names t =
  let selected =
    match names with
    | None -> Catalog.entries t.catalog
    | Some names ->
      List.map
        (fun n ->
          match Catalog.find_by_name t.catalog n with
          | Some e -> e
          | None -> raise Not_found)
        names
  in
  List.filter_map (refresh_entry ?budget ~swallow:false t) selected

(* Every query-answering entry point funnels through here: with
   [auto_refresh] stale views are repaired before planning; without
   it they are left stale and the planner skips them. Refresh
   {e failures} are swallowed (the view stays quarantined/stale and
   the query degrades to the base graph); budget exhaustion still
   propagates. *)
let repair ?budget t =
  if t.auto_refresh && Catalog.n_stale t.catalog > 0 then
    List.filter_map (refresh_entry ?budget ~swallow:true t) (Catalog.entries t.catalog)
  else []

let apply_ops t ops =
  (* WAL-before-apply: the *requested* batch is made durable before
     the overlay sees it. Replay is deterministic — applying the same
     requested ops to the same state yields the same effective ops —
     so logging requests rather than effects is sound, and a crash
     between append and apply merely replays a batch that never took
     effect. *)
  (match t.store with
  | Some s when ops <> [] -> ignore (Store.append s ops)
  | _ -> ());
  let effective = Graph.Overlay.apply t.overlay ops in
  Catalog.mark_stale t.catalog effective;
  if effective <> [] then invalidate_plans t;
  update_stale_gauge t;
  if Graph.Overlay.needs_compact ~threshold:t.compact_threshold t.overlay then begin
    Log.info (fun k ->
        k "compacting overlay (ratio %.3f over threshold %.3f)"
          (Graph.Overlay.overlay_ratio t.overlay)
          t.compact_threshold);
    ignore (Graph.Overlay.compact t.overlay)
  end;
  maybe_snapshot t;
  effective

module Update = struct
  type op = Graph.Overlay.op =
    | Insert_vertex of { vtype : string; props : (string * Value.t) list }
    | Insert_edge of { src : int; dst : int; etype : string; props : (string * Value.t) list }
    | Delete_edge of { src : int; dst : int; etype : string }

  let pp_op = Graph.Overlay.pp_op

  let insert_vertex t ~vtype ?(props = []) () =
    (* This path bypasses [apply_ops] (it must return the new id), so
       it carries its own WAL-before-apply step. *)
    (match t.store with
    | Some s -> ignore (Store.append s [ Insert_vertex { vtype; props } ])
    | None -> ());
    let id = Graph.Overlay.insert_vertex t.overlay ~vtype ~props () in
    Catalog.mark_stale t.catalog [ Insert_vertex { vtype; props } ];
    invalidate_plans t;
    update_stale_gauge t;
    maybe_snapshot t;
    id

  let insert_edge t ~src ~dst ~etype ?(props = []) () =
    ignore (apply_ops t [ Insert_edge { src; dst; etype; props } ])

  let delete_edge t ~src ~dst ~etype =
    apply_ops t [ Delete_edge { src; dst; etype } ] <> []

  let batch ops t = ignore (apply_ops t ops)
  let refresh_views = refresh_views

  let freshness t =
    List.map
      (fun (e : Catalog.entry) ->
        (View.name e.Catalog.materialized.Materialize.view, e.Catalog.freshness))
      (Catalog.entries t.catalog)
end

(* Planning ---------------------------------------------------------- *)

(* Every materialized view priced against [q]: the rewriting and its
   estimated cost over the view's own stats, or [None] when the view
   cannot answer the query — including when it is not [Fresh]: a
   stale view may be missing (or wrongly containing) exactly the
   edges the query asks about, so the planner refuses it outright. *)
let eval_candidates t q =
  let raw_cost = Cost.eval_cost (stats t) t.schema q in
  let cands =
    List.map
      (fun (entry : Catalog.entry) ->
        let view = entry.Catalog.materialized.Materialize.view in
        if entry.Catalog.freshness <> Catalog.Fresh then (entry, None)
        else
          match Rewrite.rewrite t.schema q view with
          | Some rw ->
            let vg = entry.Catalog.materialized.Materialize.graph in
            let vstats = stats_for_view t (View.name view) vg in
            let cost = Cost.eval_cost vstats (Graph.schema vg) rw.Rewrite.rewritten in
            (entry, Some (rw, cost))
          | None -> (entry, None))
      (Catalog.entries t.catalog)
  in
  (raw_cost, cands)

(* Lowest rewritten cost strictly below the raw cost; first entry wins
   ties (catalog order is materialization order). *)
let pick_best raw_cost cands =
  List.fold_left
    (fun best (entry, outcome) ->
      match outcome with
      | Some (rw, cost) when cost < raw_cost -> begin
        match best with
        | Some (_, _, best_cost) when best_cost <= cost -> best
        | _ -> Some (rw, entry, cost)
      end
      | _ -> best)
    None cands

let best_rewriting t q =
  ignore (repair t);
  let raw_cost, cands = eval_candidates t q in
  Option.map (fun (rw, entry, _) -> (rw, entry)) (pick_best raw_cost cands)

let run_raw ?budget t q = Executor.run ?budget (base_ctx t) q

let run_on_view ?budget t name q =
  match Catalog.find_by_name t.catalog name with
  | Some entry ->
    (match entry.Catalog.freshness with
    | Catalog.Fresh -> ()
    | _ when t.auto_refresh ->
      ignore (refresh_entry ?budget ~swallow:false t entry);
      (match entry.Catalog.freshness with
      | Catalog.Fresh -> ()
      | _ ->
        raise
          (Error.Refresh_error { view = name; reason = "quarantined by open circuit breaker" }))
    | f ->
      invalid_arg
        (Printf.sprintf "Kaskade.run_on_view: view %s is %s; refresh it first" name
           (Catalog.freshness_label f)));
    Executor.run ?budget (view_ctx t name) q
  | None -> raise Not_found

(* When the planner settles on the base graph, record whether a
   quarantined view was the reason: some non-fresh entry whose breaker
   is open could have rewritten this query. That is the degradation
   the breaker bought — visible as [kaskade.fallback_runs]. *)
let note_fallback t q cands =
  let lost_to_quarantine =
    List.exists
      (fun ((entry : Catalog.entry), _) ->
        let view = entry.Catalog.materialized.Materialize.view in
        entry.Catalog.freshness <> Catalog.Fresh
        && quarantined t (View.name view)
        && Rewrite.rewrite t.schema q view <> None)
      cands
  in
  if lost_to_quarantine then Metrics.incr m_fallback_runs

let result_rows = function
  | Executor.Table tbl -> Row.n_rows tbl
  | Executor.Affected n -> n

(* Telemetry tail shared by [run] and [profile]: the outcome-split
   latency histograms plus one {!Qlog} record per query — the canonical
   query text is [Pretty.to_string] output, which re-parses, so the
   advisor can replay the log through enumeration + selection. Failure
   paths log too ([plan] absent when planning itself failed). *)
let log_query ?budget ?plan t0 q ~outcome ~rows =
  let dt = Trace.now_s () -. t0 in
  Metrics.observe h_query_seconds dt;
  (match outcome with
  | Qlog.View_hit _ -> Metrics.observe h_query_hit_seconds dt
  | Qlog.Fallback -> Metrics.observe h_query_fallback_seconds dt
  | Qlog.Failed _ -> ());
  ignore
    (Qlog.add
       ?budget:(Option.map Budget.describe budget)
       ?plan
       ~query:(Kaskade_query.Pretty.to_string q)
       ~outcome ~rows ~seconds:dt ())

let log_failure ?budget t0 q e =
  (match e with
  | Budget.Exhausted _ ->
    Metrics.incr m_query_timeouts;
    Metrics.observe h_query_timeout_seconds (Trace.now_s () -. t0)
  | _ -> ());
  match Error.of_exn e with
  | Some err -> log_query ?budget t0 q ~outcome:(Qlog.Failed (Error.label err)) ~rows:0
  | None -> ()

let run ?budget t q =
  let t0 = Trace.now_s () in
  (* The cache key is the same FNV-1a hash of the canonical query text
     that groups qlog records — two spellings of one canonical query
     share an entry. *)
  let key = Qlog.hash_query (Kaskade_query.Pretty.to_string q) in
  let body () =
    Budget.check budget Budget.Plan;
    match plan_cache_lookup t key with
    | Some cp ->
      (* Warm path: the repair scan, per-view rewrite + costing, and
         pick are all skipped — epoch validity guarantees the catalog
         has not changed since this routing was planned. *)
      Metrics.incr m_plan_cache_hits;
      cp.cp_hits <- cp.cp_hits + 1;
      (match cp.cp_target with
      | Via_view name ->
        Metrics.incr m_view_hits;
        let result, plan =
          Executor.run_explained ~profile:false ?budget (view_ctx t name) cp.cp_executed
        in
        ((result, Via_view name), plan)
      | Raw ->
        Metrics.incr m_view_misses;
        let result, plan =
          Executor.run_explained ~profile:false ?budget (base_ctx t) cp.cp_executed
        in
        ((result, Raw), plan))
    | None ->
      Metrics.incr m_plan_cache_misses;
      ignore (repair ?budget t);
      let raw_cost, cands = eval_candidates t q in
      (match pick_best raw_cost cands with
      | Some (rw, entry, _) ->
        let name = View.name entry.Catalog.materialized.Materialize.view in
        Log.debug (fun k ->
            k "answering via %s: %s" name (Kaskade_query.Pretty.to_string rw.Rewrite.rewritten));
        Metrics.incr m_view_hits;
        (* [run_explained ~profile:false] instead of [run]: same
           execution, but the (cheap, already-costed) plan tree comes
           back for the query log's plan fingerprint. *)
        let result, plan =
          Executor.run_explained ~profile:false ?budget (view_ctx t name) rw.Rewrite.rewritten
        in
        plan_cache_store t key ~target:(Via_view name) ~executed:rw.Rewrite.rewritten
          ~fingerprint:(Qlog.fingerprint plan);
        ((result, Via_view name), plan)
      | None ->
        Log.debug (fun k -> k "no materialized view helps; answering on the base graph");
        Metrics.incr m_view_misses;
        note_fallback t q cands;
        let result, plan = Executor.run_explained ~profile:false ?budget (base_ctx t) q in
        plan_cache_store t key ~target:Raw ~executed:q ~fingerprint:(Qlog.fingerprint plan);
        ((result, Raw), plan))
  in
  (* Inherit the serving layer's request context, or mint one for a
     direct facade call — every span under [body] and the qlog record
     then share one trace id. *)
  Tracectx.with_minted (fun _trace ->
      match body () with
      | ((result, target) as out), plan ->
        let outcome = match target with Via_view v -> Qlog.View_hit v | Raw -> Qlog.Fallback in
        log_query ?budget ~plan t0 q ~outcome ~rows:(result_rows result);
        out
      | exception e ->
        log_failure ?budget t0 q e;
        raise e)

(* EXPLAIN / PROFILE ------------------------------------------------- *)

type view_candidate = {
  cand_view : string;
  cand_edges : int;
  cand_cost : float option;
  cand_freshness : Catalog.freshness;
  cand_refresh : string option;
  cand_breaker : string option;
}

type report = {
  target : run_target;
  raw_cost : float;
  executed : Kaskade_query.Ast.t;
  candidates : view_candidate list;
  refreshes : refresh_outcome list;
  enum_candidates : string list;
  enum_inference_steps : int;
  selection : Selection.t option;
  budget : string option;
  plan_cache : string option;
  plan : Explain.node;
}

(* Cache state for the report: what a [run] of this query would do
   right now. [None] when the cache is disabled. *)
let plan_cache_state t q =
  if not t.plan_cache_enabled then None
  else
    let key = Qlog.hash_query (Kaskade_query.Pretty.to_string q) in
    match plan_cache_lookup t key with
    | Some cp ->
      Some
        (Printf.sprintf "warm (%d hit%s, plan %s)" cp.cp_hits
           (if cp.cp_hits = 1 then "" else "s")
           cp.cp_fingerprint)
    | None -> Some "cold"

let make_report ?budget t q ~target ~raw_cost ~cands ~refreshes ~executed ~plan =
  (* Report building is observability, so the enumeration below runs
     outside the caller's budget — a PROFILE whose query just fit its
     deadline still gets its report. *)
  let e = Enumerate.enumerate t.schema q in
  let base_after = graph t in
  {
    target;
    raw_cost;
    executed;
    candidates =
      List.map
        (fun ((entry : Catalog.entry), outcome) ->
          let name = View.name entry.Catalog.materialized.Materialize.view in
          let refresh_decision =
            match entry.Catalog.freshness with
            | Catalog.Fresh -> None
            | _ when quarantined t name -> Some "quarantined (breaker open)"
            | Catalog.Stale ops ->
              Some
                (Maintain.describe_strategy
                   (Maintain.plan base_after ~view:entry.Catalog.materialized ~ops))
            | Catalog.Rebuilding -> Some "refresh in flight"
          in
          let breaker =
            match Hashtbl.find_opt t.breakers name with
            | Some b when Breaker.state b <> Breaker.Closed || Breaker.failures b > 0 ->
              Some (Breaker.describe b)
            | _ -> None
          in
          {
            cand_view = name;
            cand_edges = Graph.n_edges entry.Catalog.materialized.Materialize.graph;
            cand_cost = Option.map snd outcome;
            cand_freshness = entry.Catalog.freshness;
            cand_refresh = refresh_decision;
            cand_breaker = breaker;
          })
        cands;
    refreshes;
    enum_candidates =
      List.map (fun (c : Enumerate.candidate) -> View.name c.Enumerate.view) e.Enumerate.candidates;
    enum_inference_steps = e.Enumerate.inference_steps;
    selection = t.last_selection;
    budget = Option.map Budget.describe budget;
    plan_cache = plan_cache_state t q;
    plan;
  }

let explain ?budget t q =
  (* Read-only: stale views are reported (with the refresh strategy a
     repair would use), never repaired. [budget] is reported, not
     consumed — EXPLAIN does no graph work worth charging. *)
  let raw_cost, cands = eval_candidates t q in
  match pick_best raw_cost cands with
  | Some (rw, entry, _) ->
    let name = View.name entry.Catalog.materialized.Materialize.view in
    let plan = Executor.explain (view_ctx t name) rw.Rewrite.rewritten in
    make_report ?budget t q ~target:(Via_view name) ~raw_cost ~cands ~refreshes:[]
      ~executed:rw.Rewrite.rewritten ~plan
  | None ->
    let plan = Executor.explain (base_ctx t) q in
    make_report ?budget t q ~target:Raw ~raw_cost ~cands ~refreshes:[] ~executed:q ~plan

let profile ?budget t q =
  let t0 = Trace.now_s () in
  let body () =
    Budget.check budget Budget.Plan;
    let refreshes = repair ?budget t in
    let raw_cost, cands = eval_candidates t q in
    let result, target, executed, plan =
      match pick_best raw_cost cands with
      | Some (rw, entry, _) ->
        let name = View.name entry.Catalog.materialized.Materialize.view in
        Metrics.incr m_view_hits;
        let result, plan =
          Executor.run_explained ~profile:true ?budget (view_ctx t name) rw.Rewrite.rewritten
        in
        (result, Via_view name, rw.Rewrite.rewritten, plan)
      | None ->
        Metrics.incr m_view_misses;
        note_fallback t q cands;
        let result, plan = Executor.run_explained ~profile:true ?budget (base_ctx t) q in
        (result, Raw, q, plan)
    in
    (result, make_report ?budget t q ~target ~raw_cost ~cands ~refreshes ~executed ~plan)
  in
  Tracectx.with_minted (fun _trace ->
      match body () with
      | (result, report) as out ->
        let outcome =
          match report.target with Via_view v -> Qlog.View_hit v | Raw -> Qlog.Fallback
        in
        log_query ?budget ~plan:report.plan t0 q ~outcome ~rows:(result_rows result);
        out
      | exception e ->
        log_failure ?budget t0 q e;
        raise e)

let pp_report ppf r =
  let open Format in
  (match r.target with
  | Raw -> fprintf ppf "target: base graph (no materialized view helps)@,"
  | Via_view v -> fprintf ppf "target: materialized view %s@," v);
  fprintf ppf "query: %s@," (Kaskade_query.Pretty.to_string r.executed);
  fprintf ppf "raw-graph cost: %.6g@," r.raw_cost;
  (match r.budget with
  | Some b -> fprintf ppf "budget: %s@," b
  | None -> ());
  (match r.plan_cache with
  | Some s -> fprintf ppf "plan cache: %s@," s
  | None -> ());
  if r.refreshes <> [] then begin
    fprintf ppf "refreshed before planning:@,";
    List.iter
      (fun o ->
        fprintf ppf "  %-32s %s in %.3fs (%d ops)@," o.refreshed_view
          (Maintain.describe_strategy o.refresh_strategy)
          o.refresh_seconds o.refresh_ops)
      r.refreshes
  end;
  if r.candidates = [] then fprintf ppf "rewrite candidates: none materialized@,"
  else begin
    fprintf ppf "rewrite candidates:@,";
    List.iter
      (fun c ->
        let chosen =
          match r.target with Via_view v when String.equal v c.cand_view -> "  <- chosen" | _ -> ""
        in
        let freshness =
          match c.cand_freshness with
          | Catalog.Fresh -> ""
          | f -> begin
            match c.cand_refresh with
            | Some d -> Printf.sprintf " [%s; would %s]" (Catalog.freshness_label f) d
            | None -> Printf.sprintf " [%s]" (Catalog.freshness_label f)
          end
        in
        let freshness =
          match c.cand_breaker with
          | Some b -> Printf.sprintf "%s [breaker: %s]" freshness b
          | None -> freshness
        in
        match c.cand_cost with
        | Some cost ->
          fprintf ppf "  %-32s %10d edges   est. cost %.6g%s%s@," c.cand_view c.cand_edges cost
            freshness chosen
        | None -> fprintf ppf "  %-32s %10d edges   not applicable%s@," c.cand_view c.cand_edges freshness)
      r.candidates
  end;
  fprintf ppf "enumeration: %d candidate views, %d inference steps@,"
    (List.length r.enum_candidates) r.enum_inference_steps;
  (match r.selection with
  | Some s ->
    fprintf ppf "selection: chose %d of %d candidates, %d of %d budget edges@,"
      (List.length s.Selection.chosen)
      (List.length s.Selection.reports)
      s.Selection.total_weight s.Selection.budget_edges
  | None -> ());
  fprintf ppf "plan:@,%s" (Explain.render r.plan)

let report_to_string r =
  Format.asprintf "@[<v>%a@]" pp_report r

let selection_json (s : Selection.t) =
  let open Report in
  Obj
    [
      ("budget_edges", Int s.Selection.budget_edges);
      ("total_weight", Int s.Selection.total_weight);
      ("total_value", num s.Selection.total_value);
      ("chosen", List (List.map (fun v -> Str (View.name v)) s.Selection.chosen));
      ( "candidates",
        List
          (List.map
             (fun (c : Selection.candidate_report) ->
               Obj
                 [
                   ("view", Str (View.name c.Selection.view));
                   ("est_size", num c.Selection.est_size);
                   ("creation_cost", num c.Selection.creation_cost);
                   ("improvement", num c.Selection.improvement);
                   ("value", num c.Selection.value);
                   ("chosen", Bool c.Selection.chosen);
                 ])
             s.Selection.reports) );
    ]

let report_json r =
  let open Report in
  Obj
    [
      ( "target",
        match r.target with
        | Raw -> Obj [ ("kind", Str "raw") ]
        | Via_view v -> Obj [ ("kind", Str "view"); ("view", Str v) ] );
      ("raw_cost", num r.raw_cost);
      ("query", Str (Kaskade_query.Pretty.to_string r.executed));
      ("budget", match r.budget with Some b -> Str b | None -> Null);
      ("plan_cache", match r.plan_cache with Some s -> Str s | None -> Null);
      ( "refreshes",
        List
          (List.map
             (fun o ->
               Obj
                 [
                   ("view", Str o.refreshed_view);
                   ("strategy", Str (Maintain.describe_strategy o.refresh_strategy));
                   ("incremental", Bool (Maintain.incremental o.refresh_strategy));
                   ("ops", Int o.refresh_ops);
                   ("seconds", num o.refresh_seconds);
                 ])
             r.refreshes) );
      ( "rewrite_candidates",
        List
          (List.map
             (fun c ->
               Obj
                 [
                   ("view", Str c.cand_view);
                   ("edges", Int c.cand_edges);
                   ("est_cost", match c.cand_cost with Some x -> num x | None -> Null);
                   ("freshness", Str (Catalog.freshness_label c.cand_freshness));
                   ( "refresh_decision",
                     match c.cand_refresh with Some d -> Str d | None -> Null );
                   ("breaker", match c.cand_breaker with Some b -> Str b | None -> Null);
                 ])
             r.candidates) );
      ( "enumeration",
        Obj
          [
            ("candidates", List (List.map (fun v -> Str v) r.enum_candidates));
            ("inference_steps", Int r.enum_inference_steps);
          ] );
      ("selection", match r.selection with Some s -> selection_json s | None -> Null);
      ("plan", Explain.to_json r.plan);
    ]

(* Advisor ----------------------------------------------------------- *)

module Advisor = struct
  type verdict = Add | Keep | Drop

  type recommendation = {
    rec_view : string;
    rec_verdict : verdict;
    rec_est_edges : float;  (* estimator's size = knapsack weight; 0 when not a candidate *)
    rec_value : float;
    rec_hits : int;  (* logged queries this view actually answered *)
  }

  type calibration = {
    cal_target : string;  (* view name, or "" for the base graph *)
    cal_queries : int;
    cal_ratio : float;  (* geometric mean of actual/estimated root rows *)
    cal_suspect : bool;  (* ratio outside [0.5, 2] — cost model drifting *)
  }

  type advice = {
    workload : (string * int) list;  (* canonical query text, frequency; descending *)
    replayed : int;
    skipped : int;  (* log records whose text no longer parses *)
    budget_edges : int;
    selection : Selection.t;
    recommendations : recommendation list;
    calibration : calibration list;
  }

  let verdict_label = function Add -> "add" | Keep -> "keep" | Drop -> "drop"

  (* Frequency-weighted replay: the log's distinct queries (by hash, so
     two spellings of the same canonical text coincide) become the
     [queries] of a fresh enumeration + knapsack selection, each
     weighted by how often it was asked — the paper's
     frequency/importance extension, fed by observation instead of an
     assumed workload. *)
  let advise ?budget_edges ?records t =
    let records = match records with Some r -> r | None -> Qlog.records () in
    let budget_edges =
      match budget_edges with Some b -> b | None -> Graph.n_edges (graph t)
    in
    (* Group by query hash, keeping the first text seen and a count. *)
    let tbl : (string, string * int ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (r : Qlog.record) ->
        match Hashtbl.find_opt tbl r.Qlog.query_hash with
        | Some (_, n) -> incr n
        | None ->
          Hashtbl.add tbl r.Qlog.query_hash (r.Qlog.query, ref 1);
          order := r.Qlog.query_hash :: !order)
      records;
    let grouped =
      List.rev_map (fun h -> Hashtbl.find tbl h) !order
      |> List.map (fun (text, n) -> (text, !n))
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    let parsed, skipped =
      List.fold_left
        (fun (ok, skipped) (text, n) ->
          match parse text with
          | q -> ((q, text, n) :: ok, skipped)
          | exception _ -> (ok, skipped + n))
        ([], 0) grouped
    in
    let parsed = List.rev parsed in
    let queries = List.map (fun (q, _, _) -> q) parsed in
    let query_weights = List.map (fun (_, _, n) -> float_of_int n) parsed in
    let sel =
      if queries = [] then
        Selection.select ~alpha:t.alpha ?shard_stats:(shard_stats t) (stats t) t.schema
          ~queries:[] ~budget_edges
      else
        Selection.select ~alpha:t.alpha ~query_weights ?shard_stats:(shard_stats t) (stats t)
          t.schema ~queries ~budget_edges
    in
    (* Verdicts: the selection says which views the observed workload
       wants; the catalog says which are materialized. *)
    let chosen = List.map View.name sel.Selection.chosen in
    let materialized =
      List.map
        (fun (e : Catalog.entry) -> View.name e.Catalog.materialized.Materialize.view)
        (Catalog.entries t.catalog)
    in
    let hits name =
      List.length
        (List.filter
           (fun (r : Qlog.record) -> match r.Qlog.outcome with
             | Qlog.View_hit v -> String.equal v name
             | _ -> false)
           records)
    in
    let report_for name =
      List.find_opt
        (fun (c : Selection.candidate_report) -> String.equal (View.name c.Selection.view) name)
        sel.Selection.reports
    in
    let recommend name verdict =
      let est_edges, value =
        match report_for name with
        | Some c -> (c.Selection.est_size, c.Selection.value)
        | None -> (0.0, 0.0)
      in
      { rec_view = name; rec_verdict = verdict; rec_est_edges = est_edges; rec_value = value;
        rec_hits = hits name }
    in
    let adds =
      List.filter_map
        (fun v -> if List.mem v materialized then None else Some (recommend v Add))
        chosen
    in
    let keeps =
      List.filter_map
        (fun v -> if List.mem v materialized then Some (recommend v Keep) else None)
        chosen
    in
    let drops =
      List.filter_map
        (fun v -> if List.mem v chosen then None else Some (recommend v Drop))
        materialized
    in
    (* Cost-model calibration: per execution target, the geometric mean
       of actual/estimated rows at the plan root across logged runs.
       Geometric, because cardinality errors are multiplicative. *)
    let cal_tbl : (string, float * int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (r : Qlog.record) ->
        match (r.Qlog.outcome, r.Qlog.operators) with
        | Qlog.Failed _, _ | _, [] -> ()
        | outcome, root :: _ -> (
          match root.Qlog.est_rows with
          | Some est when est > 0.0 && r.Qlog.rows > 0 ->
            let target = match outcome with Qlog.View_hit v -> v | _ -> "" in
            let ratio = float_of_int r.Qlog.rows /. est in
            let log_sum, n =
              Option.value ~default:(0.0, 0) (Hashtbl.find_opt cal_tbl target)
            in
            Hashtbl.replace cal_tbl target (log_sum +. Float.log ratio, n + 1)
          | _ -> ()))
      records;
    let calibration =
      Hashtbl.fold
        (fun target (log_sum, n) acc ->
          let ratio = Float.exp (log_sum /. float_of_int n) in
          { cal_target = target; cal_queries = n; cal_ratio = ratio;
            cal_suspect = ratio < 0.5 || ratio > 2.0 }
          :: acc)
        cal_tbl []
      |> List.sort (fun a b -> compare a.cal_target b.cal_target)
    in
    {
      workload = List.map (fun (_, text, n) -> (text, n)) parsed;
      replayed = List.length records - skipped;
      skipped;
      budget_edges;
      selection = sel;
      recommendations = adds @ keeps @ drops;
      calibration;
    }

  let pp ppf a =
    let open Format in
    fprintf ppf "advisor: replayed %d logged queries (%d distinct%s), budget %d edges@,"
      a.replayed (List.length a.workload)
      (if a.skipped > 0 then Printf.sprintf ", %d skipped" a.skipped else "")
      a.budget_edges;
    fprintf ppf "workload:@,";
    List.iter (fun (text, n) -> fprintf ppf "  %4dx  %s@," n text) a.workload;
    if a.recommendations = [] then fprintf ppf "recommendations: none@,"
    else begin
      fprintf ppf "recommendations:@,";
      List.iter
        (fun r ->
          fprintf ppf "  %-4s %-32s value %.6g, est. %.0f edges, %d logged hits@,"
            (verdict_label r.rec_verdict) r.rec_view r.rec_value r.rec_est_edges r.rec_hits)
        a.recommendations
    end;
    if a.calibration <> [] then begin
      fprintf ppf "cost-model calibration (actual/estimated rows, geometric mean):@,";
      List.iter
        (fun c ->
          fprintf ppf "  %-32s %.3g over %d queries%s@,"
            (if c.cal_target = "" then "(base graph)" else c.cal_target)
            c.cal_ratio c.cal_queries
            (if c.cal_suspect then "  <- drifting" else ""))
        a.calibration
    end

  let to_string a = Format.asprintf "@[<v>%a@]" pp a

  let to_json a =
    let open Report in
    Obj
      [
        ("replayed", Int a.replayed);
        ("skipped", Int a.skipped);
        ("budget_edges", Int a.budget_edges);
        ( "workload",
          List
            (List.map
               (fun (text, n) -> Obj [ ("query", Str text); ("count", Int n) ])
               a.workload) );
        ( "recommendations",
          List
            (List.map
               (fun r ->
                 Obj
                   [
                     ("view", Str r.rec_view);
                     ("verdict", Str (verdict_label r.rec_verdict));
                     ("est_edges", num r.rec_est_edges);
                     ("value", num r.rec_value);
                     ("logged_hits", Int r.rec_hits);
                   ])
               a.recommendations) );
        ( "calibration",
          List
            (List.map
               (fun c ->
                 Obj
                   [
                     ("target", Str c.cal_target);
                     ("queries", Int c.cal_queries);
                     ("ratio", num c.cal_ratio);
                     ("suspect", Bool c.cal_suspect);
                   ])
               a.calibration) );
        ("selection", selection_json a.selection);
      ]
end

(* Typed-error entry points ------------------------------------------ *)

let parse_result src = Error.guard (fun () -> parse src)
let run_result ?budget t q = Error.guard (fun () -> run ?budget t q)

(* Unified entry point ------------------------------------------------ *)

type target = Auto | Base | View of string

let query ?(target = Auto) ?budget t q =
  match target with
  | Auto -> Error.guard (fun () -> run ?budget t q)
  | Base -> Error.guard (fun () -> (run_raw ?budget t q, Raw))
  | View name -> Error.guard (fun () -> (run_on_view ?budget t name q, Via_view name))

(* Crash recovery ----------------------------------------------------- *)

let recover ?(config = Config.default) dir =
  let r =
    Store.recover ~fsync_policy:config.Config.fsync_policy
      ~snapshot_every:config.Config.snapshot_every dir
  in
  (* Build the facade over the snapshot graph with the store detached:
     replaying the WAL tail below must not append the tail back onto
     the WAL. *)
  let t = make ~config:{ config with Config.data_dir = None } r.Store.r_graph in
  List.iter
    (fun ((m : Materialize.materialized), freshness) ->
      Catalog.add t.catalog m;
      match freshness with
      | Catalog.Fresh -> ()
      | f -> (
        match Catalog.find t.catalog m.Materialize.view with
        | Some entry -> entry.Catalog.freshness <- f
        | None -> ()))
    r.Store.r_views;
  List.iter
    (fun (seq, ops) ->
      (* Mirror the live path's partial application: [Overlay.apply]
         applies ops in order and raises on the failing one, so a
         batch that half-landed before the crash half-lands again. *)
      try
        let effective = Graph.Overlay.apply t.overlay ops in
        Catalog.mark_stale t.catalog effective
      with Invalid_argument msg ->
        Log.warn (fun k -> k "replay of WAL batch %d stopped early: %s" seq msg))
    r.Store.r_tail;
  invalidate_plans t;
  update_stale_gauge t;
  t.store <- Some r.Store.r_store;
  t
