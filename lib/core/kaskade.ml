module Facts = Facts
module Rules = Rules
module Enumerate = Enumerate
module Estimator = Estimator
module Selection = Selection
module Rewrite = Rewrite

open Kaskade_graph
open Kaskade_views
open Kaskade_exec

let log_src = Logs.Src.create "kaskade" ~doc:"Kaskade view selection and rewriting"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Explain = Kaskade_obs.Explain
module Metrics = Kaskade_obs.Metrics
module Report = Kaskade_obs.Report
module Trace = Kaskade_obs.Trace

let m_view_hits =
  Metrics.counter ~help:"Queries answered via a materialized view" "kaskade.view_hits"

let m_view_misses =
  Metrics.counter ~help:"Queries answered on the base graph" "kaskade.view_misses"

let h_query_seconds =
  Metrics.histogram ~help:"End-to-end Kaskade.run wall time (seconds)" "kaskade.query_seconds"

type t = {
  graph : Graph.t;
  schema : Schema.t;
  stats : Gstats.t;
  catalog : Catalog.t;
  alpha : float;
  mode : Executor.mode;
  ctxs : (string, Executor.ctx) Hashtbl.t;  (* "" = base graph *)
  view_stats : (string, Gstats.t) Hashtbl.t;
  mutable last_selection : Selection.t option;
}

type run_target = Raw | Via_view of string

let create ?(alpha = 95.0) ?(mode = Executor.Distinct_endpoints) graph =
  {
    graph;
    schema = Graph.schema graph;
    stats = Gstats.compute graph;
    catalog = Catalog.create graph;
    alpha;
    mode;
    ctxs = Hashtbl.create 8;
    view_stats = Hashtbl.create 8;
    last_selection = None;
  }

let graph t = t.graph
let schema t = t.schema
let stats t = t.stats
let catalog t = t.catalog

let parse = Kaskade_query.Qparser.parse

let ctx_for t name g =
  match Hashtbl.find_opt t.ctxs name with
  | Some ctx -> ctx
  | None ->
    let ctx = Executor.create ~mode:t.mode ~planner:true g in
    Hashtbl.add t.ctxs name ctx;
    ctx

let base_ctx t = ctx_for t "" t.graph

let view_ctx t name =
  match Catalog.find_by_name t.catalog name with
  | Some entry -> ctx_for t name entry.Catalog.materialized.Materialize.graph
  | None -> raise Not_found

let stats_for_view t name g =
  match Hashtbl.find_opt t.view_stats name with
  | Some s -> s
  | None ->
    let s = Gstats.compute g in
    Hashtbl.add t.view_stats name s;
    s

let enumerate_views t q = Enumerate.enumerate t.schema q

let select_views ?solver ?query_weights t ~queries ~budget_edges =
  let sel =
    Selection.select ~alpha:t.alpha ?solver ?query_weights t.stats t.schema ~queries ~budget_edges
  in
  Log.info (fun k ->
      k "selection over %d queries (budget %d edges): chose [%s], weight %d"
        (List.length queries) budget_edges
        (String.concat "; " (List.map View.name sel.Selection.chosen))
        sel.Selection.total_weight);
  t.last_selection <- Some sel;
  sel

let materialize t view =
  match Catalog.find t.catalog view with
  | Some entry -> entry
  | None ->
    let m = Materialize.materialize t.graph view in
    Log.info (fun k ->
        k "materialized %s: %d vertices, %d edges (cost %.0f)" (View.name view)
          (Graph.n_vertices m.Materialize.graph)
          (Graph.n_edges m.Materialize.graph)
          m.Materialize.build_cost);
    Catalog.add t.catalog m;
    (* Invalidate any stale per-view state. *)
    Hashtbl.remove t.ctxs (View.name view);
    Hashtbl.remove t.view_stats (View.name view);
    Option.get (Catalog.find t.catalog view)

let materialize_selected t (sel : Selection.t) = List.map (materialize t) sel.Selection.chosen

(* Every materialized view priced against [q]: the rewriting and its
   estimated cost over the view's own stats, or [None] when the view
   cannot answer the query. *)
let eval_candidates t q =
  let raw_cost = Cost.eval_cost t.stats t.schema q in
  let cands =
    List.map
      (fun (entry : Catalog.entry) ->
        let view = entry.materialized.Materialize.view in
        match Rewrite.rewrite t.schema q view with
        | Some rw ->
          let vg = entry.materialized.Materialize.graph in
          let vstats = stats_for_view t (View.name view) vg in
          let cost = Cost.eval_cost vstats (Graph.schema vg) rw.Rewrite.rewritten in
          (entry, Some (rw, cost))
        | None -> (entry, None))
      (Catalog.entries t.catalog)
  in
  (raw_cost, cands)

(* Lowest rewritten cost strictly below the raw cost; first entry wins
   ties (catalog order is materialization order). *)
let pick_best raw_cost cands =
  List.fold_left
    (fun best (entry, outcome) ->
      match outcome with
      | Some (rw, cost) when cost < raw_cost -> begin
        match best with
        | Some (_, _, best_cost) when best_cost <= cost -> best
        | _ -> Some (rw, entry, cost)
      end
      | _ -> best)
    None cands

let best_rewriting t q =
  let raw_cost, cands = eval_candidates t q in
  Option.map (fun (rw, entry, _) -> (rw, entry)) (pick_best raw_cost cands)

let run_raw t q = Executor.run (base_ctx t) q

let run_on_view t name q =
  match Catalog.find_by_name t.catalog name with
  | Some _ -> Executor.run (view_ctx t name) q
  | None -> raise Not_found

let run t q =
  let t0 = Trace.now_s () in
  let out =
    match best_rewriting t q with
    | Some (rw, entry) ->
      let name = View.name entry.materialized.Materialize.view in
      Log.debug (fun k ->
          k "answering via %s: %s" name (Kaskade_query.Pretty.to_string rw.Rewrite.rewritten));
      Metrics.incr m_view_hits;
      (Executor.run (view_ctx t name) rw.Rewrite.rewritten, Via_view name)
    | None ->
      Log.debug (fun k -> k "no materialized view helps; answering on the base graph");
      Metrics.incr m_view_misses;
      (run_raw t q, Raw)
  in
  Metrics.observe h_query_seconds (Trace.now_s () -. t0);
  out

(* EXPLAIN / PROFILE ------------------------------------------------- *)

type view_candidate = {
  cand_view : string;
  cand_edges : int;
  cand_cost : float option;
}

type report = {
  target : run_target;
  raw_cost : float;
  executed : Kaskade_query.Ast.t;
  candidates : view_candidate list;
  enum_candidates : string list;
  enum_inference_steps : int;
  selection : Selection.t option;
  plan : Explain.node;
}

let make_report t q ~target ~raw_cost ~cands ~executed ~plan =
  let e = Enumerate.enumerate t.schema q in
  {
    target;
    raw_cost;
    executed;
    candidates =
      List.map
        (fun ((entry : Catalog.entry), outcome) ->
          {
            cand_view = View.name entry.materialized.Materialize.view;
            cand_edges = Graph.n_edges entry.materialized.Materialize.graph;
            cand_cost = Option.map snd outcome;
          })
        cands;
    enum_candidates =
      List.map (fun (c : Enumerate.candidate) -> View.name c.Enumerate.view) e.Enumerate.candidates;
    enum_inference_steps = e.Enumerate.inference_steps;
    selection = t.last_selection;
    plan;
  }

let explain t q =
  let raw_cost, cands = eval_candidates t q in
  match pick_best raw_cost cands with
  | Some (rw, entry, _) ->
    let name = View.name entry.materialized.Materialize.view in
    let plan = Executor.explain (view_ctx t name) rw.Rewrite.rewritten in
    make_report t q ~target:(Via_view name) ~raw_cost ~cands ~executed:rw.Rewrite.rewritten ~plan
  | None ->
    let plan = Executor.explain (base_ctx t) q in
    make_report t q ~target:Raw ~raw_cost ~cands ~executed:q ~plan

let profile t q =
  let t0 = Trace.now_s () in
  let raw_cost, cands = eval_candidates t q in
  let result, target, executed, plan =
    match pick_best raw_cost cands with
    | Some (rw, entry, _) ->
      let name = View.name entry.materialized.Materialize.view in
      Metrics.incr m_view_hits;
      let result, plan =
        Executor.run_explained ~profile:true (view_ctx t name) rw.Rewrite.rewritten
      in
      (result, Via_view name, rw.Rewrite.rewritten, plan)
    | None ->
      Metrics.incr m_view_misses;
      let result, plan = Executor.run_explained ~profile:true (base_ctx t) q in
      (result, Raw, q, plan)
  in
  Metrics.observe h_query_seconds (Trace.now_s () -. t0);
  (result, make_report t q ~target ~raw_cost ~cands ~executed ~plan)

let pp_report ppf r =
  let open Format in
  (match r.target with
  | Raw -> fprintf ppf "target: base graph (no materialized view helps)@,"
  | Via_view v -> fprintf ppf "target: materialized view %s@," v);
  fprintf ppf "query: %s@," (Kaskade_query.Pretty.to_string r.executed);
  fprintf ppf "raw-graph cost: %.6g@," r.raw_cost;
  if r.candidates = [] then fprintf ppf "rewrite candidates: none materialized@,"
  else begin
    fprintf ppf "rewrite candidates:@,";
    List.iter
      (fun c ->
        let chosen =
          match r.target with Via_view v when String.equal v c.cand_view -> "  <- chosen" | _ -> ""
        in
        match c.cand_cost with
        | Some cost ->
          fprintf ppf "  %-32s %10d edges   est. cost %.6g%s@," c.cand_view c.cand_edges cost chosen
        | None -> fprintf ppf "  %-32s %10d edges   not applicable@," c.cand_view c.cand_edges)
      r.candidates
  end;
  fprintf ppf "enumeration: %d candidate views, %d inference steps@,"
    (List.length r.enum_candidates) r.enum_inference_steps;
  (match r.selection with
  | Some s ->
    fprintf ppf "selection: chose %d of %d candidates, %d of %d budget edges@,"
      (List.length s.Selection.chosen)
      (List.length s.Selection.reports)
      s.Selection.total_weight s.Selection.budget_edges
  | None -> ());
  fprintf ppf "plan:@,%s" (Explain.render r.plan)

let report_to_string r =
  Format.asprintf "@[<v>%a@]" pp_report r

let selection_json (s : Selection.t) =
  let open Report in
  Obj
    [
      ("budget_edges", Int s.Selection.budget_edges);
      ("total_weight", Int s.Selection.total_weight);
      ("total_value", num s.Selection.total_value);
      ("chosen", List (List.map (fun v -> Str (View.name v)) s.Selection.chosen));
      ( "candidates",
        List
          (List.map
             (fun (c : Selection.candidate_report) ->
               Obj
                 [
                   ("view", Str (View.name c.Selection.view));
                   ("est_size", num c.Selection.est_size);
                   ("creation_cost", num c.Selection.creation_cost);
                   ("improvement", num c.Selection.improvement);
                   ("value", num c.Selection.value);
                   ("chosen", Bool c.Selection.chosen);
                 ])
             s.Selection.reports) );
    ]

let report_json r =
  let open Report in
  Obj
    [
      ( "target",
        match r.target with
        | Raw -> Obj [ ("kind", Str "raw") ]
        | Via_view v -> Obj [ ("kind", Str "view"); ("view", Str v) ] );
      ("raw_cost", num r.raw_cost);
      ("query", Str (Kaskade_query.Pretty.to_string r.executed));
      ( "rewrite_candidates",
        List
          (List.map
             (fun c ->
               Obj
                 [
                   ("view", Str c.cand_view);
                   ("edges", Int c.cand_edges);
                   ("est_cost", match c.cand_cost with Some x -> num x | None -> Null);
                 ])
             r.candidates) );
      ( "enumeration",
        Obj
          [
            ("candidates", List (List.map (fun v -> Str v) r.enum_candidates));
            ("inference_steps", Int r.enum_inference_steps);
          ] );
      ("selection", match r.selection with Some s -> selection_json s | None -> Null);
      ("plan", Explain.to_json r.plan);
    ]
