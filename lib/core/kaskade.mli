(** The Kaskade system facade (paper Fig. 2): a graph plus workload
    analyzer (view selection), view enumerator, query rewriter, and
    execution engine, wired together — over a {e live} graph: the
    facade owns a [Graph.Overlay] delta layer, so the graph can be
    mutated through {!Update} and every materialized view is
    freshness-tracked ({!Kaskade_views.Catalog.freshness}) and
    repaired incrementally ({!Kaskade_views.Maintain}) before it is
    allowed to answer a query.

    {[
      let ks = Kaskade.make graph in
      let q = Kaskade.parse "SELECT ... FROM (MATCH ...)" in
      (* choose + materialize views for a workload under a budget *)
      let sel = Kaskade.select_views ks ~queries:[ q ] ~budget_edges:100_000 in
      Kaskade.materialize_selected ks sel;
      (* transparently answer from the best materialized view *)
      match Kaskade.query ks q with
      | Ok (result, how) ->
        (* mutate; views go stale, the next query repairs them first *)
        Kaskade.Update.batch ops ks;
        let result' = Kaskade.query ks q in
        ...
      | Error e -> ...
    ]}

    Non-default knobs go through {!Config.t} with record-update
    syntax:

    {[
      let ks = Kaskade.make ~config:{ Kaskade.Config.default with shards = 4 } graph
    ]} *)

(** Re-exported components (see each module's own documentation). *)

module Facts = Facts
module Rules = Rules
module Enumerate = Enumerate
module Estimator = Estimator
module Selection = Selection
module Rewrite = Rewrite
module Error = Error

type t

type run_target =
  | Raw  (** Answered on the base graph. *)
  | Via_view of string  (** Answered over the named materialized view. *)

(** Construction knobs, collapsed into one record so call sites name
    only what they change ([{ Config.default with shards = 4 }]) and
    new knobs never ripple through every caller's signature. *)
module Config : sig
  type t = {
    alpha : float;
        (** View-size estimation percentile (default 95) — the
            operating point the paper recommends (§VII-D). *)
    mode : Kaskade_exec.Executor.mode;  (** Path-semantics mode (default [Distinct_endpoints]). *)
    pool : Kaskade_util.Pool.t option;
        (** The one domain pool threaded through materialization,
            graph statistics, and view refresh (default [None]:
            [Kaskade_util.Pool.default] inside each component). *)
    shards : int;
        (** > 1 stores the base graph — and every materialized view —
            as a {!Kaskade_graph.Shard} partitioning: executor
            adjacency reads, connector/ego materialization traversals
            and view refreshes route through the owning shard (cut
            edges resolve through the exchange), and the selection
            knapsack prices candidates as the sum of per-shard size
            estimates. Results are byte-identical at any shard count;
            [<= 1] (default) is exactly the single-CSR code path. *)
    shard_policy : Kaskade_graph.Shard.policy;  (** Partitioning policy (default [Hash]). *)
    auto_refresh : bool;
        (** [true] (default): query entry points repair stale views
            before planning. [false]: they fall back to the base graph
            and leave views stale until {!Update.refresh_views}. *)
    compact_threshold : float;
        (** Overlay ratio past which a batch triggers
            [Graph.Overlay.compact] (default 0.25). *)
    breaker_threshold : int;
        (** Consecutive refresh failures (default 3) that open a
            view's circuit breaker. While open the view is
            {e quarantined}: refresh attempts are skipped, it stays
            [Stale], and the planner transparently answers its queries
            from the base graph (counted by [kaskade.fallback_runs]).
            After the cooldown one half-open probe refresh is allowed
            — success closes the breaker, failure reopens it. *)
    breaker_cooldown_s : float;
        (** Quarantine duration in seconds (default 30, monotonic
            clock). *)
    plan_cache : bool;
        (** [true] (default) caches {!query}'s routing decision per
            canonical query (keyed by the same FNV-1a hash that groups
            [Kaskade_obs.Qlog] records): a repeated query skips the
            repair scan, per-view rewriting, and cost comparison and
            goes straight to the executor. Entries are invalidated as
            a whole on {e any} graph or catalog change, and the cache
            stands down entirely while any view is stale under
            [auto_refresh], so degradation retries and breaker probes
            are never skipped. Observed through the
            [kaskade.plan_cache_*] counters/gauge and the [plan_cache]
            field of {!explain} reports. [false] plans every query
            from scratch (the cold-path baseline the
            [bench microbench] plan-cache comparison measures
            against). *)
    data_dir : string option;
        (** [Some dir] makes the facade {e durable}: every update
            batch is appended (and fsynced per [fsync_policy]) to
            [dir/wal.log] {e before} it touches the overlay, and
            binary snapshots of the frozen CSR plus the view catalog
            are written to [dir/snapshot-*.ksnap] — immediately for a
            fresh directory (the seq-0 seed anchor), then every
            [snapshot_every] batches and on {!snapshot}. After a
            crash, {!recover} rebuilds the facade from the newest
            valid snapshot plus the WAL tail. [None] (default) keeps
            everything in memory. *)
    fsync_policy : Kaskade_store.Wal.fsync_policy;
        (** When WAL appends reach the platter (default [Always]:
            no acknowledged batch is ever lost). See
            {!Kaskade_store.Wal.fsync_policy}. *)
    snapshot_every : int;
        (** Update batches between automatic snapshots (default 512);
            [0] disables the cadence (snapshots then only happen via
            {!snapshot}). More frequent snapshots shorten recovery
            replay at the cost of write amplification. *)
  }

  val default : t
end

val make : ?config:Config.t -> Kaskade_graph.Graph.t -> t
(** Build a facade over [graph] (default {!Config.default}). The
    facade owns a [Graph.Overlay] delta layer over [graph]; mutate it
    through {!Update} only. *)

val create :
  ?alpha:float ->
  ?mode:Kaskade_exec.Executor.mode ->
  ?pool:Kaskade_util.Pool.t ->
  ?shards:int ->
  ?shard_policy:Kaskade_graph.Shard.policy ->
  ?auto_refresh:bool ->
  ?compact_threshold:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  ?plan_cache:bool ->
  Kaskade_graph.Graph.t ->
  t
[@@deprecated "use Kaskade.make ?config instead; each optional argument is a Config.t field"]
(** @deprecated Thin wrapper over {!make}: every optional argument is
    the {!Config.t} field of the same name, with the same default. *)

val graph : t -> Kaskade_graph.Graph.t
(** Current frozen snapshot — base plus any applied updates. Cheap
    when no update happened since the last call. *)

val overlay : t -> Kaskade_graph.Graph.Overlay.t
(** The facade's live delta layer. Exposed for the serving layer
    ({!Kaskade_serve.Session}), which pins snapshot versions on it;
    mutate only through {!Update} so catalog freshness and the plan
    cache stay coherent. *)

val version : t -> int
(** Current overlay version ([Graph.Overlay.version]) — bumped by
    every effective mutation. *)

val schema : t -> Kaskade_graph.Schema.t

val stats : t -> Kaskade_graph.Gstats.t
(** Statistics of {!graph}, recomputed lazily after updates. *)

val catalog : t -> Kaskade_views.Catalog.t

(** {1 Durability}

    Active when [Config.data_dir] is set; see {!Kaskade_store} for
    the WAL/snapshot formats and the recovery protocol. *)

val store : t -> Kaskade_store.Store.t option
(** The durability layer, [None] for an in-memory facade. *)

val snapshot : t -> string
(** Crash-atomically snapshot the current frozen graph plus the whole
    view catalog (per-view graph, vertex mapping, freshness — a view
    snapshotted [Stale] recovers [Stale] with its delta intact) and
    return the snapshot path. Also resets the [snapshot_every]
    cadence. Raises [Invalid_argument] when no [data_dir] is
    configured or a refresh is in flight. *)

val recover : ?config:Config.t -> string -> t
(** Rebuild a facade from a data directory: load the newest valid
    snapshot (a corrupt one is skipped in favour of its predecessor),
    restore the view catalog with per-view freshness, then replay
    every WAL batch past the snapshot's sequence number — the seq
    bookkeeping makes replay idempotent, and a torn final record
    (crash mid-append) is truncated, not fatal. The returned facade
    has the store attached and keeps journaling. [config]'s
    [data_dir] field is ignored (the directory argument wins); its
    other fields configure the facade as in {!make}.

    Metrics: [kaskade.recovery_replayed_ops],
    [kaskade.recovery_truncated_records].

    Raises [Kaskade_store.Codec.Corrupt] when no valid snapshot
    exists, [Sys_error] when the directory does not. *)

val parse : string -> Kaskade_query.Ast.t
(** Parse the hybrid query language (re-export of [Qparser.parse]).
    Raises [Qparser.Parse_error] (with position); {!parse_result} is
    the non-raising form. *)

val parse_result : string -> (Kaskade_query.Ast.t, Error.t) result
(** {!parse} with the error as a value ([Error.Parse]). *)

(** {1 Updates}

    The mutation API (replaces reaching into [Maintain] by hand: ops
    go through the facade, which records them against every catalog
    entry so freshness is never silently wrong). *)

type refresh_outcome = {
  refreshed_view : string;
  refresh_strategy : Kaskade_views.Maintain.strategy;
      (** How the refresh was performed (delta, ego recompute, or
          flagged full rebuild). *)
  refresh_ops : int;  (** Ops absorbed by this refresh. *)
  refresh_seconds : float;
}

module Update : sig
  (** Re-export of {!Kaskade_graph.Graph.Overlay.op} so batches can be
      built without importing graph internals. *)
  type op = Kaskade_graph.Graph.Overlay.op =
    | Insert_vertex of { vtype : string; props : (string * Kaskade_graph.Value.t) list }
    | Insert_edge of {
        src : int;
        dst : int;
        etype : string;
        props : (string * Kaskade_graph.Value.t) list;
      }
    | Delete_edge of { src : int; dst : int; etype : string }

  val pp_op : Format.formatter -> op -> unit

  val insert_vertex :
    t -> vtype:string -> ?props:(string * Kaskade_graph.Value.t) list -> unit -> int
  (** Returns the new (stable) vertex id. *)

  val insert_edge :
    t ->
    src:int ->
    dst:int ->
    etype:string ->
    ?props:(string * Kaskade_graph.Value.t) list ->
    unit ->
    unit
  (** Schema-checked; raises [Invalid_argument] like
      [Builder.add_edge]. *)

  val delete_edge : t -> src:int -> dst:int -> etype:string -> bool
  (** Deletes the first live matching instance; [false] when none
      matches (nothing changes, views stay fresh). *)

  val batch : op list -> t -> unit
  (** Apply a batch in order. Failed deletes are dropped; the ops that
      took effect are recorded against every catalog entry
      ([Fresh -> Stale], [Stale -> Stale] with the delta appended).
      May compact the overlay (see [compact_threshold]). *)

  val refresh_views :
    ?budget:Kaskade_util.Budget.t -> ?names:string list -> t -> refresh_outcome list
  (** Repair stale views — incrementally when the delta is
      expressible, otherwise by flagged full rebuild — and return what
      was done (fresh views are skipped and absent from the result).
      [names] restricts to specific views; raises [Not_found] on
      unknown names. Updates the [kaskade.view_refreshes] /
      [kaskade.refresh_seconds] / [kaskade.stale_views] metrics.

      A refresh that crashes raises {!Error.Refresh_error} after
      restoring the entry to [Stale] (delta intact) and charging the
      view's circuit breaker ([kaskade.refresh_failures],
      [kaskade.breaker_open] metrics); quarantined views are skipped
      silently. [budget] bounds the work ([Budget.Exhausted]
      propagates and does {e not} charge the breaker). *)

  val freshness : t -> (string * Kaskade_views.Catalog.freshness) list
  (** Freshness of every catalog entry, sorted by view name. *)
end

(** {1 Planning and materialization} *)

val enumerate_views :
  ?budget:Kaskade_util.Budget.t -> t -> Kaskade_query.Ast.t -> Enumerate.enumeration
(** Constraint-based view enumeration for one query (§IV). [budget]
    bounds the Prolog engine (see {!Enumerate.enumerate}). *)

val select_views :
  ?solver:Selection.solver ->
  ?query_weights:float list ->
  t ->
  queries:Kaskade_query.Ast.t list ->
  budget_edges:int ->
  Selection.t
(** Workload analysis (§V-B). Does not materialize anything. *)

val materialize : t -> Kaskade_views.View.t -> Kaskade_views.Catalog.entry
(** Execute a view definition against the current graph and register
    the result as [Fresh]. Idempotent per view name while the entry is
    [Fresh]; a stale entry is re-materialized from scratch. *)

val materialize_selected : t -> Selection.t -> Kaskade_views.Catalog.entry list

val best_rewriting :
  t -> Kaskade_query.Ast.t -> (Rewrite.rewriting * Kaskade_views.Catalog.entry) option
(** Among materialized {e fresh} views, the rewriting with the lowest
    estimated evaluation cost — [None] when no view helps (§V-C).
    Repairs stale views first when [auto_refresh] is on. *)

(** Where {!query} evaluates. *)
type target =
  | Auto  (** Planner's choice: cheapest fresh view, else base graph. *)
  | Base  (** Always the (current) base graph. *)
  | View of string  (** A named materialized view, no fallback. *)

val query :
  ?target:target ->
  ?budget:Kaskade_util.Budget.t ->
  t ->
  Kaskade_query.Ast.t ->
  (Kaskade_exec.Executor.result * run_target, Error.t) result
(** The one query entry point. With [target = Auto] (the default):
    view-based evaluation — rewrite over the cheapest applicable
    materialized view, falling back to the base graph. {b Never}
    answers from a view whose freshness is not [Fresh]: stale views
    are either repaired first ([auto_refresh]) or passed over in
    favour of the base graph. Updates the process-wide metrics
    registry ([kaskade.view_hits] / [kaskade.view_misses] counters,
    the [kaskade.query_seconds] histogram and its outcome-split
    variants [.view_hit] / [.fallback] / [.timeout] — see
    [Kaskade_obs.Metrics]) and appends one [Kaskade_obs.Qlog] record
    per call — successes and governed failures alike — carrying the
    canonical query text, plan fingerprint, routing outcome, row
    count, wall time and budget spend. The accumulated log is what
    {!Advisor.advise} replays.

    {b Degradation (Auto):} a repair that {e fails} is swallowed —
    the failure is metered ([kaskade.refresh_failures]) and charged to
    the view's circuit breaker, the view stays [Stale], and the query
    is answered from the base graph ([kaskade.fallback_runs] counts
    the queries a quarantined view could have served). [budget] bounds
    the whole pipeline (repair, planning, execution); exhaustion
    surfaces as [Error Budget_exhausted] (counted by
    [kaskade.query_timeouts]) and leaves the system consistent.

    [target = Base] skips planning and the query log and evaluates
    directly on the base graph (the old [run_raw] — the baseline the
    bench harness diffs view routing against). [target = View v]
    evaluates an (already rewritten) query on view [v] with no
    base-graph fallback: a stale view is repaired first under
    [auto_refresh] (a failed or breaker-blocked repair is
    [Error (Refresh_failed _)]), refused as [Error (Plan _)]
    otherwise, and an unknown name is [Error (Plan _)]. The returned
    [run_target] reports where the query actually ran. Truly
    unexpected exceptions still propagate (see {!Error.of_exn}). *)

val run :
  ?budget:Kaskade_util.Budget.t ->
  t ->
  Kaskade_query.Ast.t ->
  Kaskade_exec.Executor.result * run_target
[@@deprecated "use Kaskade.query (returns a result instead of raising)"]
(** @deprecated The raising form of {!query}[ ~target:Auto]: governed
    failures ([Budget.Exhausted], parse/plan errors, ...) escape as
    exceptions. *)

val run_result :
  ?budget:Kaskade_util.Budget.t ->
  t ->
  Kaskade_query.Ast.t ->
  (Kaskade_exec.Executor.result * run_target, Error.t) result
[@@deprecated "use Kaskade.query"]
(** @deprecated Exactly {!query}[ ~target:Auto]. *)

(** {1 EXPLAIN / PROFILE}

    Observability entry points mirroring {!run}'s decision process
    without (EXPLAIN) or alongside (PROFILE) execution. *)

type view_candidate = {
  cand_view : string;  (** Materialized view name. *)
  cand_edges : int;  (** Actual size of the materialized view. *)
  cand_cost : float option;
      (** Estimated cost of the rewritten query over the view; [None]
          when the view cannot answer the query {e or is not fresh}
          (the planner refuses stale views outright). *)
  cand_freshness : Kaskade_views.Catalog.freshness;
  cand_refresh : string option;
      (** For non-fresh candidates: the refresh strategy a repair
          would use (from [Maintain.plan]), e.g. ["delta(+3/-1
          pairs)"] or ["rebuild: ..."], or ["quarantined (breaker
          open)"] when the circuit breaker blocks repair. *)
  cand_breaker : string option;
      (** Circuit-breaker state when it is not pristine (open,
          half-open, or closed with recorded failures), e.g.
          ["open (2.1s into 30.0s cooldown), 3 failures"]. *)
}

type report = {
  target : run_target;  (** The decision {!run} would make. *)
  raw_cost : float;  (** Estimated cost on the base graph. *)
  executed : Kaskade_query.Ast.t;
      (** The query actually evaluated: the rewriting when
          [target = Via_view _], the original otherwise. *)
  candidates : view_candidate list;
      (** Every materialized view considered, in catalog order, with
          its freshness. *)
  refreshes : refresh_outcome list;
      (** Repairs performed before planning (PROFILE with
          [auto_refresh] only; EXPLAIN never mutates). *)
  enum_candidates : string list;
      (** View names the enumerator proposes for this query (whether
          or not they are materialized). *)
  enum_inference_steps : int;  (** Prolog resolution steps spent. *)
  selection : Selection.t option;
      (** The most recent {!select_views} outcome — knapsack inputs
          (per-candidate size/cost/value) and outputs (chosen set,
          weight). [None] before any selection. *)
  budget : string option;
      (** State of the budget the caller passed ([Budget.describe] at
          report time); [None] when the call was unbudgeted. *)
  plan_cache : string option;
      (** What the plan cache would do for this query right now:
          ["cold"], or ["warm (N hits, plan <fingerprint>)"] when a
          {!run} would skip planning. [None] when the cache is
          disabled. *)
  plan : Kaskade_obs.Explain.node;  (** Operator tree for [executed]. *)
}

val explain : ?budget:Kaskade_util.Budget.t -> t -> Kaskade_query.Ast.t -> report
(** The plan and rewrite decision for [q], without executing it.
    Read-only: stale views are {e reported} (freshness plus the
    refresh strategy a repair would use) but never repaired, and the
    reported target is what {!run} would pick with the catalog in this
    state. [budget] is surfaced in the report, not consumed. *)

val profile :
  ?budget:Kaskade_util.Budget.t ->
  t ->
  Kaskade_query.Ast.t ->
  Kaskade_exec.Executor.result * report
(** Execute [q] exactly as {!run} would (the result is identical —
    including budget enforcement and refresh-failure degradation) and
    return the plan annotated with per-operator actual rows and wall
    times, plus any view repairs that ran first. *)

val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

val report_json : report -> Kaskade_obs.Report.json
(** Structured form of the whole report, including the plan tree, the
    selection trace, per-candidate freshness and refresh decisions. *)

val run_raw :
  ?budget:Kaskade_util.Budget.t -> t -> Kaskade_query.Ast.t -> Kaskade_exec.Executor.result
[@@deprecated "use Kaskade.query ~target:Base"]
(** @deprecated The raising form of {!query}[ ~target:Base]: always
    evaluate on the (current) base graph. *)

val run_on_view :
  ?budget:Kaskade_util.Budget.t ->
  t ->
  string ->
  Kaskade_query.Ast.t ->
  Kaskade_exec.Executor.result
[@@deprecated "use Kaskade.query ~target:(View name)"]
(** @deprecated The raising form of {!query}[ ~target:(View name)].
    Raises [Not_found] for unknown views; a stale view is repaired
    first under [auto_refresh] and refused ([Invalid_argument])
    otherwise. Unlike [run] there is no base-graph fallback, so a
    failed or breaker-blocked repair raises {!Error.Refresh_error}. *)

(** {1 Workload advisor}

    Closes the observe-decide loop: the query log that {!run} /
    {!profile} accumulate ([Kaskade_obs.Qlog]) is replayed through the
    same enumeration + knapsack selection that {!select_views} runs on
    an assumed workload — except the queries and their frequencies are
    {e observed}, not assumed. The output is a diff against the
    current catalog (add / keep / drop per view) plus a cost-model
    calibration table from the logged est-vs-actual row counts. *)

module Advisor : sig
  type verdict =
    | Add  (** Selected for the observed workload but not materialized. *)
    | Keep  (** Materialized and still earning its keep. *)
    | Drop  (** Materialized but not selected — budget better spent elsewhere. *)

  type recommendation = {
    rec_view : string;
    rec_verdict : verdict;
    rec_est_edges : float;
        (** Estimated size (the knapsack weight); [0.] when the view
            was not among the replayed workload's candidates. *)
    rec_value : float;  (** Knapsack value (frequency-weighted improvement). *)
    rec_hits : int;  (** Logged queries this view actually answered. *)
  }

  type calibration = {
    cal_target : string;  (** View name, or [""] for the base graph. *)
    cal_queries : int;  (** Logged runs contributing to the ratio. *)
    cal_ratio : float;
        (** Geometric mean of actual/estimated rows at the plan root —
            1.0 is a perfect cost model. *)
    cal_suspect : bool;  (** Ratio outside [\[0.5, 2\]]. *)
  }

  type advice = {
    workload : (string * int) list;
        (** Distinct logged queries (canonical text) with frequencies,
            most frequent first. *)
    replayed : int;  (** Log records that entered the replay. *)
    skipped : int;  (** Records whose query text no longer parses. *)
    budget_edges : int;
    selection : Selection.t;  (** The full knapsack trace behind the verdicts. *)
    recommendations : recommendation list;  (** Adds, then keeps, then drops. *)
    calibration : calibration list;
  }

  val advise : ?budget_edges:int -> ?records:Kaskade_obs.Qlog.record list -> t -> advice
  (** Replay [records] (default: the process query log,
      [Qlog.records ()] — pass [Qlog.load]ed records to advise on a
      workload captured elsewhere) under [budget_edges] (default: the
      current base graph's edge count, the paper's "storage comparable
      to the graph itself" operating point). Distinct queries are
      grouped by hash and their frequencies become
      [Selection.select]'s [query_weights], so a query asked 100 times
      pulls selection toward its views 100x harder than a one-off.
      Unparseable texts are skipped (counted), failed runs still count
      toward frequencies — demand is demand. *)

  val pp : Format.formatter -> advice -> unit
  val to_string : advice -> string
  val to_json : advice -> Kaskade_obs.Report.json
end

val breaker_states : t -> (string * Kaskade_util.Breaker.t) list
(** Circuit breakers with history (open, half-open, or closed with
    recorded failures), in catalog order — pristine views are
    omitted. *)

val base_ctx : t -> Kaskade_exec.Executor.ctx
(** The base graph's executor context — a {e live} context reading
    through the overlay (analytics state such as Q7's community labels
    lives here between queries, and is invalidated by updates). *)

val view_ctx : t -> string -> Kaskade_exec.Executor.ctx
(** Executor context of a materialized view (persistent per view
    until the view is refreshed, so a CALL pipeline like Q7 -> Q8
    behaves on views too). *)
