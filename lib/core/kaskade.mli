(** The Kaskade system facade (paper Fig. 2): a graph plus workload
    analyzer (view selection), view enumerator, query rewriter, and
    execution engine, wired together.

    {[
      let ks = Kaskade.create graph in
      let q = Kaskade.parse "SELECT ... FROM (MATCH ...)" in
      (* choose + materialize views for a workload under a budget *)
      let sel = Kaskade.select_views ks ~queries:[ q ] ~budget_edges:100_000 in
      Kaskade.materialize_selected ks sel;
      (* transparently answer from the best materialized view *)
      let result, how = Kaskade.run ks q in
      ...
    ]} *)

(** Re-exported components (see each module's own documentation). *)

module Facts = Facts
module Rules = Rules
module Enumerate = Enumerate
module Estimator = Estimator
module Selection = Selection
module Rewrite = Rewrite

type t

type run_target =
  | Raw  (** Answered on the base graph. *)
  | Via_view of string  (** Answered over the named materialized view. *)

val create :
  ?alpha:float -> ?mode:Kaskade_exec.Executor.mode -> Kaskade_graph.Graph.t -> t
(** [alpha] (default 95) parameterizes view-size estimation — the
    operating point the paper recommends (§VII-D). *)

val graph : t -> Kaskade_graph.Graph.t
val schema : t -> Kaskade_graph.Schema.t
val stats : t -> Kaskade_graph.Gstats.t
val catalog : t -> Kaskade_views.Catalog.t

val parse : string -> Kaskade_query.Ast.t
(** Parse the hybrid query language (re-export of [Qparser.parse]). *)

val enumerate_views : t -> Kaskade_query.Ast.t -> Enumerate.enumeration
(** Constraint-based view enumeration for one query (§IV). *)

val select_views :
  ?solver:Selection.solver ->
  ?query_weights:float list ->
  t ->
  queries:Kaskade_query.Ast.t list ->
  budget_edges:int ->
  Selection.t
(** Workload analysis (§V-B). Does not materialize anything. *)

val materialize : t -> Kaskade_views.View.t -> Kaskade_views.Catalog.entry
(** Execute a view definition against the base graph and register the
    result. Idempotent per view name. *)

val materialize_selected : t -> Selection.t -> Kaskade_views.Catalog.entry list

val best_rewriting :
  t -> Kaskade_query.Ast.t -> (Rewrite.rewriting * Kaskade_views.Catalog.entry) option
(** Among materialized views, the rewriting with the lowest estimated
    evaluation cost — [None] when no view helps (§V-C). *)

val run : t -> Kaskade_query.Ast.t -> Kaskade_exec.Executor.result * run_target
(** View-based evaluation: rewrite over the cheapest applicable
    materialized view, falling back to the base graph. Updates the
    process-wide metrics registry ([kaskade.view_hits] /
    [kaskade.view_misses] counters, [kaskade.query_seconds]
    histogram — see [Kaskade_obs.Metrics]). *)

(** {1 EXPLAIN / PROFILE}

    Observability entry points mirroring {!run}'s decision process
    without (EXPLAIN) or alongside (PROFILE) execution. *)

type view_candidate = {
  cand_view : string;  (** Materialized view name. *)
  cand_edges : int;  (** Actual size of the materialized view. *)
  cand_cost : float option;
      (** Estimated cost of the rewritten query over the view;
          [None] when the view cannot answer the query. *)
}

type report = {
  target : run_target;  (** The decision {!run} would make. *)
  raw_cost : float;  (** Estimated cost on the base graph. *)
  executed : Kaskade_query.Ast.t;
      (** The query actually evaluated: the rewriting when
          [target = Via_view _], the original otherwise. *)
  candidates : view_candidate list;
      (** Every materialized view considered, in catalog order. *)
  enum_candidates : string list;
      (** View names the enumerator proposes for this query (whether
          or not they are materialized). *)
  enum_inference_steps : int;  (** Prolog resolution steps spent. *)
  selection : Selection.t option;
      (** The most recent {!select_views} outcome — knapsack inputs
          (per-candidate size/cost/value) and outputs (chosen set,
          weight). [None] before any selection. *)
  plan : Kaskade_obs.Explain.node;  (** Operator tree for [executed]. *)
}

val explain : t -> Kaskade_query.Ast.t -> report
(** The plan and rewrite decision for [q], without executing it. *)

val profile : t -> Kaskade_query.Ast.t -> Kaskade_exec.Executor.result * report
(** Execute [q] exactly as {!run} would (the result is identical) and
    return the plan annotated with per-operator actual rows and wall
    times. *)

val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

val report_json : report -> Kaskade_obs.Report.json
(** Structured form of the whole report, including the plan tree and
    the selection trace. *)

val run_raw : t -> Kaskade_query.Ast.t -> Kaskade_exec.Executor.result
(** Always evaluate on the base graph. *)

val run_on_view : t -> string -> Kaskade_query.Ast.t -> Kaskade_exec.Executor.result
(** Evaluate a (already rewritten) query on a named materialized view.
    Raises [Not_found] for unknown views. *)

val base_ctx : t -> Kaskade_exec.Executor.ctx
(** The base graph's executor context (analytics state such as Q7's
    community labels lives here between queries). *)

val view_ctx : t -> string -> Kaskade_exec.Executor.ctx
(** Executor context of a materialized view (persistent per view, so a
    CALL pipeline like Q7 -> Q8 behaves on views too). *)
