(** Inference-based view enumeration (paper §IV-B): assert the mined
    facts, load the constraint-mining rules and view templates into
    the Prolog engine, and read every template instantiation back as a
    candidate view. *)

type candidate = {
  view : Kaskade_views.View.t;
  bridges : (string * string) option;
      (** For connectors: the query variables the contracted edge
          bridges (the paper's [X]/[Y] unification values). *)
}

type enumeration = {
  candidates : candidate list;  (** Deduplicated, deterministic order. *)
  inference_steps : int;  (** Resolution steps the engine spent — the
      measurement behind the constraint-injection ablation. *)
  facts : Kaskade_prolog.Term.t list;  (** The explicit constraints that
      were asserted (for inspection/tests). *)
}

val enumerate :
  ?budget:Kaskade_util.Budget.t -> Kaskade_graph.Schema.t -> Kaskade_query.Ast.t -> enumeration
(** Constraint-based enumeration for one query.

    [budget] bounds the Prolog engine: its remaining step allowance
    becomes the engine's step limit and the engine's periodic
    checkpoint re-checks the deadline. Exhaustion raises
    [Kaskade_util.Budget.Exhausted] with stage [Enumerate] (the
    engine's own [Budget_exceeded] never escapes a budgeted call), and
    resolution steps spent are charged back to the budget. *)

val enumerate_unconstrained :
  ?budget:Kaskade_util.Budget.t -> Kaskade_graph.Schema.t -> max_k:int -> enumeration
(** Ablation: schema-only enumeration of k-hop connectors up to
    [max_k] (no query constraints injected) — the [M^k]-shaped space
    of §IV. *)
