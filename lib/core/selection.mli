(** View selection (paper §V-B): a 0-1 knapsack over the candidate
    views of a query workload. Item weight = estimated view size
    (edges); item value = (sum over queries of
    [EvalCost(q) / EvalCost(q rewritten over v)]) divided by the
    view's creation cost; knapsack capacity = the space budget. *)

type solver = Branch_and_bound | Dp | Greedy

type candidate_report = {
  view : Kaskade_views.View.t;
  est_size : float;  (** Estimated edge count when materialized. *)
  creation_cost : float;
  improvement : float;  (** Summed cost ratio over applicable queries. *)
  value : float;  (** improvement / creation_cost. *)
  applicable_queries : int list;  (** Workload indices this view rewrites. *)
  chosen : bool;
}

type t = {
  reports : candidate_report list;  (** Every candidate, best value first. *)
  chosen : Kaskade_views.View.t list;
  budget_edges : int;
  total_weight : int;
  total_value : float;
}

val select :
  ?alpha:float ->
  ?solver:solver ->
  ?query_weights:float list ->
  ?shard_stats:Kaskade_graph.Gstats.t array ->
  Kaskade_graph.Gstats.t ->
  Kaskade_graph.Schema.t ->
  queries:Kaskade_query.Ast.t list ->
  budget_edges:int ->
  t
(** [alpha] (default 95, the paper's operating point) parameterizes
    the size estimator. [query_weights] scales each query's
    improvement contribution (the paper's frequency/importance
    extension); defaults to all 1. [shard_stats] (per-shard local
    statistics, [Gstats.per_shard]) switches the knapsack weight of
    each candidate to the {e sum} of per-shard size estimates —
    skew-aware sizing for a sharded store; with zero or one entries it
    is ignored. *)
