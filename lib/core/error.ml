module Budget = Kaskade_util.Budget

type t =
  | Parse of { message : string; line : int; col : int }
  | Plan of string
  | Budget_exhausted of { stage : Budget.stage; detail : string }
  | Refresh_failed of { view : string; reason : string }
  | Overloaded of { resource : string; capacity : int; in_use : int }
  | Io of string

exception Refresh_error of { view : string; reason : string }
exception Overload of { resource : string; capacity : int; in_use : int }

let to_string = function
  | Parse { message; line; col } ->
    Printf.sprintf "parse error at %d:%d: %s" line col message
  | Plan msg -> "planning error: " ^ msg
  | Budget_exhausted { stage; detail } ->
    Printf.sprintf "budget exhausted during %s: %s" (Budget.stage_label stage) detail
  | Refresh_failed { view; reason } ->
    Printf.sprintf "refresh of view %s failed: %s" view reason
  | Overloaded { resource; capacity; in_use } ->
    Printf.sprintf "overloaded: %s at capacity (%d/%d in use)" resource in_use capacity
  | Io msg -> "I/O error: " ^ msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

let label = function
  | Parse _ -> "parse"
  | Plan _ -> "plan"
  | Budget_exhausted _ -> "budget_exhausted"
  | Refresh_failed _ -> "refresh_failed"
  | Overloaded _ -> "overloaded"
  | Io _ -> "io"

let of_exn = function
  | Kaskade_query.Qparser.Parse_error { message; line; col } ->
    Some (Parse { message; line; col })
  | Kaskade_query.Analyze.Semantic_error msg -> Some (Plan msg)
  | Invalid_argument msg -> Some (Plan msg)
  | Not_found -> Some (Plan "no such view or entity")
  | Kaskade_prolog.Engine.Runtime_error msg -> Some (Plan ("inference: " ^ msg))
  | Kaskade_prolog.Engine.Budget_exceeded limit ->
    (* Only reachable when enumeration runs without a [Budget.t] (its
       own hard step ceiling); budgeted runs convert this earlier. *)
    Some
      (Budget_exhausted
         {
           stage = Budget.Enumerate;
           detail = Printf.sprintf "engine step limit of %d exceeded" limit;
         })
  | Budget.Exhausted { stage; detail } -> Some (Budget_exhausted { stage; detail })
  | Refresh_error { view; reason } -> Some (Refresh_failed { view; reason })
  | Overload { resource; capacity; in_use } -> Some (Overloaded { resource; capacity; in_use })
  | Budget.Fault_injected { site } -> Some (Io ("injected fault at " ^ site))
  | Unix.Unix_error (err, fn, arg) ->
    (* Socket/file failures from the serve loop must surface as typed
       errors, not kill the accept thread. *)
    let where = if arg = "" then fn else fn ^ " " ^ arg in
    Some (Io (Printf.sprintf "%s: %s" where (Unix.error_message err)))
  | Kaskade_graph.Gio.Format_error (msg, line) ->
    Some (Io (Printf.sprintf "line %d: %s" line msg))
  | Kaskade_store.Codec.Corrupt { file; reason } ->
    Some (Io (Printf.sprintf "%s: %s" file reason))
  | End_of_file -> Some (Io "unexpected end of file (truncated read)")
  | Sys_error msg -> Some (Io msg)
  | _ -> None

let guard f =
  match f () with
  | v -> Ok v
  | exception e -> begin
    match of_exn e with Some err -> Error err | None -> raise e
  end
