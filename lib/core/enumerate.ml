open Kaskade_prolog
open Kaskade_views
module Budget = Kaskade_util.Budget
module Metrics = Kaskade_obs.Metrics
module Trace = Kaskade_obs.Trace

let m_runs = Metrics.counter ~help:"View enumerations performed" "enumerate.runs"
let m_candidates = Metrics.counter ~help:"Candidate views produced" "enumerate.candidates"

let m_inference_steps =
  Metrics.counter ~help:"Prolog resolution steps spent enumerating" "enumerate.inference_steps"

type candidate = { view : View.t; bridges : (string * string) option }

type enumeration = {
  candidates : candidate list;
  inference_steps : int;
  facts : Term.t list;
}

let atom_exn = function
  | Term.Atom a -> a
  | t -> invalid_arg ("Enumerate: expected atom, got " ^ Term.to_string t)

let int_exn = function
  | Term.Int n -> n
  | t -> invalid_arg ("Enumerate: expected integer, got " ^ Term.to_string t)

let dedupe candidates =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      let key = View.name c.view in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    candidates

(* The engine's own step limit is the budget's remaining step
   allowance (when capped), and its periodic checkpoint re-checks the
   budget's deadline — so a budgeted enumeration is bounded in both
   work and wall time, and reports exhaustion as stage [Enumerate]
   rather than leaking [Engine.Budget_exceeded]. *)
let engine_with ?budget schema_rules facts =
  let db = Prelude.db_with_prelude () in
  Db.load db schema_rules;
  Facts.assert_all db facts;
  match budget with
  | None -> Engine.create db
  | Some b ->
    let step_limit =
      match Budget.remaining_steps b with
      | Some r -> Stdlib.min r 50_000_000
      | None -> 50_000_000
    in
    Engine.create ~step_limit
      ~checkpoint:(fun () -> Budget.check (Some b) Budget.Enumerate)
      db

(* Charge the engine's resolution steps to the budget and translate
   its own step-limit trip into the typed exhaustion. *)
let budgeted ?budget eng f =
  match f () with
  | out ->
    Budget.step ~cost:(Engine.steps eng) budget Budget.Enumerate;
    out
  | exception Engine.Budget_exceeded limit when budget <> None ->
    raise
      (Budget.Exhausted
         {
           stage = Budget.Enumerate;
           detail = Printf.sprintf "enumeration step budget of %d exceeded" limit;
         })

(* Book-keeping shared by both enumeration entry points: counters for
   the metrics registry plus span attributes when a trace collection
   is in flight. *)
let observed (e : enumeration) =
  Metrics.incr m_runs;
  Metrics.incr ~by:(List.length e.candidates) m_candidates;
  Metrics.incr ~by:e.inference_steps m_inference_steps;
  Trace.add_attr "candidates" (string_of_int (List.length e.candidates));
  Trace.add_attr "inference_steps" (string_of_int e.inference_steps);
  e

(* A summarizerRemoveEdges rewrite is only safe when every pattern
   edge is explicitly labeled (unlabeled and variable-length edges may
   traverse any type). *)
let all_edges_labeled summary =
  summary.Kaskade_query.Analyze.var_length_paths = []
  && List.for_all (fun (_, _, et) -> et <> None) summary.Kaskade_query.Analyze.edges

let enumerate ?budget schema query =
  Trace.with_span "enumerate" @@ fun () ->
  Budget.check budget Budget.Enumerate;
  Budget.fault_point Budget.Enumerate ~site:"enumerate";
  let summary = Kaskade_query.Analyze.check schema query in
  let facts = Facts.query_facts schema query @ Facts.schema_facts schema in
  let eng = engine_with ?budget Rules.all facts in
  Engine.reset_steps eng;
  budgeted ?budget eng @@ fun () ->
  let out = ref [] in
  let push view bridges = out := { view; bridges } :: !out in
  (* K-hop connectors (including the same-vertex-type special case). *)
  List.iter
    (fun sol ->
      let x = atom_exn (List.assoc "X" sol) and y = atom_exn (List.assoc "Y" sol) in
      let xt = atom_exn (List.assoc "XTYPE" sol) and yt = atom_exn (List.assoc "YTYPE" sol) in
      let k = int_exn (List.assoc "K" sol) in
      push (View.Connector (View.K_hop { src_type = xt; dst_type = yt; k })) (Some (x, y)))
    (Engine.all_solutions eng "kHopConnector(X, Y, XTYPE, YTYPE, K)");
  (* Variable-length same-vertex-type connectors. *)
  List.iter
    (fun sol ->
      let x = atom_exn (List.assoc "X" sol) and y = atom_exn (List.assoc "Y" sol) in
      let vt = atom_exn (List.assoc "VTYPE" sol) in
      push (View.Connector (View.Same_vertex_type { vtype = vt })) (Some (x, y)))
    (Engine.all_solutions eng "connectorSameVertexType(X, Y, VTYPE)");
  (* Source-to-sink connectors. *)
  List.iter
    (fun sol ->
      let x = atom_exn (List.assoc "X" sol) and y = atom_exn (List.assoc "Y" sol) in
      push (View.Connector View.Source_to_sink) (Some (x, y)))
    (Engine.all_solutions eng "sourceToSinkConnector(X, Y)");
  (* Same-edge-type connectors. *)
  List.iter
    (fun sol ->
      let et = atom_exn (List.assoc "ETYPE" sol) in
      push (View.Connector (View.Same_edge_type { etype = et })) None)
    (Engine.all_solutions eng "sameEdgeTypeConnector(ETYPE)");
  (* Vertex-inclusion summarizer. The Prolog template proposes the
     types the query *mentions*; variable-length segments also
     traverse intermediate types, so close the set under schema-walk
     membership (Rewrite.traversal_types) — keeping only the mentioned
     types would sever the paths the query must follow. Only emitted
     when it actually drops something. *)
  List.iter
    (fun sol ->
      match Term.to_list (List.assoc "TYPES" sol) with
      | Some types ->
        let mentioned = List.map atom_exn types in
        let closed =
          match Rewrite.traversal_types schema query with
          | Some needed -> List.sort_uniq compare (mentioned @ needed)
          | None -> mentioned
        in
        if List.length closed < Kaskade_graph.Schema.n_vertex_types schema then
          push (View.Summarizer (View.Vertex_inclusion closed)) None
      | None -> ())
    (Engine.all_solutions eng "summarizerVertexInclusion(TYPES)");
  (* Edge-removal summarizer, when provably safe. *)
  if all_edges_labeled summary then begin
    let removable =
      List.filter_map
        (fun sol -> Some (atom_exn (List.assoc "ETYPE_REMOVE" sol)))
        (Engine.all_solutions eng "summarizerRemoveEdges(ETYPE_REMOVE)")
    in
    if removable <> [] then
      push (View.Summarizer (View.Edge_removal (List.sort_uniq compare removable))) None
  end;
  observed { candidates = dedupe (List.rev !out); inference_steps = Engine.steps eng; facts }

let enumerate_unconstrained ?budget schema ~max_k =
  Trace.with_span "enumerate_unconstrained" @@ fun () ->
  Budget.check budget Budget.Enumerate;
  Budget.fault_point Budget.Enumerate ~site:"enumerate";
  let facts = Facts.schema_facts schema in
  let eng = engine_with ?budget (Rules.mining_rules ^ Rules.unconstrained_templates) facts in
  Engine.reset_steps eng;
  budgeted ?budget eng @@ fun () ->
  let out = ref [] in
  List.iter
    (fun sol ->
      let xt = atom_exn (List.assoc "XTYPE" sol) and yt = atom_exn (List.assoc "YTYPE" sol) in
      let k = int_exn (List.assoc "K" sol) in
      out :=
        { view = View.Connector (View.K_hop { src_type = xt; dst_type = yt; k }); bridges = None }
        :: !out)
    (Engine.all_solutions eng
       (Printf.sprintf "kHopConnectorNoQuery(XTYPE, YTYPE, %d, K)" max_k));
  List.iter
    (fun sol ->
      let vt = atom_exn (List.assoc "VTYPE" sol) in
      out :=
        { view = View.Connector (View.Same_vertex_type { vtype = vt }); bridges = None } :: !out)
    (Engine.all_solutions eng "connectorSameVertexTypeNoQuery(VTYPE)");
  observed { candidates = dedupe (List.rev !out); inference_steps = Engine.steps eng; facts }
