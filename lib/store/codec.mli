(** Binary encoding primitives shared by the WAL and snapshot formats.

    Conventions, chosen so the on-disk layout stays flat and
    mmap-friendly (ROADMAP open item: the CSR segment/slot arrays are
    already flat — they are written as contiguous fixed-width runs):

    - all integers little-endian; [u8]/[u32] fixed-width, [i64] a full
      64-bit two's-complement word (OCaml ints round-trip exactly);
    - strings and arrays are length-prefixed ([u32] count), elements
      contiguous;
    - topology arrays are 4-byte elements ([u32], or [i32] where [-1]
      is a legal sentinel), so a future [Bigarray.map_file] reader can
      view them in place at a computed offset;
    - every checksummed region uses {!fnv1a64} (the same FNV-1a the
      plan cache keys on, widened to 64 bits).

    Readers raise [End_of_file] on a short read — the one exception
    class torn-tail recovery must tolerate — and {!Corrupt} on
    structural damage (bad magic, checksum mismatch, impossible
    counts). *)

exception Corrupt of { file : string; reason : string }
(** Structurally invalid store file. Mapped to [Kaskade.Error.Io] by
    [Error.of_exn]; recovery treats a corrupt {e tail} as torn and
    truncates instead of raising. *)

val fnv1a64 : string -> int64
(** 64-bit FNV-1a over the whole string. *)

(** {1 Writing} *)

val add_u8 : Buffer.t -> int -> unit
val add_u32 : Buffer.t -> int -> unit
(** Raises [Invalid_argument] outside [[0, 2^32)]. *)

val add_i32 : Buffer.t -> int -> unit
(** Raises [Invalid_argument] outside signed 32-bit range. *)

val add_i64 : Buffer.t -> int -> unit
val add_f64 : Buffer.t -> float -> unit
val add_str : Buffer.t -> string -> unit
val add_u32_array : Buffer.t -> int array -> unit
val add_i32_array : Buffer.t -> int array -> unit

val add_value : Buffer.t -> Kaskade_graph.Value.t -> unit
val add_props : Buffer.t -> (string * Kaskade_graph.Value.t) list -> unit
val add_op : Buffer.t -> Kaskade_graph.Graph.Overlay.op -> unit
val add_ops : Buffer.t -> Kaskade_graph.Graph.Overlay.op list -> unit
val add_schema : Buffer.t -> Kaskade_graph.Schema.t -> unit

val add_props_table : Buffer.t -> Kaskade_graph.Props.t -> unit
(** Column-oriented: per property name, the (entity id, value) pairs
    present. *)

val add_graph : Buffer.t -> Kaskade_graph.Graph.t -> unit
(** Schema + flat topology arrays ([Graph.internal_arrays]) + both
    property tables — everything {!read_graph} needs to rebuild the
    frozen CSR via [Graph.of_arrays]. *)

val add_view : Buffer.t -> Kaskade_views.View.t -> unit

(** {1 Reading} *)

type reader
(** Cursor over one loaded file. *)

val reader : file:string -> string -> reader
(** [file] is used in error messages only. *)

val pos : reader -> int
val length : reader -> int
val corrupt : reader -> string -> 'a
(** Raise {!Corrupt} for this reader's file. *)

val u8 : reader -> int
val u32 : reader -> int
val i32 : reader -> int
val i64 : reader -> int
val f64 : reader -> float
val str : reader -> string
val sub : reader -> int -> string
(** Next [n] raw bytes. *)

val u32_array : reader -> int array
val i32_array : reader -> int array
val value : reader -> Kaskade_graph.Value.t
val props : reader -> (string * Kaskade_graph.Value.t) list
val op : reader -> Kaskade_graph.Graph.Overlay.op
val ops : reader -> Kaskade_graph.Graph.Overlay.op list
val schema : reader -> Kaskade_graph.Schema.t
val props_table : reader -> Kaskade_graph.Props.t
val graph : reader -> Kaskade_graph.Graph.t
val view : reader -> Kaskade_views.View.t
