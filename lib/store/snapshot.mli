(** Compact binary snapshots of the frozen CSR plus the view catalog.

    A snapshot captures everything recovery needs to skip both graph
    re-generation and view rematerialization: the base graph's flat
    topology arrays and property tables, and per materialized view its
    descriptor, physical graph, vertex mapping, build cost and
    {e freshness} (including the pending op delta of a [Stale] entry,
    so a view snapshotted mid-staleness recovers mid-staleness and the
    next refresh absorbs exactly the right delta).

    On-disk format: 8-byte magic ["KASKSNP1"], then one checksummed
    record with the same framing as the WAL —
    {v u32 payload_len | payload | i64 fnv1a64(payload) v} —
    whose payload is the {!Codec} encoding (all arrays flat,
    fixed-width, little-endian). Writes are crash-atomic: the bytes go
    to [<path>.tmp], are fsynced, and rename into place, so a snapshot
    file either exists wholly valid or not at all; a checksum failure
    (e.g. media damage) raises {!Codec.Corrupt} and recovery falls
    back to the previous snapshot.

    Per-shard variant: {!write_shards}/{!read_shards} mirror
    [Gio.save_shards]'s one-file-per-shard layout (global vids inside,
    every edge in exactly its source shard's file) in the binary
    format, for stores whose base graph lives sharded. *)

type contents = {
  seq : int;  (** WAL sequence number the snapshot includes. *)
  graph : Kaskade_graph.Graph.t;
  views : (Kaskade_views.Materialize.materialized * Kaskade_views.Catalog.freshness) list;
}

val write :
  string ->
  seq:int ->
  graph:Kaskade_graph.Graph.t ->
  views:(Kaskade_views.Materialize.materialized * Kaskade_views.Catalog.freshness) list ->
  unit
(** Crash-atomic write ([<path>.tmp] + fsync + rename). Raises
    [Invalid_argument] on a [Rebuilding] entry — the facade serializes
    snapshots against refreshes, so one can only appear through caller
    error, and snapshotting its pre-delta graph would lose the
    delta. *)

val read : string -> contents
(** Raises {!Codec.Corrupt} on bad magic or checksum, [End_of_file]
    on a short file, [Sys_error] when absent. *)

val shard_path : string -> shard:int -> total:int -> string
(** [<path>.shard<i>-of-<n>] — the same naming scheme as
    [Gio.shard_path]. *)

val write_shards : Kaskade_graph.Shard.t -> string -> seq:int -> unit
(** One crash-atomic binary file per shard under {!shard_path}. *)

val read_shards : string -> shards:int -> int * Kaskade_graph.Shard.t
(** [(seq, sharded graph)] rebuilt via [Shard.of_arrays] without ever
    materializing a global CSR. All files must agree on seq, shard
    count and policy ({!Codec.Corrupt} otherwise). *)
