module Budget = Kaskade_util.Budget
module Metrics = Kaskade_obs.Metrics

let log_src = Logs.Src.create "kaskade.store" ~doc:"Kaskade durability layer"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_appends = Metrics.counter ~help:"WAL records appended" "kaskade.wal_appends"

let m_bytes =
  Metrics.counter ~help:"WAL bytes written (records including framing)" "kaskade.wal_bytes"

let m_fsyncs = Metrics.counter ~help:"WAL fsync calls" "kaskade.wal_fsyncs"

type fsync_policy = Always | Every_n of int | Never

let fsync_policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Always
  | "never" -> Never
  | s -> begin
    match String.split_on_char ':' s with
    | [ "every"; n ] -> begin
      match int_of_string_opt n with
      | Some n when n >= 1 -> Every_n n
      | _ -> invalid_arg ("Wal.fsync_policy_of_string: bad interval in " ^ s)
    end
    | _ -> invalid_arg ("Wal.fsync_policy_of_string: expected always, never or every:N, got " ^ s)
  end

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Every_n n -> Printf.sprintf "every:%d" n

let magic = "KASKWAL1"

type t = {
  path : string;
  oc : out_channel;
  fd : Unix.file_descr;
  policy : fsync_policy;
  mutable seq : int;
  mutable unsynced : int;  (* appends since the last fsync (Every_n) *)
  truncated : int;
}

let path t = t.path
let last_seq t = t.seq
let truncated_records t = t.truncated

(* Scan the raw file image: valid records in order, the byte length of
   the valid prefix, and whether a torn/corrupt tail was dropped. Any
   parse failure — short read, checksum mismatch, bad op tag — after a
   valid prefix is treated as the torn tail: everything a crashed
   append could leave behind. *)
let scan ~file s =
  let len = String.length s in
  if len < String.length magic || String.sub s 0 (String.length magic) <> magic then
    raise (Codec.Corrupt { file; reason = "bad WAL magic" });
  let r = Codec.reader ~file s in
  ignore (Codec.sub r (String.length magic));
  let records = ref [] in
  let valid_len = ref (Codec.pos r) in
  (try
     while Codec.pos r < len do
       let payload_len = Codec.u32 r in
       let body = Codec.sub r (8 + payload_len) in
       let checksum = Codec.i64 r in
       if Int64.to_int (Codec.fnv1a64 body) <> checksum then raise Exit;
       let br = Codec.reader ~file body in
       let seq = Codec.i64 br in
       let batch = Codec.ops br in
       records := (seq, batch) :: !records;
       valid_len := Codec.pos r
     done
   with End_of_file | Exit | Codec.Corrupt _ -> ());
  let truncated = if !valid_len < len then 1 else 0 in
  (List.rev !records, !valid_len, truncated)

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read path =
  let records, _, truncated = scan ~file:path (read_raw path) in
  (records, truncated)

let fsync_count t =
  (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
  t.unsynced <- 0;
  Metrics.incr m_fsyncs

let open_ ?(fsync_policy = Always) path =
  let fresh = not (Sys.file_exists path) in
  let records, valid_len, truncated =
    if fresh then ([], 0, 0) else scan ~file:path (read_raw path)
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let t =
    {
      path;
      oc = Unix.out_channel_of_descr fd;
      fd;
      policy = fsync_policy;
      seq = (match List.rev records with (seq, _) :: _ -> seq | [] -> 0);
      unsynced = 0;
      truncated;
    }
  in
  if fresh then begin
    output_string t.oc magic;
    flush t.oc;
    fsync_count t
  end
  else begin
    if truncated > 0 then begin
      Log.warn (fun k ->
          k "%s: truncating torn tail record (valid through byte %d)" path valid_len);
      Unix.ftruncate fd valid_len
    end;
    ignore (Unix.lseek fd valid_len Unix.SEEK_SET)
  end;
  t

let encode_record ~seq ops =
  let body = Buffer.create 256 in
  Codec.add_i64 body seq;
  Codec.add_ops body ops;
  let body = Buffer.contents body in
  let rec_buf = Buffer.create (String.length body + 16) in
  Codec.add_u32 rec_buf (String.length body - 8);
  Buffer.add_string rec_buf body;
  Codec.add_i64 rec_buf (Int64.to_int (Codec.fnv1a64 body));
  Buffer.contents rec_buf

let append t ops =
  let seq = t.seq + 1 in
  let record = encode_record ~seq ops in
  (* Seeded kill mid-append: leave half the record on disk — the torn
     tail the next open must truncate — then die with the armed
     exception, exactly as if the process was killed mid-write. *)
  (try Budget.fault_point Budget.Execute ~site:"store.wal_append"
   with e ->
     output_substring t.oc record 0 (String.length record / 2);
     flush t.oc;
     (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
     raise e);
  output_string t.oc record;
  flush t.oc;
  t.seq <- seq;
  Metrics.incr m_appends;
  Metrics.incr ~by:(String.length record) m_bytes;
  (match t.policy with
  | Always -> fsync_count t
  | Every_n n ->
    t.unsynced <- t.unsynced + 1;
    if t.unsynced >= n then fsync_count t
  | Never -> ());
  seq

let sync t =
  flush t.oc;
  fsync_count t

let close t =
  flush t.oc;
  (match t.policy with Never -> () | Always | Every_n _ -> fsync_count t);
  close_out t.oc
