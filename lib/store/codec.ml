open Kaskade_graph

exception Corrupt of { file : string; reason : string }

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* Writing ----------------------------------------------------------- *)

let add_u8 buf i =
  if i < 0 || i > 0xFF then invalid_arg "Codec.add_u8: out of range";
  Buffer.add_uint8 buf i

let add_u32 buf i =
  if i < 0 || i > 0xFFFFFFFF then invalid_arg "Codec.add_u32: out of range";
  Buffer.add_int32_le buf (Int32.of_int i)

let add_i32 buf i =
  if i < Int32.to_int Int32.min_int || i > Int32.to_int Int32.max_int then
    invalid_arg "Codec.add_i32: out of range";
  Buffer.add_int32_le buf (Int32.of_int i)

let add_i64 buf i = Buffer.add_int64_le buf (Int64.of_int i)
let add_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_u32_array buf a =
  add_u32 buf (Array.length a);
  Array.iter (fun x -> add_u32 buf x) a

let add_i32_array buf a =
  add_u32 buf (Array.length a);
  Array.iter (fun x -> add_i32 buf x) a

let add_value buf = function
  | Value.Null -> add_u8 buf 0
  | Value.Bool b ->
    add_u8 buf 1;
    add_u8 buf (if b then 1 else 0)
  | Value.Int n ->
    add_u8 buf 2;
    add_i64 buf n
  | Value.Float f ->
    add_u8 buf 3;
    add_f64 buf f
  | Value.Str s ->
    add_u8 buf 4;
    add_str buf s

let add_props buf props =
  add_u32 buf (List.length props);
  List.iter
    (fun (k, v) ->
      add_str buf k;
      add_value buf v)
    props

let add_op buf = function
  | Graph.Overlay.Insert_vertex { vtype; props } ->
    add_u8 buf 0;
    add_str buf vtype;
    add_props buf props
  | Graph.Overlay.Insert_edge { src; dst; etype; props } ->
    add_u8 buf 1;
    add_u32 buf src;
    add_u32 buf dst;
    add_str buf etype;
    add_props buf props
  | Graph.Overlay.Delete_edge { src; dst; etype } ->
    add_u8 buf 2;
    add_u32 buf src;
    add_u32 buf dst;
    add_str buf etype

let add_ops buf ops =
  add_u32 buf (List.length ops);
  List.iter (add_op buf) ops

let add_schema buf schema =
  let vts = Schema.vertex_types schema in
  add_u32 buf (List.length vts);
  List.iter (add_str buf) vts;
  let eds = Schema.edge_defs schema in
  add_u32 buf (List.length eds);
  List.iter
    (fun (d : Schema.edge_def) ->
      add_str buf d.Schema.src;
      add_str buf d.Schema.name;
      add_str buf d.Schema.dst)
    eds

let add_props_table buf props =
  let keys = Props.keys props in
  add_u32 buf (List.length keys);
  List.iter
    (fun key ->
      (* [column_size] may be unknown (0); collect to count exactly. *)
      let entries = ref [] in
      Props.iter_column props key (fun id v -> entries := (id, v) :: !entries);
      let entries = List.rev !entries in
      add_str buf key;
      add_u32 buf (List.length entries);
      List.iter
        (fun (id, v) ->
          add_u32 buf id;
          add_value buf v)
        entries)
    keys

let add_graph buf g =
  add_schema buf (Graph.schema g);
  add_u32 buf (Graph.n_vertices g);
  add_u32 buf (Graph.n_edges g);
  let vtype, e_src, e_dst, e_type = Graph.internal_arrays g in
  add_u32_array buf vtype;
  add_u32_array buf e_src;
  add_u32_array buf e_dst;
  add_u32_array buf e_type;
  let vprops, eprops = Graph.internal_props g in
  add_props_table buf vprops;
  add_props_table buf eprops

let add_agg buf agg =
  add_u8 buf
    (match agg with
    | Kaskade_views.View.Agg_sum -> 0
    | Kaskade_views.View.Agg_count -> 1
    | Kaskade_views.View.Agg_min -> 2
    | Kaskade_views.View.Agg_max -> 3)

let add_str_list buf l =
  add_u32 buf (List.length l);
  List.iter (add_str buf) l

let add_view buf v =
  let open Kaskade_views.View in
  match v with
  | Connector (K_hop { src_type; dst_type; k }) ->
    add_u8 buf 0;
    add_str buf src_type;
    add_str buf dst_type;
    add_u32 buf k
  | Connector (Same_vertex_type { vtype }) ->
    add_u8 buf 1;
    add_str buf vtype
  | Connector (Same_edge_type { etype }) ->
    add_u8 buf 2;
    add_str buf etype
  | Connector Source_to_sink -> add_u8 buf 3
  | Summarizer (Vertex_inclusion l) ->
    add_u8 buf 10;
    add_str_list buf l
  | Summarizer (Vertex_removal l) ->
    add_u8 buf 11;
    add_str_list buf l
  | Summarizer (Edge_inclusion l) ->
    add_u8 buf 12;
    add_str_list buf l
  | Summarizer (Edge_removal l) ->
    add_u8 buf 13;
    add_str_list buf l
  | Summarizer (Vertex_aggregator { vtype; group_prop; agg_prop; agg }) ->
    add_u8 buf 14;
    add_str buf vtype;
    add_str buf group_prop;
    add_str buf agg_prop;
    add_agg buf agg
  | Summarizer (Subgraph_aggregator { agg_prop; agg }) ->
    add_u8 buf 15;
    add_str buf agg_prop;
    add_agg buf agg
  | Summarizer (Ego_aggregator { k; agg_prop; agg }) ->
    add_u8 buf 16;
    add_u32 buf k;
    add_str buf agg_prop;
    add_agg buf agg

(* Reading ----------------------------------------------------------- *)

type reader = { s : string; file : string; mutable pos : int }

let reader ~file s = { s; file; pos = 0 }
let pos r = r.pos
let length r = String.length r.s
let corrupt r reason = raise (Corrupt { file = r.file; reason })

(* A read past the valid bytes is [End_of_file] — the signal torn-tail
   recovery truncates on, and the exception the [Error.Io] mapping
   catches for callers that read a damaged file directly. *)
let need r n = if r.pos + n > String.length r.s then raise End_of_file

let u8 r =
  need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.s r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let i32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.s r.pos) in
  r.pos <- r.pos + 4;
  v

let i64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let f64 r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let sub r n =
  need r n;
  let v = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  v

let str r =
  let n = u32 r in
  sub r n

let u32_array r =
  let n = u32 r in
  need r (4 * n);
  Array.init n (fun _ -> u32 r)

let i32_array r =
  let n = u32 r in
  need r (4 * n);
  Array.init n (fun _ -> i32 r)

let value r =
  match u8 r with
  | 0 -> Value.Null
  | 1 -> Value.Bool (u8 r <> 0)
  | 2 -> Value.Int (i64 r)
  | 3 -> Value.Float (f64 r)
  | 4 -> Value.Str (str r)
  | tag -> corrupt r (Printf.sprintf "unknown value tag %d" tag)

let props r =
  let n = u32 r in
  List.init n (fun _ ->
      let k = str r in
      let v = value r in
      (k, v))

let op r =
  match u8 r with
  | 0 ->
    let vtype = str r in
    let props = props r in
    Graph.Overlay.Insert_vertex { vtype; props }
  | 1 ->
    let src = u32 r in
    let dst = u32 r in
    let etype = str r in
    let props = props r in
    Graph.Overlay.Insert_edge { src; dst; etype; props }
  | 2 ->
    let src = u32 r in
    let dst = u32 r in
    let etype = str r in
    Graph.Overlay.Delete_edge { src; dst; etype }
  | tag -> corrupt r (Printf.sprintf "unknown op tag %d" tag)

let ops r =
  let n = u32 r in
  List.init n (fun _ -> op r)

let schema r =
  let nv = u32 r in
  let vertices = List.init nv (fun _ -> str r) in
  let ne = u32 r in
  let edges =
    List.init ne (fun _ ->
        let src = str r in
        let name = str r in
        let dst = str r in
        (src, name, dst))
  in
  Schema.define ~vertices ~edges

let props_table r =
  let t = Props.create () in
  let ncols = u32 r in
  for _ = 1 to ncols do
    let key = str r in
    let n = u32 r in
    for _ = 1 to n do
      let id = u32 r in
      let v = value r in
      Props.set t id key v
    done
  done;
  t

let graph r =
  let sc = schema r in
  let n = u32 r in
  let m = u32 r in
  let vtype = u32_array r in
  let e_src = u32_array r in
  let e_dst = u32_array r in
  let e_type = u32_array r in
  if Array.length vtype <> n then corrupt r "vertex array length mismatch";
  if Array.length e_src <> m || Array.length e_dst <> m || Array.length e_type <> m then
    corrupt r "edge array length mismatch";
  let vprops = props_table r in
  let eprops = props_table r in
  Graph.of_arrays sc ~vtype ~e_src ~e_dst ~e_type ~vprops ~eprops

let agg r =
  match u8 r with
  | 0 -> Kaskade_views.View.Agg_sum
  | 1 -> Kaskade_views.View.Agg_count
  | 2 -> Kaskade_views.View.Agg_min
  | 3 -> Kaskade_views.View.Agg_max
  | tag -> corrupt r (Printf.sprintf "unknown aggregate tag %d" tag)

let str_list r =
  let n = u32 r in
  List.init n (fun _ -> str r)

let view r =
  let open Kaskade_views.View in
  match u8 r with
  | 0 ->
    let src_type = str r in
    let dst_type = str r in
    let k = u32 r in
    Connector (K_hop { src_type; dst_type; k })
  | 1 -> Connector (Same_vertex_type { vtype = str r })
  | 2 -> Connector (Same_edge_type { etype = str r })
  | 3 -> Connector Source_to_sink
  | 10 -> Summarizer (Vertex_inclusion (str_list r))
  | 11 -> Summarizer (Vertex_removal (str_list r))
  | 12 -> Summarizer (Edge_inclusion (str_list r))
  | 13 -> Summarizer (Edge_removal (str_list r))
  | 14 ->
    let vtype = str r in
    let group_prop = str r in
    let agg_prop = str r in
    let agg = agg r in
    Summarizer (Vertex_aggregator { vtype; group_prop; agg_prop; agg })
  | 15 ->
    let agg_prop = str r in
    let agg = agg r in
    Summarizer (Subgraph_aggregator { agg_prop; agg })
  | 16 ->
    let k = u32 r in
    let agg_prop = str r in
    let agg = agg r in
    Summarizer (Ego_aggregator { k; agg_prop; agg })
  | tag -> corrupt r (Printf.sprintf "unknown view tag %d" tag)
