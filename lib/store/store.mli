(** Durable store handle: a data directory holding one {!Wal} log plus
    a sequence of binary {!Snapshot} files. The facade opens one when
    [Config.data_dir] is set, appends every update batch to the WAL
    before applying it, and periodically folds the log into a fresh
    snapshot so recovery replays a bounded tail.

    Directory layout:
    {v
      <dir>/wal.log                    the write-ahead log
      <dir>/snapshot-<seq12>.ksnap     snapshots, seq zero-padded
    v}

    Recovery ({!recover}) loads the latest snapshot that validates —
    a corrupt one is skipped and the previous one used — then replays
    every WAL batch with a sequence number greater than the snapshot's.
    The sequence bookkeeping makes replay idempotent: a batch covered
    by the snapshot is never applied twice. A torn final WAL record is
    truncated, not fatal.

    Metrics: [kaskade.recovery_replayed_ops],
    [kaskade.recovery_truncated_records] (plus the [kaskade.wal_*]
    family from {!Wal}). *)

type t

val open_ : ?fsync_policy:Wal.fsync_policy -> ?snapshot_every:int -> string -> t
(** Open (creating if needed) a store rooted at the directory. The WAL
    is validated and any torn tail truncated. [snapshot_every]
    (default 512) is the append count after which {!should_snapshot}
    turns true; [0] disables automatic snapshots. *)

val dir : t -> string
val wal : t -> Wal.t

val last_seq : t -> int
(** Sequence number of the last durable WAL record. *)

val snapshot_seq : t -> int
(** Sequence covered by the newest on-disk snapshot, [-1] when none
    has been written yet. *)

val append : t -> Kaskade_graph.Graph.Overlay.op list -> int
(** WAL-append one batch (see {!Wal.append}) and advance the
    snapshot-cadence counter. *)

val should_snapshot : t -> bool
(** True once [snapshot_every > 0] appends have accumulated since the
    last snapshot. *)

val write_snapshot :
  t ->
  graph:Kaskade_graph.Graph.t ->
  views:
    (Kaskade_views.Materialize.materialized * Kaskade_views.Catalog.freshness) list ->
  string
(** Crash-atomically write a snapshot covering {!last_seq}, reset the
    cadence counter, and return its path. Older snapshots are kept —
    they are the fallback when the newest is damaged. *)

val wal_path : string -> string
val snapshot_path : string -> int -> string

val close : t -> unit

(** Result of {!recover}: the reopened store plus everything needed to
    rebuild the in-memory engine without touching the base dataset. *)
type recovered = {
  r_store : t;
  r_graph : Kaskade_graph.Graph.t;
  r_views :
    (Kaskade_views.Materialize.materialized * Kaskade_views.Catalog.freshness) list;
  r_tail : (int * Kaskade_graph.Graph.Overlay.op list) list;
      (** WAL batches past the snapshot, in order — the caller replays
          these onto the overlay. *)
  r_snapshot_seq : int;
  r_replayed_ops : int;  (** Total ops across [r_tail]. *)
  r_truncated_records : int;  (** Torn tail records dropped (0 or 1). *)
}

val recover : ?fsync_policy:Wal.fsync_policy -> ?snapshot_every:int -> string -> recovered
(** Load the newest valid snapshot (skipping corrupt ones with a
    warning), scan the WAL tolerating a torn tail, and return the
    batches to replay. Raises {!Codec.Corrupt} when the directory
    holds no valid snapshot (a WAL alone cannot rebuild the seed
    graph), [Sys_error] when the directory does not exist. *)
