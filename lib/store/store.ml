module Metrics = Kaskade_obs.Metrics

let log_src = Logs.Src.create "kaskade.store.recover" ~doc:"Kaskade crash recovery"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_replayed = Metrics.counter ~help:"ops replayed from the WAL tail" "kaskade.recovery_replayed_ops"

let m_truncated =
  Metrics.counter ~help:"torn WAL tail records truncated" "kaskade.recovery_truncated_records"

type t = {
  dir : string;
  wal : Wal.t;
  snapshot_every : int;
  mutable appends_since_snapshot : int;
  mutable snapshot_seq : int;
}

let wal_path dir = Filename.concat dir "wal.log"
let snapshot_path dir seq = Filename.concat dir (Printf.sprintf "snapshot-%012d.ksnap" seq)

(* Seqs of on-disk snapshots, newest first. *)
let snapshot_seqs dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match Scanf.sscanf_opt name "snapshot-%12d.ksnap%!" (fun seq -> seq) with
         | Some seq when Filename.concat dir name = snapshot_path dir seq -> Some seq
         | _ -> None)
  |> List.sort (fun a b -> compare b a)

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?fsync_policy ?(snapshot_every = 512) dir =
  ensure_dir dir;
  let wal = Wal.open_ ?fsync_policy (wal_path dir) in
  {
    dir;
    wal;
    snapshot_every;
    appends_since_snapshot = 0;
    snapshot_seq = (match snapshot_seqs dir with seq :: _ -> seq | [] -> -1);
  }

let dir t = t.dir
let wal t = t.wal
let last_seq t = Wal.last_seq t.wal
let snapshot_seq t = t.snapshot_seq

let append t ops =
  let seq = Wal.append t.wal ops in
  t.appends_since_snapshot <- t.appends_since_snapshot + 1;
  seq

let should_snapshot t = t.snapshot_every > 0 && t.appends_since_snapshot >= t.snapshot_every

let write_snapshot t ~graph ~views =
  let seq = last_seq t in
  let path = snapshot_path t.dir seq in
  Snapshot.write path ~seq ~graph ~views;
  t.appends_since_snapshot <- 0;
  t.snapshot_seq <- seq;
  path

let close t = Wal.close t.wal

type recovered = {
  r_store : t;
  r_graph : Kaskade_graph.Graph.t;
  r_views :
    (Kaskade_views.Materialize.materialized * Kaskade_views.Catalog.freshness) list;
  r_tail : (int * Kaskade_graph.Graph.Overlay.op list) list;
  r_snapshot_seq : int;
  r_replayed_ops : int;
  r_truncated_records : int;
}

(* Newest snapshot that validates; corrupt ones are skipped so a
   damaged latest snapshot costs a longer replay, not the store. *)
let load_snapshot dir =
  let rec try_seqs = function
    | [] ->
      raise
        (Codec.Corrupt { file = dir; reason = "no valid snapshot (cannot rebuild seed graph from WAL alone)" })
    | seq :: rest -> begin
      let path = snapshot_path dir seq in
      match Snapshot.read path with
      | snap -> snap
      | exception (Codec.Corrupt _ | End_of_file) ->
        Log.warn (fun k -> k "%s: corrupt snapshot, falling back to previous" path);
        try_seqs rest
    end
  in
  try_seqs (snapshot_seqs dir)

let recover ?fsync_policy ?snapshot_every dir =
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  let snap = load_snapshot dir in
  let batches, truncated =
    if Sys.file_exists (wal_path dir) then Wal.read (wal_path dir) else ([], 0)
  in
  (* Seq bookkeeping is the idempotency mechanism: batches at or below
     the snapshot's seq are already folded in and must not reapply. *)
  let tail = List.filter (fun (seq, _) -> seq > snap.Snapshot.seq) batches in
  let replayed = List.fold_left (fun acc (_, ops) -> acc + List.length ops) 0 tail in
  Metrics.incr ~by:replayed m_replayed;
  Metrics.incr ~by:truncated m_truncated;
  Log.info (fun k ->
      k "%s: recovered from snapshot seq %d, replaying %d batches (%d ops)%s" dir
        snap.Snapshot.seq (List.length tail) replayed
        (if truncated > 0 then ", torn tail truncated" else ""));
  let store = open_ ?fsync_policy ?snapshot_every dir in
  {
    r_store = store;
    r_graph = snap.Snapshot.graph;
    r_views = snap.Snapshot.views;
    r_tail = tail;
    r_snapshot_seq = snap.Snapshot.seq;
    r_replayed_ops = replayed;
    r_truncated_records = truncated;
  }
