(** Write-ahead log for the live-update path. The record vocabulary is
    exactly [Graph.Overlay.op]: the facade appends every requested
    update batch here — and fsyncs, per {!fsync_policy} — {e before}
    applying it to the overlay, so a crash can lose at most the batch
    whose append tore, never one that was acknowledged.

    On-disk format: an 8-byte magic ["KASKWAL1"] followed by
    length-prefixed records

    {v u32 payload_len | i64 seq | payload | i64 fnv1a64(seq|payload) v}

    where the payload is the {!Codec} encoding of the op list and the
    checksum covers the seq word plus the payload. Sequence numbers
    are dense from 1. {!open_} validates the whole log: a torn or
    checksum-failing final record is {e truncated, not fatal} (the
    crash-mid-append case recovery must absorb); damage before the
    tail raises {!Codec.Corrupt}.

    Metrics: [kaskade.wal_appends], [kaskade.wal_bytes] (record bytes
    including framing), [kaskade.wal_fsyncs].

    Fault injection: ["store.wal_append"] ({!Kaskade_util.Budget.fault_point})
    fires inside {!append} and simulates a kill mid-write — a prefix
    of the record reaches the file, then the armed exception
    propagates. The [bench recovery] drill uses it for seeded
    crashes. *)

(** When appends reach the platter: [Always] fsyncs every append
    (no acknowledged batch is ever lost, ~1 fsync of latency per
    batch); [Every_n n] fsyncs every [n]-th append (bounded loss
    window, amortized cost); [Never] only flushes to the OS (fast,
    loses the page cache on power failure — fine for tests and
    rebuildable data). *)
type fsync_policy = Always | Every_n of int | Never

val fsync_policy_of_string : string -> fsync_policy
(** ["always"], ["never"], or ["every:N"]; raises [Invalid_argument]
    otherwise. *)

val fsync_policy_to_string : fsync_policy -> string

type t

val open_ : ?fsync_policy:fsync_policy -> string -> t
(** Open (creating if absent) the log for append. Existing records are
    validated; a torn tail is truncated off the file before the handle
    is positioned for append. Default policy is [Always]. *)

val path : t -> string
val last_seq : t -> int
(** Sequence number of the last durable record (0 when empty). *)

val truncated_records : t -> int
(** Torn tail records dropped by this {!open_} (0 or 1). *)

val append : t -> Kaskade_graph.Graph.Overlay.op list -> int
(** Append one batch and return its sequence number, syncing per the
    policy. The record is fully written (and, under [Always], fsynced)
    before return. *)

val sync : t -> unit
(** Force an fsync regardless of policy. *)

val close : t -> unit
(** Flush, fsync (unless the policy is [Never]) and close. *)

val read : string -> (int * Kaskade_graph.Graph.Overlay.op list) list * int
(** Read-only scan of a log file: the valid [(seq, batch)] records in
    order, plus the number of torn tail records ignored (0 or 1). The
    file is not modified. Raises [Codec.Corrupt] on a bad magic,
    [Sys_error] when the file does not exist. *)
