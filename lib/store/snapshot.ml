open Kaskade_graph
open Kaskade_views

let magic = "KASKSNP1"
let shard_magic = "KASKSHS1"

type contents = {
  seq : int;
  graph : Graph.t;
  views : (Materialize.materialized * Catalog.freshness) list;
}

(* Crash-atomic replace: a reader never observes a half-written file —
   it sees the old snapshot until the rename, the new one after. *)
let write_atomic path payload =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc payload;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let frame ~magic payload =
  let buf = Buffer.create (String.length payload + 24) in
  Buffer.add_string buf magic;
  Codec.add_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  Codec.add_i64 buf (Int64.to_int (Codec.fnv1a64 payload));
  Buffer.contents buf

(* Validate framing and hand back a reader positioned at the payload. *)
let unframe ~magic ~file s =
  let mlen = String.length magic in
  if String.length s < mlen || String.sub s 0 mlen <> magic then
    raise (Codec.Corrupt { file; reason = "bad snapshot magic" });
  let r = Codec.reader ~file s in
  ignore (Codec.sub r mlen);
  let payload_len = Codec.u32 r in
  let payload = Codec.sub r payload_len in
  let checksum = Codec.i64 r in
  if Int64.to_int (Codec.fnv1a64 payload) <> checksum then
    raise (Codec.Corrupt { file; reason = "snapshot checksum mismatch" });
  Codec.reader ~file payload

let add_freshness buf = function
  | Catalog.Fresh -> Codec.add_u8 buf 0
  | Catalog.Stale ops ->
    Codec.add_u8 buf 1;
    Codec.add_ops buf ops
  | Catalog.Rebuilding ->
    invalid_arg "Snapshot.write: cannot snapshot a Rebuilding view (refresh in flight)"

let read_freshness r =
  match Codec.u8 r with
  | 0 -> Catalog.Fresh
  | 1 -> Catalog.Stale (Codec.ops r)
  | tag -> Codec.corrupt r (Printf.sprintf "unknown freshness tag %d" tag)

let encode ~seq ~graph ~views =
  let buf = Buffer.create 4096 in
  Codec.add_i64 buf seq;
  Codec.add_graph buf graph;
  Codec.add_u32 buf (List.length views);
  List.iter
    (fun ((m : Materialize.materialized), freshness) ->
      Codec.add_view buf m.Materialize.view;
      Codec.add_graph buf m.Materialize.graph;
      Codec.add_i32_array buf m.Materialize.new_of_old;
      Codec.add_f64 buf m.Materialize.build_cost;
      add_freshness buf freshness)
    views;
  Buffer.contents buf

let decode r =
  let seq = Codec.i64 r in
  let graph = Codec.graph r in
  let n_views = Codec.u32 r in
  let views =
    List.init n_views (fun _ ->
        let view = Codec.view r in
        let vg = Codec.graph r in
        let new_of_old = Codec.i32_array r in
        let build_cost = Codec.f64 r in
        let freshness = read_freshness r in
        ({ Materialize.view; graph = vg; new_of_old; build_cost }, freshness))
  in
  { seq; graph; views }

let write path ~seq ~graph ~views =
  write_atomic path (frame ~magic (encode ~seq ~graph ~views))

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read path = decode (unframe ~magic ~file:path (read_raw path))

(* Per-shard files ---------------------------------------------------- *)

let shard_path path ~shard ~total = Printf.sprintf "%s.shard%d-of-%d" path shard total

let write_shards sh path ~seq =
  let schema = Shard.schema sh in
  let s = Shard.n_shards sh in
  for i = 0 to s - 1 do
    let buf = Buffer.create 4096 in
    Codec.add_i64 buf seq;
    Codec.add_u32 buf i;
    Codec.add_u32 buf s;
    Codec.add_str buf (Shard.policy_name (Shard.policy sh));
    Codec.add_schema buf schema;
    (* Owned vertices in ascending global order, then the out-edges
       they source — each edge lands in exactly one shard file, and
       endpoints stay global vids so files stitch without renaming
       (same contract as [Gio.save_shards]). *)
    let n_owned = Shard.shard_size sh i in
    Codec.add_u32 buf n_owned;
    for l = 0 to n_owned - 1 do
      let v = Shard.global_id sh ~shard:i l in
      Codec.add_u32 buf v;
      Codec.add_u32 buf (Shard.vertex_type sh v);
      Codec.add_props buf (Shard.vertex_props sh v)
    done;
    Codec.add_u32 buf (Shard.shard_out_edges sh i);
    for l = 0 to n_owned - 1 do
      let v = Shard.global_id sh ~shard:i l in
      Shard.iter_out sh v (fun ~dst ~etype ~eid ->
          Codec.add_u32 buf v;
          Codec.add_u32 buf dst;
          Codec.add_u32 buf etype;
          Codec.add_props buf (Shard.edge_props sh eid))
    done;
    write_atomic (shard_path path ~shard:i ~total:s) (frame ~magic:shard_magic (Buffer.contents buf))
  done

let read_shards path ~shards:s =
  if s < 1 then invalid_arg "Snapshot.read_shards: shards must be >= 1";
  let seq = ref None and policy = ref None and schema = ref None in
  let vertices = ref [] and edges = ref [] in
  let n_vertices = ref 0 and n_edges = ref 0 in
  for i = 0 to s - 1 do
    let file = shard_path path ~shard:i ~total:s in
    let r = unframe ~magic:shard_magic ~file (read_raw file) in
    let file_seq = Codec.i64 r in
    (match !seq with
    | Some q when q <> file_seq -> Codec.corrupt r "shard files disagree on snapshot seq"
    | _ -> seq := Some file_seq);
    let idx = Codec.u32 r in
    let total = Codec.u32 r in
    if idx <> i || total <> s then Codec.corrupt r "shard header mismatch";
    let p = Shard.policy_of_name (Codec.str r) in
    (match !policy with
    | Some p0 when p0 <> p -> Codec.corrupt r "shard files disagree on partition policy"
    | _ -> policy := Some p);
    let sc = Codec.schema r in
    if !schema = None then schema := Some sc;
    let n_owned = Codec.u32 r in
    for _ = 1 to n_owned do
      let v = Codec.u32 r in
      let ty = Codec.u32 r in
      let props = Codec.props r in
      incr n_vertices;
      vertices := (v, ty, props) :: !vertices
    done;
    let n_out = Codec.u32 r in
    for _ = 1 to n_out do
      let src = Codec.u32 r in
      let dst = Codec.u32 r in
      let ty = Codec.u32 r in
      let props = Codec.props r in
      incr n_edges;
      edges := (src, dst, ty, props) :: !edges
    done
  done;
  let schema = Option.get !schema in
  let n = !n_vertices and m = !n_edges in
  let vtype = Array.make (Stdlib.max n 1) (-1) in
  let vprops = Props.create () and eprops = Props.create () in
  List.iter
    (fun (v, ty, props) ->
      if v < 0 || v >= n then
        raise
          (Codec.Corrupt { file = path; reason = Printf.sprintf "vertex id %d out of range" v });
      if vtype.(v) >= 0 then
        raise (Codec.Corrupt { file = path; reason = Printf.sprintf "duplicate vertex id %d" v });
      vtype.(v) <- ty;
      List.iter (fun (k, value) -> Props.set vprops v k value) props)
    !vertices;
  for v = 0 to n - 1 do
    if vtype.(v) < 0 then
      raise
        (Codec.Corrupt
           { file = path; reason = Printf.sprintf "vertex id %d missing from all shard files" v })
  done;
  let e_src = Array.make (Stdlib.max m 1) 0
  and e_dst = Array.make (Stdlib.max m 1) 0
  and e_type = Array.make (Stdlib.max m 1) 0 in
  List.iteri
    (fun k (src, dst, ty, props) ->
      (* [edges] is accumulated in reverse read order. *)
      let eid = m - 1 - k in
      e_src.(eid) <- src;
      e_dst.(eid) <- dst;
      e_type.(eid) <- ty;
      List.iter (fun (kk, value) -> Props.set eprops eid kk value) props)
    !edges;
  let e_src = if m = 0 then [||] else e_src
  and e_dst = if m = 0 then [||] else e_dst
  and e_type = if m = 0 then [||] else e_type
  and vtype = if n = 0 then [||] else vtype in
  ( Option.get !seq,
    Shard.of_arrays ?policy:!policy ~shards:s schema ~vtype ~e_src ~e_dst ~e_type ~vprops ~eprops
  )
