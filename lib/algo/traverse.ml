open Kaskade_graph
module Scratch = Kaskade_util.Scratch
module Int_vec = Kaskade_util.Int_vec

type dir = Out | In | Both

let iter_neighbors g v dir f =
  (match dir with
  | Out | Both -> Graph.iter_out g v (fun ~dst ~etype:_ ~eid -> f dst eid)
  | In -> ());
  match dir with
  | In | Both -> Graph.iter_in g v (fun ~src ~etype:_ ~eid -> f src eid)
  | Out -> ()

(* [dist] is the result, so it is freshly allocated; the frontier
   queues are scratch vectors reused across calls. *)
let bfs_levels g ~src ?(dir = Out) ?(max_hops = max_int) () =
  let n = Graph.n_vertices g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  Scratch.with_vec @@ fun vec_a ->
  Scratch.with_vec @@ fun vec_b ->
  let cur = ref vec_a and next = ref vec_b in
  Int_vec.push !cur src;
  let hop = ref 0 in
  while Int_vec.length !cur > 0 && !hop < max_hops do
    incr hop;
    Int_vec.clear !next;
    let nv = !next in
    Int_vec.iter
      (fun v ->
        iter_neighbors g v dir (fun u _ ->
            if dist.(u) < 0 then begin
              dist.(u) <- !hop;
              Int_vec.push nv u
            end))
      !cur;
    let tmp = !cur in
    cur := !next;
    next := tmp
  done;
  dist

let reachable_within g ~src ~max_hops ?(dir = Out) () =
  let dist = bfs_levels g ~src ~dir ~max_hops () in
  let out = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if dist.(v) > 0 then out := v :: !out
  done;
  !out

(* Shard-routed counterpart of [reachable_within]: the BFS reads each
   frontier vertex's adjacency from its owner shard (cut edges resolve
   through the exchange), and the result is collected from the dist
   array in ascending vid order — so it equals [reachable_within] on
   the unsharded graph exactly, whatever order shards are visited
   in. *)
let reachable_within_sharded sh ~src ~max_hops ?(dir = Out) () =
  let iter_neighbors v f =
    (match dir with
    | Out | Both -> Shard.iter_out sh v (fun ~dst ~etype:_ ~eid:_ -> f dst)
    | In -> ());
    match dir with
    | In | Both -> Shard.iter_in sh v (fun ~src:u ~etype:_ ~eid:_ -> f u)
    | Out -> ()
  in
  let n = Shard.n_vertices sh in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  Scratch.with_vec @@ fun vec_a ->
  Scratch.with_vec @@ fun vec_b ->
  let cur = ref vec_a and next = ref vec_b in
  Int_vec.push !cur src;
  let hop = ref 0 in
  while Int_vec.length !cur > 0 && !hop < max_hops do
    incr hop;
    Int_vec.clear !next;
    let nv = !next in
    Int_vec.iter
      (fun v ->
        iter_neighbors v (fun u ->
            if dist.(u) < 0 then begin
              dist.(u) <- !hop;
              Int_vec.push nv u
            end))
      !cur;
    let tmp = !cur in
    cur := !next;
    next := tmp
  done;
  let out = ref [] in
  for v = n - 1 downto 0 do
    if dist.(v) > 0 then out := v :: !out
  done;
  !out

let descendants g ~src ~max_hops = reachable_within g ~src ~max_hops ~dir:Out ()
let ancestors g ~src ~max_hops = reachable_within g ~src ~max_hops ~dir:In ()

let endpoints_in_range g ~src ~lo ~hi ?(dir = Out) () =
  let dist = bfs_levels g ~src ~dir ~max_hops:hi () in
  let out = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if dist.(v) >= lo && dist.(v) <= hi then out := (v, dist.(v)) :: !out
  done;
  !out

let max_timestamp_paths g ~src ~max_hops ~prop =
  let n = Graph.n_vertices g in
  let dist = Array.make n (-1) in
  let best = Array.make n min_int in
  dist.(src) <- 0;
  best.(src) <- 0;
  Scratch.with_vec @@ fun vec_a ->
  Scratch.with_vec @@ fun vec_b ->
  let cur = ref vec_a and next = ref vec_b in
  Int_vec.push !cur src;
  let hop = ref 0 in
  while Int_vec.length !cur > 0 && !hop < max_hops do
    incr hop;
    Int_vec.clear !next;
    let nv = !next in
    Int_vec.iter
      (fun v ->
        Graph.iter_out g v (fun ~dst ~etype:_ ~eid ->
            if dist.(dst) < 0 then begin
              dist.(dst) <- !hop;
              let w =
                match Graph.eprop g eid prop with Some (Value.Int ts) -> ts | _ -> 0
              in
              best.(dst) <- Stdlib.max best.(v) w;
              Int_vec.push nv dst
            end))
      !cur;
    let tmp = !cur in
    cur := !next;
    next := tmp
  done;
  let out = ref [] in
  for v = n - 1 downto 0 do
    if dist.(v) > 0 then out := (v, best.(v)) :: !out
  done;
  !out
