open Kaskade_graph
open Kaskade_util

let components g =
  let uf = Union_find.create (Graph.n_vertices g) in
  Graph.iter_edges g (fun ~eid:_ ~src ~dst ~etype:_ -> Union_find.union uf src dst);
  uf

let n_components g = Union_find.count (components g)

(* Union-find is order-insensitive, so the sharded walk (each edge
   once, shard-then-local order) lands in the same partition as the
   global eid-order walk. *)
let components_sharded sh =
  let uf = Union_find.create (Shard.n_vertices sh) in
  Shard.iter_edges sh (fun ~eid:_ ~src ~dst ~etype:_ -> Union_find.union uf src dst);
  uf

let n_components_sharded sh = Union_find.count (components_sharded sh)

let sources g =
  let out = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if Graph.in_degree g v = 0 then out := v :: !out
  done;
  !out

let sinks g =
  let out = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if Graph.out_degree g v = 0 then out := v :: !out
  done;
  !out
