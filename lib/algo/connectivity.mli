(** Connectivity helpers: weakly-connected components, and the
    source/sink classification used by the paper's source-to-sink
    connector (Table I). *)

val components : Kaskade_graph.Graph.t -> Kaskade_util.Union_find.t
(** Weakly-connected components (edges treated as undirected). *)

val n_components : Kaskade_graph.Graph.t -> int

val components_sharded : Kaskade_graph.Shard.t -> Kaskade_util.Union_find.t
(** Same partition as {!components} on the graph the shards were built
    from: union-find is order-insensitive, so walking each edge once
    in shard-then-local order merges the same component sets. *)

val n_components_sharded : Kaskade_graph.Shard.t -> int

val sources : Kaskade_graph.Graph.t -> int list
(** Vertices with no incoming edges. *)

val sinks : Kaskade_graph.Graph.t -> int list
(** Vertices with no outgoing edges. *)
