(** Bounded traversals over a frozen graph — the primitives behind the
    paper's anchored queries: blast radius (Q1), ancestors (Q2),
    descendants (Q3). *)

type dir = Out | In | Both

val bfs_levels : Kaskade_graph.Graph.t -> src:int -> ?dir:dir -> ?max_hops:int -> unit -> int array
(** Hop distance from [src] per vertex ([-1] = unreached). [max_hops]
    defaults to unbounded. *)

val reachable_within :
  Kaskade_graph.Graph.t -> src:int -> max_hops:int -> ?dir:dir -> unit -> int list
(** Distinct vertices at distance 1..[max_hops] from [src] (excludes
    [src] itself unless reachable via a cycle). Order: ascending id. *)

val reachable_within_sharded :
  Kaskade_graph.Shard.t -> src:int -> max_hops:int -> ?dir:dir -> unit -> int list
(** {!reachable_within} reading through a sharded CSR: each frontier
    vertex's adjacency comes from its owner shard (cut edges resolve
    through the exchange) and the result is collected in ascending vid
    order, so the list equals {!reachable_within} on the graph the
    shards were built from. *)

val descendants : Kaskade_graph.Graph.t -> src:int -> max_hops:int -> int list
(** Forward data lineage (paper Q3): [reachable_within] over out-edges. *)

val ancestors : Kaskade_graph.Graph.t -> src:int -> max_hops:int -> int list
(** Backward data lineage (paper Q2): [reachable_within] over in-edges. *)

val endpoints_in_range :
  Kaskade_graph.Graph.t -> src:int -> lo:int -> hi:int -> ?dir:dir -> unit -> (int * int) list
(** [(vertex, hop_distance)] for every vertex whose BFS distance d
    satisfies [lo <= d <= hi]. Distinct-endpoint semantics for
    variable-length path expansion. [lo = 0] includes [src]. *)

val max_timestamp_paths :
  Kaskade_graph.Graph.t -> src:int -> max_hops:int -> prop:string -> (int * int) list
(** Paper Q4 ("path lengths"): BFS the forward [max_hops]-hop
    neighbourhood; for each reached vertex report the maximum value of
    the integer edge property [prop] along its BFS tree path. *)
