(** Machine-readable report rendering. Observability output crosses
    the process boundary (bench logs, CI artifacts, dashboards), so
    everything the subsystem produces — metrics snapshots, plan trees,
    explain reports — bottoms out in this small JSON value type. Kept
    dependency-free on purpose: the repo vendors no JSON library and
    the observability layer must not drag one in. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** Non-finite floats serialize as [null]. *)
  | Str of string
  | List of json list
  | Obj of (string * json) list

val to_string : ?pretty:bool -> json -> string
(** RFC 8259 output; [pretty] (default true) indents by two spaces.
    Strings are escaped; floats use shortest-roundtrip-ish ["%.12g"]. *)

val num : float -> json
(** [Float], but collapses integral values to [Int] so counters do not
    render as ["3."]. *)

val parse : string -> (json, string) result
(** Parse one RFC 8259 document (the inverse of {!to_string}, modulo
    [num]'s integral-float collapsing). Exists so the telemetry that
    leaves the process — JSONL query logs, Chrome trace files — can be
    read back and validated without a JSON dependency. Numbers with a
    fraction or exponent come back as [Float], others as [Int];
    [\u]-escapes outside ASCII are decoded to UTF-8. The error string
    carries a character offset. *)

val member : string -> json -> json option
(** Field lookup on [Obj] (first match); [None] otherwise. *)
