(* A trace id is 16 lowercase hex digits — the same shape as
   [Qlog.hash_query] output, so ids and hashes render uniformly in
   logs. Minting mixes a process-global counter with the pid, the
   wall clock and an optional session tag through FNV-1a, which makes
   collisions across concurrent servers astronomically unlikely
   without any coordination. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix h s =
  let h = ref h in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let counter = Atomic.make 0

let mint ?session () =
  let n = Atomic.fetch_and_add counter 1 in
  let h = mix fnv_offset (string_of_int (Unix.getpid ())) in
  let h = mix h (Printf.sprintf "%.6f" (Unix.gettimeofday ())) in
  let h = mix h (string_of_int n) in
  let h = match session with None -> h | Some s -> mix h s in
  Printf.sprintf "%016Lx" h

let is_valid id =
  String.length id = 16
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) id

(* The ambient context is domain-local: systhreads of one domain (the
   server's handler threads run queries one at a time per session)
   share it via the dynamic extent of [with_ctx], and worker domains
   never read it directly — Pool observers replay morsel spans on the
   calling domain, which is where the stamping happens. *)
let key : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get key

let with_ctx id f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some id);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let with_minted ?session f =
  match current () with
  | Some id -> f id
  | None ->
    let id = mint ?session () in
    with_ctx id (fun () -> f id)
