(** Live health model for the serving stack: a pure aggregation of
    store, catalog, and admission-control signals into a typed
    three-level status with human-auditable reasons. The serving
    layer assembles a {!sample} from facade accessors and the latest
    {!Timeseries} point, and [HEALTH] wire responses / `kaskade
    health` render {!evaluate}'s verdict — the module itself reads no
    global state, which is what keeps the thresholds testable. *)

type thresholds = {
  max_wal_lag : int;  (** WAL ops since the last snapshot. *)
  max_snapshot_age_s : float option;  (** [None] disables the age check. *)
  max_stale_views : int;
  max_breakers_open : int;
  max_queue_depth : int;
  max_shed_rate : float;  (** Shed fraction of requests over the sampling window. *)
  min_plan_cache_hit_rate : float;
  min_plan_cache_lookups : int;
      (** Hit-rate is only judged after this many lookups ([0]
          disables the check) — a cold cache is not a health signal. *)
}

val default_thresholds : thresholds
(** [max_wal_lag = 10000]; snapshot-age check off; [max_stale_views =
    8]; [max_breakers_open = 0]; [max_queue_depth = 32];
    [max_shed_rate = 0.1]; hit-rate ≥ 0.1 after 64 lookups. *)

type sample = {
  wal_lag : int;
  snapshot_age_s : float option;  (** [None] when never snapshotted / not tracked. *)
  stale_views : int;
  breakers_open : int;
  sessions : int;  (** Informational — carried into {!to_json}, not judged. *)
  queue_depth : int;
  shed_rate : float;
  plan_cache_hits : int;
  plan_cache_misses : int;
}

val empty_sample : sample
(** All-zero / all-[None] sample — evaluates to [Ok]; update the
    fields you can observe. *)

type status = Ok | Degraded of string list | Unhealthy of string list
(** Reasons are compact space-free [key=value] tokens (e.g.
    ["wal_lag=12000"; "shed_rate=0.34"]) so they embed directly in
    wire responses. *)

val evaluate : ?thresholds:thresholds -> sample -> status
(** Judge a sample. Each check trips {e degraded} at its threshold and
    {e unhealthy} at 4x the threshold, except stale-view count and
    plan-cache hit rate, which describe normal transients and never
    escalate past degraded. Reasons list hard failures first. *)

val label : status -> string
(** ["ok"] / ["degraded"] / ["unhealthy"]. *)

val reasons : status -> string list

val to_json : sample -> status -> Report.json
(** Status, reasons, and every sample field — the `kaskade health
    --json` payload. *)
