(** Hierarchical wall-clock spans — the tracing substrate of the
    observability layer. Collection is off by default and every
    instrumentation point is a single flag test when off, so engine
    code can be annotated freely without taxing the hot path
    ("zero-cost-when-disabled"): [with_span] calls its thunk directly
    and [add_attr] is a no-op unless a {!collect} is in flight.

    Spans nest by dynamic extent. The collector is process-global and
    not reentrant (no [collect] inside [collect]) — matching how the
    engine is driven today (one query at a time per process). *)

type span = {
  name : string;
  attrs : (string * string) list;  (** In attachment order. *)
  start_s : float;  (** Seconds since the enclosing [collect] began. *)
  duration_s : float;
  children : span list;  (** In start order. *)
}

val enabled : unit -> bool
(** True while a {!collect} is in flight. *)

val now_s : unit -> float
(** {e Monotonic} clock in seconds ([Kaskade_util.Mclock]) — exported
    so engine modules can time operators without picking a clock
    themselves. Readings are only meaningful relative to each other
    (durations, deadlines), never as timestamps; use
    [Unix.gettimeofday] where a human-readable time of day is
    wanted. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span (when collecting). The span is
    recorded even when the thunk raises; the exception propagates.
    While a {!Tracectx} is ambient, the span additionally carries a
    [("trace", id)] attribute (unless the caller supplied one) — the
    request-correlation hook. *)

val add_attr : string -> string -> unit
(** Attach a key/value to the innermost open span. No-op when not
    collecting or outside any span. *)

val record_span :
  ?attrs:(string * string) list -> name:string -> start_s:float -> stop_s:float -> unit -> unit
(** Append an already-timed leaf span (times on the {!now_s} monotonic
    clock, converted to collect-relative internally) as a child of the
    innermost open span. This is how work measured off the main domain
    enters the tree: [Pool.map_chunks] stamps each chunk inside its
    worker and replays the stamps here after the join, with a
    ["domain"] attribute naming the executing domain (0 = the calling
    domain) — {!Trace_export} maps it to per-thread tracks. No-op when
    not collecting. Main-domain only. Stamped with the ambient
    {!Tracectx} like {!with_span} — because Pool observers replay on
    the calling domain, morsel spans inherit the request's trace id. *)

val collect : (unit -> 'a) -> 'a * span list
(** Run with collection enabled and return the top-level spans in
    start order. Raises [Invalid_argument] when nested. If the thunk
    raises, collection is switched off before the exception escapes. *)

val pp : Format.formatter -> span -> unit
(** One span per line, indented by depth: [name  12.3ms  k=v ...]. *)

val to_json : span -> Report.json

val total : span list -> float
(** Summed duration of the given spans (not their descendants). *)
