type outcome = View_hit of string | Fallback | Failed of string

type op_row = {
  op : string;
  detail : string;
  est_rows : float option;
  actual_rows : int option;
  op_seconds : float option;
}

type record = {
  seq : int;
  query : string;
  query_hash : string;
  plan_fingerprint : string;
  outcome : outcome;
  rows : int;
  seconds : float;
  budget : string option;
  operators : op_row list;
  session : string option;
  queue_wait_s : float option;
  trace : string option;
}

(* FNV-1a over Int64 — OCaml's native int is 63-bit, so the 64-bit
   variant needs boxing to hash identically everywhere. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let hash_query q = fnv1a q

(* Plan shape only: op/detail per node, bracketed by depth. Actuals and
   estimates are deliberately left out so EXPLAIN and PROFILE of the
   same query fingerprint identically. *)
let fingerprint plan =
  let b = Buffer.create 128 in
  let rec go (n : Explain.node) =
    Buffer.add_string b n.op;
    if n.detail <> "" then begin
      Buffer.add_char b ' ';
      Buffer.add_string b n.detail
    end;
    Buffer.add_char b '[';
    List.iter go n.children;
    Buffer.add_char b ']'
  in
  List.iter go [ plan ];
  fnv1a (Buffer.contents b)

let ops_of_plan plan =
  List.rev
    (Explain.fold
       (fun acc (n : Explain.node) ->
         { op = n.op;
           detail = n.detail;
           est_rows = n.est_rows;
           actual_rows = n.actual_rows;
           op_seconds = n.time_s }
         :: acc)
       [] plan)

(* Ring state. One mutex guards everything: appends may come from
   worker domains (tests exercise this; see test_util) while the main
   domain truncates, and the lock makes each operation atomic — a
   record is wholly in or wholly gone, never torn. *)
let lock = Mutex.create ()
let buf = ref (Array.make 512 None)
let head = ref 0 (* next write slot *)
let len = ref 0
let appended = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let capacity () = locked (fun () -> Array.length !buf)
let length () = locked (fun () -> !len)
let total () = locked (fun () -> !appended)

let records_unlocked () =
  let cap = Array.length !buf in
  let out = ref [] in
  for i = !len - 1 downto 0 do
    (* newest has offset len-1 *)
    match !buf.((!head - !len + i + (2 * cap)) mod cap) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  !out

let records () = locked records_unlocked

let clear () =
  locked (fun () ->
      Array.fill !buf 0 (Array.length !buf) None;
      head := 0;
      len := 0)

let set_capacity cap =
  let cap = max 1 cap in
  locked (fun () ->
      let keep = records_unlocked () in
      let keep = List.filteri (fun i _ -> i >= List.length keep - cap) keep in
      buf := Array.make cap None;
      head := 0;
      len := 0;
      List.iter
        (fun r ->
          !buf.(!head) <- Some r;
          head := (!head + 1) mod cap;
          len := min cap (!len + 1))
        keep)

let sink : (record -> unit) option ref = ref None
let set_sink s = sink := s
let notifier : (int * (string -> unit)) option ref = ref None

let set_notifier ?(every = 100) f =
  notifier := match f with None -> None | Some f -> Some (max 1 every, f)

(* Exact quantile over the window (small, so sorting is fine) —
   nearest-rank with the usual ceil convention. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (max 0 (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))

let summary () =
  let window, total =
    locked (fun () -> (records_unlocked (), !appended))
  in
  let n = List.length window in
  let hits = ref 0 and falls = ref 0 and fails = ref 0 in
  List.iter
    (fun r ->
      match r.outcome with
      | View_hit _ -> incr hits
      | Fallback -> incr falls
      | Failed _ -> incr fails)
    window;
  let times = Array.of_list (List.map (fun r -> r.seconds) window) in
  Array.sort compare times;
  let ms q = exact_quantile times q *. 1000.0 in
  if n = 0 then Printf.sprintf "qlog: %d logged, window empty" total
  else
    Printf.sprintf
      "qlog: %d logged (window %d) | view-hit %d fallback %d failed %d | p50 %.2fms p95 %.2fms \
       p99 %.2fms"
      total n !hits !falls !fails (ms 0.5) (ms 0.95) (ms 0.99)

(* Slow-query accounting lives at the append choke point so every
   entry path — facade, serving layer, replayed records — is counted
   by one rule. The threshold is process-global, like the ring. *)
let slow_counter =
  Metrics.counter ~help:"Qlog appends at or above the slow-query threshold" "kaskade.slow_queries"

let slow_threshold = ref 1.0
let set_slow_threshold s = slow_threshold := Stdlib.max 0.0 s
let slow_threshold_s () = !slow_threshold

let append r =
  let stored, notify =
    locked (fun () ->
        incr appended;
        let stored = { r with seq = !appended } in
        let cap = Array.length !buf in
        !buf.(!head) <- Some stored;
        head := (!head + 1) mod cap;
        len := min cap (!len + 1);
        let notify =
          match !notifier with Some (every, _) when !appended mod every = 0 -> true | _ -> false
        in
        (stored, notify))
  in
  (* Hooks run outside the lock: a slow sink must not serialize worker
     domains, and a hook that reads the log must not deadlock. *)
  (match !sink with Some f -> f stored | None -> ());
  if notify then (match !notifier with Some (_, f) -> f (summary ()) | None -> ());
  if stored.seconds >= !slow_threshold then Metrics.incr slow_counter;
  stored

let add ?budget ?plan ?session ?queue_wait_s ?trace ~query ~outcome ~rows ~seconds () =
  let plan_fingerprint, operators =
    match plan with None -> ("", []) | Some p -> (fingerprint p, ops_of_plan p)
  in
  (* Default the trace id from the ambient request context, so the
     facade does not have to thread it explicitly. *)
  let trace = match trace with Some _ as t -> t | None -> Tracectx.current () in
  append
    { seq = 0;
      query;
      query_hash = hash_query query;
      plan_fingerprint;
      outcome;
      rows;
      seconds;
      budget;
      operators;
      session;
      queue_wait_s;
      trace }

(* ---- JSON ---- *)

let opt f = function None -> Report.Null | Some v -> f v

let op_row_to_json (o : op_row) =
  Report.Obj
    [ ("op", Report.Str o.op);
      ("detail", Report.Str o.detail);
      ("est_rows", opt (fun f -> Report.Float f) o.est_rows);
      ("actual_rows", opt (fun i -> Report.Int i) o.actual_rows);
      ("seconds", opt (fun f -> Report.Float f) o.op_seconds) ]

let record_to_json (r : record) =
  let outcome_fields =
    match r.outcome with
    | View_hit v -> [ ("outcome", Report.Str "view_hit"); ("view", Report.Str v) ]
    | Fallback -> [ ("outcome", Report.Str "fallback") ]
    | Failed l -> [ ("outcome", Report.Str "failed"); ("error", Report.Str l) ]
  in
  Report.Obj
    ([ ("seq", Report.Int r.seq);
       ("query", Report.Str r.query);
       ("query_hash", Report.Str r.query_hash);
       ("plan_fingerprint", Report.Str r.plan_fingerprint) ]
    @ outcome_fields
    @ [ ("rows", Report.Int r.rows);
        ("seconds", Report.Float r.seconds);
        ("budget", opt (fun s -> Report.Str s) r.budget);
        ("session", opt (fun s -> Report.Str s) r.session);
        ("queue_wait_s", opt (fun f -> Report.Float f) r.queue_wait_s);
        ("trace", opt (fun s -> Report.Str s) r.trace);
        ("operators", Report.List (List.map op_row_to_json r.operators)) ])

let str_field k j = match Report.member k j with Some (Report.Str s) -> Some s | _ -> None

let int_field k j =
  match Report.member k j with
  | Some (Report.Int i) -> Some i
  | Some (Report.Float f) -> Some (int_of_float f)
  | _ -> None

let float_field k j =
  match Report.member k j with
  | Some (Report.Float f) -> Some f
  | Some (Report.Int i) -> Some (float_of_int i)
  | _ -> None

let op_row_of_json j =
  match str_field "op" j with
  | None -> Error "operator row missing \"op\""
  | Some op ->
    Ok
      { op;
        detail = Option.value ~default:"" (str_field "detail" j);
        est_rows = float_field "est_rows" j;
        actual_rows = int_field "actual_rows" j;
        op_seconds = float_field "seconds" j }

let record_of_json j =
  let ( let* ) = Result.bind in
  let require k = function Some v -> Ok v | None -> Error ("missing field \"" ^ k ^ "\"") in
  let* query = require "query" (str_field "query" j) in
  let* outcome =
    match str_field "outcome" j with
    | Some "view_hit" ->
      let* v = require "view" (str_field "view" j) in
      Ok (View_hit v)
    | Some "fallback" -> Ok Fallback
    | Some "failed" -> Ok (Failed (Option.value ~default:"error" (str_field "error" j)))
    | Some other -> Error ("unknown outcome " ^ other)
    | None -> Error "missing field \"outcome\""
  in
  let* operators =
    match Report.member "operators" j with
    | Some (Report.List l) ->
      List.fold_left
        (fun acc o ->
          let* acc = acc in
          let* row = op_row_of_json o in
          Ok (row :: acc))
        (Ok []) l
      |> Result.map List.rev
    | _ -> Ok []
  in
  Ok
    { seq = Option.value ~default:0 (int_field "seq" j);
      query;
      query_hash = Option.value ~default:(hash_query query) (str_field "query_hash" j);
      plan_fingerprint = Option.value ~default:"" (str_field "plan_fingerprint" j);
      outcome;
      rows = Option.value ~default:0 (int_field "rows" j);
      seconds = Option.value ~default:0.0 (float_field "seconds" j);
      budget = str_field "budget" j;
      operators;
      session = str_field "session" j;
      queue_wait_s = float_field "queue_wait_s" j;
      trace = str_field "trace" j }

let to_jsonl () =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string b (Report.to_string ~pretty:false (record_to_json r));
      Buffer.add_char b '\n')
    (records ());
  Buffer.contents b

let save path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_jsonl ()))

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line when String.trim line = "" -> go (lineno + 1) acc
          | line -> (
            match Report.parse line with
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
            | Ok j -> (
              match record_of_json j with
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
              | Ok r -> go (lineno + 1) (r :: acc)))
        in
        go 1 [])
