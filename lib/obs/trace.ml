type span = {
  name : string;
  attrs : (string * string) list;
  start_s : float;
  duration_s : float;
  children : span list;
}

(* An open span accumulates attrs/children in reverse; closing it
   freezes the record. *)
type open_span = {
  o_name : string;
  mutable o_attrs : (string * string) list;
  o_start : float;
  mutable o_children : span list;  (* reverse start order *)
}

type state = {
  epoch : float;
  mutable stack : open_span list;  (* innermost first *)
  mutable roots : span list;  (* reverse start order *)
}

let current : state option ref = ref None

let enabled () = !current <> None
(* Monotonic, not wall time: span durations and operator timings must
   survive NTP steps. Wall-clock timestamps, where needed, are the
   caller's business (e.g. report headers via [Unix.gettimeofday]). *)
let now_s () = Kaskade_util.Mclock.now_s ()

let close (o : open_span) ~stop =
  {
    name = o.o_name;
    attrs = List.rev o.o_attrs;
    start_s = o.o_start;
    duration_s = stop -. o.o_start;
    children = List.rev o.o_children;
  }

(* Every span minted while a request context is ambient carries the
   trace id as a plain attribute — one [Domain.DLS.get] per span, only
   while collecting. Explicit ["trace"] attrs win (a caller replaying
   foreign spans keeps their ids). *)
let stamp_ctx attrs =
  match Tracectx.current () with
  | Some id when not (List.mem_assoc "trace" attrs) -> ("trace", id) :: attrs
  | _ -> attrs

let with_span ?(attrs = []) name f =
  match !current with
  | None -> f ()
  | Some st ->
    let attrs = stamp_ctx attrs in
    let o =
      { o_name = name; o_attrs = List.rev attrs; o_start = now_s () -. st.epoch; o_children = [] }
    in
    st.stack <- o :: st.stack;
    let finish () =
      let stop = now_s () -. st.epoch in
      (* Pop up to and including [o] — defensive against a thunk that
         escapes with spans still open. *)
      (match st.stack with _ :: rest -> st.stack <- rest | [] -> ());
      let closed = close o ~stop in
      match st.stack with
      | parent :: _ -> parent.o_children <- closed :: parent.o_children
      | [] -> st.roots <- closed :: st.roots
    in
    (match f () with
    | result ->
      finish ();
      result
    | exception e ->
      finish ();
      raise e)

let add_attr k v =
  match !current with
  | Some { stack = o :: _; _ } -> o.o_attrs <- (k, v) :: o.o_attrs
  | _ -> ()

let record_span ?(attrs = []) ~name ~start_s ~stop_s () =
  match !current with
  | None -> ()
  | Some st ->
    let closed =
      {
        name;
        attrs = stamp_ctx attrs;
        start_s = start_s -. st.epoch;
        duration_s = stop_s -. start_s;
        children = [];
      }
    in
    (match st.stack with
    | parent :: _ -> parent.o_children <- closed :: parent.o_children
    | [] -> st.roots <- closed :: st.roots)

(* Pool fan-outs surface as pre-timed leaf spans with the executing
   domain recorded — worker 0 is the calling domain, the rest ran on
   spawned workers. Both observers fire on the calling domain after
   the join (see [Pool.set_morsel_observer]), so this composes with
   the single-domain collector. Morsel spans are labelled with the
   morsel index and its index range, not the worker's position in the
   fan-out: under work stealing a worker's spans are whatever morsels
   it claimed, and the range is the only stable name for them. *)
let () =
  Kaskade_util.Pool.set_morsel_observer
    (Some
       (fun ~worker ~workers ~morsel ~morsels ~lo ~hi ~start_s ~stop_s ->
         if !current <> None then
           record_span
             ~attrs:
               [ ("domain", string_of_int worker);
                 ("domains", string_of_int workers);
                 ("morsel", Printf.sprintf "%d/%d" morsel morsels);
                 ("range", Printf.sprintf "[%d,%d)" lo hi) ]
             ~name:"pool.morsel" ~start_s ~stop_s ()));
  Kaskade_util.Pool.set_chunk_observer
    (Some
       (fun ~chunk ~chunks ~lo ~hi ~start_s ~stop_s ->
         if !current <> None then
           record_span
             ~attrs:
               [ ("domain", string_of_int chunk);
                 ("domains", string_of_int chunks);
                 ("range", Printf.sprintf "[%d,%d)" lo hi) ]
             ~name:"pool.chunk" ~start_s ~stop_s ()))

let collect f =
  if enabled () then invalid_arg "Trace.collect: already collecting";
  let st = { epoch = now_s (); stack = []; roots = [] } in
  current := Some st;
  match f () with
  | result ->
    current := None;
    (result, List.rev st.roots)
  | exception e ->
    current := None;
    raise e

let rec pp_indented depth ppf (s : span) =
  Format.fprintf ppf "%s%s  %.3fms%s@."
    (String.make (2 * depth) ' ')
    s.name (s.duration_s *. 1000.0)
    (String.concat "" (List.map (fun (k, v) -> "  " ^ k ^ "=" ^ v) s.attrs));
  List.iter (pp_indented (depth + 1) ppf) s.children

let pp ppf s = pp_indented 0 ppf s

let rec to_json (s : span) =
  Report.Obj
    [ ("name", Report.Str s.name);
      ("start_s", Report.Float s.start_s);
      ("duration_s", Report.Float s.duration_s);
      ("attrs", Report.Obj (List.map (fun (k, v) -> (k, Report.Str v)) s.attrs));
      ("children", Report.List (List.map to_json s.children)) ]

let total spans = List.fold_left (fun acc s -> acc +. s.duration_s) 0.0 spans
