(** Structured query log: a process-global bounded ring of per-query
    records, appended by the facade on every [Kaskade.run] /
    [run_result] / [profile] — successes and failures alike. The ring
    is the raw material for two consumers: the {!Kaskade.Advisor},
    which replays the logged workload through enumeration + selection
    to recommend view changes, and the JSONL sink/loader, which moves
    a captured workload across process boundaries (bench runs, the
    [kaskade log] / [kaskade advise] CLI).

    Unlike {!Metrics} (aggregates) and {!Trace} (opt-in, one capture
    at a time), the query log keeps {e per-query} detail continuously
    at bounded memory: the ring holds the most recent {!capacity}
    records and older ones fall off. All entry points are mutex-
    protected, so appending from worker domains and truncating
    ({!clear} / {!set_capacity}) from the main domain can race without
    tearing a record. *)

(** How the query was answered. [View_hit v] means the rewriter routed
    it through materialized view [v]; [Fallback] means it ran against
    the base graph; [Failed l] carries the {!Kaskade.Error.label} of
    the typed failure (["budget_exhausted"], ["parse_error"], ...). *)
type outcome = View_hit of string | Fallback | Failed of string

(** One plan operator, flattened from the {!Explain} tree in pre-order
    — enough to study est-vs-actual cardinality drift per operator
    without retaining the tree itself. *)
type op_row = {
  op : string;
  detail : string;
  est_rows : float option;
  actual_rows : int option;
  op_seconds : float option;
}

type record = {
  seq : int;  (** Process-global append sequence number, from 1. *)
  query : string;  (** Canonical [Pretty.to_string] text — re-parseable. *)
  query_hash : string;  (** {!hash_query} of [query]. *)
  plan_fingerprint : string;  (** {!fingerprint} of the executed plan; [""] when planning failed. *)
  outcome : outcome;
  rows : int;  (** Result rows ([0] on failure). *)
  seconds : float;  (** Wall time on the monotonic clock. *)
  budget : string option;  (** Rendered budget spend, when the run carried a budget. *)
  operators : op_row list;
  session : string option;  (** Serving-layer session id, when the query came through {!Kaskade_serve}. *)
  queue_wait_s : float option;  (** Admission-queue wait before execution started. *)
  trace : string option;
      (** Request trace id ({!Tracectx}) — correlates this record with
          the query's Chrome-trace spans and its wire response. *)
}

val hash_query : string -> string
(** FNV-1a (64-bit) of the canonical query text, as 16 hex digits.
    Stable across processes — log files from different runs group by
    the same hash. *)

val fingerprint : Explain.node -> string
(** Hash of the plan {e shape}: operator kinds and details, position
    in the tree — not cardinalities or timings, so the same plan
    fingerprints identically whether or not it was profiled. *)

val capacity : unit -> int
(** Ring capacity; default 512. *)

val set_capacity : int -> unit
(** Resize the ring, keeping the most recent [min length capacity]
    records. Clamped to at least 1. *)

val length : unit -> int
(** Records currently held (≤ {!capacity}). *)

val total : unit -> int
(** Records ever appended this process (monotonic; survives {!clear}). *)

val clear : unit -> unit
(** Drop all held records. {!total} and the sequence counter keep
    counting. *)

val records : unit -> record list
(** Current window, oldest first. *)

val add :
  ?budget:string ->
  ?plan:Explain.node ->
  ?session:string ->
  ?queue_wait_s:float ->
  ?trace:string ->
  query:string ->
  outcome:outcome ->
  rows:int ->
  seconds:float ->
  unit ->
  record
(** Build a record (hashing the query, fingerprinting and flattening
    [plan] when given), append it, and return it. This is the facade's
    entry point. Fires the sink and, on every [every]-th append, the
    notifier — both outside the lock. When [?trace] is omitted the
    ambient {!Tracectx.current} is recorded, so callers inside a
    request context need no explicit plumbing. *)

val set_slow_threshold : float -> unit
(** Seconds at or above which an appended record counts toward the
    [kaskade.slow_queries] counter (default [1.0]; clamped to ≥ 0).
    Process-global, like the ring. *)

val slow_threshold_s : unit -> float

val append : record -> record
(** Low-level append of a prebuilt record (e.g. replaying a {!load}ed
    workload); the stored copy gets a fresh [seq]. *)

val set_sink : (record -> unit) option -> unit
(** Per-append hook (e.g. streaming JSONL to a file). Runs on the
    appending domain, outside the log's lock; must not itself append. *)

val set_notifier : ?every:int -> (string -> unit) option -> unit
(** Install a periodic progress hook: every [every] (default 100)
    appends, the hook receives {!summary}. For long bench runs — one
    status line instead of silence. *)

val summary : unit -> string
(** One line over the current window: totals, outcome mix, and exact
    p50/p95/p99 latency (computed from the window's individual
    timings, not histogram buckets). *)

val record_to_json : record -> Report.json
val record_of_json : Report.json -> (record, string) result

val to_jsonl : unit -> string
(** Current window as JSON Lines, one compact record per line, oldest
    first. *)

val save : string -> unit
(** Write {!to_jsonl} to a file ([-] is not special here; the CLI
    handles stdout itself). *)

val load : string -> (record list, string) result
(** Read a JSONL file back (blank lines skipped). Does {e not} append
    to the ring. The error names the offending line. *)
