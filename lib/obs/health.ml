(* The health model is a pure function over a sample the caller
   assembles — it reads no global state, so it is trivially testable
   and the serving layer decides what "the store" means (facade
   accessors + the latest time-series point). Reasons are compact
   [key=value] tokens with no spaces, so they survive the wire
   protocol's space-separated [OK k=v] responses joined by commas. *)

type thresholds = {
  max_wal_lag : int;
  max_snapshot_age_s : float option;
  max_stale_views : int;
  max_breakers_open : int;
  max_queue_depth : int;
  max_shed_rate : float;
  min_plan_cache_hit_rate : float;
  min_plan_cache_lookups : int;
}

let default_thresholds =
  {
    max_wal_lag = 10_000;
    max_snapshot_age_s = None;
    max_stale_views = 8;
    max_breakers_open = 0;
    max_queue_depth = 32;
    max_shed_rate = 0.1;
    min_plan_cache_hit_rate = 0.1;
    min_plan_cache_lookups = 64;
  }

type sample = {
  wal_lag : int;
  snapshot_age_s : float option;
  stale_views : int;
  breakers_open : int;
  sessions : int;
  queue_depth : int;
  shed_rate : float;
  plan_cache_hits : int;
  plan_cache_misses : int;
}

let empty_sample =
  {
    wal_lag = 0;
    snapshot_age_s = None;
    stale_views = 0;
    breakers_open = 0;
    sessions = 0;
    queue_depth = 0;
    shed_rate = 0.0;
    plan_cache_hits = 0;
    plan_cache_misses = 0;
  }

type status = Ok | Degraded of string list | Unhealthy of string list

(* Each check trips "degraded" at its threshold and "unhealthy" at 4x
   the threshold — one documented rule instead of a second config
   record. Checks that describe normal transients (stale views, a cold
   plan cache) never escalate past degraded. *)
let hard_factor = 4.0

let evaluate ?(thresholds = default_thresholds) (s : sample) =
  let t = thresholds in
  let soft = ref [] and hard = ref [] in
  let check ~escalates value limit reason =
    if value > limit then
      if escalates && value > limit *. hard_factor then hard := reason :: !hard
      else soft := reason :: !soft
  in
  check ~escalates:true (float_of_int s.wal_lag) (float_of_int t.max_wal_lag)
    (Printf.sprintf "wal_lag=%d" s.wal_lag);
  (match (s.snapshot_age_s, t.max_snapshot_age_s) with
  | Some age, Some limit ->
    check ~escalates:true age limit (Printf.sprintf "snapshot_age=%.0fs" age)
  | _ -> ());
  check ~escalates:false (float_of_int s.stale_views) (float_of_int t.max_stale_views)
    (Printf.sprintf "stale_views=%d" s.stale_views);
  check ~escalates:true (float_of_int s.breakers_open) (float_of_int t.max_breakers_open)
    (Printf.sprintf "breakers_open=%d" s.breakers_open);
  check ~escalates:true (float_of_int s.queue_depth) (float_of_int t.max_queue_depth)
    (Printf.sprintf "queue_depth=%d" s.queue_depth);
  check ~escalates:true s.shed_rate t.max_shed_rate (Printf.sprintf "shed_rate=%.2f" s.shed_rate);
  let lookups = s.plan_cache_hits + s.plan_cache_misses in
  (if lookups >= t.min_plan_cache_lookups && t.min_plan_cache_lookups > 0 then
     let rate = float_of_int s.plan_cache_hits /. float_of_int lookups in
     if rate < t.min_plan_cache_hit_rate then
       soft := Printf.sprintf "plan_cache_hit_rate=%.2f" rate :: !soft);
  match (List.rev !hard, List.rev !soft) with
  | [], [] -> Ok
  | [], soft -> Degraded soft
  | hard, soft -> Unhealthy (hard @ soft)

let label = function Ok -> "ok" | Degraded _ -> "degraded" | Unhealthy _ -> "unhealthy"
let reasons = function Ok -> [] | Degraded r -> r | Unhealthy r -> r

let to_json (s : sample) status =
  let opt f = function None -> Report.Null | Some v -> f v in
  Report.Obj
    [ ("status", Report.Str (label status));
      ("reasons", Report.List (List.map (fun r -> Report.Str r) (reasons status)));
      ("wal_lag", Report.Int s.wal_lag);
      ("snapshot_age_s", opt (fun f -> Report.num f) s.snapshot_age_s);
      ("stale_views", Report.Int s.stale_views);
      ("breakers_open", Report.Int s.breakers_open);
      ("sessions", Report.Int s.sessions);
      ("queue_depth", Report.Int s.queue_depth);
      ("shed_rate", Report.num s.shed_rate);
      ("plan_cache_hits", Report.Int s.plan_cache_hits);
      ("plan_cache_misses", Report.Int s.plan_cache_misses) ]
