type node = {
  op : string;
  detail : string;
  est_rows : float option;
  mutable actual_rows : int option;
  mutable time_s : float option;
  children : node list;
}

let node ?est_rows ?(detail = "") op children =
  { op; detail; est_rows; actual_rows = None; time_s = None; children }

let set_actual n rows = n.actual_rows <- Some rows

let set_time n dt =
  n.time_s <- Some (match n.time_s with None -> dt | Some prev -> prev +. dt)

let rec iter f n =
  f n;
  List.iter (iter f) n.children

let rec fold f acc n = List.fold_left (fold f) (f acc n) n.children

let find p n =
  let found = ref None in
  (try
     iter
       (fun n ->
         if !found = None && p n then begin
           found := Some n;
           raise Exit
         end)
       n
   with Exit -> ());
  !found

let profiled n = fold (fun acc n -> acc || n.actual_rows <> None || n.time_s <> None) false n

let fmt_est = function
  | None -> ""
  | Some f when Float.abs f < 1e7 -> Printf.sprintf "%.0f" f
  | Some f -> Printf.sprintf "%.3g" f

let fmt_actual = function None -> "" | Some n -> string_of_int n
let fmt_time = function None -> "" | Some t -> Printf.sprintf "%.3fms" (t *. 1000.0)

let render root =
  (* Collect (tree-drawn label, est, actual, time) rows, then pad into
     aligned columns. *)
  let rows = ref [] in
  let rec go prefix branch child_prefix n =
    let label =
      prefix ^ branch ^ n.op ^ (if n.detail = "" then "" else " " ^ n.detail)
    in
    rows := (label, fmt_est n.est_rows, fmt_actual n.actual_rows, fmt_time n.time_s) :: !rows;
    let rec children = function
      | [] -> ()
      | [ last ] -> go child_prefix "└─ " (child_prefix ^ "   ") last
      | c :: rest ->
        go child_prefix "├─ " (child_prefix ^ "│  ") c;
        children rest
    in
    children n.children
  in
  go "" "" "" root;
  let rows = List.rev !rows in
  (* Column width in display cells, not bytes: the tree glyphs are
     multi-byte UTF-8 but single-column, so count code points. *)
  let uwidth s =
    let n = ref 0 in
    String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
    !n
  in
  let pad_right w s = s ^ String.make (Stdlib.max 0 (w - uwidth s)) ' ' in
  let pad_left w s = String.make (Stdlib.max 0 (w - uwidth s)) ' ' ^ s in
  let width f = List.fold_left (fun w r -> Stdlib.max w (uwidth (f r))) 0 rows in
  let l1 = (fun (a, _, _, _) -> a) and l2 = (fun (_, b, _, _) -> b) in
  let l3 = (fun (_, _, c, _) -> c) and l4 = (fun (_, _, _, d) -> d) in
  let has_actuals = List.exists (fun r -> l3 r <> "" || l4 r <> "") rows in
  let header =
    if has_actuals then ("operator", "est.rows", "rows", "time") else ("operator", "est.rows", "", "")
  in
  let rows = header :: rows in
  let w1 = Stdlib.max (width l1) 8 and w2 = Stdlib.max (width l2) 8 in
  let w3 = width l3 and w4 = width l4 in
  let buf = Buffer.create 512 in
  List.iter
    (fun r ->
      Buffer.add_string buf (pad_right w1 (l1 r));
      Buffer.add_string buf "  ";
      Buffer.add_string buf (pad_left w2 (l2 r));
      if has_actuals then begin
        Buffer.add_string buf "  ";
        Buffer.add_string buf (pad_left w3 (l3 r));
        Buffer.add_string buf "  ";
        Buffer.add_string buf (pad_left w4 (l4 r))
      end;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let pp ppf n = Format.pp_print_string ppf (render n)

let rec to_json n =
  Report.Obj
    [ ("op", Report.Str n.op);
      ("detail", Report.Str n.detail);
      ("est_rows", match n.est_rows with None -> Report.Null | Some f -> Report.num f);
      ("actual_rows", match n.actual_rows with None -> Report.Null | Some r -> Report.Int r);
      ("time_s", match n.time_s with None -> Report.Null | Some t -> Report.Float t);
      ("children", Report.List (List.map to_json n.children)) ]
