(** Export {!Trace} span trees in the Chrome trace-event format, so a
    capture from [Trace.collect] can be dropped into [chrome://tracing]
    or {{:https://ui.perfetto.dev}Perfetto} and inspected on a
    timeline.

    Every span becomes one ["X"] (complete) event — start and duration
    in integer microseconds, which is the unit the format mandates.
    The process is always [pid 1]. Spans carry their thread in the
    ["domain"] attribute when they ran inside a [Pool] fan-out (see
    [Trace.record_span]); the exporter maps domain [d] to [tid d + 1]
    and emits ["M"] metadata events naming each thread track ("main"
    for the calling domain, "worker N" for spawned ones). Spans
    without a ["domain"] attribute ran on the calling domain and land
    on the "main" track.

    Span identity survives the flattening: every event's [args] carry
    a pre-order [span_id] and its [parent_id] (absent on roots),
    alongside the span's own attributes. *)

val to_chrome : ?process_name:string -> Trace.span list -> Report.json
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] — the object
    form of the format, which tolerates trailing metadata and is what
    both viewers accept. [process_name] defaults to ["kaskade"]. *)

val to_chrome_string : ?process_name:string -> Trace.span list -> string
(** {!to_chrome} rendered compactly, ready to write to a [.json] file
    (CLI: [kaskade trace --chrome FILE]). *)
