(** Process-wide metrics registry: named monotonic counters and
    log-bucketed histograms. Instruments are registered once (module
    init time in the engine) and updated with a plain field mutation,
    so they are cheap enough to live on hot paths — the variable-length
    BFS bumps {e expand_steps} per visited edge.

    The registry is global on purpose: the bench harness and CLI dump
    one snapshot per process ({!to_json}) without threading a handle
    through every engine layer. [reset] zeroes values (registrations
    survive) so tests and bench experiments can scope their readings. *)

type counter
type histogram
type gauge

val counter : ?help:string -> string -> counter
(** Register (or fetch, if already registered) the named counter. *)

(** [incr c] on the main domain is a single unsynchronized field
    mutation (hot-loop cheap). On worker domains (e.g. inside a
    [Kaskade_util.Pool] fan-out) it is an atomic add into a side cell
    that {!counter_value} and {!to_json} merge in — counts stay exact
    under parallel materialization. {!observe} follows the same
    two-path scheme. *)
val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

val histogram : ?help:string -> string -> histogram
(** Register (or fetch) the named histogram. Buckets are base-2
    exponential, sized for anything from sub-microsecond timings to
    edge counts. *)

val observe : histogram -> float -> unit
(** Record one value. Main-domain observations are plain field
    mutations; worker-domain observations (Pool fan-outs) go through
    per-histogram atomic side cells (bucket fetch-and-add, CAS loops
    for sum/min/max) that every reader merges — observations stay
    exact at any pool width, same contract as {!incr}. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_min : histogram -> float
(** [Float.infinity] when empty. *)

val histogram_max : histogram -> float
(** [Float.neg_infinity] when empty. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile (e.g. [0.5], [0.95],
    [0.99]) from the merged log-scale buckets: locate the bucket where
    the cumulative count crosses [q * count], interpolate linearly
    inside it, and clamp to the observed min/max. Resolution is the
    base-2 bucket width — the estimate is within a factor of 2 of the
    exact order statistic, and exact at the extremes. [nan] when
    empty. *)

val gauge : ?help:string -> string -> gauge
(** Register (or fetch) the named gauge — a level with set-the-value
    semantics (e.g. {e kaskade.stale_views}), unlike a counter's
    accumulation. Main domain only. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val reset : unit -> unit
(** Zero every registered instrument (registrations are kept). Safe to
    call while worker domains are observing: each atomic side cell is
    cleared independently, so a racing observation lands wholly before
    or wholly after the reset — never torn. *)

val counters_list : unit -> (string * int) list
(** Every registered counter as [(name, merged value)], name-sorted.
    Registry iteration for the Prometheus exposition, the
    {!Timeseries} sampler, and the metrics-name lint test. *)

val gauges_list : unit -> (string * float) list
val histograms_list : unit -> (string * histogram) list

val names : unit -> string list
(** Every registered instrument name (counters, histograms, gauges),
    sorted and de-duplicated. *)

val to_json : unit -> Report.json
(** Snapshot of every registered instrument:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}].
    Histograms carry count/sum/min/max/mean, p50/p95/p99 quantile
    estimates ({!quantile}), plus non-empty [le]-labelled buckets.
    Names are emitted in sorted order so dumps diff cleanly. *)

val to_prometheus : unit -> string
(** The whole registry in Prometheus text exposition format (0.0.4):
    dots in names become underscores, counters gain a [_total] suffix,
    histograms emit cumulative [le]-labelled buckets (non-empty ones
    plus [+Inf]) and [_sum]/[_count] series, [# HELP]/[# TYPE]
    comments from the registration help strings. This is what the
    serve layer's [METRICS] wire verb returns. *)
