(* Fixed-interval sampling of the metrics registry into a bounded
   ring. Counters are recorded as deltas against the previous sample
   (rates fall out by dividing by [interval_s]); gauges as current
   levels; histograms as the count delta plus current p50/p95/p99
   (quantiles are lifetime estimates — the log-bucketed histograms
   cannot be windowed without per-window state, and for "is p95
   drifting" the lifetime curve is the right signal anyway).

   One mutex guards the ring and the baselines: the server's sampler
   thread appends while HEALTH handler threads read the latest
   point. *)

type point = {
  at_s : float;
  wall_s : float;
  interval_s : float;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * (int * float * float * float)) list;
}

type t = {
  lock : Mutex.t;
  ring : point option array;
  mutable head : int;  (* next write slot *)
  mutable len : int;
  prev_counters : (string, int) Hashtbl.t;
  prev_hist_counts : (string, int) Hashtbl.t;
  mutable last_at : float option;
}

let create ?(capacity = 120) () =
  {
    lock = Mutex.create ();
    ring = Array.make (max 1 capacity) None;
    head = 0;
    len = 0;
    prev_counters = Hashtbl.create 64;
    prev_hist_counts = Hashtbl.create 16;
    last_at = None;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = Array.length t.ring

let sample t =
  let now = Kaskade_util.Mclock.now_s () in
  let wall = Unix.gettimeofday () in
  let counters_now = Metrics.counters_list () in
  let gauges_now = Metrics.gauges_list () in
  let hists_now = Metrics.histograms_list () in
  locked t (fun () ->
      let interval = match t.last_at with None -> 0.0 | Some prev -> now -. prev in
      t.last_at <- Some now;
      let counter_deltas =
        List.map
          (fun (name, v) ->
            let prev = Option.value ~default:0 (Hashtbl.find_opt t.prev_counters name) in
            Hashtbl.replace t.prev_counters name v;
            (name, v - prev))
          counters_now
      in
      let hist_points =
        List.map
          (fun (name, h) ->
            let count = Metrics.histogram_count h in
            let prev = Option.value ~default:0 (Hashtbl.find_opt t.prev_hist_counts name) in
            Hashtbl.replace t.prev_hist_counts name count;
            let q p = if count = 0 then 0.0 else Metrics.quantile h p in
            (name, (count - prev, q 0.50, q 0.95, q 0.99)))
          hists_now
      in
      let p =
        {
          at_s = now;
          wall_s = wall;
          interval_s = interval;
          counters = counter_deltas;
          gauges = gauges_now;
          histograms = hist_points;
        }
      in
      t.ring.(t.head) <- Some p;
      t.head <- (t.head + 1) mod Array.length t.ring;
      t.len <- min (Array.length t.ring) (t.len + 1);
      p)

let points t =
  locked t (fun () ->
      let cap = Array.length t.ring in
      let out = ref [] in
      for i = t.len - 1 downto 0 do
        match t.ring.((t.head - t.len + i + (2 * cap)) mod cap) with
        | Some p -> out := p :: !out
        | None -> ()
      done;
      !out)

let latest t =
  locked t (fun () ->
      if t.len = 0 then None
      else t.ring.((t.head - 1 + Array.length t.ring) mod Array.length t.ring))

let length t = locked t (fun () -> t.len)

let counter_delta p name =
  Option.value ~default:0 (List.assoc_opt name p.counters)

let gauge_level p name = List.assoc_opt name p.gauges
let histogram_point p name = List.assoc_opt name p.histograms

let rate p name =
  if p.interval_s <= 0.0 then 0.0 else float_of_int (counter_delta p name) /. p.interval_s

let point_to_json p =
  let nonzero_counters = List.filter (fun (_, d) -> d <> 0) p.counters in
  let active_hists = List.filter (fun (_, (d, _, _, _)) -> d <> 0) p.histograms in
  Report.Obj
    [ ("at_s", Report.num p.at_s);
      ("wall_s", Report.num p.wall_s);
      ("interval_s", Report.num p.interval_s);
      ( "counters",
        Report.Obj (List.map (fun (n, d) -> (n, Report.Int d)) nonzero_counters) );
      ("gauges", Report.Obj (List.map (fun (n, v) -> (n, Report.num v)) p.gauges));
      ( "histograms",
        Report.Obj
          (List.map
             (fun (n, (d, p50, p95, p99)) ->
               ( n,
                 Report.Obj
                   [ ("count_delta", Report.Int d);
                     ("p50", Report.num p50);
                     ("p95", Report.num p95);
                     ("p99", Report.num p99) ] ))
             active_hists) ) ]

let to_jsonl t =
  let b = Buffer.create 1024 in
  List.iter
    (fun p ->
      Buffer.add_string b (Report.to_string ~pretty:false (point_to_json p));
      Buffer.add_char b '\n')
    (points t);
  Buffer.contents b

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_jsonl t))
