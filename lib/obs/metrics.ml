(* [count] is the main-domain tally, bumped with a plain (unsynchronized)
   field mutation so the BFS inner loop pays one branch plus one store.
   Worker domains of a [Kaskade_util.Pool] fan-out land in [pending]
   via a fetch-and-add; readers merge both, so counts stay exact under
   parallel materialization without slowing the sequential hot path. *)
type counter = {
  c_name : string;
  c_help : string;
  mutable count : int;
  pending : int Atomic.t;
}

(* Base-2 exponential buckets: value v lands in the bucket whose upper
   bound is the smallest 2^e >= v, for e in [-32, 31] (clamped). Slot 0
   holds v <= 0. *)
let n_buckets = 66

(* Like counters, histograms keep the sequential hot path free of
   synchronization: main-domain observations mutate the plain fields,
   worker-domain observations (Pool fan-outs) land in the atomic
   [p_*] side cells and are merged by every reader. The float cells
   (sum/min/max) are updated with a CAS retry loop — [Atomic.t] of a
   boxed float compares the box we read, so the loop is exact. *)
type histogram = {
  h_name : string;
  h_help : string;
  buckets : int array;  (* length n_buckets *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  p_buckets : int Atomic.t array;  (* length n_buckets *)
  p_count : int Atomic.t;
  p_sum : float Atomic.t;
  p_min : float Atomic.t;
  p_max : float Atomic.t;
}

(* Set-semantics instrument for levels (stale view count, overlay
   ratio): the last write wins, unlike a counter's accumulation. Main
   domain only. *)
type gauge = { g_name : string; g_help : string; mutable g_value : float }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32

let counter ?(help = "") name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_help = help; count = 0; pending = Atomic.make 0 } in
    Hashtbl.add counters name c;
    c

let incr ?(by = 1) c =
  if Domain.is_main_domain () then c.count <- c.count + by
  else ignore (Atomic.fetch_and_add c.pending by)

let counter_value c = c.count + Atomic.get c.pending

let histogram ?(help = "") name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_help = help;
        buckets = Array.make n_buckets 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = Float.infinity;
        h_max = Float.neg_infinity;
        p_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
        p_count = Atomic.make 0;
        p_sum = Atomic.make 0.0;
        p_min = Atomic.make Float.infinity;
        p_max = Atomic.make Float.neg_infinity;
      }
    in
    Hashtbl.add histograms name h;
    h

let bucket_index v =
  if v <= 0.0 then 0
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e, m in [0.5, 1): smallest power-of-two upper bound is
       2^e unless v is exactly a power of two (m = 0.5 -> 2^(e-1)). *)
    let e = if m = 0.5 then e - 1 else e in
    let e = Stdlib.max (-32) (Stdlib.min 31 e) in
    e + 33
  end

let bucket_le i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 33)

(* CAS retry loops for the float side cells. Each loop re-reads,
   computes and swaps only if nothing interleaved — no observation is
   lost, whatever the worker interleaving. *)
let rec atomic_update cell f =
  let old = Atomic.get cell in
  let next = f old in
  if old <> next && not (Atomic.compare_and_set cell old next) then atomic_update cell f

let observe h v =
  if Domain.is_main_domain () then begin
    h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end
  else begin
    ignore (Atomic.fetch_and_add h.p_buckets.(bucket_index v) 1);
    ignore (Atomic.fetch_and_add h.p_count 1);
    atomic_update h.p_sum (fun s -> s +. v);
    atomic_update h.p_min (fun m -> if v < m then v else m);
    atomic_update h.p_max (fun m -> if v > m then v else m)
  end

let histogram_count h = h.h_count + Atomic.get h.p_count
let histogram_sum h = h.h_sum +. Atomic.get h.p_sum

let histogram_min h = Stdlib.min h.h_min (Atomic.get h.p_min)
let histogram_max h = Stdlib.max h.h_max (Atomic.get h.p_max)
let merged_bucket h i = h.buckets.(i) + Atomic.get h.p_buckets.(i)

(* Quantile estimate from the merged log-scale buckets: find the
   bucket where the cumulative count crosses [q * count], then
   interpolate linearly inside it. Resolution is the bucket width (a
   factor of 2); the observed min/max clamp recovers exactness at the
   extremes. *)
let quantile h q =
  let total = histogram_count h in
  if total = 0 then Float.nan
  else begin
    let q = Stdlib.max 0.0 (Stdlib.min 1.0 q) in
    let rank = q *. float_of_int total in
    let rec locate i acc =
      if i >= n_buckets then n_buckets - 1
      else begin
        let acc' = acc + merged_bucket h i in
        if float_of_int acc' >= rank && acc' > 0 then i else locate (i + 1) acc'
      end
    in
    let i = locate 0 0 in
    let below = ref 0 in
    for j = 0 to i - 1 do
      below := !below + merged_bucket h j
    done;
    let in_bucket = merged_bucket h i in
    let lo = if i <= 1 then 0.0 else bucket_le (i - 1) in
    let hi = bucket_le i in
    let frac =
      if in_bucket = 0 then 1.0
      else Stdlib.max 0.0 (Stdlib.min 1.0 ((rank -. float_of_int !below) /. float_of_int in_bucket))
    in
    let v = lo +. (frac *. (hi -. lo)) in
    (* Never report outside the observed range. *)
    Stdlib.max (histogram_min h) (Stdlib.min (histogram_max h) v)
  end

let gauge ?(help = "") name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_help = help; g_value = 0.0 } in
    Hashtbl.add gauges name g;
    g

let set_gauge g v = g.g_value <- v
let gauge_value g = g.g_value

let reset () =
  Hashtbl.iter
    (fun _ c ->
      c.count <- 0;
      Atomic.set c.pending 0)
    counters;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 n_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- Float.infinity;
      h.h_max <- Float.neg_infinity;
      (* Plain stores into each cell: an in-flight worker observation
         either lands before the store (discarded with the epoch) or
         after it (counted in the new epoch) — each cell stays
         internally consistent either way, never torn. *)
      Array.iter (fun c -> Atomic.set c 0) h.p_buckets;
      Atomic.set h.p_count 0;
      Atomic.set h.p_sum 0.0;
      Atomic.set h.p_min Float.infinity;
      Atomic.set h.p_max Float.neg_infinity)
    histograms;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges

let sorted tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] |> List.sort compare

(* Registry iteration — the raw material for the Prometheus
   exposition, the time-series sampler, and the docs lint test. Names
   are sorted so consumers see a stable order. *)
let counters_list () = sorted counters |> List.map (fun c -> (c.c_name, counter_value c))
let gauges_list () = sorted gauges |> List.map (fun g -> (g.g_name, g.g_value))
let histograms_list () = sorted histograms |> List.map (fun h -> (h.h_name, h))

let names () =
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort_uniq compare (keys counters @ keys histograms @ keys gauges)

(* ---- Prometheus text exposition (format 0.0.4) ---- *)

(* Metric names are dot-separated internally; Prometheus allows
   [a-zA-Z0-9_:], so dots become underscores. *)
let prom_name s =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_') s

let to_prometheus () =
  let b = Buffer.create 4096 in
  let meta name kind help =
    if help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (c : counter) ->
      let n = prom_name c.c_name ^ "_total" in
      meta n "counter" c.c_help;
      Buffer.add_string b (Printf.sprintf "%s %d\n" n (counter_value c)))
    (sorted counters);
  List.iter
    (fun (g : gauge) ->
      let n = prom_name g.g_name in
      meta n "gauge" g.g_help;
      Buffer.add_string b (Printf.sprintf "%s %.12g\n" n g.g_value))
    (sorted gauges);
  List.iter
    (fun (h : histogram) ->
      let n = prom_name h.h_name in
      meta n "histogram" h.h_help;
      let cum = ref 0 in
      for i = 0 to n_buckets - 1 do
        let k = merged_bucket h i in
        if k > 0 then begin
          cum := !cum + k;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%.12g\"} %d\n" n (bucket_le i) !cum)
        end
      done;
      Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (histogram_count h));
      Buffer.add_string b (Printf.sprintf "%s_sum %.12g\n" n (histogram_sum h));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n (histogram_count h)))
    (sorted histograms);
  Buffer.contents b

let to_json () =
  let counter_fields =
    sorted counters |> List.map (fun (c : counter) -> (c.c_name, Report.Int (counter_value c)))
  in
  let histogram_fields =
    sorted histograms
    |> List.map (fun (h : histogram) ->
           let count = histogram_count h and sum = histogram_sum h in
           let buckets =
             List.init n_buckets (fun i ->
                 let n = merged_bucket h i in
                 if n = 0 then None
                 else
                   Some (Report.Obj [ ("le", Report.num (bucket_le i)); ("count", Report.Int n) ]))
             |> List.filter_map Fun.id
           in
           ( h.h_name,
             Report.Obj
               [ ("count", Report.Int count);
                 ("sum", Report.num sum);
                 ("min", if count = 0 then Report.Null else Report.num (histogram_min h));
                 ("max", if count = 0 then Report.Null else Report.num (histogram_max h));
                 ( "mean",
                   if count = 0 then Report.Null else Report.num (sum /. float_of_int count) );
                 ("p50", if count = 0 then Report.Null else Report.num (quantile h 0.50));
                 ("p95", if count = 0 then Report.Null else Report.num (quantile h 0.95));
                 ("p99", if count = 0 then Report.Null else Report.num (quantile h 0.99));
                 ("buckets", Report.List buckets) ] ))
  in
  let gauge_fields =
    sorted gauges |> List.map (fun (g : gauge) -> (g.g_name, Report.num g.g_value))
  in
  Report.Obj
    [ ("counters", Report.Obj counter_fields);
      ("gauges", Report.Obj gauge_fields);
      ("histograms", Report.Obj histogram_fields) ]
