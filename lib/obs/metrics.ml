(* [count] is the main-domain tally, bumped with a plain (unsynchronized)
   field mutation so the BFS inner loop pays one branch plus one store.
   Worker domains of a [Kaskade_util.Pool] fan-out land in [pending]
   via a fetch-and-add; readers merge both, so counts stay exact under
   parallel materialization without slowing the sequential hot path. *)
type counter = {
  c_name : string;
  c_help : string;
  mutable count : int;
  pending : int Atomic.t;
}

(* Base-2 exponential buckets: value v lands in the bucket whose upper
   bound is the smallest 2^e >= v, for e in [-32, 31] (clamped). Slot 0
   holds v <= 0. *)
let n_buckets = 66

type histogram = {
  h_name : string;
  h_help : string;
  buckets : int array;  (* length n_buckets *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

(* Set-semantics instrument for levels (stale view count, overlay
   ratio): the last write wins, unlike a counter's accumulation. Main
   domain only. *)
type gauge = { g_name : string; g_help : string; mutable g_value : float }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32

let counter ?(help = "") name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_help = help; count = 0; pending = Atomic.make 0 } in
    Hashtbl.add counters name c;
    c

let incr ?(by = 1) c =
  if Domain.is_main_domain () then c.count <- c.count + by
  else ignore (Atomic.fetch_and_add c.pending by)

let counter_value c = c.count + Atomic.get c.pending

let histogram ?(help = "") name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_help = help;
        buckets = Array.make n_buckets 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = Float.infinity;
        h_max = Float.neg_infinity;
      }
    in
    Hashtbl.add histograms name h;
    h

let bucket_index v =
  if v <= 0.0 then 0
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e, m in [0.5, 1): smallest power-of-two upper bound is
       2^e unless v is exactly a power of two (m = 0.5 -> 2^(e-1)). *)
    let e = if m = 0.5 then e - 1 else e in
    let e = Stdlib.max (-32) (Stdlib.min 31 e) in
    e + 33
  end

let bucket_le i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 33)

let observe h v =
  h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let gauge ?(help = "") name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_help = help; g_value = 0.0 } in
    Hashtbl.add gauges name g;
    g

let set_gauge g v = g.g_value <- v
let gauge_value g = g.g_value

let reset () =
  Hashtbl.iter
    (fun _ c ->
      c.count <- 0;
      Atomic.set c.pending 0)
    counters;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 n_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- Float.infinity;
      h.h_max <- Float.neg_infinity)
    histograms;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges

let sorted tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] |> List.sort compare

let to_json () =
  let counter_fields =
    sorted counters |> List.map (fun (c : counter) -> (c.c_name, Report.Int (counter_value c)))
  in
  let histogram_fields =
    sorted histograms
    |> List.map (fun (h : histogram) ->
           let buckets =
             Array.to_list
               (Array.mapi
                  (fun i n ->
                    if n = 0 then None
                    else
                      Some
                        (Report.Obj [ ("le", Report.num (bucket_le i)); ("count", Report.Int n) ]))
                  h.buckets)
             |> List.filter_map Fun.id
           in
           ( h.h_name,
             Report.Obj
               [ ("count", Report.Int h.h_count);
                 ("sum", Report.num h.h_sum);
                 ("min", if h.h_count = 0 then Report.Null else Report.num h.h_min);
                 ("max", if h.h_count = 0 then Report.Null else Report.num h.h_max);
                 ( "mean",
                   if h.h_count = 0 then Report.Null
                   else Report.num (h.h_sum /. float_of_int h.h_count) );
                 ("buckets", Report.List buckets) ] ))
  in
  let gauge_fields =
    sorted gauges |> List.map (fun (g : gauge) -> (g.g_name, Report.num g.g_value))
  in
  Report.Obj
    [ ("counters", Report.Obj counter_fields);
      ("gauges", Report.Obj gauge_fields);
      ("histograms", Report.Obj histogram_fields) ]
