(* Chrome trace-event output. The format wants a flat event list with
   integer-microsecond timestamps; the span tree's nesting is conveyed
   twice — implicitly by "X" event containment on each thread track,
   and explicitly by span_id/parent_id args so tooling can rebuild the
   tree without relying on timestamps. *)

let us_of_s s = int_of_float (Float.round (s *. 1e6))

(* Worker-domain spans name their domain in the "domain" attribute
   (Trace.record_span via the Pool chunk observer); domain 0 is the
   calling domain. Everything else ran on the calling domain too. *)
let tid_of_span (s : Trace.span) =
  match List.assoc_opt "domain" s.attrs with
  | Some d -> (match int_of_string_opt d with Some n when n >= 0 -> n + 1 | _ -> 1)
  | None -> 1

let to_chrome ?(process_name = "kaskade") spans =
  let next_id = ref 0 in
  let events = ref [] in
  (* reverse order *)
  let tids = ref [] in
  let rec emit parent (s : Trace.span) =
    incr next_id;
    let id = !next_id in
    let tid = tid_of_span s in
    if not (List.mem tid !tids) then tids := tid :: !tids;
    let args =
      ("span_id", Report.Int id)
      :: (match parent with None -> [] | Some p -> [ ("parent_id", Report.Int p) ])
      @ List.map (fun (k, v) -> (k, Report.Str v)) s.attrs
    in
    events :=
      Report.Obj
        [ ("name", Report.Str s.name);
          ("ph", Report.Str "X");
          ("ts", Report.Int (us_of_s s.start_s));
          ("dur", Report.Int (max 0 (us_of_s s.duration_s)));
          ("pid", Report.Int 1);
          ("tid", Report.Int tid);
          ("args", Report.Obj args) ]
      :: !events;
    List.iter (emit (Some id)) s.children
  in
  List.iter (emit None) spans;
  let meta name tid value =
    Report.Obj
      [ ("name", Report.Str name);
        ("ph", Report.Str "M");
        ("pid", Report.Int 1);
        ("tid", Report.Int tid);
        ("args", Report.Obj [ ("name", Report.Str value) ]) ]
  in
  let thread_meta =
    List.sort compare !tids
    |> List.map (fun tid ->
           meta "thread_name" tid (if tid = 1 then "main" else Printf.sprintf "worker %d" (tid - 1)))
  in
  Report.Obj
    [ ("traceEvents",
       Report.List ((meta "process_name" 1 process_name :: thread_meta) @ List.rev !events));
      ("displayTimeUnit", Report.Str "ms") ]

let to_chrome_string ?process_name spans = Report.to_string (to_chrome ?process_name spans)
