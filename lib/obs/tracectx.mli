(** Request-scoped trace contexts — the correlation ids that tie one
    served query's telemetry together across layers. A context is a
    16-hex-digit id (same shape as {!Qlog.hash_query}) carried in
    domain-local storage for a dynamic extent: while set, {!Trace}
    stamps it onto every span (including the [pool.morsel] /
    [shard.scan] children replayed from worker fan-outs) and
    {!Qlog.add} records it, so a query arriving over the wire groups
    its qlog record, its Chrome-trace spans and its server response
    under a single id.

    Contexts are deliberately dumb strings: the wire protocol passes
    them verbatim ([Q trace=<id> ...]), clients may mint their own,
    and a missing context costs one [Domain.DLS.get] per span. *)

val mint : ?session:string -> unit -> string
(** Mint a fresh id: FNV-1a mix of a process-global counter, the pid,
    the wall clock, and the optional serving-session tag. 16 lowercase
    hex digits. *)

val is_valid : string -> bool
(** True iff the string has the canonical shape (exactly 16 lowercase
    hex digits) — what the wire layer accepts from clients. *)

val current : unit -> string option
(** The ambient context of the calling domain, if any. *)

val with_ctx : string -> (unit -> 'a) -> 'a
(** Run the thunk with the given id as the ambient context, restoring
    the previous one afterwards (exception-safe; nesting shadows). *)

val with_minted : ?session:string -> (string -> 'a) -> 'a
(** Run the thunk under the ambient context if one is already set,
    otherwise mint a fresh id (tagged with [session]) and install it
    for the thunk's extent. The thunk receives the effective id —
    this is the facade's inherit-or-mint entry point. *)
