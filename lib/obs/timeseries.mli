(** Fixed-interval time series over the {!Metrics} registry: a bounded
    ring of {!point}s, each holding counter {e deltas} since the
    previous sample, current gauge levels, and histogram count deltas
    with lifetime p50/p95/p99. The serving layer runs {!sample} on a
    timer thread; [HEALTH] responses and `kaskade top` read {!latest}
    for windowed rates (QPS, shed rate), and {!to_jsonl} exports the
    ring for offline plotting. Thread-safe (one mutex; sampler thread
    appends while handler threads read). *)

type point = {
  at_s : float;  (** Monotonic sample time ({!Trace.now_s} clock). *)
  wall_s : float;  (** [Unix.gettimeofday] at the sample, for export. *)
  interval_s : float;  (** Seconds since the previous sample; [0.0] on the first. *)
  counters : (string * int) list;  (** Delta per registered counter over the interval. *)
  gauges : (string * float) list;  (** Current levels. *)
  histograms : (string * (int * float * float * float)) list;
      (** Per histogram: count delta over the interval, then lifetime
          p50/p95/p99 estimates ([0.0] while empty). *)
}

type t

val create : ?capacity:int -> unit -> t
(** A ring holding the most recent [capacity] points (default 120 —
    two minutes at a 1s interval). *)

val capacity : t -> int
val length : t -> int

val sample : t -> point
(** Snapshot the registry now, append the point, and return it. The
    first sample has [interval_s = 0.0] and whole-life counter deltas;
    call once at startup to set the baseline if that matters. *)

val points : t -> point list
(** Current window, oldest first. *)

val latest : t -> point option

val counter_delta : point -> string -> int
(** Delta for the named counter in this point ([0] when absent). *)

val gauge_level : point -> string -> float option
val histogram_point : point -> string -> (int * float * float * float) option

val rate : point -> string -> float
(** [counter_delta / interval_s] — per-second rate over the point's
    window ([0.0] on the baseline point). *)

val point_to_json : point -> Report.json
(** Zero-delta counters and idle histograms are omitted; gauges are
    kept (a level of 0 is information). *)

val to_jsonl : t -> string
(** The ring as JSON Lines, oldest first. *)

val save : t -> string -> unit
