(** Structured query plans — what [EXPLAIN] prints and [PROFILE]
    annotates. A plan is a tree of operators; each node carries the
    planner's estimated output cardinality and, after a profiled run,
    the actual row count and wall time the executor observed.

    The node type is deliberately engine-agnostic (operator kind and
    detail are strings): [lib/exec] builds the trees from its cost
    model and fills the actuals, this module only represents and
    renders them. Estimated fields are immutable — profiling mutates
    [actual_rows]/[time_s] in place so the executor can annotate the
    very tree the planner produced, guaranteeing EXPLAIN and PROFILE
    can never disagree about plan shape.

    Within a pattern, scan/expand operators are {e fused}: the
    executor runs them as one nested-loop pipeline, so they report
    actual rows (successful bindings per step) but no per-step wall
    time; time is accounted at the pattern operator above them. *)

type node = {
  op : string;  (** Operator kind, e.g. ["NodeByLabelScan"]. *)
  detail : string;  (** Human-readable argument, e.g. ["(j:Job)"]. *)
  est_rows : float option;  (** Cost-model output cardinality. *)
  mutable actual_rows : int option;  (** Filled by a profiled run. *)
  mutable time_s : float option;  (** Filled by a profiled run. *)
  children : node list;
}

val node : ?est_rows:float -> ?detail:string -> string -> node list -> node
(** [node op children] with no actuals. *)

val set_actual : node -> int -> unit
val set_time : node -> float -> unit
(** Accumulates: a second [set_time] on the same node adds (operators
    that run once per upstream row). *)

val iter : (node -> unit) -> node -> unit
(** Pre-order. *)

val fold : ('a -> node -> 'a) -> 'a -> node -> 'a
(** Pre-order. *)

val find : (node -> bool) -> node -> node option
(** First pre-order match. *)

val profiled : node -> bool
(** True when any node in the tree carries actuals. *)

val render : node -> string
(** Multi-line operator table: tree-drawn operator column plus
    est. rows / actual rows / time columns (actuals blank on a plain
    EXPLAIN). *)

val pp : Format.formatter -> node -> unit

val to_json : node -> Report.json
