type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string ?(pretty = true) j =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_str f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

let num f =
  if Float.is_nan f || Float.abs f = Float.infinity then Null
  else if Float.is_integer f && Float.abs f < 1e15 then Int (int_of_float f)
  else Float f

(* Recursive-descent parser for the same value type. Strictness is
   what the emitters above need checked (structure, escapes, number
   syntax), not a full validator — e.g. duplicate keys are kept as-is. *)
exception Parse_fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  (* Encode one code point as UTF-8 (surrogate pairs are combined by
     the string scanner below before calling this). *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           let cp = hex4 () in
           let cp =
             if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n && s.[!pos] = '\\'
                && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
               else fail "unpaired surrogate"
             end
             else cp
           in
           add_utf8 buf cp
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do advance () done;
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      advance ();
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do advance () done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      fractional := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do advance () done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !fractional then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail ("bad number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* Integer literal out of [int] range still parses as a float. *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_fail (at, msg) -> Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
