type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string ?(pretty = true) j =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_str f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

let num f =
  if Float.is_nan f || Float.abs f = Float.infinity then Null
  else if Float.is_integer f && Float.abs f < 1e15 then Int (int_of_float f)
  else Float f
