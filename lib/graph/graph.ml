open Kaskade_util

type t = {
  schema : Schema.t;
  n : int;
  m : int;
  nets : int;  (* edge-type count: the stride of the segment indexes *)
  vtype : int array;
  out_off : int array;
  out_dst : int array;
  out_etype : int array;
  out_eid : int array;
  out_seg : int array;  (* (n*nets + 1) typed segment starts, see below *)
  in_off : int array;
  in_src : int array;
  in_etype : int array;
  in_eid : int array;
  in_seg : int array;
  e_src : int array;
  e_dst : int array;
  e_type : int array;
  vprops : Props.t;
  eprops : Props.t;
  by_type : int array array;
}

(* Each vertex's CSR segment is sorted by edge type (and by insertion
   id within a type), and [out_seg]/[in_seg] record where every
   (vertex, etype) run starts: slot v*nets + t holds the absolute
   start of vertex v's type-t run, and — runs being contiguous — the
   next slot holds its end, with the final slot pinned to m. Typed
   iteration therefore walks exactly deg_t(v) entries instead of
   filter-scanning the whole adjacency. *)
let freeze builder =
  let schema = Builder.schema builder in
  let vtypes = Builder.internal_vtypes builder in
  let e_src_v, e_dst_v, e_type_v = Builder.internal_edges builder in
  let vprops, eprops = Builder.internal_props builder in
  let n = Int_vec.length vtypes in
  let m = Int_vec.length e_src_v in
  let nets = Schema.n_edge_types schema in
  let vtype = Int_vec.to_array vtypes in
  let e_src = Int_vec.to_array e_src_v in
  let e_dst = Int_vec.to_array e_dst_v in
  let e_type = Int_vec.to_array e_type_v in
  (* Two-key counting sort into type-segmented CSR, both directions:
     one count per (vertex, etype) pair, prefix-summed in place. *)
  let out_seg = Array.make ((n * nets) + 1) 0 in
  let in_seg = Array.make ((n * nets) + 1) 0 in
  for e = 0 to m - 1 do
    let ty = e_type.(e) in
    let os = (e_src.(e) * nets) + ty and is_ = (e_dst.(e) * nets) + ty in
    out_seg.(os + 1) <- out_seg.(os + 1) + 1;
    in_seg.(is_ + 1) <- in_seg.(is_ + 1) + 1
  done;
  for i = 1 to n * nets do
    out_seg.(i) <- out_seg.(i) + out_seg.(i - 1);
    in_seg.(i) <- in_seg.(i) + in_seg.(i - 1)
  done;
  let out_off = Array.init (n + 1) (fun v -> out_seg.(v * nets)) in
  let in_off = Array.init (n + 1) (fun v -> in_seg.(v * nets)) in
  let out_dst = Array.make m 0 and out_etype = Array.make m 0 and out_eid = Array.make m 0 in
  let in_src = Array.make m 0 and in_etype = Array.make m 0 and in_eid = Array.make m 0 in
  let out_cursor = Array.sub out_seg 0 (Stdlib.max 1 (n * nets)) in
  let in_cursor = Array.sub in_seg 0 (Stdlib.max 1 (n * nets)) in
  for e = 0 to m - 1 do
    let s = e_src.(e) and d = e_dst.(e) and ty = e_type.(e) in
    let oi = out_cursor.((s * nets) + ty) in
    out_cursor.((s * nets) + ty) <- oi + 1;
    out_dst.(oi) <- d;
    out_etype.(oi) <- ty;
    out_eid.(oi) <- e;
    let ii = in_cursor.((d * nets) + ty) in
    in_cursor.((d * nets) + ty) <- ii + 1;
    in_src.(ii) <- s;
    in_etype.(ii) <- ty;
    in_eid.(ii) <- e
  done;
  let ntypes = Schema.n_vertex_types schema in
  let counts = Array.make ntypes 0 in
  Array.iter (fun ty -> counts.(ty) <- counts.(ty) + 1) vtype;
  let by_type = Array.map (fun c -> Array.make c 0) counts in
  let cursors = Array.make ntypes 0 in
  Array.iteri
    (fun v ty ->
      by_type.(ty).(cursors.(ty)) <- v;
      cursors.(ty) <- cursors.(ty) + 1)
    vtype;
  {
    schema;
    n;
    m;
    nets;
    vtype;
    out_off;
    out_dst;
    out_etype;
    out_eid;
    out_seg;
    in_off;
    in_src;
    in_etype;
    in_eid;
    in_seg;
    e_src;
    e_dst;
    e_type;
    vprops;
    eprops;
    by_type;
  }

let schema t = t.schema
let n_vertices t = t.n
let n_edges t = t.m

let vertex_type t v = t.vtype.(v)
let vertex_type_name t v = Schema.vertex_type_name t.schema t.vtype.(v)
let vertices_of_type t ty = t.by_type.(ty)
let vertices_of_type_name t name = t.by_type.(Schema.vertex_type_id t.schema name)
let count_of_type t ty = Array.length t.by_type.(ty)

let out_degree t v = t.out_off.(v + 1) - t.out_off.(v)
let in_degree t v = t.in_off.(v + 1) - t.in_off.(v)

let iter_out t v f =
  for i = t.out_off.(v) to t.out_off.(v + 1) - 1 do
    f ~dst:t.out_dst.(i) ~etype:t.out_etype.(i) ~eid:t.out_eid.(i)
  done

let iter_in t v f =
  for i = t.in_off.(v) to t.in_off.(v + 1) - 1 do
    f ~src:t.in_src.(i) ~etype:t.in_etype.(i) ~eid:t.in_eid.(i)
  done

(* [start, stop) of the type-[etype] run of [v]'s adjacency. The run
   for the last etype of v ends exactly where v+1's first run starts,
   so [seg.(slot + 1)] is the stop bound for every slot. *)
let typed_out_slice t v ~etype =
  let slot = (v * t.nets) + etype in
  (t.out_seg.(slot), t.out_seg.(slot + 1))

let typed_in_slice t v ~etype =
  let slot = (v * t.nets) + etype in
  (t.in_seg.(slot), t.in_seg.(slot + 1))

let typed_out_degree t v ~etype =
  let lo, hi = typed_out_slice t v ~etype in
  hi - lo

let typed_in_degree t v ~etype =
  let lo, hi = typed_in_slice t v ~etype in
  hi - lo

let out_dst_at t i = t.out_dst.(i)
let out_eid_at t i = t.out_eid.(i)
let in_src_at t i = t.in_src.(i)
let in_eid_at t i = t.in_eid.(i)

let iter_out_etype t v ~etype f =
  let lo, hi = typed_out_slice t v ~etype in
  for i = lo to hi - 1 do
    f ~dst:t.out_dst.(i) ~eid:t.out_eid.(i)
  done

let iter_in_etype t v ~etype f =
  let lo, hi = typed_in_slice t v ~etype in
  for i = lo to hi - 1 do
    f ~src:t.in_src.(i) ~eid:t.in_eid.(i)
  done

let out_neighbors t v = Array.sub t.out_dst t.out_off.(v) (out_degree t v)

let iter_edges t f =
  for e = 0 to t.m - 1 do
    f ~eid:e ~src:t.e_src.(e) ~dst:t.e_dst.(e) ~etype:t.e_type.(e)
  done

let edge_endpoints t e = (t.e_src.(e), t.e_dst.(e))
let edge_type t e = t.e_type.(e)

let vprop t v key = Props.get t.vprops v key
let vprop_or_null t v key = Props.get_or_null t.vprops v key
let eprop t e key = Props.get t.eprops e key
let eprop_or_null t e key = Props.get_or_null t.eprops e key

let vertex_props t v = Props.entity_props t.vprops v
let edge_props t e = Props.entity_props t.eprops e
let vertex_prop_keys t = Props.keys t.vprops
let edge_prop_keys t = Props.keys t.eprops

let out_degrees_of_type t ty = Array.map (fun v -> out_degree t v) t.by_type.(ty)
let all_out_degrees t = Array.init t.n (fun v -> out_degree t v)

let pp_summary ppf t =
  Format.fprintf ppf "|V|=%s |E|=%s" (Table.fmt_int t.n) (Table.fmt_int t.m);
  Array.iteri
    (fun ty vs ->
      Format.fprintf ppf " %s:%s" (Schema.vertex_type_name t.schema ty) (Table.fmt_int (Array.length vs)))
    t.by_type
