open Kaskade_util

type t = {
  schema : Schema.t;
  n : int;
  m : int;
  nets : int;  (* edge-type count: the stride of the segment indexes *)
  vtype : int array;
  out_off : int array;
  out_dst : int array;
  out_etype : int array;
  out_eid : int array;
  out_seg : int array;  (* (n*nets + 1) typed segment starts, see below *)
  in_off : int array;
  in_src : int array;
  in_etype : int array;
  in_eid : int array;
  in_seg : int array;
  e_src : int array;
  e_dst : int array;
  e_type : int array;
  vprops : Props.t;
  eprops : Props.t;
  by_type : int array array;
}

(* Each vertex's CSR segment is sorted by edge type (and by insertion
   id within a type), and [out_seg]/[in_seg] record where every
   (vertex, etype) run starts: slot v*nets + t holds the absolute
   start of vertex v's type-t run, and — runs being contiguous — the
   next slot holds its end, with the final slot pinned to m. Typed
   iteration therefore walks exactly deg_t(v) entries instead of
   filter-scanning the whole adjacency. *)
let of_arrays schema ~vtype ~e_src ~e_dst ~e_type ~vprops ~eprops =
  let n = Array.length vtype in
  let m = Array.length e_src in
  let nets = Schema.n_edge_types schema in
  (* Two-key counting sort into type-segmented CSR, both directions:
     one count per (vertex, etype) pair, prefix-summed in place. *)
  let out_seg = Array.make ((n * nets) + 1) 0 in
  let in_seg = Array.make ((n * nets) + 1) 0 in
  for e = 0 to m - 1 do
    let ty = e_type.(e) in
    let os = (e_src.(e) * nets) + ty and is_ = (e_dst.(e) * nets) + ty in
    out_seg.(os + 1) <- out_seg.(os + 1) + 1;
    in_seg.(is_ + 1) <- in_seg.(is_ + 1) + 1
  done;
  for i = 1 to n * nets do
    out_seg.(i) <- out_seg.(i) + out_seg.(i - 1);
    in_seg.(i) <- in_seg.(i) + in_seg.(i - 1)
  done;
  let out_off = Array.init (n + 1) (fun v -> out_seg.(v * nets)) in
  let in_off = Array.init (n + 1) (fun v -> in_seg.(v * nets)) in
  let out_dst = Array.make m 0 and out_etype = Array.make m 0 and out_eid = Array.make m 0 in
  let in_src = Array.make m 0 and in_etype = Array.make m 0 and in_eid = Array.make m 0 in
  let out_cursor = Array.sub out_seg 0 (Stdlib.max 1 (n * nets)) in
  let in_cursor = Array.sub in_seg 0 (Stdlib.max 1 (n * nets)) in
  for e = 0 to m - 1 do
    let s = e_src.(e) and d = e_dst.(e) and ty = e_type.(e) in
    let oi = out_cursor.((s * nets) + ty) in
    out_cursor.((s * nets) + ty) <- oi + 1;
    out_dst.(oi) <- d;
    out_etype.(oi) <- ty;
    out_eid.(oi) <- e;
    let ii = in_cursor.((d * nets) + ty) in
    in_cursor.((d * nets) + ty) <- ii + 1;
    in_src.(ii) <- s;
    in_etype.(ii) <- ty;
    in_eid.(ii) <- e
  done;
  let ntypes = Schema.n_vertex_types schema in
  let counts = Array.make ntypes 0 in
  Array.iter (fun ty -> counts.(ty) <- counts.(ty) + 1) vtype;
  let by_type = Array.map (fun c -> Array.make c 0) counts in
  let cursors = Array.make ntypes 0 in
  Array.iteri
    (fun v ty ->
      by_type.(ty).(cursors.(ty)) <- v;
      cursors.(ty) <- cursors.(ty) + 1)
    vtype;
  {
    schema;
    n;
    m;
    nets;
    vtype;
    out_off;
    out_dst;
    out_etype;
    out_eid;
    out_seg;
    in_off;
    in_src;
    in_etype;
    in_eid;
    in_seg;
    e_src;
    e_dst;
    e_type;
    vprops;
    eprops;
    by_type;
  }

let freeze builder =
  let schema = Builder.schema builder in
  let vtypes = Builder.internal_vtypes builder in
  let e_src_v, e_dst_v, e_type_v = Builder.internal_edges builder in
  let vprops, eprops = Builder.internal_props builder in
  of_arrays schema ~vtype:(Int_vec.to_array vtypes) ~e_src:(Int_vec.to_array e_src_v)
    ~e_dst:(Int_vec.to_array e_dst_v) ~e_type:(Int_vec.to_array e_type_v) ~vprops ~eprops

(* Array-level edge surgery for incremental view maintenance: no
   Builder round-trip (per-edge string lookups, Int_vec growth,
   per-entity prop lists), just blit-style copies into [of_arrays].
   Surviving edges keep their relative eid order; added edges append
   after them; appended vertices take ids n, n+1, ... When no vertices
   are appended the vertex-side arrays and property store are shared
   physically with [t] — safe because frozen graphs are never
   mutated. *)
let splice t ?(new_vertices = [||]) ~keep_eid ~add_edges () =
  let n_new = Array.length new_vertices in
  let n' = t.n + n_new in
  let vtype' =
    if n_new = 0 then t.vtype
    else
      Array.init n' (fun v ->
          if v < t.n then t.vtype.(v)
          else begin
            let ty, _ = new_vertices.(v - t.n) in
            if ty < 0 || ty >= Schema.n_vertex_types t.schema then
              invalid_arg "Graph.splice: vertex type out of range";
            ty
          end)
  in
  (* Dropped eids are collected once; the kept edges are then copied
     with segment blits between them (drops are typically sparse or
     absent, so this is three [Array.blit]s in the common case rather
     than a per-edge loop, and no O(m) eid-map array is needed: the
     new id of a kept edge is its old id minus the dropped eids before
     it, recovered by binary search over the small sorted list). *)
  let dropped_rev = ref [] and n_drop = ref 0 in
  for e = 0 to t.m - 1 do
    if not (keep_eid e) then begin
      dropped_rev := e :: !dropped_rev;
      Stdlib.incr n_drop
    end
  done;
  let dropped = Array.of_list (List.rev !dropped_rev) in
  let m_keep = t.m - !n_drop in
  let m' = m_keep + Array.length add_edges in
  let e_src = Array.make m' 0 and e_dst = Array.make m' 0 and e_type = Array.make m' 0 in
  let j = ref 0 and prev = ref 0 in
  let blit_upto stop =
    let len = stop - !prev in
    if len > 0 then begin
      Array.blit t.e_src !prev e_src !j len;
      Array.blit t.e_dst !prev e_dst !j len;
      Array.blit t.e_type !prev e_type !j len;
      j := !j + len
    end;
    prev := stop + 1
  in
  Array.iter blit_upto dropped;
  blit_upto t.m;
  let map_eid =
    if !n_drop = 0 then Fun.id
    else
      fun e ->
      let lo = ref 0 and hi = ref (Array.length dropped) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if dropped.(mid) < e then lo := mid + 1 else hi := mid
      done;
      if !lo < Array.length dropped && dropped.(!lo) = e then -1 else e - !lo
  in
  Array.iteri
    (fun i (src, dst, ty, _) ->
      if src < 0 || src >= n' || dst < 0 || dst >= n' then
        invalid_arg "Graph.splice: edge endpoint out of range";
      if ty < 0 || ty >= t.nets then invalid_arg "Graph.splice: edge type out of range";
      e_src.(m_keep + i) <- src;
      e_dst.(m_keep + i) <- dst;
      e_type.(m_keep + i) <- ty)
    add_edges;
  let eprops = Props.remap t.eprops map_eid in
  Array.iteri
    (fun i (_, _, _, props) -> List.iter (fun (k, v) -> Props.set eprops (m_keep + i) k v) props)
    add_edges;
  let vprops =
    if n_new = 0 then t.vprops
    else begin
      let vp = Props.remap t.vprops Fun.id in
      Array.iteri
        (fun i (_, props) -> List.iter (fun (k, v) -> Props.set vp (t.n + i) k v) props)
        new_vertices;
      vp
    end
  in
  of_arrays t.schema ~vtype:vtype' ~e_src ~e_dst ~e_type ~vprops ~eprops

(* Same structure, one vertex property column replaced wholesale. The
   CSR arrays are shared physically; only the property store is
   copied. *)
let with_vprop_column t key values =
  if Array.length values <> t.n then invalid_arg "Graph.with_vprop_column: length mismatch";
  let vprops = Props.remap t.vprops Fun.id in
  Array.iteri (fun v value -> Props.set vprops v key value) values;
  { t with vprops }

let schema t = t.schema
let n_vertices t = t.n
let n_edges t = t.m

let vertex_type t v = t.vtype.(v)
let vertex_type_name t v = Schema.vertex_type_name t.schema t.vtype.(v)
let vertices_of_type t ty = t.by_type.(ty)
let vertices_of_type_name t name = t.by_type.(Schema.vertex_type_id t.schema name)
let count_of_type t ty = Array.length t.by_type.(ty)

let out_degree t v = t.out_off.(v + 1) - t.out_off.(v)
let in_degree t v = t.in_off.(v + 1) - t.in_off.(v)

let iter_out t v f =
  for i = t.out_off.(v) to t.out_off.(v + 1) - 1 do
    f ~dst:t.out_dst.(i) ~etype:t.out_etype.(i) ~eid:t.out_eid.(i)
  done

let iter_in t v f =
  for i = t.in_off.(v) to t.in_off.(v + 1) - 1 do
    f ~src:t.in_src.(i) ~etype:t.in_etype.(i) ~eid:t.in_eid.(i)
  done

(* [start, stop) of the type-[etype] run of [v]'s adjacency. The run
   for the last etype of v ends exactly where v+1's first run starts,
   so [seg.(slot + 1)] is the stop bound for every slot. *)
let typed_out_slice t v ~etype =
  let slot = (v * t.nets) + etype in
  (t.out_seg.(slot), t.out_seg.(slot + 1))

let typed_in_slice t v ~etype =
  let slot = (v * t.nets) + etype in
  (t.in_seg.(slot), t.in_seg.(slot + 1))

let typed_out_degree t v ~etype =
  let lo, hi = typed_out_slice t v ~etype in
  hi - lo

let typed_in_degree t v ~etype =
  let lo, hi = typed_in_slice t v ~etype in
  hi - lo

let out_dst_at t i = t.out_dst.(i)
let out_eid_at t i = t.out_eid.(i)
let in_src_at t i = t.in_src.(i)
let in_eid_at t i = t.in_eid.(i)

let iter_out_etype t v ~etype f =
  let lo, hi = typed_out_slice t v ~etype in
  for i = lo to hi - 1 do
    f ~dst:t.out_dst.(i) ~eid:t.out_eid.(i)
  done

let iter_in_etype t v ~etype f =
  let lo, hi = typed_in_slice t v ~etype in
  for i = lo to hi - 1 do
    f ~src:t.in_src.(i) ~eid:t.in_eid.(i)
  done

let out_neighbors t v = Array.sub t.out_dst t.out_off.(v) (out_degree t v)

let iter_edges t f =
  for e = 0 to t.m - 1 do
    f ~eid:e ~src:t.e_src.(e) ~dst:t.e_dst.(e) ~etype:t.e_type.(e)
  done

let edge_endpoints t e = (t.e_src.(e), t.e_dst.(e))
let edge_type t e = t.e_type.(e)

let vprop t v key = Props.get t.vprops v key
let vprop_or_null t v key = Props.get_or_null t.vprops v key
let eprop t e key = Props.get t.eprops e key
let eprop_or_null t e key = Props.get_or_null t.eprops e key

let vertex_props t v = Props.entity_props t.vprops v
let edge_props t e = Props.entity_props t.eprops e
let vertex_prop_keys t = Props.keys t.vprops
let edge_prop_keys t = Props.keys t.eprops

let out_degrees_of_type t ty = Array.map (fun v -> out_degree t v) t.by_type.(ty)
let all_out_degrees t = Array.init t.n (fun v -> out_degree t v)

(* Zero-copy access for the sharded layer (Shard.of_graph): frozen
   graphs are never mutated, so sharing the arrays is safe. *)
let internal_arrays t = (t.vtype, t.e_src, t.e_dst, t.e_type)
let internal_props t = (t.vprops, t.eprops)

let pp_summary ppf t =
  Format.fprintf ppf "|V|=%s |E|=%s" (Table.fmt_int t.n) (Table.fmt_int t.m);
  Array.iteri
    (fun ty vs ->
      Format.fprintf ppf " %s:%s" (Schema.vertex_type_name t.schema ty) (Table.fmt_int (Array.length vs)))
    t.by_type

(* ------------------------------------------------------------------ *)
(* Delta overlay                                                       *)

module Overlay = struct
  type op =
    | Insert_vertex of { vtype : string; props : (string * Value.t) list }
    | Insert_edge of { src : int; dst : int; etype : string; props : (string * Value.t) list }
    | Delete_edge of { src : int; dst : int; etype : string }

  let pp_op ppf = function
    | Insert_vertex { vtype; _ } -> Format.fprintf ppf "+vertex(:%s)" vtype
    | Insert_edge { src; dst; etype; _ } -> Format.fprintf ppf "+edge(%d-[:%s]->%d)" src etype dst
    | Delete_edge { src; dst; etype } -> Format.fprintf ppf "-edge(%d-[:%s]->%d)" src etype dst

  type pending_edge = {
    pe_src : int;
    pe_dst : int;
    pe_etype : int;
    pe_props : (string * Value.t) list;
    mutable pe_live : bool;
  }

  (* [nonrec]: every [t] below is the frozen graph type. Pending edges
     live in one growable array; per-vertex [out_adj]/[in_adj] lists
     index into it so merged iteration appends exactly the vertex's
     own deltas after the base slice. Deletes of base edges tombstone
     the eid; deletes that land on a pending insert just flip its
     [pe_live] bit (the insert never happened, observably). *)
  type nonrec t = {
    mutable base : t;
    mutable version : int;
    mutable snapshot : (int * t) option;  (* compacted view of [version] *)
    pend_vtype : Int_vec.t;  (* inserted vertices; id = base.n + index *)
    pend_vprops : (int, (string * Value.t) list) Hashtbl.t;
    mutable pend_edges : pending_edge array;
    mutable n_pend : int;
    mutable n_live_pend : int;
    out_adj : (int, Int_vec.t) Hashtbl.t;  (* vertex -> pending edge indexes *)
    in_adj : (int, Int_vec.t) Hashtbl.t;
    deleted : (int, unit) Hashtbl.t;  (* tombstoned base eids *)
    pins : (int, int ref) Hashtbl.t;  (* version -> live pin count *)
  }

  let create base =
    {
      base;
      version = 0;
      snapshot = None;
      pend_vtype = Int_vec.create ();
      pend_vprops = Hashtbl.create 16;
      pend_edges = [||];
      n_pend = 0;
      n_live_pend = 0;
      out_adj = Hashtbl.create 16;
      in_adj = Hashtbl.create 16;
      deleted = Hashtbl.create 16;
      pins = Hashtbl.create 16;
    }

  let base o = o.base
  let schema o = o.base.schema
  let version o = o.version

  let pending_vertices o = Int_vec.length o.pend_vtype
  let pending_edges o = o.n_live_pend
  let deleted_edges o = Hashtbl.length o.deleted
  let pending_ops o = pending_vertices o + pending_edges o + deleted_edges o
  let overlay_ratio o = float_of_int (pending_ops o) /. float_of_int (Stdlib.max 1 o.base.m)
  let needs_compact ?(threshold = 0.25) o = overlay_ratio o > threshold

  let n_vertices o = o.base.n + Int_vec.length o.pend_vtype
  let n_edges o = o.base.m - deleted_edges o + o.n_live_pend

  let vertex_type o v =
    if v < o.base.n then o.base.vtype.(v) else Int_vec.get o.pend_vtype (v - o.base.n)

  let vertex_type_name o v = Schema.vertex_type_name o.base.schema (vertex_type o v)

  let sorted_props props =
    List.sort (fun (a, _) (b, _) -> String.compare a b) props

  let vertex_props o v =
    if v < o.base.n then vertex_props o.base v
    else match Hashtbl.find_opt o.pend_vprops v with Some ps -> ps | None -> []

  let vprop_or_null o v key =
    if v < o.base.n then vprop_or_null o.base v key
    else
      match Hashtbl.find_opt o.pend_vprops v with
      | Some ps -> ( match List.assoc_opt key ps with Some x -> x | None -> Value.Null)
      | None -> Value.Null

  let edge_props o eid =
    if eid < o.base.m then edge_props o.base eid else o.pend_edges.(eid - o.base.m).pe_props

  let adj_of tbl v =
    match Hashtbl.find_opt tbl v with
    | Some vec -> vec
    | None ->
      let vec = Int_vec.create () in
      Hashtbl.add tbl v vec;
      vec

  let iter_pending o tbl v f =
    match Hashtbl.find_opt tbl v with
    | None -> ()
    | Some idxs ->
      Int_vec.iter
        (fun i ->
          let e = o.pend_edges.(i) in
          if e.pe_live then f e (o.base.m + i))
        idxs

  let iter_out o v f =
    if v < o.base.n then
      iter_out o.base v (fun ~dst ~etype ~eid ->
          if not (Hashtbl.mem o.deleted eid) then f ~dst ~etype ~eid);
    iter_pending o o.out_adj v (fun e eid -> f ~dst:e.pe_dst ~etype:e.pe_etype ~eid)

  let iter_in o v f =
    if v < o.base.n then
      iter_in o.base v (fun ~src ~etype ~eid ->
          if not (Hashtbl.mem o.deleted eid) then f ~src ~etype ~eid);
    iter_pending o o.in_adj v (fun e eid -> f ~src:e.pe_src ~etype:e.pe_etype ~eid)

  let iter_out_etype o v ~etype f =
    if v < o.base.n then
      iter_out_etype o.base v ~etype (fun ~dst ~eid ->
          if not (Hashtbl.mem o.deleted eid) then f ~dst ~eid);
    iter_pending o o.out_adj v (fun e eid -> if e.pe_etype = etype then f ~dst:e.pe_dst ~eid)

  let iter_in_etype o v ~etype f =
    if v < o.base.n then
      iter_in_etype o.base v ~etype (fun ~src ~eid ->
          if not (Hashtbl.mem o.deleted eid) then f ~src ~eid);
    iter_pending o o.in_adj v (fun e eid -> if e.pe_etype = etype then f ~src:e.pe_src ~eid)

  let out_degree o v =
    let c = ref 0 in
    iter_out o v (fun ~dst:_ ~etype:_ ~eid:_ -> Stdlib.incr c);
    !c

  let in_degree o v =
    let c = ref 0 in
    iter_in o v (fun ~src:_ ~etype:_ ~eid:_ -> Stdlib.incr c);
    !c

  let typed_out_degree o v ~etype =
    let c = ref 0 in
    iter_out_etype o v ~etype (fun ~dst:_ ~eid:_ -> Stdlib.incr c);
    !c

  let typed_in_degree o v ~etype =
    let c = ref 0 in
    iter_in_etype o v ~etype (fun ~src:_ ~eid:_ -> Stdlib.incr c);
    !c

  let touch o = o.version <- o.version + 1

  let insert_vertex o ~vtype ?(props = []) () =
    let ty =
      match Schema.vertex_type_id o.base.schema vtype with
      | ty -> ty
      | exception Not_found -> invalid_arg ("Overlay.insert_vertex: unknown vertex type " ^ vtype)
    in
    let id = n_vertices o in
    Int_vec.push o.pend_vtype ty;
    if props <> [] then Hashtbl.replace o.pend_vprops id (sorted_props props);
    touch o;
    id

  let push_pending o e =
    if o.n_pend = Array.length o.pend_edges then begin
      let arr = Array.make (Stdlib.max 8 (2 * o.n_pend)) e in
      Array.blit o.pend_edges 0 arr 0 o.n_pend;
      o.pend_edges <- arr
    end;
    o.pend_edges.(o.n_pend) <- e;
    let i = o.n_pend in
    o.n_pend <- i + 1;
    o.n_live_pend <- o.n_live_pend + 1;
    i

  let insert_edge o ~src ~dst ~etype ?(props = []) () =
    let n = n_vertices o in
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg "Overlay.insert_edge: endpoint out of range";
    let ty =
      match Schema.edge_type_id o.base.schema etype with
      | ty -> ty
      | exception Not_found -> invalid_arg ("Overlay.insert_edge: unknown edge type " ^ etype)
    in
    if Schema.edge_src o.base.schema ty <> vertex_type o src
       || Schema.edge_dst o.base.schema ty <> vertex_type o dst
    then invalid_arg ("Overlay.insert_edge: domain/range mismatch for " ^ etype);
    let i =
      push_pending o { pe_src = src; pe_dst = dst; pe_etype = ty; pe_props = sorted_props props; pe_live = true }
    in
    Int_vec.push (adj_of o.out_adj src) i;
    Int_vec.push (adj_of o.in_adj dst) i;
    touch o

  let delete_edge o ~src ~dst ~etype =
    match Schema.edge_type_id o.base.schema etype with
    | exception Not_found -> invalid_arg ("Overlay.delete_edge: unknown edge type " ^ etype)
    | ty ->
      let found = ref false in
      (* First live base instance, in eid order (typed slices are
         insertion-ordered within a type). *)
      if src >= 0 && src < o.base.n then begin
        let lo, hi = typed_out_slice o.base src ~etype:ty in
        let i = ref lo in
        while (not !found) && !i < hi do
          if o.base.out_dst.(!i) = dst && not (Hashtbl.mem o.deleted o.base.out_eid.(!i)) then begin
            Hashtbl.replace o.deleted o.base.out_eid.(!i) ();
            found := true
          end;
          Stdlib.incr i
        done
      end;
      (* Then pending inserts, in insertion order. *)
      if not !found then begin
        match Hashtbl.find_opt o.out_adj src with
        | None -> ()
        | Some idxs ->
          let len = Int_vec.length idxs in
          let j = ref 0 in
          while (not !found) && !j < len do
            let e = o.pend_edges.(Int_vec.get idxs !j) in
            if e.pe_live && e.pe_dst = dst && e.pe_etype = ty then begin
              e.pe_live <- false;
              o.n_live_pend <- o.n_live_pend - 1;
              found := true
            end;
            Stdlib.incr j
          done
      end;
      if !found then touch o;
      !found

  let apply o ops =
    List.filter
      (fun op ->
        match op with
        | Insert_vertex { vtype; props } ->
          ignore (insert_vertex o ~vtype ~props ());
          true
        | Insert_edge { src; dst; etype; props } ->
          insert_edge o ~src ~dst ~etype ~props ();
          true
        | Delete_edge { src; dst; etype } -> delete_edge o ~src ~dst ~etype)
      ops

  (* [splice] does exactly the overlay-merge: surviving base edges in
     eid order (tombstones out), then live pending edges in insertion
     order, plus appended vertices — at array-copy cost instead of a
     Builder round-trip. Every op was schema-checked on entry. *)
  let build_snapshot o =
    let new_vertices =
      Array.init (Int_vec.length o.pend_vtype) (fun i ->
          let id = o.base.n + i in
          let props = match Hashtbl.find_opt o.pend_vprops id with Some ps -> ps | None -> [] in
          (Int_vec.get o.pend_vtype i, props))
    in
    let add_edges = ref [] in
    for i = o.n_pend - 1 downto 0 do
      let e = o.pend_edges.(i) in
      if e.pe_live then add_edges := (e.pe_src, e.pe_dst, e.pe_etype, e.pe_props) :: !add_edges
    done;
    let add_edges = Array.of_list !add_edges in
    splice o.base ~new_vertices ~keep_eid:(fun eid -> not (Hashtbl.mem o.deleted eid)) ~add_edges ()

  let graph o =
    if pending_ops o = 0 then o.base
    else
      match o.snapshot with
      | Some (v, g) when v = o.version -> g
      | _ ->
        let g = build_snapshot o in
        o.snapshot <- Some (o.version, g);
        g

  let compact o =
    if pending_ops o = 0 then o.base
    else begin
      let g = graph o in
      o.base <- g;
      Int_vec.clear o.pend_vtype;
      Hashtbl.reset o.pend_vprops;
      o.pend_edges <- [||];
      o.n_pend <- 0;
      o.n_live_pend <- 0;
      Hashtbl.reset o.out_adj;
      Hashtbl.reset o.in_adj;
      Hashtbl.reset o.deleted;
      (* The snapshot cache stays: same version, same (now base) graph. *)
      o.snapshot <- Some (o.version, g);
      g
    end

  let maybe_compact ?threshold o =
    if needs_compact ?threshold o then begin
      ignore (compact o);
      true
    end
    else false

  (* Pinning captures the frozen snapshot of the current version.
     Frozen graphs are immutable — [apply]/[compact] build new ones and
     never touch graphs already handed out — so a pinned graph stays
     valid for as long as the caller keeps it, whatever the writer does
     next. The refcount table only serves observability (how many
     sessions still read which version); callers must serialize
     pin/unpin against mutation externally, e.g. under the serve-layer
     manager lock, because [graph o] fills the snapshot cache. *)
  let pin o =
    let g = graph o in
    let v = o.version in
    (match Hashtbl.find_opt o.pins v with
    | Some r -> Stdlib.incr r
    | None -> Hashtbl.add o.pins v (ref 1));
    (v, g)

  let unpin o v =
    match Hashtbl.find_opt o.pins v with
    | None -> invalid_arg "Overlay.unpin: version not pinned"
    | Some r ->
      Stdlib.decr r;
      if !r <= 0 then Hashtbl.remove o.pins v

  let pin_count o = Hashtbl.fold (fun _ r acc -> acc + !r) o.pins 0

  let pinned_versions o =
    Hashtbl.fold (fun v r acc -> (v, !r) :: acc) o.pins []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
end
