(** Frozen, immutable property graph in CSR (compressed sparse row)
    form — the in-memory execution substrate standing in for Neo4j's
    store. Both out- and in-adjacency are materialized so traversals
    run in either direction; edges keep their builder ids so
    properties survive freezing.

    Each vertex's adjacency segment is {e type-segmented}: sorted by
    edge type, with a per-(vertex, etype) offset index in both
    directions. Typed traversal — the hot path of every connector
    query (paper §VII) — therefore touches exactly the edges of the
    requested type ({!iter_out_etype} is O(deg of that type)), and
    {!typed_out_slice} exposes the contiguous run to callers that want
    to walk the arrays directly. Within one vertex, edges appear in
    (etype, insertion id) order. *)

type t

val freeze : Builder.t -> t
(** O(V + E). The builder may keep being used afterwards; the frozen
    graph shares property tables but copies topology. *)

val schema : t -> Schema.t
val n_vertices : t -> int
val n_edges : t -> int

val vertex_type : t -> int -> int
val vertex_type_name : t -> int -> string
val vertices_of_type : t -> int -> int array
(** Shared array — do not mutate. *)

val vertices_of_type_name : t -> string -> int array
val count_of_type : t -> int -> int

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_out : t -> int -> (dst:int -> etype:int -> eid:int -> unit) -> unit
val iter_in : t -> int -> (src:int -> etype:int -> eid:int -> unit) -> unit

val iter_out_etype : t -> int -> etype:int -> (dst:int -> eid:int -> unit) -> unit
(** Out-edges restricted to one edge type — a contiguous slice walk,
    O(number of such edges), not a filter over the whole adjacency. *)

val iter_in_etype : t -> int -> etype:int -> (src:int -> eid:int -> unit) -> unit

val typed_out_slice : t -> int -> etype:int -> int * int
(** [(start, stop)] bounds of the vertex's type-[etype] run in the
    out-CSR: positions [start..stop-1] are readable through
    {!out_dst_at}/{!out_eid_at}. *)

val typed_in_slice : t -> int -> etype:int -> int * int
val typed_out_degree : t -> int -> etype:int -> int
val typed_in_degree : t -> int -> etype:int -> int

val out_dst_at : t -> int -> int
(** Destination at an absolute out-CSR position (from
    {!typed_out_slice}). Unchecked beyond array bounds. *)

val out_eid_at : t -> int -> int
val in_src_at : t -> int -> int
val in_eid_at : t -> int -> int

val out_neighbors : t -> int -> int array
(** Fresh array of destination ids (possibly with duplicates for
    parallel edges). *)

val iter_edges : t -> (eid:int -> src:int -> dst:int -> etype:int -> unit) -> unit
val edge_endpoints : t -> int -> int * int
val edge_type : t -> int -> int

val vprop : t -> int -> string -> Value.t option
val vprop_or_null : t -> int -> string -> Value.t
val eprop : t -> int -> string -> Value.t option
val eprop_or_null : t -> int -> string -> Value.t

val vertex_props : t -> int -> (string * Value.t) list
(** All properties of a vertex (sorted by name). O(#columns). *)

val edge_props : t -> int -> (string * Value.t) list
val vertex_prop_keys : t -> string list
val edge_prop_keys : t -> string list

val out_degrees_of_type : t -> int -> int array
(** Fresh array: out-degree of every vertex of the given type, in
    vertex order — the raw input to the degree-percentile estimator. *)

val all_out_degrees : t -> int array

val pp_summary : Format.formatter -> t -> unit
(** One-line [|V|, |E|] plus per-type counts. *)
