(** Frozen, immutable property graph in CSR (compressed sparse row)
    form — the in-memory execution substrate standing in for Neo4j's
    store. Both out- and in-adjacency are materialized so traversals
    run in either direction; edges keep their builder ids so
    properties survive freezing.

    Each vertex's adjacency segment is {e type-segmented}: sorted by
    edge type, with a per-(vertex, etype) offset index in both
    directions. Typed traversal — the hot path of every connector
    query (paper §VII) — therefore touches exactly the edges of the
    requested type ({!iter_out_etype} is O(deg of that type)), and
    {!typed_out_slice} exposes the contiguous run to callers that want
    to walk the arrays directly. Within one vertex, edges appear in
    (etype, insertion id) order. *)

type t

val freeze : Builder.t -> t
(** O(V + E). The builder may keep being used afterwards; the frozen
    graph shares property tables but copies topology. *)

val splice :
  t ->
  ?new_vertices:(int * (string * Value.t) list) array ->
  keep_eid:(int -> bool) ->
  add_edges:(int * int * int * (string * Value.t) list) array ->
  unit ->
  t
(** Array-level edge surgery, the fast path of incremental view
    maintenance ({!Kaskade_views.Maintain}): a new graph whose edges
    are this graph's edges with [keep_eid e = true], in eid order and
    renumbered compactly, followed by [add_edges] — [(src, dst, etype
    id, props)] — in order. [new_vertices] ([(vtype id, props)])
    append at ids [n_vertices], [n_vertices + 1], ... Edge properties
    follow their surviving edge. O(V + E) with array-copy constants —
    no Builder round-trip — and when [new_vertices] is empty the
    vertex arrays and property store are shared physically with the
    input (frozen graphs are never mutated, so sharing is safe).
    Raises [Invalid_argument] on out-of-range endpoints or type
    ids. *)

val with_vprop_column : t -> string -> Value.t array -> t
(** A graph sharing this one's entire topology (physically) with
    vertex property [key] replaced by [values.(v)] for every vertex —
    how ego-aggregator refreshes update their per-vertex aggregates
    without re-freezing. [values] must have length [n_vertices];
    raises [Invalid_argument] otherwise. *)

val schema : t -> Schema.t
val n_vertices : t -> int
val n_edges : t -> int

val vertex_type : t -> int -> int
val vertex_type_name : t -> int -> string
val vertices_of_type : t -> int -> int array
(** Shared array — do not mutate. *)

val vertices_of_type_name : t -> string -> int array
val count_of_type : t -> int -> int

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_out : t -> int -> (dst:int -> etype:int -> eid:int -> unit) -> unit
val iter_in : t -> int -> (src:int -> etype:int -> eid:int -> unit) -> unit

val iter_out_etype : t -> int -> etype:int -> (dst:int -> eid:int -> unit) -> unit
(** Out-edges restricted to one edge type — a contiguous slice walk,
    O(number of such edges), not a filter over the whole adjacency. *)

val iter_in_etype : t -> int -> etype:int -> (src:int -> eid:int -> unit) -> unit

val typed_out_slice : t -> int -> etype:int -> int * int
(** [(start, stop)] bounds of the vertex's type-[etype] run in the
    out-CSR: positions [start..stop-1] are readable through
    {!out_dst_at}/{!out_eid_at}. *)

val typed_in_slice : t -> int -> etype:int -> int * int
val typed_out_degree : t -> int -> etype:int -> int
val typed_in_degree : t -> int -> etype:int -> int

val out_dst_at : t -> int -> int
(** Destination at an absolute out-CSR position (from
    {!typed_out_slice}). Unchecked beyond array bounds. *)

val out_eid_at : t -> int -> int
val in_src_at : t -> int -> int
val in_eid_at : t -> int -> int

val out_neighbors : t -> int -> int array
(** Fresh array of destination ids (possibly with duplicates for
    parallel edges). *)

val iter_edges : t -> (eid:int -> src:int -> dst:int -> etype:int -> unit) -> unit
val edge_endpoints : t -> int -> int * int
val edge_type : t -> int -> int

val vprop : t -> int -> string -> Value.t option
val vprop_or_null : t -> int -> string -> Value.t
val eprop : t -> int -> string -> Value.t option
val eprop_or_null : t -> int -> string -> Value.t

val vertex_props : t -> int -> (string * Value.t) list
(** All properties of a vertex (sorted by name). O(#columns). *)

val edge_props : t -> int -> (string * Value.t) list
val vertex_prop_keys : t -> string list
val edge_prop_keys : t -> string list

val out_degrees_of_type : t -> int -> int array
(** Fresh array: out-degree of every vertex of the given type, in
    vertex order — the raw input to the degree-percentile estimator. *)

val all_out_degrees : t -> int array

val internal_arrays : t -> int array * int array * int array * int array
(** [(vtype, e_src, e_dst, e_type)] — the raw topology arrays, shared
    physically (frozen graphs are never mutated). Feed of the sharded
    layer ({!Shard.of_graph}); do not mutate. *)

val internal_props : t -> Props.t * Props.t
(** [(vertex props, edge props)], shared physically — same contract as
    {!internal_arrays}. *)

val of_arrays :
  Schema.t ->
  vtype:int array ->
  e_src:int array ->
  e_dst:int array ->
  e_type:int array ->
  vprops:Props.t ->
  eprops:Props.t ->
  t
(** Rebuild a frozen graph straight from raw topology arrays and
    property tables — the inverse of {!internal_arrays} +
    {!internal_props}, and the decode path of binary snapshots
    ([Kaskade_store.Codec.graph]). O(V + E); the arrays are taken by
    reference (frozen graphs are never mutated, so sharing is
    safe). *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [|V|, |E|] plus per-type counts. *)

(** Delta overlay: a thin mutable layer of pending vertex inserts,
    edge inserts and edge deletes over a frozen CSR base — the update
    path the paper defers to future work (§IX). Reads merge the base's
    type-segmented slices with the overlay's per-vertex delta lists;
    when the overlay grows past a threshold, {!Overlay.compact}
    re-freezes everything into a new base.

    Id discipline:
    - Vertex ids are {e stable}: base vertices keep their ids forever,
      inserted vertices get ids [n_vertices base + i] and keep them
      across compaction. View catalogs may therefore hold
      [new_of_old] maps across updates.
    - Edge ids are stable {e between} compactions only: pending edges
      read as [n_edges base + i], and compaction renumbers all edges
      densely. Do not hold eids across {!Overlay.compact}.

    Vertex deletion is intentionally unsupported (it would either
    renumber ids — invalidating every catalog mapping — or leave typed
    tombstones visible to scans). Model vertex removal as deleting the
    vertex's edges, or use a vertex-removal summarizer view. *)
module Overlay : sig
  type graph := t

  type t

  (** One pending mutation. [Delete_edge] removes the first live
      matching [(src, dst, etype)] instance in edge-id order —
      multiset semantics, so repeated deletes peel off parallel
      edges one at a time. *)
  type op =
    | Insert_vertex of { vtype : string; props : (string * Value.t) list }
    | Insert_edge of { src : int; dst : int; etype : string; props : (string * Value.t) list }
    | Delete_edge of { src : int; dst : int; etype : string }

  val pp_op : Format.formatter -> op -> unit

  val create : graph -> t
  (** An empty overlay; reads pass straight through to the base. *)

  val base : t -> graph
  (** The frozen graph beneath the deltas (advances on {!compact}). *)

  val schema : t -> Schema.t

  val version : t -> int
  (** Bumped by every successful mutation. Caches keyed on the version
      (executor contexts, statistics) stay valid while it is equal. *)

  (** {2 Mutation} *)

  val insert_vertex : t -> vtype:string -> ?props:(string * Value.t) list -> unit -> int
  (** Returns the new vertex id ([n_vertices] before the insert).
      Raises [Invalid_argument] on an unknown vertex type. *)

  val insert_edge : t -> src:int -> dst:int -> etype:string -> ?props:(string * Value.t) list -> unit -> unit
  (** Schema-checked like [Builder.add_edge]: raises
      [Invalid_argument] when the edge type is unknown, an endpoint id
      is out of range, or domain/range do not match. *)

  val delete_edge : t -> src:int -> dst:int -> etype:string -> bool
  (** Delete the first live matching instance (base edges in eid
      order, then pending inserts in insertion order). [false] when no
      live instance matches (the overlay is unchanged). *)

  val apply : t -> op list -> op list
  (** Apply a batch in order and return the ops that took effect —
      failed deletes are dropped, so the result is exactly the delta
      the views must absorb ({!Kaskade_views.Maintain}). *)

  (** {2 Merged reads}

      Same contracts as the eponymous {!Graph} functions, with deleted
      base edges filtered out and pending edges appended after the
      base slice (in insertion order). *)

  val n_vertices : t -> int
  val n_edges : t -> int
  val vertex_type : t -> int -> int
  val vertex_type_name : t -> int -> string
  val out_degree : t -> int -> int
  val in_degree : t -> int -> int
  val iter_out : t -> int -> (dst:int -> etype:int -> eid:int -> unit) -> unit
  val iter_in : t -> int -> (src:int -> etype:int -> eid:int -> unit) -> unit

  val iter_out_etype : t -> int -> etype:int -> (dst:int -> eid:int -> unit) -> unit
  (** The base's contiguous typed slice, minus deletions, then the
      vertex's pending edges of that type. *)

  val iter_in_etype : t -> int -> etype:int -> (src:int -> eid:int -> unit) -> unit
  val typed_out_degree : t -> int -> etype:int -> int
  val typed_in_degree : t -> int -> etype:int -> int

  val vertex_props : t -> int -> (string * Value.t) list
  val vprop_or_null : t -> int -> string -> Value.t
  val edge_props : t -> int -> (string * Value.t) list
  (** Edge property reads accept merged eids (pending edges included)
      valid since the last compaction. *)

  (** {2 Snapshots and compaction} *)

  val graph : t -> graph
  (** A frozen graph equal to base + deltas. Cached per {!version}
      (and the base itself when the overlay is clean), so repeated
      calls between mutations are free. Batch updates before
      querying: every mutation invalidates the snapshot. *)

  val pending_vertices : t -> int
  val pending_edges : t -> int
  (** Live pending inserts (inserts later deleted do not count). *)

  val deleted_edges : t -> int
  val pending_ops : t -> int
  (** Total overlay volume: pending vertices + live pending edges +
      base deletions. *)

  val overlay_ratio : t -> float
  (** [pending_ops / max 1 (n_edges base)] — the compaction signal. *)

  val needs_compact : ?threshold:float -> t -> bool
  (** [overlay_ratio > threshold] (default [0.25]). *)

  val compact : t -> graph
  (** Re-freeze base + deltas into a new base and clear the overlay.
      Vertex ids are preserved; edge ids renumber. Returns the new
      base. O(V + E); no-op when the overlay is clean. *)

  val maybe_compact : ?threshold:float -> t -> bool
  (** {!compact} iff {!needs_compact}; [true] when it ran. *)

  (** {2 Snapshot pinning}

      MVCC support for the serving layer ({!Kaskade_serve.Session}):
      a pin captures [(version, graph t)] and bumps a per-version
      refcount. Frozen graphs are immutable — later mutations and even
      {!compact} build {e new} graphs — so a pinned snapshot stays
      valid until the holder drops it; the refcount exists for
      observability (which versions are still being read), not for
      lifetime management (the GC handles that). Pin/unpin are not
      thread-safe on their own: serialize them against mutation under
      an external lock, as [pin] may fill the snapshot cache. *)

  val pin : t -> int * graph
  (** Pin the current version; returns [(version, snapshot)]. *)

  val unpin : t -> int -> unit
  (** Drop one pin of [version]. Raises [Invalid_argument] when that
      version has no live pin. *)

  val pin_count : t -> int
  (** Total live pins across all versions. *)

  val pinned_versions : t -> (int * int) list
  (** [(version, refcount)] pairs, ascending by version. *)
end
