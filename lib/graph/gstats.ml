open Kaskade_util

type type_summary = {
  type_name : string;
  count : int;
  deg50 : int;
  deg90 : int;
  deg95 : int;
  deg100 : int;
  is_source : bool;
}

type t = {
  n : int;
  m : int;
  sorted_by_type : int array array;  (* vtype -> ascending out-degrees *)
  sorted_global : int array;
  summaries : type_summary array;
  sources : int list;
  etype_counts : int array;
}

let nearest_rank sorted alpha =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (alpha /. 100.0 *. float_of_int n)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))
  end

(* Shared tail of [compute]/[of_shard]/[per_shard]: summaries, sources
   and the record, given the degree arrays and etype histogram. *)
let finish schema ~n ~m ~sorted_by_type ~sorted_global ~etype_counts =
  let ntypes = Schema.n_vertex_types schema in
  let summaries =
    Array.init ntypes (fun ty ->
        let sorted = sorted_by_type.(ty) in
        {
          type_name = Schema.vertex_type_name schema ty;
          count = Array.length sorted;
          deg50 = nearest_rank sorted 50.0;
          deg90 = nearest_rank sorted 90.0;
          deg95 = nearest_rank sorted 95.0;
          deg100 = nearest_rank sorted 100.0;
          is_source = Schema.edge_types_from schema ty <> [];
        })
  in
  let sources =
    List.filter (fun ty -> summaries.(ty).is_source) (List.init ntypes (fun i -> i))
  in
  { n; m; sorted_by_type; sorted_global; summaries; sources; etype_counts }

let compute ?pool g =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let schema = Graph.schema g in
  let ntypes = Schema.n_vertex_types schema in
  (* Per-type degree gather + sort is independent per vertex type, so
     the sweeps fan out over the pool; morsel results concatenate in
     type order, keeping the output identical at any width. *)
  let sorted_by_type =
    Array.concat
      (Array.to_list
         (Pool.map_morsels pool ~n:ntypes (fun ~lo ~hi ->
              Array.init (hi - lo) (fun j ->
                  let degs = Graph.out_degrees_of_type g (lo + j) in
                  Array.sort compare degs;
                  degs))))
  in
  let sorted_global = Graph.all_out_degrees g in
  Array.sort compare sorted_global;
  (* Edge-type histogram: per-morsel count arrays over edge-id ranges,
     summed on the main domain. *)
  let nets = Schema.n_edge_types schema in
  let etype_counts = Array.make nets 0 in
  Array.iter
    (fun partial -> Array.iteri (fun t c -> etype_counts.(t) <- etype_counts.(t) + c) partial)
    (Pool.map_morsels pool ~n:(Graph.n_edges g) (fun ~lo ~hi ->
         let counts = Array.make nets 0 in
         for e = lo to hi - 1 do
           let t = Graph.edge_type g e in
           counts.(t) <- counts.(t) + 1
         done;
         counts));
  finish schema ~n:(Graph.n_vertices g) ~m:(Graph.n_edges g) ~sorted_by_type ~sorted_global
    ~etype_counts

(* Statistics of a sharded graph, equal to [compute] of the graph it
   partitions: degrees are gathered per type in the same global
   candidate order (each read routed to its owner shard) and sorting
   erases any residual ordering concern, so every percentile, mean and
   histogram matches the unsharded reference exactly (property-tested
   in test_shard). *)
let of_shard ?pool sh =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let schema = Shard.schema sh in
  let ntypes = Schema.n_vertex_types schema in
  let sorted_by_type =
    Array.concat
      (Array.to_list
         (Pool.map_morsels pool ~n:ntypes (fun ~lo ~hi ->
              Array.init (hi - lo) (fun j ->
                  let degs = Shard.out_degrees_of_type sh (lo + j) in
                  Array.sort compare degs;
                  degs))))
  in
  let sorted_global = Shard.all_out_degrees sh in
  Array.sort compare sorted_global;
  let nets = Schema.n_edge_types schema in
  let etype_counts = Array.make nets 0 in
  Array.iter
    (fun partial -> Array.iteri (fun t c -> etype_counts.(t) <- etype_counts.(t) + c) partial)
    (Pool.map_morsels pool ~n:(Shard.n_edges sh) (fun ~lo ~hi ->
         let counts = Array.make nets 0 in
         for e = lo to hi - 1 do
           let t = Shard.edge_type sh e in
           counts.(t) <- counts.(t) + 1
         done;
         counts));
  finish schema ~n:(Shard.n_vertices sh) ~m:(Shard.n_edges sh) ~sorted_by_type ~sorted_global
    ~etype_counts

(* Per-shard local statistics: shard [i]'s summary counts, degree
   distributions (full degrees, cut edges included — a shard prices
   the traversal work its vertices generate, wherever the far endpoint
   lives) and out-edge type histogram. The selector sums per-shard
   size estimates over this array. *)
let per_shard ?pool:_ sh =
  let schema = Shard.schema sh in
  let ntypes = Schema.n_vertex_types schema in
  let nets = Schema.n_edge_types schema in
  Array.init (Shard.n_shards sh) (fun i ->
      let sorted_by_type =
        Array.init ntypes (fun ty ->
            let locals = Shard.locals_of_type sh ~shard:i ty in
            let degs =
              Array.map (fun l -> Shard.out_degree sh (Shard.global_id sh ~shard:i l)) locals
            in
            Array.sort compare degs;
            degs)
      in
      let sorted_global =
        Array.init (Shard.shard_size sh i) (fun l ->
            Shard.out_degree sh (Shard.global_id sh ~shard:i l))
      in
      Array.sort compare sorted_global;
      let etype_counts = Array.make nets 0 in
      for l = 0 to Shard.shard_size sh i - 1 do
        Shard.iter_out sh (Shard.global_id sh ~shard:i l) (fun ~dst:_ ~etype ~eid:_ ->
            etype_counts.(etype) <- etype_counts.(etype) + 1)
      done;
      finish schema ~n:(Shard.shard_size sh i)
        ~m:(Array.fold_left ( + ) 0 etype_counts)
        ~sorted_by_type ~sorted_global ~etype_counts)

let total_vertices t = t.n
let total_edges t = t.m
let summaries t = Array.to_list t.summaries
let summary_of_type t ty = t.summaries.(ty)

let out_degree_percentile t ~vtype ~alpha =
  if alpha <= 0.0 || alpha > 100.0 then invalid_arg "Gstats: alpha out of (0, 100]";
  nearest_rank t.sorted_by_type.(vtype) alpha

let global_out_degree_percentile t ~alpha =
  if alpha <= 0.0 || alpha > 100.0 then invalid_arg "Gstats: alpha out of (0, 100]";
  nearest_rank t.sorted_global alpha

let mean_of a =
  let n = Array.length a in
  if n = 0 then 0.0 else float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int n

let out_degree_mean t ~vtype = mean_of t.sorted_by_type.(vtype)

let size_biased_of a =
  let sum = Array.fold_left ( + ) 0 a in
  if sum = 0 then 0.0
  else begin
    let sum_sq = Array.fold_left (fun acc d -> acc +. (float_of_int d *. float_of_int d)) 0.0 a in
    sum_sq /. float_of_int sum
  end

let out_degree_size_biased t ~vtype = size_biased_of t.sorted_by_type.(vtype)
let global_out_degree_size_biased t = size_biased_of t.sorted_global

let edge_type_count t ~etype = t.etype_counts.(etype)

let out_degree_mean_for_etypes t ~vtype ~etypes =
  let n = Array.length t.sorted_by_type.(vtype) in
  if n = 0 then 0.0
  else begin
    let total = List.fold_left (fun acc et -> acc + t.etype_counts.(et)) 0 etypes in
    float_of_int total /. float_of_int n
  end
let global_out_degree_mean t = mean_of t.sorted_global

let source_types t = t.sources

let pp ppf t =
  Format.fprintf ppf "@[<v>|V|=%s |E|=%s@," (Table.fmt_int t.n) (Table.fmt_int t.m);
  Array.iter
    (fun s ->
      Format.fprintf ppf "  %-12s n=%-10s deg50=%d deg90=%d deg95=%d deg100=%d%s@," s.type_name
        (Table.fmt_int s.count) s.deg50 s.deg90 s.deg95 s.deg100
        (if s.is_source then "" else " (sink-only)"))
    t.summaries;
  Format.fprintf ppf "@]"
