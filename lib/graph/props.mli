(** Column-oriented property storage: one sparse column per property
    name, keyed by entity (vertex or edge) id. *)

type t

val create : unit -> t
val set : t -> int -> string -> Value.t -> unit
val get : t -> int -> string -> Value.t option
val get_or_null : t -> int -> string -> Value.t
val keys : t -> string list
(** Property names present, sorted. *)

val column_size : t -> string -> int
(** Number of entities carrying the property; 0 if unknown. *)

val iter_column : t -> string -> (int -> Value.t -> unit) -> unit

val remap : t -> (int -> int) -> t
(** A fresh store holding every entry re-keyed through the mapping;
    entries mapped to a negative id are dropped. The input is not
    modified. *)

val entity_props : t -> int -> (string * Value.t) list
(** All properties of one entity, sorted by name (slow path, for
    display and tests). *)
