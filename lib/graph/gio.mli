(** Plain-text serialization of property graphs (schema + vertices +
    edges + properties), so real datasets can be loaded instead of the
    synthetic generators. Line-oriented format, stable across
    versions:

    {v
    kaskade-graph 1
    vtype <name>
    etype <src-type> <name> <dst-type>
    v <id> <type> [key=T:value ...]
    e <src> <dst> <type> [key=T:value ...]
    v}

    where [T] is one of [i] (int), [f] (float), [s] (percent-encoded
    string), [b] (bool), [n] (null). Vertex ids must be dense and in
    order (they are re-checked at load). *)

val to_string : Graph.t -> string
val save : Graph.t -> string -> unit
(** [save g path]. Crash-atomic: the bytes go to [<path>.tmp], are
    fsynced, and rename into place — a crash mid-save leaves the old
    file intact, never a torn prefix. *)

exception Format_error of string * int
(** Message and 1-based line number. *)

val of_string : string -> Graph.t
val load : string -> Graph.t
(** [load path]. *)

(** {2 Per-shard persistence}

    A sharded graph saves as one file per shard,
    [<path>.shard<i>-of-<S>], each self-describing:

    {v
    kaskade-shard 1 <i> <S> <policy>
    vtype <name>
    etype <src-type> <name> <dst-type>
    v <global-id> <type> [props]
    e <src> <dst> <type> [props]
    v}

    A shard file holds exactly the vertices the shard owns (ascending
    global id) and the out-edges they source — every edge of the graph
    appears in exactly one file, and endpoints are global vids, so the
    files stitch back together without a rename pass. *)

val shard_path : string -> shard:int -> total:int -> string
(** The on-disk name of one shard's file,
    [<path>.shard<i>-of-<S>]. *)

val save_shards : Shard.t -> string -> unit
(** [save_shards sh path] writes [Shard.n_shards sh] files next to
    [path], each crash-atomically (tmp + fsync + rename, as
    {!save}). *)

val load_shards : string -> shards:int -> Shard.t
(** [load_shards path ~shards:s] reads the [s] shard files and
    rebuilds the partitioned store through [Shard.of_arrays] — raw
    topology arrays plus per-shard CSRs; no global CSR is ever
    materialized, so peak memory is shard-linear. The partition policy
    is taken from the headers (all files must agree). Edge ids are
    assigned in file order (shard 0 first); vertex ids are the global
    ids and must cover [0..n-1] exactly once across files. Raises
    {!Format_error} on malformed or inconsistent files. *)
