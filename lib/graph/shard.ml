open Kaskade_util
module Metrics = Kaskade_obs.Metrics
module Trace = Kaskade_obs.Trace

(* Sharded CSR: the single type-segmented CSR of [Graph], cut into S
   vertex partitions. Each shard owns a contiguous local vid space
   (locals are assigned in ascending global-vid order, so local
   iteration order agrees with global order within a shard) and stores
   a per-shard type-segmented CSR over those locals in both
   directions. Adjacency entries whose far endpoint lives in another
   shard do not store a vid at all: they store a negative index into
   the shard's cut-edge exchange — parallel arrays of (owner shard,
   local vid) pairs — so boundary resolution is an explicit two-hop
   read that the scan/expansion layer can route and count. *)

let m_builds = Metrics.counter ~help:"Sharded graphs built" "kaskade.shard.builds"
let m_scans = Metrics.counter ~help:"Shard-parallel typed scans" "kaskade.shard.scans"

let m_scan_rows =
  Metrics.counter ~help:"Adjacency rows produced by shard-parallel typed scans"
    "kaskade.shard.scan_rows"

let g_shards = Metrics.gauge ~help:"Shard count of the last sharded graph built" "kaskade.shard.count"

let g_cut_edges =
  Metrics.gauge ~help:"Cut (cross-shard) edges of the last sharded graph built"
    "kaskade.shard.cut_edges"

type policy = Hash | Type_range

let policy_name = function Hash -> "hash" | Type_range -> "type_range"

let policy_of_name = function
  | "hash" -> Hash
  | "type_range" -> Type_range
  | s -> invalid_arg ("Shard.policy_of_name: unknown policy " ^ s)

type shard = {
  globals : int array;  (* local vid -> global vid, strictly ascending *)
  s_by_type : int array array;  (* vtype -> local vids, ascending *)
  out_seg : int array;  (* (locals * nets + 1) typed segment starts *)
  out_dst : int array;  (* >= 0: local vid; < 0: -(exchange idx)-1 *)
  out_etype : int array;
  out_eid : int array;
  out_x_shard : int array;  (* cut-edge exchange, out direction *)
  out_x_local : int array;
  out_resolve : int array;  (* [globals] followed by the exchange
                               entries' resolved global vids: any
                               adjacency slot resolves with ONE
                               unconditional load — index arithmetic
                               selects the half, so the cut-edge test
                               never becomes a data-dependent branch
                               in the scan loop *)
  in_seg : int array;
  in_src : int array;
  in_etype : int array;
  in_eid : int array;
  in_x_shard : int array;
  in_x_local : int array;
  in_resolve : int array;
}

type t = {
  schema : Schema.t;
  policy : policy;
  s : int;
  n : int;
  m : int;
  nets : int;
  vtype : int array;  (* global, shared with the source graph when built from one *)
  owner : int array;  (* global vid -> shard *)
  local_of : int array;  (* global vid -> local vid within its owner *)
  shards : shard array;
  by_type : int array array;  (* global scan candidates, ascending — the scan order *)
  e_type : int array;
  vprops : Props.t;
  eprops : Props.t;
  cut : int;  (* out-direction adjacency entries crossing shards *)
}

(* Deterministic 63-bit avalanche (splitmix-style): the hash policy
   must scatter consecutive vids — generators assign vids in type
   blocks, so a modulo without mixing would degenerate into ranges. *)
let mix v =
  let h = v lxor (v lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  h land max_int

let assign_owners policy ~s ~n ~by_type =
  let owner = Array.make n 0 in
  (match policy with
  | Hash -> for v = 0 to n - 1 do owner.(v) <- mix v mod s done
  | Type_range ->
    (* Walk vertices in (vtype, vid) order and cut that sequence into
       S near-equal contiguous slices: shard boundaries fall between
       types where possible, so most shards hold whole type ranges. *)
    let base = n / s and extra = n mod s in
    let cap i = base + if i < extra then 1 else 0 in
    let sh = ref 0 and filled = ref 0 in
    Array.iter
      (fun vs ->
        Array.iter
          (fun v ->
            while !sh < s - 1 && !filled >= cap !sh do
              Stdlib.incr sh;
              filled := 0
            done;
            owner.(v) <- !sh;
            Stdlib.incr filled)
          vs)
      by_type);
  owner

let of_arrays ?(policy = Hash) ~shards:s schema ~vtype ~e_src ~e_dst ~e_type ~vprops ~eprops =
  if s < 1 || s > 256 then invalid_arg "Shard.of_arrays: shard count out of [1, 256]";
  let n = Array.length vtype in
  let m = Array.length e_src in
  let nets = Schema.n_edge_types schema in
  let ntypes = Schema.n_vertex_types schema in
  Trace.with_span "shard.build"
    ~attrs:
      [ ("shards", string_of_int s); ("policy", policy_name policy);
        ("n", string_of_int n); ("m", string_of_int m) ]
  @@ fun () ->
  (* Global scan candidates, identical to [Graph.of_arrays]. *)
  let counts_ty = Array.make ntypes 0 in
  Array.iter (fun ty -> counts_ty.(ty) <- counts_ty.(ty) + 1) vtype;
  let by_type = Array.map (fun c -> Array.make c 0) counts_ty in
  let cursors_ty = Array.make ntypes 0 in
  Array.iteri
    (fun v ty ->
      by_type.(ty).(cursors_ty.(ty)) <- v;
      cursors_ty.(ty) <- cursors_ty.(ty) + 1)
    vtype;
  let owner = assign_owners policy ~s ~n ~by_type in
  (* Local vids in ascending global order per shard. *)
  let shard_n = Array.make s 0 in
  let local_of = Array.make n 0 in
  for v = 0 to n - 1 do
    let o = owner.(v) in
    local_of.(v) <- shard_n.(o);
    shard_n.(o) <- shard_n.(o) + 1
  done;
  let globals = Array.init s (fun i -> Array.make shard_n.(i) 0) in
  let fill_cursor = Array.make s 0 in
  for v = 0 to n - 1 do
    let o = owner.(v) in
    globals.(o).(fill_cursor.(o)) <- v;
    fill_cursor.(o) <- fill_cursor.(o) + 1
  done;
  (* Two-key counting sort per shard, both directions — the same
     layout [Graph.of_arrays] builds, restricted to owned vertices.
     Edges are scanned in global eid order, so every (vertex, etype)
     run keeps eid-ascending order, exactly like the single CSR. *)
  let out_segs = Array.init s (fun i -> Array.make ((shard_n.(i) * nets) + 1) 0) in
  let in_segs = Array.init s (fun i -> Array.make ((shard_n.(i) * nets) + 1) 0) in
  for e = 0 to m - 1 do
    let ty = e_type.(e) in
    let so = owner.(e_src.(e)) and d_o = owner.(e_dst.(e)) in
    let os = (local_of.(e_src.(e)) * nets) + ty in
    let is_ = (local_of.(e_dst.(e)) * nets) + ty in
    out_segs.(so).(os + 1) <- out_segs.(so).(os + 1) + 1;
    in_segs.(d_o).(is_ + 1) <- in_segs.(d_o).(is_ + 1) + 1
  done;
  for i = 0 to s - 1 do
    let oseg = out_segs.(i) and iseg = in_segs.(i) in
    for k = 1 to shard_n.(i) * nets do
      oseg.(k) <- oseg.(k) + oseg.(k - 1);
      iseg.(k) <- iseg.(k) + iseg.(k - 1)
    done
  done;
  let out_dst = Array.init s (fun i -> Array.make out_segs.(i).(shard_n.(i) * nets) 0) in
  let out_etype = Array.map (fun a -> Array.make (Array.length a) 0) out_dst in
  let out_eid = Array.map (fun a -> Array.make (Array.length a) 0) out_dst in
  let in_src = Array.init s (fun i -> Array.make in_segs.(i).(shard_n.(i) * nets) 0) in
  let in_etype = Array.map (fun a -> Array.make (Array.length a) 0) in_src in
  let in_eid = Array.map (fun a -> Array.make (Array.length a) 0) in_src in
  let out_cursor =
    Array.init s (fun i -> Array.sub out_segs.(i) 0 (Stdlib.max 1 (shard_n.(i) * nets)))
  in
  let in_cursor =
    Array.init s (fun i -> Array.sub in_segs.(i) 0 (Stdlib.max 1 (shard_n.(i) * nets)))
  in
  let out_xs = Array.init s (fun _ -> Int_vec.create ()) in
  let out_xl = Array.init s (fun _ -> Int_vec.create ()) in
  let out_xg = Array.init s (fun _ -> Int_vec.create ()) in
  let in_xs = Array.init s (fun _ -> Int_vec.create ()) in
  let in_xl = Array.init s (fun _ -> Int_vec.create ()) in
  let in_xg = Array.init s (fun _ -> Int_vec.create ()) in
  let cut = ref 0 in
  for e = 0 to m - 1 do
    let src = e_src.(e) and dst = e_dst.(e) and ty = e_type.(e) in
    let so = owner.(src) and d_o = owner.(dst) in
    let oi = out_cursor.(so).((local_of.(src) * nets) + ty) in
    out_cursor.(so).((local_of.(src) * nets) + ty) <- oi + 1;
    (if d_o = so then out_dst.(so).(oi) <- local_of.(dst)
     else begin
       Stdlib.incr cut;
       let x = Int_vec.length out_xs.(so) in
       Int_vec.push out_xs.(so) d_o;
       Int_vec.push out_xl.(so) local_of.(dst);
       Int_vec.push out_xg.(so) dst;
       out_dst.(so).(oi) <- -x - 1
     end);
    out_etype.(so).(oi) <- ty;
    out_eid.(so).(oi) <- e;
    let ii = in_cursor.(d_o).((local_of.(dst) * nets) + ty) in
    in_cursor.(d_o).((local_of.(dst) * nets) + ty) <- ii + 1;
    (if so = d_o then in_src.(d_o).(ii) <- local_of.(src)
     else begin
       let x = Int_vec.length in_xs.(d_o) in
       Int_vec.push in_xs.(d_o) so;
       Int_vec.push in_xl.(d_o) local_of.(src);
       Int_vec.push in_xg.(d_o) src;
       in_src.(d_o).(ii) <- -x - 1
     end);
    in_etype.(d_o).(ii) <- ty;
    in_eid.(d_o).(ii) <- e
  done;
  let shards =
    Array.init s (fun i ->
        let s_by_type = Array.map (fun c -> Int_vec.create ~capacity:(Stdlib.max 1 c) ()) counts_ty in
        Array.iter (fun v -> Int_vec.push s_by_type.(vtype.(v)) local_of.(v)) globals.(i);
        {
          globals = globals.(i);
          s_by_type = Array.map Int_vec.to_array s_by_type;
          out_seg = out_segs.(i);
          out_dst = out_dst.(i);
          out_etype = out_etype.(i);
          out_eid = out_eid.(i);
          out_x_shard = Int_vec.to_array out_xs.(i);
          out_x_local = Int_vec.to_array out_xl.(i);
          out_resolve = Array.append globals.(i) (Int_vec.to_array out_xg.(i));
          in_seg = in_segs.(i);
          in_src = in_src.(i);
          in_etype = in_etype.(i);
          in_eid = in_eid.(i);
          in_x_shard = Int_vec.to_array in_xs.(i);
          in_x_local = Int_vec.to_array in_xl.(i);
          in_resolve = Array.append globals.(i) (Int_vec.to_array in_xg.(i));
        })
  in
  Metrics.incr m_builds;
  Metrics.set_gauge g_shards (float_of_int s);
  Metrics.set_gauge g_cut_edges (float_of_int !cut);
  Trace.add_attr "cut_edges" (string_of_int !cut);
  { schema; policy; s; n; m; nets; vtype; owner; local_of; shards; by_type; e_type; vprops;
    eprops; cut = !cut }

let of_graph ?policy ~shards g =
  (* The raw arrays are shared physically — frozen graphs are never
     mutated, and [of_arrays] only reads them. *)
  let vtype, e_src, e_dst, e_type = Graph.internal_arrays g in
  let vprops, eprops = Graph.internal_props g in
  of_arrays ?policy ~shards (Graph.schema g) ~vtype ~e_src ~e_dst ~e_type ~vprops ~eprops

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let schema t = t.schema
let policy t = t.policy
let n_shards t = t.s
let n_vertices t = t.n
let n_edges t = t.m
let cut_edges t = t.cut
let owner t v = t.owner.(v)
let local_id t v = t.local_of.(v)
let global_id t ~shard l = t.shards.(shard).globals.(l)
let shard_size t i = Array.length t.shards.(i).globals
let shard_out_edges t i = Array.length t.shards.(i).out_dst

let shard_cut_out t i = Array.length t.shards.(i).out_x_shard

let memory_words_of_shard (sh : shard) =
  Array.length sh.globals + Array.length sh.out_seg + Array.length sh.in_seg
  + (3 * Array.length sh.out_dst)
  + (3 * Array.length sh.in_src)
  + (2 * Array.length sh.out_x_shard)
  + Array.length sh.out_resolve
  + (2 * Array.length sh.in_x_shard)
  + Array.length sh.in_resolve
  + Array.fold_left (fun acc a -> acc + Array.length a) 0 sh.s_by_type

let shard_memory_words t i = memory_words_of_shard t.shards.(i)

let memory_words t =
  let per = ref 0 in
  Array.iter (fun sh -> per := !per + memory_words_of_shard sh) t.shards;
  !per

let vertex_type t v = t.vtype.(v)
let vertex_type_name t v = Schema.vertex_type_name t.schema t.vtype.(v)
let vertices_of_type t ty = t.by_type.(ty)
let vertices_of_type_name t name = t.by_type.(Schema.vertex_type_id t.schema name)
let count_of_type t ty = Array.length t.by_type.(ty)
let locals_of_type t ~shard ty = t.shards.(shard).s_by_type.(ty)
let edge_type t e = t.e_type.(e)

let vprop_or_null t v key = Props.get_or_null t.vprops v key
let eprop_or_null t e key = Props.get_or_null t.eprops e key
let vertex_props t v = Props.entity_props t.vprops v
let edge_props t e = Props.entity_props t.eprops e

(* Boundary resolution: a negative adjacency entry indexes the
   exchange. The (shard, local) pair is the routing address a
   distributed deployment would ship; for in-process reads the cached
   global vid answers in one load — cut-heavy partitions (hash) spend
   most of a scan here. *)
(* enc >= 0 indexes the [globals] half directly; enc < 0 encodes the
   exchange index x as -(x+1), i.e. (lnot enc), living at offset
   n_locals. The sign mask turns the selection into pure index
   arithmetic — one load, no branch, which is what keeps a cut-heavy
   scan at single-CSR speed (the branch predictor has nothing to lose
   on). *)
let sign_shift = Sys.int_size - 1

let resolve_out (_t : t) (sh : shard) enc =
  let m = enc asr sign_shift in
  sh.out_resolve.((enc lxor m) + (m land Array.length sh.globals))

let resolve_in (_t : t) (sh : shard) enc =
  let m = enc asr sign_shift in
  sh.in_resolve.((enc lxor m) + (m land Array.length sh.globals))

let iter_out t v f =
  let sh = t.shards.(t.owner.(v)) in
  let l = t.local_of.(v) in
  let lo = sh.out_seg.(l * t.nets) and hi = sh.out_seg.((l + 1) * t.nets) in
  for i = lo to hi - 1 do
    f ~dst:(resolve_out t sh sh.out_dst.(i)) ~etype:sh.out_etype.(i) ~eid:sh.out_eid.(i)
  done

let iter_in t v f =
  let sh = t.shards.(t.owner.(v)) in
  let l = t.local_of.(v) in
  let lo = sh.in_seg.(l * t.nets) and hi = sh.in_seg.((l + 1) * t.nets) in
  for i = lo to hi - 1 do
    f ~src:(resolve_in t sh sh.in_src.(i)) ~etype:sh.in_etype.(i) ~eid:sh.in_eid.(i)
  done

let iter_out_etype t v ~etype f =
  let sh = t.shards.(t.owner.(v)) in
  let slot = (t.local_of.(v) * t.nets) + etype in
  let lo = sh.out_seg.(slot) and hi = sh.out_seg.(slot + 1) in
  for i = lo to hi - 1 do
    f ~dst:(resolve_out t sh sh.out_dst.(i)) ~eid:sh.out_eid.(i)
  done

let iter_in_etype t v ~etype f =
  let sh = t.shards.(t.owner.(v)) in
  let slot = (t.local_of.(v) * t.nets) + etype in
  let lo = sh.in_seg.(slot) and hi = sh.in_seg.(slot + 1) in
  for i = lo to hi - 1 do
    f ~src:(resolve_in t sh sh.in_src.(i)) ~eid:sh.in_eid.(i)
  done

let out_degree t v =
  let sh = t.shards.(t.owner.(v)) in
  let l = t.local_of.(v) in
  sh.out_seg.((l + 1) * t.nets) - sh.out_seg.(l * t.nets)

let in_degree t v =
  let sh = t.shards.(t.owner.(v)) in
  let l = t.local_of.(v) in
  sh.in_seg.((l + 1) * t.nets) - sh.in_seg.(l * t.nets)

let typed_out_degree t v ~etype =
  let sh = t.shards.(t.owner.(v)) in
  let slot = (t.local_of.(v) * t.nets) + etype in
  sh.out_seg.(slot + 1) - sh.out_seg.(slot)

let typed_in_degree t v ~etype =
  let sh = t.shards.(t.owner.(v)) in
  let slot = (t.local_of.(v) * t.nets) + etype in
  sh.in_seg.(slot + 1) - sh.in_seg.(slot)

let out_degrees_of_type t ty = Array.map (fun v -> out_degree t v) t.by_type.(ty)
let all_out_degrees t = Array.init t.n (fun v -> out_degree t v)

(* Every edge appears exactly once as an out-entry of its source's
   shard; iterating shards in order and each shard's out-CSR in local
   order therefore covers the edge set once, in shard-then-local order
   (not global eid order — order-insensitive consumers only, e.g.
   union-find connectivity). *)
let iter_edges t f =
  for i = 0 to t.s - 1 do
    let sh = t.shards.(i) in
    let locals = Array.length sh.globals in
    for l = 0 to locals - 1 do
      let src = sh.globals.(l) in
      let lo = sh.out_seg.(l * t.nets) and hi = sh.out_seg.((l + 1) * t.nets) in
      for k = lo to hi - 1 do
        f ~eid:sh.out_eid.(k) ~src ~dst:(resolve_out t sh sh.out_dst.(k)) ~etype:sh.out_etype.(k)
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Shard-parallel typed scan                                           *)

(* The [bench shard] kernel: walk every (source-typed vertex, etype)
   run, shard by shard, each shard's candidates fanned out over the
   pool as morsels. Returns (rows, checksum) where the checksum folds
   the resolved global destination vids — equal across shard counts
   (and to the single-CSR walk) iff the partitioned layout preserves
   the adjacency relation. *)
let typed_scan ?pool t ~etype =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let src_ty = Schema.edge_src t.schema etype in
  let rows = ref 0 and sum = ref 0 in
  Metrics.incr m_scans;
  (* With one effective worker the fan-out machinery is pure overhead —
     and it is per shard (closure allocation, span bookkeeping), so at
     S shards a sequential scan would pay it S times. The direct
     closure-free loop keeps typed_scan at single-CSR speed on narrow
     pools (the [bench shard] smoke asserts exactly this). *)
  if Pool.effective_workers pool <= 1 && not (Trace.enabled ()) then begin
    let r = ref 0 and s = ref 0 in
    for i = 0 to t.s - 1 do
      let sh = t.shards.(i) in
      let cands = sh.s_by_type.(src_ty) in
      for c = 0 to Array.length cands - 1 do
        let slot = (cands.(c) * t.nets) + etype in
        for k = sh.out_seg.(slot) to sh.out_seg.(slot + 1) - 1 do
          Stdlib.incr r;
          s := (!s + resolve_out t sh sh.out_dst.(k)) land max_int
        done
      done
    done;
    rows := !r;
    sum := !s
  end
  else
    for i = 0 to t.s - 1 do
      let sh = t.shards.(i) in
      let cands = sh.s_by_type.(src_ty) in
      let scan_range lo hi =
        let r = ref 0 and s = ref 0 in
        for c = lo to hi - 1 do
          let l = cands.(c) in
          let slot = (l * t.nets) + etype in
          for k = sh.out_seg.(slot) to sh.out_seg.(slot + 1) - 1 do
            Stdlib.incr r;
            s := (!s + resolve_out t sh sh.out_dst.(k)) land max_int
          done
        done;
        (!r, !s)
      in
      let merge (r, s) =
        rows := !rows + r;
        sum := (!sum + s) land max_int
      in
      let body () =
        if Pool.effective_workers pool <= 1 then merge (scan_range 0 (Array.length cands))
        else
          Array.iter merge
            (Pool.map_morsels pool ~n:(Array.length cands) (fun ~lo ~hi -> scan_range lo hi))
      in
      if Trace.enabled () then
        Trace.with_span "shard.scan"
          ~attrs:[ ("shard", string_of_int i); ("candidates", string_of_int (Array.length cands)) ]
          body
      else body ()
    done;
  Metrics.incr ~by:!rows m_scan_rows;
  (!rows, !sum)

let pp_summary ppf t =
  Format.fprintf ppf "%d shard(s), policy=%s, |V|=%s |E|=%s cut=%s" t.s (policy_name t.policy)
    (Table.fmt_int t.n) (Table.fmt_int t.m) (Table.fmt_int t.cut);
  Array.iteri
    (fun i sh ->
      Format.fprintf ppf " [%d: v=%s e=%s]" i
        (Table.fmt_int (Array.length sh.globals))
        (Table.fmt_int (Array.length sh.out_dst)))
    t.shards
