(** Graph data properties maintained for view-size estimation (paper
    §V-A): per-vertex-type cardinalities and out-degree distribution
    summaries (50th/90th/95th/100th percentile out-degree). *)

type type_summary = {
  type_name : string;
  count : int;  (** Vertices of this type. *)
  deg50 : int;
  deg90 : int;
  deg95 : int;
  deg100 : int;  (** Maximum out-degree. *)
  is_source : bool;  (** Domain of at least one edge type (the set
      [T_G] in the paper's Eq. 3). *)
}

type t

val compute : ?pool:Kaskade_util.Pool.t -> Graph.t -> t
(** Sorts each type's out-degree array once; subsequent percentile
    queries are O(log n). The per-type degree sweeps and the
    edge-type histogram fan out over [pool] (default
    {!Kaskade_util.Pool.default}); the result is identical at any
    pool width. *)

val of_shard : ?pool:Kaskade_util.Pool.t -> Shard.t -> t
(** Statistics of a sharded graph, equal to {!compute} on the graph it
    partitions: every percentile, mean and histogram matches the
    unsharded reference exactly, at any shard count, policy or pool
    width. *)

val per_shard : ?pool:Kaskade_util.Pool.t -> Shard.t -> t array
(** Per-shard local statistics — shard [i]'s vertex counts, full
    out-degree distributions (cut edges included: a shard prices the
    traversal work its vertices generate wherever the far endpoint
    lives) and out-edge type histogram. The view selector sums
    per-shard size estimates over this array. *)

val total_vertices : t -> int
val total_edges : t -> int
val summaries : t -> type_summary list
val summary_of_type : t -> int -> type_summary

val out_degree_percentile : t -> vtype:int -> alpha:float -> int
(** Exact [alpha]-th percentile out-degree of the given vertex type
    (nearest rank). [alpha] in (0, 100]. *)

val global_out_degree_percentile : t -> alpha:float -> int
(** Percentile over all vertices — used for homogeneous graphs
    (Eq. 2). *)

val out_degree_mean : t -> vtype:int -> float
(** Mean out-degree of a vertex type (expected-case branching factor
    for the query cost model). *)

val global_out_degree_mean : t -> float

val out_degree_size_biased : t -> vtype:int -> float
(** Size-biased mean out-degree of a type, [E(d^2) / E(d)]: the
    expected out-degree of the vertex a uniformly random edge leads
    to — the branching factor of multi-hop exploration on skewed
    graphs (hubs are reached proportionally to their degree). 0 when
    the type has no edges. *)

val global_out_degree_size_biased : t -> float

val edge_type_count : t -> etype:int -> int
(** Edges of one edge type. *)

val out_degree_mean_for_etypes : t -> vtype:int -> etypes:int list -> float
(** Mean out-degree of a vertex type counting only the given edge
    types — the branching factor on a summarized graph before it is
    materialized. *)

val source_types : t -> int list
(** Vertex-type ids that are the domain of at least one edge type. *)

val pp : Format.formatter -> t -> unit
