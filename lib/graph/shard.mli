(** Sharded CSR: partitioned storage for the billion-edge regime the
    paper targets (§I's 3.2B-vertex provenance graph). Vertices are
    partitioned into [S] shards by a pluggable policy; each shard
    stores a type-segmented CSR — the exact layout of {!Graph} — over
    its own dense {e local} vid space, in both directions.

    {2 Vid mapping}

    Every vertex keeps its global vid for the outside world. Internally
    [owner : global -> shard] and [local_id : global -> local] map into
    the shards, and each shard's [globals] array maps back. Locals are
    assigned in ascending global order, so iterating a shard's locals
    agrees with global vid order within that shard.

    {2 Cut-edge exchange}

    An adjacency entry whose far endpoint lives in another shard is a
    {e cut edge}. Its CSR slot stores [-(x+1)] where [x] indexes the
    shard's exchange — parallel arrays of [(owner shard, local vid)]
    pairs (the routing address a distributed deployment ships) plus a
    cached resolved global vid, so in-process boundary resolution is a
    single array read and cross-shard traffic stays countable
    ({!cut_edges}).

    All iteration contracts mirror {!Graph}: per (vertex, etype) runs
    are eid-ascending, untyped iteration walks etype runs in etype
    order, and the callbacks receive {e global} vids — a sharded graph
    is observationally identical to the single CSR it was built from
    (property-tested across generators, policies and shard counts). *)

(** [Hash] scatters vids with an avalanche mix — balanced shards,
    cut-edge-heavy. [Type_range] cuts the (vtype, vid)-ordered vertex
    sequence into [S] near-equal contiguous slices — most shards hold
    whole type ranges, so typed scans touch few shards and fewer edges
    cross. *)
type policy = Hash | Type_range

val policy_name : policy -> string
val policy_of_name : string -> policy
(** Inverse of {!policy_name}; raises [Invalid_argument] on unknown
    names. *)

type t

val of_arrays :
  ?policy:policy ->
  shards:int ->
  Schema.t ->
  vtype:int array ->
  e_src:int array ->
  e_dst:int array ->
  e_type:int array ->
  vprops:Props.t ->
  eprops:Props.t ->
  t
(** Partition and build per-shard CSRs straight from raw arrays —
    O(V + E), no global CSR is ever materialized, so peak memory is
    the raw arrays plus the per-shard structures. [policy] defaults to
    [Hash]; [shards] must be in [[1, 256]]. *)

val of_graph : ?policy:policy -> shards:int -> Graph.t -> t
(** Shard an existing frozen graph. The raw topology and property
    stores are shared physically (frozen graphs are never mutated). *)

val schema : t -> Schema.t
val policy : t -> policy
val n_shards : t -> int
val n_vertices : t -> int
val n_edges : t -> int

val cut_edges : t -> int
(** Out-direction adjacency entries whose destination lives in another
    shard. *)

val owner : t -> int -> int
(** Owning shard of a global vid. *)

val local_id : t -> int -> int
(** Local vid of a global vid within its owner shard. *)

val global_id : t -> shard:int -> int -> int
(** Global vid of a shard-local vid. *)

val shard_size : t -> int -> int
(** Vertices owned by the shard. *)

val shard_out_edges : t -> int -> int
(** Out-CSR entries stored in the shard (each edge is stored exactly
    once across shards in the out direction). *)

val shard_cut_out : t -> int -> int
(** The shard's out-direction exchange size (its share of
    {!cut_edges}). *)

val shard_memory_words : t -> int -> int
(** Words held by one shard's CSR + exchange structures — the
    shard-linear-memory accounting of [bench shard]. *)

val memory_words : t -> int
(** Sum of {!shard_memory_words} over all shards. *)

(** {2 Global-vid reads (mirror {!Graph})} *)

val vertex_type : t -> int -> int
val vertex_type_name : t -> int -> string

val vertices_of_type : t -> int -> int array
(** Global candidates in ascending vid order — identical to
    [Graph.vertices_of_type] on the source graph, which is what keeps
    executor scan order (and therefore result bytes) independent of
    the shard count. Shared array, do not mutate. *)

val vertices_of_type_name : t -> string -> int array
val count_of_type : t -> int -> int

val locals_of_type : t -> shard:int -> int -> int array
(** One shard's local vids of a vertex type, ascending — the per-shard
    candidate set of a shard-dispatched scan. Shared array. *)

val edge_type : t -> int -> int
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val typed_out_degree : t -> int -> etype:int -> int
val typed_in_degree : t -> int -> etype:int -> int

val iter_out : t -> int -> (dst:int -> etype:int -> eid:int -> unit) -> unit
val iter_in : t -> int -> (src:int -> etype:int -> eid:int -> unit) -> unit
val iter_out_etype : t -> int -> etype:int -> (dst:int -> eid:int -> unit) -> unit
val iter_in_etype : t -> int -> etype:int -> (src:int -> eid:int -> unit) -> unit

val iter_edges : t -> (eid:int -> src:int -> dst:int -> etype:int -> unit) -> unit
(** Every edge exactly once (as its source shard's out-entry), in
    shard-then-local order — {e not} global eid order. For
    order-insensitive consumers (union-find connectivity, counting). *)

val out_degrees_of_type : t -> int -> int array
(** Fresh array in global candidate order, equal to
    [Graph.out_degrees_of_type]. *)

val all_out_degrees : t -> int array

val vprop_or_null : t -> int -> string -> Value.t
val eprop_or_null : t -> int -> string -> Value.t
val vertex_props : t -> int -> (string * Value.t) list
val edge_props : t -> int -> (string * Value.t) list

(** {2 Shard-parallel scan} *)

val typed_scan : ?pool:Kaskade_util.Pool.t -> t -> etype:int -> int * int
(** Walk every (source-typed vertex, [etype]) adjacency run, shard by
    shard, each shard's candidate array fanned out over the pool as
    work-stealing morsels. Returns [(rows, checksum)]: [rows] counts
    adjacency entries, [checksum] folds the resolved global
    destination vids — both are invariant across shard counts and pool
    widths, and equal to a single-CSR walk, iff the partitioned layout
    preserves the adjacency relation. The [bench shard] scaling kernel
    and smoke identity check. *)

val pp_summary : Format.formatter -> t -> unit
(** One line: shard count, policy, sizes, cut edges, per-shard
    volumes. *)
