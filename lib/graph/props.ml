type t = (string, (int, Value.t) Hashtbl.t) Hashtbl.t

let create () : t = Hashtbl.create 8

let set t id key v =
  let col =
    match Hashtbl.find_opt t key with
    | Some col -> col
    | None ->
      let col = Hashtbl.create 256 in
      Hashtbl.add t key col;
      col
  in
  Hashtbl.replace col id v

let get t id key =
  match Hashtbl.find_opt t key with Some col -> Hashtbl.find_opt col id | None -> None

let get_or_null t id key = match get t id key with Some v -> v | None -> Value.Null

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

let column_size t key = match Hashtbl.find_opt t key with Some col -> Hashtbl.length col | None -> 0

let iter_column t key f =
  match Hashtbl.find_opt t key with Some col -> Hashtbl.iter f col | None -> ()

let remap t f =
  let t' : t = Hashtbl.create (Stdlib.max 8 (Hashtbl.length t)) in
  Hashtbl.iter
    (fun key col ->
      let col' = Hashtbl.create (Stdlib.max 16 (Hashtbl.length col)) in
      Hashtbl.iter
        (fun id v ->
          let id' = f id in
          if id' >= 0 then Hashtbl.replace col' id' v)
        col;
      Hashtbl.add t' key col')
    t;
  t'

let entity_props t id =
  Hashtbl.fold
    (fun key col acc -> match Hashtbl.find_opt col id with Some v -> (key, v) :: acc | None -> acc)
    t []
  |> List.sort compare
