exception Format_error of string * int

let magic = "kaskade-graph 1"

let encode_str s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '%' || c = ' ' || c = '\t' || c = '\n' || c = '=' then
        Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let decode_str s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '%' && !i + 2 < n then begin
      Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
      i := !i + 3
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let encode_value = function
  | Value.Null -> "n:"
  | Value.Bool b -> "b:" ^ string_of_bool b
  | Value.Int n -> "i:" ^ string_of_int n
  | Value.Float f -> "f:" ^ Printf.sprintf "%h" f
  | Value.Str s -> "s:" ^ encode_str s

let decode_value line_no s =
  if String.length s < 2 || s.[1] <> ':' then raise (Format_error ("bad value " ^ s, line_no));
  let payload = String.sub s 2 (String.length s - 2) in
  match s.[0] with
  | 'n' -> Value.Null
  | 'b' -> Value.Bool (bool_of_string payload)
  | 'i' -> Value.Int (int_of_string payload)
  | 'f' -> Value.Float (float_of_string payload)
  | 's' -> Value.Str (decode_str payload)
  | c -> raise (Format_error (Printf.sprintf "unknown value tag %c" c, line_no))

let encode_props props =
  String.concat " " (List.map (fun (k, v) -> encode_str k ^ "=" ^ encode_value v) props)

let decode_props line_no fields =
  List.map
    (fun field ->
      match String.index_opt field '=' with
      | Some i ->
        ( decode_str (String.sub field 0 i),
          decode_value line_no (String.sub field (i + 1) (String.length field - i - 1)) )
      | None -> raise (Format_error ("bad property " ^ field, line_no)))
    fields

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  let schema = Graph.schema g in
  List.iter (fun t -> Buffer.add_string buf ("vtype " ^ encode_str t ^ "\n")) (Schema.vertex_types schema);
  List.iter
    (fun (d : Schema.edge_def) ->
      Buffer.add_string buf
        (Printf.sprintf "etype %s %s %s\n" (encode_str d.src) (encode_str d.name) (encode_str d.dst)))
    (Schema.edge_defs schema);
  for v = 0 to Graph.n_vertices g - 1 do
    let props = Graph.vertex_props g v in
    Buffer.add_string buf
      (Printf.sprintf "v %d %s%s\n" v
         (encode_str (Graph.vertex_type_name g v))
         (if props = [] then "" else " " ^ encode_props props))
  done;
  Graph.iter_edges g (fun ~eid ~src ~dst ~etype ->
      let props = Graph.edge_props g eid in
      Buffer.add_string buf
        (Printf.sprintf "e %d %d %s%s\n" src dst
           (encode_str (Schema.edge_type_name schema etype))
           (if props = [] then "" else " " ^ encode_props props)));
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let vtypes = ref [] and etypes = ref [] in
  let vertex_lines = ref [] and edge_lines = ref [] in
  List.iteri
    (fun idx line ->
      let line_no = idx + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else if line_no = 1 then begin
        if line <> magic then raise (Format_error ("bad magic: " ^ line, line_no))
      end
      else begin
        match String.split_on_char ' ' line with
        | "vtype" :: name :: [] -> vtypes := decode_str name :: !vtypes
        | "etype" :: src :: name :: dst :: [] ->
          etypes := (decode_str src, decode_str name, decode_str dst) :: !etypes
        | "v" :: id :: ty :: props -> vertex_lines := (line_no, int_of_string id, decode_str ty, props) :: !vertex_lines
        | "e" :: src :: dst :: ty :: props ->
          edge_lines := (line_no, int_of_string src, int_of_string dst, decode_str ty, props) :: !edge_lines
        | _ -> raise (Format_error ("unrecognized line: " ^ line, line_no))
      end)
    lines;
  let schema = Schema.define ~vertices:(List.rev !vtypes) ~edges:(List.rev !etypes) in
  let b = Builder.create schema in
  List.iter
    (fun (line_no, id, ty, props) ->
      let got = Builder.add_vertex b ~vtype:ty ~props:(decode_props line_no props) () in
      if got <> id then
        raise (Format_error (Printf.sprintf "vertex ids must be dense and ordered (expected %d, got %d)" got id, line_no)))
    (List.rev !vertex_lines);
  List.iter
    (fun (line_no, src, dst, ty, props) ->
      try ignore (Builder.add_edge b ~src ~dst ~etype:ty ~props:(decode_props line_no props) ())
      with Invalid_argument msg -> raise (Format_error (msg, line_no)))
    (List.rev !edge_lines);
  Graph.freeze b

(* Crash-atomic replace: write to a temp file, fsync, then rename into
   place — a reader (or a post-crash recovery) sees either the old file
   or the complete new one, never a torn prefix. *)
let write_atomic path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc text;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let save g path = write_atomic path (to_string g)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n |> of_string)

(* ------------------------------------------------------------------ *)
(* Per-shard persistence                                               *)

let shard_magic = "kaskade-shard 1"

let shard_path path ~shard ~total = Printf.sprintf "%s.shard%d-of-%d" path shard total

let save_shards sh path =
  let schema = Shard.schema sh in
  let s = Shard.n_shards sh in
  for i = 0 to s - 1 do
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf "%s %d %d %s\n" shard_magic i s
         (Shard.policy_name (Shard.policy sh)));
    List.iter
      (fun t -> Buffer.add_string buf ("vtype " ^ encode_str t ^ "\n"))
      (Schema.vertex_types schema);
    List.iter
      (fun (d : Schema.edge_def) ->
        Buffer.add_string buf
          (Printf.sprintf "etype %s %s %s\n" (encode_str d.src) (encode_str d.name)
             (encode_str d.dst)))
      (Schema.edge_defs schema);
    (* Owned vertices, ascending global id (= ascending local id),
       then the out-edges they source — each edge of the graph
       appears in exactly one shard file. Endpoints are global
       vids, so files are stitchable without a rename pass. *)
    for l = 0 to Shard.shard_size sh i - 1 do
      let v = Shard.global_id sh ~shard:i l in
      let props = Shard.vertex_props sh v in
      Buffer.add_string buf
        (Printf.sprintf "v %d %s%s\n" v
           (encode_str (Shard.vertex_type_name sh v))
           (if props = [] then "" else " " ^ encode_props props))
    done;
    for l = 0 to Shard.shard_size sh i - 1 do
      let v = Shard.global_id sh ~shard:i l in
      Shard.iter_out sh v (fun ~dst ~etype ~eid ->
          let props = Shard.edge_props sh eid in
          Buffer.add_string buf
            (Printf.sprintf "e %d %d %s%s\n" v dst
               (encode_str (Schema.edge_type_name schema etype))
               (if props = [] then "" else " " ^ encode_props props)))
    done;
    write_atomic (shard_path path ~shard:i ~total:s) (Buffer.contents buf)
  done

let load_shards path ~shards:s =
  if s < 1 then invalid_arg "Gio.load_shards: shards must be >= 1";
  let vtypes = ref [] and etypes = ref [] in
  let vertex_lines = ref [] and edge_lines = ref [] in
  let policy = ref None in
  let n_vertices = ref 0 and n_edges = ref 0 in
  for i = 0 to s - 1 do
    let file = shard_path path ~shard:i ~total:s in
    let ic = open_in file in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun idx line ->
        let line_no = idx + 1 in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else if line_no = 1 then begin
          match String.split_on_char ' ' line with
          | [ m1; m2; shard_idx; shard_total; pol ]
            when String.concat " " [ m1; m2 ] = shard_magic ->
            if int_of_string shard_idx <> i || int_of_string shard_total <> s then
              raise
                (Format_error
                   (Printf.sprintf "shard header mismatch in %s: %s" file line, line_no));
            let p = Shard.policy_of_name pol in
            (match !policy with
            | Some p0 when p0 <> p ->
              raise (Format_error ("shard files disagree on partition policy", line_no))
            | _ -> policy := Some p)
          | _ -> raise (Format_error ("bad shard magic: " ^ line, line_no))
        end
        else begin
          match String.split_on_char ' ' line with
          | "vtype" :: name :: [] ->
            let name = decode_str name in
            if i = 0 then vtypes := name :: !vtypes
          | "etype" :: src :: name :: dst :: [] ->
            if i = 0 then
              etypes := (decode_str src, decode_str name, decode_str dst) :: !etypes
          | "v" :: id :: ty :: props ->
            Stdlib.incr n_vertices;
            vertex_lines := (line_no, int_of_string id, decode_str ty, props) :: !vertex_lines
          | "e" :: src :: dst :: ty :: props ->
            Stdlib.incr n_edges;
            edge_lines :=
              (line_no, int_of_string src, int_of_string dst, decode_str ty, props)
              :: !edge_lines
          | _ -> raise (Format_error ("unrecognized line: " ^ line, line_no))
        end)
      lines
  done;
  let schema = Schema.define ~vertices:(List.rev !vtypes) ~edges:(List.rev !etypes) in
  let n = !n_vertices and m = !n_edges in
  (* Raw arrays only — the shard builder never materializes a global
     CSR, so peak memory is these arrays plus the per-shard
     structures. *)
  let vtype = Array.make (Stdlib.max n 1) (-1) in
  let vprops = Props.create () and eprops = Props.create () in
  List.iter
    (fun (line_no, id, ty, props) ->
      if id < 0 || id >= n then
        raise (Format_error (Printf.sprintf "vertex id %d out of range" id, line_no));
      if vtype.(id) >= 0 then
        raise (Format_error (Printf.sprintf "duplicate vertex id %d" id, line_no));
      (vtype.(id) <-
        (match Schema.vertex_type_id schema ty with
        | t -> t
        | exception Not_found -> raise (Format_error ("unknown vertex type " ^ ty, line_no))));
      List.iter (fun (k, v) -> Props.set vprops id k v) (decode_props line_no props))
    !vertex_lines;
  for v = 0 to n - 1 do
    if vtype.(v) < 0 then
      raise (Format_error (Printf.sprintf "vertex id %d missing from all shard files" v, 0))
  done;
  let e_src = Array.make (Stdlib.max m 1) 0
  and e_dst = Array.make (Stdlib.max m 1) 0
  and e_type = Array.make (Stdlib.max m 1) 0 in
  List.iteri
    (fun k (line_no, src, dst, ty, props) ->
      (* [edge_lines] is accumulated in reverse read order. *)
      let eid = m - 1 - k in
      e_src.(eid) <- src;
      e_dst.(eid) <- dst;
      (e_type.(eid) <-
        (match Schema.edge_type_id schema ty with
        | t -> t
        | exception Not_found -> raise (Format_error ("unknown edge type " ^ ty, line_no))));
      List.iter (fun (kk, v) -> Props.set eprops eid kk v) (decode_props line_no props))
    !edge_lines;
  let e_src = if m = 0 then [||] else e_src
  and e_dst = if m = 0 then [||] else e_dst
  and e_type = if m = 0 then [||] else e_type
  and vtype = if n = 0 then [||] else vtype in
  Shard.of_arrays
    ?policy:!policy ~shards:s schema ~vtype ~e_src ~e_dst ~e_type ~vprops ~eprops
