(** SLD resolution engine with negation-as-failure, cut, if-then-else,
    arithmetic, and the all-solutions builtins Kaskade's view templates
    rely on ([findall/3], [setof/3], [between/3], ...). This is the
    stand-in for SWI-Prolog in the paper's architecture (Fig. 2).

    A step budget guards against runaway recursion: every resolution
    step decrements it and {!Budget_exceeded} is raised at zero. The
    step counter is also the measurement used by the constraint-
    injection ablation (paper §IV claims constraints let the engine
    "early-stop on branches that do not yield feasible rewritings"). *)

type t

exception Budget_exceeded of int
(** Carries the configured budget. *)

exception Runtime_error of string
(** Type errors, unbound goals, bad arithmetic, unknown predicates
    called in error mode, ... *)

val create : ?step_limit:int -> ?unknown_fails:bool -> ?checkpoint:(unit -> unit) -> Db.t -> t
(** [create db] builds an engine over the clause database. Default
    step limit: 50 million. With [unknown_fails] (default [true]),
    calling an undefined predicate fails silently, as most mining
    rules expect; otherwise it raises {!Runtime_error}. [checkpoint]
    (default: no-op) is called every 4096 resolution steps — the hook
    external deadline budgets use to cancel a runaway enumeration; any
    exception it raises propagates out of the solver. *)

val db : t -> Db.t
val steps : t -> int
(** Resolution steps consumed since creation. *)

val reset_steps : t -> unit

val query :
  t -> string -> ((string * Term.t) list -> [ `Continue | `Stop ]) -> unit
(** [query t src f] parses [src] as a goal and calls [f] with the
    resolved bindings of the goal's named variables, once per
    solution, until exhaustion or [`Stop]. *)

val all_solutions : t -> string -> (string * Term.t) list list
(** Every solution's named-variable bindings, in discovery order. *)

val first_solution : t -> string -> (string * Term.t) list option

val holds : t -> string -> bool
(** True iff the goal has at least one solution. *)

val solve_term :
  t -> Term.t -> vars:(string * int) list -> ((string * Term.t) list -> [ `Continue | `Stop ]) -> unit
(** Like {!query} for a pre-parsed goal with its variable map. *)

val consult : t -> string -> unit
(** Load additional program text into the engine's database. *)
