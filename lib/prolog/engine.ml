type t = {
  db : Db.t;
  binds : Bindings.t;
  mutable steps : int;
  step_limit : int;
  unknown_fails : bool;
  checkpoint : unit -> unit;
  mutable frame_counter : int;
}

exception Budget_exceeded of int
exception Runtime_error of string

(* Control-flow signals. *)
exception Stop_search
exception Found_one
exception Cut_signal of int

let err fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let create ?(step_limit = 50_000_000) ?(unknown_fails = true) ?(checkpoint = ignore) db =
  {
    db;
    binds = Bindings.create ();
    steps = 0;
    step_limit;
    unknown_fails;
    checkpoint;
    frame_counter = 0;
  }

let db t = t.db
let steps t = t.steps
let reset_steps t = t.steps <- 0

let consult t src = Db.load t.db src

let new_frame t =
  t.frame_counter <- t.frame_counter + 1;
  t.frame_counter

let tick t =
  t.steps <- t.steps + 1;
  if t.steps > t.step_limit then raise (Budget_exceeded t.step_limit);
  (* External deadline probe, amortized: resolution steps are far
     cheaper than a clock read, so the checkpoint only runs every 4096
     steps. *)
  if t.steps land 4095 = 0 then t.checkpoint ()

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)

let rec eval_arith t term =
  match Bindings.walk t.binds term with
  | Term.Int n -> n
  | Term.Var _ -> err "arithmetic: unbound variable"
  | Term.Atom a -> err "arithmetic: atom %s is not a number" a
  | Term.Compound (op, [| a |]) -> begin
    let x = eval_arith t a in
    match op with
    | "-" -> -x
    | "+" -> x
    | "abs" -> abs x
    | _ -> err "arithmetic: unknown unary operator %s" op
  end
  | Term.Compound (op, [| a; b |]) -> begin
    let x = eval_arith t a and y = eval_arith t b in
    match op with
    | "+" -> x + y
    | "-" -> x - y
    | "*" -> x * y
    | "/" | "//" -> if y = 0 then err "arithmetic: division by zero" else x / y
    | "mod" -> if y = 0 then err "arithmetic: mod by zero" else ((x mod y) + abs y) mod abs y
    | "rem" -> if y = 0 then err "arithmetic: rem by zero" else x mod y
    | "min" -> Stdlib.min x y
    | "max" -> Stdlib.max x y
    | "^" ->
      let rec pow b e acc = if e <= 0 then acc else pow b (e - 1) (acc * b) in
      pow x y 1
    | _ -> err "arithmetic: unknown binary operator %s" op
  end
  | Term.Compound (op, _) -> err "arithmetic: unknown operator %s" op

(* ------------------------------------------------------------------ *)
(* Solver                                                              *)

(* [solve_goal t goal cut_id sk]: invoke [sk] once per solution.
   Returning normally = no (more) solutions on this branch. Callers
   set a trail mark before introducing choice points and undo after
   each alternative. *)
let rec solve_goal t goal cut_id (sk : unit -> unit) : unit =
  tick t;
  let goal = Bindings.walk t.binds goal in
  match goal with
  | Term.Var _ -> err "call: unbound goal"
  | Term.Int n -> err "call: %d is not callable" n
  | Term.Atom "true" -> sk ()
  | Term.Atom ("fail" | "false") -> ()
  | Term.Atom "!" ->
    sk ();
    raise (Cut_signal cut_id)
  | Term.Compound (",", [| a; b |]) -> solve_goal t a cut_id (fun () -> solve_goal t b cut_id sk)
  | Term.Compound (";", [| Term.Compound ("->", [| c; th |]); el |]) -> solve_ite t c th el cut_id sk
  | Term.Compound ("->", [| c; th |]) -> solve_ite t c th (Term.Atom "fail") cut_id sk
  | Term.Compound (";", [| a; b |]) ->
    let m = Bindings.mark t.binds in
    solve_goal t a cut_id sk;
    Bindings.undo_to t.binds m;
    solve_goal t b cut_id sk
  | Term.Compound ("\\+", [| g |]) | Term.Compound ("not", [| g |]) ->
    if not (provable t g) then sk ()
  | Term.Atom name -> solve_call t goal name 0 sk
  | Term.Compound (name, args) -> begin
    match builtin t name (Array.length args) with
    | Some f -> f args sk
    | None -> solve_call t goal name (Array.length args) sk
  end

and solve_ite t cond th el cut_id sk =
  let m = Bindings.mark t.binds in
  let frame = new_frame t in
  let found = ref false in
  (try solve_goal t cond frame (fun () ->
       found := true;
       raise Found_one)
   with
  | Found_one -> ()
  | Cut_signal id when id = frame -> ());
  if !found then solve_goal t th cut_id sk
  else begin
    Bindings.undo_to t.binds m;
    solve_goal t el cut_id sk
  end

and provable t g =
  let m = Bindings.mark t.binds in
  let frame = new_frame t in
  let found = ref false in
  (try solve_goal t g frame (fun () ->
       found := true;
       raise Found_one)
   with
  | Found_one -> ()
  | Cut_signal id when id = frame -> ());
  Bindings.undo_to t.binds m;
  !found

and solve_call t goal name arity sk =
  match builtin t name arity with
  | Some f -> f (Term.args_of goal) sk
  | None -> begin
    let clauses = Db.clauses t.db name arity in
    match clauses with
    | [] ->
      if t.unknown_fails then ()
      else err "unknown predicate %s/%d" name arity
    | _ ->
      let frame = new_frame t in
      (try
         List.iter
           (fun (c : Parser.clause) ->
             tick t;
             let m = Bindings.mark t.binds in
             (* Rename the clause apart with fresh variables. *)
             let base = Bindings.fresh t.binds in
             Bindings.reserve t.binds (base + c.nvars);
             let head = Term.rename ~offset:base c.head in
             if Bindings.unify t.binds head goal then begin
               let body = Term.rename ~offset:base c.body in
               solve_goal t body frame sk
             end;
             Bindings.undo_to t.binds m)
           clauses
       with Cut_signal id when id = frame -> ())
  end

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)

and builtin t name arity : (Term.t array -> (unit -> unit) -> unit) option =
  match (name, arity) with
  | "=", 2 -> Some (fun args sk -> unify_then t args.(0) args.(1) sk)
  | _ -> builtin2 t name arity

and builtin2 t name arity =
  match (name, arity) with
  | "\\=", 2 ->
    Some
      (fun args sk ->
        let m = Bindings.mark t.binds in
        let ok = Bindings.unify t.binds args.(0) args.(1) in
        Bindings.undo_to t.binds m;
        if not ok then sk ())
  | "==", 2 ->
    Some
      (fun args sk ->
        if Term.equal (Bindings.resolve t.binds args.(0)) (Bindings.resolve t.binds args.(1)) then sk ())
  | "\\==", 2 ->
    Some
      (fun args sk ->
        if not (Term.equal (Bindings.resolve t.binds args.(0)) (Bindings.resolve t.binds args.(1))) then
          sk ())
  | "@<", 2 -> Some (compare_builtin t (fun c -> c < 0))
  | "@>", 2 -> Some (compare_builtin t (fun c -> c > 0))
  | "@=<", 2 -> Some (compare_builtin t (fun c -> c <= 0))
  | "@>=", 2 -> Some (compare_builtin t (fun c -> c >= 0))
  | "compare", 3 ->
    Some
      (fun args sk ->
        let c =
          Term.compare (Bindings.resolve t.binds args.(1)) (Bindings.resolve t.binds args.(2))
        in
        let sym = if c < 0 then "<" else if c > 0 then ">" else "=" in
        unify_then t args.(0) (Term.Atom sym) sk)
  | "is", 2 ->
    Some
      (fun args sk ->
        let v = eval_arith t args.(1) in
        unify_then t args.(0) (Term.Int v) sk)
  | "<", 2 -> Some (arith_builtin t ( < ))
  | ">", 2 -> Some (arith_builtin t ( > ))
  | "=<", 2 -> Some (arith_builtin t ( <= ))
  | ">=", 2 -> Some (arith_builtin t ( >= ))
  | "=:=", 2 -> Some (arith_builtin t ( = ))
  | "=\\=", 2 -> Some (arith_builtin t ( <> ))
  | "var", 1 ->
    Some
      (fun args sk ->
        match Bindings.walk t.binds args.(0) with Term.Var _ -> sk () | _ -> ())
  | "nonvar", 1 ->
    Some
      (fun args sk ->
        match Bindings.walk t.binds args.(0) with Term.Var _ -> () | _ -> sk ())
  | "atom", 1 ->
    Some
      (fun args sk ->
        match Bindings.walk t.binds args.(0) with Term.Atom _ -> sk () | _ -> ())
  | "integer", 1 ->
    Some
      (fun args sk ->
        match Bindings.walk t.binds args.(0) with Term.Int _ -> sk () | _ -> ())
  | "atomic", 1 ->
    Some
      (fun args sk ->
        match Bindings.walk t.binds args.(0) with
        | Term.Atom _ | Term.Int _ -> sk ()
        | _ -> ())
  | "ground", 1 ->
    Some (fun args sk -> if Term.is_ground (Bindings.resolve t.binds args.(0)) then sk ())
  | "is_list", 1 ->
    Some
      (fun args sk ->
        match Term.to_list (Bindings.resolve t.binds args.(0)) with
        | Some _ -> sk ()
        | None -> ())
  | "between", 3 ->
    Some
      (fun args sk ->
        let lo = eval_arith t args.(0) and hi = eval_arith t args.(1) in
        match Bindings.walk t.binds args.(2) with
        | Term.Int x -> if x >= lo && x <= hi then sk ()
        | Term.Var _ ->
          for x = lo to hi do
            tick t;
            unify_then t args.(2) (Term.Int x) sk
          done
        | _ -> ())
  | "succ", 2 ->
    Some
      (fun args sk ->
        match (Bindings.walk t.binds args.(0), Bindings.walk t.binds args.(1)) with
        | Term.Int a, _ -> unify_then t args.(1) (Term.Int (a + 1)) sk
        | _, Term.Int b -> if b > 0 then unify_then t args.(0) (Term.Int (b - 1)) sk
        | _ -> err "succ/2: insufficiently instantiated")
  | "length", 2 ->
    Some
      (fun args sk ->
        match Term.to_list (Bindings.resolve t.binds args.(0)) with
        | Some items -> unify_then t args.(1) (Term.Int (List.length items)) sk
        | None -> begin
          match Bindings.walk t.binds args.(1) with
          | Term.Int n when n >= 0 ->
            let fresh_list =
              Term.list_of (List.init n (fun _ -> Term.Var (Bindings.fresh t.binds)))
            in
            unify_then t args.(0) fresh_list sk
          | _ -> err "length/2: insufficiently instantiated"
        end)
  | "findall", 3 ->
    Some
      (fun args sk ->
        let results = collect_all t args.(0) args.(1) in
        unify_then t args.(2) (Term.list_of results) sk)
  | "setof", 3 ->
    Some
      (fun args sk ->
        (* Simplified setof: strip ^/2 witnesses, sort + dedupe, fail
           on the empty set (ISO behaviour Kaskade's rules rely on). *)
        let rec strip g =
          match Bindings.walk t.binds g with
          | Term.Compound ("^", [| _; inner |]) -> strip inner
          | other -> other
        in
        let results = collect_all t args.(0) (strip args.(1)) in
        let sorted = List.sort_uniq Term.compare results in
        if sorted <> [] then unify_then t args.(2) (Term.list_of sorted) sk)
  | "bagof", 3 ->
    Some
      (fun args sk ->
        let results = collect_all t args.(0) args.(1) in
        if results <> [] then unify_then t args.(2) (Term.list_of results) sk)
  | "aggregate_all", 3 ->
    Some
      (fun args sk ->
        match Bindings.walk t.binds args.(0) with
        | Term.Compound ("count", [| tmpl |]) ->
          let results = collect_all t tmpl args.(1) in
          unify_then t args.(2) (Term.Int (List.length results)) sk
        | Term.Compound ("sum", [| tmpl |]) ->
          let results = collect_all t tmpl args.(1) in
          let total =
            List.fold_left
              (fun acc r -> match r with Term.Int n -> acc + n | _ -> err "aggregate_all sum: non-integer")
              0 results
          in
          unify_then t args.(2) (Term.Int total) sk
        | Term.Atom "count" ->
          let results = collect_all t (Term.Atom "x") args.(1) in
          unify_then t args.(2) (Term.Int (List.length results)) sk
        | _ -> err "aggregate_all/3: unsupported aggregate")
  | "msort", 2 ->
    Some
      (fun args sk ->
        match Term.to_list (Bindings.resolve t.binds args.(0)) with
        | Some items -> unify_then t args.(1) (Term.list_of (List.sort Term.compare items)) sk
        | None -> err "msort/2: not a list")
  | "sort", 2 ->
    Some
      (fun args sk ->
        match Term.to_list (Bindings.resolve t.binds args.(0)) with
        | Some items -> unify_then t args.(1) (Term.list_of (List.sort_uniq Term.compare items)) sk
        | None -> err "sort/2: not a list")
  | "atom_concat", 3 ->
    Some
      (fun args sk ->
        let atom_str term =
          match Bindings.walk t.binds term with
          | Term.Atom s -> Some s
          | Term.Int n -> Some (string_of_int n)
          | _ -> None
        in
        match (atom_str args.(0), atom_str args.(1)) with
        | Some a, Some b -> unify_then t args.(2) (Term.Atom (a ^ b)) sk
        | _ -> err "atom_concat/3: first two arguments must be atomic")
  | "assertz", 1 ->
    Some
      (fun args sk ->
        let term = Bindings.resolve t.binds args.(0) in
        Db.assertz t.db (Parser.clause_of_term (renumber term));
        sk ())
  | "asserta", 1 ->
    Some
      (fun args sk ->
        let term = Bindings.resolve t.binds args.(0) in
        Db.asserta t.db (Parser.clause_of_term (renumber term));
        sk ())
  | "write", 1 ->
    Some
      (fun args sk ->
        print_string (Term.to_string (Bindings.resolve t.binds args.(0)));
        sk ())
  | "nl", 0 ->
    Some
      (fun _ sk ->
        print_newline ();
        sk ())
  | "call", n when n >= 1 && n <= 8 ->
    Some
      (fun args sk ->
        let g = Bindings.walk t.binds args.(0) in
        let extra = Array.sub args 1 (n - 1) in
        let g' =
          match g with
          | Term.Atom f -> if n = 1 then g else Term.Compound (f, extra)
          | Term.Compound (f, base) -> Term.Compound (f, Array.append base extra)
          | _ -> err "call/%d: not callable" n
        in
        let frame = new_frame t in
        try solve_goal t g' frame sk with Cut_signal id when id = frame -> ())
  | _ -> None

and compare_builtin t pred args sk =
  let c = Term.compare (Bindings.resolve t.binds args.(0)) (Bindings.resolve t.binds args.(1)) in
  if pred c then sk ()

and arith_builtin t pred args sk =
  if pred (eval_arith t args.(0)) (eval_arith t args.(1)) then sk ()

and unify_then t a b sk =
  let m = Bindings.mark t.binds in
  if Bindings.unify t.binds a b then sk ();
  Bindings.undo_to t.binds m

and collect_all t template goal =
  let results = ref [] in
  let m = Bindings.mark t.binds in
  let frame = new_frame t in
  (try
     solve_goal t goal frame (fun () ->
         results := Bindings.resolve t.binds template :: !results)
   with Cut_signal id when id = frame -> ());
  Bindings.undo_to t.binds m;
  List.rev !results

(* Renumber a term's variables densely from 0 (for assert). *)
and renumber term =
  let mapping = Hashtbl.create 8 in
  let next = ref 0 in
  let rec go = function
    | (Term.Atom _ | Term.Int _) as x -> x
    | Term.Var i -> begin
      match Hashtbl.find_opt mapping i with
      | Some j -> Term.Var j
      | None ->
        let j = !next in
        incr next;
        Hashtbl.add mapping i j;
        Term.Var j
    end
    | Term.Compound (f, args) -> Term.Compound (f, Array.map go args)
  in
  go term

(* ------------------------------------------------------------------ *)
(* Public driving API                                                  *)

let solve_term t goal ~vars f =
  (* Inject the parsed goal above any variables the engine has used. *)
  let base = Bindings.fresh t.binds in
  Bindings.reserve t.binds (base + Term.max_var goal + 1);
  let goal = Term.rename ~offset:base goal in
  let vars = List.map (fun (name, id) -> (name, id + base)) vars in
  let m = Bindings.mark t.binds in
  let frame = new_frame t in
  (try
     solve_goal t goal frame (fun () ->
         let bound = List.map (fun (name, id) -> (name, Bindings.resolve t.binds (Term.Var id))) vars in
         match f bound with `Continue -> () | `Stop -> raise Stop_search)
   with
  | Stop_search -> ()
  | Cut_signal id when id = frame -> ());
  Bindings.undo_to t.binds m

let query t src f =
  let goal, vars = Parser.parse_query src in
  solve_term t goal ~vars f

let all_solutions t src =
  let out = ref [] in
  query t src (fun bindings ->
      out := bindings :: !out;
      `Continue);
  List.rev !out

let first_solution t src =
  let out = ref None in
  query t src (fun bindings ->
      out := Some bindings;
      `Stop);
  !out

let holds t src = first_solution t src <> None
