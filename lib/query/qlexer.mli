(** Tokenizer for the hybrid query language. Keywords are recognized
    case-insensitively; identifiers keep their case (vertex/edge type
    names are case-sensitive, matching Cypher). *)

type token =
  | IDENT of string
  | KEYWORD of string  (** Uppercased: SELECT, MATCH, WHERE, ... *)
  | INT_LIT of int
  | FLOAT_LIT of float
  | STRING_LIT of string
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | COMMA | DOT | COLON | STAR | DOTDOT
  | ARROW_RIGHT      (** [->] *)
  | DASH             (** [-] *)
  | LEFT_ARROW_DASH  (** [<-] *)
  | PLUS | SLASH
  | EQ | NE | LT | LE | GT | GE
  | EOF

exception Lex_error of string * int
(** Message plus the {e byte offset} of the offending character; use
    {!pos_of_offset} to turn the offset into a line/column. *)

type pos = { line : int; col : int }
(** 1-based source position. *)

val pos_of_offset : string -> int -> pos
(** [pos_of_offset src off] — the line/column of byte [off] in [src].
    Partial application amortizes the line-table scan over many
    lookups. *)

val tokenize : string -> token list
val tokenize_pos : string -> (token * pos) list
(** Like {!tokenize}, with each token's start position. The final
    [EOF] token carries the position one past the last byte. *)

val pp_token : token -> string
