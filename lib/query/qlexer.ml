type token =
  | IDENT of string
  | KEYWORD of string
  | INT_LIT of int
  | FLOAT_LIT of float
  | STRING_LIT of string
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | COMMA | DOT | COLON | STAR | DOTDOT
  | ARROW_RIGHT
  | DASH
  | LEFT_ARROW_DASH
  | PLUS | SLASH
  | EQ | NE | LT | LE | GT | GE
  | EOF

exception Lex_error of string * int

type pos = { line : int; col : int }

(* Line/column (1-based) of a byte offset. Builds the line-start table
   on each call — used on error paths and once per tokenize, where a
   single O(n) scan is in the noise. *)
let pos_of_offset src =
  let starts = ref [ 0 ] in
  String.iteri (fun i c -> if c = '\n' then starts := (i + 1) :: !starts) src;
  let arr = Array.of_list (List.rev !starts) in
  fun off ->
    let lo = ref 0 and hi = ref (Array.length arr - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if arr.(mid) <= off then lo := mid else hi := mid - 1
    done;
    { line = !lo + 1; col = off - arr.(!lo) + 1 }

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "AS"; "MATCH"; "RETURN"; "AND"; "OR"; "NOT";
    "SUM"; "AVG"; "MIN"; "MAX"; "COUNT"; "TRUE"; "FALSE"; "NULL"; "CALL"; "ORDER"; "LIMIT"; "DISTINCT" ]

let pp_token = function
  | IDENT s -> Printf.sprintf "ident(%s)" s
  | KEYWORD s -> s
  | INT_LIT n -> string_of_int n
  | FLOAT_LIT f -> string_of_float f
  | STRING_LIT s -> Printf.sprintf "'%s'" s
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COMMA -> "," | DOT -> "." | COLON -> ":" | STAR -> "*" | DOTDOT -> ".."
  | ARROW_RIGHT -> "->"
  | DASH -> "-"
  | LEFT_ARROW_DASH -> "<-"
  | PLUS -> "+" | SLASH -> "/"
  | EQ -> "=" | NE -> "<>" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | EOF -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize_pos src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  (* Offset where the token being scanned started — set at the top of
     every loop iteration, so [emit] mid-branch records the token's
     first byte, not wherever the scan has advanced to. *)
  let tok_start = ref 0 in
  let emit t = toks := (t, !tok_start) :: !toks in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    tok_start := !i;
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && peek 1 = Some '-' then begin
      (* SQL line comment *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then emit (KEYWORD upper) else emit (IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      (* A '.' followed by a digit makes a float; '..' is a range. *)
      if !i < n && src.[!i] = '.' && peek 1 <> Some '.' && (match peek 1 with Some d -> is_digit d | None -> false)
      then begin
        incr i;
        while !i < n && is_digit src.[!i] do incr i done;
        emit (FLOAT_LIT (float_of_string (String.sub src start (!i - start))))
      end
      else emit (INT_LIT (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '\'' then begin
      let start = !i in
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\'' then begin
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string literal", start));
      emit (STRING_LIT (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "->" -> emit ARROW_RIGHT; i := !i + 2
      | "<-" -> emit LEFT_ARROW_DASH; i := !i + 2
      | "<=" -> emit LE; i := !i + 2
      | ">=" -> emit GE; i := !i + 2
      | "<>" -> emit NE; i := !i + 2
      | "!=" -> emit NE; i := !i + 2
      | ".." -> emit DOTDOT; i := !i + 2
      | _ ->
        (match c with
        | '(' -> emit LPAREN
        | ')' -> emit RPAREN
        | '[' -> emit LBRACKET
        | ']' -> emit RBRACKET
        | ',' -> emit COMMA
        | '.' -> emit DOT
        | ':' -> emit COLON
        | '*' -> emit STAR
        | '-' -> emit DASH
        | '+' -> emit PLUS
        | '/' -> emit SLASH
        | '=' -> emit EQ
        | '<' -> emit LT
        | '>' -> emit GT
        | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !i)));
        incr i
    end
  done;
  tok_start := n;
  emit EOF;
  let pos = pos_of_offset src in
  List.rev_map (fun (t, off) -> (t, pos off)) !toks

let tokenize src = List.map fst (tokenize_pos src)
