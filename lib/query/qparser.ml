open Qlexer

exception Parse_error of { message : string; line : int; col : int }

type state = { mutable toks : (token * pos) list; mutable last : pos }

let peek st = match st.toks with [] -> EOF | (t, _) :: _ -> t

(* Position of the token [peek] returns — where an error about it
   should point. Past the end of the stream, the last token seen. *)
let cur_pos st = match st.toks with [] -> st.last | (_, p) :: _ -> p

let advance st =
  match st.toks with
  | [] -> ()
  | (_, p) :: rest ->
    st.last <- p;
    st.toks <- rest

let fail st fmt =
  let { line; col } = cur_pos st in
  Format.kasprintf (fun message -> raise (Parse_error { message; line; col })) fmt

let expect st tok =
  if peek st = tok then advance st
  else fail st "expected %s, found %s" (pp_token tok) (pp_token (peek st))

let expect_keyword st kw =
  match peek st with
  | KEYWORD k when k = kw -> advance st
  | t -> fail st "expected %s, found %s" kw (pp_token t)

let ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | t -> fail st "expected identifier, found %s" (pp_token t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec parse_expr_prec st = parse_or st

and parse_or st =
  let left = parse_and st in
  match peek st with
  | KEYWORD "OR" ->
    advance st;
    Ast.Binop (Ast.Or, left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_not st in
  match peek st with
  | KEYWORD "AND" ->
    advance st;
    Ast.Binop (Ast.And, left, parse_and st)
  | _ -> left

and parse_not st =
  match peek st with
  | KEYWORD "NOT" ->
    advance st;
    Ast.Unop (Ast.Not, parse_not st)
  | _ -> parse_cmp st

and parse_cmp st =
  let left = parse_add st in
  let op =
    match peek st with
    | EQ -> Some Ast.Eq
    | NE -> Some Ast.Ne
    | LT -> Some Ast.Lt
    | LE -> Some Ast.Le
    | GT -> Some Ast.Gt
    | GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance st;
    Ast.Binop (op, left, parse_add st)
  | None -> left

and parse_add st =
  let rec loop left =
    match peek st with
    | PLUS ->
      advance st;
      loop (Ast.Binop (Ast.Add, left, parse_mul st))
    | DASH ->
      advance st;
      loop (Ast.Binop (Ast.Sub, left, parse_mul st))
    | _ -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match peek st with
    | STAR ->
      advance st;
      loop (Ast.Binop (Ast.Mul, left, parse_unary st))
    | SLASH ->
      advance st;
      loop (Ast.Binop (Ast.Div, left, parse_unary st))
    | _ -> left
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | DASH ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | INT_LIT n ->
    advance st;
    Ast.Lit (Kaskade_graph.Value.Int n)
  | FLOAT_LIT f ->
    advance st;
    Ast.Lit (Kaskade_graph.Value.Float f)
  | STRING_LIT s ->
    advance st;
    Ast.Lit (Kaskade_graph.Value.Str s)
  | KEYWORD "TRUE" ->
    advance st;
    Ast.Lit (Kaskade_graph.Value.Bool true)
  | KEYWORD "FALSE" ->
    advance st;
    Ast.Lit (Kaskade_graph.Value.Bool false)
  | KEYWORD "NULL" ->
    advance st;
    Ast.Lit Kaskade_graph.Value.Null
  | KEYWORD ("SUM" | "AVG" | "MIN" | "MAX" | "COUNT") -> parse_agg st
  | LPAREN ->
    advance st;
    let e = parse_expr_prec st in
    expect st RPAREN;
    e
  | IDENT name ->
    advance st;
    if peek st = DOT then begin
      advance st;
      let prop = ident st in
      Ast.Prop (name, prop)
    end
    else Ast.Var name
  | t -> fail st "unexpected token in expression: %s" (pp_token t)

and parse_agg st =
  let kind =
    match peek st with
    | KEYWORD "SUM" -> Ast.Sum
    | KEYWORD "AVG" -> Ast.Avg
    | KEYWORD "MIN" -> Ast.Min
    | KEYWORD "MAX" -> Ast.Max
    | KEYWORD "COUNT" -> Ast.Count
    | t -> fail st "expected aggregate, found %s" (pp_token t)
  in
  advance st;
  expect st LPAREN;
  if kind = Ast.Count && peek st = STAR then begin
    advance st;
    expect st RPAREN;
    Ast.Count_star
  end
  else begin
    let e = parse_expr_prec st in
    expect st RPAREN;
    Ast.Agg (kind, e)
  end

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)

let parse_node st =
  expect st LPAREN;
  let n_var =
    match peek st with
    | IDENT v ->
      advance st;
      Some v
    | _ -> None
  in
  let n_label =
    if peek st = COLON then begin
      advance st;
      Some (ident st)
    end
    else None
  in
  expect st RPAREN;
  { Ast.n_var; n_label }

let parse_var_length st =
  (* Already past '*'. Forms: '*', '*k', '*lo..hi'. *)
  match peek st with
  | INT_LIT lo -> begin
    advance st;
    match peek st with
    | DOTDOT -> begin
      advance st;
      match peek st with
      | INT_LIT hi ->
        advance st;
        Ast.Var_length (lo, hi)
      | t -> fail st "expected upper bound after '..', found %s" (pp_token t)
    end
    | _ -> Ast.Var_length (lo, lo)
  end
  | _ -> Ast.Var_length (1, max_int)

let parse_edge_body st =
  expect st LBRACKET;
  let e_var =
    match peek st with
    | IDENT v ->
      advance st;
      Some v
    | _ -> None
  in
  let e_label =
    if peek st = COLON then begin
      advance st;
      Some (ident st)
    end
    else None
  in
  let e_len =
    if peek st = STAR then begin
      advance st;
      parse_var_length st
    end
    else Ast.Single
  in
  expect st RBRACKET;
  (e_var, e_label, e_len)

let parse_edge st =
  match peek st with
  | DASH -> begin
    advance st;
    let e_var, e_label, e_len = parse_edge_body st in
    match peek st with
    | ARROW_RIGHT ->
      advance st;
      { Ast.e_var; e_label; e_len; e_dir = Ast.Fwd }
    | DASH ->
      (* -[..]- undirected: treat as forward (our generators mirror
         edges when both directions are meaningful). *)
      advance st;
      { Ast.e_var; e_label; e_len; e_dir = Ast.Fwd }
    | t -> fail st "expected -> after edge, found %s" (pp_token t)
  end
  | LEFT_ARROW_DASH -> begin
    advance st;
    let e_var, e_label, e_len = parse_edge_body st in
    match peek st with
    | DASH ->
      advance st;
      { Ast.e_var; e_label; e_len; e_dir = Ast.Bwd }
    | t -> fail st "expected - after <-[..], found %s" (pp_token t)
  end
  | t -> fail st "expected edge pattern, found %s" (pp_token t)

let parse_pattern st =
  let start = parse_node st in
  let rec steps acc =
    match peek st with
    | DASH | LEFT_ARROW_DASH ->
      let e = parse_edge st in
      let n = parse_node st in
      steps ((e, n) :: acc)
    | _ -> List.rev acc
  in
  { Ast.p_start = start; p_steps = steps [] }

let parse_patterns st =
  let first = parse_pattern st in
  let rec more acc =
    match peek st with
    | COMMA ->
      advance st;
      more (parse_pattern st :: acc)
    | LPAREN -> more (parse_pattern st :: acc)  (* juxtaposed patterns *)
    | _ -> List.rev acc
  in
  more [ first ]

(* ------------------------------------------------------------------ *)
(* Blocks                                                              *)

let parse_select_item st =
  if peek st = STAR then begin
    advance st;
    { Ast.item_expr = Ast.Count_star; alias = Some "*" }
  end
  else begin
    let e = parse_expr_prec st in
    let alias =
      match peek st with
      | KEYWORD "AS" ->
        advance st;
        Some (ident st)
      | _ -> None
    in
    { Ast.item_expr = e; alias }
  end

let parse_items st =
  let first = parse_select_item st in
  let rec more acc =
    match peek st with
    | COMMA ->
      advance st;
      more (parse_select_item st :: acc)
    | _ -> List.rev acc
  in
  more [ first ]

let rec parse_match_block st =
  expect_keyword st "MATCH";
  let patterns = parse_patterns st in
  let m_where =
    match peek st with
    | KEYWORD "WHERE" ->
      advance st;
      Some (parse_expr_prec st)
    | _ -> None
  in
  expect_keyword st "RETURN";
  let returns = parse_items st in
  { Ast.patterns; m_where; returns }

and parse_select_block st =
  expect_keyword st "SELECT";
  let distinct =
    match peek st with
    | KEYWORD "DISTINCT" ->
      advance st;
      true
    | _ -> false
  in
  let items = parse_items st in
  expect_keyword st "FROM";
  expect st LPAREN;
  let from =
    match peek st with
    | KEYWORD "SELECT" -> Ast.From_select (parse_select_block st)
    | KEYWORD "MATCH" -> Ast.From_match (parse_match_block st)
    | t -> fail st "expected SELECT or MATCH in FROM, found %s" (pp_token t)
  in
  expect st RPAREN;
  let s_where =
    match peek st with
    | KEYWORD "WHERE" ->
      advance st;
      Some (parse_expr_prec st)
    | _ -> None
  in
  let group_by =
    match peek st with
    | KEYWORD "GROUP" ->
      advance st;
      expect_keyword st "BY";
      let first = parse_expr_prec st in
      let rec more acc =
        match peek st with
        | COMMA ->
          advance st;
          more (parse_expr_prec st :: acc)
        | _ -> List.rev acc
      in
      more [ first ]
    | _ -> []
  in
  let order_by =
    match peek st with
    | KEYWORD "ORDER" ->
      advance st;
      expect_keyword st "BY";
      let order_item () =
        let e = parse_expr_prec st in
        match peek st with
        | IDENT d when String.uppercase_ascii d = "DESC" ->
          advance st;
          (e, Ast.Desc)
        | IDENT a when String.uppercase_ascii a = "ASC" ->
          advance st;
          (e, Ast.Asc)
        | _ -> (e, Ast.Asc)
      in
      let first = order_item () in
      let rec more acc =
        match peek st with
        | COMMA ->
          advance st;
          more (order_item () :: acc)
        | _ -> List.rev acc
      in
      more [ first ]
    | _ -> []
  in
  let limit =
    match peek st with
    | KEYWORD "LIMIT" -> begin
      advance st;
      match peek st with
      | INT_LIT n ->
        advance st;
        Some n
      | t -> fail st "expected integer after LIMIT, found %s" (pp_token t)
    end
    | _ -> None
  in
  { Ast.distinct; items; from; s_where; group_by; order_by; limit }

let parse_call st =
  expect_keyword st "CALL";
  let name = ident st in
  (* Dotted procedure names: algo.labelPropagation *)
  let name =
    if peek st = DOT then begin
      advance st;
      name ^ "." ^ ident st
    end
    else name
  in
  expect st LPAREN;
  let args =
    if peek st = RPAREN then []
    else begin
      let lit () =
        match peek st with
        | INT_LIT n ->
          advance st;
          Kaskade_graph.Value.Int n
        | FLOAT_LIT f ->
          advance st;
          Kaskade_graph.Value.Float f
        | STRING_LIT s ->
          advance st;
          Kaskade_graph.Value.Str s
        | t -> fail st "expected literal argument in CALL, found %s" (pp_token t)
      in
      let first = lit () in
      let rec more acc =
        match peek st with
        | COMMA ->
          advance st;
          more (lit () :: acc)
        | _ -> List.rev acc
      in
      more [ first ]
    end
  in
  expect st RPAREN;
  { Ast.proc = name; proc_args = args }

(* Lexer errors carry a byte offset; surface them as positioned parse
   errors so callers have one exception to render. *)
let state_of src =
  match Qlexer.tokenize_pos src with
  | toks -> { toks; last = { line = 1; col = 1 } }
  | exception Qlexer.Lex_error (message, off) ->
    let { line; col } = Qlexer.pos_of_offset src off in
    raise (Parse_error { message; line; col })

let parse src =
  let st = state_of src in
  let q =
    match peek st with
    | KEYWORD "SELECT" -> Ast.Select (parse_select_block st)
    | KEYWORD "MATCH" -> Ast.Match_only (parse_match_block st)
    | KEYWORD "CALL" -> Ast.Call (parse_call st)
    | t -> fail st "query must start with SELECT, MATCH or CALL; found %s" (pp_token t)
  in
  (match peek st with
  | EOF -> ()
  | t -> fail st "trailing input after query: %s" (pp_token t));
  q

let parse_expr src =
  let st = state_of src in
  let e = parse_expr_prec st in
  (match peek st with
  | EOF -> ()
  | t -> fail st "trailing input after expression: %s" (pp_token t));
  e
