(** Recursive-descent parser for the hybrid query language. Accepts
    the paper's Listing 1/4 style: SQL SELECT blocks whose FROM source
    is either a nested SELECT or a Cypher MATCH block; patterns inside
    a MATCH may be separated by commas or juxtaposed. *)

exception Parse_error of { message : string; line : int; col : int }
(** Raised on any syntactic problem — including lexical ones, which
    are converted from [Qlexer.Lex_error] so callers render exactly
    one exception. [line]/[col] are 1-based and point at the token (or
    character) the message talks about. *)

val parse : string -> Ast.t
val parse_expr : string -> Ast.expr
(** For tests. *)
