(** Line-protocol front-end over a Unix domain socket: one systhread
    per connection, one {!Session.t} per connection (opened by the
    [OPEN] verb), all connections sharing one {!Session.manager} —
    so admission control and writer serialization are global to the
    server, not per client.

    Failure containment: every per-connection failure — protocol
    violations, query errors, [Unix.Unix_error] from a dropped peer —
    is answered as an [ERR] line or ends that connection only; the
    accept loop survives anything but {!shutdown}. *)

type t

val create :
  ?max_sessions:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?deadline_s:float ->
  ?mode:Kaskade_exec.Executor.mode ->
  socket:string ->
  Kaskade.t ->
  t
(** Bind and listen on [socket] (an existing socket file is
    unlinked). [deadline_s], when given, attaches a fresh
    [Budget.create ~deadline_s] to every [Q]/[ROWS] request — the
    per-request deadline budget of the admission controller.
    Capacity knobs are {!Session.create_manager}'s. Raises
    [Unix.Unix_error] when binding fails (bad path, permissions). *)

val run : t -> unit
(** Accept loop; blocks until a client sends [SHUTDOWN] or
    {!shutdown} is called, then waits for open connection handlers to
    drain and removes the socket file. *)

val shutdown : t -> unit
(** Ask a running {!run} to stop (thread-safe, idempotent). *)

val manager : t -> Session.manager

val serve :
  ?max_sessions:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?deadline_s:float ->
  ?mode:Kaskade_exec.Executor.mode ->
  socket:string ->
  Kaskade.t ->
  unit
(** [create] + [run]. *)
