(** Line-protocol front-end over a Unix domain socket: one systhread
    per connection, one {!Session.t} per connection (opened by the
    [OPEN] verb), all connections sharing one {!Session.manager} —
    so admission control and writer serialization are global to the
    server, not per client.

    Failure containment: every per-connection failure — protocol
    violations, query errors, [Unix.Unix_error] from a dropped peer —
    is answered as an [ERR] line or ends that connection only; the
    accept loop survives anything but {!shutdown}. *)

type t

val create :
  ?max_sessions:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?deadline_s:float ->
  ?mode:Kaskade_exec.Executor.mode ->
  ?thresholds:Kaskade_obs.Health.thresholds ->
  ?sample_every_s:float ->
  ?timeseries_capacity:int ->
  socket:string ->
  Kaskade.t ->
  t
(** Bind and listen on [socket] (an existing socket file is
    unlinked). [deadline_s], when given, attaches a fresh
    [Budget.create ~deadline_s] to every [Q]/[ROWS] request — the
    per-request deadline budget of the admission controller.
    Capacity knobs are {!Session.create_manager}'s. [thresholds]
    configures the [HEALTH] verb's judgment
    ({!Kaskade_obs.Health.default_thresholds} otherwise);
    [sample_every_s] (default 1.0, clamped to ≥ 0.01) is the
    time-series sampler interval and [timeseries_capacity] its ring
    size. Raises [Unix.Unix_error] when binding fails (bad path,
    permissions). *)

val run : t -> unit
(** Accept loop; blocks until a client sends [SHUTDOWN] or
    {!shutdown} is called, then waits for open connection handlers
    (and the time-series sampler thread) to drain and removes the
    socket file. Starts the sampler: one immediate baseline sample,
    then one per [sample_every_s]. *)

val shutdown : t -> unit
(** Ask a running {!run} to stop (thread-safe, idempotent). *)

val manager : t -> Session.manager

val timeseries : t -> Kaskade_obs.Timeseries.t
(** The server's sampler ring — what [HEALTH] reads its windowed
    qps/shed-rate from, exported for the bench drill and for dumping
    with [Timeseries.save] after {!run} returns. *)

val serve :
  ?max_sessions:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?deadline_s:float ->
  ?mode:Kaskade_exec.Executor.mode ->
  ?thresholds:Kaskade_obs.Health.thresholds ->
  ?sample_every_s:float ->
  ?timeseries_capacity:int ->
  socket:string ->
  Kaskade.t ->
  unit
(** [create] + [run]. *)
