module Graph = Kaskade_graph.Graph
module Executor = Kaskade_exec.Executor
module Row = Kaskade_exec.Row
module Qlog = Kaskade_obs.Qlog

type request =
  | Ping
  | Open
  | Query of { q : string; trace : string option }
  | Query_rows of { q : string; trace : string option }
  | Repin
  | Update of Kaskade.Update.op list
  | Stats
  | Health
  | Metrics
  | Close
  | Shutdown

let parse_op spec =
  match String.split_on_char ':' spec with
  | [ "insert-vertex"; vtype ] -> Ok (Kaskade.Update.Insert_vertex { vtype; props = [] })
  | [ "insert-edge"; src; dst; etype ] -> begin
    match (int_of_string_opt src, int_of_string_opt dst) with
    | Some src, Some dst -> Ok (Kaskade.Update.Insert_edge { src; dst; etype; props = [] })
    | _ -> Error (Printf.sprintf "bad endpoint in %S (want insert-edge:SRC:DST:ETYPE)" spec)
  end
  | [ "delete-edge"; src; dst; etype ] -> begin
    match (int_of_string_opt src, int_of_string_opt dst) with
    | Some src, Some dst -> Ok (Kaskade.Update.Delete_edge { src; dst; etype })
    | _ -> Error (Printf.sprintf "bad endpoint in %S (want delete-edge:SRC:DST:ETYPE)" spec)
  end
  | _ ->
    Error
      (Printf.sprintf
         "bad op %S (want insert-vertex:TYPE, insert-edge:SRC:DST:ETYPE, or \
          delete-edge:SRC:DST:ETYPE)"
         spec)

let parse_ops specs =
  List.fold_left
    (fun acc spec ->
      match (acc, parse_op (String.trim spec)) with
      | Error e, _ -> Error e
      | Ok ops, Ok op -> Ok (op :: ops)
      | Ok _, Error e -> Error e)
    (Ok [])
    (List.filter (fun s -> String.trim s <> "") specs)
  |> Result.map List.rev

(* An optional [trace=<16 hex>] token may lead the query text of [Q] /
   [ROWS]; it never collides with a query because queries start with a
   keyword. Malformed ids are a protocol error, not a query. *)
let split_trace rest =
  let prefix = "trace=" in
  let plen = String.length prefix in
  if String.length rest > plen && String.sub rest 0 plen = prefix then begin
    let tid, q =
      match String.index_opt rest ' ' with
      | None -> (String.sub rest plen (String.length rest - plen), "")
      | Some i ->
        ( String.sub rest plen (i - plen),
          String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) )
    in
    if Kaskade_obs.Tracectx.is_valid tid then Ok (Some tid, q)
    else Error (Printf.sprintf "bad trace id %S (want 16 hex digits)" tid)
  end
  else Ok (None, rest)

let parse_request line =
  let line = String.trim line in
  let verb, rest =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i ->
      (String.sub line 0 i, String.trim (String.sub line (i + 1) (String.length line - i - 1)))
  in
  let query mk rest =
    match split_trace rest with
    | Error e -> Error e
    | Ok (_, "") -> Error (Printf.sprintf "%s needs a query" verb)
    | Ok (trace, q) -> Ok (mk ~q ~trace)
  in
  match (verb, rest) with
  | "PING", _ -> Ok Ping
  | "OPEN", _ -> Ok Open
  | "Q", "" -> Error "Q needs a query"
  | "Q", rest -> query (fun ~q ~trace -> Query { q; trace }) rest
  | "ROWS", "" -> Error "ROWS needs a query"
  | "ROWS", rest -> query (fun ~q ~trace -> Query_rows { q; trace }) rest
  | "REPIN", _ -> Ok Repin
  | "UPDATE", "" -> Error "UPDATE needs at least one op"
  | "UPDATE", specs -> Result.map (fun ops -> Update ops) (parse_ops (String.split_on_char ';' specs))
  | "STATS", _ -> Ok Stats
  | "HEALTH", _ -> Ok Health
  | "METRICS", _ -> Ok Metrics
  | "CLOSE", _ -> Ok Close
  | "SHUTDOWN", _ -> Ok Shutdown
  | "", _ -> Error "empty request"
  | v, _ -> Error (Printf.sprintf "unknown verb %S" v)

let render_result g = function
  | Executor.Table tbl -> Format.asprintf "%a" (Row.pp g) tbl
  | Executor.Affected n -> Printf.sprintf "affected %d" n

let checksum s = Qlog.hash_query s

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let ok kvs =
  "OK " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ one_line v) kvs)

let err_msg ~label msg = Printf.sprintf "ERR label=%s msg=%s" label (one_line msg)
let err e = err_msg ~label:(Kaskade.Error.label e) (Kaskade.Error.to_string e)

let fields line =
  let status, rest =
    if String.length line >= 3 && String.sub line 0 3 = "OK " then
      (Some "ok", String.sub line 3 (String.length line - 3))
    else if line = "OK" then (Some "ok", "")
    else if String.length line >= 4 && String.sub line 0 4 = "ERR " then
      (Some "err", String.sub line 4 (String.length line - 4))
    else (None, "")
  in
  match status with
  | None -> None
  | Some st ->
    (* Keys and values are space-free except [msg], which runs to end
       of line — so plain left-to-right splitting is unambiguous. *)
    let rec go acc rest =
      if String.trim rest = "" then List.rev acc
      else
        match String.index_opt rest '=' with
        | None -> List.rev acc
        | Some eq ->
          let key = String.sub rest 0 eq in
          let after = String.sub rest (eq + 1) (String.length rest - eq - 1) in
          if key = "msg" then List.rev ((key, after) :: acc)
          else begin
            match String.index_opt after ' ' with
            | None -> List.rev ((key, after) :: acc)
            | Some sp ->
              go
                ((key, String.sub after 0 sp) :: acc)
                (String.sub after (sp + 1) (String.length after - sp - 1))
          end
    in
    Some (("_status", st) :: go [] rest)
