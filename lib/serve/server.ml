module Budget = Kaskade_util.Budget
module Error = Kaskade.Error

let log_src = Logs.Src.create "kaskade.serve" ~doc:"Kaskade serving layer"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  mgr : Session.manager;
  fd : Unix.file_descr;
  socket_path : string;
  deadline_s : float option;
  stop : bool Atomic.t;
  mutable handlers : Thread.t list;  (* guarded by [hlock] *)
  hlock : Mutex.t;
}

let manager t = t.mgr

let create ?max_sessions ?max_inflight ?max_queue ?deadline_s ?mode ~socket ks =
  (* A dropped peer must be an [EPIPE] error on write, not a fatal
     SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists socket then Unix.unlink socket;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 64;
  {
    mgr = Session.create_manager ?max_sessions ?max_inflight ?max_queue ?mode ks;
    fd;
    socket_path = socket;
    deadline_s;
    stop = Atomic.make false;
    handlers = [];
    hlock = Mutex.create ();
  }

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    (* [shutdown] (not just [close]) on the listening socket: closing
       an fd another thread is blocked in [accept] on does NOT wake
       that thread on Linux — the accept loop would sleep forever and
       [run] would never join. Shutting the socket down first fails
       the blocked [accept] with EINVAL, which the loop reads as the
       stop signal. *)
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let respond oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let stats_line mgr =
  let pinned =
    Session.pinned_versions mgr
    |> List.map (fun (v, n) -> Printf.sprintf "%d:%d" v n)
    |> String.concat ","
  in
  Wire.ok
    [
      ("sessions", string_of_int (Session.sessions_active mgr));
      ("queue_depth", string_of_int (Session.queue_depth mgr));
      ("shed", string_of_int (Session.shed_total mgr));
      ("version", string_of_int (Kaskade.version (Session.kaskade mgr)));
      ("pinned", pinned);
    ]

(* One request -> one response (plus row lines for [ROWS]). Returns
   [`Continue], [`Close] (connection done) or [`Shutdown]. *)
let handle_request t ~session oc line =
  match Wire.parse_request line with
  | Result.Error reason ->
    respond oc (Wire.err_msg ~label:"proto" reason);
    `Continue
  | Result.Ok req -> begin
    let with_session f =
      match !session with
      | Some s -> f s
      | None -> respond oc (Wire.err_msg ~label:"proto" "no session: send OPEN first")
    in
    let query ~stream qtext =
      with_session (fun s ->
          let budget = Option.map (fun d -> Budget.create ~deadline_s:d ()) t.deadline_s in
          let t0 = Kaskade_obs.Trace.now_s () in
          match
            Result.bind (Kaskade.parse_result qtext) (fun q -> Session.run ?budget s q)
          with
          | Result.Error e -> respond oc (Wire.err e)
          | Result.Ok result ->
            let rendered = Wire.render_result (Session.pinned_graph s) result in
            if stream then
              String.split_on_char '\n' rendered
              |> List.iter (fun row -> if row <> "" then respond oc ("| " ^ row));
            let rows =
              match result with
              | Kaskade_exec.Executor.Table tbl -> Kaskade_exec.Row.n_rows tbl
              | Kaskade_exec.Executor.Affected n -> n
            in
            respond oc
              (Wire.ok
                 [
                   ("rows", string_of_int rows);
                   ("checksum", Wire.checksum rendered);
                   ("version", string_of_int (Session.pinned_version s));
                   ("seconds", Printf.sprintf "%.6f" (Kaskade_obs.Trace.now_s () -. t0));
                 ]))
    in
    match req with
    | Wire.Ping ->
      respond oc (Wire.ok [ ("pong", "1") ]);
      `Continue
    | Wire.Open -> begin
      match !session with
      | Some s ->
        respond oc (Wire.err_msg ~label:"proto" ("session " ^ Session.id s ^ " already open"));
        `Continue
      | None -> begin
        match Session.open_ t.mgr with
        | Result.Error e ->
          respond oc (Wire.err e);
          `Continue
        | Result.Ok s ->
          session := Some s;
          respond oc
            (Wire.ok
               [
                 ("session", Session.id s);
                 ("version", string_of_int (Session.pinned_version s));
               ]);
          `Continue
      end
    end
    | Wire.Query q ->
      query ~stream:false q;
      `Continue
    | Wire.Query_rows q ->
      query ~stream:true q;
      `Continue
    | Wire.Repin ->
      with_session (fun s ->
          respond oc (Wire.ok [ ("version", string_of_int (Session.repin s)) ]));
      `Continue
    | Wire.Update ops -> begin
      match Session.submit t.mgr ops with
      | Result.Error e ->
        respond oc (Wire.err e);
        `Continue
      | Result.Ok (applied, version) ->
        respond oc
          (Wire.ok
             [ ("applied", string_of_int applied); ("version", string_of_int version) ]);
        `Continue
    end
    | Wire.Stats ->
      respond oc (stats_line t.mgr);
      `Continue
    | Wire.Close -> begin
      match !session with
      | Some s ->
        Session.close s;
        session := None;
        respond oc (Wire.ok [ ("closed", Session.id s) ]);
        `Continue
      | None ->
        respond oc (Wire.err_msg ~label:"proto" "no session open");
        `Continue
    end
    | Wire.Shutdown ->
      respond oc (Wire.ok [ ("bye", "1") ]);
      `Shutdown
  end

let handle_connection t conn =
  let ic = Unix.in_channel_of_descr conn in
  let oc = Unix.out_channel_of_descr conn in
  let session = ref None in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
    | line -> begin
      match handle_request t ~session oc line with
      | `Continue -> loop ()
      | `Close -> ()
      | `Shutdown -> shutdown t
      | exception (Sys_error _ | Unix.Unix_error _) ->
        (* Peer vanished mid-response; drop the connection, keep the
           server. *)
        ()
    end
  in
  loop ();
  (match !session with Some s -> Session.close s | None -> ());
  try Unix.close conn with Unix.Unix_error _ -> ()

let run t =
  let rec accept_loop () =
    if not (Atomic.get t.stop) then begin
      match Unix.accept t.fd with
      | conn, _ ->
        let th = Thread.create (fun () -> handle_connection t conn) () in
        Mutex.lock t.hlock;
        t.handlers <- th :: t.handlers;
        Mutex.unlock t.hlock;
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* [shutdown] closed the listening fd under us. *)
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error (e, _, _) ->
        Log.warn (fun k -> k "accept failed: %s" (Unix.error_message e));
        if not (Atomic.get t.stop) then accept_loop ()
    end
  in
  accept_loop ();
  shutdown t;
  (* Drain live handlers so sessions close and the socket file can be
     removed without racing a response in flight. *)
  let handlers =
    Mutex.lock t.hlock;
    let hs = t.handlers in
    Mutex.unlock t.hlock;
    hs
  in
  List.iter (fun th -> try Thread.join th with _ -> ()) handlers;
  if Sys.file_exists t.socket_path then try Unix.unlink t.socket_path with Unix.Unix_error _ -> ()

let serve ?max_sessions ?max_inflight ?max_queue ?deadline_s ?mode ~socket ks =
  run (create ?max_sessions ?max_inflight ?max_queue ?deadline_s ?mode ~socket ks)
