module Budget = Kaskade_util.Budget
module Error = Kaskade.Error
module Metrics = Kaskade_obs.Metrics
module Timeseries = Kaskade_obs.Timeseries
module Health = Kaskade_obs.Health
module Tracectx = Kaskade_obs.Tracectx
module Store = Kaskade_store.Store

let log_src = Logs.Src.create "kaskade.serve" ~doc:"Kaskade serving layer"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_serve_requests =
  Metrics.counter ~help:"Wire requests parsed by the server (any verb)" "kaskade.serve_requests"

type t = {
  mgr : Session.manager;
  fd : Unix.file_descr;
  socket_path : string;
  deadline_s : float option;
  thresholds : Health.thresholds;
  ts : Timeseries.t;
  sample_every_s : float;
  stop : bool Atomic.t;
  mutable sampler : Thread.t option;  (* guarded by [hlock] *)
  mutable handlers : Thread.t list;  (* guarded by [hlock] *)
  hlock : Mutex.t;
}

let manager t = t.mgr
let timeseries t = t.ts

let create ?max_sessions ?max_inflight ?max_queue ?deadline_s ?mode ?thresholds
    ?(sample_every_s = 1.0) ?timeseries_capacity ~socket ks =
  (* A dropped peer must be an [EPIPE] error on write, not a fatal
     SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists socket then Unix.unlink socket;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 64;
  {
    mgr = Session.create_manager ?max_sessions ?max_inflight ?max_queue ?mode ks;
    fd;
    socket_path = socket;
    deadline_s;
    thresholds = Option.value ~default:Health.default_thresholds thresholds;
    ts = Timeseries.create ?capacity:timeseries_capacity ();
    sample_every_s = Stdlib.max 0.01 sample_every_s;
    stop = Atomic.make false;
    sampler = None;
    handlers = [];
    hlock = Mutex.create ();
  }

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    (* [shutdown] (not just [close]) on the listening socket: closing
       an fd another thread is blocked in [accept] on does NOT wake
       that thread on Linux — the accept loop would sleep forever and
       [run] would never join. Shutting the socket down first fails
       the blocked [accept] with EINVAL, which the loop reads as the
       stop signal. *)
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let respond oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let counter_value name =
  Option.value ~default:0 (List.assoc_opt name (Metrics.counters_list ()))

let gauge_level name =
  Option.value ~default:0.0 (List.assoc_opt name (Metrics.gauges_list ()))

(* Store gauges ride along in STATS so operators can judge WAL growth
   without file-system access; an in-memory facade reports nothing
   extra. [wal_appends]/[wal_bytes] come from the metrics registry
   (the WAL's own counters), the sequence numbers from the store. *)
let store_fields mgr =
  match Kaskade.store (Session.kaskade mgr) with
  | None -> []
  | Some st ->
    [
      ("wal_appends", string_of_int (counter_value "kaskade.wal_appends"));
      ("wal_bytes", string_of_int (counter_value "kaskade.wal_bytes"));
      ("wal_seq", string_of_int (Store.last_seq st));
      ("snapshot_seq", string_of_int (Store.snapshot_seq st));
    ]

let stats_line mgr =
  let pinned =
    Session.pinned_versions mgr
    |> List.map (fun (v, n) -> Printf.sprintf "%d:%d" v n)
    |> String.concat ","
  in
  Wire.ok
    ([
       ("sessions", string_of_int (Session.sessions_active mgr));
       ("queue_depth", string_of_int (Session.queue_depth mgr));
       ("shed", string_of_int (Session.shed_total mgr));
       ("version", string_of_int (Kaskade.version (Session.kaskade mgr)));
       ("pinned", pinned);
     ]
    @ store_fields mgr)

(* The health sample is assembled from facade accessors plus the
   latest time-series point (for the windowed shed rate — cumulative
   sheds would keep a recovered server degraded forever). *)
let health_sample t =
  let ks = Session.kaskade t.mgr in
  let wal_lag =
    match Kaskade.store ks with
    | None -> 0
    | Some st -> Store.last_seq st - Stdlib.max 0 (Store.snapshot_seq st)
  in
  let breakers_open =
    Kaskade.breaker_states ks
    |> List.filter (fun (_, b) -> Kaskade_util.Breaker.state b = Kaskade_util.Breaker.Open)
    |> List.length
  in
  let shed_rate =
    match Timeseries.latest t.ts with
    | Some p when p.Timeseries.interval_s > 0.0 ->
      let sheds = Timeseries.counter_delta p "kaskade.shed_requests" in
      let reqs = Timeseries.counter_delta p "kaskade.serve_requests" in
      if sheds = 0 then 0.0 else float_of_int sheds /. float_of_int (Stdlib.max 1 reqs)
    | _ ->
      let sheds = Session.shed_total t.mgr in
      if sheds = 0 then 0.0
      else float_of_int sheds /. float_of_int (Stdlib.max 1 (counter_value "kaskade.serve_requests"))
  in
  {
    Health.empty_sample with
    Health.wal_lag;
    stale_views = int_of_float (gauge_level "kaskade.stale_views");
    breakers_open;
    sessions = Session.sessions_active t.mgr;
    queue_depth = Session.queue_depth t.mgr;
    shed_rate;
    plan_cache_hits = counter_value "kaskade.plan_cache_hits";
    plan_cache_misses = counter_value "kaskade.plan_cache_misses";
  }

let health_line t =
  let sample = health_sample t in
  let status = Health.evaluate ~thresholds:t.thresholds sample in
  let windowed =
    match Timeseries.latest t.ts with
    | Some p when p.Timeseries.interval_s > 0.0 ->
      let p95 =
        match Timeseries.histogram_point p "kaskade.queue_wait_seconds" with
        | Some (_, _, p95, _) -> p95
        | None -> 0.0
      in
      [
        ("qps", Printf.sprintf "%.1f" (Timeseries.rate p "kaskade.serve_requests"));
        ("queue_wait_p95", Printf.sprintf "%.6f" p95);
      ]
    | _ -> []
  in
  Wire.ok
    ([
       ("status", Health.label status);
       ("reasons", String.concat "," (Health.reasons status));
       ("wal_lag", string_of_int sample.Health.wal_lag);
       ("stale_views", string_of_int sample.Health.stale_views);
       ("breakers_open", string_of_int sample.Health.breakers_open);
       ("sessions", string_of_int sample.Health.sessions);
       ("queue_depth", string_of_int sample.Health.queue_depth);
       ("shed_rate", Printf.sprintf "%.3f" sample.Health.shed_rate);
     ]
    @ windowed)

(* One request -> one response (plus row lines for [ROWS]). Returns
   [`Continue], [`Close] (connection done) or [`Shutdown]. *)
let handle_request t ~session oc line =
  match Wire.parse_request line with
  | Result.Error reason ->
    respond oc (Wire.err_msg ~label:"proto" reason);
    `Continue
  | Result.Ok req -> begin
    Metrics.incr m_serve_requests;
    let with_session f =
      match !session with
      | Some s -> f s
      | None -> respond oc (Wire.err_msg ~label:"proto" "no session: send OPEN first")
    in
    let query ~stream ~trace qtext =
      with_session (fun s ->
          let budget = Option.map (fun d -> Budget.create ~deadline_s:d ()) t.deadline_s in
          let t0 = Kaskade_obs.Trace.now_s () in
          (* The effective id — client-supplied or minted here — is
             installed for the whole run (so the qlog record and any
             collected spans carry it) and echoed in the response. *)
          let trace =
            match trace with Some id -> id | None -> Tracectx.mint ~session:(Session.id s) ()
          in
          match
            Result.bind (Kaskade.parse_result qtext) (fun q -> Session.run ?budget ~trace s q)
          with
          | Result.Error e -> respond oc (Wire.err e)
          | Result.Ok result ->
            let rendered = Wire.render_result (Session.pinned_graph s) result in
            if stream then
              String.split_on_char '\n' rendered
              |> List.iter (fun row -> if row <> "" then respond oc ("| " ^ row));
            let rows =
              match result with
              | Kaskade_exec.Executor.Table tbl -> Kaskade_exec.Row.n_rows tbl
              | Kaskade_exec.Executor.Affected n -> n
            in
            respond oc
              (Wire.ok
                 [
                   ("rows", string_of_int rows);
                   ("checksum", Wire.checksum rendered);
                   ("version", string_of_int (Session.pinned_version s));
                   ("seconds", Printf.sprintf "%.6f" (Kaskade_obs.Trace.now_s () -. t0));
                   ("trace", trace);
                 ]))
    in
    match req with
    | Wire.Ping ->
      respond oc (Wire.ok [ ("pong", "1") ]);
      `Continue
    | Wire.Open -> begin
      match !session with
      | Some s ->
        respond oc (Wire.err_msg ~label:"proto" ("session " ^ Session.id s ^ " already open"));
        `Continue
      | None -> begin
        match Session.open_ t.mgr with
        | Result.Error e ->
          respond oc (Wire.err e);
          `Continue
        | Result.Ok s ->
          session := Some s;
          respond oc
            (Wire.ok
               [
                 ("session", Session.id s);
                 ("version", string_of_int (Session.pinned_version s));
               ]);
          `Continue
      end
    end
    | Wire.Query { q; trace } ->
      query ~stream:false ~trace q;
      `Continue
    | Wire.Query_rows { q; trace } ->
      query ~stream:true ~trace q;
      `Continue
    | Wire.Repin ->
      with_session (fun s ->
          respond oc (Wire.ok [ ("version", string_of_int (Session.repin s)) ]));
      `Continue
    | Wire.Update ops -> begin
      match Session.submit t.mgr ops with
      | Result.Error e ->
        respond oc (Wire.err e);
        `Continue
      | Result.Ok (applied, version) ->
        respond oc
          (Wire.ok
             [ ("applied", string_of_int applied); ("version", string_of_int version) ]);
        `Continue
    end
    | Wire.Stats ->
      respond oc (stats_line t.mgr);
      `Continue
    | Wire.Health ->
      respond oc (health_line t);
      `Continue
    | Wire.Metrics ->
      (* Prometheus exposition streams like ROWS: "| "-prefixed lines,
         then a terminal OK — so every existing client reads it. *)
      let lines =
        Metrics.to_prometheus () |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      List.iter (fun l -> respond oc ("| " ^ l)) lines;
      respond oc (Wire.ok [ ("lines", string_of_int (List.length lines)) ]);
      `Continue
    | Wire.Close -> begin
      match !session with
      | Some s ->
        Session.close s;
        session := None;
        respond oc (Wire.ok [ ("closed", Session.id s) ]);
        `Continue
      | None ->
        respond oc (Wire.err_msg ~label:"proto" "no session open");
        `Continue
    end
    | Wire.Shutdown ->
      respond oc (Wire.ok [ ("bye", "1") ]);
      `Shutdown
  end

let handle_connection t conn =
  let ic = Unix.in_channel_of_descr conn in
  let oc = Unix.out_channel_of_descr conn in
  let session = ref None in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
    | line -> begin
      match handle_request t ~session oc line with
      | `Continue -> loop ()
      | `Close -> ()
      | `Shutdown -> shutdown t
      | exception (Sys_error _ | Unix.Unix_error _) ->
        (* Peer vanished mid-response; drop the connection, keep the
           server. *)
        ()
    end
  in
  loop ();
  (match !session with Some s -> Session.close s | None -> ());
  try Unix.close conn with Unix.Unix_error _ -> ()

(* The sampler thread drives the time-series ring for the server's
   lifetime. An immediate first sample sets the delta baseline; the
   loop then wakes every [sample_every_s] (sliced into short sleeps so
   shutdown is prompt). *)
let start_sampler t =
  ignore (Timeseries.sample t.ts);
  let th =
    Thread.create
      (fun () ->
        let rec loop () =
          if not (Atomic.get t.stop) then begin
            let slept = ref 0.0 in
            while (not (Atomic.get t.stop)) && !slept < t.sample_every_s do
              let step = Stdlib.min 0.05 (t.sample_every_s -. !slept) in
              Unix.sleepf step;
              slept := !slept +. step
            done;
            if not (Atomic.get t.stop) then begin
              ignore (Timeseries.sample t.ts);
              loop ()
            end
          end
        in
        loop ())
      ()
  in
  Mutex.lock t.hlock;
  t.sampler <- Some th;
  Mutex.unlock t.hlock

let run t =
  start_sampler t;
  let rec accept_loop () =
    if not (Atomic.get t.stop) then begin
      match Unix.accept t.fd with
      | conn, _ ->
        let th = Thread.create (fun () -> handle_connection t conn) () in
        Mutex.lock t.hlock;
        t.handlers <- th :: t.handlers;
        Mutex.unlock t.hlock;
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* [shutdown] closed the listening fd under us. *)
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error (e, _, _) ->
        Log.warn (fun k -> k "accept failed: %s" (Unix.error_message e));
        if not (Atomic.get t.stop) then accept_loop ()
    end
  in
  accept_loop ();
  shutdown t;
  (* Drain live handlers so sessions close and the socket file can be
     removed without racing a response in flight. *)
  let handlers =
    Mutex.lock t.hlock;
    let hs = t.handlers in
    Mutex.unlock t.hlock;
    hs
  in
  List.iter (fun th -> try Thread.join th with _ -> ()) handlers;
  let sampler =
    Mutex.lock t.hlock;
    let s = t.sampler in
    Mutex.unlock t.hlock;
    s
  in
  (match sampler with Some th -> (try Thread.join th with _ -> ()) | None -> ());
  if Sys.file_exists t.socket_path then try Unix.unlink t.socket_path with Unix.Unix_error _ -> ()

let serve ?max_sessions ?max_inflight ?max_queue ?deadline_s ?mode ?thresholds ?sample_every_s
    ?timeseries_capacity ~socket ks =
  run
    (create ?max_sessions ?max_inflight ?max_queue ?deadline_s ?mode ?thresholds ?sample_every_s
       ?timeseries_capacity ~socket ks)
