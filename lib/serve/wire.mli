(** The serving layer's newline-delimited line protocol: requests and
    responses are single lines (except [ROWS], whose row lines are
    prefixed with ["| "] and end with the usual [OK] line), so any
    [nc -U]-grade client works.

    {b Requests} (first token is the verb, case-sensitive):
    - [PING] — liveness probe.
    - [OPEN] — open a session pinned to the current version.
    - [Q [trace=<id>] <query>] — evaluate on the session's pinned
      snapshot; the response carries the row count and an FNV-1a
      checksum of the canonically rendered result, so clients verify
      byte-identity without streaming rows. The optional leading
      [trace=] token (16 hex digits, {!Kaskade_obs.Tracectx}) names
      the request's trace id; the server mints one when absent and
      echoes the effective id as [trace=] in the response — the same
      id its qlog record and spans carry.
    - [ROWS [trace=<id>] <query>] — like [Q] but streams the rendered
      rows first.
    - [REPIN] — re-pin to the current version.
    - [UPDATE <op>[;<op>...]] — writer batch; ops use the CLI's
      syntax: [insert-vertex:TYPE], [insert-edge:SRC:DST:ETYPE],
      [delete-edge:SRC:DST:ETYPE].
    - [STATS] — manager counters plus store gauges (WAL growth,
      last snapshot).
    - [HEALTH] — one-line health verdict: [status=ok|degraded|unhealthy]
      with comma-joined reasons, plus windowed qps/p95 from the
      server's time-series sampler.
    - [METRICS] — the whole metrics registry in Prometheus text
      exposition format, streamed as ["| "]-prefixed lines before the
      terminal [OK lines=N].
    - [CLOSE] — close the session (the connection stays up).
    - [SHUTDOWN] — stop the server after this response.

    {b Responses}: [OK key=value ...] or
    [ERR label=<Error.label> msg=<text>] — [msg] is the last key and
    runs to end of line (newlines squashed to spaces). *)

type request =
  | Ping
  | Open
  | Query of { q : string; trace : string option }  (** [Q] — checksum only. *)
  | Query_rows of { q : string; trace : string option }  (** [ROWS] — stream rendered rows. *)
  | Repin
  | Update of Kaskade.Update.op list
  | Stats
  | Health
  | Metrics
  | Close
  | Shutdown

val parse_request : string -> (request, string) result
(** Parse one request line (already newline-stripped). [Error] is a
    human-readable reason for the [ERR] response. *)

val parse_op : string -> (Kaskade.Update.op, string) result
(** One [insert-vertex:...] / [insert-edge:...] / [delete-edge:...]
    spec (the CLI's [--random]-free update syntax). *)

val render_result : Kaskade_graph.Graph.t -> Kaskade_exec.Executor.result -> string
(** Canonical text rendering: [Row.pp] output for tables (the same
    bytes the CLI prints), ["affected N"] for procedure results. The
    byte-identity contract of the concurrency drill is over this
    string. *)

val checksum : string -> string
(** FNV-1a (64-bit, 16 hex digits) — [Qlog.hash_query] on the rendered
    result. *)

val ok : (string * string) list -> string
(** [OK k=v ...] response line. *)

val err : Kaskade.Error.t -> string
(** [ERR label=... msg=...] response line for a typed error. *)

val err_msg : label:string -> string -> string
(** [ERR] with an ad-hoc label (e.g. protocol violations, label
    ["proto"]). *)

val fields : string -> (string * string) list option
(** Parse a response line back into fields: [Some kvs] for [OK]/[ERR]
    lines ([("_status", "ok" | "err")] is prepended), [None] for row
    lines. Values run to the next [ key=] boundary except [msg], which
    runs to end of line. *)
