type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let is_terminal line =
  match Wire.fields line with Some _ -> true | None -> false

let request t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  let rec read acc =
    let line = input_line t.ic in
    if is_terminal line then List.rev (line :: acc) else read (line :: acc)
  in
  read []

let status = function
  | [] -> invalid_arg "Client.status: empty response"
  | lines -> (
    match Wire.fields (List.nth lines (List.length lines - 1)) with
    | Some kvs -> kvs
    | None -> invalid_arg "Client.status: response has no terminal OK/ERR line")

let close t =
  (try close_out_noerr t.oc with _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
