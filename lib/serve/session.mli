(** The serving layer's session/MVCC core: many concurrent readers,
    each pinned to an immutable snapshot version, one serialized
    writer, and admission control in front of execution.

    {b Model.} A {!manager} wraps one [Kaskade.t]. Readers call
    {!open_} to get a {!t} (a session) pinned to the overlay version
    current at open time ([Graph.Overlay.pin]); every {!run} on that
    session evaluates against exactly that frozen snapshot — a
    concurrent writer's batches ({!submit}) are invisible until the
    reader {!repin}s or opens a new session, and a reader can never
    observe a half-applied batch because pin capture and batch apply
    are serialized under the manager lock. Writers are serialized the
    same way: {!submit} applies a whole batch through
    [Kaskade.Update.batch] while holding the lock, so the overlay
    version advances batch-atomically.

    {b Threading.} Sessions may be driven from separate domains or
    systhreads. Execution itself runs {e outside} the manager lock on
    the immutable pinned graph; only pin/unpin/apply/admission
    bookkeeping hold it. One session must not be used from two threads
    at once (its executor context is private but stateful).

    {b Admission.} At most [max_inflight] queries execute at once;
    up to [max_queue] more wait. A request arriving with the queue
    full is shed with [Error.Overloaded] (counted by the
    [kaskade.shed_requests] metric); a queued request whose budget
    deadline expires before a slot frees fails with
    [Error.Budget_exhausted]. {!open_} sheds with [Overloaded] when
    [max_sessions] sessions are already live. *)

type manager
type t

val create_manager :
  ?max_sessions:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?mode:Kaskade_exec.Executor.mode ->
  Kaskade.t ->
  manager
(** Defaults: [max_sessions] 64, [max_inflight] 4, [max_queue] 16,
    [mode] [Distinct_endpoints] (the mode every session's executor
    context uses — match the serial reference when checking
    byte-identity). *)

val open_ : manager -> (t, Kaskade.Error.t) result
(** Pin the current overlay version and register a new session.
    [Error (Overloaded { resource = "sessions"; _ })] at capacity. *)

val id : t -> string
(** Unique per manager, ["s1"], ["s2"], ... — the qlog [session]
    field. *)

val pinned_version : t -> int
(** The overlay version this session reads. Raises [Invalid_argument]
    on a closed session. *)

val pinned_graph : t -> Kaskade_graph.Graph.t
(** The immutable snapshot this session reads. Raises
    [Invalid_argument] on a closed session. *)

val run :
  ?budget:Kaskade_util.Budget.t ->
  ?trace:string ->
  t ->
  Kaskade_query.Ast.t ->
  (Kaskade_exec.Executor.result, Kaskade.Error.t) result
(** Evaluate against the pinned snapshot, through admission control.
    Appends one [Kaskade_obs.Qlog] record per call (successes and
    governed failures alike) carrying this session's {!id} and the
    admission-queue wait. [budget]'s deadline covers queue wait plus
    execution. [trace] installs a {!Kaskade_obs.Tracectx} for the
    whole call (admission included), so the qlog record — and any
    spans, if a collection is in flight — carry the request's id. *)

val repin : t -> int
(** Drop the session's pin and re-pin the {e current} overlay version
    (the read-your-writes hook after {!submit}); returns the new
    version. No-op when the version did not move. *)

val close : t -> unit
(** Unpin and unregister. Idempotent. *)

val submit : manager -> Kaskade.Update.op list -> (int * int, Kaskade.Error.t) result
(** Apply one writer batch through the facade (catalog staleness,
    plan-cache invalidation, and compaction all happen), serialized
    against every other batch and against pin capture. Returns
    [(effective_ops, new_version)]. Schema violations surface as
    [Error (Plan _)]; existing pins are untouched (their snapshots
    are immutable). *)

val sessions_active : manager -> int

val queue_depth : manager -> int
(** Requests currently waiting for an execution slot. *)

val shed_total : manager -> int
(** Requests this manager shed with [Overloaded] since creation. *)

val pinned_versions : manager -> (int * int) list
(** [(version, readers)] for every version still pinned, ascending. *)

val kaskade : manager -> Kaskade.t
(** The wrapped facade ([Session]-external reads like STATS need
    it). Mutate only through {!submit}. *)
