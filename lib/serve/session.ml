module Graph = Kaskade_graph.Graph
module Executor = Kaskade_exec.Executor
module Row = Kaskade_exec.Row
module Budget = Kaskade_util.Budget
module Metrics = Kaskade_obs.Metrics
module Qlog = Kaskade_obs.Qlog
module Trace = Kaskade_obs.Trace
module Error = Kaskade.Error

let g_sessions_active =
  Metrics.gauge ~help:"Live serving-layer sessions" "kaskade.sessions_active"

let g_queue_depth =
  Metrics.gauge ~help:"Requests waiting for an execution slot" "kaskade.queue_depth"

let m_shed_requests =
  Metrics.counter ~help:"Requests shed by admission control (Overloaded)"
    "kaskade.shed_requests"

let h_queue_wait_seconds =
  Metrics.histogram ~help:"Admission-queue wait before execution (seconds)"
    "kaskade.queue_wait_seconds"

type manager = {
  ks : Kaskade.t;
  lock : Mutex.t;
  cond : Condition.t;  (* signaled whenever an execution slot frees *)
  max_sessions : int;
  max_inflight : int;
  max_queue : int;
  mode : Executor.mode;
  mutable inflight : int;
  mutable queued : int;
  mutable shed : int;
  mutable next_id : int;
  sessions : (string, t) Hashtbl.t;
}

and t = {
  sid : string;
  mgr : manager;
  mutable pinned : (int * Graph.t) option;  (* None after close *)
  mutable ctx : Executor.ctx option;  (* lazy, rebuilt on repin *)
}

let create_manager ?(max_sessions = 64) ?(max_inflight = 4) ?(max_queue = 16)
    ?(mode = Executor.Distinct_endpoints) ks =
  {
    ks;
    lock = Mutex.create ();
    cond = Condition.create ();
    max_sessions = Stdlib.max 1 max_sessions;
    max_inflight = Stdlib.max 1 max_inflight;
    max_queue = Stdlib.max 0 max_queue;
    mode;
    inflight = 0;
    queued = 0;
    shed = 0;
    next_id = 0;
    sessions = Hashtbl.create 16;
  }

let locked mgr f =
  Mutex.lock mgr.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock mgr.lock) f

let kaskade mgr = mgr.ks
let sessions_active mgr = locked mgr (fun () -> Hashtbl.length mgr.sessions)
let queue_depth mgr = locked mgr (fun () -> mgr.queued)
let shed_total mgr = locked mgr (fun () -> mgr.shed)
let pinned_versions mgr = locked mgr (fun () -> Graph.Overlay.pinned_versions (Kaskade.overlay mgr.ks))

let shed_unlocked mgr ~resource ~capacity ~in_use =
  mgr.shed <- mgr.shed + 1;
  Metrics.incr m_shed_requests;
  Error.Overloaded { resource; capacity; in_use }

let open_ mgr =
  locked mgr (fun () ->
      let live = Hashtbl.length mgr.sessions in
      if live >= mgr.max_sessions then
        Result.Error (shed_unlocked mgr ~resource:"sessions" ~capacity:mgr.max_sessions ~in_use:live)
      else begin
        mgr.next_id <- mgr.next_id + 1;
        let sid = Printf.sprintf "s%d" mgr.next_id in
        let pinned = Graph.Overlay.pin (Kaskade.overlay mgr.ks) in
        let s = { sid; mgr; pinned = Some pinned; ctx = None } in
        Hashtbl.add mgr.sessions sid s;
        Metrics.set_gauge g_sessions_active (float_of_int (Hashtbl.length mgr.sessions));
        Ok s
      end)

let id s = s.sid

let pinned s =
  match s.pinned with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Session: %s is closed" s.sid)

let pinned_version s = fst (pinned s)
let pinned_graph s = snd (pinned s)

(* Per-session executor context over the pinned frozen graph. No pool:
   a session context never spawns worker domains, so any number of
   sessions can execute concurrently without sharing mutable state.
   [planner:true] matches the facade's contexts, keeping session
   results byte-identical to a serial [Kaskade.query ~target:Base] at
   the same version. *)
let ctx s =
  match s.ctx with
  | Some c -> c
  | None ->
    let c = Executor.create ~mode:s.mgr.mode ~planner:true (pinned_graph s) in
    s.ctx <- Some c;
    c

let close s =
  locked s.mgr (fun () ->
      match s.pinned with
      | None -> ()
      | Some (v, _) ->
        Graph.Overlay.unpin (Kaskade.overlay s.mgr.ks) v;
        s.pinned <- None;
        s.ctx <- None;
        Hashtbl.remove s.mgr.sessions s.sid;
        Metrics.set_gauge g_sessions_active (float_of_int (Hashtbl.length s.mgr.sessions)))

let repin s =
  locked s.mgr (fun () ->
      let v, _ = pinned s in
      let overlay = Kaskade.overlay s.mgr.ks in
      if Graph.Overlay.version overlay = v then v
      else begin
        Graph.Overlay.unpin overlay v;
        let pinned = Graph.Overlay.pin overlay in
        s.pinned <- Some pinned;
        s.ctx <- None;
        fst pinned
      end)

(* Admission: take an execution slot, waiting in the bounded queue if
   none is free. OCaml's [Condition] has no timed wait, so budgeted
   (deadline-carrying) waits poll with a short sleep instead — the
   unlock/sleep/relock loop costs microseconds per round and lets the
   deadline fire while queued. Returns the queue wait in seconds. *)
let admit ?budget mgr =
  let deadline = Option.bind budget Budget.deadline_s in
  Mutex.lock mgr.lock;
  if mgr.inflight < mgr.max_inflight then begin
    mgr.inflight <- mgr.inflight + 1;
    Mutex.unlock mgr.lock;
    Result.Ok 0.0
  end
  else if mgr.queued >= mgr.max_queue then begin
    let e = shed_unlocked mgr ~resource:"queue" ~capacity:mgr.max_queue ~in_use:mgr.queued in
    Mutex.unlock mgr.lock;
    Result.Error e
  end
  else begin
    let t0 = Trace.now_s () in
    mgr.queued <- mgr.queued + 1;
    Metrics.set_gauge g_queue_depth (float_of_int mgr.queued);
    let leave_queue () =
      mgr.queued <- mgr.queued - 1;
      Metrics.set_gauge g_queue_depth (float_of_int mgr.queued)
    in
    let rec wait () =
      if mgr.inflight < mgr.max_inflight then begin
        leave_queue ();
        mgr.inflight <- mgr.inflight + 1;
        Mutex.unlock mgr.lock;
        let dt = Trace.now_s () -. t0 in
        Metrics.observe h_queue_wait_seconds dt;
        Result.Ok dt
      end
      else
        match deadline with
        | Some d when Budget.elapsed_s (Option.get budget) >= d ->
          leave_queue ();
          Mutex.unlock mgr.lock;
          Result.Error
            (Error.Budget_exhausted
               {
                 stage = Budget.Execute;
                 detail =
                   Printf.sprintf "deadline of %.3fs expired after %.3fs in admission queue" d
                     (Trace.now_s () -. t0);
               })
        | Some _ ->
          Mutex.unlock mgr.lock;
          Unix.sleepf 0.0005;
          Mutex.lock mgr.lock;
          wait ()
        | None ->
          Condition.wait mgr.cond mgr.lock;
          wait ()
    in
    wait ()
  end

let release mgr =
  Mutex.lock mgr.lock;
  mgr.inflight <- mgr.inflight - 1;
  Condition.broadcast mgr.cond;
  Mutex.unlock mgr.lock

let run_admitted ?budget s q =
  match admit ?budget s.mgr with
  | Result.Error e ->
    ignore
      (Qlog.add
         ?budget:(Option.map Budget.describe budget)
         ~session:s.sid ~query:(Kaskade_query.Pretty.to_string q)
         ~outcome:(Qlog.Failed (Error.label e)) ~rows:0 ~seconds:0.0 ());
    Result.Error e
  | Result.Ok queue_wait_s ->
    Fun.protect
      ~finally:(fun () -> release s.mgr)
      (fun () ->
        let t0 = Trace.now_s () in
        let log outcome rows =
          ignore
            (Qlog.add
               ?budget:(Option.map Budget.describe budget)
               ~session:s.sid ~queue_wait_s
               ~query:(Kaskade_query.Pretty.to_string q)
               ~outcome ~rows ~seconds:(Trace.now_s () -. t0) ())
        in
        match Error.guard (fun () -> Executor.run ?budget (ctx s) q) with
        | Result.Ok result ->
          let rows =
            match result with Executor.Table tbl -> Row.n_rows tbl | Executor.Affected n -> n
          in
          log Qlog.Fallback rows;
          Result.Ok result
        | Result.Error e ->
          log (Qlog.Failed (Error.label e)) 0;
          Result.Error e)

(* The request's trace context wraps admission *and* execution, so a
   shed is attributable to the same id the client supplied — the qlog
   record picks the ambient id up via [Qlog.add]'s default. *)
let run ?budget ?trace s q =
  match trace with
  | None -> run_admitted ?budget s q
  | Some id -> Kaskade_obs.Tracectx.with_ctx id (fun () -> run_admitted ?budget s q)

let submit mgr ops =
  locked mgr (fun () ->
      Error.guard (fun () ->
          (* [Update.batch] discards the effective-op list; every
             effective op bumps the overlay version (compaction does
             not), so the version delta is the effective count. *)
          let v0 = Graph.Overlay.version (Kaskade.overlay mgr.ks) in
          Kaskade.Update.batch ops mgr.ks;
          let v1 = Graph.Overlay.version (Kaskade.overlay mgr.ks) in
          (v1 - v0, v1)))
