(** Minimal blocking client for the {!Wire} line protocol — what the
    bench harness, smoke tests, and [kaskade_cli serve --probe] use to
    drive a server in-process or across processes. *)

type t

val connect : string -> t
(** Connect to a server's Unix socket. Raises [Unix.Unix_error] when
    nothing listens there. *)

val request : t -> string -> string list
(** Send one request line and read the full response: any ["| "] row
    lines followed by the terminating [OK]/[ERR] line (always last).
    Raises [End_of_file] if the server hangs up mid-response. *)

val status : string list -> (string * string) list
(** Parsed fields of a response's terminating line ({!Wire.fields});
    [("_status", "ok" | "err")] first. Raises [Invalid_argument] on an
    empty response. *)

val close : t -> unit
