type state = Closed | Open | Half_open

type t = {
  threshold : int;
  cooldown_s : float;
  mutable st : state;
  mutable failures : int;  (* consecutive *)
  mutable opened_at_ns : int64;  (* meaningful while Open *)
}

let create ?(threshold = 3) ?(cooldown_s = 30.0) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  { threshold; cooldown_s; st = Closed; failures = 0; opened_at_ns = 0L }

(* Open decays to Half_open once the cooldown elapses — evaluated on
   read so no timer is needed. *)
let state t =
  (match t.st with
  | Open when Mclock.elapsed_s ~since:t.opened_at_ns >= t.cooldown_s -> t.st <- Half_open
  | _ -> ());
  t.st

let allow t = state t <> Open

let record_success t =
  t.failures <- 0;
  t.st <- Closed

let record_failure t =
  t.failures <- t.failures + 1;
  let opens = match state t with Half_open -> true | Closed -> t.failures >= t.threshold | Open -> false in
  if opens then begin
    t.st <- Open;
    t.opened_at_ns <- Mclock.now_ns ()
  end;
  opens

let failures t = t.failures
let threshold t = t.threshold

let describe t =
  match state t with
  | Closed -> "closed"
  | Half_open -> "half-open (probe pending)"
  | Open ->
    Printf.sprintf "open (%d failures, %.1fs cooldown left)" t.failures
      (Stdlib.max 0.0 (t.cooldown_s -. Mclock.elapsed_s ~since:t.opened_at_ns))
