(** Monotonic clock readings for durations and deadlines.

    [Unix.gettimeofday] is wall time: NTP steps and manual clock
    changes can make two readings go backwards, which turns measured
    durations negative and fires (or never fires) deadlines. Every
    duration in this repository — trace spans, profile operator
    timings, bench medians, budget deadlines — therefore reads this
    clock ([CLOCK_MONOTONIC] via the [bechamel.monotonic_clock] stub);
    wall time remains only where a timestamp must be meaningful to a
    human (report headers).

    Readings are meaningful only relative to each other within one
    process. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. *)

val now_s : unit -> float
(** {!now_ns} in seconds. *)

val elapsed_s : since:int64 -> float
(** Seconds elapsed since the {!now_ns} reading [since]. *)
