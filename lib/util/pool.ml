type t = {
  width : int;
  oversub : bool;  (* spawn up to [width] workers even past the core count *)
}

let clamp lo hi v = Stdlib.max lo (Stdlib.min hi v)

let default_domains () =
  match Sys.getenv_opt "KASKADE_DOMAINS" with
  | Some s -> begin
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> clamp 1 64 n
    | _ -> clamp 1 8 (Domain.recommended_domain_count ())
  end
  | None -> clamp 1 8 (Domain.recommended_domain_count ())

let create ?domains ?(oversubscribe = false) () =
  let width = match domains with Some d -> clamp 1 64 d | None -> default_domains () in
  { width; oversub = oversubscribe }

let domains t = t.width

(* Spawning more domains than the machine has cores makes fan-outs
   slower, not faster: the workers time-share one core and every minor
   collection synchronizes all of them. Morsel fan-outs therefore cap
   their workers at the hardware parallelism unless the pool was
   created with [oversubscribe] — the escape hatch tests and
   [KASKADE_DOMAINS] use to force real worker domains anywhere. *)
let hardware_parallelism = lazy (clamp 1 64 (Domain.recommended_domain_count ()))

let effective_workers t =
  if t.oversub then t.width else Stdlib.min t.width (Lazy.force hardware_parallelism)

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    (* An explicit KASKADE_DOMAINS is a statement of intent: honor the
       requested width even on a smaller machine. *)
    let p = create ~oversubscribe:(Sys.getenv_opt "KASKADE_DOMAINS" <> None) () in
    default_pool := Some p;
    p

(* Telemetry hooks (observability layer): per-task wall times are
   captured inside the executing domain but replayed to the hook from
   the calling domain after the join, so the hooks themselves never run
   concurrently. *)
let chunk_observer :
    (chunk:int -> chunks:int -> lo:int -> hi:int -> start_s:float -> stop_s:float -> unit) option
    ref =
  ref None

let set_chunk_observer obs = chunk_observer := obs

let morsel_observer :
    (worker:int ->
    workers:int ->
    morsel:int ->
    morsels:int ->
    lo:int ->
    hi:int ->
    start_s:float ->
    stop_s:float ->
    unit)
    option
    ref =
  ref None

let set_morsel_observer obs = morsel_observer := obs

(* --------------------------------------------------------------- *)
(* Work-stealing morsel fan-out.

   [\[0, n)] is cut into fixed-size morsels; workers (the caller plus
   spawned domains) claim them with an atomic fetch-and-add cursor, so
   a worker stuck on a heavy morsel simply stops claiming while the
   others drain the rest — no balanced partition to get wrong up
   front. Results land in a per-morsel slot array, so the caller reads
   them back in morsel-index order no matter which worker computed
   what: output order is that of a sequential run at any width and any
   grain. *)

let default_grain ~n ~workers =
  if workers <= 1 then n else clamp 1 n (Stdlib.max 256 (n / (workers * 8)))

let map_morsels t ?grain ~n f =
  if n <= 0 then [||]
  else begin
    let workers_cap = effective_workers t in
    let grain =
      match grain with
      | Some g when g > 0 -> Stdlib.min g n
      | Some g -> invalid_arg (Printf.sprintf "Pool.map_morsels: grain %d <= 0" g)
      | None -> default_grain ~n ~workers:workers_cap
    in
    let morsels = (n + grain - 1) / grain in
    let bounds i = (i * grain, Stdlib.min n ((i + 1) * grain)) in
    let w = Stdlib.min workers_cap morsels in
    if w <= 1 then
      (* Sequential: morsel order is index order, so the first raise is
         the sequentially-first one — same error as any parallel run. *)
      Array.init morsels (fun i ->
          let lo, hi = bounds i in
          f ~lo ~hi)
    else begin
      let observer = !morsel_observer in
      let results = Array.make morsels (Error Exit) in
      let times = match observer with None -> [||] | Some _ -> Array.make (2 * morsels) 0.0 in
      let who = match observer with None -> [||] | Some _ -> Array.make morsels 0 in
      let cursor = Atomic.make 0 in
      (* Every morsel is claimed and executed exactly once, failures
         included: a raising morsel is recorded and the worker moves
         on, so all domains drain the cursor and join cleanly. After
         the join the lowest-indexed error wins — and because each
         morsel scans its range in index order, that is exactly the
         exception a sequential run would have raised first. (A shared
         exhausted budget makes the remaining morsels fail fast at
         their first checkpoint, so nothing runs long past it.) *)
      let run_worker wid =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add cursor 1 in
          if i >= morsels then continue := false
          else begin
            let lo, hi = bounds i in
            match observer with
            | None -> results.(i) <- (try Ok (f ~lo ~hi) with e -> Error e)
            | Some _ ->
              who.(i) <- wid;
              times.(2 * i) <- Mclock.now_s ();
              results.(i) <- (try Ok (f ~lo ~hi) with e -> Error e);
              times.((2 * i) + 1) <- Mclock.now_s ()
          end
        done
      in
      let spawned = Array.init (w - 1) (fun j -> Domain.spawn (fun () -> run_worker (j + 1))) in
      run_worker 0;
      Array.iter Domain.join spawned;
      (match observer with
      | Some report ->
        for i = 0 to morsels - 1 do
          if times.((2 * i) + 1) > 0.0 then begin
            let lo, hi = bounds i in
            report ~worker:who.(i) ~workers:w ~morsel:i ~morsels ~lo ~hi ~start_s:times.(2 * i)
              ~stop_s:times.((2 * i) + 1)
          end
        done
      | None -> ());
      Array.iter (function Error e -> raise e | Ok _ -> ()) results;
      Array.map (function Ok v -> v | Error _ -> assert false) results
    end
  end

(* --------------------------------------------------------------- *)
(* Legacy fixed-partition fan-out: one balanced chunk per domain,
   spawned unconditionally. Kept for callers that need the exact
   partition (and for tests of it); new code should use
   [map_morsels]. *)

let map_chunks t ~n f =
  if n <= 0 then [||]
  else begin
    let k = Stdlib.min t.width n in
    (* Balanced partition: the first [rem] chunks get one extra index. *)
    let q = n / k and rem = n mod k in
    let bound i = (i * q) + Stdlib.min i rem in
    if k = 1 then [| f ~lo:0 ~hi:n |]
    else begin
      let observer = !chunk_observer in
      let times = match observer with None -> [||] | Some _ -> Array.make (2 * k) 0.0 in
      let f =
        match observer with
        | None -> f
        | Some _ ->
          fun ~lo ~hi ->
            (* Recover the chunk index from [lo]: bounds are strictly
               increasing, so the chunk is the largest i with
               bound i <= lo. Writes to [times] are per-chunk disjoint. *)
            let rec chunk_of i = if i + 1 >= k || bound (i + 1) > lo then i else chunk_of (i + 1) in
            let c = chunk_of 0 in
            times.(2 * c) <- Mclock.now_s ();
            let r = f ~lo ~hi in
            times.((2 * c) + 1) <- Mclock.now_s ();
            r
      in
      (* Chunks 1..k-1 run on spawned domains, chunk 0 on the caller.
         Every domain is joined before returning — even on failure —
         and the earliest chunk's exception wins, so error behavior is
         as deterministic as the results. *)
      let workers =
        Array.init (k - 1) (fun j ->
            let i = j + 1 in
            let lo = bound i and hi = bound (i + 1) in
            Domain.spawn (fun () -> f ~lo ~hi))
      in
      let results = Array.make k (Error Exit) in
      results.(0) <- (try Ok (f ~lo:0 ~hi:(bound 1)) with e -> Error e);
      for i = 1 to k - 1 do
        results.(i) <- (try Ok (Domain.join workers.(i - 1)) with e -> Error e)
      done;
      (match observer with
      | Some report ->
        for c = 0 to k - 1 do
          (* A chunk that raised may have no stop stamp; skip it. *)
          if times.((2 * c) + 1) > 0.0 then
            report ~chunk:c ~chunks:k ~lo:(bound c) ~hi:(bound (c + 1)) ~start_s:times.(2 * c)
              ~stop_s:times.((2 * c) + 1)
        done
      | None -> ());
      Array.iter (function Error e -> raise e | Ok _ -> ()) results;
      Array.map (function Ok v -> v | Error _ -> assert false) results
    end
  end
