type t = { width : int }

let clamp lo hi v = Stdlib.max lo (Stdlib.min hi v)

let default_domains () =
  match Sys.getenv_opt "KASKADE_DOMAINS" with
  | Some s -> begin
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> clamp 1 64 n
    | _ -> clamp 1 8 (Domain.recommended_domain_count ())
  end
  | None -> clamp 1 8 (Domain.recommended_domain_count ())

let create ?domains () =
  let width = match domains with Some d -> clamp 1 64 d | None -> default_domains () in
  { width }

let domains t = t.width

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create () in
    default_pool := Some p;
    p

(* Telemetry hook (observability layer): per-chunk wall times are
   captured inside the executing domain but replayed to the hook from
   the calling domain after the join, so the hook itself never runs
   concurrently. *)
let chunk_observer :
    (chunk:int -> chunks:int -> lo:int -> hi:int -> start_s:float -> stop_s:float -> unit) option
    ref =
  ref None

let set_chunk_observer obs = chunk_observer := obs

let map_chunks t ~n f =
  if n <= 0 then [||]
  else begin
    let k = Stdlib.min t.width n in
    (* Balanced partition: the first [rem] chunks get one extra index. *)
    let q = n / k and rem = n mod k in
    let bound i = (i * q) + Stdlib.min i rem in
    if k = 1 then [| f ~lo:0 ~hi:n |]
    else begin
      let observer = !chunk_observer in
      let times = match observer with None -> [||] | Some _ -> Array.make (2 * k) 0.0 in
      let f =
        match observer with
        | None -> f
        | Some _ ->
          fun ~lo ~hi ->
            (* Recover the chunk index from [lo]: bounds are strictly
               increasing, so the chunk is the largest i with
               bound i <= lo. Writes to [times] are per-chunk disjoint. *)
            let rec chunk_of i = if i + 1 >= k || bound (i + 1) > lo then i else chunk_of (i + 1) in
            let c = chunk_of 0 in
            times.(2 * c) <- Mclock.now_s ();
            let r = f ~lo ~hi in
            times.((2 * c) + 1) <- Mclock.now_s ();
            r
      in
      (* Chunks 1..k-1 run on spawned domains, chunk 0 on the caller.
         Every domain is joined before returning — even on failure —
         and the earliest chunk's exception wins, so error behavior is
         as deterministic as the results. *)
      let workers =
        Array.init (k - 1) (fun j ->
            let i = j + 1 in
            let lo = bound i and hi = bound (i + 1) in
            Domain.spawn (fun () -> f ~lo ~hi))
      in
      let results = Array.make k (Error Exit) in
      results.(0) <- (try Ok (f ~lo:0 ~hi:(bound 1)) with e -> Error e);
      for i = 1 to k - 1 do
        results.(i) <- (try Ok (Domain.join workers.(i - 1)) with e -> Error e)
      done;
      (match observer with
      | Some report ->
        for c = 0 to k - 1 do
          (* A chunk that raised may have no stop stamp; skip it. *)
          if times.((2 * c) + 1) > 0.0 then
            report ~chunk:c ~chunks:k ~lo:(bound c) ~hi:(bound (c + 1)) ~start_s:times.(2 * c)
              ~stop_s:times.((2 * c) + 1)
        done
      | None -> ());
      Array.iter (function Error e -> raise e | Ok _ -> ()) results;
      Array.map (function Ok v -> v | Error _ -> assert false) results
    end
  end
