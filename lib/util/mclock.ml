let now_ns () = Monotonic_clock.now ()
let ns_per_s = 1e9
let now_s () = Int64.to_float (now_ns ()) /. ns_per_s
let elapsed_s ~since = Int64.to_float (Int64.sub (now_ns ()) since) /. ns_per_s
