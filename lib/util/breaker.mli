(** Per-resource circuit breaker — the degradation policy guarding
    materialized-view refresh: after [threshold] {e consecutive}
    failures the breaker opens and the resource is quarantined (the
    caller stops attempting the failing operation and falls back);
    once [cooldown_s] monotonic seconds pass it goes half-open,
    letting exactly one probe attempt through — success closes it,
    failure re-opens it and restarts the cooldown.

    State is evaluated lazily against the clock: [Open] decays to
    [Half_open] the first time {!state} (or {!allow}) is consulted
    after the cooldown elapses. Single-domain use only. *)

type state = Closed | Open | Half_open

type t

val create : ?threshold:int -> ?cooldown_s:float -> unit -> t
(** [threshold] (default 3) consecutive failures open the breaker;
    [cooldown_s] (default 30) is the quarantine length. Starts
    [Closed]. *)

val state : t -> state

val allow : t -> bool
(** May the protected operation be attempted now? [true] in [Closed]
    and [Half_open] (the probe), [false] while [Open]. A [Half_open]
    breaker keeps allowing until an outcome is recorded. *)

val record_success : t -> unit
(** Clears the failure streak and closes the breaker. *)

val record_failure : t -> bool
(** One more consecutive failure. In [Half_open], re-opens
    immediately. Returns [true] exactly when this call transitioned
    the breaker to [Open] (so callers can count distinct openings). *)

val failures : t -> int
(** Current consecutive-failure streak. *)

val threshold : t -> int

val describe : t -> string
(** One-line state for EXPLAIN output: ["closed"],
    ["open (3 failures, 27.1s cooldown left)"] or
    ["half-open (probe pending)"]. *)
