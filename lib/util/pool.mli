(** Fixed-width domain pool: deterministic chunked fan-out/merge on
    top of OCaml 5 [Domain]s.

    A pool fixes how many domains a fan-out may use. [map_chunks]
    splits an index range [\[0, n)] into at most that many contiguous
    chunks, evaluates every chunk (chunk 0 on the calling domain, the
    rest on freshly spawned domains that are joined before returning)
    and returns the per-chunk results in chunk order. No worker
    threads outlive the call, so there is nothing to shut down and no
    interaction with process exit.

    Determinism contract: a caller whose chunk function maps each
    index [i] in [\[lo, hi)] independently and appends per-index
    results in index order gets — after concatenating the returned
    chunks — the exact same sequence for every pool width, including
    width 1 (fully sequential). The materializer relies on this to
    make parallel view builds byte-identical to sequential ones.

    Worker domains may update {!Kaskade_obs.Metrics} counters (they
    take the atomic merge path) and may borrow {!Scratch} buffers
    (pools are domain-local). *)

type t

val create : ?domains:int -> unit -> t
(** [domains] defaults to {!default_domains}; values are clamped to
    [\[1, 64\]]. *)

val domains : t -> int

val default_domains : unit -> int
(** [KASKADE_DOMAINS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()], capped at 8. *)

val default : unit -> t
(** Memoized pool of {!default_domains} width. *)

val map_chunks : t -> n:int -> (lo:int -> hi:int -> 'a) -> 'a array
(** Evaluate [f ~lo ~hi] over a balanced contiguous partition of
    [\[0, n)]; at most [domains t] chunks, fewer when [n] is small
    (never an empty chunk; [n = 0] yields [[||]]). Results are in
    chunk order: concatenating them preserves index order. *)

val set_chunk_observer :
  (chunk:int -> chunks:int -> lo:int -> hi:int -> start_s:float -> stop_s:float -> unit) option ->
  unit
(** Install a telemetry hook: when set, every {!map_chunks} fan-out
    reports each chunk's index range and monotonic start/stop time
    ([Mclock] seconds, measured inside the executing domain). The hook
    runs on the {e calling} domain after all workers are joined, one
    call per chunk in chunk order — chunk 0 is the calling domain,
    chunks 1.. ran on spawned worker domains. [Kaskade_obs.Trace]
    installs one at init so span collection sees pool fan-outs with
    per-domain timing; the hook must therefore be cheap and must not
    raise. Single-chunk (sequential) fan-outs are not reported. *)
