(** Domain pool: deterministic parallel fan-out/merge on top of
    OCaml 5 [Domain]s.

    A pool fixes how many domains a fan-out may use. The primary
    fan-out is {!map_morsels}: the index range [\[0, n)] is cut into
    fixed-size {e morsels} and workers (the calling domain plus
    freshly spawned ones, joined before returning) claim them from a
    shared atomic cursor — work-stealing scheduling, so a worker stuck
    on a heavy morsel simply stops claiming while the others drain the
    rest. Results land in per-morsel slots and are returned in morsel
    order. No worker outlives the call, so there is nothing to shut
    down and no interaction with process exit.

    Determinism contract: a caller whose morsel function maps each
    index [i] in [\[lo, hi)] independently and appends per-index
    results in index order gets — after concatenating the returned
    morsels — the exact same sequence for every pool width and every
    grain, including width 1 (fully sequential). Error behavior is
    deterministic too: every morsel runs to completion (or failure)
    and the {e lowest-indexed} morsel's exception is rethrown, which —
    because each morsel scans its range in order — is exactly the
    exception a sequential run would have raised first. The
    materializer and the executor's parallel scans rely on this to
    make parallel runs byte-identical to sequential ones.

    Worker domains may update {!Kaskade_obs.Metrics} counters (they
    take the atomic merge path), may borrow {!Scratch} buffers (pools
    are domain-local), and may share one {!Budget} (step counts are
    racy but monotone; exhaustion is detected promptly and surfaces as
    the deterministic lowest-morsel error). *)

type t

val create : ?domains:int -> ?oversubscribe:bool -> unit -> t
(** [domains] defaults to {!default_domains}; values are clamped to
    [\[1, 64\]]. By default morsel fan-outs cap their worker count at
    the hardware parallelism ([Domain.recommended_domain_count]) —
    spawning more domains than cores makes fan-outs slower (the
    workers time-share and every minor GC synchronizes all of them).
    [oversubscribe] (default [false]) lifts that cap and spawns up to
    [domains] workers regardless; tests use it to exercise real
    multi-domain merging on any machine. *)

val domains : t -> int
(** The requested width. *)

val effective_workers : t -> int
(** The width {!map_morsels} will actually use: [domains t], capped at
    the hardware parallelism unless the pool oversubscribes. *)

val default_domains : unit -> int
(** [KASKADE_DOMAINS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()], capped at 8. *)

val default : unit -> t
(** Memoized pool of {!default_domains} width. When [KASKADE_DOMAINS]
    is set the pool oversubscribes: an explicit width is honored even
    past the machine's core count. *)

val map_morsels : t -> ?grain:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a array
(** Evaluate [f ~lo ~hi] over [\[0, n)] in morsels of [grain]
    consecutive indices (last one may be short), claimed by up to
    {!effective_workers} domains from a shared cursor. Returns the
    per-morsel results in morsel-index order; [n = 0] yields [[||]].
    [grain] defaults to [max 256 (n / (workers * 8))] — small enough
    to steal, large enough that the cursor is uncontended — and is
    irrelevant to the merged output (see the determinism contract).
    With one effective worker (or a single morsel) everything runs on
    the caller, no domain is spawned, and nothing is reported to the
    morsel observer. *)

val map_chunks : t -> n:int -> (lo:int -> hi:int -> 'a) -> 'a array
[@@deprecated "use map_morsels instead: work-stealing morsels with the same merge contract"]
(** Legacy fixed-partition fan-out: evaluate [f ~lo ~hi] over a
    balanced contiguous partition of [\[0, n)]; at most [domains t]
    chunks, one per domain, spawned unconditionally (no hardware cap —
    callers that need real worker domains regardless of machine size
    still get them). Results are in chunk order.

    @deprecated A fixed partition stalls the whole fan-out on its
    slowest chunk; {!map_morsels} preserves the same deterministic
    merge order while letting idle workers steal. One compatibility
    test keeps this path honest until removal. *)

val set_morsel_observer :
  (worker:int ->
  workers:int ->
  morsel:int ->
  morsels:int ->
  lo:int ->
  hi:int ->
  start_s:float ->
  stop_s:float ->
  unit)
  option ->
  unit
(** Install a telemetry hook: when set, every parallel {!map_morsels}
    fan-out reports each morsel's claiming worker ([0] is the calling
    domain), index, range, and monotonic start/stop time ([Mclock]
    seconds, measured inside the executing domain). The hook runs on
    the {e calling} domain after all workers are joined, one call per
    completed morsel in morsel order — under stealing the same worker
    id recurs on whatever morsels it claimed. [Kaskade_obs.Trace]
    installs one at init so Chrome traces show per-worker timelines
    labelled with morsel ranges; the hook must be cheap and must not
    raise. Sequential (single-worker) fan-outs are not reported. *)

val set_chunk_observer :
  (chunk:int -> chunks:int -> lo:int -> hi:int -> start_s:float -> stop_s:float -> unit) option ->
  unit
(** Like {!set_morsel_observer} for the legacy {!map_chunks} path:
    one call per chunk in chunk order, chunk 0 being the calling
    domain. Single-chunk fan-outs are not reported. *)
