(** Composable resource budgets with cooperative checkpoints — the
    governance layer that keeps every Kaskade pipeline stage (Prolog
    enumeration, view materialization and refresh, query execution)
    bounded in wall time, work, and output size.

    A budget combines three independent caps, each optional:

    - a {b deadline} in seconds, measured on the monotonic clock
      ({!Mclock}) from {!create} — wall-clock steps cannot fire it
      early or late;
    - a {b step} cap on cooperative work units ({!step} calls, one per
      scanned vertex / frontier expansion / traversal source);
    - a {b row} cap on result rows materialized ({!add_rows}).

    Checkpoints are designed for inner loops: {!step} is an int
    increment plus two compares, and the clock is only read when a
    fuse of accumulated step cost runs out (first call, then every
    {!clock_period} units), so a budget-threaded BFS costs within
    noise of an unbudgeted one. [None] budgets short-circuit: every
    entry point takes a [t option] and threads it down untouched.

    A budget is owned by one query/refresh attempt on one domain.
    Worker domains in a [Pool] fan-out may share it — step counts can
    lose increments under the race, but the counter only moves forward
    and the deadline is immutable, so exhaustion is still detected
    promptly; counts are approximate, never unsafe.

    {!Faults} is the seeded fault-injection hook used by the
    robustness tests and the [bench faults] experiment: it can force a
    timeout or a failure at a named site, either programmatically
    ({!Faults.with_faults}) or from the [KASKADE_FAULTS] environment
    variable. *)

(** Pipeline stage reported by an exhausted budget — the coordinate of
    the checkpoint that fired, carried into [Kaskade.Error]. *)
type stage = Enumerate | Plan | Execute | Refresh | Materialize

val stage_label : stage -> string
(** ["enumerate"], ["plan"], ["execute"], ["refresh"],
    ["materialize"]. *)

exception Exhausted of { stage : stage; detail : string }
(** Raised by a checkpoint when any cap is exceeded. [detail] is a
    human-readable account of which cap fired (e.g.
    ["deadline of 0.050s exceeded"]). *)

exception Fault_injected of { site : string }
(** Raised by {!fault_point} when an armed [Fail]-kind fault matches —
    a stand-in for an internal failure (refresh crash, I/O error) at
    the site. *)

type t

val create : ?deadline_s:float -> ?max_steps:int -> ?max_rows:int -> unit -> t
(** A budget whose deadline clock starts now. Omitted caps are
    unlimited; [create ()] never exhausts but still counts (useful for
    observing cost). *)

val clock_period : int
(** Step cost accumulated between deadline clock reads (256). *)

(** {1 Checkpoints}

    All take [t option]; [None] is a no-op. *)

val step : ?cost:int -> t option -> stage -> unit
(** Account [cost] (default 1) work units; raises {!Exhausted} when
    the step cap is exceeded or — on the periodic clock read — the
    deadline has passed. *)

val check : t option -> stage -> unit
(** Force a deadline (and step/row cap) re-check without accounting
    work. Call at stage boundaries so a 0-second deadline fires before
    any work starts. *)

val add_rows : t option -> stage -> int -> unit
(** Account [n] result rows against the row cap. *)

(** {1 Introspection} *)

val steps_used : t -> int
val rows_used : t -> int

val remaining_steps : t -> int option
(** [max_steps - steps_used], clamped at 0; [None] when uncapped. Used
    to map the budget onto sub-engines with their own step limits
    (e.g. the Prolog enumerator). *)

val elapsed_s : t -> float
(** Monotonic seconds since {!create}. *)

val deadline_s : t -> float option

val describe : t -> string
(** One-line state for EXPLAIN output, e.g.
    ["deadline 0.500s (0.012s elapsed), steps 1841/100000, rows 12"]. *)

(** {1 Fault injection} *)

module Faults : sig
  (** What an armed fault does when its site is hit: [Timeout] raises
      {!Exhausted} (as if the deadline had passed there), [Fail]
      raises {!Fault_injected} (as if the site's work had crashed). *)
  type kind = Timeout | Fail

  type fault

  val fault : ?times:int -> ?prob:float -> ?seed:int -> string -> kind -> fault
  (** A fault armed at the named site. [times] (default: unlimited)
      caps how often it fires; [prob] (default 1.0) fires it on each
      hit with that probability, drawn from a deterministic
      {!Prng} stream seeded with [seed] (default 0) — the {e seeded}
      part: a given (seed, prob) always fails the same hits. *)

  val with_faults : fault list -> (unit -> 'a) -> 'a
  (** Run the thunk with the faults armed (on top of any inherited
      ones), disarming them on exit even on exceptions. *)

  val with_spec : string -> (unit -> 'a) -> 'a
  (** Like {!with_faults}, parsing the [KASKADE_FAULTS] syntax:
      comma-separated [site=kind] entries with optional [:nN] (times),
      [:pP] (probability), [:sS] (seed) suffixes — e.g.
      ["maintain.refresh=fail:n2,executor.run=timeout:p0.5:s7"].
      Raises [Invalid_argument] on malformed specs. *)

  val active : unit -> bool
  (** True when any fault (environment or programmatic) is armed. *)
end

val fault_point : stage -> site:string -> unit
(** Declare a named injection site. No-op unless a matching fault is
    armed — via {!Faults.with_faults} or the [KASKADE_FAULTS]
    environment variable (read once, at the first call). Sites in this
    repository: ["executor.run"], ["enumerate"], ["maintain.refresh"],
    ["materialize"], ["store.wal_append"] (simulates a kill mid-WAL
    write — see [Kaskade_store.Wal]). *)
