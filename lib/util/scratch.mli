(** Epoch-stamped scratch buffers for traversal inner loops.

    A BFS/DFS over a graph of [n] vertices needs a visited set (and
    often a small int payload per visited id) plus frontier queues.
    Allocating a [Hashtbl] or an [n]-sized array per query is exactly
    the churn that dominates short traversals, so this module keeps a
    pool of reusable buffers and makes "clear" O(1): every slot carries
    the epoch at which it was last written, and borrowing a set bumps
    the epoch, instantly invalidating all previous entries.

    The pool is domain-local (via [Domain.DLS]): each domain of a
    {!Pool} fan-out borrows from its own free list, so no
    synchronization is ever needed and buffers are reused across the
    many per-source traversals a materialization chunk performs.
    Borrowing is scoped ([with_set] / [with_vec]) and re-entrant —
    nested borrows get distinct buffers. *)

type set
(** A borrowed int-keyed set with an optional int payload per member.
    Valid only inside the [with_set] callback that produced it. *)

val with_set : n:int -> (set -> 'a) -> 'a
(** [with_set ~n f] borrows a set accepting keys in [\[0, n)], runs
    [f] and returns the buffer to the domain-local pool (also on
    exception). The set starts empty. *)

val mem : set -> int -> bool
val add : set -> int -> unit
(** Membership only; any previous payload for the key becomes stale —
    use {!set_value} when a payload is needed. *)

val remove : set -> int -> unit

val set_value : set -> int -> int -> unit
(** Adds the key and stores an int payload. *)

val value : set -> int -> int
(** Payload stored by {!set_value}. Undefined (stale data) if the key
    was added with plain {!add}; raises [Invalid_argument] if the key
    is not a member. *)

val value_or : set -> int -> default:int -> int
(** Payload, or [default] when the key is not a member. *)

val cardinal : set -> int
(** Number of members currently in the set (O(1)). *)

val clear : set -> unit
(** Empty the set in O(1) (epoch bump) — for level-set swapping
    inside one borrow. *)

val with_vec : (Int_vec.t -> 'a) -> 'a
(** Borrow a cleared growable int vector (frontier queue). Same
    scoping and pooling rules as [with_set]. *)
