type set = {
  mutable stamp : int array;  (* stamp.(k) = epoch  <=>  k is a member *)
  mutable data : int array;   (* payload, meaningful only for members *)
  mutable epoch : int;
  mutable card : int;
}

(* Domain-local free lists: each domain reuses its own buffers without
   synchronization. *)
let set_pool : set list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let vec_pool : Int_vec.t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let ensure_capacity s n =
  let cap = Array.length s.stamp in
  if n > cap then begin
    let cap' = Stdlib.max n (Stdlib.max 64 (2 * cap)) in
    let stamp' = Array.make cap' 0 and data' = Array.make cap' 0 in
    Array.blit s.stamp 0 stamp' 0 cap;
    Array.blit s.data 0 data' 0 cap;
    s.stamp <- stamp';
    s.data <- data'
  end

let fresh_epoch s =
  if s.epoch = max_int then begin
    (* Epoch wrap (practically unreachable): hard reset the stamps. *)
    Array.fill s.stamp 0 (Array.length s.stamp) 0;
    s.epoch <- 1
  end
  else s.epoch <- s.epoch + 1;
  s.card <- 0

let with_set ~n f =
  let pool = Domain.DLS.get set_pool in
  let s =
    match !pool with
    | s :: rest ->
      pool := rest;
      s
    | [] -> { stamp = Array.make (Stdlib.max n 64) 0; data = Array.make (Stdlib.max n 64) 0; epoch = 0; card = 0 }
  in
  ensure_capacity s n;
  fresh_epoch s;
  Fun.protect ~finally:(fun () -> pool := s :: !pool) (fun () -> f s)

let mem s k = s.stamp.(k) = s.epoch

let add s k =
  if s.stamp.(k) <> s.epoch then begin
    s.stamp.(k) <- s.epoch;
    s.card <- s.card + 1
  end

let remove s k =
  if s.stamp.(k) = s.epoch then begin
    s.stamp.(k) <- 0;
    s.card <- s.card - 1
  end

let set_value s k v =
  add s k;
  s.data.(k) <- v

let value s k =
  if s.stamp.(k) <> s.epoch then invalid_arg "Scratch.value: not a member";
  s.data.(k)

let value_or s k ~default = if s.stamp.(k) = s.epoch then s.data.(k) else default
let cardinal s = s.card
let clear s = fresh_epoch s

let with_vec f =
  let pool = Domain.DLS.get vec_pool in
  let v =
    match !pool with
    | v :: rest ->
      pool := rest;
      v
    | [] -> Int_vec.create ~capacity:64 ()
  in
  Int_vec.clear v;
  Fun.protect ~finally:(fun () -> pool := v :: !pool) (fun () -> f v)
