type stage = Enumerate | Plan | Execute | Refresh | Materialize

let stage_label = function
  | Enumerate -> "enumerate"
  | Plan -> "plan"
  | Execute -> "execute"
  | Refresh -> "refresh"
  | Materialize -> "materialize"

exception Exhausted of { stage : stage; detail : string }
exception Fault_injected of { site : string }

type t = {
  t0_ns : int64;
  deadline_s : float option;
  deadline_ns : int64 option;  (* absolute, precomputed from t0 *)
  max_steps : int option;
  max_rows : int option;
  mutable steps : int;
  mutable rows : int;
  mutable clock_fuse : int;  (* clock read when it runs out; starts spent *)
}

let clock_period = 256

let create ?deadline_s ?max_steps ?max_rows () =
  let t0 = Mclock.now_ns () in
  {
    t0_ns = t0;
    deadline_s;
    deadline_ns =
      Option.map (fun s -> Int64.add t0 (Int64.of_float (s *. 1e9))) deadline_s;
    max_steps;
    max_rows;
    steps = 0;
    rows = 0;
    clock_fuse = 0;
  }

let exhausted stage fmt =
  Format.kasprintf (fun detail -> raise (Exhausted { stage; detail })) fmt

let check_deadline t stage =
  match t.deadline_ns with
  | Some d when Mclock.now_ns () >= d ->
    exhausted stage "deadline of %.3fs exceeded" (Option.get t.deadline_s)
  | _ -> ()

let check_steps t stage =
  match t.max_steps with
  | Some m when t.steps > m -> exhausted stage "step budget of %d exceeded" m
  | _ -> ()

let check_rows t stage =
  match t.max_rows with
  | Some m when t.rows > m -> exhausted stage "row budget of %d exceeded" m
  | _ -> ()

let step ?(cost = 1) b stage =
  match b with
  | None -> ()
  | Some t ->
    t.steps <- t.steps + cost;
    check_steps t stage;
    t.clock_fuse <- t.clock_fuse - cost;
    if t.clock_fuse <= 0 then begin
      t.clock_fuse <- clock_period;
      check_deadline t stage
    end

let check b stage =
  match b with
  | None -> ()
  | Some t ->
    check_deadline t stage;
    check_steps t stage;
    check_rows t stage

let add_rows b stage n =
  match b with
  | None -> ()
  | Some t ->
    t.rows <- t.rows + n;
    check_rows t stage

let steps_used t = t.steps
let rows_used t = t.rows
let remaining_steps t = Option.map (fun m -> Stdlib.max 0 (m - t.steps)) t.max_steps
let elapsed_s t = Mclock.elapsed_s ~since:t.t0_ns
let deadline_s t = t.deadline_s

let describe t =
  let parts =
    [
      (match t.deadline_s with
      | Some d -> Printf.sprintf "deadline %.3fs (%.3fs elapsed)" d (elapsed_s t)
      | None -> "no deadline");
      (match t.max_steps with
      | Some m -> Printf.sprintf "steps %d/%d" t.steps m
      | None -> Printf.sprintf "steps %d" t.steps);
      (match t.max_rows with
      | Some m -> Printf.sprintf "rows %d/%d" t.rows m
      | None -> Printf.sprintf "rows %d" t.rows);
    ]
  in
  String.concat ", " parts

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

module Faults = struct
  type kind = Timeout | Fail

  type fault = { f_site : string; f_kind : kind; f_times : int; f_prob : float; f_seed : int }

  (* An armed fault: remaining fire count plus its own deterministic
     probability stream, so the same (seed, prob) fails the same
     hits regardless of what other faults are armed. *)
  type armed = { spec : fault; mutable left : int; prng : Prng.t }

  let fault ?(times = max_int) ?(prob = 1.0) ?(seed = 0) f_site f_kind =
    { f_site; f_kind; f_times = times; f_prob = prob; f_seed = seed }

  let arm spec = { spec; left = spec.f_times; prng = Prng.create spec.f_seed }

  let parse_entry entry =
    let bad () =
      invalid_arg
        (Printf.sprintf
           "KASKADE_FAULTS: bad entry %S (want site=timeout|fail[:nN][:pP][:sS])" entry)
    in
    match String.split_on_char '=' entry with
    | [ site; rhs ] when site <> "" -> begin
      match String.split_on_char ':' rhs with
      | kind_s :: mods ->
        let kind =
          match String.lowercase_ascii kind_s with
          | "timeout" -> Timeout
          | "fail" -> Fail
          | _ -> bad ()
        in
        List.fold_left
          (fun f m ->
            if m = "" then bad ()
            else
              let v = String.sub m 1 (String.length m - 1) in
              match m.[0] with
              | 'n' -> begin
                match int_of_string_opt v with Some n when n >= 0 -> { f with f_times = n } | _ -> bad ()
              end
              | 'p' -> begin
                match float_of_string_opt v with
                | Some p when p >= 0.0 && p <= 1.0 -> { f with f_prob = p }
                | _ -> bad ()
              end
              | 's' -> begin
                match int_of_string_opt v with Some s -> { f with f_seed = s } | _ -> bad ()
              end
              | _ -> bad ())
          (fault site kind) mods
      | [] -> bad ()
    end
    | _ -> bad ()

  let parse spec =
    String.split_on_char ',' spec
    |> List.filter_map (fun e ->
           let e = String.trim e in
           if e = "" then None else Some (parse_entry e))

  (* Faults from the environment are armed once, at the first
     [fault_point] that finds none installed programmatically. *)
  let env_armed =
    lazy
      (match Sys.getenv_opt "KASKADE_FAULTS" with
      | Some s when String.trim s <> "" -> List.map arm (parse s)
      | _ -> [])

  let installed : armed list ref = ref []

  let current () = !installed @ Lazy.force env_armed
  let active () = current () <> []

  let with_faults faults f =
    let saved = !installed in
    installed := List.map arm faults @ saved;
    Fun.protect ~finally:(fun () -> installed := saved) f

  let with_spec spec f = with_faults (parse spec) f

  (* First armed fault matching [site] that still has fires left and
     wins its probability draw. The draw consumes the stream even on a
     miss, so hit N's outcome is a pure function of (seed, prob, N). *)
  let hit site =
    let rec go = function
      | [] -> None
      | a :: rest ->
        if a.spec.f_site = site && a.left > 0 then begin
          let fires = a.spec.f_prob >= 1.0 || Prng.float a.prng 1.0 < a.spec.f_prob in
          if fires then begin
            a.left <- a.left - 1;
            Some a.spec.f_kind
          end
          else go rest
        end
        else go rest
    in
    go (current ())
end

let fault_point stage ~site =
  if Faults.active () then
    match Faults.hit site with
    | Some Faults.Timeout -> exhausted stage "injected timeout at %s" site
    | Some Faults.Fail -> raise (Fault_injected { site })
    | None -> ()
