(** Deterministic random update batches for a frozen graph — the
    workload side of the live-update subsystem: property tests and the
    maintenance benchmark need schema-valid op streams whose insert and
    delete interleavings are reproducible from a seed. *)

val random_ops :
  ?inserts:int ->
  ?deletes:int ->
  seed:int ->
  Kaskade_graph.Graph.t ->
  Kaskade_graph.Graph.Overlay.op list
(** [random_ops ?inserts ?deletes ~seed g] — a shuffled batch of
    [inserts] (default 8) schema-valid edge inserts and [deletes]
    (default 8) edge deletes against [g]:

    - inserts pick a uniform edge type whose domain and range both
      have vertices in [g], then uniform endpoints of those types;
    - deletes target {e distinct} random existing edge ids (converted
      to their [(src, dst, etype)] key), so applying the batch through
      [Graph.Overlay.apply] performs every delete — except when an
      earlier delete in the shuffle already consumed an instance of a
      duplicated key, which is exactly the multiset semantics the
      maintenance property tests want to exercise.

    Fewer deletes than requested are produced when [g] has fewer
    edges; inserts are dropped when no edge type is usable (e.g. an
    edgeless schema). Equal seeds yield equal batches. *)
