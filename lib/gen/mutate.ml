open Kaskade_graph
module Prng = Kaskade_util.Prng

let random_ops ?(inserts = 8) ?(deletes = 8) ~seed g =
  let rng = Prng.create seed in
  let schema = Graph.schema g in
  (* Edge types usable for inserts: both endpoint types populated. *)
  let usable =
    List.filter
      (fun (d : Schema.edge_def) ->
        Array.length (Graph.vertices_of_type_name g d.Schema.src) > 0
        && Array.length (Graph.vertices_of_type_name g d.Schema.dst) > 0)
      (Schema.edge_defs schema)
  in
  let usable = Array.of_list usable in
  let ins =
    if Array.length usable = 0 then []
    else
      List.init inserts (fun _ ->
          let d = Prng.choose rng usable in
          Graph.Overlay.Insert_edge
            {
              src = Prng.choose rng (Graph.vertices_of_type_name g d.Schema.src);
              dst = Prng.choose rng (Graph.vertices_of_type_name g d.Schema.dst);
              etype = d.Schema.name;
              props = [];
            })
  in
  let m = Graph.n_edges g in
  let deletes = Stdlib.min deletes m in
  let dels =
    if deletes = 0 then []
    else begin
      (* Distinct victim eids via a partial Fisher-Yates over [0, m). *)
      let eids = Array.init m Fun.id in
      for i = 0 to deletes - 1 do
        let j = i + Prng.int rng (m - i) in
        let t = eids.(i) in
        eids.(i) <- eids.(j);
        eids.(j) <- t
      done;
      List.init deletes (fun i ->
          let eid = eids.(i) in
          let src, dst = Graph.edge_endpoints g eid in
          Graph.Overlay.Delete_edge
            { src; dst; etype = Schema.edge_type_name schema (Graph.edge_type g eid) })
    end
  in
  let ops = Array.of_list (ins @ dels) in
  Prng.shuffle rng ops;
  Array.to_list ops
