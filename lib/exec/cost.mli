(** Cardinality-based query cost model — the stand-in for Neo4j's
    cost-based optimizer that the paper uses as its
    [EvalCost(q)] proxy (§V-A). The cost of a query is the sum of
    estimated intermediate result sizes along its MATCH pipeline:
    label scans cost the label cardinality; each single-hop expand
    multiplies by the source type's mean out-degree; a [*lo..hi]
    expand multiplies by [sum over h in lo..hi of deg^h]. Relational
    stages (WHERE / GROUP BY) add a pass over their input. *)

type estimate = {
  total_cost : float;  (** Sum of operator output cardinalities. *)
  match_rows : float;  (** Estimated rows out of the MATCH pipeline. *)
}

val estimate :
  ?deg_override:(string -> float option) ->
  Kaskade_graph.Gstats.t ->
  Kaskade_graph.Schema.t ->
  Kaskade_query.Ast.t ->
  estimate
(** [deg_override label] substitutes the branching factor for vertices
    labelled [label] — how selection prices a query over a view that
    is not materialized yet (e.g. a connector edge whose mean degree
    is estimated-size / source-count). *)

val eval_cost :
  ?deg_override:(string -> float option) ->
  Kaskade_graph.Gstats.t ->
  Kaskade_graph.Schema.t ->
  Kaskade_query.Ast.t ->
  float
(** [(estimate ...).total_cost]. *)

val equality_probe :
  Kaskade_query.Ast.expr -> string -> (string * Kaskade_graph.Value.t) option
(** Top-level conjunctive [var.prop = literal] in a WHERE expression —
    the predicate shape the executor serves with an index probe.
    Exposed so plan building and execution agree on the access path. *)

val plan :
  ?deg_override:(string -> float option) ->
  Kaskade_graph.Gstats.t ->
  Kaskade_graph.Schema.t ->
  Kaskade_query.Ast.t ->
  Kaskade_obs.Explain.node
(** Operator tree of the query as the executor will run it, each node
    annotated with this cost model's estimated output cardinality.
    Pass the {e optimized} query (see {!Planner.optimize}) to see the
    plan that actually executes; {!Executor.explain} does exactly
    that. Estimates are per-operator running cardinalities — the same
    numbers {!estimate} sums into [total_cost] — so a profiled run can
    be read as estimated-vs-actual per operator. *)
