open Kaskade_graph
open Kaskade_query
module Explain = Kaskade_obs.Explain
module Metrics = Kaskade_obs.Metrics
module Trace = Kaskade_obs.Trace
module Scratch = Kaskade_util.Scratch
module Int_vec = Kaskade_util.Int_vec
module Budget = Kaskade_util.Budget

(* Process-wide execution metrics (see docs/OBSERVABILITY.md). The
   instruments are resolved once here; updates are single field
   mutations, cheap enough for the BFS inner loop. *)
let m_queries_run = Metrics.counter ~help:"Queries executed" "executor.queries_run"
let m_rows_produced = Metrics.counter ~help:"Result rows returned" "executor.rows_produced"

let m_expand_steps =
  Metrics.counter ~help:"Frontier vertex expansions during variable-length traversal"
    "executor.expand_steps"

(* Unbound start scans below this many candidate vertices stay
   sequential: a fan-out that cannot amortize its domain spawns over
   real per-candidate work only adds latency. *)
let parallel_scan_threshold = 2048

type mode = Distinct_endpoints | All_trails

(* A context either owns a frozen graph for good, or reads through a
   [Graph.Overlay]. Live contexts re-derive their graph snapshot (and
   drop derived caches) whenever the overlay's version moved — queries
   always observe the latest batch without callers rebuilding
   contexts. *)
type source = Frozen | Live of Graph.Overlay.t

type ctx = {
  source : source;
  mode : mode;
  planner : bool;
  pool : Kaskade_util.Pool.t option;
  (* [(policy, count)] with count > 1 routes adjacency reads through a
     sharded CSR built from the current snapshot; [None] (the S=1
     gate) is exactly the single-CSR code path. *)
  shard_spec : (Shard.policy * int) option;
  mutable cache_version : int;
  mutable g : Graph.t;
  mutable sharded : Shard.t option Lazy.t;
  mutable stats : Gstats.t Lazy.t;
  mutable indexes : Vindex.t Lazy.t;
  mutable communities : int array option;
}

type result = Table of Row.table | Affected of int

let shard_of_spec spec g =
  lazy (Option.map (fun (policy, s) -> Shard.of_graph ~policy ~shards:s g) spec)

let make ~source ~mode ~planner ~pool ~shard_spec ~version g =
  let shard_spec =
    match shard_spec with Some (_, s) when s > 1 -> shard_spec | _ -> None
  in
  {
    source;
    mode;
    planner;
    pool;
    shard_spec;
    cache_version = version;
    g;
    sharded = shard_of_spec shard_spec g;
    stats = lazy (Gstats.compute ?pool g);
    indexes = lazy (Vindex.create g);
    communities = None;
  }

let create ?(mode = Distinct_endpoints) ?(planner = false) ?pool
    ?(shard_policy = Shard.Hash) ?(shards = 1) g =
  make ~source:Frozen ~mode ~planner ~pool ~shard_spec:(Some (shard_policy, shards)) ~version:0
    g

let create_live ?(mode = Distinct_endpoints) ?(planner = false) ?pool
    ?(shard_policy = Shard.Hash) ?(shards = 1) o =
  make ~source:(Live o) ~mode ~planner ~pool ~shard_spec:(Some (shard_policy, shards))
    ~version:(Graph.Overlay.version o) (Graph.Overlay.graph o)

(* Called at every public entry point. Snapshotting is cheap when the
   overlay is clean (its cached graph is reused); statistics and
   property indexes stay lazy, so a pure update/read workload never
   pays for them. Community labels are positional and die with the
   old snapshot. *)
let sync ctx =
  match ctx.source with
  | Frozen -> ()
  | Live o ->
    let v = Graph.Overlay.version o in
    if v <> ctx.cache_version then begin
      let g = Graph.Overlay.graph o in
      let pool = ctx.pool in
      ctx.cache_version <- v;
      ctx.g <- g;
      ctx.sharded <- shard_of_spec ctx.shard_spec g;
      ctx.stats <- lazy (Gstats.compute ?pool g);
      ctx.indexes <- lazy (Vindex.create g);
      ctx.communities <- None
    end

let graph ctx =
  sync ctx;
  ctx.g

let shards ctx =
  sync ctx;
  Lazy.force ctx.sharded

let mode ctx = ctx.mode

let communities ctx =
  sync ctx;
  ctx.communities

let table_exn = function
  | Table t -> t
  | Affected _ -> invalid_arg "Executor.table_exn: result is not a table"

(* Unbound slot sentinel. *)
let unbound = Row.Prim Value.Null
let is_bound = function Row.Prim Value.Null -> false | _ -> true

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)

let rec eval_expr g (env : string -> Row.rval) (e : Ast.expr) : Row.rval =
  match e with
  | Ast.Var v -> env v
  | Ast.Prop (v, p) -> begin
    match env v with
    | Row.V vid -> Row.Prim (Graph.vprop_or_null g vid p)
    | Row.E eid -> Row.Prim (Graph.eprop_or_null g eid p)
    | Row.Prim _ -> Row.Prim Value.Null
  end
  | Ast.Lit v -> Row.Prim v
  | Ast.Unop (Ast.Neg, e) -> begin
    match eval_expr g env e with
    | Row.Prim (Value.Int n) -> Row.Prim (Value.Int (-n))
    | Row.Prim (Value.Float f) -> Row.Prim (Value.Float (-.f))
    | _ -> Row.Prim Value.Null
  end
  | Ast.Unop (Ast.Not, e) -> begin
    match eval_expr g env e with
    | Row.Prim v -> Row.Prim (Value.Bool (not (Value.is_truthy v)))
    | _ -> Row.Prim (Value.Bool false)
  end
  | Ast.Binop (op, a, b) -> eval_binop g env op a b
  | Ast.Agg _ | Ast.Count_star ->
    invalid_arg "Executor: aggregate in a non-aggregating position"

and eval_binop g env op a b =
  let va = eval_expr g env a and vb = eval_expr g env b in
  let prim f =
    match (va, vb) with
    | Row.Prim x, Row.Prim y -> Row.Prim (f x y)
    | _ -> invalid_arg "Executor: arithmetic on a graph entity"
  in
  match op with
  | Ast.Add -> prim Value.add
  | Ast.Sub -> prim Value.sub
  | Ast.Mul -> prim Value.mul
  | Ast.Div -> prim Value.div
  | Ast.Eq -> Row.Prim (Value.Bool (Row.rval_equal va vb))
  | Ast.Ne -> Row.Prim (Value.Bool (not (Row.rval_equal va vb)))
  | Ast.Lt -> Row.Prim (Value.Bool (Row.rval_compare va vb < 0))
  | Ast.Le -> Row.Prim (Value.Bool (Row.rval_compare va vb <= 0))
  | Ast.Gt -> Row.Prim (Value.Bool (Row.rval_compare va vb > 0))
  | Ast.Ge -> Row.Prim (Value.Bool (Row.rval_compare va vb >= 0))
  | Ast.And ->
    Row.Prim (Value.Bool (truthy va && truthy vb))
  | Ast.Or -> Row.Prim (Value.Bool (truthy va || truthy vb))

and truthy = function Row.Prim v -> Value.is_truthy v | Row.V _ | Row.E _ -> true

(* ------------------------------------------------------------------ *)
(* Pattern matching                                                    *)

type slots = { index : (string, int) Hashtbl.t; mutable width : int }

let slot slots name =
  match Hashtbl.find_opt slots.index name with
  | Some i -> i
  | None ->
    let i = slots.width in
    slots.width <- i + 1;
    Hashtbl.add slots.index name i;
    i

let collect_slots (patterns : Ast.pattern list) =
  let slots = { index = Hashtbl.create 16; width = 0 } in
  List.iter
    (fun (p : Ast.pattern) ->
      (match p.p_start.n_var with Some v -> ignore (slot slots v) | None -> ());
      List.iter
        (fun ((e : Ast.edge_pat), (n : Ast.node_pat)) ->
          (match e.e_var with Some v -> ignore (slot slots v) | None -> ());
          match n.n_var with Some v -> ignore (slot slots v) | None -> ())
        p.p_steps)
    patterns;
  slots

let label_ok g (n : Ast.node_pat) v =
  match n.n_label with
  | None -> true
  | Some l -> String.equal (Graph.vertex_type_name g v) l

(* Adjacency source: the four iterators every expansion is built from,
   resolved once per MATCH block to either the single CSR or the
   sharded layer (whose iterators route each read to the owning shard
   and resolve cut edges through the exchange). Both sides satisfy the
   same per-(vertex, etype) eid-ascending contract, so the pattern
   pipeline — and therefore every result byte — is independent of
   which one is plugged in. *)
type adj = {
  a_n_vertices : int;
  a_n_edges : int;
  a_iter_out : int -> (dst:int -> etype:int -> eid:int -> unit) -> unit;
  a_iter_in : int -> (src:int -> etype:int -> eid:int -> unit) -> unit;
  a_iter_out_etype : int -> etype:int -> (dst:int -> eid:int -> unit) -> unit;
  a_iter_in_etype : int -> etype:int -> (src:int -> eid:int -> unit) -> unit;
}

let adj_of_graph g =
  {
    a_n_vertices = Graph.n_vertices g;
    a_n_edges = Graph.n_edges g;
    a_iter_out = Graph.iter_out g;
    a_iter_in = Graph.iter_in g;
    a_iter_out_etype = Graph.iter_out_etype g;
    a_iter_in_etype = Graph.iter_in_etype g;
  }

let adj_of_shard sh =
  {
    a_n_vertices = Shard.n_vertices sh;
    a_n_edges = Shard.n_edges sh;
    a_iter_out = Shard.iter_out sh;
    a_iter_in = Shard.iter_in sh;
    a_iter_out_etype = Shard.iter_out_etype sh;
    a_iter_in_etype = Shard.iter_in_etype sh;
  }

let adj_of_ctx ctx =
  match Lazy.force ctx.sharded with
  | Some sh -> adj_of_shard sh
  | None -> adj_of_graph ctx.g

(* Distinct-endpoint var-length expansion: emit (endpoint, hops) once
   per endpoint whose walk length can fall in [lo, hi].

   For lo <= 1 a plain BFS is exact — any vertex first reached at hop
   d <= hi has a walk of length d >= lo — except the source itself,
   which BFS never revisits; a cyclic walk back to the source is
   detected when a frontier vertex points at it (this is what makes
   connector rewrites preserve j -> ... -> j self-pairs). For lo >= 2
   BFS under-approximates (a vertex at distance < lo may still have a
   longer walk), so exact per-level reachable sets are used instead. *)
(* The neighbor iterator is resolved once per expansion, outside the
   BFS loops: the typed cases walk their segmented-CSR slice directly
   (no per-edge [option] match, no filter closure allocation in the
   inner loop). *)
let neighbor_iter adj ~etype ~(dir : Ast.edge_dir) =
  match (dir, etype) with
  | Ast.Fwd, Some et ->
    fun u f ->
      Metrics.incr m_expand_steps;
      adj.a_iter_out_etype u ~etype:et (fun ~dst ~eid:_ -> f dst)
  | Ast.Fwd, None ->
    fun u f ->
      Metrics.incr m_expand_steps;
      adj.a_iter_out u (fun ~dst ~etype:_ ~eid:_ -> f dst)
  | Ast.Bwd, Some et ->
    fun u f ->
      Metrics.incr m_expand_steps;
      adj.a_iter_in_etype u ~etype:et (fun ~src:s ~eid:_ -> f s)
  | Ast.Bwd, None ->
    fun u f ->
      Metrics.incr m_expand_steps;
      adj.a_iter_in u (fun ~src:s ~etype:_ ~eid:_ -> f s)

let var_length_endpoints ?budget adj ~src ~lo ~hi ~etype ~(dir : Ast.edge_dir) emit =
  let neighbors = neighbor_iter adj ~etype ~dir in
  (* One budget checkpoint per frontier-vertex expansion — the unit
     the BFS loops below already account to [m_expand_steps]. *)
  let neighbors u f =
    Budget.step budget Budget.Execute;
    neighbors u f
  in
  let n = adj.a_n_vertices in
  if lo <= 1 then
    (* Visited set and frontier queues are epoch-stamped scratch
       buffers borrowed from the domain-local pool: no per-query
       Hashtbl, no list-cons churn in the BFS inner loop. *)
    Scratch.with_set ~n @@ fun visited ->
    Scratch.with_vec @@ fun vec_a ->
    Scratch.with_vec @@ fun vec_b ->
    begin
      Scratch.add visited src;
      if lo = 0 then emit src 0;
      let src_emitted = ref (lo = 0) in
      let cur = ref vec_a and next = ref vec_b in
      Int_vec.push !cur src;
      let hop = ref 0 in
      while Int_vec.length !cur > 0 && !hop < hi do
        incr hop;
        Int_vec.clear !next;
        let visit u =
          neighbors u (fun v ->
              if v = src && not !src_emitted && !hop >= lo then begin
                src_emitted := true;
                emit src !hop
              end;
              if not (Scratch.mem visited v) then begin
                Scratch.add visited v;
                if !hop >= lo then emit v !hop;
                Int_vec.push !next v
              end)
        in
        Int_vec.iter visit !cur;
        let tmp = !cur in
        cur := !next;
        next := tmp
      done
    end
  else
    (* Exact walk semantics: level h = vertices reachable by a walk of
       exactly h steps. Level sets are (set, members-vector) pairs so
       dedupe is O(1) and iteration is in deterministic discovery
       order. *)
    Scratch.with_set ~n @@ fun emitted ->
    Scratch.with_set ~n @@ fun set_a ->
    Scratch.with_set ~n @@ fun set_b ->
    Scratch.with_vec @@ fun vec_a ->
    Scratch.with_vec @@ fun vec_b ->
    begin
      let cur_set = ref set_a and cur_vec = ref vec_a in
      let next_set = ref set_b and next_vec = ref vec_b in
      Scratch.add !cur_set src;
      Int_vec.push !cur_vec src;
      (try
         for h = 1 to hi do
           Scratch.clear !next_set;
           Int_vec.clear !next_vec;
           let ns = !next_set and nv = !next_vec in
           Int_vec.iter
             (fun u ->
               neighbors u (fun v ->
                   if not (Scratch.mem ns v) then begin
                     Scratch.add ns v;
                     Int_vec.push nv v
                   end))
             !cur_vec;
           if Int_vec.length nv = 0 then raise Exit;
           if h >= lo then
             Int_vec.iter
               (fun v ->
                 if not (Scratch.mem emitted v) then begin
                   Scratch.add emitted v;
                   emit v h
                 end)
               nv;
           let ts = !cur_set and tv = !cur_vec in
           cur_set := !next_set;
           cur_vec := !next_vec;
           next_set := ts;
           next_vec := tv
         done
       with Exit -> ())
    end

(* All-trails var-length expansion: DFS over distinct-edge trails,
   emitting each endpoint once per trail reaching it. Exponential. *)
let var_length_trails ?budget adj ~src ~lo ~hi ~etype ~(dir : Ast.edge_dir) emit =
  (* Edge iterator resolved once, typed cases slice-walk; the
     distinct-edge set is an epoch-stamped scratch buffer over edge
     ids (add on descent, remove on backtrack). *)
  let iter_step =
    match (dir, etype) with
    | Ast.Fwd, Some et ->
      fun v k -> adj.a_iter_out_etype v ~etype:et (fun ~dst ~eid -> k eid dst)
    | Ast.Fwd, None -> fun v k -> adj.a_iter_out v (fun ~dst ~etype:_ ~eid -> k eid dst)
    | Ast.Bwd, Some et ->
      fun v k -> adj.a_iter_in_etype v ~etype:et (fun ~src:s ~eid -> k eid s)
    | Ast.Bwd, None -> fun v k -> adj.a_iter_in v (fun ~src:s ~etype:_ ~eid -> k eid s)
  in
  Scratch.with_set ~n:adj.a_n_edges @@ fun used ->
  let rec dfs v depth =
    Metrics.incr m_expand_steps;
    Budget.step budget Budget.Execute;
    if depth >= lo then emit v depth;
    if depth < hi then
      iter_step v (fun eid u ->
          if not (Scratch.mem used eid) then begin
            Scratch.add used eid;
            dfs u (depth + 1);
            Scratch.remove used eid
          end)
  in
  dfs src 0

(* See Cost.equality_probe — shared with the plan builder so EXPLAIN
   displays the access path this function actually takes. *)
let equality_probe = Cost.equality_probe

(* When profiling, [prof] is the "Match" plan node Cost.plan built for
   this block: children are one "Pattern" node per pattern (whose own
   children are the fused scan/expand operators) followed by a
   "Filter" node when a WHERE clause exists. The executor fills actual
   row counts (successful bindings) and per-pattern wall time into
   that same tree. *)
let eval_match ?prof ?budget ctx (mb : Ast.match_block) : Row.table =
  let g = ctx.g in
  let adj = adj_of_ctx ctx in
  let schema = Graph.schema g in
  let slots = collect_slots mb.patterns in
  let env_of_row (row : Row.rval array) name =
    match Hashtbl.find_opt slots.index name with
    | Some i -> row.(i)
    | None -> Row.Prim Value.Null
  in
  let initial = [ Array.make (Stdlib.max slots.width 1) unbound ] in
  (* [tally i] counts one successful binding at fused-operator index
     [i] of the current pattern (0 = start scan, j = j-th step) — only
     wired up when profiling. *)
  let expand_pattern ?(tally = fun (_ : int) -> ()) rows (p : Ast.pattern) =
    let n_steps = List.length p.p_steps in
    (* The whole per-candidate pipeline (scan test, step walk,
       var-length expansion), parameterized over its row and tally
       sinks so the parallel scan below can give each morsel its own
       buffers. [make_start ~emit ~tally] returns [start row v]: try
       candidate start vertex [v] against input row [row]. *)
    let make_start ~emit ~tally =
      let rec steps row cur = function
        | [] -> emit row
        | ((e : Ast.edge_pat), (n : Ast.node_pat)) :: rest ->
          let accept_vertex ?edge_rval v =
            if label_ok g n v then begin
              let proceed row =
                tally (n_steps - List.length rest);
                bind_edge row e edge_rval (fun row -> steps row v rest)
              in
              match n.n_var with
              | Some name ->
                let i = Hashtbl.find slots.index name in
                if is_bound row.(i) then begin
                  if Row.rval_equal row.(i) (Row.V v) then proceed row
                end
                else begin
                  let row' = Array.copy row in
                  row'.(i) <- Row.V v;
                  proceed row'
                end
              | None -> proceed row
            end
          in
          (match e.e_len with
          | Ast.Single -> begin
            (* Labelled steps walk their typed slice directly instead of
               filter-scanning the whole adjacency. *)
            let etype = Option.map (Schema.edge_type_id schema) e.e_label in
            match (e.e_dir, etype) with
            | Ast.Fwd, Some et ->
              adj.a_iter_out_etype cur ~etype:et (fun ~dst ~eid ->
                  accept_vertex ~edge_rval:(Row.E eid) dst)
            | Ast.Fwd, None ->
              adj.a_iter_out cur (fun ~dst ~etype:_ ~eid ->
                  accept_vertex ~edge_rval:(Row.E eid) dst)
            | Ast.Bwd, Some et ->
              adj.a_iter_in_etype cur ~etype:et (fun ~src ~eid ->
                  accept_vertex ~edge_rval:(Row.E eid) src)
            | Ast.Bwd, None ->
              adj.a_iter_in cur (fun ~src ~etype:_ ~eid ->
                  accept_vertex ~edge_rval:(Row.E eid) src)
          end
          | Ast.Var_length (lo, hi) ->
            let etype = Option.map (Schema.edge_type_id schema) e.e_label in
            let emit_endpoint v hops =
              accept_vertex ~edge_rval:(Row.Prim (Value.Int hops)) v
            in
            (match ctx.mode with
            | Distinct_endpoints ->
              var_length_endpoints ?budget adj ~src:cur ~lo ~hi ~etype ~dir:e.e_dir
                emit_endpoint
            | All_trails ->
              var_length_trails ?budget adj ~src:cur ~lo ~hi ~etype ~dir:e.e_dir emit_endpoint))
      and bind_edge row (e : Ast.edge_pat) edge_rval k =
        match (e.e_var, edge_rval) with
        | Some name, Some rv ->
          let i = Hashtbl.find slots.index name in
          let row' = Array.copy row in
          row'.(i) <- rv;
          k row'
        | _ -> k row
      in
      fun row (v : int) ->
        (* Scan checkpoint: one step per candidate start vertex,
           whether or not it binds. *)
        Budget.step budget Budget.Execute;
        if label_ok g p.p_start v then begin
          let proceed row =
            tally 0;
            steps row v p.p_steps
          in
          match p.p_start.n_var with
          | Some name ->
            let i = Hashtbl.find slots.index name in
            if is_bound row.(i) then begin
              if Row.rval_equal row.(i) (Row.V v) then proceed row
            end
            else begin
              let row' = Array.copy row in
              row'.(i) <- Row.V v;
              proceed row'
            end
          | None -> proceed row
        end
    in
    let out = ref [] in
    let emit row =
      Budget.add_rows budget Budget.Execute 1;
      out := row :: !out
    in
    let start = make_start ~emit ~tally in
    (* Unbound start scans over enough candidates fan out over the
       pool as work-stealing morsels: each morsel runs the pipeline
       for its candidate subrange into a private row buffer and tally
       array, then the caller merges buffers in morsel order — the
       merged row sequence (and every tally total) is exactly the
       sequential one, at any width and any grain. Per-candidate
       budget checkpoints run inside the morsels against the shared
       (racy-but-monotone) budget, and var-length expansions borrow
       each worker's own domain-local scratch. *)
    let par_pool =
      match ctx.pool with
      | Some pl when Kaskade_util.Pool.effective_workers pl > 1 -> Some pl
      | _ -> None
    in
    let scan_candidates row ~n candidate =
      match par_pool with
      | Some pl when n >= parallel_scan_threshold ->
        let parts =
          Kaskade_util.Pool.map_morsels pl ~n (fun ~lo ~hi ->
              let m_out = ref [] in
              let m_counts = Array.make (n_steps + 1) 0 in
              let m_emit r =
                Budget.add_rows budget Budget.Execute 1;
                m_out := r :: !m_out
              in
              let m_start =
                make_start ~emit:m_emit ~tally:(fun i -> m_counts.(i) <- m_counts.(i) + 1)
              in
              for i = lo to hi - 1 do
                m_start row (candidate i)
              done;
              (!m_out, m_counts))
        in
        Array.iter
          (fun (rows_m, counts_m) ->
            Array.iteri
              (fun i c ->
                for _ = 1 to c do
                  tally i
                done)
              counts_m;
            (* Morsel buffers are in reverse emit order; replaying each
               backwards onto the (also reversed) accumulator keeps the
               final [List.rev !out] in sequential order. *)
            List.iter (fun r -> out := r :: !out) (List.rev rows_m))
          parts
      | _ ->
        for i = 0 to n - 1 do
          start row (candidate i)
        done
    in
    List.iter
      (fun row ->
        (* If the start variable is already bound, resume from it
           directly instead of scanning. *)
        let bound_start =
          match p.p_start.n_var with
          | Some name -> begin
            match env_of_row row name with Row.V v -> Some v | _ -> None
          end
          | None -> None
        in
        (* An equality predicate on the start variable turns the scan
           into an index probe. *)
        let index_probe =
          match (bound_start, p.p_start.n_var, mb.m_where) with
          | None, Some var, Some cond -> equality_probe cond var
          | _ -> None
        in
        match (bound_start, index_probe) with
        | Some v, _ -> start row v
        | None, Some (prop, value) ->
          List.iter (start row) (Vindex.lookup (Lazy.force ctx.indexes) ~prop value)
        | None, None -> begin
          match p.p_start.n_label with
          | Some l ->
            let cands = Graph.vertices_of_type_name g l in
            scan_candidates row ~n:(Array.length cands) (fun i -> cands.(i))
          | None -> scan_candidates row ~n:(Graph.n_vertices g) (fun i -> i)
        end)
      rows;
    List.rev !out
  in
  let t_match = match prof with None -> 0.0 | Some _ -> Trace.now_s () in
  let n_patterns = List.length mb.patterns in
  let child_prof i =
    match prof with
    | Some (m : Explain.node) -> List.nth_opt m.Explain.children i
    | None -> None
  in
  let rows =
    let idx = ref (-1) in
    List.fold_left
      (fun rows p ->
        Stdlib.incr idx;
        match child_prof !idx with
        | None -> expand_pattern rows p
        | Some pnode ->
          let n_steps = List.length p.Ast.p_steps in
          let counts = Array.make (n_steps + 1) 0 in
          let t0 = Trace.now_s () in
          let out = expand_pattern ~tally:(fun i -> counts.(i) <- counts.(i) + 1) rows p in
          Explain.set_time pnode (Trace.now_s () -. t0);
          Explain.set_actual pnode (List.length out);
          (* Children are listed downstream-first (step n, .., step 1,
             scan) while [counts] is pipeline-ordered (0 = scan). *)
          List.iteri
            (fun i (child : Explain.node) ->
              if i <= n_steps then Explain.set_actual child counts.(n_steps - i))
            pnode.Explain.children;
          out)
      initial mb.patterns
  in
  let rows =
    match mb.m_where with
    | None -> rows
    | Some cond ->
      let rows = List.filter (fun row -> truthy (eval_expr g (env_of_row row) cond)) rows in
      (match child_prof n_patterns with
      | Some fnode -> Explain.set_actual fnode (List.length rows)
      | None -> ());
      rows
  in
  let cols = Array.of_list (List.mapi Ast.item_name mb.returns) in
  let project row =
    Array.of_list (List.map (fun (it : Ast.select_item) -> eval_expr g (env_of_row row) it.item_expr) mb.returns)
  in
  let table = { Row.cols; rows = List.map project rows } in
  (match prof with
  | Some m ->
    Explain.set_actual m (List.length table.Row.rows);
    Explain.set_time m (Trace.now_s () -. t_match)
  | None -> ());
  table

(* ------------------------------------------------------------------ *)
(* SELECT blocks                                                       *)

let rec eval_agg g rows env_of_row (e : Ast.expr) : Row.rval =
  match e with
  | Ast.Count_star -> Row.Prim (Value.Int (List.length rows))
  | Ast.Agg (kind, inner) -> begin
    let values =
      List.filter_map
        (fun row ->
          match eval_expr g (env_of_row row) inner with
          | Row.Prim Value.Null -> None
          | v -> Some v)
        rows
    in
    match kind with
    | Ast.Count -> Row.Prim (Value.Int (List.length values))
    | Ast.Sum ->
      Row.Prim
        (List.fold_left
           (fun acc v ->
             match v with
             | Row.Prim p -> Value.add acc p
             | _ -> invalid_arg "SUM over a graph entity")
           (Value.Int 0) values)
    | Ast.Avg -> begin
      let total =
        List.fold_left
          (fun acc v ->
            match v with
            | Row.Prim p -> begin
              match Value.to_float p with Some f -> acc +. f | None -> acc
            end
            | _ -> invalid_arg "AVG over a graph entity")
          0.0 values
      in
      match values with
      | [] -> Row.Prim Value.Null
      | _ -> Row.Prim (Value.Float (total /. float_of_int (List.length values)))
    end
    | Ast.Min -> begin
      match values with
      | [] -> Row.Prim Value.Null
      | first :: rest ->
        List.fold_left (fun acc v -> if Row.rval_compare v acc < 0 then v else acc) first rest
    end
    | Ast.Max -> begin
      match values with
      | [] -> Row.Prim Value.Null
      | first :: rest ->
        List.fold_left (fun acc v -> if Row.rval_compare v acc > 0 then v else acc) first rest
    end
  end
  | Ast.Binop (op, a, b) when Ast.has_aggregate e ->
    let va = eval_agg g rows env_of_row a and vb = eval_agg g rows env_of_row b in
    combine_binop op va vb
  | Ast.Unop (Ast.Neg, inner) when Ast.has_aggregate e -> begin
    match eval_agg g rows env_of_row inner with
    | Row.Prim (Value.Int n) -> Row.Prim (Value.Int (-n))
    | Row.Prim (Value.Float f) -> Row.Prim (Value.Float (-.f))
    | _ -> Row.Prim Value.Null
  end
  | _ -> begin
    (* Non-aggregate expression inside an aggregating projection:
       evaluate on a representative row (SQL-style, the group key). *)
    match rows with
    | [] -> Row.Prim Value.Null
    | row :: _ -> eval_expr g (env_of_row row) e
  end

and combine_binop op va vb =
  let prim f =
    match (va, vb) with
    | Row.Prim x, Row.Prim y -> Row.Prim (f x y)
    | _ -> invalid_arg "Executor: arithmetic on a graph entity"
  in
  match op with
  | Ast.Add -> prim Value.add
  | Ast.Sub -> prim Value.sub
  | Ast.Mul -> prim Value.mul
  | Ast.Div -> prim Value.div
  | Ast.Eq -> Row.Prim (Value.Bool (Row.rval_equal va vb))
  | Ast.Ne -> Row.Prim (Value.Bool (not (Row.rval_equal va vb)))
  | Ast.Lt -> Row.Prim (Value.Bool (Row.rval_compare va vb < 0))
  | Ast.Le -> Row.Prim (Value.Bool (Row.rval_compare va vb <= 0))
  | Ast.Gt -> Row.Prim (Value.Bool (Row.rval_compare va vb > 0))
  | Ast.Ge -> Row.Prim (Value.Bool (Row.rval_compare va vb >= 0))
  | Ast.And | Ast.Or -> invalid_arg "Executor: boolean combination of aggregates"

let rec eval_select ?prof ?budget ctx (sb : Ast.select_block) : Row.table =
  let g = ctx.g in
  (* Peel the stage chain Cost.select_plan built — Limit over Sort
     over Distinct over Aggregate/Project over Filter over the source
     — mirroring its construction conditions, so each stage below can
     record its actual output cardinality on the right node. *)
  let peel cond n =
    if not cond then (None, n)
    else
      match n with
      | Some (node : Explain.node) -> (Some node, List.nth_opt node.Explain.children 0)
      | None -> (None, None)
  in
  let t_select = match prof with None -> 0.0 | Some _ -> Trace.now_s () in
  let limit_p, n = peel (sb.limit <> None) prof in
  let sort_p, n = peel (sb.order_by <> []) n in
  let dist_p, n = peel sb.distinct n in
  let proj_p, n = peel true n in
  let filt_p, src_p = peel (sb.s_where <> None) n in
  let source =
    match sb.from with
    | Ast.From_match mb -> eval_match ?prof:src_p ?budget ctx mb
    | Ast.From_select inner -> eval_select ?prof:src_p ?budget ctx inner
  in
  let env_of_row (row : Row.rval array) name =
    match Row.col_index source name with
    | i -> row.(i)
    | exception Not_found -> Row.Prim Value.Null
  in
  let rows =
    match sb.s_where with
    | None -> source.rows
    | Some cond ->
      let rows = List.filter (fun row -> truthy (eval_expr g (env_of_row row) cond)) source.rows in
      Option.iter (fun n -> Explain.set_actual n (List.length rows)) filt_p;
      rows
  in
  let any_agg = List.exists (fun (it : Ast.select_item) -> Ast.has_aggregate it.item_expr) sb.items in
  let cols = Array.of_list (List.mapi Ast.item_name sb.items) in
  (* ORDER BY / LIMIT run over the projected output (aliases in
     scope); applied by [finish] below. *)
  let finish (result : Row.table) =
    Option.iter (fun n -> Explain.set_actual n (List.length result.Row.rows)) proj_p;
    let rows = result.Row.rows in
    (* DISTINCT before ORDER BY / LIMIT, SQL-style. *)
    let rows =
      if not sb.Ast.distinct then rows
      else begin
        let seen = Hashtbl.create 64 in
        let rows =
          List.filter
            (fun row ->
              let key = Array.to_list row in
              if Hashtbl.mem seen key then false
              else begin
                Hashtbl.add seen key ();
                true
              end)
            rows
        in
        Option.iter (fun n -> Explain.set_actual n (List.length rows)) dist_p;
        rows
      end
    in
    let rows =
      if sb.order_by = [] then rows
      else begin
        let out_env (row : Row.rval array) name =
          match Row.col_index result name with
          | i -> row.(i)
          | exception Not_found -> Row.Prim Value.Null
        in
        let key row = List.map (fun (e, _) -> eval_expr g (out_env row) e) sb.order_by in
        let dirs = List.map snd sb.order_by in
        let cmp a b =
          let rec go ks dirs =
            match (ks, dirs) with
            | (ka, kb) :: krest, dir :: drest ->
              let c = Row.rval_compare ka kb in
              if c <> 0 then (match dir with Ast.Asc -> c | Ast.Desc -> -c) else go krest drest
            | _ -> 0
          in
          go (List.combine (key a) (key b)) dirs
        in
        let rows = List.stable_sort cmp rows in
        Option.iter (fun n -> Explain.set_actual n (List.length rows)) sort_p;
        rows
      end
    in
    let rows =
      match sb.limit with
      | Some n ->
        let rec take k = function [] -> [] | x :: rest when k > 0 -> x :: take (k - 1) rest | _ -> [] in
        let rows = take n rows in
        Option.iter (fun n -> Explain.set_actual n (List.length rows)) limit_p;
        rows
      | None -> rows
    in
    Option.iter (fun (n : Explain.node) -> Explain.set_time n (Trace.now_s () -. t_select)) prof;
    { result with Row.rows }
  in
  if sb.group_by = [] && not any_agg then begin
    let project row =
      Array.of_list
        (List.map (fun (it : Ast.select_item) -> eval_expr g (env_of_row row) it.item_expr) sb.items)
    in
    finish { Row.cols; rows = List.map project rows }
  end
  else begin
    (* Hash grouping on the GROUP BY key (all rows in one group when
       the key list is empty). *)
    let groups : (Row.rval list, Row.rval array list) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    (* SQL semantics: an aggregate with no GROUP BY always produces
       exactly one row, even over empty input (count 0, null avg). *)
    if sb.group_by = [] then begin
      order := [ [] ];
      Hashtbl.add groups [] []
    end;
    List.iter
      (fun row ->
        let key = List.map (fun e -> eval_expr g (env_of_row row) e) sb.group_by in
        (match Hashtbl.find_opt groups key with
        | Some existing -> Hashtbl.replace groups key (row :: existing)
        | None ->
          order := key :: !order;
          Hashtbl.add groups key [ row ]))
      rows;
    let result_rows =
      List.rev_map
        (fun key ->
          let members = List.rev (Hashtbl.find groups key) in
          Array.of_list
            (List.map (fun (it : Ast.select_item) -> eval_agg g members env_of_row it.item_expr) sb.items))
        !order
    in
    finish { Row.cols; rows = result_rows }
  end

(* ------------------------------------------------------------------ *)
(* CALL procedures                                                     *)

let eval_call ctx (c : Ast.proc_call) : result =
  match (c.proc, c.proc_args) with
  | "algo.labelPropagation", [ Value.Int passes ] ->
    let labels = Kaskade_algo.Label_prop.run ctx.g ~passes in
    ctx.communities <- Some labels;
    Affected (Graph.n_vertices ctx.g)
  | "algo.largestCommunity", [ Value.Str type_name ] -> begin
    match ctx.communities with
    | None -> invalid_arg "algo.largestCommunity: run algo.labelPropagation first"
    | Some labels ->
      let count_type =
        if type_name = "" then None
        else Some (Schema.vertex_type_id (Graph.schema ctx.g) type_name)
      in
      let label, members =
        Kaskade_algo.Label_prop.largest_community ctx.g ~labels ?count_type ()
      in
      Table
        {
          Row.cols = [| "vertex"; "community" |];
          rows = List.map (fun v -> [| Row.V v; Row.Prim (Value.Int label) |]) members;
        }
  end
  | name, _ -> invalid_arg ("Executor: unknown procedure or bad arguments: " ^ name)

(* Semantic check + planner pass — the query that will actually
   execute (and that EXPLAIN must therefore describe). *)
let prepare ctx (q : Ast.t) =
  match q with
  | Ast.Call _ -> q
  | Ast.Match_only _ | Ast.Select _ ->
    ignore (Analyze.check (Graph.schema ctx.g) q);
    if ctx.planner then Planner.optimize (Lazy.force ctx.stats) (Graph.schema ctx.g) q else q

let exec_prepared ?prof ?budget ctx (q : Ast.t) : result =
  match q with
  | Ast.Call c -> eval_call ctx c
  | Ast.Match_only mb -> Table (eval_match ?prof ?budget ctx mb)
  | Ast.Select sb -> Table (eval_select ?prof ?budget ctx sb)

let account result =
  Metrics.incr m_queries_run;
  (match result with
  | Table t -> Metrics.incr ~by:(Row.n_rows t) m_rows_produced
  | Affected _ -> ());
  result

let run ?budget ctx (q : Ast.t) : result =
  Trace.with_span "executor.run" @@ fun () ->
  sync ctx;
  (* Entry checkpoint: an already-exhausted budget (0ms deadline) must
     fire before any scan starts, and fault injection can force a
     timeout here. *)
  Budget.check budget Budget.Execute;
  Budget.fault_point Budget.Execute ~site:"executor.run";
  account (exec_prepared ?budget ctx (prepare ctx q))

let explain ctx (q : Ast.t) =
  sync ctx;
  let q = prepare ctx q in
  Cost.plan (Lazy.force ctx.stats) (Graph.schema ctx.g) q

let run_explained ?(profile = false) ?budget ctx (q : Ast.t) =
  Trace.with_span "executor.run" @@ fun () ->
  sync ctx;
  Budget.check budget Budget.Execute;
  Budget.fault_point Budget.Execute ~site:"executor.run";
  let q = prepare ctx q in
  let plan = Cost.plan (Lazy.force ctx.stats) (Graph.schema ctx.g) q in
  let prof = if profile then Some plan else None in
  let t0 = Trace.now_s () in
  let result = account (exec_prepared ?prof ?budget ctx q) in
  (* MATCH/SELECT roots annotate themselves; CALL has no eval-side
     instrumentation, so fill its single node here. *)
  (if profile then
     match q with
     | Ast.Call _ ->
       Explain.set_time plan (Trace.now_s () -. t0);
       (match result with
       | Affected n -> Explain.set_actual plan n
       | Table t -> Explain.set_actual plan (Row.n_rows t))
     | Ast.Match_only _ | Ast.Select _ -> ());
  (result, plan)

let run_string ctx src = run ctx (Qparser.parse src)
