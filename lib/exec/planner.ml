open Kaskade_graph
open Kaskade_query

let nodes_of (p : Ast.pattern) = Array.of_list (p.p_start :: List.map snd p.p_steps)
let edges_of (p : Ast.pattern) = Array.of_list (List.map fst p.p_steps)

(* Scan cost of anchoring at a node: 0 when its variable is already
   bound by an earlier pattern; otherwise the label cardinality, or
   the full vertex count for unlabelled nodes. Also nudged by the
   fan-out of the first step taken from the anchor, so that between
   two same-label anchors the one whose outgoing expansion is cheaper
   wins. *)
let anchor_cost stats schema ~bound (nodes : Ast.node_pat array) i =
  let n = nodes.(i) in
  match n.Ast.n_var with
  | Some v when bound v -> 0.0
  | _ -> begin
    match n.Ast.n_label with
    | Some l -> begin
      match Schema.vertex_type_id schema l with
      | ty -> float_of_int (Gstats.summary_of_type stats ty).count
      | exception Not_found -> float_of_int (Gstats.total_vertices stats)
    end
    | None -> float_of_int (Gstats.total_vertices stats)
  end

let anchor_position stats schema ~bound (p : Ast.pattern) =
  let nodes = nodes_of p in
  let best = ref 0 and best_cost = ref infinity in
  Array.iteri
    (fun i _ ->
      let c = anchor_cost stats schema ~bound nodes i in
      if c < !best_cost then begin
        best_cost := c;
        best := i
      end)
    nodes;
  !best

let flip (e : Ast.edge_pat) =
  { e with Ast.e_dir = (match e.Ast.e_dir with Ast.Fwd -> Ast.Bwd | Ast.Bwd -> Ast.Fwd) }

(* Rebuild a pattern chain starting at node index [p]: the right half
   runs forward, the left half is emitted as a second pattern walking
   backwards from the anchor with flipped edge directions. Anonymous
   anchors cannot chain across patterns, so they get left alone. *)
let split_at_anchor (pat : Ast.pattern) anchor =
  let nodes = nodes_of pat and edges = edges_of pat in
  let n_edges = Array.length edges in
  if anchor = 0 then [ pat ]
  else begin
    let right =
      if anchor = n_edges then None
      else
        Some
          {
            Ast.p_start = nodes.(anchor);
            p_steps = List.init (n_edges - anchor) (fun i -> (edges.(anchor + i), nodes.(anchor + i + 1)));
          }
    in
    let left =
      {
        Ast.p_start = nodes.(anchor);
        p_steps = List.init anchor (fun i -> (flip edges.(anchor - i - 1), nodes.(anchor - i - 1)));
      }
    in
    match right with None -> [ left ] | Some r -> [ r; left ]
  end

let bound_vars_of (p : Ast.pattern) =
  let acc = ref [] in
  (match p.Ast.p_start.Ast.n_var with Some v -> acc := v :: !acc | None -> ());
  List.iter
    (fun ((e : Ast.edge_pat), (n : Ast.node_pat)) ->
      (match e.Ast.e_var with Some v -> acc := v :: !acc | None -> ());
      match n.Ast.n_var with Some v -> acc := v :: !acc | None -> ())
    p.Ast.p_steps;
  !acc

let optimize_match stats schema (mb : Ast.match_block) =
  let bound = Hashtbl.create 16 in
  let is_bound v = Hashtbl.mem bound v in
  let patterns =
    List.concat_map
      (fun (p : Ast.pattern) ->
        let anchor = anchor_position stats schema ~bound:is_bound p in
        (* Splitting at an anonymous anchor would lose the join. *)
        let anchor =
          if anchor > 0 && (nodes_of p).(anchor).Ast.n_var = None then 0 else anchor
        in
        Kaskade_obs.Trace.add_attr "anchor"
          (Printf.sprintf "%s@%d"
             (Option.value (nodes_of p).(anchor).Ast.n_var ~default:"_")
             anchor);
        let out = split_at_anchor p anchor in
        List.iter (fun p' -> List.iter (fun v -> Hashtbl.replace bound v ()) (bound_vars_of p')) out;
        out)
      mb.Ast.patterns
  in
  { mb with Ast.patterns }

let optimize stats schema (q : Ast.t) =
  Kaskade_obs.Trace.with_span "planner.optimize" (fun () ->
      let rec map_source = function
        | Ast.From_match mb -> Ast.From_match (optimize_match stats schema mb)
        | Ast.From_select sb -> Ast.From_select { sb with Ast.from = map_source sb.Ast.from }
      in
      match q with
      | Ast.Select sb -> Ast.Select { sb with Ast.from = map_source sb.Ast.from }
      | Ast.Match_only mb -> Ast.Match_only (optimize_match stats schema mb)
      | Ast.Call _ -> q)
