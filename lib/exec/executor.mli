(** Query evaluation over a frozen graph — the execution-engine half
    of the Neo4j substitution. Evaluates MATCH pattern pipelines
    (typed scans, typed expands, variable-length expansion), WHERE
    filters, SELECT projections and GROUP BY aggregation, and CALL
    procedures (label propagation, largest community).

    Variable-length semantics: Cypher enumerates trails, whose count
    is exponential; what the paper's queries consume after GROUP BY is
    the set of distinct endpoints. The default
    {!Distinct_endpoints} mode therefore expands a [*lo..hi] edge by
    BFS and emits each reachable endpoint once (with its hop
    distance); {!All_trails} enumerates trails exactly and is intended
    for small graphs and ground-truth tests. *)

type mode = Distinct_endpoints | All_trails

type ctx
(** Execution context: graph, mode, and mutable analytics state
    (community labels written by Q7, read by Q8). *)

type result =
  | Table of Row.table
  | Affected of int  (** CALL procedures that update state report how
      many entities they touched. *)

val create :
  ?mode:mode ->
  ?planner:bool ->
  ?pool:Kaskade_util.Pool.t ->
  ?shard_policy:Kaskade_graph.Shard.policy ->
  ?shards:int ->
  Kaskade_graph.Graph.t ->
  ctx
(** [planner] (default false) runs [Planner.optimize] on every query
    before evaluation — same results, anchored at the most selective
    node. [pool] is forwarded to the lazily computed graph statistics
    ([Gstats.compute]); the facade plumbs one pool through
    materialization, statistics and refresh so parallelism is decided
    in one place.

    [shards] > 1 (default 1) routes every adjacency read — typed
    expands, untyped expands, variable-length BFS/DFS — through a
    {!Kaskade_graph.Shard} partitioning of the graph under
    [shard_policy] (default [Hash]), built lazily on first MATCH.
    Scan candidate enumeration stays in global vid order, so results,
    row ordering, PROFILE actuals and budget accounting are
    byte-identical to the single-CSR path at any shard count.
    [shards <= 1] is {e exactly} today's code path — no sharded
    structure is ever built. *)

val create_live :
  ?mode:mode ->
  ?planner:bool ->
  ?pool:Kaskade_util.Pool.t ->
  ?shard_policy:Kaskade_graph.Shard.policy ->
  ?shards:int ->
  Kaskade_graph.Graph.Overlay.t ->
  ctx
(** A context that reads {e through} the overlay: every entry point
    first checks [Graph.Overlay.version] and, when the overlay moved,
    swaps in a fresh snapshot ([Graph.Overlay.graph] — cached by the
    overlay, so clean overlays cost nothing) and invalidates derived
    caches (statistics, property indexes, community labels). Queries
    therefore always observe the latest applied batch. *)

val graph : ctx -> Kaskade_graph.Graph.t
(** The graph the next query will run against (the current overlay
    snapshot for live contexts). *)

val shards : ctx -> Kaskade_graph.Shard.t option
(** The sharded layer queries read through, when this context was
    created with [shards > 1] — [None] on the single-CSR path. Live
    contexts re-shard from the fresh snapshot after every overlay
    version change (lazily, on first use). *)

val mode : ctx -> mode

val run : ?budget:Kaskade_util.Budget.t -> ctx -> Kaskade_query.Ast.t -> result
(** Raises [Analyze.Semantic_error] on invalid queries and
    [Invalid_argument] on unknown CALL procedures.

    [budget] bounds the evaluation cooperatively: one
    [Kaskade_util.Budget.step] per scanned start vertex, per
    variable-length frontier expansion and per trail-DFS visit, one
    [add_rows] per binding row produced, and a forced deadline check
    before any work starts. An exceeded budget raises
    [Kaskade_util.Budget.Exhausted] with stage [Execute], leaving the
    context reusable. *)

val run_string : ctx -> string -> result
(** Parse then {!run}. *)

val explain : ctx -> Kaskade_query.Ast.t -> Kaskade_obs.Explain.node
(** The operator tree the executor would run for this query — after
    the semantic check and (when this context has the planner enabled)
    the anchor-choosing planner pass — annotated with the cost model's
    estimated per-operator cardinalities. Execution does not happen. *)

val run_explained :
  ?profile:bool ->
  ?budget:Kaskade_util.Budget.t ->
  ctx ->
  Kaskade_query.Ast.t ->
  result * Kaskade_obs.Explain.node
(** {!run} plus the plan of {!explain}. With [profile] (default
    false), the executor additionally fills each operator's actual
    output rows and per-pattern wall time into the returned tree.
    Profiling only observes — the result is identical to {!run}
    (property tested in [test_obs]). Within a pattern the scan/expand
    operators are fused into one pipeline: they report actual rows
    (successful bindings) but their wall time is accounted to the
    enclosing Pattern operator. Reported times are inclusive of child
    operators. *)

val communities : ctx -> int array option
(** Labels computed by the last [algo.labelPropagation] call. *)

val table_exn : result -> Row.table
(** Raises [Invalid_argument] when the result is not a table. *)

(** Supported CALL procedures:
    - [algo.labelPropagation(passes)] — synchronous label propagation;
      stores labels in the context; returns [Affected |V|].
    - [algo.largestCommunity(type_name)] — vertices of the largest
      community, sized by members of [type_name] (pass [""] to count
      all); returns a table [(vertex, label)]. *)
