open Kaskade_graph
open Kaskade_query

type estimate = { total_cost : float; match_rows : float }

(* Branching factor when stepping out of a node of (optional) type
   [label]: mean out-degree of that type, or the global mean. At least
   a small epsilon so costs stay monotone in path length. *)
let branching ?(deg_override = fun _ -> None) stats schema label =
  let overridden = match label with Some l -> deg_override l | None -> None in
  let d =
    match overridden with
    | Some d -> d
    | None ->
    match label with
    | Some l -> begin
      match Schema.vertex_type_id schema l with
      | ty -> Gstats.out_degree_mean stats ~vtype:ty
      | exception Not_found -> Gstats.global_out_degree_mean stats
    end
    | None -> Gstats.global_out_degree_mean stats
  in
  Stdlib.max d 0.01

(* Variable-length expansions are BFS whose per-level growth is the
   size-biased mean degree E(d^2)/E(d) — following an edge reaches a
   vertex with probability proportional to its degree, so hubs
   dominate the frontier on skewed graphs. Percentiles miss this
   entirely (95% of a power-law graph's vertices have tiny degrees
   while its hubs carry the walk). *)
let tail_branching ?(deg_override = fun _ -> None) stats schema label =
  let overridden = match label with Some l -> deg_override l | None -> None in
  let d =
    match overridden with
    | Some d -> d
    | None ->
    match label with
    | Some l -> begin
      match Schema.vertex_type_id schema l with
      | ty -> Gstats.out_degree_size_biased stats ~vtype:ty
      | exception Not_found -> Gstats.global_out_degree_size_biased stats
    end
    | None -> Gstats.global_out_degree_size_biased stats
  in
  Stdlib.max d 0.01

let scan_cardinality stats schema label =
  match label with
  | Some l -> begin
    match Schema.vertex_type_id schema l with
    | ty -> float_of_int (Gstats.summary_of_type stats ty).count
    | exception Not_found -> float_of_int (Gstats.total_vertices stats)
  end
  | None -> float_of_int (Gstats.total_vertices stats)

(* Top-level conjunctive equality [var.prop = literal] in a WHERE
   clause — the predicate shape an index probe can serve. Shared by
   the executor (to probe) and the plan builder (to display the access
   path the executor will pick). *)
let rec equality_probe (e : Ast.expr) var =
  match e with
  | Ast.Binop (Ast.Eq, Ast.Prop (v, p), Ast.Lit value) when v = var -> Some (p, value)
  | Ast.Binop (Ast.Eq, Ast.Lit value, Ast.Prop (v, p)) when v = var -> Some (p, value)
  | Ast.Binop (Ast.And, a, b) -> begin
    match equality_probe a var with Some _ as r -> r | None -> equality_probe b var
  end
  | _ -> None

(* [on_stage] reports the running cardinality after the start scan and
   after each expand step — the plan builder below turns those numbers
   into operator nodes, so estimates shown by EXPLAIN are by
   construction the ones the cost model priced. *)
let pattern_cost ?deg_override ?(on_stage = fun _ ~rows:_ -> ()) stats schema ~start_bound
    (p : Ast.pattern) =
  let cost = ref 0.0 in
  let rows = ref (if start_bound then 1.0 else scan_cardinality stats schema p.p_start.n_label) in
  cost := !cost +. !rows;
  on_stage `Scan ~rows:!rows;
  let cur_label = ref p.p_start.n_label in
  List.iter
    (fun ((e : Ast.edge_pat), (n : Ast.node_pat)) ->
      (match e.e_len with
      | Ast.Single ->
        let deg = branching ?deg_override stats schema !cur_label in
        rows := !rows *. deg
      | Ast.Var_length (lo, hi) ->
        (* First step leaves a uniform vertex (mean degree); later
           steps follow edges (size-biased degree). *)
        let mean_deg = branching ?deg_override stats schema !cur_label in
        let tail_deg = tail_branching ?deg_override stats schema !cur_label in
        let hi = Stdlib.min hi 16 in
        let fanout = ref 0.0 in
        let p = ref 1.0 in
        for h = 0 to hi do
          if h >= lo then fanout := !fanout +. !p;
          p := !p *. (if h = 0 then mean_deg else tail_deg)
        done;
        (* Distinct-endpoint expansion is a BFS whose work per row is
           bounded by the graph itself (vertices + edges). *)
        let cap =
          float_of_int (Stdlib.max 1 (Gstats.total_vertices stats + Gstats.total_edges stats))
        in
        rows := !rows *. Stdlib.max (Stdlib.min !fanout cap) 1.0);
      (* A label on the target vertex filters the expansion by the
         share of that type among all vertices. *)
      (match n.n_label with
      | Some l -> begin
        match Schema.vertex_type_id schema l with
        | ty ->
          let share =
            float_of_int (Gstats.summary_of_type stats ty).count
            /. float_of_int (Stdlib.max 1 (Gstats.total_vertices stats))
          in
          (* Typed schemas route edges to their range type, so a
             matching label is closer to a no-op filter; damp rather
             than multiply blindly. *)
          rows := !rows *. Stdlib.max share 0.5
        | exception Not_found -> ()
      end
      | None -> ());
      cost := !cost +. !rows;
      on_stage (`Step (e, n)) ~rows:!rows;
      cur_label := n.n_label)
    p.p_steps;
  (!cost, !rows)

let match_cost ?deg_override stats schema (mb : Ast.match_block) =
  (* Patterns chain through shared variables: after the first, a
     pattern whose start variable was bound by an earlier pattern
     resumes per-row instead of rescanning. *)
  let bound = Hashtbl.create 8 in
  let bind_pattern (p : Ast.pattern) =
    (match p.p_start.n_var with Some v -> Hashtbl.replace bound v () | None -> ());
    List.iter
      (fun ((_ : Ast.edge_pat), (n : Ast.node_pat)) ->
        match n.n_var with Some v -> Hashtbl.replace bound v () | None -> ())
      p.p_steps
  in
  let total_cost = ref 0.0 in
  let rows = ref 1.0 in
  List.iter
    (fun (p : Ast.pattern) ->
      let start_bound =
        match p.p_start.n_var with Some v -> Hashtbl.mem bound v | None -> false
      in
      let c, r = pattern_cost ?deg_override stats schema ~start_bound p in
      total_cost := !total_cost +. (!rows *. c);
      rows := !rows *. r;
      bind_pattern p)
    mb.patterns;
  (* WHERE + projection pass. *)
  total_cost := !total_cost +. !rows;
  (!total_cost, !rows)

let rec select_cost ?deg_override stats schema (sb : Ast.select_block) =
  let source_cost, source_rows =
    match sb.from with
    | Ast.From_match mb -> match_cost ?deg_override stats schema mb
    | Ast.From_select inner -> select_cost ?deg_override stats schema inner
  in
  (* Filter + group-by pass over the source rows. *)
  (source_cost +. source_rows, source_rows)

let estimate ?deg_override stats schema q =
  match q with
  | Ast.Match_only mb ->
    let c, r = match_cost ?deg_override stats schema mb in
    { total_cost = c; match_rows = r }
  | Ast.Select sb ->
    let c, r = select_cost ?deg_override stats schema sb in
    { total_cost = c; match_rows = r }
  | Ast.Call _ ->
    (* Analytics procedures scan the whole graph once per pass; treat
       as |V| + |E|. *)
    let n = float_of_int (Gstats.total_vertices stats) in
    let m = float_of_int (Gstats.total_edges stats) in
    { total_cost = n +. m; match_rows = n }

let eval_cost ?deg_override stats schema q = (estimate ?deg_override stats schema q).total_cost

(* ------------------------------------------------------------------ *)
(* Plan trees (EXPLAIN)                                                 *)

module Explain = Kaskade_obs.Explain

let node_str (n : Ast.node_pat) =
  Printf.sprintf "(%s%s)"
    (Option.value n.n_var ~default:"")
    (match n.n_label with Some l -> ":" ^ l | None -> "")

let edge_str (e : Ast.edge_pat) =
  let inner =
    Printf.sprintf "[%s%s%s]"
      (Option.value e.e_var ~default:"")
      (match e.e_label with Some l -> ":" ^ l | None -> "")
      (match e.e_len with
      | Ast.Single -> ""
      | Ast.Var_length (lo, hi) -> Printf.sprintf "*%d..%d" lo hi)
  in
  match e.e_dir with Ast.Fwd -> "-" ^ inner ^ "->" | Ast.Bwd -> "<-" ^ inner ^ "-"

let items_str items = String.concat ", " (List.mapi Ast.item_name items)

(* Access-path operator for a pattern's start node, mirroring the
   executor's choice exactly (bound variable > index probe > label
   scan > all-vertex scan). *)
let scan_op ~start_bound ~(mb_where : Ast.expr option) (start : Ast.node_pat) =
  if start_bound then ("Argument", "")
  else begin
    match (start.n_var, mb_where) with
    | Some var, Some cond when equality_probe cond var <> None ->
      let prop, value = Option.get (equality_probe cond var) in
      ( "NodeIndexSeek",
        Printf.sprintf " %s.%s = %s" var prop (Kaskade_graph.Value.to_string value) )
    | _ -> begin
      match start.n_label with
      | Some _ -> ("NodeByLabelScan", "")
      | None -> ("AllNodesScan", "")
    end
  end

let match_plan ?deg_override stats schema (mb : Ast.match_block) =
  let bound = Hashtbl.create 8 in
  let bind_pattern (p : Ast.pattern) =
    (match p.p_start.n_var with Some v -> Hashtbl.replace bound v () | None -> ());
    List.iter
      (fun ((_ : Ast.edge_pat), (n : Ast.node_pat)) ->
        match n.n_var with Some v -> Hashtbl.replace bound v () | None -> ())
      p.p_steps
  in
  let rows = ref 1.0 in
  let pattern_nodes =
    List.map
      (fun (p : Ast.pattern) ->
        let start_bound =
          match p.p_start.n_var with Some v -> Hashtbl.mem bound v | None -> false
        in
        let rows_in = !rows in
        let stages = ref [] in
        let _, r =
          pattern_cost ?deg_override
            ~on_stage:(fun s ~rows -> stages := (s, rows) :: !stages)
            stats schema ~start_bound p
        in
        rows := !rows *. r;
        bind_pattern p;
        let children =
          List.rev_map
            (fun (stage, stage_rows) ->
              let est_rows = rows_in *. stage_rows in
              match stage with
              | `Scan ->
                let op, extra = scan_op ~start_bound ~mb_where:mb.m_where p.p_start in
                Explain.node op ~detail:(node_str p.p_start ^ extra) ~est_rows []
              | `Step ((e : Ast.edge_pat), (n : Ast.node_pat)) ->
                let op =
                  match e.e_len with Ast.Single -> "Expand" | Ast.Var_length _ -> "VarExpand"
                in
                Explain.node op ~detail:(edge_str e ^ node_str n) ~est_rows [])
            !stages
          |> List.rev
        in
        Explain.node "Pattern" ~detail:(Kaskade_query.Pretty.pattern_to_string p) ~est_rows:!rows
          children)
      mb.patterns
  in
  (* WHERE selectivity is not modelled (the cost model charges it as a
     pass); the estimate carried over is an upper bound. *)
  let filter_nodes =
    match mb.m_where with
    | None -> []
    | Some cond -> [ Explain.node "Filter" ~detail:(Ast.expr_to_string cond) ~est_rows:!rows [] ]
  in
  ( Explain.node "Match" ~detail:("RETURN " ^ items_str mb.returns) ~est_rows:!rows
      (pattern_nodes @ filter_nodes),
    !rows )

let rec select_plan ?deg_override stats schema (sb : Ast.select_block) =
  let source, rows =
    match sb.from with
    | Ast.From_match mb -> match_plan ?deg_override stats schema mb
    | Ast.From_select inner -> select_plan ?deg_override stats schema inner
  in
  let n =
    match sb.s_where with
    | None -> source
    | Some cond -> Explain.node "Filter" ~detail:(Ast.expr_to_string cond) ~est_rows:rows [ source ]
  in
  let any_agg = List.exists (fun (it : Ast.select_item) -> Ast.has_aggregate it.item_expr) sb.items in
  let n, rows =
    if sb.group_by <> [] || any_agg then begin
      let est = if sb.group_by = [] then 1.0 else rows in
      let detail =
        items_str sb.items
        ^
        if sb.group_by = [] then ""
        else " GROUP BY " ^ String.concat ", " (List.map Ast.expr_to_string sb.group_by)
      in
      (Explain.node "Aggregate" ~detail ~est_rows:est [ n ], est)
    end
    else (Explain.node "Project" ~detail:(items_str sb.items) ~est_rows:rows [ n ], rows)
  in
  let n = if sb.distinct then Explain.node "Distinct" ~est_rows:rows [ n ] else n in
  let n =
    if sb.order_by = [] then n
    else
      Explain.node "Sort"
        ~detail:
          (String.concat ", "
             (List.map
                (fun (e, dir) ->
                  Ast.expr_to_string e ^ match dir with Ast.Asc -> " ASC" | Ast.Desc -> " DESC")
                sb.order_by))
        ~est_rows:rows [ n ]
  in
  match sb.limit with
  | Some k ->
    let est = Stdlib.min rows (float_of_int k) in
    (Explain.node "Limit" ~detail:(string_of_int k) ~est_rows:est [ n ], est)
  | None -> (n, rows)

let plan ?deg_override stats schema (q : Ast.t) =
  match q with
  | Ast.Match_only mb -> fst (match_plan ?deg_override stats schema mb)
  | Ast.Select sb -> fst (select_plan ?deg_override stats schema sb)
  | Ast.Call c ->
    let { match_rows; _ } = estimate ?deg_override stats schema q in
    Explain.node "Procedure"
      ~detail:
        (c.proc ^ "("
        ^ String.concat ", " (List.map Kaskade_graph.Value.to_string c.proc_args)
        ^ ")")
      ~est_rows:match_rows []
