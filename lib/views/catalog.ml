open Kaskade_graph

type freshness = Fresh | Stale of Graph.Overlay.op list | Rebuilding

let freshness_label = function
  | Fresh -> "fresh"
  | Stale ops -> Printf.sprintf "stale(%d ops)" (List.length ops)
  | Rebuilding -> "rebuilding"

let pp_freshness fmt f = Format.pp_print_string fmt (freshness_label f)

type entry = {
  materialized : Materialize.materialized;
  size_edges : int;
  size_vertices : int;
  mutable freshness : freshness;
}

type t = { entries : (string, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 16 }

let add t (m : Materialize.materialized) =
  let entry =
    {
      materialized = m;
      size_edges = Graph.n_edges m.graph;
      size_vertices = Graph.n_vertices m.graph;
      freshness = Fresh;
    }
  in
  Hashtbl.replace t.entries (View.name m.view) entry

let find_by_name t name = Hashtbl.find_opt t.entries name
let find t view = find_by_name t (View.name view)
let mem t view = Hashtbl.mem t.entries (View.name view)

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> View.compare a.materialized.view b.materialized.view)

let total_size_edges t = Hashtbl.fold (fun _ e acc -> acc + e.size_edges) t.entries 0

let remove t view = Hashtbl.remove t.entries (View.name view)

let mark_stale t ops =
  if ops <> [] then
    Hashtbl.iter
      (fun name e ->
        match e.freshness with
        | Fresh -> e.freshness <- Stale ops
        | Stale prior -> e.freshness <- Stale (prior @ ops)
        | Rebuilding ->
          invalid_arg
            (Printf.sprintf "Catalog.mark_stale: view %s has a refresh in flight" name))
      t.entries

let begin_refresh e =
  match e.freshness with
  | Fresh -> []
  | Stale ops ->
    e.freshness <- Rebuilding;
    ops
  | Rebuilding -> invalid_arg "Catalog.begin_refresh: already rebuilding"

let abort_refresh e ops =
  match e.freshness with
  | Rebuilding -> e.freshness <- Stale ops
  | f ->
    invalid_arg
      (Printf.sprintf "Catalog.abort_refresh: view %s is %s, not rebuilding"
         (View.name e.materialized.view) (freshness_label f))

let finish_refresh t e (m : Materialize.materialized) =
  let name = View.name e.materialized.view in
  (match Hashtbl.find_opt t.entries name with
  | Some cur when cur == e -> ()
  | _ -> invalid_arg ("Catalog.finish_refresh: entry not in catalog: " ^ name));
  Hashtbl.replace t.entries name
    {
      materialized = m;
      size_edges = Graph.n_edges m.graph;
      size_vertices = Graph.n_vertices m.graph;
      freshness = Fresh;
    }

let n_stale t =
  Hashtbl.fold (fun _ e acc -> match e.freshness with Fresh -> acc | _ -> acc + 1) t.entries 0

let stale t = entries t |> List.filter (fun e -> e.freshness <> Fresh)
