(** Incremental view maintenance — the extension the paper defers to
    its lineage (Zhuge & Garcia-Molina, ICDE'98; Szárnyas's IVM survey
    in PAPERS.md): absorb a {e batch} of base-graph updates into a
    materialized view without re-running the view's traversals over
    the whole graph.

    The entry points take the base graph {b after} the batch has been
    applied (i.e. [Graph.Overlay.graph] of the mutated overlay) plus
    the op list that got it there, and produce a refreshed
    [Materialize.materialized] equal to re-materializing from scratch:

    - {b k-hop connectors} (any k >= 1): the only (src, dst) pairs
      whose exact-k path set can change are those whose source reaches
      a changed edge's tail within k-1 backward hops — on the {e union}
      of the old and new graphs, so paths that existed only before a
      delete are covered. Each affected source's exact-k reach is
      recomputed and diffed against the view, yielding an explicit
      {!delta}. O(affected region), not O(graph).
    - {b filter summarizers} (vertex/edge inclusion/removal): updates
      map 1:1 through the filter. Because a delete removes the first
      live matching instance in eid order and [Subgraph.restrict]
      preserves eid order, the refreshed view is {e identical} — edge
      order and properties included — to a full re-materialization.
    - {b ego aggregators}: only vertices within k undirected hops of a
      changed edge's endpoints (again on the union graph) can see
      their neighbourhood aggregate change; everyone else's stored
      value is reused.
    - everything else (vertex/subgraph aggregators, closure
      connectors, path-count-carrying connectors) falls back to a
      {b flagged full rebuild} — the strategy says so, and the caller
      can surface it (EXPLAIN, metrics).

    Connector maintenance assumes the catalog's standard
    materialization flags (deduped pairs, no path counts); a view
    carrying a [paths] edge property is rebuilt instead. *)

type delta = {
  added : (int * int) list;
      (** Connector pairs to create, as (src, dst) in {e base-graph}
          ids, sorted; deduplicated against the view. *)
  removed : (int * int) list;
      (** Connector pairs whose last supporting path died, same
          encoding. (Formerly smuggled through [added] by
          [delta_of_delete] — the record is now explicit.) *)
}

(** How a refresh was (or would be) performed. *)
type strategy =
  | Connector_delta of delta  (** Pair-diff apply on a k-hop connector. *)
  | Filter_delta of { kept_inserts : int; kept_deletes : int }
      (** Ops passed through a vertex/edge filter; counts are the ops
          that survived the filter. *)
  | Ego_recompute of { recomputed : int }
      (** Ego aggregates recomputed for the affected vertices only. *)
  | Full_rebuild of { reason : string }
      (** The delta is not expressible; re-materialized from scratch. *)

val incremental : strategy -> bool
(** [false] exactly for {!Full_rebuild}. *)

val describe_strategy : strategy -> string
(** One-line human-readable form, e.g.
    ["delta(+3/-1 pairs)"] or ["rebuild: closure connector"]. *)

val connector_delta :
  Kaskade_graph.Graph.t ->
  view:Materialize.materialized ->
  ops:Kaskade_graph.Graph.Overlay.op list ->
  delta
(** [connector_delta base_after ~view ~ops] — the explicit pair delta
    for a k-hop connector view. Raises [Invalid_argument] when [view]
    is not a k-hop connector. *)

val plan :
  Kaskade_graph.Graph.t ->
  view:Materialize.materialized ->
  ops:Kaskade_graph.Graph.Overlay.op list ->
  strategy
(** The strategy {!refresh} would use, without building anything
    (connector planning still runs the affected-region traversals). *)

val refresh :
  ?pool:Kaskade_util.Pool.t ->
  ?budget:Kaskade_util.Budget.t ->
  ?shards:Kaskade_graph.Shard.t ->
  Kaskade_graph.Graph.t ->
  view:Materialize.materialized ->
  ops:Kaskade_graph.Graph.Overlay.op list ->
  Materialize.materialized * strategy
(** [refresh ?pool ?budget base_after ~view ~ops] — the refreshed view
    plus the strategy used. Result invariant (property tested): the
    returned view is result-identical to
    [Materialize.materialize base_after view.view] — same vertex set,
    same edge multiset, same properties; byte-identical for filter
    summarizers and ego aggregators. [pool] fans out the ego
    recomputation sweeps and is forwarded to [Materialize.materialize]
    on the rebuild path; [shards] (a partitioning of [base_after])
    likewise routes a full rebuild's traversals through the sharded
    CSR without changing a byte of the result.

    [budget] is checked before any work (stage [Refresh]); the
    full-rebuild path forwards it to [Materialize.materialize] (which
    checkpoints per source traversal, stage [Materialize]) and the
    incremental paths charge their delta size afterwards. This
    function is the ["maintain.refresh"] fault-injection site: an
    armed fault makes it raise before touching the view, so a failed
    refresh never publishes a half-built graph. *)
