(** Registry of materialized views over one base graph — what the
    paper's execution engine consults during view-based query
    rewriting (§V-C: "pruning those it has not materialized") —
    extended with the per-entry {e freshness} state machine that makes
    the catalog safe under base-graph updates (MV4PG's
    staleness-tracked catalog, PAPERS.md).

    Freshness lattice: [Fresh] --(updates)--> [Stale ops]
    --(refresh starts)--> [Rebuilding] --(refresh lands)--> [Fresh].
    Updates arriving while [Stale] append to the pending delta;
    updates arriving while [Rebuilding] are a caller error (the facade
    serializes refreshes against mutations). The planner must treat
    anything other than [Fresh] as unusable for answering queries. *)

type freshness =
  | Fresh  (** Matches the current base graph; safe to answer from. *)
  | Stale of Kaskade_graph.Graph.Overlay.op list
      (** Base has moved; the payload is the op delta (oldest first)
          the view has not absorbed. *)
  | Rebuilding
      (** A refresh is in flight; the view graph is the pre-delta one. *)

val pp_freshness : Format.formatter -> freshness -> unit
(** ["fresh"], ["stale(<n> ops)"] or ["rebuilding"]. *)

val freshness_label : freshness -> string

type entry = {
  materialized : Materialize.materialized;
  size_edges : int;
  size_vertices : int;
  mutable freshness : freshness;
}

type t

val create : unit -> t

val add : t -> Materialize.materialized -> unit
(** Registers the view as [Fresh]. Replaces any previous entry for the
    same view name. *)

val find : t -> View.t -> entry option
val find_by_name : t -> string -> entry option
val mem : t -> View.t -> bool
val entries : t -> entry list
(** Sorted by view name. *)

val total_size_edges : t -> int
val remove : t -> View.t -> unit

(** {2 Freshness transitions} *)

val mark_stale : t -> Kaskade_graph.Graph.Overlay.op list -> unit
(** Record a base-graph delta against {e every} entry: [Fresh] becomes
    [Stale ops]; [Stale prior] becomes [Stale (prior @ ops)]. Raises
    [Invalid_argument] if any entry is [Rebuilding]. No-op on [[]]. *)

val begin_refresh : entry -> Kaskade_graph.Graph.Overlay.op list
(** [Stale ops -> Rebuilding], returning the pending delta ([[]] when
    the entry was already [Fresh] — the caller can skip the work).
    Raises [Invalid_argument] when already [Rebuilding]. *)

val abort_refresh : entry -> Kaskade_graph.Graph.Overlay.op list -> unit
(** [Rebuilding -> Stale ops]: a refresh failed (crash, fault
    injection, budget exhaustion); restore the pending delta so the
    entry can be refreshed again later — without this transition a
    failed refresh would wedge the catalog ({!mark_stale} refuses
    [Rebuilding] entries). Raises [Invalid_argument] unless the entry
    is [Rebuilding]. *)

val finish_refresh : t -> entry -> Materialize.materialized -> unit
(** Install the refreshed materialization and return to [Fresh]
    (whatever the previous state). Sizes are recomputed. *)

val n_stale : t -> int
(** Entries whose freshness is not [Fresh]. *)

val stale : t -> entry list
(** The non-[Fresh] entries, sorted by view name. *)
