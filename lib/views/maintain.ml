open Kaskade_graph
module Budget = Kaskade_util.Budget
module Pool = Kaskade_util.Pool
module Scratch = Kaskade_util.Scratch
module Int_vec = Kaskade_util.Int_vec
module Overlay = Graph.Overlay

type delta = { added : (int * int) list; removed : (int * int) list }

type strategy =
  | Connector_delta of delta
  | Filter_delta of { kept_inserts : int; kept_deletes : int }
  | Ego_recompute of { recomputed : int }
  | Full_rebuild of { reason : string }

let incremental = function Full_rebuild _ -> false | _ -> true

let describe_strategy = function
  | Connector_delta d ->
    Printf.sprintf "delta(+%d/-%d pairs)" (List.length d.added) (List.length d.removed)
  | Filter_delta { kept_inserts; kept_deletes } ->
    Printf.sprintf "delta(+%d/-%d edges)" kept_inserts kept_deletes
  | Ego_recompute { recomputed } -> Printf.sprintf "recompute(%d ego aggregates)" recomputed
  | Full_rebuild { reason } -> "rebuild: " ^ reason

(* --------------------------------------------------------------- *)
(* Shared plumbing                                                   *)

(* Inverse of a connector/filter [new_of_old] (a bijection on the
   vertices the view keeps). *)
let old_of_new vg new_of_old =
  let arr = Array.make (Graph.n_vertices vg) (-1) in
  Array.iteri (fun old_v nv -> if nv >= 0 then arr.(nv) <- old_v) new_of_old;
  arr

(* The edge mutations of a batch, in order. Insert_vertex ops carry no
   edges; new vertices are discovered by comparing [base_after]'s
   vertex count against the view's mapping length. *)
let edge_ops ops =
  List.filter_map
    (function
      | Overlay.Insert_edge { src; dst; etype; props } -> Some (src, dst, etype, props, true)
      | Overlay.Delete_edge { src; dst; etype } -> Some (src, dst, etype, [], false)
      | Overlay.Insert_vertex _ -> None)
    ops

(* Adjacency of the batch's deleted edges — the part of the *old*
   graph missing from [base_after]. Traversals that must see paths
   from either side of the update run on the union: [base_after]
   plus these. *)
let deleted_adjacency ops =
  let fwd : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let bwd : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let push tbl k v =
    Hashtbl.replace tbl k (v :: (match Hashtbl.find_opt tbl k with Some l -> l | None -> []))
  in
  List.iter
    (fun (src, dst, _, _, is_insert) ->
      if not is_insert then begin
        push fwd src dst;
        push bwd dst src
      end)
    (edge_ops ops);
  (fwd, bwd)

(* Bounded multi-source BFS over a caller-supplied neighbour
   function; returns the visited table (seeds included, depth 0). *)
let bounded_bfs ~neighbors ~seeds ~depth =
  let visited : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let frontier = ref [] in
  List.iter
    (fun v ->
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.add visited v ();
        frontier := v :: !frontier
      end)
    seeds;
  for _ = 1 to depth do
    let next = ref [] in
    List.iter
      (fun v ->
        neighbors v (fun w ->
            if not (Hashtbl.mem visited w) then begin
              Hashtbl.add visited w ();
              next := w :: !next
            end))
      !frontier;
    frontier := !next
  done;
  visited

(* --------------------------------------------------------------- *)
(* K-hop connectors                                                  *)

let khop_of_view (view : Materialize.materialized) =
  match view.Materialize.view with
  | View.Connector (View.K_hop { src_type; dst_type; k }) -> (src_type, dst_type, k)
  | v -> invalid_arg ("Maintain.connector_delta: not a k-hop connector: " ^ View.name v)

(* Set-semantics exact-k forward reach (the deduped form of
   [Materialize]'s path-counting level walk): calls [f] once per
   vertex reachable by some path of exactly [k] edges. *)
let exact_k_targets g ~src ~k f =
  let n = Graph.n_vertices g in
  Scratch.with_set ~n @@ fun set_a ->
  Scratch.with_set ~n @@ fun set_b ->
  Scratch.with_vec @@ fun vec_a ->
  Scratch.with_vec @@ fun vec_b ->
  let cur_set = ref set_a and cur_vec = ref vec_a in
  let next_set = ref set_b and next_vec = ref vec_b in
  Scratch.add !cur_set src;
  Int_vec.push !cur_vec src;
  for _ = 1 to k do
    Scratch.clear !next_set;
    Int_vec.clear !next_vec;
    let ns = !next_set and nv = !next_vec in
    Int_vec.iter
      (fun v ->
        Graph.iter_out g v (fun ~dst ~etype:_ ~eid:_ ->
            if not (Scratch.mem ns dst) then begin
              Scratch.add ns dst;
              Int_vec.push nv dst
            end))
      !cur_vec;
    let ts = !cur_set and tv = !cur_vec in
    cur_set := !next_set;
    cur_vec := !next_vec;
    next_set := ts;
    next_vec := tv
  done;
  Int_vec.iter f !cur_vec

let connector_delta base_after ~view ~ops =
  let src_type, dst_type, k = khop_of_view view in
  let schema = Graph.schema base_after in
  let src_ty = Schema.vertex_type_id schema src_type in
  let dst_ty = Schema.vertex_type_id schema dst_type in
  let vg = view.Materialize.graph in
  let new_of_old = view.Materialize.new_of_old in
  let o_of_n = old_of_new vg new_of_old in
  let eops = edge_ops ops in
  (* Every exact-k path gained or lost by the batch crosses a changed
     edge (u, v) at some position i in 1..k, putting the path's source
     within i-1 <= k-1 backward hops of u. Walk backwards on the union
     graph (new in-adjacency plus deleted edges) to find them. *)
  let _, del_bwd = deleted_adjacency ops in
  let seeds = List.map (fun (src, _, _, _, _) -> src) eops in
  let neighbors v f =
    Graph.iter_in base_after v (fun ~src ~etype:_ ~eid:_ -> f src);
    match Hashtbl.find_opt del_bwd v with None -> () | Some srcs -> List.iter f srcs
  in
  let visited = bounded_bfs ~neighbors ~seeds ~depth:(k - 1) in
  let affected =
    Hashtbl.fold
      (fun v () acc -> if Graph.vertex_type base_after v = src_ty then v :: acc else acc)
      visited []
    |> List.sort compare
  in
  let added = ref [] and removed = ref [] in
  (* Diff each affected source's new exact-k reach against its view
     out-neighbourhood. Hub vertices make these sets large (a random
     update batch is degree-biased towards hubs), so the membership
     set is epoch-stamped scratch, not a hashtable: [data = 1] marks
     an old target seen again (still reachable). *)
  let n_base = Graph.n_vertices base_after in
  Scratch.with_set ~n:n_base @@ fun old_set ->
  Scratch.with_vec @@ fun old_vec ->
  List.iter
    (fun a ->
      Scratch.clear old_set;
      Int_vec.clear old_vec;
      if a < Array.length new_of_old && new_of_old.(a) >= 0 then
        Graph.iter_out vg new_of_old.(a) (fun ~dst ~etype:_ ~eid:_ ->
            let w = o_of_n.(dst) in
            if not (Scratch.mem old_set w) then begin
              Scratch.set_value old_set w 0;
              Int_vec.push old_vec w
            end);
      exact_k_targets base_after ~src:a ~k (fun w ->
          if Graph.vertex_type base_after w = dst_ty then
            if Scratch.mem old_set w then Scratch.set_value old_set w 1
            else added := (a, w) :: !added);
      Int_vec.iter
        (fun w -> if Scratch.value old_set w = 0 then removed := (a, w) :: !removed)
        old_vec)
    affected;
  { added = List.sort compare !added; removed = List.sort compare !removed }

(* Rebuild the view graph from itself plus the delta via
   [Graph.splice] — surviving pairs are blit-copied, never re-derived,
   so applying a small delta costs O(view) with memcpy constants
   instead of the per-source traversal a re-materialization pays. The
   vertex set is extended with base vertices of the endpoint types
   that appeared since materialization. *)
let apply_connector_delta base_after ~view ~(delta : delta) =
  let src_type, dst_type, _ = khop_of_view view in
  let schema = Graph.schema base_after in
  let src_ty = Schema.vertex_type_id schema src_type in
  let dst_ty = Schema.vertex_type_id schema dst_type in
  let vg = view.Materialize.graph in
  let vschema = Graph.schema vg in
  let edge_ty =
    match view.Materialize.view with
    | View.Connector c -> Schema.edge_type_id vschema (View.connector_edge_type c)
    | _ -> assert false
  in
  let old_len = Array.length view.Materialize.new_of_old in
  let n_after = Graph.n_vertices base_after in
  let new_of_old = Array.make n_after (-1) in
  Array.blit view.Materialize.new_of_old 0 new_of_old 0 (Stdlib.min old_len n_after);
  let appended = ref [] in
  let next_id = ref (Graph.n_vertices vg) in
  let append v =
    let id = !next_id in
    Stdlib.incr next_id;
    appended :=
      ( Schema.vertex_type_id vschema (Graph.vertex_type_name base_after v),
        Graph.vertex_props base_after v )
      :: !appended;
    new_of_old.(v) <- id;
    id
  in
  (* Endpoint-type vertices born after materialization. *)
  for v = old_len to n_after - 1 do
    let ty = Graph.vertex_type base_after v in
    if ty = src_ty || ty = dst_ty then ignore (append v)
  done;
  let ensure v = if new_of_old.(v) < 0 then append v else new_of_old.(v) in
  (* Mark removed pairs' eids up front (removed lists are small, view
     out-degrees are small), so [keep_eid] below is a plain array read
     on the splice's O(|view|) hot loop — or a constant when the batch
     removed nothing, which skips the array entirely. *)
  let keep_eid =
    if delta.removed = [] then fun _ -> true
    else begin
      let drop = Array.make (Stdlib.max 1 (Graph.n_edges vg)) false in
      List.iter
        (fun (a, w) ->
          if a < old_len && w < old_len && new_of_old.(a) >= 0 && new_of_old.(w) >= 0 then begin
            let nw = new_of_old.(w) in
            Graph.iter_out_etype vg new_of_old.(a) ~etype:edge_ty (fun ~dst ~eid ->
                if dst = nw then drop.(eid) <- true)
          end)
        delta.removed;
      fun eid -> not drop.(eid)
    end
  in
  let add_edges =
    Array.of_list (List.map (fun (a, w) -> (ensure a, ensure w, edge_ty, [])) delta.added)
  in
  let new_vertices = Array.of_list (List.rev !appended) in
  {
    view with
    Materialize.graph = Graph.splice vg ~new_vertices ~keep_eid ~add_edges ();
    new_of_old;
    build_cost =
      view.Materialize.build_cost
      +. float_of_int (List.length delta.added + List.length delta.removed);
  }

(* --------------------------------------------------------------- *)
(* Filter summarizers                                                *)

(* Updates map 1:1 through an inclusion/removal filter. Deletes must
   land on the same instance the overlay removed: the overlay deletes
   the first live matching (src, dst, etype) instance in eid order,
   and [Subgraph.restrict] preserves eid order, so skipping the first
   min(deletes, present) matching instances per key — and appending
   the surviving inserts in op order — reproduces a full
   re-materialization byte for byte. Deletes beyond the instances the
   view held at batch start cancelled same-batch inserts (oldest
   first), so only the last (inserts - cancelled) inserts survive. *)
let refresh_filter base_after ~(view : Materialize.materialized) ~ops =
  let vg = view.Materialize.graph in
  let vschema = Graph.schema vg in
  let old_len = Array.length view.Materialize.new_of_old in
  let n_after = Graph.n_vertices base_after in
  let new_of_old = Array.make n_after (-1) in
  Array.blit view.Materialize.new_of_old 0 new_of_old 0 (Stdlib.min old_len n_after);
  let appended = ref [] in
  let next_id = ref (Graph.n_vertices vg) in
  for v = old_len to n_after - 1 do
    let tname = Graph.vertex_type_name base_after v in
    if Schema.has_vertex_type vschema tname then begin
      appended :=
        (Schema.vertex_type_id vschema tname, Graph.vertex_props base_after v) :: !appended;
      new_of_old.(v) <- !next_id;
      Stdlib.incr next_id
    end
  done;
  let new_vertices = Array.of_list (List.rev !appended) in
  let kept ename src dst =
    Schema.has_edge_type vschema ename
    && src < n_after && dst < n_after
    && new_of_old.(src) >= 0
    && new_of_old.(dst) >= 0
  in
  let eops = edge_ops ops in
  (* Per-key tallies: deletes, inserts. Key = base-id endpoints +
     edge-type name. *)
  let dels : (int * int * string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let inss : (int * int * string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let bump tbl key =
    match Hashtbl.find_opt tbl key with
    | Some r -> Stdlib.incr r
    | None -> Hashtbl.add tbl key (ref 1)
  in
  let kept_inserts = ref 0 and kept_deletes = ref 0 in
  List.iter
    (fun (src, dst, ename, _, is_insert) ->
      if kept ename src dst then
        if is_insert then begin
          Stdlib.incr kept_inserts;
          bump inss (src, dst, ename)
        end
        else begin
          Stdlib.incr kept_deletes;
          bump dels (src, dst, ename)
        end)
    eops;
  (* Instances of each deleted key the view held before the batch. *)
  let o_of_n = old_of_new vg view.Materialize.new_of_old in
  let held key =
    let s, d, ename = key in
    let ty = Schema.edge_type_id vschema ename in
    let c = ref 0 in
    Graph.iter_out_etype vg new_of_old.(s) ~etype:ty (fun ~dst ~eid:_ ->
        if dst = new_of_old.(d) then Stdlib.incr c);
    !c
  in
  let skip_budget : (int * int * string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let cancelled : (int * int * string, int) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun key d ->
      let b_count = held key in
      let skip = Stdlib.min !d b_count in
      Hashtbl.add skip_budget key (ref skip);
      Hashtbl.add cancelled key (!d - skip))
    dels;
  (* Mark deleted instances in eid order, collect surviving inserts in
     op order, and splice: surviving edges are blit-copied with their
     properties, never re-derived. *)
  let drop = Array.make (Stdlib.max 1 (Graph.n_edges vg)) false in
  if Hashtbl.length skip_budget > 0 then
    Graph.iter_edges vg (fun ~eid ~src ~dst ~etype ->
        let key = (o_of_n.(src), o_of_n.(dst), Schema.edge_type_name vschema etype) in
        match Hashtbl.find_opt skip_budget key with
        | Some r when !r > 0 ->
          Stdlib.decr r;
          drop.(eid) <- true
        | _ -> ());
  let seen_ins : (int * int * string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let survivors = ref [] in
  List.iter
    (fun (src, dst, ename, props, is_insert) ->
      if is_insert && kept ename src dst then begin
        let key = (src, dst, ename) in
        let seen =
          match Hashtbl.find_opt seen_ins key with
          | Some r -> r
          | None ->
            let r = ref 0 in
            Hashtbl.add seen_ins key r;
            r
        in
        let idx = !seen in
        Stdlib.incr seen;
        let dropped = match Hashtbl.find_opt cancelled key with Some c -> c | None -> 0 in
        if idx >= dropped then
          survivors :=
            (new_of_old.(src), new_of_old.(dst), Schema.edge_type_id vschema ename, props)
            :: !survivors
      end)
    eops;
  let add_edges = Array.of_list (List.rev !survivors) in
  ( {
      view with
      Materialize.graph =
        Graph.splice vg ~new_vertices ~keep_eid:(fun eid -> not drop.(eid)) ~add_edges ();
      new_of_old;
      build_cost =
        view.Materialize.build_cost +. float_of_int (!kept_inserts + !kept_deletes);
    },
    Filter_delta { kept_inserts = !kept_inserts; kept_deletes = !kept_deletes } )

let filter_counts (view : Materialize.materialized) ops =
  let vschema = Graph.schema view.Materialize.graph in
  let new_of_old = view.Materialize.new_of_old in
  let old_len = Array.length new_of_old in
  let mapped v = v >= old_len || new_of_old.(v) >= 0 in
  let ins = ref 0 and del = ref 0 in
  List.iter
    (fun (src, dst, ename, _, is_insert) ->
      if Schema.has_edge_type vschema ename && mapped src && mapped dst then
        if is_insert then Stdlib.incr ins else Stdlib.incr del)
    (edge_ops ops);
  Filter_delta { kept_inserts = !ins; kept_deletes = !del }

(* --------------------------------------------------------------- *)
(* Ego aggregators                                                   *)

(* A vertex's k-hop undirected neighbourhood aggregate changes only
   if a changed edge lies within k hops — on the union graph, so
   neighbourhoods shrunk by deletes are found too. *)
let ego_affected base_after ~k ~ops =
  let del_fwd, del_bwd = deleted_adjacency ops in
  let seeds =
    List.concat_map (fun (src, dst, _, _, _) -> [ src; dst ]) (edge_ops ops)
  in
  let neighbors v f =
    Graph.iter_out base_after v (fun ~dst ~etype:_ ~eid:_ -> f dst);
    Graph.iter_in base_after v (fun ~src ~etype:_ ~eid:_ -> f src);
    (match Hashtbl.find_opt del_fwd v with None -> () | Some l -> List.iter f l);
    match Hashtbl.find_opt del_bwd v with None -> () | Some l -> List.iter f l
  in
  bounded_bfs ~neighbors ~seeds ~depth:k

let ego_of_view (view : Materialize.materialized) =
  match view.Materialize.view with
  | View.Summarizer (View.Ego_aggregator { k; agg_prop; agg }) -> (k, agg_prop, agg)
  | _ -> assert false

let refresh_ego ?pool base_after ~(view : Materialize.materialized) ~ops =
  let k, agg_prop, agg = ego_of_view view in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let vg = view.Materialize.graph in
  let old_n = Graph.n_vertices vg in
  let n_after = Graph.n_vertices base_after in
  let ego_prop = "ego_" ^ String.lowercase_ascii (View.agg_name agg) ^ "_" ^ agg_prop in
  let affected = ego_affected base_after ~k ~ops in
  let recompute = Array.make n_after false in
  Hashtbl.iter (fun v () -> recompute.(v) <- true) affected;
  for v = old_n to n_after - 1 do
    recompute.(v) <- true
  done;
  let recomputed = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 recompute in
  let ego =
    Array.concat
      (Array.to_list
         (Pool.map_morsels pool ~n:n_after (fun ~lo ~hi ->
              Array.init (hi - lo) (fun j ->
                  let v = lo + j in
                  if recompute.(v) then
                    let nbors =
                      Kaskade_algo.Traverse.reachable_within base_after ~src:v ~max_hops:k
                        ~dir:Kaskade_algo.Traverse.Both ()
                    in
                    Materialize.aggregate agg
                      (List.map (fun u -> Graph.vprop_or_null base_after u agg_prop) nbors)
                  else Graph.vprop_or_null vg v ego_prop))))
  in
  (* The view is the base graph plus one aggregate column; share the
     base's topology outright and swap the column in. *)
  ( {
      view with
      Materialize.graph = Graph.with_vprop_column base_after ego_prop ego;
      new_of_old = Array.init n_after Fun.id;
      build_cost = view.Materialize.build_cost +. float_of_int (k * recomputed);
    },
    Ego_recompute { recomputed } )

(* --------------------------------------------------------------- *)
(* Dispatch                                                          *)

let has_path_counts (view : Materialize.materialized) =
  List.mem "paths" (Graph.edge_prop_keys view.Materialize.graph)

let rebuild_reason (view : Materialize.materialized) =
  match view.Materialize.view with
  | View.Connector (View.K_hop _) when has_path_counts view -> Some "connector carries path counts"
  | View.Connector (View.K_hop _) -> None
  | View.Connector _ -> Some "closure connector (unbounded path length)"
  | View.Summarizer (View.Vertex_aggregator _) -> Some "vertex aggregator re-groups on any change"
  | View.Summarizer (View.Subgraph_aggregator _) ->
    Some "subgraph aggregator depends on global connectivity"
  | View.Summarizer
      (View.Vertex_inclusion _ | View.Vertex_removal _ | View.Edge_inclusion _ | View.Edge_removal _)
    ->
    None
  | View.Summarizer (View.Ego_aggregator _) -> None

let noop_strategy (view : Materialize.materialized) =
  match view.Materialize.view with
  | View.Connector (View.K_hop _) -> Connector_delta { added = []; removed = [] }
  | View.Summarizer (View.Ego_aggregator _) -> Ego_recompute { recomputed = 0 }
  | _ -> Filter_delta { kept_inserts = 0; kept_deletes = 0 }

let plan base_after ~view ~ops =
  match rebuild_reason view with
  | Some reason -> Full_rebuild { reason }
  | None -> (
    if ops = [] then noop_strategy view
    else
      match view.Materialize.view with
      | View.Connector (View.K_hop _) -> Connector_delta (connector_delta base_after ~view ~ops)
      | View.Summarizer (View.Ego_aggregator { k; _ }) ->
        let affected = ego_affected base_after ~k ~ops in
        let old_n = Graph.n_vertices view.Materialize.graph in
        let extra = ref 0 in
        for v = old_n to Graph.n_vertices base_after - 1 do
          if not (Hashtbl.mem affected v) then Stdlib.incr extra
        done;
        Ego_recompute { recomputed = Hashtbl.length affected + !extra }
      | _ -> filter_counts view ops)

(* The cost a [strategy] already paid, charged to the budget after
   the incremental paths (which are single structural passes — the
   full-rebuild path delegates its finer-grained accounting to
   [Materialize]). *)
let strategy_cost = function
  | Connector_delta d -> List.length d.added + List.length d.removed
  | Filter_delta { kept_inserts; kept_deletes } -> kept_inserts + kept_deletes
  | Ego_recompute { recomputed } -> recomputed
  | Full_rebuild _ -> 0

let refresh ?pool ?budget ?shards base_after ~view ~ops =
  Budget.check budget Budget.Refresh;
  Budget.fault_point Budget.Refresh ~site:"maintain.refresh";
  let out =
    match rebuild_reason view with
    | Some reason ->
      let with_path_counts = has_path_counts view in
      (Materialize.materialize ~with_path_counts ?pool ?budget ?shards base_after
         view.Materialize.view,
       Full_rebuild { reason })
    | None ->
      if ops = [] then (view, noop_strategy view)
      else (
        match view.Materialize.view with
        | View.Connector (View.K_hop _) ->
          let d = connector_delta base_after ~view ~ops in
          (apply_connector_delta base_after ~view ~delta:d, Connector_delta d)
        | View.Summarizer (View.Ego_aggregator _) -> refresh_ego ?pool base_after ~view ~ops
        | _ -> refresh_filter base_after ~view ~ops)
  in
  Budget.step ~cost:(strategy_cost (snd out)) budget Budget.Refresh;
  out
