(** Turn view descriptors into physical graphs (the paper's "view
    creation": §II executes enumerated views against the raw graph to
    materialize them).

    Connector outputs contain only the connector's endpoint vertex
    types (properties copied) plus the contracted-edge type named by
    [View.connector_edge_type]. Summarizer outputs keep the original
    types they preserve. The source-to-sink connector, whose endpoints
    can mix vertex types, re-types every vertex to ["V"] and records
    the original type in an [orig_type] property. *)

type materialized = {
  view : View.t;
  graph : Kaskade_graph.Graph.t;
  new_of_old : int array;
      (** Original vertex id -> id in the view graph, or [-1] when the
          vertex does not appear. For aggregators this maps members to
          their supervertex. *)
  build_cost : float;
      (** Edges examined while materializing — the I/O-proportional
          creation cost of §V-A. *)
}

val materialize :
  ?dedupe:bool ->
  ?with_path_counts:bool ->
  ?pool:Kaskade_util.Pool.t ->
  ?budget:Kaskade_util.Budget.t ->
  ?shards:Kaskade_graph.Shard.t ->
  Kaskade_graph.Graph.t ->
  View.t ->
  materialized
(** [dedupe] (default [true]) collapses parallel contracted paths into
    one connector edge; with [with_path_counts] the surviving edge
    carries the path multiplicity in an integer [paths] property.
    [dedupe:false] keeps one edge per path — faithful to the paper's
    size analysis, but exponential on dense graphs; prefer counting
    via [Kaskade_algo.Paths] for sizes.

    [pool] (default {!Kaskade_util.Pool.default}) fans the per-source
    traversals of connector views — and the per-vertex ego sweeps of
    the ego aggregator — out over its domains. Parallelism is
    {b deterministic}: per-chunk edge buffers are replayed into the
    output builder in chunk order, so the materialized graph is
    byte-identical to a sequential ([Pool.create ~domains:1 ()]) run
    at every pool width.

    [budget] makes the build cooperative: a forced check before work
    starts, one [Budget.step] per connector source traversal (on every
    worker domain — the budget is shared, racy but monotone), and the
    structural cost of summarizers charged as a lump. Exhaustion
    raises [Kaskade_util.Budget.Exhausted] with stage [Materialize];
    this module is also the ["materialize"] fault-injection site.

    [shards] routes the traversal-driven builds — connector BFS, ego
    sweeps, connected components — through the sharded CSR: each
    frontier vertex reads its adjacency from its owner shard and cut
    edges resolve through the exchange. Must partition [g] itself.
    The output is byte-identical with and without it, at any shard
    count or policy. *)

val aggregate : View.aggregate_fn -> Kaskade_graph.Value.t list -> Kaskade_graph.Value.t
(** Fold a property multiset with one of the paper's aggregators
    ([Null]s skipped by sum, counted by count). Exposed for
    {!Maintain}'s selective ego recomputation. *)

val k_hop_connector :
  ?dedupe:bool ->
  ?with_path_counts:bool ->
  ?pool:Kaskade_util.Pool.t ->
  ?budget:Kaskade_util.Budget.t ->
  ?shards:Kaskade_graph.Shard.t ->
  Kaskade_graph.Graph.t ->
  src_type:string ->
  dst_type:string ->
  k:int ->
  materialized
(** Direct entry point for the connector the paper's experiments use. *)
