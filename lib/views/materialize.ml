open Kaskade_graph
module Budget = Kaskade_util.Budget
module Pool = Kaskade_util.Pool
module Scratch = Kaskade_util.Scratch
module Int_vec = Kaskade_util.Int_vec

type materialized = {
  view : View.t;
  graph : Graph.t;
  new_of_old : int array;
  build_cost : float;
}

let aggregate fn values =
  match fn with
  | View.Agg_count -> Value.Int (List.length values)
  | View.Agg_sum ->
    List.fold_left (fun acc v -> match v with Value.Null -> acc | _ -> Value.add acc v) (Value.Int 0) values
  | View.Agg_min -> begin
    match values with
    | [] -> Value.Null
    | first :: rest -> List.fold_left (fun a v -> if Value.compare v a < 0 then v else a) first rest
  end
  | View.Agg_max -> begin
    match values with
    | [] -> Value.Null
    | first :: rest -> List.fold_left (fun a v -> if Value.compare v a > 0 then v else a) first rest
  end

(* --------------------------------------------------------------- *)
(* Connectors                                                        *)

(* Vertices of the endpoint types, copied into a fresh builder. *)
let endpoint_builder g types edge_decls =
  let uniq = List.sort_uniq compare types in
  let schema = Schema.define ~vertices:uniq ~edges:edge_decls in
  let b = Builder.create schema in
  let new_of_old = Array.make (Graph.n_vertices g) (-1) in
  List.iter
    (fun tname ->
      Array.iter
        (fun v ->
          let id = Builder.add_vertex b ~vtype:tname ~props:(Graph.vertex_props g v) () in
          new_of_old.(v) <- id)
        (Graph.vertices_of_type_name g tname))
    uniq;
  (b, new_of_old)

(* --------------------------------------------------------------- *)
(* Deterministic parallel per-source fan-out.

   Each connector materialization is "for every source vertex, run a
   traversal and add the edges it finds". The traversals are
   independent, so they fan out over a [Pool] as work-stealing
   morsels: each morsel of the source array fills its own (src, dst,
   payload) triple buffer on whichever domain claimed it, and the main
   domain replays the buffers into the builder in morsel order. A
   per-source traversal emits in deterministic discovery order, so the
   replayed edge sequence — and therefore the frozen view — is
   byte-identical to a width-1 (sequential) run at any pool width and
   any morsel grain. *)

let resolve_pool = function Some p -> p | None -> Pool.default ()

(* Neighbor-iteration closures for the per-source traversals, routed
   through the sharded layer when one is supplied: each BFS reads a
   frontier vertex's adjacency from its owner shard and crosses shard
   boundaries by resolving exchange entries (cut-edge stitching). Both
   sides emit the same neighbor sequence per vertex, so every
   materialized view is byte-identical to the single-CSR build. *)
let out_iter ?shards g =
  match shards with
  | Some sh -> fun v f -> Shard.iter_out sh v (fun ~dst ~etype:_ ~eid:_ -> f dst)
  | None -> fun v f -> Graph.iter_out g v (fun ~dst ~etype:_ ~eid:_ -> f dst)

let out_etype_iter ?shards g ~etype =
  match shards with
  | Some sh -> fun v f -> Shard.iter_out_etype sh v ~etype (fun ~dst ~eid:_ -> f dst)
  | None -> fun v f -> Graph.iter_out_etype g v ~etype (fun ~dst ~eid:_ -> f dst)

(* Budget checkpoints are per source traversal: every worker domain
   steps the (shared, racy-but-monotone) budget once per source, so a
   fan-out over many sources notices an expired deadline promptly even
   though a single in-flight traversal runs to completion. The
   traversal's edge-visit cost is charged after the replay. *)
let fan_out_edges ?budget pool ~sources ~per_source ~replay =
  let morsels =
    Pool.map_morsels pool ~n:(Array.length sources) (fun ~lo ~hi ->
        let buf = Int_vec.create () in
        let cost = ref 0 in
        let emit u w payload =
          Int_vec.push buf u;
          Int_vec.push buf w;
          Int_vec.push buf payload
        in
        for i = lo to hi - 1 do
          Budget.step budget Budget.Materialize;
          per_source ~cost sources.(i) emit
        done;
        (buf, !cost))
  in
  let total_cost = ref 0 in
  Array.iter
    (fun (buf, cost) ->
      total_cost := !total_cost + cost;
      let len = Int_vec.length buf in
      let i = ref 0 in
      while !i < len do
        replay (Int_vec.get buf !i) (Int_vec.get buf (!i + 1)) (Int_vec.get buf (!i + 2));
        i := !i + 3
      done)
    morsels;
  !total_cost

(* Transitive reachability (>= 1 step) from [src] via [iter]: a
   scratch-buffer BFS over one FIFO queue; emits reached vertices in
   discovery order, never [src] itself. *)
let reach_from ~n ~iter ~src ~cost emit =
  Scratch.with_set ~n @@ fun seen ->
  Scratch.with_vec @@ fun queue ->
  Scratch.add seen src;
  Int_vec.push queue src;
  let head = ref 0 in
  while !head < Int_vec.length queue do
    let v = Int_vec.get queue !head in
    Stdlib.incr head;
    iter v (fun dst ->
        Stdlib.incr cost;
        if not (Scratch.mem seen dst) then begin
          Scratch.add seen dst;
          Int_vec.push queue dst
        end)
  done;
  for i = 1 to Int_vec.length queue - 1 do
    emit (Int_vec.get queue i)
  done

(* Exact-k forward reachability with path multiplicities: level sets
   are (scratch set carrying per-vertex path counts, members vector in
   discovery order). *)
let exact_k_reach ~n ~iter ~src ~k ~cost emit =
  Scratch.with_set ~n @@ fun set_a ->
  Scratch.with_set ~n @@ fun set_b ->
  Scratch.with_vec @@ fun vec_a ->
  Scratch.with_vec @@ fun vec_b ->
  let cur_set = ref set_a and cur_vec = ref vec_a in
  let next_set = ref set_b and next_vec = ref vec_b in
  Scratch.set_value !cur_set src 1;
  Int_vec.push !cur_vec src;
  for _ = 1 to k do
    Scratch.clear !next_set;
    Int_vec.clear !next_vec;
    let cs = !cur_set and ns = !next_set and nv = !next_vec in
    Int_vec.iter
      (fun v ->
        let cnt = Scratch.value cs v in
        iter v (fun dst ->
            Stdlib.incr cost;
            if Scratch.mem ns dst then Scratch.set_value ns dst (Scratch.value ns dst + cnt)
            else begin
              Scratch.set_value ns dst cnt;
              Int_vec.push nv dst
            end))
      !cur_vec;
    let ts = !cur_set and tv = !cur_vec in
    cur_set := !next_set;
    cur_vec := !next_vec;
    next_set := ts;
    next_vec := tv
  done;
  let cs = !cur_set in
  Int_vec.iter (fun w -> emit w (Scratch.value cs w)) !cur_vec

let connector_k_hop ?(dedupe = true) ?(with_path_counts = false) ?pool ?budget ?shards g
    ~src_type ~dst_type ~k =
  let pool = resolve_pool pool in
  let view = View.Connector (View.K_hop { src_type; dst_type; k }) in
  let edge_name = View.connector_edge_type (View.K_hop { src_type; dst_type; k }) in
  let b, new_of_old =
    endpoint_builder g [ src_type; dst_type ] [ (src_type, edge_name, dst_type) ]
  in
  let dst_ty = Schema.vertex_type_id (Graph.schema g) dst_type in
  let n = Graph.n_vertices g in
  let iter = out_iter ?shards g in
  let per_source ~cost u emit =
    exact_k_reach ~n ~iter ~src:u ~k ~cost (fun w cnt ->
        if Graph.vertex_type g w = dst_ty then emit u w cnt)
  in
  let cost =
    fan_out_edges ?budget pool ~sources:(Graph.vertices_of_type_name g src_type) ~per_source
      ~replay:(fun u w cnt ->
        let props = if with_path_counts then [ ("paths", Value.Int cnt) ] else [] in
        if dedupe then
          ignore (Builder.add_edge b ~src:new_of_old.(u) ~dst:new_of_old.(w) ~etype:edge_name ~props ())
        else
          for _ = 1 to cnt do
            ignore (Builder.add_edge b ~src:new_of_old.(u) ~dst:new_of_old.(w) ~etype:edge_name ())
          done)
  in
  { view; graph = Graph.freeze b; new_of_old; build_cost = float_of_int cost }

let connector_same_vertex_type ?pool ?budget ?shards g ~vtype =
  let pool = resolve_pool pool in
  let view = View.Connector (View.Same_vertex_type { vtype }) in
  let edge_name = View.connector_edge_type (View.Same_vertex_type { vtype }) in
  let b, new_of_old = endpoint_builder g [ vtype ] [ (vtype, edge_name, vtype) ] in
  let ty = Schema.vertex_type_id (Graph.schema g) vtype in
  let n = Graph.n_vertices g in
  let iter = out_iter ?shards g in
  let per_source ~cost u emit =
    reach_from ~n ~iter ~src:u ~cost (fun w ->
        if Graph.vertex_type g w = ty then emit u w 0)
  in
  let cost =
    fan_out_edges ?budget pool ~sources:(Graph.vertices_of_type_name g vtype) ~per_source
      ~replay:(fun u w _ ->
        ignore (Builder.add_edge b ~src:new_of_old.(u) ~dst:new_of_old.(w) ~etype:edge_name ()))
  in
  { view; graph = Graph.freeze b; new_of_old; build_cost = float_of_int cost }

let connector_same_edge_type ?pool ?budget ?shards g ~etype =
  let pool = resolve_pool pool in
  let view = View.Connector (View.Same_edge_type { etype }) in
  let edge_name = View.connector_edge_type (View.Same_edge_type { etype }) in
  let schema = Graph.schema g in
  let etid = Schema.edge_type_id schema etype in
  let src_type = Schema.vertex_type_name schema (Schema.edge_src schema etid) in
  let dst_type = Schema.vertex_type_name schema (Schema.edge_dst schema etid) in
  let dst_ty = Schema.vertex_type_id schema dst_type in
  (* Paths of a single edge type require domain = range beyond one
     hop; for heterogeneous edge types this is single-hop closure. *)
  let b, new_of_old =
    endpoint_builder g [ src_type; dst_type ] [ (src_type, edge_name, dst_type) ]
  in
  let n = Graph.n_vertices g in
  let iter = out_etype_iter ?shards g ~etype:etid in
  let per_source ~cost u emit =
    reach_from ~n ~iter ~src:u ~cost (fun w ->
        if new_of_old.(w) >= 0 && Graph.vertex_type g w = dst_ty then emit u w 0)
  in
  let cost =
    fan_out_edges ?budget pool ~sources:(Graph.vertices_of_type_name g src_type) ~per_source
      ~replay:(fun u w _ ->
        ignore (Builder.add_edge b ~src:new_of_old.(u) ~dst:new_of_old.(w) ~etype:edge_name ()))
  in
  { view; graph = Graph.freeze b; new_of_old; build_cost = float_of_int cost }

let connector_source_to_sink ?pool ?budget ?shards g =
  let pool = resolve_pool pool in
  let view = View.Connector View.Source_to_sink in
  let edge_name = View.connector_edge_type View.Source_to_sink in
  let schema = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", edge_name, "V") ] in
  let b = Builder.create schema in
  let n = Graph.n_vertices g in
  let new_of_old = Array.make n (-1) in
  let is_endpoint v = Graph.in_degree g v = 0 || Graph.out_degree g v = 0 in
  for v = 0 to n - 1 do
    if is_endpoint v then begin
      let props =
        ("orig_type", Value.Str (Graph.vertex_type_name g v)) :: Graph.vertex_props g v
      in
      new_of_old.(v) <- Builder.add_vertex b ~vtype:"V" ~props ()
    end
  done;
  let sources = ref [] in
  for u = n - 1 downto 0 do
    if Graph.in_degree g u = 0 && Graph.out_degree g u > 0 then sources := u :: !sources
  done;
  let iter = out_iter ?shards g in
  let per_source ~cost u emit =
    reach_from ~n ~iter ~src:u ~cost (fun w ->
        if Graph.out_degree g w = 0 then emit u w 0)
  in
  let cost =
    fan_out_edges ?budget pool ~sources:(Array.of_list !sources) ~per_source
      ~replay:(fun u w _ ->
        ignore (Builder.add_edge b ~src:new_of_old.(u) ~dst:new_of_old.(w) ~etype:edge_name ()))
  in
  { view; graph = Graph.freeze b; new_of_old; build_cost = float_of_int cost }

(* --------------------------------------------------------------- *)
(* Summarizers                                                       *)

let summarize_inclusion g view keep_types =
  let schema = Graph.schema g in
  let restricted = Schema.restrict schema ~keep_vertices:keep_types in
  let keep = Hashtbl.create 8 in
  List.iter
    (fun tname ->
      match Schema.vertex_type_id schema tname with
      | ty -> Hashtbl.replace keep ty ()
      | exception Not_found -> invalid_arg ("Materialize: unknown vertex type " ^ tname))
    keep_types;
  let sub, mapping =
    Subgraph.restrict ~vertex_pred:(fun v -> Hashtbl.mem keep (Graph.vertex_type g v))
      ~schema:restricted g
  in
  {
    view;
    graph = sub;
    new_of_old = mapping.Subgraph.new_of_old_vertex;
    build_cost = float_of_int (Graph.n_edges g);
  }

let summarize_edge_filter g view keep_edge_types =
  let schema = Graph.schema g in
  let keep = Hashtbl.create 8 in
  List.iter
    (fun ename ->
      match Schema.edge_type_id schema ename with
      | ty -> Hashtbl.replace keep ty ()
      | exception Not_found -> invalid_arg ("Materialize: unknown edge type " ^ ename))
    keep_edge_types;
  let new_schema =
    Schema.define
      ~vertices:(Schema.vertex_types schema)
      ~edges:
        (List.filter_map
           (fun (d : Schema.edge_def) ->
             if Hashtbl.mem keep (Schema.edge_type_id schema d.name) then Some (d.src, d.name, d.dst)
             else None)
           (Schema.edge_defs schema))
  in
  let sub, mapping =
    Subgraph.restrict ~edge_pred:(fun ~eid:_ ~src:_ ~dst:_ ~etype -> Hashtbl.mem keep etype)
      ~schema:new_schema g
  in
  {
    view;
    graph = sub;
    new_of_old = mapping.Subgraph.new_of_old_vertex;
    build_cost = float_of_int (Graph.n_edges g);
  }

let complement_vertex_types schema drop =
  List.filter (fun t -> not (List.mem t drop)) (Schema.vertex_types schema)

let complement_edge_types schema drop =
  List.filter_map
    (fun (d : Schema.edge_def) -> if List.mem d.name drop then None else Some d.name)
    (Schema.edge_defs schema)

let summarize_vertex_aggregator g view ~vtype ~group_prop ~agg_prop ~agg =
  let schema = Graph.schema g in
  let target_ty = Schema.vertex_type_id schema vtype in
  (* Group key -> supervertex members. *)
  let groups : (Value.t, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun v ->
      let key = Graph.vprop_or_null g v group_prop in
      match Hashtbl.find_opt groups key with
      | Some members -> Hashtbl.replace groups key (v :: members)
      | None -> Hashtbl.add groups key [ v ])
    (Graph.vertices_of_type g target_ty);
  let b = Builder.create schema in
  let new_of_old = Array.make (Graph.n_vertices g) (-1) in
  (* Pass-through vertices. *)
  for v = 0 to Graph.n_vertices g - 1 do
    if Graph.vertex_type g v <> target_ty then
      new_of_old.(v) <-
        Builder.add_vertex b ~vtype:(Graph.vertex_type_name g v) ~props:(Graph.vertex_props g v) ()
  done;
  (* Supervertices. *)
  Hashtbl.iter
    (fun key members ->
      let values = List.map (fun v -> Graph.vprop_or_null g v agg_prop) members in
      let super =
        Builder.add_vertex b ~vtype
          ~props:
            [ (group_prop, key);
              (agg_prop, aggregate agg values);
              ("members", Value.Int (List.length members)) ]
          ()
      in
      List.iter (fun v -> new_of_old.(v) <- super) members)
    groups;
  (* Re-route edges; drop self-loops produced by contraction. *)
  Graph.iter_edges g (fun ~eid ~src ~dst ~etype ->
      let s = new_of_old.(src) and d = new_of_old.(dst) in
      if s >= 0 && d >= 0 && s <> d then
        ignore
          (Builder.add_edge b ~src:s ~dst:d ~etype:(Schema.edge_type_name schema etype)
             ~props:(Graph.edge_props g eid) ()));
  { view; graph = Graph.freeze b; new_of_old; build_cost = float_of_int (Graph.n_edges g) }

let summarize_subgraph_aggregator ?shards g view ~agg_prop ~agg =
  let uf =
    match shards with
    | Some sh -> Kaskade_algo.Connectivity.components_sharded sh
    | None -> Kaskade_algo.Connectivity.components g
  in
  let schema = Schema.define ~vertices:[ "Group" ] ~edges:[] in
  let b = Builder.create schema in
  let super_of_root = Hashtbl.create 64 in
  let members_of_root : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let n = Graph.n_vertices g in
  for v = 0 to n - 1 do
    let r = Kaskade_util.Union_find.find uf v in
    match Hashtbl.find_opt members_of_root r with
    | Some ms -> Hashtbl.replace members_of_root r (v :: ms)
    | None -> Hashtbl.add members_of_root r [ v ]
  done;
  let new_of_old = Array.make n (-1) in
  Hashtbl.iter
    (fun root members ->
      let values = List.map (fun v -> Graph.vprop_or_null g v agg_prop) members in
      let super =
        Builder.add_vertex b ~vtype:"Group"
          ~props:[ (agg_prop, aggregate agg values); ("members", Value.Int (List.length members)) ]
          ()
      in
      Hashtbl.add super_of_root root super;
      List.iter (fun v -> new_of_old.(v) <- super) members)
    members_of_root;
  { view; graph = Graph.freeze b; new_of_old; build_cost = float_of_int (Graph.n_edges g) }

let summarize_ego_aggregator ?pool ?shards g view ~k ~agg_prop ~agg =
  let pool = resolve_pool pool in
  let schema = Graph.schema g in
  let b = Builder.create schema in
  let n = Graph.n_vertices g in
  let ego_prop = "ego_" ^ String.lowercase_ascii (View.agg_name agg) ^ "_" ^ agg_prop in
  let new_of_old = Array.make n (-1) in
  (* The k-hop ego aggregate of each vertex is independent, so the
     BFS sweeps fan out over the pool as morsels; only the per-vertex
     aggregate value crosses back, and the builder is filled
     sequentially. *)
  let ego =
    Array.concat
      (Array.to_list
         (Pool.map_morsels pool ~n (fun ~lo ~hi ->
              Array.init (hi - lo) (fun j ->
                  let v = lo + j in
                  let nbors =
                    match shards with
                    | Some sh ->
                      Kaskade_algo.Traverse.reachable_within_sharded sh ~src:v ~max_hops:k
                        ~dir:Kaskade_algo.Traverse.Both ()
                    | None ->
                      Kaskade_algo.Traverse.reachable_within g ~src:v ~max_hops:k
                        ~dir:Kaskade_algo.Traverse.Both ()
                  in
                  aggregate agg (List.map (fun u -> Graph.vprop_or_null g u agg_prop) nbors)))))
  in
  for v = 0 to n - 1 do
    let props = (ego_prop, ego.(v)) :: Graph.vertex_props g v in
    new_of_old.(v) <- Builder.add_vertex b ~vtype:(Graph.vertex_type_name g v) ~props ()
  done;
  Graph.iter_edges g (fun ~eid ~src ~dst ~etype ->
      ignore
        (Builder.add_edge b ~src:new_of_old.(src) ~dst:new_of_old.(dst)
           ~etype:(Schema.edge_type_name schema etype) ~props:(Graph.edge_props g eid) ()));
  { view; graph = Graph.freeze b; new_of_old; build_cost = float_of_int (k * Graph.n_edges g) }

(* --------------------------------------------------------------- *)

let m_materializations =
  Kaskade_obs.Metrics.counter ~help:"Views materialized" "views.materialized"

let m_materialized_edges =
  Kaskade_obs.Metrics.counter ~help:"Edges across all materialized views" "views.materialized_edges"

let materialize ?(dedupe = true) ?(with_path_counts = false) ?pool ?budget ?shards g view =
  Kaskade_obs.Trace.with_span "materialize" ~attrs:[ ("view", View.name view) ]
  @@ fun () ->
  Budget.check budget Budget.Materialize;
  Budget.fault_point Budget.Materialize ~site:"materialize";
  (* Traversal-driven builds (connectors, ego, connected components)
     route their adjacency reads through [shards] when present; the
     structural summarizers are single whole-graph passes over the raw
     arrays, which are partition-independent, so they read [g]
     directly. Either way the view bytes do not depend on the shard
     count. *)
  let m =
    match view with
    | View.Connector (View.K_hop { src_type; dst_type; k }) ->
      connector_k_hop ~dedupe ~with_path_counts ?pool ?budget ?shards g ~src_type ~dst_type ~k
    | View.Connector (View.Same_vertex_type { vtype }) ->
      connector_same_vertex_type ?pool ?budget ?shards g ~vtype
    | View.Connector (View.Same_edge_type { etype }) ->
      connector_same_edge_type ?pool ?budget ?shards g ~etype
    | View.Connector View.Source_to_sink -> connector_source_to_sink ?pool ?budget ?shards g
    | View.Summarizer (View.Vertex_inclusion types) -> summarize_inclusion g view types
    | View.Summarizer (View.Vertex_removal types) ->
      summarize_inclusion g view (complement_vertex_types (Graph.schema g) types)
    | View.Summarizer (View.Edge_inclusion types) -> summarize_edge_filter g view types
    | View.Summarizer (View.Edge_removal types) ->
      summarize_edge_filter g view (complement_edge_types (Graph.schema g) types)
    | View.Summarizer (View.Vertex_aggregator { vtype; group_prop; agg_prop; agg }) ->
      summarize_vertex_aggregator g view ~vtype ~group_prop ~agg_prop ~agg
    | View.Summarizer (View.Subgraph_aggregator { agg_prop; agg }) ->
      summarize_subgraph_aggregator ?shards g view ~agg_prop ~agg
    | View.Summarizer (View.Ego_aggregator { k; agg_prop; agg }) ->
      summarize_ego_aggregator ?pool ?shards g view ~k ~agg_prop ~agg
  in
  (* Summarizers do their work in one structural pass; charge it as a
     lump so a step-capped budget still observes their cost. *)
  (match view with
  | View.Summarizer _ -> Budget.step ~cost:(int_of_float m.build_cost) budget Budget.Materialize
  | View.Connector _ -> ());
  Kaskade_obs.Metrics.incr m_materializations;
  Kaskade_obs.Metrics.incr ~by:(Graph.n_edges m.graph) m_materialized_edges;
  m

let k_hop_connector ?dedupe ?with_path_counts ?pool ?budget ?shards g ~src_type ~dst_type ~k =
  materialize ?dedupe ?with_path_counts ?pool ?budget ?shards g
    (View.Connector (View.K_hop { src_type; dst_type; k }))
