(* Quickstart: the whole Kaskade loop on a small data-lineage graph.

     dune exec examples/quickstart.exe

   1. build a property graph under a schema,
   2. write a hybrid (Cypher + SQL) query,
   3. let Kaskade enumerate candidate views with its Prolog engine,
   4. pick views with the knapsack-based workload analyzer,
   5. materialize and answer the query from the view. *)

open Kaskade_graph

let () =
  (* A provenance-style schema: jobs write files, files are read by
     jobs (paper Fig. 1). The builder enforces domain/range, so no
     job-job or file-file edge can ever exist. *)
  let schema =
    Schema.define ~vertices:[ "Job"; "File" ]
      ~edges:[ ("Job", "WRITES_TO", "File"); ("File", "IS_READ_BY", "Job") ]
  in
  let b = Builder.create schema in
  let job name cpu =
    Builder.add_vertex b ~vtype:"Job"
      ~props:[ ("name", Value.Str name); ("CPU", Value.Float cpu); ("pipelineName", Value.Str "etl") ]
      ()
  in
  let file name = Builder.add_vertex b ~vtype:"File" ~props:[ ("name", Value.Str name) ] () in
  let j1 = job "ingest" 120.0 and j2 = job "clean" 45.0 and j3 = job "report" 30.0 in
  let f1 = file "/data/raw" and f2 = file "/data/clean" in
  let edge s d t = ignore (Builder.add_edge b ~src:s ~dst:d ~etype:t ()) in
  edge j1 f1 "WRITES_TO";
  edge f1 j2 "IS_READ_BY";
  edge j2 f2 "WRITES_TO";
  edge f2 j3 "IS_READ_BY";
  let g = Graph.freeze b in
  Format.printf "graph: %a@." Graph.pp_summary g;

  let ks = Kaskade.make g in
  let q =
    Kaskade.parse
      "MATCH (a:Job)-[:WRITES_TO]->(f1:File) (f1:File)-[r*0..4]->(f2:File) (f2:File)-[:IS_READ_BY]->(b:Job) RETURN a, b"
  in

  (* Constraint-based view enumeration (paper §IV). *)
  let enum = Kaskade.enumerate_views ks q in
  Printf.printf "\ncandidate views (%d, %d inference steps):\n"
    (List.length enum.Kaskade.Enumerate.candidates)
    enum.Kaskade.Enumerate.inference_steps;
  List.iter
    (fun (c : Kaskade.Enumerate.candidate) ->
      Printf.printf "  %-22s %s\n"
        (Kaskade_views.View.name c.Kaskade.Enumerate.view)
        (Kaskade_views.View.describe c.Kaskade.Enumerate.view))
    enum.Kaskade.Enumerate.candidates;

  (* View selection under a budget (paper §V-B). *)
  let sel = Kaskade.select_views ks ~queries:[ q ] ~budget_edges:1_000 in
  (match sel.Kaskade.Selection.chosen with
  | [] ->
    (* On a five-vertex graph no view pays for itself — the cost model
       is honest about that. Materialize the 2-hop connector anyway to
       show the mechanics (examples/blast_radius.ml shows selection
       choosing it at scale). *)
    print_endline "\nselection: no view pays off at toy scale; materializing JOB_TO_JOB_2HOP anyway";
    ignore
      (Kaskade.materialize ks
         (Kaskade_views.View.Connector
            (Kaskade_views.View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 })))
  | chosen ->
    Printf.printf "\nselected under a 1000-edge budget: %s\n"
      (String.concat ", " (List.map Kaskade_views.View.name chosen));
    ignore (Kaskade.materialize_selected ks sel));

  (* View-based rewriting and execution (paper §V-C). *)
  (match Kaskade.best_rewriting ks q with
  | Some (rw, entry) ->
    Printf.printf "\nrewritten over %s:\n  %s\n"
      (Kaskade_views.View.name entry.Kaskade_views.Catalog.materialized.Kaskade_views.Materialize.view)
      (Kaskade_query.Pretty.to_string rw.Kaskade.Rewrite.rewritten)
  | None -> print_endline "no rewriting found");

  let result, how =
    match Kaskade.query ks q with
    | Ok v -> v
    | Error e -> failwith (Kaskade.Error.to_string e)
  in
  let t = Kaskade_exec.Executor.table_exn result in
  Printf.printf "\nanswer (%s):\n"
    (match how with Kaskade.Raw -> "raw graph" | Kaskade.Via_view v -> "via view " ^ v);
  let answer_graph =
    match how with
    | Kaskade.Via_view v ->
      (Option.get (Kaskade_views.Catalog.find_by_name (Kaskade.catalog ks) v))
        .Kaskade_views.Catalog.materialized.Kaskade_views.Materialize.graph
    | Kaskade.Raw -> g
  in
  List.iter
    (fun row ->
      Printf.printf "  %s downstream-of %s\n"
        (Kaskade_exec.Row.rval_to_string answer_graph row.(1))
        (Kaskade_exec.Row.rval_to_string answer_graph row.(0)))
    t.Kaskade_exec.Row.rows
