(* Co-authorship analytics over a DBLP-like network: materialize the
   author-to-author 2-hop connector and use it for collaboration
   queries — the dblp scenario of the paper's §VII.

     dune exec examples/coauthorship.exe *)

open Kaskade_graph

let time f =
  let t0 = Kaskade_util.Mclock.now_s () in
  let r = f () in
  (r, Kaskade_util.Mclock.now_s () -. t0)

let () =
  let g = Kaskade_gen.Dblp_gen.(generate { default with authors = 3_000; pubs = 5_000; seed = 17 }) in
  Format.printf "dblp-like graph: %a@." Graph.pp_summary g;

  (* Keep authors and publications (drop venues), as in the paper's
     summarized dblp graph. *)
  let filter =
    (Kaskade_views.Materialize.materialize g
       (Kaskade_views.View.Summarizer (Kaskade_views.View.Vertex_inclusion [ "Author"; "Pub" ])))
      .Kaskade_views.Materialize.graph
  in
  let ks = Kaskade.make filter in

  (* Direct co-authors of co-authors ("friend of friend" recommendation):
     a 4-hop author path = 2 hops over the co-author connector. *)
  let q =
    Kaskade.parse
      "MATCH (a:Author)-[r*1..4]->(other:Author) RETURN a, other"
  in
  let enum = Kaskade.enumerate_views ks q in
  Printf.printf "\ncandidates: %s\n"
    (String.concat ", "
       (List.map
          (fun (c : Kaskade.Enumerate.candidate) -> Kaskade_views.View.name c.Kaskade.Enumerate.view)
          enum.Kaskade.Enumerate.candidates));
  let sel = Kaskade.select_views ks ~queries:[ q ] ~budget_edges:(20 * Graph.n_edges filter) in
  ignore (Kaskade.materialize_selected ks sel);

  let ok = function Ok v -> v | Error e -> failwith (Kaskade.Error.to_string e) in
  let (raw_result, _), raw_time = time (fun () -> ok (Kaskade.query ~target:Kaskade.Base ks q)) in
  let (via_result, how), via_time = time (fun () -> ok (Kaskade.query ks q)) in
  let rows r = Kaskade_exec.Row.n_rows (Kaskade_exec.Executor.table_exn r) in
  Printf.printf "reachable author pairs (raw)  : %d in %.3fs\n" (rows raw_result) raw_time;
  Printf.printf "reachable author pairs (%s): %d in %.3fs\n"
    (match how with Kaskade.Via_view v -> v | Kaskade.Raw -> "raw")
    (rows via_result) via_time;

  (* Community structure of the co-author connector (Q7/Q8 flavour). *)
  match how with
  | Kaskade.Via_view name ->
    let ctx = Kaskade.view_ctx ks name in
    (match Kaskade_exec.Executor.run_string ctx "CALL algo.labelPropagation(12)" with
    | Kaskade_exec.Executor.Affected n -> Printf.printf "label propagation updated %d vertices\n" n
    | _ -> ());
    let t =
      Kaskade_exec.Executor.table_exn
        (Kaskade_exec.Executor.run_string ctx "CALL algo.largestCommunity('Author')")
    in
    Printf.printf "largest collaboration community: %d authors\n" (Kaskade_exec.Row.n_rows t)
  | Kaskade.Raw -> print_endline "(connector not materialized; skipping community step)"
