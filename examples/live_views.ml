(* Keeping a materialized connector fresh while the base graph grows —
   the incremental-maintenance extension (DESIGN.md "beyond the
   paper"; the paper inherits the problem statement from Zhuge &
   Garcia-Molina, ICDE'98).

     dune exec examples/live_views.exe

   Batches of new read edges arrive through the [Kaskade.Update] API;
   each batch marks the 2-hop job-to-job connector stale, a refresh
   absorbs the delta incrementally, and the result is checked against
   a full rebuild from the updated graph. *)

open Kaskade_graph
open Kaskade_views

let time f =
  let t0 = Kaskade_util.Mclock.now_s () in
  let r = f () in
  (r, Kaskade_util.Mclock.now_s () -. t0)

let () =
  let raw =
    Kaskade_gen.Provenance_gen.(generate { default with jobs = 2_000; files = 4_000; seed = 77 })
  in
  let base =
    (Materialize.materialize raw
       (View.Summarizer (View.Vertex_inclusion Kaskade_gen.Provenance_gen.summarized_types)))
      .Materialize.graph
  in
  let connector = View.Connector (View.K_hop { src_type = "Job"; dst_type = "Job"; k = 2 }) in
  (* auto_refresh off: we drive the refreshes by hand to time them. *)
  let ks = Kaskade.make ~config:{ Kaskade.Config.default with auto_refresh = false } base in
  let entry = Kaskade.materialize ks connector in
  Printf.printf "base: %d vertices, %d edges; connector: %d edges\n" (Graph.n_vertices base)
    (Graph.n_edges base)
    (Graph.n_edges entry.Catalog.materialized.Materialize.graph);

  let rng = Kaskade_util.Prng.create 123 in
  let files = Graph.vertices_of_type_name base "File" in
  let jobs = Graph.vertices_of_type_name base "Job" in
  let total_inc = ref 0.0 and total_rebuild = ref 0.0 in
  for i = 1 to 10 do
    let batch =
      List.init 4 (fun _ ->
          Kaskade.Update.Insert_edge
            {
              src = Kaskade_util.Prng.choose rng files;
              dst = Kaskade_util.Prng.choose rng jobs;
              etype = "IS_READ_BY";
              props = [];
            })
    in
    Kaskade.Update.batch batch ks;
    (match Kaskade.Update.freshness ks with
    | [ (_, Catalog.Stale ops) ] -> assert (List.length ops = 4)
    | _ -> assert false);
    (* The post-batch snapshot is a shared prerequisite of both paths
       (the refresh absorbs the delta against it, the rebuild
       materializes from it) and is cached per overlay version — force
       it outside the timings so neither side pays it. *)
    ignore (Kaskade.graph ks);
    let outcomes, t_inc = time (fun () -> Kaskade.Update.refresh_views ks) in
    let refreshed = Option.get (Catalog.find (Kaskade.catalog ks) connector) in
    let rebuilt, t_full =
      time (fun () -> Materialize.materialize (Kaskade.graph ks) connector)
    in
    let pairs (g' : Graph.t) =
      let out = ref [] in
      Graph.iter_edges g' (fun ~eid:_ ~src ~dst ~etype:_ ->
          let n v = match Graph.vprop g' v "name" with Some (Value.Str s) -> s | _ -> "?" in
          out := (n src, n dst) :: !out);
      List.sort_uniq compare !out
    in
    let ok =
      pairs refreshed.Catalog.materialized.Materialize.graph = pairs rebuilt.Materialize.graph
    in
    let strategy =
      match outcomes with
      | [ o ] -> Maintain.describe_strategy o.Kaskade.refresh_strategy
      | _ -> "?"
    in
    Printf.printf
      "batch #%d (4 file->job reads): %s | incremental %.4fs vs rebuild %.4fs | %s\n" i strategy
      t_inc t_full
      (if ok then "consistent" else "MISMATCH");
    total_inc := !total_inc +. t_inc;
    total_rebuild := !total_rebuild +. t_full
  done;
  Printf.printf "\n10 batches: incremental %.3fs total vs rebuild %.3fs total (%.1fx)\n" !total_inc
    !total_rebuild
    (if !total_inc > 0.0 then !total_rebuild /. !total_inc else 0.0)
