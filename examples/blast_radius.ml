(* The paper's running example at scale: the job blast radius query
   (Listing 1) over a synthetic provenance graph, answered raw and
   through a Kaskade-selected materialized view, with timings.

     dune exec examples/blast_radius.exe *)

open Kaskade_graph

let q1_text =
  "SELECT A.pipelineName, AVG(T_CPU) FROM (\n\
   SELECT A, SUM(B.CPU) AS T_CPU FROM (\n\
   MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)\n\
   (q_f1:File)-[r*0..8]->(q_f2:File)\n\
   (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)\n\
   RETURN q_j1 as A, q_j2 as B\n\
   ) GROUP BY A, B\n\
   ) GROUP BY A.pipelineName"

let time f =
  let t0 = Kaskade_util.Mclock.now_s () in
  let r = f () in
  (r, Kaskade_util.Mclock.now_s () -. t0)

let () =
  print_endline "generating a provenance graph (jobs, files, tasks, machines, users)...";
  let raw =
    Kaskade_gen.Provenance_gen.(generate { default with jobs = 3_000; files = 6_000; seed = 99 })
  in
  Format.printf "raw: %a@." Graph.pp_summary raw;

  (* Step 1: summarize away the types Q1 never touches (paper §VII-E:
     "the schema-level summarizer yields up to three orders of
     magnitude reduction"). *)
  let filter =
    (Kaskade_views.Materialize.materialize raw
       (Kaskade_views.View.Summarizer
          (Kaskade_views.View.Vertex_inclusion Kaskade_gen.Provenance_gen.summarized_types)))
      .Kaskade_views.Materialize.graph
  in
  Format.printf "summarized: %a@." Graph.pp_summary filter;

  (* Step 2: hand the summarized graph to Kaskade and let it choose
     views for the blast-radius workload. *)
  let ks = Kaskade.make filter in
  let q1 = Kaskade.parse q1_text in
  let budget = 5 * Graph.n_edges filter in
  let sel = Kaskade.select_views ks ~queries:[ q1 ] ~budget_edges:budget in
  Printf.printf "\nworkload analysis (budget %d edges):\n" budget;
  List.iter
    (fun (r : Kaskade.Selection.candidate_report) ->
      Printf.printf "  %-22s est_size=%10.0f improvement=%6.2f %s\n"
        (Kaskade_views.View.name r.Kaskade.Selection.view)
        r.Kaskade.Selection.est_size r.Kaskade.Selection.improvement
        (if r.Kaskade.Selection.chosen then "<- chosen" else ""))
    sel.Kaskade.Selection.reports;
  let entries = Kaskade.materialize_selected ks sel in
  List.iter
    (fun (e : Kaskade_views.Catalog.entry) ->
      Printf.printf "materialized %s: %d vertices, %d edges\n"
        (Kaskade_views.View.name e.Kaskade_views.Catalog.materialized.Kaskade_views.Materialize.view)
        e.Kaskade_views.Catalog.size_vertices e.Kaskade_views.Catalog.size_edges)
    entries;

  (* Step 3: run Q1 both ways. *)
  let ok = function Ok v -> v | Error e -> failwith (Kaskade.Error.to_string e) in
  let (raw_result, _), raw_time = time (fun () -> ok (Kaskade.query ~target:Kaskade.Base ks q1)) in
  let (view_result, how), view_time = time (fun () -> ok (Kaskade.query ks q1)) in
  let rows r = Kaskade_exec.Row.n_rows (Kaskade_exec.Executor.table_exn r) in
  Printf.printf "\nQ1 on the summarized graph : %d pipelines in %.3fs\n" (rows raw_result) raw_time;
  Printf.printf "Q1 via %-20s: %d pipelines in %.3fs (%.1fx)\n"
    (match how with Kaskade.Via_view v -> v | Kaskade.Raw -> "raw (no view chosen)")
    (rows view_result) view_time
    (if view_time > 0.0 then raw_time /. view_time else 0.0)
