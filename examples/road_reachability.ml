(* The homogeneous-network counterpoint from the paper (§VII-D/F): on
   a road-network-like graph, 2-hop connectors are *larger* than the
   raw graph, the size estimator predicts it, the knapsack refuses to
   materialize them under any sane budget, and a 2-hop contraction of
   an odd-hop query would be unsound (Kaskade's rewriter refuses).

     dune exec examples/road_reachability.exe *)

open Kaskade_graph

let () =
  let g = Kaskade_gen.Road_gen.(generate { default with width = 60; height = 60; seed = 31 }) in
  Format.printf "road network: %a@." Graph.pp_summary g;
  let ks = Kaskade.make g in
  let stats = Kaskade.stats ks in

  (* The size estimator (Eq. 2) sees the blow-up before paying for
     materialization. *)
  let est = Kaskade.Estimator.estimate_paths stats ~k:2 ~alpha:95.0 in
  let actual = Kaskade_algo.Paths.count_k_walks g ~k:2 in
  Printf.printf "\n2-hop connector size: estimated %.0f, actual %.0f, raw |E| = %d\n" est actual
    (Graph.n_edges g);
  Printf.printf "connector %s the raw graph (paper: homogeneous connectors usually exceed it)\n"
    (if est > float_of_int (Graph.n_edges g) then "EXCEEDS" else "is below");

  (* Reachability workload: 1..4 hops includes odd hop counts, which a
     2-hop connector cannot cover; the rewriter must refuse. *)
  let q = Kaskade.parse "MATCH (s:V)-[r*1..4]->(n:V) RETURN s, n" in
  let conn =
    Kaskade_views.View.Connector (Kaskade_views.View.K_hop { src_type = "V"; dst_type = "V"; k = 2 })
  in
  (match Kaskade.Rewrite.rewrite (Kaskade.schema ks) q conn with
  | None -> print_endline "\nrewrite of *1..4 over the 2-hop connector: refused (odd hops uncovered) -- correct"
  | Some _ -> print_endline "\nBUG: unsound rewrite accepted");

  (* An exactly-2-hop query is coverable (note even *2..4 would not
     be: it contains 3-hop paths, which exist on homogeneous schemas). *)
  let q_even = Kaskade.parse "MATCH (s:V)-[r*2..2]->(n:V) RETURN s, n" in
  (match Kaskade.Rewrite.rewrite (Kaskade.schema ks) q_even conn with
  | Some rw ->
    Printf.printf "rewrite of *2..2: %s\n" (Kaskade_query.Pretty.to_string rw.Kaskade.Rewrite.rewritten)
  | None -> print_endline "BUG: exact-2-hop rewrite refused");

  (* Selection under a budget proportional to the graph: the connector
     does not fit / does not pay off. *)
  let sel = Kaskade.select_views ks ~queries:[ q_even ] ~budget_edges:(Graph.n_edges g) in
  Printf.printf "\nselection under a |E| budget: %s\n"
    (match sel.Kaskade.Selection.chosen with
    | [] -> "no view materialized (connector too large) -- matches the paper"
    | vs -> String.concat ", " (List.map Kaskade_views.View.name vs));

  (* Plain reachability still works on the raw graph. *)
  let t =
    let q_count = Kaskade.parse "SELECT COUNT(*) FROM (MATCH (s:V)-[r*1..4]->(n:V) RETURN s, n)" in
    match Kaskade.query ~target:Kaskade.Base ks q_count with
    | Ok (result, _) -> Kaskade_exec.Executor.table_exn result
    | Error e -> failwith (Kaskade.Error.to_string e)
  in
  match t.Kaskade_exec.Row.rows with
  | [ [| Kaskade_exec.Row.Prim (Value.Int n) |] ] ->
    Printf.printf "\nvertex pairs within 4 hops (raw evaluation): %d\n" n
  | _ -> ()
