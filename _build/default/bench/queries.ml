(* The paper's query workload (Table IV), instantiated per dataset:
   the anchor vertex type is Job on prov, Author on dblp, and V on the
   homogeneous networks; each query also has its equivalent rewriting
   over the 2-hop connector (§VII-C: "queries Q1 through Q4 go over
   half of the original number of hops, and queries Q7 and Q8 run
   around half as many iterations of label propagation"). *)

type bench_query = {
  id : string;
  operation : string;  (* Table IV "Operation" *)
  result_kind : string;  (* Table IV "Result" *)
  raw : string option;  (* query over the filter graph; None = n/a *)
  over_connector : string option;  (* equivalent over the 2-hop connector *)
}

(* Q1 only exists on the provenance graph (needs CPU/pipelineName). *)
let q1 (d : Datasets.dataset) =
  let conn = Datasets.connector_edge_type d in
  {
    id = "Q1";
    operation = "Retrieval";
    result_kind = "Subgraph";
    raw =
      (if d.Datasets.name = "prov (raw)" then
         Some
           "SELECT A.pipelineName, AVG(T_CPU) FROM (SELECT A, SUM(B.CPU) AS T_CPU FROM (MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File) (q_f1:File)-[r*0..8]->(q_f2:File) (q_f2:File)-[:IS_READ_BY]->(q_j2:Job) RETURN q_j1 as A, q_j2 as B) GROUP BY A, B) GROUP BY A.pipelineName"
       else None);
    over_connector =
      (if d.Datasets.name = "prov (raw)" then
         Some
           (Printf.sprintf
              "SELECT A.pipelineName, AVG(T_CPU) FROM (SELECT A, SUM(B.CPU) AS T_CPU FROM (MATCH (q_j1:Job)-[:%s*1..5]->(q_j2:Job) RETURN q_j1 as A, q_j2 as B) GROUP BY A, B) GROUP BY A.pipelineName"
              conn)
       else None);
  }

(* Q2/Q3: ancestors and descendants up to 4 hops, for all anchor
   vertices; over the connector the hop budget halves to 2. On
   heterogeneous graphs the reported ancestors are same-type vertices
   (the equivalence class the connector preserves); on homogeneous
   graphs the connector variant is the paper's non-equivalent
   comparison point (§VII-F). *)
let q2 (d : Datasets.dataset) =
  let l = d.Datasets.source_label in
  let conn = Datasets.connector_edge_type d in
  {
    id = "Q2";
    operation = "Retrieval";
    result_kind = "Set of vertices";
    raw = Some (Printf.sprintf "MATCH (s:%s)<-[r*1..4]-(anc:%s) RETURN s, anc" l l);
    over_connector = Some (Printf.sprintf "MATCH (s:%s)<-[:%s*1..2]-(anc:%s) RETURN s, anc" l conn l);
  }

let q3 (d : Datasets.dataset) =
  let l = d.Datasets.source_label in
  let conn = Datasets.connector_edge_type d in
  {
    id = "Q3";
    operation = "Retrieval";
    result_kind = "Set of vertices";
    raw = Some (Printf.sprintf "MATCH (s:%s)-[r*1..4]->(desc:%s) RETURN s, desc" l l);
    over_connector = Some (Printf.sprintf "MATCH (s:%s)-[:%s*1..2]->(desc:%s) RETURN s, desc" l conn l);
  }

(* Q4 "path lengths": weighted distance (max edge timestamp) to the
   4-hop forward neighbourhood, via the r-hop binding and aggregation
   (distinct-endpoint semantics binds r to the hop distance). *)
let q4 (d : Datasets.dataset) =
  let l = d.Datasets.source_label in
  let conn = Datasets.connector_edge_type d in
  {
    id = "Q4";
    operation = "Retrieval";
    result_kind = "Bag of scalars";
    raw =
      Some
        (Printf.sprintf
           "SELECT s, n, MAX(r) FROM (MATCH (s:%s)-[r*1..4]->(n) RETURN s, n, r) GROUP BY s, n" l);
    over_connector =
      Some
        (Printf.sprintf
           "SELECT s, n, MAX(r) FROM (MATCH (s:%s)-[r:%s*1..2]->(n) RETURN s, n, r) GROUP BY s, n" l
           conn);
  }

(* Q5/Q6 need no rewriting (paper: "only count the number of elements
   in the dataset"); over the connector they count the view. *)
let q5 (_ : Datasets.dataset) =
  let q = "SELECT COUNT(*) FROM (MATCH (a)-[r]->(b) RETURN a)" in
  { id = "Q5"; operation = "Retrieval"; result_kind = "Single scalar"; raw = Some q; over_connector = Some q }

let q6 (_ : Datasets.dataset) =
  let q = "SELECT COUNT(*) FROM (MATCH (n) RETURN n)" in
  { id = "Q6"; operation = "Retrieval"; result_kind = "Single scalar"; raw = Some q; over_connector = Some q }

(* Q7: 25 label-propagation passes on the filter graph, ~half (12) on
   the connector. *)
let q7 (_ : Datasets.dataset) =
  {
    id = "Q7";
    operation = "Update";
    result_kind = "N/A";
    raw = Some "CALL algo.labelPropagation(25)";
    over_connector = Some "CALL algo.labelPropagation(12)";
  }

let q8 (d : Datasets.dataset) =
  let label = if d.Datasets.heterogeneous then d.Datasets.source_label else "" in
  let q = Printf.sprintf "CALL algo.largestCommunity('%s')" label in
  { id = "Q8"; operation = "Retrieval"; result_kind = "Subgraph"; raw = Some q; over_connector = Some q }

let workload d = [ q1 d; q2 d; q3 d; q4 d; q5 d; q6 d; q7 d; q8 d ]
