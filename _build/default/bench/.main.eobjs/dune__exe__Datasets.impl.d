bench/datasets.ml: Graph Hashtbl Kaskade_gen Kaskade_graph Kaskade_views Lazy Materialize View
