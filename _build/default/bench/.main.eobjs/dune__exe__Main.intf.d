bench/main.mli:
