bench/queries.ml: Datasets Printf
