(* Benchmark datasets: laptop-scale stand-ins for the paper's Table
   III networks (see DESIGN.md for the substitution argument). Sizes
   are chosen so the full suite completes in minutes; every generator
   is seeded, so runs are reproducible. *)

open Kaskade_graph
open Kaskade_views

type dataset = {
  name : string;
  kind : string;  (* paper Table III "Type" column *)
  graph : Graph.t Lazy.t;
  heterogeneous : bool;
  summarized_types : string list;  (* empty for homogeneous *)
  connector_types : string * string;  (* endpoints of the 2-hop connector *)
  source_label : string;  (* anchor type for Q1-Q4 *)
}

let scale = ref 1.0

let sc n = int_of_float (float_of_int n *. !scale)

let prov_raw =
  {
    name = "prov (raw)";
    kind = "Data lineage";
    graph =
      lazy
        (Kaskade_gen.Provenance_gen.(
           generate
             {
               default with
               jobs = sc 4_000;
               files = sc 8_000;
               tasks_per_job = 6;
               machines = 100;
               users = 400;
               seed = 42;
             }));
    heterogeneous = true;
    summarized_types = Kaskade_gen.Provenance_gen.summarized_types;
    connector_types = ("Job", "Job");
    source_label = "Job";
  }

let dblp =
  {
    name = "dblp-net";
    kind = "Publications";
    graph =
      lazy
        (Kaskade_gen.Dblp_gen.(
           generate { default with authors = sc 6_000; pubs = sc 10_000; venues = 100; zipf_exponent = 2.1; seed = 7 }));
    heterogeneous = true;
    summarized_types = Kaskade_gen.Dblp_gen.summarized_types;
    connector_types = ("Author", "Author");
    source_label = "Author";
  }

let soc_livejournal =
  {
    name = "soc-livejournal";
    kind = "Social network";
    graph =
      lazy
        (Kaskade_gen.Powerlaw_gen.(
           generate { vertices = sc 3_000; edges = sc 12_000; exponent = 2.4; seed = 11 }));
    heterogeneous = false;
    summarized_types = [];
    connector_types = ("V", "V");
    source_label = "V";
  }

let roadnet =
  {
    name = "roadnet-usa";
    kind = "Road network";
    graph =
      lazy
        (Kaskade_gen.Road_gen.(
           generate { default with width = sc 100; height = sc 100; seed = 23 }));
    heterogeneous = false;
    summarized_types = [];
    connector_types = ("V", "V");
    source_label = "V";
  }

let all = [ prov_raw; dblp; soc_livejournal; roadnet ]
let heterogeneous = [ prov_raw; dblp ]
let homogeneous = [ soc_livejournal; roadnet ]

(* Derived graphs, memoized per dataset. *)

let filter_cache : (string, Graph.t) Hashtbl.t = Hashtbl.create 8
let connector_cache : (string, Graph.t) Hashtbl.t = Hashtbl.create 8

(* The summarized ("filter") graph: the vertex-inclusion summarizer of
   §VII-B, keeping the query-relevant types. Homogeneous datasets are
   their own filter graph. *)
let filter_graph d =
  match Hashtbl.find_opt filter_cache d.name with
  | Some g -> g
  | None ->
    let g =
      if d.summarized_types = [] then Lazy.force d.graph
      else
        (Materialize.materialize (Lazy.force d.graph)
           (View.Summarizer (View.Vertex_inclusion d.summarized_types)))
          .Materialize.graph
    in
    Hashtbl.add filter_cache d.name g;
    g

(* The 2-hop connector over the filter graph (job-to-job,
   author-to-author, or vertex-to-vertex), as in §VII-F. *)
let connector_graph d =
  match Hashtbl.find_opt connector_cache d.name with
  | Some g -> g
  | None ->
    let src_type, dst_type = d.connector_types in
    let g =
      (Materialize.k_hop_connector (filter_graph d) ~src_type ~dst_type ~k:2).Materialize.graph
    in
    Hashtbl.add connector_cache d.name g;
    g

let connector_edge_type d =
  let src_type, dst_type = d.connector_types in
  View.connector_edge_type (View.K_hop { src_type; dst_type; k = 2 })
