open Kaskade_graph
open Kaskade_algo

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let homo_schema = Schema.define ~vertices:[ "V" ] ~edges:[ ("V", "E", "V") ]

(* Build a homogeneous digraph from an edge list, optionally stamping a
   [timestamp] property per edge. *)
let graph_of_edges ?(n = 0) ?(timestamps = []) edges =
  let n =
    List.fold_left (fun acc (s, d) -> Stdlib.max acc (Stdlib.max s d + 1)) n edges
  in
  let b = Builder.create homo_schema in
  for _ = 1 to n do
    ignore (Builder.add_vertex b ~vtype:"V" ())
  done;
  List.iteri
    (fun i (s, d) ->
      let props =
        match List.nth_opt timestamps i with Some t -> [ ("timestamp", Value.Int t) ] | None -> []
      in
      ignore (Builder.add_edge b ~src:s ~dst:d ~etype:"E" ~props ()))
    edges;
  Graph.freeze b

(* A 6-vertex DAG: 0->1->2->3, 0->4, 4->3, 5 isolated. *)
let dag () = graph_of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (0, 4); (4, 3) ]

(* ------------------------------------------------------------------ *)
(* Traverse                                                            *)

let test_bfs_levels () =
  let g = dag () in
  let dist = Traverse.bfs_levels g ~src:0 () in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 2; 1; -1 |] dist

let test_bfs_max_hops () =
  let g = dag () in
  let dist = Traverse.bfs_levels g ~src:0 ~max_hops:1 () in
  Alcotest.(check (array int)) "one hop" [| 0; 1; -1; -1; 1; -1 |] dist

let test_bfs_backward () =
  let g = dag () in
  let dist = Traverse.bfs_levels g ~src:3 ~dir:Traverse.In () in
  check_int "ancestor at 2 hops" 2 dist.(1);
  (* 0 reaches 3 both via 0-1-2-3 and the shortcut 0-4-3. *)
  check_int "root distance" 2 dist.(0)

let test_bfs_both () =
  let g = graph_of_edges ~n:3 [ (0, 1); (2, 1) ] in
  let dist = Traverse.bfs_levels g ~src:0 ~dir:Traverse.Both () in
  check_int "via undirected" 2 dist.(2)

let test_descendants_ancestors () =
  let g = dag () in
  Alcotest.(check (list int)) "descendants" [ 1; 2; 3; 4 ] (Traverse.descendants g ~src:0 ~max_hops:8);
  Alcotest.(check (list int)) "ancestors of 3" [ 0; 1; 2; 4 ] (Traverse.ancestors g ~src:3 ~max_hops:8);
  Alcotest.(check (list int)) "capped" [ 1; 4 ] (Traverse.descendants g ~src:0 ~max_hops:1)

let test_endpoints_in_range () =
  let g = dag () in
  let pairs = Traverse.endpoints_in_range g ~src:0 ~lo:2 ~hi:2 () in
  Alcotest.(check (list (pair int int))) "exactly two hops" [ (2, 2); (3, 2) ] pairs;
  let with_self = Traverse.endpoints_in_range g ~src:0 ~lo:0 ~hi:1 () in
  check_bool "lo=0 includes source" true (List.mem (0, 0) with_self)

let test_max_timestamp_paths () =
  (* 0 -(t=5)-> 1 -(t=2)-> 2: max along path to 2 is 5. *)
  let g = graph_of_edges ~n:3 ~timestamps:[ 5; 2 ] [ (0, 1); (1, 2) ] in
  let result = Traverse.max_timestamp_paths g ~src:0 ~max_hops:4 ~prop:"timestamp" in
  Alcotest.(check (list (pair int int))) "max carried" [ (1, 5); (2, 5) ] result

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)

let test_count_k_walks_line () =
  let g = graph_of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check (float 1e-9)) "3 walks of length 1" 3.0 (Paths.count_k_walks g ~k:1);
  Alcotest.(check (float 1e-9)) "2 walks of length 2" 2.0 (Paths.count_k_walks g ~k:2);
  Alcotest.(check (float 1e-9)) "1 walk of length 3" 1.0 (Paths.count_k_walks g ~k:3);
  Alcotest.(check (float 1e-9)) "no length-4 walk" 0.0 (Paths.count_k_walks g ~k:4)

let test_count_k_walks_cycle () =
  let g = graph_of_edges ~n:2 [ (0, 1); (1, 0) ] in
  (* Each vertex starts exactly one k-walk around the 2-cycle. *)
  Alcotest.(check (float 1e-9)) "k=5 on 2-cycle" 2.0 (Paths.count_k_walks g ~k:5)

(* Brute-force walk count via adjacency-matrix power, for the property
   test. *)
let brute_walks g k =
  let n = Graph.n_vertices g in
  let a = Array.make_matrix n n 0.0 in
  Graph.iter_edges g (fun ~eid:_ ~src ~dst ~etype:_ -> a.(src).(dst) <- a.(src).(dst) +. 1.0);
  let mul x y =
    let r = Array.make_matrix n n 0.0 in
    for i = 0 to n - 1 do
      for l = 0 to n - 1 do
        if x.(i).(l) <> 0.0 then
          for j = 0 to n - 1 do
            r.(i).(j) <- r.(i).(j) +. (x.(i).(l) *. y.(l).(j))
          done
      done
    done;
    r
  in
  let rec power m e = if e = 1 then m else mul m (power m (e - 1)) in
  let p = if k = 0 then Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0)) else power a k in
  Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 p

let prop_k_walks_match_matrix_power =
  QCheck.Test.make ~name:"count_k_walks = 1^T A^k 1" ~count:40
    QCheck.(triple (2 -- 10) (0 -- 25) (1 -- 4))
    (fun (n, m, k) ->
      let rng = Kaskade_util.Prng.create ((n * 1000) + m + k) in
      let edges = List.init m (fun _ -> (Kaskade_util.Prng.int rng n, Kaskade_util.Prng.int rng n)) in
      let g = graph_of_edges ~n edges in
      abs_float (Paths.count_k_walks g ~k -. brute_walks g k) < 1e-6)

let lineage_schema =
  Schema.define ~vertices:[ "Job"; "File" ]
    ~edges:[ ("Job", "WRITES_TO", "File"); ("File", "IS_READ_BY", "Job") ]

let small_lineage () =
  let b = Builder.create lineage_schema in
  let j = Array.init 3 (fun _ -> Builder.add_vertex b ~vtype:"Job" ()) in
  let f = Array.init 2 (fun _ -> Builder.add_vertex b ~vtype:"File" ()) in
  ignore (Builder.add_edge b ~src:j.(0) ~dst:f.(0) ~etype:"WRITES_TO" ());
  ignore (Builder.add_edge b ~src:j.(0) ~dst:f.(1) ~etype:"WRITES_TO" ());
  ignore (Builder.add_edge b ~src:f.(0) ~dst:j.(1) ~etype:"IS_READ_BY" ());
  ignore (Builder.add_edge b ~src:f.(1) ~dst:j.(1) ~etype:"IS_READ_BY" ());
  ignore (Builder.add_edge b ~src:f.(1) ~dst:j.(2) ~etype:"IS_READ_BY" ());
  Graph.freeze b

let test_typed_walks () =
  let g = small_lineage () in
  (* Job->File->Job 2-walks: j0 has 2 writes; f0 -> j1, f1 -> {j1, j2}:
     total 3 walks. *)
  Alcotest.(check (float 1e-9)) "typed 2-walks" 3.0
    (Paths.count_k_walks_between g ~k:2 ~src_type:0 ~dst_type:0)

let test_2hop_pairs_dedup () =
  let g = small_lineage () in
  (* Distinct (job, job) pairs: (j0,j1) [via two files] and (j0,j2). *)
  check_int "deduped pairs" 2 (Paths.count_2hop_pairs g ~src_type:0 ~dst_type:0)

let test_simple_paths_bounded () =
  let g = graph_of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  check_int "3 simple 2-paths on a 3-cycle" 3 (Paths.count_simple_paths_bounded g ~k:2 ~limit:100);
  check_int "limit respected" 2 (Paths.count_simple_paths_bounded g ~k:2 ~limit:2)

(* ------------------------------------------------------------------ *)
(* Label propagation                                                   *)

(* Two directed triangles joined by nothing: labels converge within
   each component. *)
let test_label_prop_components () =
  let g = graph_of_edges ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ] in
  let labels = Label_prop.run g ~passes:10 in
  check_bool "triangle 1 uniform" true (labels.(0) = labels.(1) && labels.(1) = labels.(2));
  check_bool "triangle 2 uniform" true (labels.(3) = labels.(4) && labels.(4) = labels.(5));
  check_bool "components differ" true (labels.(0) <> labels.(3))

let test_label_prop_deterministic () =
  let g = graph_of_edges ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ] in
  let a = Label_prop.run g ~passes:7 in
  let b = Label_prop.run g ~passes:7 in
  Alcotest.(check (array int)) "same labels" a b

let test_label_prop_isolated () =
  let g = graph_of_edges ~n:3 [ (0, 1) ] in
  let labels = Label_prop.run g ~passes:5 in
  check_int "isolated keeps own label" 2 labels.(2)

let test_community_sizes () =
  let labels = [| 0; 0; 1; 0; 1 |] in
  let sizes = Label_prop.community_sizes labels in
  check_int "community 0" 3 (Hashtbl.find sizes 0);
  check_int "community 1" 2 (Hashtbl.find sizes 1)

let test_largest_community () =
  (* Selection logic on hand-assigned labels (the LP output itself is
     covered by the convergence tests above). *)
  let g = graph_of_edges ~n:7 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 6); (6, 3) ] in
  let labels = [| 9; 9; 9; 4; 4; 4; 4 |] in
  let label, members = Label_prop.largest_community g ~labels () in
  check_int "largest label" 4 label;
  check_int "largest size" 4 (List.length members);
  Alcotest.(check (list int)) "members" [ 3; 4; 5; 6 ] members

let test_largest_community_typed () =
  let b = Builder.create lineage_schema in
  let j0 = Builder.add_vertex b ~vtype:"Job" () in
  let f0 = Builder.add_vertex b ~vtype:"File" () in
  let f1 = Builder.add_vertex b ~vtype:"File" () in
  let j1 = Builder.add_vertex b ~vtype:"Job" () in
  ignore (Builder.add_edge b ~src:j0 ~dst:f0 ~etype:"WRITES_TO" ());
  ignore (Builder.add_edge b ~src:j0 ~dst:f1 ~etype:"WRITES_TO" ());
  ignore (Builder.add_edge b ~src:f0 ~dst:j1 ~etype:"IS_READ_BY" ());
  let g = Graph.freeze b in
  let labels = Label_prop.run g ~passes:5 in
  let _, members = Label_prop.largest_community g ~labels ~count_type:0 () in
  check_bool "members nonempty" true (members <> [])

(* ------------------------------------------------------------------ *)
(* Connectivity                                                        *)

let test_components () =
  let g = graph_of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  check_int "three components" 3 (Connectivity.n_components g)

let test_sources_sinks () =
  let g = dag () in
  Alcotest.(check (list int)) "sources" [ 0; 5 ] (Connectivity.sources g);
  Alcotest.(check (list int)) "sinks" [ 3; 5 ] (Connectivity.sinks g)

(* ------------------------------------------------------------------ *)
(* Degree distribution                                                 *)

let test_degree_report () =
  let g = graph_of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2) ] in
  let r = Degree_dist.of_graph g in
  check_int "n" 4 r.Degree_dist.n;
  check_int "max degree" 3 r.Degree_dist.max_degree;
  check_bool "ccdf nonempty" true (r.Degree_dist.ccdf <> [])

let test_degree_report_typed () =
  let g = small_lineage () in
  let r = Degree_dist.of_type g 0 in
  check_int "jobs counted" 3 r.Degree_dist.n;
  check_int "job max out" 2 r.Degree_dist.max_degree

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_k_walks_match_matrix_power ]

let () =
  Alcotest.run "kaskade_algo"
    [
      ( "traverse",
        [
          Alcotest.test_case "bfs levels" `Quick test_bfs_levels;
          Alcotest.test_case "bfs max hops" `Quick test_bfs_max_hops;
          Alcotest.test_case "bfs backward" `Quick test_bfs_backward;
          Alcotest.test_case "bfs undirected" `Quick test_bfs_both;
          Alcotest.test_case "descendants/ancestors" `Quick test_descendants_ancestors;
          Alcotest.test_case "endpoints in range" `Quick test_endpoints_in_range;
          Alcotest.test_case "max timestamp paths (Q4)" `Quick test_max_timestamp_paths;
        ] );
      ( "paths",
        [
          Alcotest.test_case "walks on a line" `Quick test_count_k_walks_line;
          Alcotest.test_case "walks on a cycle" `Quick test_count_k_walks_cycle;
          Alcotest.test_case "typed walks" `Quick test_typed_walks;
          Alcotest.test_case "2-hop pairs deduped" `Quick test_2hop_pairs_dedup;
          Alcotest.test_case "bounded simple paths" `Quick test_simple_paths_bounded;
        ] );
      ( "label_prop",
        [
          Alcotest.test_case "component convergence" `Quick test_label_prop_components;
          Alcotest.test_case "deterministic" `Quick test_label_prop_deterministic;
          Alcotest.test_case "isolated vertex" `Quick test_label_prop_isolated;
          Alcotest.test_case "community sizes" `Quick test_community_sizes;
          Alcotest.test_case "largest community (Q8)" `Quick test_largest_community;
          Alcotest.test_case "largest community typed" `Quick test_largest_community_typed;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "sources/sinks" `Quick test_sources_sinks;
        ] );
      ( "degree_dist",
        [
          Alcotest.test_case "report" `Quick test_degree_report;
          Alcotest.test_case "typed report" `Quick test_degree_report_typed;
        ] );
      ("properties", qcheck_cases);
    ]
